(* Lowering: fully-expanded core forms (Ast.t) -> typed IL (Il.code).

   Parity with lib/runtime/interp.ml is the prime directive — the
   differential gate asserts byte-identical output under both engines.
   The load-bearing decisions:

   - No real frames.  Every [let]/[letrec] binding in a procedure body
     is coalesced into the procedure's single base locals array (slot
     indices are monotonic, never reused), so the environment never
     changes during one proto's execution and child closures capture
     the base env directly.  An outer-scope reference from a child
     resolves to depth [1 + rel] where [rel] counts capture hops.

   - Named [let] loops whose lambda body is lambda-free and whose
     binding is only ever the callee of exact-arity tail applications
     are inlined as jump regions in the enclosing proto.  Parameters
     are homed by a fixpoint: a float (resp. int) register when every
     write — entry and self-call args alike — is statically
     float-valued (resp. int-valued); a slot otherwise.  A bare int
     literal is *not* statically float-valued even though the fused
     interpreter would accept it: an [Int]-holding binding must keep
     exact-integer printing.

   - Fused-operand evaluation order mirrors the interpreter's OCaml
     right-to-left quirks: generic 1-argument applications evaluate
     the argument before the callee, and fused float binaries evaluate
     the right operand first.

   - Anything the VM cannot express with exact interpreter semantics
     raises [Unsupported]; the whole form then runs on the tree
     walker.  Per-node escapes are deliberately avoided: the VM's
     coalesced locals do not match the interpreter's env shape. *)

open Liblang_runtime
open Value
module Datum = Liblang_reader.Datum
module Metrics = Liblang_observe.Metrics

exception Unsupported

module AstTbl = Hashtbl.Make (struct
  type t = Ast.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

module GlobTbl = Hashtbl.Make (struct
  type t = Ast.global

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* ------------------------------------------------------------------ *)
(* Primitive name tables                                              *)
(* ------------------------------------------------------------------ *)

let flbin_of_name = function
  | "unsafe-fl+" -> Some Il.FAdd
  | "unsafe-fl-" -> Some Il.FSub
  | "unsafe-fl*" -> Some Il.FMul
  | "unsafe-fl/" -> Some Il.FDiv
  | "unsafe-flmin" -> Some Il.FMin
  | "unsafe-flmax" -> Some Il.FMax
  | "unsafe-flexpt" -> Some Il.FExpt
  | _ -> None

let flcmp_of_name = function
  | "unsafe-fl<" -> Some Il.Clt
  | "unsafe-fl>" -> Some Il.Cgt
  | "unsafe-fl<=" -> Some Il.Cle
  | "unsafe-fl>=" -> Some Il.Cge
  | "unsafe-fl=" -> Some Il.Ceq
  | _ -> None

let flun_of_name = function
  | "unsafe-flabs" -> Some Il.FAbs
  | "unsafe-flsqrt" -> Some Il.FSqrt
  | "unsafe-flsin" -> Some Il.FSin
  | "unsafe-flcos" -> Some Il.FCos
  | "unsafe-fltan" -> Some Il.FTan
  | "unsafe-flatan" -> Some Il.FAtan
  | "unsafe-flexp" -> Some Il.FExp
  | "unsafe-fllog" -> Some Il.FLog
  | "unsafe-flfloor" -> Some Il.FFloor
  | "unsafe-flceiling" -> Some Il.FCeil
  | "unsafe-flround" -> Some Il.FRound
  | "unsafe-fltruncate" -> Some Il.FTrunc
  | _ -> None

(* generic numeric comparisons eligible for fused conditional jumps;
   the fast2 registrations wrap these exact Numeric functions *)
let cmp_fn_of_name : string -> (value -> value -> bool) option = function
  | "<" -> Some Numeric.lt
  | ">" -> Some Numeric.gt
  | "<=" -> Some Numeric.le
  | ">=" -> Some Numeric.ge
  | "=" -> Some Numeric.num_eq
  | _ -> None

let fxbin_of_name = function
  | "+" -> Some Il.XAdd
  | "-" -> Some Il.XSub
  | "*" -> Some Il.XMul
  | _ -> None

(* Names whose fused interpretation has no IL encoding (complex
   arithmetic).  Seeing one fused bails the whole form out so the
   unboxed-complex semantics can never diverge. *)
let complex_fused_name = function
  | "unsafe-c+" | "unsafe-c-" | "unsafe-c*" | "unsafe-c/" | "unsafe-cneg"
  | "unsafe-conjugate" | "unsafe-magnitude" | "unsafe-real-part"
  | "unsafe-imag-part" | "unsafe-make-rectangular" ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Lowering state                                                     *)
(* ------------------------------------------------------------------ *)

type home = HSlot of int | HFreg of int | HIreg of int

type loop = {
  lp_homes : home array;
  lp_fregs : int list;  (** param float registers (self-call copy hazard) *)
  lp_iregs : int list;
  mutable lp_jumps : int list;  (** pc of Jump placeholders -> loop head *)
}

type scope =
  | SIn of home array  (** binder coalesced into the current proto's frame *)
  | SOut of home array * int  (** captured; frame lives [1 + rel] envs up *)
  | SLoop of loop  (** inlined named-let binding (callee-only by proof) *)

type buf = { mutable arr : Il.instr array; mutable len : int }

let buf_make () = { arr = Array.make 64 Il.Return; len = 0 }

let buf_push b i =
  if b.len = Array.length b.arr then begin
    let a = Array.make (2 * b.len) Il.Return in
    Array.blit b.arr 0 a 0 b.len;
    b.arr <- a
  end;
  b.arr.(b.len) <- i;
  b.len <- b.len + 1

type pst = {
  buf : buf;
  mutable sp : int;
  mutable max_sp : int;
  mutable nlocals : int;  (** next free slot *)
  mutable nfregs : int;  (** next free float register *)
  mutable niregs : int;
  (* Proto preamble: infallible register setup hoisted to proto entry —
     float/int literals and float loads of never-assigned parameters.
     Hoisted instructions run once per activation instead of once per
     loop iteration; memoization keys equal literals to one register. *)
  mutable pre : Il.instr list;  (** reversed preamble *)
  mutable pre_fc : (int64 * int) list;  (** float bits -> preamble freg *)
  mutable pre_ic : (int * int) list;  (** int literal -> preamble ireg *)
  mutable pre_ld : (int * int) list;  (** param slot -> preamble freg *)
  pre_params : bool array;  (** param slots eligible for hoisted loads *)
}

type ctx = {
  unboxing : bool;
  consts : value array;
  const_ix : int AstTbl.t;  (** Quote/QuoteStx node -> consts index *)
  globals : Ast.global array;
  global_ix : int GlobTbl.t;
  mutable protos : Il.proto option array;
  mutable nprotos : int;
  mutable f1 : (string * (value -> value)) list;  (* reversed *)
  mutable nf1 : int;
  mutable f2 : (string * (value -> value -> value)) list;
  mutable nf2 : int;
  mutable cmps : (string * (value -> value -> bool)) list;
  mutable ncmps : int;
  inline_memo : bool AstTbl.t;
}

let emit st i = buf_push st.buf i

let adj st d =
  st.sp <- st.sp + d;
  if st.sp > st.max_sp then st.max_sp <- st.sp

let fresh_slot st =
  let s = st.nlocals in
  st.nlocals <- s + 1;
  s

(* Register targets are never reused: temporaries and homes share one
   monotonic counter, so a nested [let]'s register home can never
   clobber a live temporary.  The file stays small — lowering is
   static, so its size is bounded by the proto's expression count. *)
let fresh_freg st =
  let r = st.nfregs in
  st.nfregs <- r + 1;
  r

let fresh_ireg st =
  let r = st.niregs in
  st.niregs <- r + 1;
  r

(* Preamble hoisting.  Only operations that can never fail and whose
   operand cannot change during the proto's activation are eligible:
   literal constants, and float loads of parameters no set! targets.
   (A parameter with a float-lane use was proven Float by the typed
   optimizer; off-type values are already in unsafe-operation
   territory, where the interpreter's fault point is unspecified.) *)

let pre_fconst st (f : float) ix =
  let key = Int64.bits_of_float f in
  match List.assoc_opt key st.pre_fc with
  | Some r -> r
  | None ->
      let r = fresh_freg st in
      st.pre <- Il.FlConst (r, ix) :: st.pre;
      st.pre_fc <- (key, r) :: st.pre_fc;
      r

let pre_iconst st n =
  match List.assoc_opt n st.pre_ic with
  | Some r -> r
  | None ->
      let r = fresh_ireg st in
      st.pre <- Il.FxConst (r, n) :: st.pre;
      st.pre_ic <- (n, r) :: st.pre_ic;
      r

let pre_fload st s =
  match List.assoc_opt s st.pre_ld with
  | Some r -> r
  | None ->
      let r = fresh_freg st in
      st.pre <- Il.FlLoad (r, 0, s) :: st.pre;
      st.pre_ld <- (s, r) :: st.pre_ld;
      r

(* final instruction stream: preamble, then the body with every
   intra-proto jump target shifted past it *)
let assemble st : Il.instr array =
  let body = Array.sub st.buf.arr 0 st.buf.len in
  match st.pre with
  | [] -> body
  | pre ->
      let pre = Array.of_list (List.rev pre) in
      let k = Array.length pre in
      let shift (i : Il.instr) =
        match i with
        | Il.Jump t -> Il.Jump (t + k)
        | Il.Jfalse t -> Il.Jfalse (t + k)
        | Il.JcmpGen (ix, t) -> Il.JcmpGen (ix, t + k)
        | Il.FlJcmp (op, a, b, t) -> Il.FlJcmp (op, a, b, t + k)
        | Il.FxJcmp (op, a, b, t) -> Il.FxJcmp (op, a, b, t + k)
        | Il.StepJump t -> Il.StepJump (t + k)
        | i -> i
      in
      Array.append pre (Array.map shift body)

let reserve_proto ctx =
  if ctx.nprotos = Array.length ctx.protos then begin
    let a = Array.make (max 4 (2 * ctx.nprotos)) None in
    Array.blit ctx.protos 0 a 0 ctx.nprotos;
    ctx.protos <- a
  end;
  let ix = ctx.nprotos in
  ctx.nprotos <- ix + 1;
  ix

let pool_lookup name lst n =
  let rec go i = function
    | [] -> None
    | (nm, _) :: tl ->
        if String.equal nm name then Some (n - 1 - i) else go (i + 1) tl
  in
  go 0 lst

let pool_f1 ctx name fn =
  match pool_lookup name ctx.f1 ctx.nf1 with
  | Some ix -> ix
  | None ->
      let ix = ctx.nf1 in
      ctx.f1 <- (name, fn) :: ctx.f1;
      ctx.nf1 <- ix + 1;
      ix

let pool_f2 ctx name fn =
  match pool_lookup name ctx.f2 ctx.nf2 with
  | Some ix -> ix
  | None ->
      let ix = ctx.nf2 in
      ctx.f2 <- (name, fn) :: ctx.f2;
      ctx.nf2 <- ix + 1;
      ix

let pool_cmp ctx name fn =
  match pool_lookup name ctx.cmps ctx.ncmps with
  | Some ix -> ix
  | None ->
      let ix = ctx.ncmps in
      ctx.cmps <- (name, fn) :: ctx.cmps;
      ctx.ncmps <- ix + 1;
      ix

let const_ix ctx node =
  match AstTbl.find_opt ctx.const_ix node with
  | Some ix -> ix
  | None -> raise Unsupported

let global_ix ctx g =
  match GlobTbl.find_opt ctx.global_ix g with
  | Some ix -> ix
  | None -> raise Unsupported

(* ------------------------------------------------------------------ *)
(* Constant / global pools: deterministic pre-order walks.  The decode
   side replays the identical walks over the freshly recompiled Ast,
   so pool *indices* — not values — are what the artifact stores.     *)
(* ------------------------------------------------------------------ *)

let collect_pools (a : Ast.t) =
  let consts = ref [] and nconsts = ref 0 in
  let cix = AstTbl.create 64 in
  let globals = ref [] and nglobals = ref 0 in
  let gix = GlobTbl.create 32 in
  let add_const node v =
    AstTbl.replace cix node !nconsts;
    consts := v :: !consts;
    incr nconsts
  in
  let add_global g =
    if not (GlobTbl.mem gix g) then begin
      GlobTbl.replace gix g !nglobals;
      globals := g :: !globals;
      incr nglobals
    end
  in
  let rec go a =
    match a with
    | Ast.Quote v -> add_const a v
    | Ast.QuoteStx s -> add_const a (StxV s)
    | Ast.LocalRef _ -> ()
    | Ast.GlobalRef g -> add_global g
    | Ast.SetLocal (_, _, e) -> go e
    | Ast.SetGlobal (g, e) ->
        add_global g;
        go e
    | Ast.If (c, t, e) ->
        go c;
        go t;
        go e
    | Ast.Begin es -> Array.iter go es
    | Ast.Lambda l -> go l.Ast.l_body
    | Ast.App (f, args) | Ast.DirectApp (f, args) ->
        go f;
        Array.iter go args
    | Ast.LetVals (cs, b) | Ast.LetrecVals (cs, b) ->
        Array.iter (fun (c : Ast.clause) -> go c.Ast.rhs) cs;
        go b
  in
  go a;
  (Array.of_list (List.rev !consts), cix, Array.of_list (List.rev !globals), gix)

(* ------------------------------------------------------------------ *)
(* Static classification                                              *)
(* ------------------------------------------------------------------ *)

let imm_global (f : Ast.t) =
  match f with
  | Ast.GlobalRef g when not g.Ast.g_mutable -> Some g.Ast.g_name
  | _ -> None

let is_hfreg = function HFreg _ -> true | _ -> false
let is_hireg = function HIreg _ -> true | _ -> false

let static_float ctx scopes (e : Ast.t) =
  match e with
  | Ast.Quote (Float _) -> true
  | Ast.LocalRef (d, i) -> (
      match List.nth_opt scopes d with
      | Some (SIn homes) -> is_hfreg homes.(i)
      | _ -> false)
  | Ast.App (f, args) when ctx.unboxing -> (
      match imm_global f with
      | Some name -> (
          match Array.length args with
          | 2 -> flbin_of_name name <> None
          | 1 -> flun_of_name name <> None || String.equal name "unsafe-fx->fl"
          | _ -> false)
      | None -> false)
  | _ -> false

let rec static_int ctx scopes (e : Ast.t) =
  match e with
  | Ast.Quote (Int _) -> true
  | Ast.LocalRef (d, i) -> (
      match List.nth_opt scopes d with
      | Some (SIn homes) -> is_hireg homes.(i)
      | _ -> false)
  | Ast.App (f, [| a; b |]) -> (
      match imm_global f with
      | Some name ->
          fxbin_of_name name <> None
          && static_int ctx scopes a
          && static_int ctx scopes b
      | None -> false)
  | _ -> false

(* does [e] contain a SetLocal targeting depth [d]'s slot [i]? *)
let rec sets_var (e : Ast.t) d i =
  match e with
  | Ast.Quote _ | Ast.QuoteStx _ | Ast.LocalRef _ | Ast.GlobalRef _ -> false
  | Ast.SetLocal (d', i', e) -> (d' = d && i' = i) || sets_var e d i
  | Ast.SetGlobal (_, e) -> sets_var e d i
  | Ast.If (c, t, el) -> sets_var c d i || sets_var t d i || sets_var el d i
  | Ast.Begin es -> Array.exists (fun e -> sets_var e d i) es
  | Ast.Lambda l -> sets_var l.Ast.l_body (d + 1) i
  | Ast.App (f, args) | Ast.DirectApp (f, args) ->
      sets_var f d i || Array.exists (fun a -> sets_var a d i) args
  | Ast.LetVals (cs, b) ->
      Array.exists (fun (c : Ast.clause) -> sets_var c.Ast.rhs d i) cs
      || sets_var b (d + 1) i
  | Ast.LetrecVals (cs, b) ->
      Array.exists (fun (c : Ast.clause) -> sets_var c.Ast.rhs (d + 1) i) cs
      || sets_var b (d + 1) i

(* ------------------------------------------------------------------ *)
(* Named-let inlining legality                                        *)
(* ------------------------------------------------------------------ *)

(* [usage_ok]: every reference to the loop binding (depth-tracked) is
   the callee of an exact-arity application in region-tail position.
   [lambda_free_ex]: no lambdas except nested inlinable named lets,
   whose bodies stay in the same proto.  Mutually recursive through
   [can_inline]; memoized per letrec node. *)

let rec usage_ok ctx arity (e : Ast.t) d ltail =
  match e with
  | Ast.LocalRef (d', _) -> d' <> d
  | Ast.Quote _ | Ast.QuoteStx _ | Ast.GlobalRef _ -> true
  | Ast.SetLocal (d', _, e) -> d' <> d && usage_ok ctx arity e d false
  | Ast.SetGlobal (_, e) -> usage_ok ctx arity e d false
  | Ast.If (c, t, el) ->
      usage_ok ctx arity c d false
      && usage_ok ctx arity t d ltail
      && usage_ok ctx arity el d ltail
  | Ast.Begin es ->
      let n = Array.length es in
      let ok = ref true in
      Array.iteri
        (fun i e ->
          if !ok then ok := usage_ok ctx arity e d (ltail && i = n - 1))
        es;
      !ok
  | Ast.Lambda l -> usage_ok ctx arity l.Ast.l_body (d + 1) false
  | (Ast.App (Ast.LocalRef (d', _), args) | Ast.DirectApp (Ast.LocalRef (d', _), args))
    when d' = d ->
      ltail
      && Array.length args = arity
      && Array.for_all (fun a -> usage_ok ctx arity a d false) args
  | Ast.App (f, args) | Ast.DirectApp (f, args) ->
      usage_ok ctx arity f d false
      && Array.for_all (fun a -> usage_ok ctx arity a d false) args
  | Ast.LetVals (cs, b) ->
      Array.for_all
        (fun (c : Ast.clause) -> usage_ok ctx arity c.Ast.rhs d false)
        cs
      && usage_ok ctx arity b (d + 1) ltail
  | Ast.LetrecVals (cs, b) as node -> (
      match cs with
      | [| { Ast.n_vals = 1; rhs = Ast.Lambda l } |] when can_inline ctx node l b
        ->
          (* the nested loop's bodies remain region-resident *)
          usage_ok ctx arity l.Ast.l_body (d + 2) ltail
          && usage_ok ctx arity b (d + 1) ltail
      | _ ->
          Array.for_all
            (fun (c : Ast.clause) -> usage_ok ctx arity c.Ast.rhs (d + 1) false)
            cs
          && usage_ok ctx arity b (d + 1) ltail)

and lambda_free_ex ctx (e : Ast.t) =
  match e with
  | Ast.Quote _ | Ast.QuoteStx _ | Ast.LocalRef _ | Ast.GlobalRef _ -> true
  | Ast.SetLocal (_, _, e) | Ast.SetGlobal (_, e) -> lambda_free_ex ctx e
  | Ast.If (c, t, el) ->
      lambda_free_ex ctx c && lambda_free_ex ctx t && lambda_free_ex ctx el
  | Ast.Begin es -> Array.for_all (lambda_free_ex ctx) es
  | Ast.Lambda _ -> false
  | Ast.App (f, args) | Ast.DirectApp (f, args) ->
      lambda_free_ex ctx f && Array.for_all (lambda_free_ex ctx) args
  | Ast.LetVals (cs, b) ->
      Array.for_all (fun (c : Ast.clause) -> lambda_free_ex ctx c.Ast.rhs) cs
      && lambda_free_ex ctx b
  | Ast.LetrecVals (cs, b) as node -> (
      match cs with
      | [| { Ast.n_vals = 1; rhs = Ast.Lambda l } |] when can_inline ctx node l b
        ->
          lambda_free_ex ctx b
      | _ ->
          Array.for_all (fun (c : Ast.clause) -> lambda_free_ex ctx c.Ast.rhs) cs
          && lambda_free_ex ctx b)

and can_inline ctx node (l : Ast.lam) body =
  match AstTbl.find_opt ctx.inline_memo node with
  | Some b -> b
  | None ->
      (* break self-reference cycles pessimistically *)
      AstTbl.replace ctx.inline_memo node false;
      let ok =
        (not l.Ast.l_rest)
        && lambda_free_ex ctx l.Ast.l_body
        && usage_ok ctx l.Ast.l_arity body 0 true
        && usage_ok ctx l.Ast.l_arity l.Ast.l_body 1 true
      in
      AstTbl.replace ctx.inline_memo node ok;
      ok

(* ------------------------------------------------------------------ *)
(* Parameter homing fixpoint                                          *)
(* ------------------------------------------------------------------ *)

(* Abstract scopes stacked over the real ones while collecting a
   loop's self-call sites: the hypothesis params, the loop binding
   itself, and any other binder (conservative: never register-typed). *)
type akind = KParams | KLoop | KOther

let collect_sites ctx (l : Ast.lam) body : (Ast.t array * akind list) list =
  let sites = ref [] in
  let rec go (e : Ast.t) stk =
    match e with
    | Ast.Quote _ | Ast.QuoteStx _ | Ast.LocalRef _ | Ast.GlobalRef _ -> ()
    | Ast.SetLocal (_, _, e) | Ast.SetGlobal (_, e) -> go e stk
    | Ast.If (c, t, el) ->
        go c stk;
        go t stk;
        go el stk
    | Ast.Begin es -> Array.iter (fun e -> go e stk) es
    | Ast.Lambda l -> go l.Ast.l_body (KOther :: stk)
    | (Ast.App (Ast.LocalRef (d, _), args) | Ast.DirectApp (Ast.LocalRef (d, _), args))
      when d < List.length stk && List.nth stk d = KLoop ->
        (* self-call of *this* loop: nested loops walk under KOther *)
        sites := (args, stk) :: !sites;
        Array.iter (fun a -> go a stk) args
    | Ast.App (f, args) | Ast.DirectApp (f, args) ->
        go f stk;
        Array.iter (fun a -> go a stk) args
    | Ast.LetVals (cs, b) ->
        Array.iter (fun (c : Ast.clause) -> go c.Ast.rhs stk) cs;
        go b (KOther :: stk)
    | Ast.LetrecVals (cs, b) as node -> (
        match cs with
        | [| { Ast.n_vals = 1; rhs = Ast.Lambda il } |]
          when can_inline ctx node il b ->
            go b (KOther :: stk);
            go il.Ast.l_body (KOther :: KOther :: stk)
        | _ ->
            Array.iter (fun (c : Ast.clause) -> go c.Ast.rhs (KOther :: stk)) cs;
            go b (KOther :: stk))
  in
  go body [ KLoop ];
  go l.Ast.l_body [ KParams; KLoop ];
  !sites

let hstatic_float ctx scopes stk (hyp_f : bool array) (e : Ast.t) =
  match e with
  | Ast.Quote (Float _) -> true
  | Ast.LocalRef (d, i) -> (
      let n = List.length stk in
      if d < n then
        match List.nth stk d with KParams -> hyp_f.(i) | _ -> false
      else
        match List.nth_opt scopes (d - n) with
        | Some (SIn homes) -> is_hfreg homes.(i)
        | _ -> false)
  | Ast.App (f, args) when ctx.unboxing -> (
      match imm_global f with
      | Some name -> (
          match Array.length args with
          | 2 -> flbin_of_name name <> None
          | 1 -> flun_of_name name <> None || String.equal name "unsafe-fx->fl"
          | _ -> false)
      | None -> false)
  | _ -> false

let rec hstatic_int ctx scopes stk (hyp_i : bool array) (e : Ast.t) =
  match e with
  | Ast.Quote (Int _) -> true
  | Ast.LocalRef (d, i) -> (
      let n = List.length stk in
      if d < n then
        match List.nth stk d with KParams -> hyp_i.(i) | _ -> false
      else
        match List.nth_opt scopes (d - n) with
        | Some (SIn homes) -> is_hireg homes.(i)
        | _ -> false)
  | Ast.App (f, [| a; b |]) -> (
      match imm_global f with
      | Some name ->
          fxbin_of_name name <> None
          && hstatic_int ctx scopes stk hyp_i a
          && hstatic_int ctx scopes stk hyp_i b
      | None -> false)
  | _ -> false

let solve_homes ctx st scopes (l : Ast.lam) body : home array * loop =
  let arity = l.Ast.l_arity in
  (* entry calls are the letrec-body self-calls, so [sites] covers
     every write to the params *)
  let sites = collect_sites ctx l body in
  let hyp_f = Array.make arity true and hyp_i = Array.make arity true in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (args, stk) ->
        Array.iteri
          (fun j a ->
            if hyp_f.(j) && not (hstatic_float ctx scopes stk hyp_f a) then begin
              hyp_f.(j) <- false;
              changed := true
            end;
            if hyp_i.(j) && not (hstatic_int ctx scopes stk hyp_i a) then begin
              hyp_i.(j) <- false;
              changed := true
            end)
          args)
      sites
  done;
  let fregs = ref [] and iregs = ref [] in
  let homes =
    Array.init arity (fun j ->
        if hyp_f.(j) then begin
          let r = fresh_freg st in
          fregs := r :: !fregs;
          HFreg r
        end
        else if hyp_i.(j) then begin
          let r = fresh_ireg st in
          iregs := r :: !iregs;
          HIreg r
        end
        else HSlot (fresh_slot st))
  in
  ( homes,
    { lp_homes = homes; lp_fregs = !fregs; lp_iregs = !iregs; lp_jumps = [] } )

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                *)
(* ------------------------------------------------------------------ *)

let capture scopes =
  List.map
    (function
      | SIn homes -> SOut (homes, 0)
      | SOut (homes, rel) -> SOut (homes, rel + 1)
      | SLoop _ ->
          (* provably never referenced from under a lambda; keep the
             depth numbering aligned *)
          SOut ([||], 0))
    scopes

let resolve scopes d i =
  match List.nth_opt scopes d with
  | Some (SIn homes) -> `In homes.(i)
  | Some (SOut (homes, rel)) ->
      if i >= Array.length homes then raise Unsupported
      else (
        match homes.(i) with
        | HSlot s -> `Up (1 + rel, s)
        | HFreg _ | HIreg _ -> raise Unsupported (* registers do not escape *))
  | Some (SLoop _) | None -> raise Unsupported

let patch st at target =
  st.buf.arr.(at) <-
    (match st.buf.arr.(at) with
    | Il.Jump _ -> Il.Jump target
    | Il.Jfalse _ -> Il.Jfalse target
    | Il.JcmpGen (ix, _) -> Il.JcmpGen (ix, target)
    | Il.FlJcmp (op, a, b, _) -> Il.FlJcmp (op, a, b, target)
    | Il.FxJcmp (op, a, b, _) -> Il.FxJcmp (op, a, b, target)
    | Il.StepJump _ -> Il.StepJump target
    | _ -> assert false)

let rec lower_expr ctx st scopes ~tail (e : Ast.t) =
  match e with
  | Ast.Quote _ | Ast.QuoteStx _ ->
      emit st (Il.Const (const_ix ctx e));
      adj st 1
  | Ast.LocalRef (d, i) -> (
      match resolve scopes d i with
      | `In (HSlot s) ->
          emit st (Il.Lref (0, s));
          adj st 1
      | `In (HFreg r) ->
          emit st (Il.FlPush r);
          adj st 1
      | `In (HIreg r) ->
          emit st (Il.FxPush r);
          adj st 1
      | `Up (d', s) ->
          emit st (Il.Lref (d', s));
          adj st 1)
  | Ast.GlobalRef g ->
      emit st (Il.Gref (global_ix ctx g));
      adj st 1
  | Ast.SetLocal (d, i, rhs) -> (
      match resolve scopes d i with
      | `In (HSlot s) ->
          lower_expr ctx st scopes ~tail:false rhs;
          emit st (Il.Lset (0, s))
      | `Up (d', s) ->
          lower_expr ctx st scopes ~tail:false rhs;
          emit st (Il.Lset (d', s))
      | `In (HFreg _ | HIreg _) -> raise Unsupported)
  | Ast.SetGlobal (g, rhs) ->
      lower_expr ctx st scopes ~tail:false rhs;
      emit st (Il.Gset (global_ix ctx g))
  | Ast.If (c, t, el) -> lower_if ctx st scopes ~tail c t el
  | Ast.Begin es ->
      let n = Array.length es in
      if n = 0 then raise Unsupported;
      for i = 0 to n - 2 do
        lower_expr ctx st scopes ~tail:false es.(i);
        emit st Il.Pop;
        adj st (-1)
      done;
      lower_expr ctx st scopes ~tail es.(n - 1)
  | Ast.Lambda l ->
      let ix = lower_lambda ctx scopes l in
      emit st (Il.MkClosure ix);
      adj st 1
  | Ast.App (Ast.LocalRef (d, _), args)
    when d < List.length scopes
         && (match List.nth scopes d with SLoop _ -> true | _ -> false) ->
      let lp =
        match List.nth scopes d with SLoop lp -> lp | _ -> assert false
      in
      lower_selfcall ctx st scopes lp args
  | Ast.App (f, args) -> lower_app ctx st scopes ~tail f args
  | Ast.DirectApp (Ast.LocalRef (d, _), args)
    when d < List.length scopes
         && (match List.nth scopes d with SLoop _ -> true | _ -> false) ->
      (* a named-let self-call the analysis also proved monomorphic:
         the inlined-loop jump must win, as for plain App *)
      let lp =
        match List.nth scopes d with SLoop lp -> lp | _ -> assert false
      in
      lower_selfcall ctx st scopes lp args
  | Ast.DirectApp (f, args) -> lower_direct ctx st scopes ~tail f args
  | Ast.LetVals (cs, body)
    when Array.length cs >= 1
         && Array.length cs <= 3
         && Array.for_all (fun (c : Ast.clause) -> c.Ast.n_vals = 1) cs ->
      (* specialized paths: all rhs evaluated, then checked, then bound *)
      let homes =
        Array.mapi
          (fun j (c : Ast.clause) -> choose_home ctx st scopes body j c.Ast.rhs)
          cs
      in
      let slots = ref [] in
      Array.iteri
        (fun j (c : Ast.clause) ->
          match homes.(j) with
          | HSlot s ->
              lower_expr ctx st scopes ~tail:false c.Ast.rhs;
              slots := s :: !slots
          | HFreg r ->
              (* a statically-float rhs cannot produce Values, so the
                 check is vacuous and early homing is unobservable *)
              let t = lower_fl ctx st scopes c.Ast.rhs in
              if t <> r then emit st (Il.FlMov (r, t))
          | HIreg r ->
              let t = lower_fx ctx st scopes c.Ast.rhs in
              if t <> r then emit st (Il.FxMov (r, t)))
        cs;
      (* pop in reverse push order; the check still fires only after
         every rhs has run, matching the interpreter *)
      List.iter
        (fun s ->
          emit st (Il.BindE (0, s, Il.bind_short));
          adj st (-1))
        !slots;
      lower_expr ctx st (SIn homes :: scopes) ~tail body
  | Ast.LetVals (cs, body) ->
      (* general path: eval and bind interleaved (bind_results) *)
      let homes = ref [] in
      Array.iter
        (fun (c : Ast.clause) ->
          if c.Ast.n_vals = 1 then begin
            match
              choose_home ctx st scopes body (List.length !homes) c.Ast.rhs
            with
            | HSlot s ->
                lower_expr ctx st scopes ~tail:false c.Ast.rhs;
                emit st (Il.BindE (0, s, Il.bind_long));
                adj st (-1);
                homes := HSlot s :: !homes
            | HFreg r ->
                let t = lower_fl ctx st scopes c.Ast.rhs in
                if t <> r then emit st (Il.FlMov (r, t));
                homes := HFreg r :: !homes
            | HIreg r ->
                let t = lower_fx ctx st scopes c.Ast.rhs in
                if t <> r then emit st (Il.FxMov (r, t));
                homes := HIreg r :: !homes
          end
          else begin
            let start = st.nlocals in
            for _ = 1 to c.Ast.n_vals do
              homes := HSlot (fresh_slot st) :: !homes
            done;
            lower_expr ctx st scopes ~tail:false c.Ast.rhs;
            emit st (Il.BindEV (0, start, c.Ast.n_vals));
            adj st (-1)
          end)
        cs;
      let homes = Array.of_list (List.rev !homes) in
      lower_expr ctx st (SIn homes :: scopes) ~tail body
  | Ast.LetrecVals ([| { Ast.n_vals = 1; rhs = Ast.Lambda l } |], body) as node
    when can_inline ctx node l body ->
      lower_inline_loop ctx st scopes ~tail l body
  | Ast.LetrecVals ([| { Ast.n_vals = 1; rhs = Ast.Lambda l } |], body) ->
      (* named let, not inlinable: closure over env'; no values check *)
      let slot = fresh_slot st in
      let homes = [| HSlot slot |] in
      let scopes' = SIn homes :: scopes in
      emit st (Il.ClearE (0, slot));
      let ix = lower_lambda ctx scopes' l in
      emit st (Il.MkClosure ix);
      adj st 1;
      emit st (Il.BindE (0, slot, Il.bind_none));
      adj st (-1);
      lower_expr ctx st scopes' ~tail body
  | Ast.LetrecVals (cs, body) ->
      (* general letrec: slots only (a register home could expose a
         stale value where the interpreter sees Undefined); rhs see
         the new scope; ClearE resets slots on loop re-entry *)
      let homes = ref [] in
      let plans = ref [] in
      Array.iter
        (fun (c : Ast.clause) ->
          let start = st.nlocals in
          for _ = 1 to c.Ast.n_vals do
            homes := HSlot (fresh_slot st) :: !homes
          done;
          plans := (c, start) :: !plans)
        cs;
      let homes = Array.of_list (List.rev !homes) in
      let scopes' = SIn homes :: scopes in
      Array.iter
        (function HSlot s -> emit st (Il.ClearE (0, s)) | _ -> assert false)
        homes;
      List.iter
        (fun ((c : Ast.clause), start) ->
          lower_expr ctx st scopes' ~tail:false c.Ast.rhs;
          if c.Ast.n_vals = 1 then emit st (Il.BindE (0, start, Il.bind_long))
          else emit st (Il.BindEV (0, start, c.Ast.n_vals));
          adj st (-1))
        (List.rev !plans);
      lower_expr ctx st scopes' ~tail body

(* a register home for a single-value let binding requires: statically
   typed rhs, a lambda-free let body (only this proto reads it), and
   no set! targeting it *)
and choose_home ctx st scopes body jix (rhs : Ast.t) =
  if
    ctx.unboxing
    && static_float ctx scopes rhs
    && lambda_free_ex ctx body
    && not (sets_var body 0 jix)
  then HFreg (fresh_freg st)
  else if
    static_int ctx scopes rhs
    && lambda_free_ex ctx body
    && not (sets_var body 0 jix)
  then HIreg (fresh_ireg st)
  else HSlot (fresh_slot st)

and lower_if ctx st scopes ~tail c t el =
  let jf =
    match c with
    | Ast.App (f, [| a; b |])
      when ctx.unboxing
           && (match imm_global f with
              | Some n -> flcmp_of_name n <> None
              | None -> false) ->
        (* fused float compare-and-branch; right operand first, like
           the interpreter's fused compare (OCaml right-to-left) *)
        let op = Option.get (flcmp_of_name (Option.get (imm_global f))) in
        let rb = lower_fl ctx st scopes b in
        let ra = lower_fl ctx st scopes a in
        emit st (Il.FlJcmp (op, ra, rb, 0));
        st.buf.len - 1
    | Ast.App (f, [| a; b |])
      when (match imm_global f with
           | Some n -> cmp_fn_of_name n <> None
           | None -> false)
           && static_int ctx scopes a
           && static_int ctx scopes b ->
        let name = Option.get (imm_global f) in
        let op =
          match name with
          | "<" -> Il.Clt
          | ">" -> Il.Cgt
          | "<=" -> Il.Cle
          | ">=" -> Il.Cge
          | _ -> Il.Ceq
        in
        let ra = lower_fx ctx st scopes a in
        let rb = lower_fx ctx st scopes b in
        emit st (Il.FxJcmp (op, ra, rb, 0));
        st.buf.len - 1
    | Ast.App (f, [| a; b |])
      when match imm_global f with
           | Some n -> cmp_fn_of_name n <> None
           | None -> false ->
        (* generic compare-and-branch: the exact Numeric comparator,
           fast2 operand order (left, then right), no Bool boxing *)
        let name = Option.get (imm_global f) in
        let ix = pool_cmp ctx name (Option.get (cmp_fn_of_name name)) in
        lower_expr ctx st scopes ~tail:false a;
        lower_expr ctx st scopes ~tail:false b;
        emit st (Il.JcmpGen (ix, 0));
        adj st (-2);
        st.buf.len - 1
    | _ ->
        lower_expr ctx st scopes ~tail:false c;
        emit st (Il.Jfalse 0);
        adj st (-1);
        st.buf.len - 1
  in
  let sp0 = st.sp in
  lower_expr ctx st scopes ~tail t;
  emit st (Il.Jump 0);
  let jend = st.buf.len - 1 in
  patch st jf st.buf.len;
  st.sp <- sp0;
  lower_expr ctx st scopes ~tail el;
  patch st jend st.buf.len

and lower_lambda ctx scopes (l : Ast.lam) =
  let ix = reserve_proto ctx in
  let nargs = if l.Ast.l_rest then l.Ast.l_arity + 1 else max l.Ast.l_arity 1 in
  let np = if l.Ast.l_rest then l.Ast.l_arity + 1 else l.Ast.l_arity in
  let st =
    { buf = buf_make (); sp = 0; max_sp = 0; nlocals = nargs; nfregs = 0;
      niregs = 0; pre = []; pre_fc = []; pre_ic = []; pre_ld = [];
      pre_params = Array.init np (fun i -> not (sets_var l.Ast.l_body 0 i)) }
  in
  let params =
    Array.init
      (if l.Ast.l_rest then l.Ast.l_arity + 1 else l.Ast.l_arity)
      (fun i -> HSlot i)
  in
  let scopes' = SIn params :: capture scopes in
  lower_expr ctx st scopes' ~tail:true l.Ast.l_body;
  emit st Il.Return;
  ctx.protos.(ix) <-
    Some
      {
        Il.p_arity = l.Ast.l_arity;
        p_rest = l.Ast.l_rest;
        p_name = l.Ast.l_name;
        p_nlocals = max st.nlocals 1;
        p_nfregs = st.nfregs;
        p_niregs = st.niregs;
        p_nstack = max st.max_sp 1;
        p_code = assemble st;
      };
  ix

and lower_inline_loop ctx st scopes ~tail (l : Ast.lam) body =
  let homes, lp = solve_homes ctx st scopes l body in
  (* region layout: [letrec body; Jump exit; head: l_body; exit:] —
     the letrec body's self-calls are the loop's entries *)
  let sp0 = st.sp in
  lower_expr ctx st (SLoop lp :: scopes) ~tail body;
  emit st (Il.Jump 0);
  let jexit = st.buf.len - 1 in
  let head = st.buf.len in
  st.sp <- sp0;
  lower_expr ctx st (SIn homes :: SLoop lp :: scopes) ~tail l.Ast.l_body;
  patch st jexit st.buf.len;
  List.iter (fun at -> patch st at head) lp.lp_jumps

and lower_selfcall ctx st scopes (lp : loop) (args : Ast.t array) =
  (* the interpreter's generic-apply order: with one argument the arg
     runs before the (pure) callee ref; with more, callee first then
     args left-to-right — either way args run left-to-right here *)
  let commits = ref [] in
  let last = Array.length args - 1 in
  Array.iteri
    (fun j a ->
      match lp.lp_homes.(j) with
      | HSlot s ->
          lower_expr ctx st scopes ~tail:false a;
          commits := `Slot s :: !commits
      | HFreg r ->
          if j = last then begin
            (* the final argument may target its home directly: no
               later argument reads the params, and its commit runs
               first so a passthrough of another param is read before
               that param's own commit clobbers it *)
            let t = lower_fl ~dst:r ctx st scopes a in
            commits := `F (r, t) :: !commits
          end
          else begin
            let t = lower_fl ctx st scopes a in
            let t =
              if List.mem t lp.lp_fregs then begin
                (* direct param-register reference: copy it out before
                   commits clobber it (parallel-assignment hazard) *)
                let c = fresh_freg st in
                emit st (Il.FlMov (c, t));
                c
              end
              else t
            in
            commits := `F (r, t) :: !commits
          end
      | HIreg r ->
          if j = last then begin
            let t = lower_fx ~dst:r ctx st scopes a in
            commits := `I (r, t) :: !commits
          end
          else begin
            let t = lower_fx ctx st scopes a in
            let t =
              if List.mem t lp.lp_iregs then begin
                let c = fresh_ireg st in
                emit st (Il.FxMov (c, t));
                c
              end
              else t
            in
            commits := `I (r, t) :: !commits
          end)
    args;
  (* stack pops must run in reverse push order ([commits] is already
     reversed); register moves read temps only — except the last
     argument's, which therefore commits first *)
  List.iter
    (fun c ->
      match c with
      | `Slot s ->
          emit st (Il.BindE (0, s, Il.bind_none));
          adj st (-1)
      | `F (r, t) -> if r <> t then emit st (Il.FlMov (r, t))
      | `I (r, t) -> if r <> t then emit st (Il.FxMov (r, t)))
    !commits;
  emit st (Il.StepJump 0);
  lp.lp_jumps <- (st.buf.len - 1) :: lp.lp_jumps;
  (* never falls through; account for the value the call "returns" so
     join points balance *)
  adj st 1

and lower_app ctx st scopes ~tail f (args : Ast.t array) =
  let argc = Array.length args in
  let name = imm_global f in
  let fused_fl =
    ctx.unboxing
    && (match name with
       | Some n -> (
           match argc with
           | 2 -> flbin_of_name n <> None
           | 1 -> flun_of_name n <> None || String.equal n "unsafe-fx->fl"
           | _ -> false)
       | None -> false)
  in
  if fused_fl then begin
    let r = lower_fl ctx st scopes (Ast.App (f, args)) in
    emit st (Il.FlPush r);
    adj st 1
  end
  else
    match name with
    | Some n
      when ctx.unboxing && argc = 2 && flcmp_of_name n <> None ->
        let op = Option.get (flcmp_of_name n) in
        let rb = lower_fl ctx st scopes args.(1) in
        let ra = lower_fl ctx st scopes args.(0) in
        emit st (Il.FlCmp (op, ra, rb));
        adj st 1
    | Some n
      when ctx.unboxing && complex_fused_name n && (argc = 1 || argc = 2) ->
        raise Unsupported
    | Some n
      when argc = 2
           && fxbin_of_name n <> None
           && static_int ctx scopes args.(0)
           && static_int ctx scopes args.(1) ->
        (* generic + - * over statically-int operands: Numeric's
           Int,Int case is native wrapping arithmetic *)
        let r = lower_fx ctx st scopes (Ast.App (f, args)) in
        emit st (Il.FxPush r);
        adj st 1
    | Some "unchecked-vector-ref" when argc = 2 ->
        (* flow-proved in-bounds access: dedicated opcode, no fast2 hop *)
        lower_expr ctx st scopes ~tail:false args.(0);
        lower_expr ctx st scopes ~tail:false args.(1);
        emit st Il.VecRefU;
        adj st (-1)
    | Some "unchecked-vector-set!" when argc = 3 ->
        Array.iter (fun a -> lower_expr ctx st scopes ~tail:false a) args;
        emit st Il.VecSetU;
        adj st (-2)
    | Some n when argc = 2 && Hashtbl.mem Interp.fast2 n ->
        let fn = Hashtbl.find Interp.fast2 n in
        lower_expr ctx st scopes ~tail:false args.(0);
        lower_expr ctx st scopes ~tail:false args.(1);
        emit st (Il.Fast2 (pool_f2 ctx n fn));
        adj st (-1)
    | Some n when argc = 1 && Hashtbl.mem Interp.fast1 n ->
        let fn = Hashtbl.find Interp.fast1 n in
        lower_expr ctx st scopes ~tail:false args.(0);
        emit st (Il.Fast1 (pool_f1 ctx n fn))
    | _ ->
        if argc = 1 then begin
          (* arg before callee (OCaml right-to-left); the callee ends
             on top of the stack and Call 1 expects it there *)
          lower_expr ctx st scopes ~tail:false args.(0);
          lower_expr ctx st scopes ~tail:false f
        end
        else begin
          lower_expr ctx st scopes ~tail:false f;
          Array.iter (fun a -> lower_expr ctx st scopes ~tail:false a) args
        end;
        emit st (if tail then Il.TailCall argc else Il.Call argc);
        adj st (-argc)

(* A flow-proved monomorphic call: the callee is a user lambda (never an
   immutable prim global), so none of the fused/fastN prim paths apply;
   emit the known-call opcodes, which skip generic dispatch in the VM.
   Operand order matches [lower_app]'s generic branch exactly. *)
and lower_direct ctx st scopes ~tail f (args : Ast.t array) =
  let argc = Array.length args in
  if argc = 1 then begin
    lower_expr ctx st scopes ~tail:false args.(0);
    lower_expr ctx st scopes ~tail:false f
  end
  else begin
    lower_expr ctx st scopes ~tail:false f;
    Array.iter (fun a -> lower_expr ctx st scopes ~tail:false a) args
  end;
  emit st (if tail then Il.TailCallKnown argc else Il.CallKnown argc);
  adj st (-argc)

(* float-lane lowering: emits code leaving the value in a float
   register and returns the register.  Binary operands evaluate RIGHT
   first (the fused closures are built right-to-left by OCaml).
   [?dst] requests the result in a specific register when the lowering
   writes a fresh one anyway (loop self-call argument targeting);
   preamble-memoized and passthrough cases ignore it, and the caller
   reconciles with a move. *)
and lower_fl ?dst ctx st scopes (e : Ast.t) : int =
  let res () = match dst with Some r -> r | None -> fresh_freg st in
  match e with
  | Ast.Quote (Float f) -> pre_fconst st f (const_ix ctx e)
  | Ast.Quote (Int n) ->
      (* fleaf constant-folds both literal shapes to a float *)
      pre_fconst st (float_of_int n) (const_ix ctx e)
  | Ast.LocalRef (d, i) -> (
      match resolve scopes d i with
      | `In (HFreg r) -> r
      | `In (HIreg s) ->
          let r = res () in
          emit st (Il.FlOfI (r, s));
          r
      | `In (HSlot s) when s < Array.length st.pre_params && st.pre_params.(s)
        ->
          pre_fload st s
      | `In (HSlot s) ->
          let r = res () in
          emit st (Il.FlLoad (r, 0, s));
          r
      | `Up (d', s) ->
          let r = res () in
          emit st (Il.FlLoad (r, d', s));
          r)
  | Ast.App (f, [| a; b |])
    when ctx.unboxing
         && (match imm_global f with
            | Some n -> flbin_of_name n <> None
            | None -> false) ->
      let op = Option.get (flbin_of_name (Option.get (imm_global f))) in
      let rb = lower_fl ctx st scopes b in
      let ra = lower_fl ctx st scopes a in
      let r = res () in
      emit st (Il.FlBin (op, r, ra, rb));
      r
  | Ast.App (f, [| a |])
    when ctx.unboxing
         && (match imm_global f with
            | Some n -> flun_of_name n <> None
            | None -> false) ->
      let op = Option.get (flun_of_name (Option.get (imm_global f))) in
      let ra = lower_fl ctx st scopes a in
      let r = res () in
      emit st (Il.FlUn (op, r, ra));
      r
  | Ast.App (f, [| a |])
    when ctx.unboxing
         && (match imm_global f with
            | Some n -> String.equal n "unsafe-fx->fl"
            | None -> false) -> (
      (* unsafe-fx->fl converts with its own error message, so slot
         and dynamic operands go through FxToFl, not FlLoad/FlPop *)
      match a with
      | Ast.Quote (Float f) -> pre_fconst st f (const_ix ctx a)
      | Ast.Quote (Int n) -> pre_fconst st (float_of_int n) (const_ix ctx a)
      | Ast.LocalRef (d, i) -> (
          match resolve scopes d i with
          | `In (HIreg s) ->
              let r = res () in
              emit st (Il.FlOfI (r, s));
              r
          | `In (HFreg r) -> r (* conversion on a float is identity *)
          | `In (HSlot s) ->
              emit st (Il.Lref (0, s));
              adj st 1;
              let r = res () in
              emit st (Il.FxToFl r);
              adj st (-1);
              r
          | `Up (d', s) ->
              emit st (Il.Lref (d', s));
              adj st 1;
              let r = res () in
              emit st (Il.FxToFl r);
              adj st (-1);
              r)
      | _ ->
          lower_expr ctx st scopes ~tail:false a;
          let r = res () in
          emit st (Il.FxToFl r);
          adj st (-1);
          r)
  | _ ->
      lower_expr ctx st scopes ~tail:false e;
      let r = res () in
      emit st (Il.FlPop r);
      adj st (-1);
      r

(* int-lane lowering: only statically-int expressions reach here *)
and lower_fx ?dst ctx st scopes (e : Ast.t) : int =
  match e with
  | Ast.Quote (Int n) -> pre_iconst st n
  | Ast.LocalRef (d, i) -> (
      match resolve scopes d i with `In (HIreg r) -> r | _ -> raise Unsupported)
  | Ast.App (f, [| a; b |]) -> (
      match imm_global f with
      | Some name -> (
          match fxbin_of_name name with
          | Some op ->
              let ra = lower_fx ctx st scopes a in
              let rb = lower_fx ctx st scopes b in
              let r = match dst with Some r -> r | None -> fresh_ireg st in
              emit st (Il.FxBin (op, r, ra, rb));
              r
          | None -> raise Unsupported)
      | None -> raise Unsupported)
  | _ -> raise Unsupported

(* ------------------------------------------------------------------ *)
(* Form entry point                                                   *)
(* ------------------------------------------------------------------ *)

let lower_form ?(unboxing = false) (a : Ast.t) : Il.code option =
  let consts, cix, globals, gix = collect_pools a in
  let ctx =
    {
      unboxing;
      consts;
      const_ix = cix;
      globals;
      global_ix = gix;
      protos = Array.make 4 None;
      nprotos = 0;
      f1 = [];
      nf1 = 0;
      f2 = [];
      nf2 = 0;
      cmps = [];
      ncmps = 0;
      inline_memo = AstTbl.create 8;
    }
  in
  match
    let ix = reserve_proto ctx in
    assert (ix = 0);
    let st =
      { buf = buf_make (); sp = 0; max_sp = 0; nlocals = 0; nfregs = 0;
        niregs = 0; pre = []; pre_fc = []; pre_ic = []; pre_ld = [];
        pre_params = [||] }
    in
    lower_expr ctx st [] ~tail:true a;
    emit st Il.Return;
    ctx.protos.(0) <-
      Some
        {
          Il.p_arity = 0;
          p_rest = false;
          p_name = "";
          p_nlocals = max st.nlocals 1;
          p_nfregs = st.nfregs;
          p_niregs = st.niregs;
          p_nstack = max st.max_sp 1;
          p_code = assemble st;
        };
    let protos =
      Array.init ctx.nprotos (fun i ->
          match ctx.protos.(i) with Some p -> p | None -> assert false)
    in
    {
      Il.protos;
      consts = ctx.consts;
      globals = ctx.globals;
      fast1s = Array.of_list (List.rev_map snd ctx.f1);
      fast2s = Array.of_list (List.rev_map snd ctx.f2);
      cmps = Array.of_list (List.rev_map snd ctx.cmps);
      f1names = Array.of_list (List.rev_map fst ctx.f1);
      f2names = Array.of_list (List.rev_map fst ctx.f2);
      cmpnames = Array.of_list (List.rev_map fst ctx.cmps);
    }
  with
  | code ->
      if Metrics.installed () then begin
        Metrics.countn "lower.protos" (Array.length code.Il.protos);
        Metrics.countn "lower.instructions"
          (Array.fold_left
             (fun acc (p : Il.proto) -> acc + Array.length p.Il.p_code)
             0 code.Il.protos)
      end;
      Some code
  | exception Unsupported -> None

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

(* The artifact carries only what the AST cannot reproduce: the
   instruction streams, proto shapes, and fast-pool names.  Constant
   and global pools are rebuilt by [collect_pools] over the recompiled
   AST; fast pools are re-resolved by name against the live registry.
   Everything here is validated on decode — any inconsistency raises
   [Il.Decode_error] and the caller degrades to lowering afresh. *)

let code_to_datum (c : Il.code) : Datum.annot =
  let names tag arr =
    Datum.list (Datum.sym tag :: Array.to_list (Array.map Datum.str arr))
  in
  let proto (p : Il.proto) =
    Datum.list
      [
        Datum.sym "proto";
        Datum.int p.Il.p_arity;
        Datum.bool p.Il.p_rest;
        Datum.str p.Il.p_name;
        Datum.int p.Il.p_nlocals;
        Datum.int p.Il.p_nfregs;
        Datum.int p.Il.p_niregs;
        Datum.int p.Il.p_nstack;
        Datum.list (List.map Datum.int (Il.encode_code p.Il.p_code));
      ]
  in
  Datum.list
    (names "f1" c.Il.f1names :: names "f2" c.Il.f2names
    :: names "cmp" c.Il.cmpnames
    :: Array.to_list (Array.map proto c.Il.protos))

let dfail fmt = Printf.ksprintf (fun s -> raise (Il.Decode_error s)) fmt

let d_int (d : Datum.annot) =
  match d.Datum.d with
  | Datum.Atom (Datum.Int n) -> n
  | _ -> dfail "expected int"

let d_str (d : Datum.annot) =
  match d.Datum.d with
  | Datum.Atom (Datum.Str s) -> s
  | _ -> dfail "expected string"

let d_bool (d : Datum.annot) =
  match d.Datum.d with
  | Datum.Atom (Datum.Bool b) -> b
  | _ -> dfail "expected bool"

let d_list (d : Datum.annot) =
  match d.Datum.d with Datum.List l -> l | _ -> dfail "expected list"

let d_tagged tag (d : Datum.annot) =
  match d_list d with
  | { Datum.d = Datum.Atom (Datum.Sym s); _ } :: rest when String.equal s tag ->
      rest
  | _ -> dfail "expected (%s ...)" tag

(* static validation: every operand in bounds so a decoded stream can
   never index outside its pools or its own code *)
let validate_code (c : Il.code) =
  let nprotos = Array.length c.Il.protos in
  let nconsts = Array.length c.Il.consts in
  let nglobals = Array.length c.Il.globals in
  let nf1 = Array.length c.Il.fast1s in
  let nf2 = Array.length c.Il.fast2s in
  let ncmp = Array.length c.Il.cmps in
  if nprotos = 0 then dfail "empty proto table";
  let p0 = c.Il.protos.(0) in
  if p0.Il.p_arity <> 0 || p0.Il.p_rest then dfail "entry proto shape";
  Array.iter
    (fun (p : Il.proto) ->
      let len = Array.length p.Il.p_code in
      if p.Il.p_nlocals < 1 || p.Il.p_nstack < 1 || p.Il.p_nfregs < 0
         || p.Il.p_niregs < 0 || p.Il.p_arity < 0
      then dfail "proto shape";
      let slot s = if s < 0 || s >= p.Il.p_nlocals then dfail "slot" in
      let depth d = if d < 0 then dfail "depth" in
      let lref d s =
        depth d;
        if d = 0 then slot s else if s < 0 then dfail "slot"
      in
      let freg r = if r < 0 || r >= p.Il.p_nfregs then dfail "freg" in
      let ireg r = if r < 0 || r >= p.Il.p_niregs then dfail "ireg" in
      let target t = if t < 0 || t >= len then dfail "jump target" in
      let cix i = if i < 0 || i >= nconsts then dfail "const index" in
      Array.iter
        (fun (i : Il.instr) ->
          match i with
          | Il.Const i -> cix i
          | Il.Pop | Il.Step | Il.Return -> ()
          | Il.Lref (d, s) | Il.Lset (d, s) -> lref d s
          | Il.Gref i | Il.Gset i ->
              if i < 0 || i >= nglobals then dfail "global index"
          | Il.Jump t | Il.Jfalse t | Il.StepJump t -> target t
          | Il.JcmpGen (ix, t) ->
              if ix < 0 || ix >= ncmp then dfail "cmp pool";
              target t
          | Il.MkClosure p ->
              if p <= 0 || p >= nprotos then dfail "proto index"
          | Il.Call n | Il.TailCall n | Il.CallKnown n | Il.TailCallKnown n ->
              if n < 0 then dfail "argc"
          | Il.VecRefU | Il.VecSetU -> ()
          | Il.Fast1 i -> if i < 0 || i >= nf1 then dfail "fast1 pool"
          | Il.Fast2 i -> if i < 0 || i >= nf2 then dfail "fast2 pool"
          | Il.BindE (d, s, k) ->
              if d <> 0 then dfail "bind depth";
              slot s;
              if k < 0 || k > 2 then dfail "bind kind"
          | Il.BindEV (d, s, n) ->
              if d <> 0 then dfail "bind depth";
              if n < 1 || s < 0 || s + n > p.Il.p_nlocals then dfail "bindv"
          | Il.ClearE (d, s) ->
              if d <> 0 then dfail "clear depth";
              slot s
          | Il.FlConst (r, i) ->
              freg r;
              cix i
          | Il.FlLoad (r, d, s) ->
              freg r;
              lref d s
          | Il.FlPop r | Il.FlPush r | Il.FxToFl r -> freg r
          | Il.FlBin (_, d, a, b) ->
              freg d;
              freg a;
              freg b
          | Il.FlUn (_, d, a) ->
              freg d;
              freg a
          | Il.FlCmp (_, a, b) ->
              freg a;
              freg b
          | Il.FlJcmp (_, a, b, t) ->
              freg a;
              freg b;
              target t
          | Il.FlMov (d, s) ->
              freg d;
              freg s
          | Il.FlOfI (d, s) ->
              freg d;
              ireg s
          | Il.FxConst (r, _) -> ireg r
          | Il.FxPush r -> ireg r
          | Il.FxBin (_, d, a, b) ->
              ireg d;
              ireg a;
              ireg b
          | Il.FxCmp (_, a, b) ->
              ireg a;
              ireg b
          | Il.FxJcmp (_, a, b, t) ->
              ireg a;
              ireg b;
              target t
          | Il.FxMov (d, s) ->
              ireg d;
              ireg s)
        p.Il.p_code)
    c.Il.protos

let code_of_datum (a : Ast.t) (d : Datum.annot) : Il.code =
  let consts, _, globals, _ = collect_pools a in
  match d_list d with
  | f1d :: f2d :: cmpd :: protods ->
      let f1names =
        Array.of_list (List.map d_str (d_tagged "f1" f1d))
      in
      let f2names = Array.of_list (List.map d_str (d_tagged "f2" f2d)) in
      let cmpnames = Array.of_list (List.map d_str (d_tagged "cmp" cmpd)) in
      let fast1s =
        Array.map
          (fun n ->
            match Hashtbl.find_opt Interp.fast1 n with
            | Some fn -> fn
            | None -> dfail "unknown fast1 %s" n)
          f1names
      in
      let fast2s =
        Array.map
          (fun n ->
            match Hashtbl.find_opt Interp.fast2 n with
            | Some fn -> fn
            | None -> dfail "unknown fast2 %s" n)
          f2names
      in
      let cmps =
        Array.map
          (fun n ->
            match cmp_fn_of_name n with
            | Some fn -> fn
            | None -> dfail "unknown cmp %s" n)
          cmpnames
      in
      let protos =
        Array.of_list
          (List.map
             (fun pd ->
               match d_tagged "proto" pd with
               | [ arity; rest; name; nlocals; nfregs; niregs; nstack; code ]
                 ->
                   {
                     Il.p_arity = d_int arity;
                     p_rest = d_bool rest;
                     p_name = d_str name;
                     p_nlocals = d_int nlocals;
                     p_nfregs = d_int nfregs;
                     p_niregs = d_int niregs;
                     p_nstack = d_int nstack;
                     p_code = Il.decode_code (List.map d_int (d_list code));
                   }
               | _ -> dfail "bad proto")
             protods)
      in
      let code =
        {
          Il.protos;
          consts;
          globals;
          fast1s;
          fast2s;
          cmps;
          f1names;
          f2names;
          cmpnames;
        }
      in
      validate_code code;
      code
  | _ -> dfail "bad bytecode form"
