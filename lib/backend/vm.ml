(* The bytecode engine: executes Il.code produced by Lower, with exact
   observable parity with lib/runtime/interp.ml — same results, same
   error messages, same [Interp.step] fuel/metrics cadence, same
   evaluation orders.  Anything Lower could not express runs on the
   tree walker via the per-form fallback, so [eval_top] is a drop-in
   replacement for [Interp.eval_top].

   Execution model: one [exec] activation per procedure call.  The
   value stack, float register file, and int register file are local
   arrays sized by the proto; the locals array doubles as the
   environment frame child closures capture (interp env shape).  Hot
   loops are inlined into their enclosing proto by Lower, so float
   kernels iterate entirely inside one activation, touching only the
   unboxed register files — no allocation per iteration. *)

open Liblang_runtime
open Value
module Metrics = Liblang_observe.Metrics

(* total instructions retired; eval_top snapshots around each form *)
let executed = ref 0

let rec lookup_env (env : env) d =
  if d = 0 then env else lookup_env env.up (d - 1)

let flbin_fn : Il.flbin -> float -> float -> float = function
  | Il.FAdd -> ( +. )
  | Il.FSub -> ( -. )
  | Il.FMul -> ( *. )
  | Il.FDiv -> ( /. )
  | Il.FMin -> Float.min
  | Il.FMax -> Float.max
  | Il.FExpt -> Float.pow

let flun_fn : Il.flun -> float -> float = function
  | Il.FAbs -> Float.abs
  | Il.FSqrt -> Float.sqrt
  | Il.FSin -> Float.sin
  | Il.FCos -> Float.cos
  | Il.FTan -> Float.tan
  | Il.FAtan -> Float.atan
  | Il.FExp -> Float.exp
  | Il.FLog -> Float.log
  | Il.FFloor -> Float.floor
  | Il.FCeil -> Float.ceil
  | Il.FRound -> Numeric.round_half_even
  | Il.FTrunc -> Float.trunc

let fl_cvt = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> error "unsafe-fx->fl: expects a fixnum, given %s" (write_string v)

(* Shared empty register files: most protos have no unboxed registers,
   and an activation must not pay an allocation for files it never
   touches. *)
let no_fregs : float array = [||]
let no_iregs : int array = [||]

let call_n (stack : value array) n sp =
  match n with
  | 0 -> Interp.apply stack.(sp - 1) []
  | 1 -> Interp.apply1 stack.(sp - 1) stack.(sp - 2)
  | 2 -> Interp.apply2 stack.(sp - 3) stack.(sp - 2) stack.(sp - 1)
  | 3 -> Interp.apply3 stack.(sp - 4) stack.(sp - 3) stack.(sp - 2) stack.(sp - 1)
  | 4 ->
      Interp.apply4 stack.(sp - 5) stack.(sp - 4) stack.(sp - 3) stack.(sp - 2)
        stack.(sp - 1)
  | 5 ->
      Interp.apply5 stack.(sp - 6) stack.(sp - 5) stack.(sp - 4) stack.(sp - 3)
        stack.(sp - 2) stack.(sp - 1)
  | _ ->
      let rec args i acc =
        if i < sp - n then acc else args (i - 1) (stack.(i) :: acc)
      in
      Interp.apply stack.(sp - n - 1) (args (sp - 1) [])

(* A call site the flow analysis proved monomorphic: the common case is
   an exact-arity closure, entered with a frame built straight off the
   stack — no applyN dispatch chain.  Anything else (a fact made stale
   by an escaped rebind, or code round-tripped through an artifact that
   dropped the analysis) falls back to the generic path, so the
   observable behavior — including arity errors — is identical. *)
let call_known (stack : value array) n sp =
  let f = if n = 1 then stack.(sp - 1) else stack.(sp - n - 1) in
  match f with
  | Closure c when c.arity = n && not c.rest ->
      Interp.step ();
      let frame = Array.make (max n 1) Undefined in
      (if n = 1 then frame.(0) <- stack.(sp - 2)
       else
         for k = 0 to n - 1 do
           frame.(k) <- stack.(sp - n + k)
         done);
      c.code { frame; up = c.cl_env }
  | _ -> call_n stack n sp

(* One [exec] activation per procedure call: three array allocations
   (often two, via the shared empties) and a tail-recursive dispatch
   loop with every piece of state in parameters — no closure is
   allocated, which is what keeps call-heavy code (fibfp) at parity
   with the tree-walker's compiled closures.

   Register indices were bounds-checked against the proto's declared
   register-file sizes when the code was built (Lower) or decoded
   (Il.validate via Lower.code_of_datum), so the hot loop reads the
   register files unchecked; the value stack and locals keep their
   checks.  [ic] (instructions retired) rides along as an unboxed
   parameter and lands in [executed] only at activation exit. *)
type act = {
  a_c : Il.code;
  a_code : Il.instr array;
  a_env : env;
  a_locals : value array;
  a_fregs : float array;
  a_iregs : int array;
  a_stack : value array;
}

let rec exec (c : Il.code) (p : Il.proto) (env : env) : value =
  let a =
    {
      a_c = c;
      a_code = p.Il.p_code;
      a_env = env;
      a_locals = env.frame;
      a_fregs = (if p.Il.p_nfregs = 0 then no_fregs else Array.make p.Il.p_nfregs 0.);
      a_iregs = (if p.Il.p_niregs = 0 then no_iregs else Array.make p.Il.p_niregs 0);
      a_stack = Array.make p.Il.p_nstack Undefined;
    }
  in
  go a 0 0 0

and go (a : act) pc sp ic : value =
  match a.a_code.(pc) with
  | Il.Const i ->
      a.a_stack.(sp) <- a.a_c.Il.consts.(i);
      go a (pc + 1) (sp + 1) (ic + 1)
  | Il.Pop -> go a (pc + 1) (sp - 1) (ic + 1)
  | Il.Lref (0, s) ->
      a.a_stack.(sp) <- Array.unsafe_get a.a_locals s;
      go a (pc + 1) (sp + 1) (ic + 1)
  | Il.Lref (d, s) ->
      a.a_stack.(sp) <- (lookup_env a.a_env d).frame.(s);
      go a (pc + 1) (sp + 1) (ic + 1)
  | Il.Lset (d, s) ->
      let v = a.a_stack.(sp - 1) in
      if d = 0 then a.a_locals.(s) <- v else (lookup_env a.a_env d).frame.(s) <- v;
      a.a_stack.(sp - 1) <- Void;
      go a (pc + 1) sp (ic + 1)
  | Il.Gref i ->
      let g = a.a_c.Il.globals.(i) in
      let v = g.Ast.g_val in
      if v == Undefined then
        error "%s: undefined; cannot reference before definition" g.Ast.g_name
      else begin
        a.a_stack.(sp) <- v;
        go a (pc + 1) (sp + 1) (ic + 1)
      end
  | Il.Gset i ->
      (a.a_c.Il.globals.(i)).Ast.g_val <- a.a_stack.(sp - 1);
      a.a_stack.(sp - 1) <- Void;
      go a (pc + 1) sp (ic + 1)
  | Il.Jump t -> go a t sp (ic + 1)
  | Il.Jfalse t ->
      if truthy a.a_stack.(sp - 1) then
        go a (pc + 1) (sp - 1) (ic + 1)
      else go a t (sp - 1) (ic + 1)
  | Il.JcmpGen (ix, t) ->
      if a.a_c.Il.cmps.(ix) a.a_stack.(sp - 2) a.a_stack.(sp - 1) then
        go a (pc + 1) (sp - 2) (ic + 1)
      else go a t (sp - 2) (ic + 1)
  | Il.MkClosure ix ->
      let pr = a.a_c.Il.protos.(ix) in
      a.a_stack.(sp) <-
        Closure
          {
            arity = pr.Il.p_arity;
            rest = pr.Il.p_rest;
            cl_name = pr.Il.p_name;
            cl_env = a.a_env;
            code = enter a.a_c ix;
          };
      go a (pc + 1) (sp + 1) (ic + 1)
  | Il.Call n ->
      let v = call_n a.a_stack n sp in
      let sp' = sp - n in
      a.a_stack.(sp' - 1) <- v;
      go a (pc + 1) sp' (ic + 1)
  | Il.TailCall n ->
      executed := !executed + ic + 1;
      call_n a.a_stack n sp
  | Il.CallKnown n ->
      let v = call_known a.a_stack n sp in
      let sp' = sp - n in
      a.a_stack.(sp' - 1) <- v;
      go a (pc + 1) sp' (ic + 1)
  | Il.TailCallKnown n ->
      executed := !executed + ic + 1;
      call_known a.a_stack n sp
  | Il.VecRefU ->
      (match (a.a_stack.(sp - 2), a.a_stack.(sp - 1)) with
      | Vec arr, Int i -> a.a_stack.(sp - 2) <- Array.unsafe_get arr i
      | _ -> error "unchecked-vector-ref: undefined behavior off-type");
      go a (pc + 1) (sp - 1) (ic + 1)
  | Il.VecSetU ->
      (match (a.a_stack.(sp - 3), a.a_stack.(sp - 2)) with
      | Vec arr, Int i ->
          Array.unsafe_set arr i a.a_stack.(sp - 1);
          a.a_stack.(sp - 3) <- Void
      | _ -> error "unchecked-vector-set!: undefined behavior off-type");
      go a (pc + 1) (sp - 2) (ic + 1)
  | Il.Fast1 i ->
      a.a_stack.(sp - 1) <- a.a_c.Il.fast1s.(i) a.a_stack.(sp - 1);
      go a (pc + 1) sp (ic + 1)
  | Il.Fast2 i ->
      a.a_stack.(sp - 2) <- a.a_c.Il.fast2s.(i) a.a_stack.(sp - 2) a.a_stack.(sp - 1);
      go a (pc + 1) (sp - 1) (ic + 1)
  | Il.Step ->
      Interp.step ();
      go a (pc + 1) sp (ic + 1)
  | Il.StepJump t ->
      Interp.step ();
      go a t sp (ic + 1)
  | Il.Return ->
      executed := !executed + ic + 1;
      a.a_stack.(sp - 1)
  | Il.BindE (0, s, k) ->
      let v = a.a_stack.(sp - 1) in
      (if k <> Il.bind_none then
         match v with
         | Values _ ->
             if k = Il.bind_short then error "context expected 1 value"
             else error "context expected 1 value, got multiple values"
         | _ -> ());
      a.a_locals.(s) <- v;
      go a (pc + 1) (sp - 1) (ic + 1)
  | Il.BindE (_, _, _) -> assert false
  | Il.BindEV (_, s, n) -> (
      match a.a_stack.(sp - 1) with
      | Values vs when List.length vs = n ->
          List.iteri (fun j v -> a.a_locals.(s + j) <- v) vs;
          go a (pc + 1) (sp - 1) (ic + 1)
      | _ -> error "context expected %d values" n)
  | Il.ClearE (_, s) ->
      a.a_locals.(s) <- Undefined;
      go a (pc + 1) sp (ic + 1)
  | Il.FlConst (r, i) ->
      Array.unsafe_set a.a_fregs r (Flfuse.ub a.a_c.Il.consts.(i));
      go a (pc + 1) sp (ic + 1)
  | Il.FlLoad (r, 0, s) ->
      Array.unsafe_set a.a_fregs r
        (match Array.unsafe_get a.a_locals s with Float f -> f | v -> Flfuse.ub v);
      go a (pc + 1) sp (ic + 1)
  | Il.FlLoad (r, d, s) ->
      Array.unsafe_set a.a_fregs r
        (match (lookup_env a.a_env d).frame.(s) with Float f -> f | v -> Flfuse.ub v);
      go a (pc + 1) sp (ic + 1)
  | Il.FlPop r ->
      Array.unsafe_set a.a_fregs r
        (match a.a_stack.(sp - 1) with Float f -> f | v -> Flfuse.ub v);
      go a (pc + 1) (sp - 1) (ic + 1)
  | Il.FlPush r ->
      a.a_stack.(sp) <- Float (Array.unsafe_get a.a_fregs r);
      go a (pc + 1) (sp + 1) (ic + 1)
  | Il.FlBin (op, d, ra, rb) ->
      let x = Array.unsafe_get a.a_fregs ra and y = Array.unsafe_get a.a_fregs rb in
      Array.unsafe_set a.a_fregs d
        (match op with
        | Il.FAdd -> x +. y
        | Il.FSub -> x -. y
        | Il.FMul -> x *. y
        | Il.FDiv -> x /. y
        | op -> flbin_fn op x y);
      go a (pc + 1) sp (ic + 1)
  | Il.FlUn (op, d, ra) ->
      Array.unsafe_set a.a_fregs d (flun_fn op (Array.unsafe_get a.a_fregs ra));
      go a (pc + 1) sp (ic + 1)
  | Il.FlCmp (cmp, ra, rb) ->
      let x = Array.unsafe_get a.a_fregs ra and y = Array.unsafe_get a.a_fregs rb in
      a.a_stack.(sp) <-
        Bool
          (match cmp with
          | Il.Clt -> x < y
          | Il.Cgt -> x > y
          | Il.Cle -> x <= y
          | Il.Cge -> x >= y
          | Il.Ceq -> x = y);
      go a (pc + 1) (sp + 1) (ic + 1)
  | Il.FlJcmp (cmp, ra, rb, t) ->
      let x = Array.unsafe_get a.a_fregs ra and y = Array.unsafe_get a.a_fregs rb in
      let hit =
        match cmp with
        | Il.Clt -> x < y
        | Il.Cgt -> x > y
        | Il.Cle -> x <= y
        | Il.Cge -> x >= y
        | Il.Ceq -> x = y
      in
      if hit then go a (pc + 1) sp (ic + 1) else go a t sp (ic + 1)
  | Il.FlMov (d, s) ->
      Array.unsafe_set a.a_fregs d (Array.unsafe_get a.a_fregs s);
      go a (pc + 1) sp (ic + 1)
  | Il.FlOfI (d, s) ->
      Array.unsafe_set a.a_fregs d (float_of_int (Array.unsafe_get a.a_iregs s));
      go a (pc + 1) sp (ic + 1)
  | Il.FxToFl r ->
      Array.unsafe_set a.a_fregs r (fl_cvt a.a_stack.(sp - 1));
      go a (pc + 1) (sp - 1) (ic + 1)
  | Il.FxConst (r, n) ->
      Array.unsafe_set a.a_iregs r n;
      go a (pc + 1) sp (ic + 1)
  | Il.FxPush r ->
      a.a_stack.(sp) <- Int (Array.unsafe_get a.a_iregs r);
      go a (pc + 1) (sp + 1) (ic + 1)
  | Il.FxBin (op, d, ra, rb) ->
      let x = Array.unsafe_get a.a_iregs ra and y = Array.unsafe_get a.a_iregs rb in
      Array.unsafe_set a.a_iregs d
        (match op with Il.XAdd -> x + y | Il.XSub -> x - y | Il.XMul -> x * y);
      go a (pc + 1) sp (ic + 1)
  | Il.FxCmp (cmp, ra, rb) ->
      let x = Array.unsafe_get a.a_iregs ra and y = Array.unsafe_get a.a_iregs rb in
      a.a_stack.(sp) <-
        Bool
          (match cmp with
          | Il.Clt -> x < y
          | Il.Cgt -> x > y
          | Il.Cle -> x <= y
          | Il.Cge -> x >= y
          | Il.Ceq -> x = y);
      go a (pc + 1) (sp + 1) (ic + 1)
  | Il.FxJcmp (cmp, ra, rb, t) ->
      let x = Array.unsafe_get a.a_iregs ra and y = Array.unsafe_get a.a_iregs rb in
      let hit =
        match cmp with
        | Il.Clt -> x < y
        | Il.Cgt -> x > y
        | Il.Cle -> x <= y
        | Il.Cge -> x >= y
        | Il.Ceq -> x = y
      in
      if hit then go a (pc + 1) sp (ic + 1) else go a t sp (ic + 1)
  | Il.FxMov (d, s) ->
      Array.unsafe_set a.a_iregs d (Array.unsafe_get a.a_iregs s);
      go a (pc + 1) sp (ic + 1)

(* Closure entry: interp's [apply] hands us a frame sized exactly to
   the arguments; pad it out to the proto's coalesced locals count so
   let-bindings in the body have their slots.  The padded array is the
   frame child closures capture. *)
and enter (c : Il.code) ix : env -> value =
 fun given ->
  let p = c.Il.protos.(ix) in
  let nargs = Array.length given.frame in
  if nargs >= p.Il.p_nlocals then exec c p given
  else begin
    let locals = Array.make p.Il.p_nlocals Undefined in
    Array.blit given.frame 0 locals 0 nargs;
    exec c p { frame = locals; up = given.up }
  end

let run_code (c : Il.code) : value =
  let p = c.Il.protos.(0) in
  let frame = Array.make p.Il.p_nlocals Undefined in
  exec c p { frame; up = top_env }

(* -- per-form code cache -------------------------------------------------

   Keyed on the Ast node's physical identity (forms are compiled once
   and re-evaluated many times — the compile server and warm runs), and
   ephemeral so dropping a program's forms drops its bytecode.  Each
   entry caches both unboxing variants: the ablation benchmarks flip
   [Interp.unboxing_enabled] between runs of the same form. *)

type lowered = LCode of Il.code | LInterp

type entry = { mutable on_ : lowered option; mutable off_ : lowered option }

module Cache = Ephemeron.K1.Make (struct
  type t = Ast.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let cache : entry Cache.t = Cache.create 256

let entry_of (a : Ast.t) : entry =
  match Cache.find_opt cache a with
  | Some e -> e
  | None ->
      let e = { on_ = None; off_ = None } in
      Cache.replace cache a e;
      e

let get (e : entry) unboxing = if unboxing then e.on_ else e.off_

let set (e : entry) unboxing l =
  if unboxing then e.on_ <- Some l else e.off_ <- Some l

(* Loader priming: install artifact-decoded bytecode so [eval_top]
   skips lowering entirely on warm runs. *)
let prime (a : Ast.t) ~unboxing (c : Il.code) =
  set (entry_of a) unboxing (LCode c);
  Metrics.count "vm.loads"

(* A decoded artifact records which forms fell back at lower time; keep
   the warm path's behavior (and lower-phase timing ≈ 0) identical. *)
let prime_fallback (a : Ast.t) ~unboxing =
  set (entry_of a) unboxing LInterp

let eval_top (a : Ast.t) : value =
  let unboxing = !Interp.unboxing_enabled in
  let e = entry_of a in
  let l =
    match get e unboxing with
    | Some l -> l
    | None ->
        let l =
          Metrics.time "phase.lower" @@ fun () ->
          match Lower.lower_form ~unboxing a with
          | Some c -> LCode c
          | None -> LInterp
        in
        set e unboxing l;
        l
  in
  match l with
  | LInterp -> Interp.eval_top a
  | LCode c ->
      if Metrics.installed () then begin
        let before = !executed in
        let v = run_code c in
        Metrics.countn "vm.instructions" (!executed - before);
        v
      end
      else run_code c

(* -- engine selection ---------------------------------------------------- *)

module Engine = struct
  type t = Interp | Vm

  let current : t ref = ref Interp

  let of_string = function
    | "interp" -> Some Interp
    | "vm" -> Some Vm
    | _ -> None

  let to_string = function Interp -> "interp" | Vm -> "vm"
end

let eval (a : Ast.t) : value =
  match !Engine.current with
  | Engine.Interp -> Interp.eval_top a
  | Engine.Vm -> eval_top a
