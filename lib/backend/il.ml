(** The typed intermediate language executed by {!Vm}.

    A fully-expanded core form ({!Liblang_runtime.Ast.t}) is lowered by
    {!Lower} into a table of [proto]s — flat instruction arrays with
    explicit locals, resolved variable slots, and known-primitive calls —
    plus shared constant/global pools drawn from the source AST in
    pre-order.  Entry 0 of the table is the form's top-level code; other
    entries are the bodies of the lambdas it creates.

    Two register files sit beside the value stack: [fregs] holds unboxed
    OCaml floats and is targeted wherever the typed optimizer emitted
    [fl:*] rewrites ([unsafe-fl*] primitives), and [iregs] holds unboxed
    ints for loop counters the lowerer can prove are fixnum-valued.
    Instructions over those files ([FlBin], [FxJcmp], ...) neither
    allocate nor dispatch.

    The instruction stream serializes to a flat int list (see
    {!encode_code}); constants and globals are referenced by their
    pre-order position in the AST, so a [.lart] artifact can carry
    bytecode without duplicating the constant pool (the loader re-walks
    the recompiled AST to rebuild the pools — see {!Lower.collect_pools}). *)

open Liblang_runtime

type cmp = Clt | Cgt | Cle | Cge | Ceq

type flbin = FAdd | FSub | FMul | FDiv | FMin | FMax | FExpt

type flun =
  | FAbs
  | FSqrt
  | FSin
  | FCos
  | FTan
  | FAtan
  | FExp
  | FLog
  | FFloor
  | FCeil
  | FRound
  | FTrunc

type fxbin = XAdd | XSub | XMul

type instr =
  (* values and variables ------------------------------------------------ *)
  | Const of int  (** push [consts.(i)] *)
  | Pop
  | Lref of int * int  (** push [frame(depth).(slot)] *)
  | Lset of int * int  (** pop v; [frame(depth).(slot) <- v]; push Void *)
  | Gref of int  (** push [globals.(i)]; error when still Undefined *)
  | Gset of int  (** pop v; [globals.(i).g_val <- v]; push Void *)
  (* control -------------------------------------------------------------- *)
  | Jump of int
  | Jfalse of int  (** pop; jump when not [truthy] *)
  | JcmpGen of int * int  (** pop b, a; cmps pool ix, target-if-false *)
  | MkClosure of int  (** push a closure over [protos.(i)] capturing the current env *)
  | Call of int  (** argc; pops argc args then the callee; pushes result *)
  | TailCall of int  (** like [Call] but releases this frame's VM state first *)
  | CallKnown of int
      (** [Call] at a site the flow analysis proved monomorphic: the callee
          is expected to be an exact-arity closure, entered without generic
          dispatch; anything else falls back to the [Call] path *)
  | TailCallKnown of int  (** tail form of [CallKnown] *)
  | Fast1 of int  (** unary fast-path primitive: pool index into [fast1s] *)
  | Fast2 of int  (** binary fast-path primitive: pool index into [fast2s] *)
  | VecRefU  (** pop i, v; push element — bounds proved by the analysis *)
  | VecSetU  (** pop x, i, v; store unchecked; push Void *)
  | Step  (** one interpreter fuel tick (inlined loop iteration) *)
  | StepJump of int  (** fused [Step; Jump t]: the inlined-loop back edge *)
  | Return
  (* binding -------------------------------------------------------------- *)
  | BindE of int * int * int  (** pop v into [frame(depth).(slot)]; kind *)
  | BindEV of int * int * int  (** pop v; spread [n] values into slots from [start] *)
  | ClearE of int * int  (** [frame(depth).(slot) <- Undefined] (letrec reset) *)
  (* unboxed float lane --------------------------------------------------- *)
  | FlConst of int * int  (** fregs.(r) <- float of [consts.(i)] (Int/Float) *)
  | FlLoad of int * int * int  (** fregs.(r) <- unbox_float [frame(d).(i)] *)
  | FlPop of int  (** pop v; fregs.(r) <- unbox_float v *)
  | FlPush of int  (** push [Float fregs.(r)] *)
  | FlBin of flbin * int * int * int  (** dst, a, b *)
  | FlUn of flun * int * int  (** dst, a *)
  | FlCmp of cmp * int * int  (** push [Bool (a OP b)] *)
  | FlJcmp of cmp * int * int * int  (** a, b, target-if-false *)
  | FlMov of int * int
  | FlOfI of int * int  (** fregs.(d) <- float_of_int iregs.(s) *)
  (* unboxed int lane ----------------------------------------------------- *)
  | FxConst of int * int  (** iregs.(r) <- n *)
  | FxPush of int  (** push [Int iregs.(r)] *)
  | FxBin of fxbin * int * int * int
  | FxCmp of cmp * int * int
  | FxJcmp of cmp * int * int * int
  | FxMov of int * int
  | FxToFl of int  (** pop v; fregs.(r) <- [unsafe-fx->fl]'s conversion of v *)

(** Values-check kinds for [BindE], matching the interpreter's
    three binding error shapes exactly. *)
let bind_none = 0 (* no check: named-let closure slot *)

let bind_short = 1 (* "context expected 1 value" (specialized let) *)
let bind_long = 2 (* "context expected 1 value, got multiple values" *)

type proto = {
  p_arity : int;
  p_rest : bool;
  p_name : string;  (** closure name for arity errors; "" = anonymous *)
  p_nlocals : int;  (** size of the base locals frame (>= max (arity+rest) 1) *)
  p_nfregs : int;
  p_niregs : int;
  p_nstack : int;  (** max operand-stack depth *)
  p_code : instr array;
}

(** One lowered top-level form: a proto table plus the pools shared by
    every proto in it.  [fast1s]/[fast2s] hold resolved primitive
    functions; [cmps] holds unwrapped comparators for [JcmpGen]. *)
type code = {
  protos : proto array;  (** entry 0 runs the form itself *)
  consts : Value.value array;  (** pre-order Quote/QuoteStx pool *)
  globals : Ast.global array;  (** pre-order GlobalRef/SetGlobal pool *)
  fast1s : (Value.value -> Value.value) array;
  fast2s : (Value.value -> Value.value -> Value.value) array;
  cmps : (Value.value -> Value.value -> bool) array;
  f1names : string array;  (** pool names, for serialization *)
  f2names : string array;
  cmpnames : string array;
}

exception Decode_error of string

let decode_fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* -- instruction <-> flat int stream ------------------------------------- *)

let cmp_to_int = function Clt -> 0 | Cgt -> 1 | Cle -> 2 | Cge -> 3 | Ceq -> 4

let cmp_of_int = function
  | 0 -> Clt
  | 1 -> Cgt
  | 2 -> Cle
  | 3 -> Cge
  | 4 -> Ceq
  | n -> decode_fail "bad cmp %d" n

let flbin_to_int = function
  | FAdd -> 0
  | FSub -> 1
  | FMul -> 2
  | FDiv -> 3
  | FMin -> 4
  | FMax -> 5
  | FExpt -> 6

let flbin_of_int = function
  | 0 -> FAdd
  | 1 -> FSub
  | 2 -> FMul
  | 3 -> FDiv
  | 4 -> FMin
  | 5 -> FMax
  | 6 -> FExpt
  | n -> decode_fail "bad flbin %d" n

let flun_to_int = function
  | FAbs -> 0
  | FSqrt -> 1
  | FSin -> 2
  | FCos -> 3
  | FTan -> 4
  | FAtan -> 5
  | FExp -> 6
  | FLog -> 7
  | FFloor -> 8
  | FCeil -> 9
  | FRound -> 10
  | FTrunc -> 11

let flun_of_int = function
  | 0 -> FAbs
  | 1 -> FSqrt
  | 2 -> FSin
  | 3 -> FCos
  | 4 -> FTan
  | 5 -> FAtan
  | 6 -> FExp
  | 7 -> FLog
  | 8 -> FFloor
  | 9 -> FCeil
  | 10 -> FRound
  | 11 -> FTrunc
  | n -> decode_fail "bad flun %d" n

let fxbin_to_int = function XAdd -> 0 | XSub -> 1 | XMul -> 2

let fxbin_of_int = function
  | 0 -> XAdd
  | 1 -> XSub
  | 2 -> XMul
  | n -> decode_fail "bad fxbin %d" n

(* Opcode table.  Each instruction encodes as [opcode; operand...] with a
   fixed per-opcode arity, so the stream needs no framing. *)
let instr_to_ints = function
  | Const i -> [ 0; i ]
  | Pop -> [ 1 ]
  | Lref (d, i) -> [ 2; d; i ]
  | Lset (d, i) -> [ 3; d; i ]
  | Gref i -> [ 4; i ]
  | Gset i -> [ 5; i ]
  | Jump t -> [ 6; t ]
  | Jfalse t -> [ 7; t ]
  | JcmpGen (f, t) -> [ 8; f; t ]
  | MkClosure p -> [ 9; p ]
  | Call n -> [ 10; n ]
  | TailCall n -> [ 11; n ]
  | Fast1 i -> [ 12; i ]
  | Fast2 i -> [ 13; i ]
  | Step -> [ 14 ]
  | StepJump t -> [ 18; t ]
  | Return -> [ 15 ]
  | BindE (d, s, k) -> [ 20; d; s; k ]
  | BindEV (d, s, n) -> [ 16; d; s; n ]
  | ClearE (d, s) -> [ 21; d; s ]
  | FlConst (r, i) -> [ 22; r; i ]
  | FlLoad (r, d, i) -> [ 23; r; d; i ]
  | FlPop r -> [ 24; r ]
  | FlPush r -> [ 25; r ]
  | FlBin (op, d, a, b) -> [ 26; flbin_to_int op; d; a; b ]
  | FlUn (op, d, a) -> [ 27; flun_to_int op; d; a ]
  | FlCmp (c, a, b) -> [ 28; cmp_to_int c; a; b ]
  | FlJcmp (c, a, b, t) -> [ 29; cmp_to_int c; a; b; t ]
  | FlMov (d, s) -> [ 30; d; s ]
  | FlOfI (d, s) -> [ 31; d; s ]
  | FxConst (r, n) -> [ 32; r; n ]
  | FxPush r -> [ 33; r ]
  | FxBin (op, d, a, b) -> [ 34; fxbin_to_int op; d; a; b ]
  | FxCmp (c, a, b) -> [ 35; cmp_to_int c; a; b ]
  | FxJcmp (c, a, b, t) -> [ 36; cmp_to_int c; a; b; t ]
  | FxMov (d, s) -> [ 37; d; s ]
  | FxToFl r -> [ 17; r ]
  | VecRefU -> [ 19 ]
  | CallKnown n -> [ 38; n ]
  | TailCallKnown n -> [ 39; n ]
  | VecSetU -> [ 40 ]

let encode_code (code : instr array) : int list =
  Array.fold_right (fun i acc -> instr_to_ints i @ acc) code []

let decode_code (ints : int list) : instr array =
  let out = ref [] in
  let rec go = function
    | [] -> ()
    | 0 :: i :: r -> emit (Const i) r
    | 1 :: r -> emit Pop r
    | 2 :: d :: i :: r -> emit (Lref (d, i)) r
    | 3 :: d :: i :: r -> emit (Lset (d, i)) r
    | 4 :: i :: r -> emit (Gref i) r
    | 5 :: i :: r -> emit (Gset i) r
    | 6 :: t :: r -> emit (Jump t) r
    | 7 :: t :: r -> emit (Jfalse t) r
    | 8 :: f :: t :: r -> emit (JcmpGen (f, t)) r
    | 9 :: p :: r -> emit (MkClosure p) r
    | 10 :: n :: r -> emit (Call n) r
    | 11 :: n :: r -> emit (TailCall n) r
    | 12 :: i :: r -> emit (Fast1 i) r
    | 13 :: i :: r -> emit (Fast2 i) r
    | 14 :: r -> emit Step r
    | 15 :: r -> emit Return r
    | 16 :: d :: s :: n :: r -> emit (BindEV (d, s, n)) r
    | 17 :: rg :: r -> emit (FxToFl rg) r
    | 18 :: t :: r -> emit (StepJump t) r
    | 20 :: d :: s :: k :: r -> emit (BindE (d, s, k)) r
    | 21 :: d :: s :: r -> emit (ClearE (d, s)) r
    | 22 :: rg :: i :: r -> emit (FlConst (rg, i)) r
    | 23 :: rg :: d :: i :: r -> emit (FlLoad (rg, d, i)) r
    | 24 :: rg :: r -> emit (FlPop rg) r
    | 25 :: rg :: r -> emit (FlPush rg) r
    | 26 :: op :: d :: a :: b :: r -> emit (FlBin (flbin_of_int op, d, a, b)) r
    | 27 :: op :: d :: a :: r -> emit (FlUn (flun_of_int op, d, a)) r
    | 28 :: c :: a :: b :: r -> emit (FlCmp (cmp_of_int c, a, b)) r
    | 29 :: c :: a :: b :: t :: r -> emit (FlJcmp (cmp_of_int c, a, b, t)) r
    | 30 :: d :: s :: r -> emit (FlMov (d, s)) r
    | 31 :: d :: s :: r -> emit (FlOfI (d, s)) r
    | 32 :: rg :: n :: r -> emit (FxConst (rg, n)) r
    | 33 :: rg :: r -> emit (FxPush rg) r
    | 34 :: op :: d :: a :: b :: r -> emit (FxBin (fxbin_of_int op, d, a, b)) r
    | 35 :: c :: a :: b :: r -> emit (FxCmp (cmp_of_int c, a, b)) r
    | 36 :: c :: a :: b :: t :: r -> emit (FxJcmp (cmp_of_int c, a, b, t)) r
    | 37 :: d :: s :: r -> emit (FxMov (d, s)) r
    | 19 :: r -> emit VecRefU r
    | 38 :: n :: r -> emit (CallKnown n) r
    | 39 :: n :: r -> emit (TailCallKnown n) r
    | 40 :: r -> emit VecSetU r
    | op :: _ -> decode_fail "bad opcode %d" op
  and emit i r =
    out := i :: !out;
    go r
  in
  go ints;
  Array.of_list (List.rev !out)
