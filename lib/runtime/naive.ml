(** A deliberately plain AST-walking evaluator over the same core AST.

    Used as the slower comparison backend in the Fig. 6/8 reproductions
    (standing in for the other Scheme systems the paper measures — see the
    substitution table in DESIGN.md).  It re-inspects the AST at every step,
    always conses argument lists, and never specializes primitives or
    unboxes floats. *)

open Value

(* Naive closures reuse the [Closure] representation by storing an
   AST-walking [code] thunk built at closure-creation time. *)

let rec eval (a : Ast.t) (env : env) : value =
  match a with
  | Ast.Quote v -> v
  | Ast.QuoteStx s -> StxV s
  | Ast.LocalRef (d, i) ->
      let rec up env d = if d = 0 then env.frame.(i) else up env.up (d - 1) in
      up env d
  | Ast.GlobalRef g ->
      let v = g.Ast.g_val in
      if v == Undefined then error "%s: undefined; cannot reference before definition" g.Ast.g_name
      else v
  | Ast.SetLocal (d, i, e) ->
      let rec up env d = if d = 0 then env else up env.up (d - 1) in
      (up env d).frame.(i) <- eval e env;
      Void
  | Ast.SetGlobal (g, e) ->
      g.Ast.g_val <- eval e env;
      Void
  | Ast.If (c, t, e) -> if truthy (eval c env) then eval t env else eval e env
  | Ast.Begin es ->
      let n = Array.length es in
      for i = 0 to n - 2 do
        ignore (eval es.(i) env)
      done;
      eval es.(n - 1) env
  | Ast.Lambda l ->
      let body = l.Ast.l_body in
      Closure
        {
          arity = l.Ast.l_arity;
          rest = l.Ast.l_rest;
          cl_name = l.Ast.l_name;
          cl_env = env;
          code = (fun env' -> eval body env');
        }
  | Ast.App (f, args) | Ast.DirectApp (f, args) ->
      let vf = eval f env in
      let vs = Array.to_list (Array.map (fun a -> eval a env) args) in
      apply vf vs
  | Ast.LetVals (clauses, body) ->
      let total = Array.fold_left (fun acc c -> acc + c.Ast.n_vals) 0 clauses in
      let frame = Array.make (max total 1) Undefined in
      let slot = ref 0 in
      Array.iter
        (fun c -> Interp.bind_results frame slot c.Ast.n_vals (eval c.Ast.rhs env))
        clauses;
      eval body { frame; up = env }
  | Ast.LetrecVals (clauses, body) ->
      let total = Array.fold_left (fun acc c -> acc + c.Ast.n_vals) 0 clauses in
      let frame = Array.make (max total 1) Undefined in
      let env' = { frame; up = env } in
      let slot = ref 0 in
      Array.iter
        (fun c -> Interp.bind_results frame slot c.Ast.n_vals (eval c.Ast.rhs env'))
        clauses;
      eval body env'

and apply (f : value) (args : value list) : value =
  match f with
  | Prim p -> p.p_fn args
  | Closure c ->
      let frame = Interp.frame_of_args c.cl_name c.arity c.rest args in
      c.code { frame; up = c.cl_env }
  | v -> error "application: not a procedure: %s" (write_string v)

let eval_top (a : Ast.t) : value = eval a top_env
