(** The closure-compiling evaluator — the platform's "code generator".

    [compile] turns a core AST into a tree of OCaml closures ([env -> value]).
    Two features matter for the paper's story:

    - Applications of known immutable primitives compile to direct calls
      (no argument-list allocation), so the dominant remaining cost of
      untyped arithmetic is the generic operation's tag dispatch.
    - Applications of the {e unsafe type-specialized} primitives compile to
      {e unboxed} code: a nest of [unsafe-fl*] operations becomes an
      [env -> float] computation with no intermediate boxing, and
      float-complex operations flow through unboxed (re, im) pairs.  This
      implements §7.1's "these primitives … serve as signals to the Racket
      code generator to guide its unboxing optimizations". *)

open Value

(* -- fault containment: fuel ----------------------------------------------

   Compile-time code (macro transformers, [begin-for-syntax] bodies) is
   ordinary object code run by this evaluator, so a divergent transformer
   would otherwise hang the whole compilation.  Every procedure application
   decrements [fuel]; the pipeline installs a finite budget around
   compile-time evaluation (and, on request, around whole-program runs) and
   maps {!Out_of_fuel} to a located diagnostic.  The default budget is
   effectively unlimited, so direct library use and the benchmarks pay only
   one predictable decrement-and-branch per application.

   The budget is {e per domain} (DLS): the compile server dispatches
   requests onto worker domains, and one request's finite [fuel] must
   never starve — or spuriously survive into — a request running
   concurrently on another domain.  A freshly spawned domain copies its
   parent's current budget (a parallel build spawned under a compile
   budget inherits that budget, each worker counting its own copy). *)

exception Out_of_fuel

let unlimited = max_int

let fuel_key : int ref Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:(fun r -> ref !r) (fun () -> ref unlimited)

(** This domain's fuel cell (read with [!], install with [:=]). *)
let[@inline] fuel () : int ref = Domain.DLS.get fuel_key

(* The profiler's hot-path hook: a load-and-branch when no collector is
   installed (see {!Liblang_observe.Metrics.bump_apps}), so the evaluator's
   application path stays allocation-free with observability off. *)
let[@inline] step () =
  Liblang_observe.Metrics.bump_apps ();
  let fuel = Domain.DLS.get fuel_key in
  decr fuel;
  if !fuel <= 0 then raise Out_of_fuel

(* -- procedure application ----------------------------------------------- *)

let arity_error name expected rest got =
  error "%s: arity mismatch: expects %s%d argument%s, given %d"
    (if name = "" then "#<procedure>" else name)
    (if rest then "at least " else "")
    expected
    (if expected = 1 then "" else "s")
    got

let frame_of_args name arity rest args =
  if rest then begin
    let frame = Array.make (arity + 1) Undefined in
    let rec fill i args =
      if i < arity then
        match args with
        | [] -> arity_error name arity rest i
        | a :: more ->
            frame.(i) <- a;
            fill (i + 1) more
      else frame.(arity) <- of_list args
    in
    fill 0 args;
    frame
  end
  else begin
    let frame = Array.make (max arity 1) Undefined in
    let rec fill i args =
      match args with
      | [] -> if i <> arity then arity_error name arity rest i
      | a :: more ->
          if i >= arity then arity_error name arity rest (i + List.length args)
          else begin
            frame.(i) <- a;
            fill (i + 1) more
          end
    in
    fill 0 args;
    frame
  end

let rec apply (f : value) (args : value list) : value =
  step ();
  match f with
  | Prim p -> p.p_fn args
  | Closure c ->
      let frame = frame_of_args c.cl_name c.arity c.rest args in
      c.code { frame; up = c.cl_env }
  | v -> error "application: not a procedure: %s" (write_string v)

and apply1 f a0 =
  step ();
  match f with
  | Closure c when c.arity = 1 && not c.rest ->
      c.code { frame = [| a0 |]; up = c.cl_env }
  | Prim p -> p.p_fn [ a0 ]
  | _ -> apply f [ a0 ]

and apply2 f a0 a1 =
  step ();
  match f with
  | Closure c when c.arity = 2 && not c.rest ->
      c.code { frame = [| a0; a1 |]; up = c.cl_env }
  | Prim p -> p.p_fn [ a0; a1 ]
  | _ -> apply f [ a0; a1 ]

and apply3 f a0 a1 a2 =
  step ();
  match f with
  | Closure c when c.arity = 3 && not c.rest ->
      c.code { frame = [| a0; a1; a2 |]; up = c.cl_env }
  | Prim p -> p.p_fn [ a0; a1; a2 ]
  | _ -> apply f [ a0; a1; a2 ]

and apply4 f a0 a1 a2 a3 =
  step ();
  match f with
  | Closure c when c.arity = 4 && not c.rest ->
      c.code { frame = [| a0; a1; a2; a3 |]; up = c.cl_env }
  | Prim p -> p.p_fn [ a0; a1; a2; a3 ]
  | _ -> apply f [ a0; a1; a2; a3 ]

and apply5 f a0 a1 a2 a3 a4 =
  step ();
  match f with
  | Closure c when c.arity = 5 && not c.rest ->
      c.code { frame = [| a0; a1; a2; a3; a4 |]; up = c.cl_env }
  | Prim p -> p.p_fn [ a0; a1; a2; a3; a4 ]
  | _ -> apply f [ a0; a1; a2; a3; a4 ]

(* -- fast-path registries -------------------------------------------------
   Primitives register specialized entry points here (by name) so that
   saturated calls to immutable globals avoid consing an argument list. *)

let fast1 : (string, value -> value) Hashtbl.t = Hashtbl.create 64
let fast2 : (string, value -> value -> value) Hashtbl.t = Hashtbl.create 64
let register_fast1 name f = Hashtbl.replace fast1 name f
let register_fast2 name f = Hashtbl.replace fast2 name f

(* When false, applications of unsafe float/complex primitives compile as
   ordinary direct calls (still skipping generic dispatch via the fast
   paths) but with no fused unboxing — used by the ablation benchmarks to
   separate the two effects of §7.1's unsafe primitives. *)
let unboxing_enabled = ref true

(* -- compilation ----------------------------------------------------------- *)

let local_ref depth idx : env -> value =
  match depth with
  | 0 -> fun env -> env.frame.(idx)
  | 1 -> fun env -> env.up.frame.(idx)
  | 2 -> fun env -> env.up.up.frame.(idx)
  | _ ->
      fun env ->
        let rec up env d = if d = 0 then env.frame.(idx) else up env.up (d - 1) in
        up env depth

let unbox_float = function
  | Float f -> f
  | Int n -> float_of_int n
  | v -> error "unsafe flonum operation: given %s (unsafe primitives have undefined behavior off-type)" (write_string v)

let unbox_cpx = function
  | Cpx (re, im) -> (re, im)
  | Float f -> (f, 0.)
  | Int n -> (float_of_int n, 0.)
  | v -> error "unsafe float-complex operation: given %s" (write_string v)

let rec compile (a : Ast.t) : env -> value =
  match a with
  | Ast.Quote v -> fun _ -> v
  | Ast.QuoteStx s -> fun _ -> StxV s
  | Ast.LocalRef (d, i) -> local_ref d i
  | Ast.GlobalRef g ->
      fun _ ->
        let v = g.Ast.g_val in
        if v == Undefined then error "%s: undefined; cannot reference before definition" g.Ast.g_name
        else v
  | Ast.SetLocal (d, i, e) ->
      let ce = compile e in
      if d = 0 then
        fun env ->
          env.frame.(i) <- ce env;
          Void
      else
        fun env ->
          let rec up env d = if d = 0 then env else up env.up (d - 1) in
          (up env d).frame.(i) <- ce env;
          Void
  | Ast.SetGlobal (g, e) ->
      let ce = compile e in
      fun env ->
        g.Ast.g_val <- ce env;
        Void
  | Ast.If (c, t, e) ->
      let cc = compile c and ct = compile t and ce = compile e in
      fun env -> if truthy (cc env) then ct env else ce env
  | Ast.Begin es -> (
      match Array.length es with
      | 1 -> compile es.(0)
      | 2 ->
          let c0 = compile es.(0) and c1 = compile es.(1) in
          fun env ->
            ignore (c0 env);
            c1 env
      | n ->
          let cs = Array.map compile es in
          let last = cs.(n - 1) in
          fun env ->
            for i = 0 to n - 2 do
              ignore (cs.(i) env)
            done;
            last env)
  | Ast.Lambda l ->
      let body = compile l.Ast.l_body in
      let arity = l.Ast.l_arity and rest = l.Ast.l_rest and name = l.Ast.l_name in
      fun env -> Closure { arity; rest; cl_name = name; cl_env = env; code = body }
  | Ast.App (f, args) -> compile_app f args
  (* Proved-monomorphic call.  The tree walker's generic [applyN] already
     pre-builds a frame on the matching-arity fast path, so sharing
     [compile_app] is both the fast and the provably-equivalent choice;
     the bytecode backend is where the fact selects a distinct opcode. *)
  | Ast.DirectApp (f, args) -> compile_app f args
  (* single-value clauses are the common case (every [let]); specialize the
     small arities to avoid the general slot machinery *)
  | Ast.LetVals ([| { Ast.n_vals = 1; rhs } |], body) ->
      let r0 = compile rhs in
      let cbody = compile body in
      fun env ->
        let v = r0 env in
        (match v with Values _ -> error "context expected 1 value" | _ -> ());
        cbody { frame = [| v |]; up = env }
  | Ast.LetVals ([| { Ast.n_vals = 1; rhs = r0 }; { Ast.n_vals = 1; rhs = r1 } |], body) ->
      let c0 = compile r0 and c1 = compile r1 in
      let cbody = compile body in
      fun env ->
        let v0 = c0 env in
        let v1 = c1 env in
        (match (v0, v1) with
        | Values _, _ | _, Values _ -> error "context expected 1 value"
        | _ -> ());
        cbody { frame = [| v0; v1 |]; up = env }
  | Ast.LetVals
      ([| { Ast.n_vals = 1; rhs = r0 }; { Ast.n_vals = 1; rhs = r1 }; { Ast.n_vals = 1; rhs = r2 } |], body)
    ->
      let c0 = compile r0 and c1 = compile r1 and c2 = compile r2 in
      let cbody = compile body in
      fun env ->
        let v0 = c0 env in
        let v1 = c1 env in
        let v2 = c2 env in
        (match (v0, v1, v2) with
        | Values _, _, _ | _, Values _, _ | _, _, Values _ -> error "context expected 1 value"
        | _ -> ());
        cbody { frame = [| v0; v1; v2 |]; up = env }
  | Ast.LetrecVals ([| { Ast.n_vals = 1; rhs = Ast.Lambda l } |], body) ->
      (* a named let *)
      let lam_body = compile l.Ast.l_body in
      let arity = l.Ast.l_arity and rest = l.Ast.l_rest and name = l.Ast.l_name in
      let cbody = compile body in
      fun env ->
        let frame = [| Undefined |] in
        let env' = { frame; up = env } in
        frame.(0) <- Closure { arity; rest; cl_name = name; cl_env = env'; code = lam_body };
        cbody env'
  | Ast.LetVals (clauses, body) ->
      let total = Array.fold_left (fun acc c -> acc + c.Ast.n_vals) 0 clauses in
      let compiled = Array.map (fun c -> (c.Ast.n_vals, compile c.Ast.rhs)) clauses in
      let cbody = compile body in
      fun env ->
        let frame = Array.make (max total 1) Undefined in
        let slot = ref 0 in
        Array.iter
          (fun (n, rhs) ->
            let v = rhs env in
            bind_results frame slot n v)
          compiled;
        cbody { frame; up = env }
  | Ast.LetrecVals (clauses, body) ->
      let total = Array.fold_left (fun acc c -> acc + c.Ast.n_vals) 0 clauses in
      let compiled = Array.map (fun c -> (c.Ast.n_vals, compile c.Ast.rhs)) clauses in
      let cbody = compile body in
      fun env ->
        let frame = Array.make (max total 1) Undefined in
        let env' = { frame; up = env } in
        let slot = ref 0 in
        Array.iter
          (fun (n, rhs) ->
            let v = rhs env' in
            bind_results frame slot n v)
          compiled;
        cbody env'

and bind_results frame slot n v =
  if n = 1 then begin
    (match v with
    | Values _ -> error "context expected 1 value, got multiple values"
    | _ -> ());
    frame.(!slot) <- v;
    incr slot
  end
  else
    match v with
    | Values vs when List.length vs = n ->
        List.iter
          (fun v ->
            frame.(!slot) <- v;
            incr slot)
          vs
    | _ -> error "context expected %d values" n

and compile_app f args : env -> value =
  let generic () =
    let cf = compile f in
    match Array.map compile args with
    | [||] -> fun env -> apply (cf env) []
    | [| a0 |] -> fun env -> apply1 (cf env) (a0 env)
    | [| a0; a1 |] ->
        fun env ->
          let vf = cf env in
          let v0 = a0 env in
          apply2 vf v0 (a1 env)
    | [| a0; a1; a2 |] ->
        fun env ->
          let vf = cf env in
          let v0 = a0 env in
          let v1 = a1 env in
          apply3 vf v0 v1 (a2 env)
    | [| a0; a1; a2; a3 |] ->
        fun env ->
          let vf = cf env in
          let v0 = a0 env in
          let v1 = a1 env in
          let v2 = a2 env in
          apply4 vf v0 v1 v2 (a3 env)
    | [| a0; a1; a2; a3; a4 |] ->
        fun env ->
          let vf = cf env in
          let v0 = a0 env in
          let v1 = a1 env in
          let v2 = a2 env in
          let v3 = a3 env in
          apply5 vf v0 v1 v2 v3 (a4 env)
    | cargs ->
        fun env ->
          let vf = cf env in
          let vs = Array.to_list (Array.map (fun c -> c env) cargs) in
          apply vf vs
  in
  match f with
  | Ast.GlobalRef g when not g.Ast.g_mutable -> (
      let name = g.Ast.g_name in
      let fbin = if !unboxing_enabled then List.assoc_opt name Flfuse.bin_table else None in
      let fcmp = if !unboxing_enabled then List.assoc_opt name Flfuse.cmp_table else None in
      let fun1 = if !unboxing_enabled then List.assoc_opt name Flfuse.un_table else None in
      match (fbin, fcmp, fun1, Array.length args) with
      | Some build, _, _, 2 -> build (fleaf args.(0)) (fleaf args.(1))
      | _, Some build, _, 2 -> build (fleaf args.(0)) (fleaf args.(1))
      | _, _, Some build, 1 -> build (fleaf args.(0))
      | _ -> (
          let cbin = if !unboxing_enabled then List.assoc_opt name Flfuse.cbin_table else None in
          let cun = if !unboxing_enabled then List.assoc_opt name Flfuse.cun_table else None in
          match (cbin, cun, Array.length args) with
          | Some build, _, 2 -> build (cleaf args.(0)) (cleaf args.(1))
          | _, Some build, 1 -> build (cleaf args.(0))
          | _ when name = "unsafe-make-rectangular" && Array.length args = 2
                   && !unboxing_enabled ->
              Flfuse.c_rect (fleaf args.(0)) (fleaf args.(1))
          | _ -> (
              match (Hashtbl.find_opt fast2 name, Array.length args) with
              | Some op, 2 ->
                  let a0 = compile args.(0) and a1 = compile args.(1) in
                  fun env ->
                    let x = a0 env in
                    op x (a1 env)
              | _ -> (
                  match (Hashtbl.find_opt fast1 name, Array.length args) with
                  | Some op, 1 ->
                      let a0 = compile args.(0) in
                      fun env -> op (a0 env)
                  | _ -> generic ()))))
  | _ -> generic ()

(* operand shape classification for the fused unsafe-float closures *)
and fleaf (a : Ast.t) : Flfuse.leaf =
  match a with
  | Ast.Quote (Float f) -> Flfuse.C f
  | Ast.Quote (Int n) -> Flfuse.C (float_of_int n)
  | Ast.LocalRef (0, i) -> Flfuse.L0 i
  | Ast.LocalRef (1, i) -> Flfuse.L1 i
  | Ast.LocalRef (d, i) -> Flfuse.LD (d, i)
  | a -> Flfuse.X (compile a)

and cleaf (a : Ast.t) : Flfuse.cleaf =
  match a with
  | Ast.Quote (Cpx (re, im)) -> Flfuse.CC (re, im)
  | Ast.Quote (Float f) -> Flfuse.CC (f, 0.)
  | Ast.Quote (Int n) -> Flfuse.CC (float_of_int n, 0.)
  | Ast.LocalRef (0, i) -> Flfuse.CL0 i
  | Ast.LocalRef (1, i) -> Flfuse.CL1 i
  | Ast.LocalRef (d, i) -> Flfuse.CLD (d, i)
  | a -> Flfuse.CX (compile a)

(* -- entry points ---------------------------------------------------------- *)

let eval_top (a : Ast.t) : value = compile a top_env
