(** The core AST the evaluator runs: the compiled form of the ~20-form core
    grammar of the paper's figure 1.  Variables are lexically addressed
    (frame depth, slot); module-level variables are boxes shared through a
    namespace. *)

module Stx = Liblang_stx.Stx

type global = {
  g_name : string;
  mutable g_val : Value.value;
  g_mutable : bool;  (** may be [set!] — false for primitives *)
}

let global ?(mutable_ = true) name =
  { g_name = name; g_val = Value.Undefined; g_mutable = mutable_ }

type t =
  | Quote of Value.value
  | QuoteStx of Stx.t
  | LocalRef of int * int  (** frame depth, slot *)
  | GlobalRef of global
  | SetLocal of int * int * t
  | SetGlobal of global * t
  | If of t * t * t
  | Begin of t array  (** at least one subform *)
  | Lambda of lam
  | App of t * t array
  | DirectApp of t * t array
      (** an application the flow analysis proved monomorphic: same
          semantics as [App], but the backend may lower it to a
          known-arity call that skips generic closure dispatch *)
  | LetVals of clause array * t
      (** all right-hand sides evaluate in the outer environment, then one
          fresh frame binds every clause's variables in order *)
  | LetrecVals of clause array * t
      (** the frame exists (holding [Undefined]) while right-hand sides run *)

and lam = { l_arity : int; l_rest : bool; mutable l_name : string; l_body : t }

and clause = { n_vals : int; rhs : t }

let rec to_string = function
  | Quote v -> "'" ^ Value.write_string v
  | QuoteStx s -> "#'" ^ Stx.to_string s
  | LocalRef (d, i) -> Printf.sprintf "$%d.%d" d i
  | GlobalRef g -> g.g_name
  | SetLocal (d, i, e) -> Printf.sprintf "(set! $%d.%d %s)" d i (to_string e)
  | SetGlobal (g, e) -> Printf.sprintf "(set! %s %s)" g.g_name (to_string e)
  | If (c, t, e) -> Printf.sprintf "(if %s %s %s)" (to_string c) (to_string t) (to_string e)
  | Begin es ->
      "(begin " ^ String.concat " " (Array.to_list (Array.map to_string es)) ^ ")"
  | Lambda l ->
      Printf.sprintf "(lambda [%d%s] %s)" l.l_arity (if l.l_rest then "+" else "")
        (to_string l.l_body)
  | App (f, args) ->
      "(" ^ String.concat " " (to_string f :: Array.to_list (Array.map to_string args)) ^ ")"
  | DirectApp (f, args) ->
      "(!" ^ String.concat " " (to_string f :: Array.to_list (Array.map to_string args)) ^ ")"
  | LetVals (cs, body) -> clause_string "let-values" cs body
  | LetrecVals (cs, body) -> clause_string "letrec-values" cs body

and clause_string kw cs body =
  let cl c = Printf.sprintf "[%d %s]" c.n_vals (to_string c.rhs) in
  Printf.sprintf "(%s (%s) %s)" kw
    (String.concat " " (Array.to_list (Array.map cl cs)))
    (to_string body)
