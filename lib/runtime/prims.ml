(** The primitive procedures of the base language, including the unsafe
    type-specialized primitives the type-driven optimizer targets.

    [all] is the complete name → value table; the base language module
    exposes these as variable bindings.  Key operations also register
    arity-specialized fast paths with {!Interp} so that saturated calls to
    them compile to direct calls. *)

open Value

let bad_arity name n args =
  error "%s: arity mismatch: expects %d argument%s, given %d" name n
    (if n = 1 then "" else "s")
    (List.length args)

let p1 name f =
  prim name (function [ a ] -> f a | args -> bad_arity name 1 args)

let p2 name f =
  prim name (function [ a; b ] -> f a b | args -> bad_arity name 2 args)

let p3 name f =
  prim name (function [ a; b; c ] -> f a b c | args -> bad_arity name 3 args)

let pred name f = p1 name (fun v -> Bool (f v))

let int_arg name = function Int n -> n | v -> error "%s: expects a fixnum, given %s" name (write_string v)
let str_arg name = function Str s -> s | v -> error "%s: expects a string, given %s" name (write_string v)
let char_arg name = function Char c -> c | v -> error "%s: expects a character, given %s" name (write_string v)
let vec_arg name = function Vec v -> v | v -> error "%s: expects a vector, given %s" name (write_string v)
let sym_arg name = function Sym s -> s | v -> error "%s: expects a symbol, given %s" name (write_string v)

let stx_arg name = function
  | StxV s -> s
  | v -> error "%s: expects a syntax object, given %s" name (write_string v)

(* -- numeric ---------------------------------------------------------------- *)

let fold_num name two init = function
  | [] -> init
  | [ v ] -> ( match name with "-" -> Numeric.neg v | "/" -> Numeric.div (Int 1) v | _ -> two init v)
  | v :: rest -> List.fold_left two v rest

let chain_cmp name two =
  prim name (fun args ->
      let rec go = function
        | a :: (b :: _ as rest) -> two a b && go rest
        | _ -> true
      in
      match args with
      | [] -> error "%s: expects at least 1 argument" name
      | [ v ] ->
          if Numeric.is_number v then Bool true
          else error "%s: expects real numbers, given %s" name (write_string v)
      | _ -> Bool (go args))

let numeric_prims =
  [
    prim "+" (fun args -> fold_num "+" Numeric.add (Int 0) args);
    prim "*" (fun args -> fold_num "*" Numeric.mul (Int 1) args);
    prim "-" (function
      | [] -> error "-: expects at least 1 argument"
      | args -> fold_num "-" Numeric.sub (Int 0) args);
    prim "/" (function
      | [] -> error "/: expects at least 1 argument"
      | args -> fold_num "/" Numeric.div (Int 1) args);
    chain_cmp "<" Numeric.lt;
    chain_cmp ">" Numeric.gt;
    chain_cmp "<=" Numeric.le;
    chain_cmp ">=" Numeric.ge;
    chain_cmp "=" Numeric.num_eq;
    p2 "quotient" Numeric.quotient;
    p2 "remainder" Numeric.remainder;
    p2 "modulo" Numeric.modulo;
    p2 "gcd" Numeric.gcd_;
    p2 "expt" Numeric.expt;
    p1 "abs" Numeric.abs_;
    p1 "add1" Numeric.add1;
    p1 "sub1" Numeric.sub1;
    p1 "sqrt" Numeric.sqrt_;
    p1 "sin" (Numeric.float_fun "sin" sin);
    p1 "cos" (Numeric.float_fun "cos" cos);
    p1 "tan" (Numeric.float_fun "tan" tan);
    p1 "asin" (Numeric.float_fun "asin" asin);
    p1 "acos" (Numeric.float_fun "acos" acos);
    p1 "exp" (Numeric.float_fun "exp" exp);
    p1 "log" (Numeric.float_fun "log" log);
    prim "atan" (function
      | [ v ] -> Numeric.float_fun "atan" atan v
      | [ a; b ] -> Float (Float.atan2 (Numeric.to_float "atan" a) (Numeric.to_float "atan" b))
      | args -> bad_arity "atan" 1 args);
    p1 "magnitude" Numeric.magnitude;
    p1 "real-part" Numeric.real_part;
    p1 "imag-part" Numeric.imag_part;
    p2 "make-rectangular" Numeric.make_rectangular;
    p2 "make-polar" Numeric.make_polar;
    p1 "exact->inexact" Numeric.exact_to_inexact;
    p1 "inexact->exact" Numeric.inexact_to_exact;
    p1 "exact" Numeric.inexact_to_exact;
    p1 "floor" Numeric.floor_;
    p1 "ceiling" Numeric.ceiling_;
    p1 "truncate" Numeric.truncate_;
    p1 "round" Numeric.round_;
    prim "min" (function
      | [] -> error "min: expects at least 1 argument"
      | v :: rest -> List.fold_left Numeric.min_ v rest);
    prim "max" (function
      | [] -> error "max: expects at least 1 argument"
      | v :: rest -> List.fold_left Numeric.max_ v rest);
    pred "number?" Numeric.is_number;
    pred "integer?" Numeric.is_integer;
    pred "exact-integer?" Numeric.is_exact_integer;
    pred "fixnum?" Numeric.is_exact_integer;
    pred "flonum?" Numeric.is_flonum;
    pred "real?" Numeric.is_real;
    pred "complex?" Numeric.is_number;
    pred "zero?" Numeric.is_zero;
    pred "positive?" Numeric.is_positive;
    pred "negative?" Numeric.is_negative;
    pred "even?" Numeric.is_even;
    pred "odd?" Numeric.is_odd;
    p1 "exact->float" (fun v -> Float (Numeric.to_float "exact->float" v));
  ]

(* -- unsafe type-specialized primitives (§7.1) ------------------------------ *)

let unsafe_fl2 name f =
  p2 name (fun a b ->
      match (a, b) with
      | Float x, Float y -> Float (f x y)
      | _ -> Float (f (Interp.unbox_float a) (Interp.unbox_float b)))

let unsafe_flcmp name f =
  p2 name (fun a b ->
      match (a, b) with
      | Float x, Float y -> Bool (f x y)
      | _ -> Bool (f (Interp.unbox_float a) (Interp.unbox_float b)))

let unsafe_fl1 name f = p1 name (fun a -> Float (f (Interp.unbox_float a)))

let unsafe_fx2 name f =
  p2 name (fun a b ->
      match (a, b) with
      | Int x, Int y -> Int (f x y)
      | _ -> error "%s: expects fixnums (undefined behavior off-type)" name)

let unsafe_fxcmp name f =
  p2 name (fun a b ->
      match (a, b) with
      | Int x, Int y -> Bool (f x y)
      | _ -> error "%s: expects fixnums (undefined behavior off-type)" name)

let unsafe_c2 name f =
  p2 name (fun a b ->
      let ar, ai = Interp.unbox_cpx a and br, bi = Interp.unbox_cpx b in
      let re, im = f ar ai br bi in
      Cpx (re, im))

let unsafe_prims =
  [
    unsafe_fl2 "unsafe-fl+" ( +. );
    unsafe_fl2 "unsafe-fl-" ( -. );
    unsafe_fl2 "unsafe-fl*" ( *. );
    unsafe_fl2 "unsafe-fl/" ( /. );
    unsafe_fl2 "unsafe-flmin" Float.min;
    unsafe_fl2 "unsafe-flmax" Float.max;
    unsafe_fl2 "unsafe-flexpt" Float.pow;
    unsafe_flcmp "unsafe-fl<" ( < );
    unsafe_flcmp "unsafe-fl>" ( > );
    unsafe_flcmp "unsafe-fl<=" ( <= );
    unsafe_flcmp "unsafe-fl>=" ( >= );
    unsafe_flcmp "unsafe-fl=" Float.equal;
    unsafe_fl1 "unsafe-flabs" Float.abs;
    unsafe_fl1 "unsafe-flsqrt" Float.sqrt;
    unsafe_fl1 "unsafe-flsin" sin;
    unsafe_fl1 "unsafe-flcos" cos;
    unsafe_fl1 "unsafe-fltan" tan;
    unsafe_fl1 "unsafe-flatan" atan;
    unsafe_fl1 "unsafe-flexp" exp;
    unsafe_fl1 "unsafe-fllog" log;
    unsafe_fl1 "unsafe-flfloor" Float.floor;
    unsafe_fl1 "unsafe-flceiling" Float.ceil;
    unsafe_fl1 "unsafe-flround" Numeric.round_half_even;
    unsafe_fl1 "unsafe-fltruncate" Float.trunc;
    unsafe_fx2 "unsafe-fx+" ( + );
    unsafe_fx2 "unsafe-fx-" ( - );
    unsafe_fx2 "unsafe-fx*" ( * );
    unsafe_fx2 "unsafe-fxquotient" ( / );
    unsafe_fx2 "unsafe-fxremainder" (fun a b -> a mod b);
    unsafe_fxcmp "unsafe-fx<" ( < );
    unsafe_fxcmp "unsafe-fx>" ( > );
    unsafe_fxcmp "unsafe-fx<=" ( <= );
    unsafe_fxcmp "unsafe-fx>=" ( >= );
    unsafe_fxcmp "unsafe-fx=" ( = );
    unsafe_c2 "unsafe-c+" (fun ar ai br bi -> (ar +. br, ai +. bi));
    unsafe_c2 "unsafe-c-" (fun ar ai br bi -> (ar -. br, ai -. bi));
    unsafe_c2 "unsafe-c*" (fun ar ai br bi ->
        ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br)));
    unsafe_c2 "unsafe-c/" Numeric.cpx_div;
    p1 "unsafe-cneg" (fun a ->
        let re, im = Interp.unbox_cpx a in
        Cpx (-.re, -.im));
    p1 "unsafe-conjugate" (fun a ->
        let re, im = Interp.unbox_cpx a in
        Cpx (re, -.im));
    p1 "unsafe-magnitude" (fun a ->
        let re, im = Interp.unbox_cpx a in
        Float (Float.hypot re im));
    p1 "unsafe-real-part" (fun a -> Float (fst (Interp.unbox_cpx a)));
    p1 "unsafe-imag-part" (fun a -> Float (snd (Interp.unbox_cpx a)));
    p2 "unsafe-make-rectangular" (fun a b ->
        Cpx (Interp.unbox_float a, Interp.unbox_float b));
    p1 "unsafe-fx->fl" (function
      | Int n -> Float (float_of_int n)
      | Float f -> Float f
      | _ -> error "unsafe-fx->fl: expects a fixnum (undefined behavior off-type)");
    p1 "unsafe-car" (function
      | Pair p -> p.car
      | v -> error "unsafe-car: expects a pair (undefined behavior off-type), given %s" (write_string v));
    p1 "unsafe-cdr" (function
      | Pair p -> p.cdr
      | v -> error "unsafe-cdr: expects a pair (undefined behavior off-type), given %s" (write_string v));
    p2 "unsafe-vector-ref" (fun v i ->
        match (v, i) with
        | Vec a, Int i -> Array.unsafe_get a i
        | _ -> error "unsafe-vector-ref: undefined behavior off-type");
    p3 "unsafe-vector-set!" (fun v i x ->
        match (v, i) with
        | Vec a, Int i ->
            Array.unsafe_set a i x;
            Void
        | _ -> error "unsafe-vector-set!: undefined behavior off-type");
    p1 "unsafe-vector-length" (fun v ->
        match v with Vec a -> Int (Array.length a) | _ -> error "unsafe-vector-length: undefined behavior off-type");
    (* like their unsafe- twins, but inserted by the flow analysis rather
       than written by the programmer — separate names so rewrite counters
       and the VecRefU/VecSetU opcodes attribute the elision correctly *)
    p2 "unchecked-vector-ref" (fun v i ->
        match (v, i) with
        | Vec a, Int i -> Array.unsafe_get a i
        | _ -> error "unchecked-vector-ref: undefined behavior off-type");
    p3 "unchecked-vector-set!" (fun v i x ->
        match (v, i) with
        | Vec a, Int i ->
            Array.unsafe_set a i x;
            Void
        | _ -> error "unchecked-vector-set!: undefined behavior off-type");
    p2 "unsafe-string-ref" (fun s i ->
        match (s, i) with
        | Str b, Int i -> Char (Bytes.unsafe_get b i)
        | _ -> error "unsafe-string-ref: undefined behavior off-type");
  ]

(* -- pairs and lists --------------------------------------------------------- *)

let car_v = function
  | Pair p -> p.car
  | v -> error "car: expects a pair, given %s" (write_string v)

let cdr_v = function
  | Pair p -> p.cdr
  | v -> error "cdr: expects a pair, given %s" (write_string v)

let rec list_length n = function
  | Nil -> n
  | Pair p -> list_length (n + 1) p.cdr
  | v -> error "length: expects a proper list, given tail %s" (write_string v)

let rec append2 a b =
  match a with
  | Nil -> b
  | Pair p -> cons p.car (append2 p.cdr b)
  | v -> error "append: expects a proper list, given tail %s" (write_string v)

let list_prims =
  [
    p2 "cons" cons;
    p1 "car" car_v;
    p1 "cdr" cdr_v;
    p1 "cadr" (fun v -> car_v (cdr_v v));
    p1 "caddr" (fun v -> car_v (cdr_v (cdr_v v)));
    p1 "cddr" (fun v -> cdr_v (cdr_v v));
    p1 "cdar" (fun v -> cdr_v (car_v v));
    p1 "caar" (fun v -> car_v (car_v v));
    p1 "first" car_v;
    p1 "rest" cdr_v;
    p1 "second" (fun v -> car_v (cdr_v v));
    p1 "third" (fun v -> car_v (cdr_v (cdr_v v)));
    p2 "set-car!" (fun p v ->
        match p with
        | Pair c ->
            c.car <- v;
            Void
        | v -> error "set-car!: expects a pair, given %s" (write_string v));
    p2 "set-cdr!" (fun p v ->
        match p with
        | Pair c ->
            c.cdr <- v;
            Void
        | v -> error "set-cdr!: expects a pair, given %s" (write_string v));
    prim "list" of_list;
    prim "list*" (fun args ->
        let rec go = function
          | [] -> error "list*: expects at least 1 argument"
          | [ v ] -> v
          | v :: rest -> cons v (go rest)
        in
        go args);
    pred "pair?" (function Pair _ -> true | _ -> false);
    pred "null?" (function Nil -> true | _ -> false);
    pred "empty?" (function Nil -> true | _ -> false);
    pred "list?" (fun v -> Option.is_some (to_list_opt v));
    p1 "length" (fun v -> Int (list_length 0 v));
    prim "append" (fun args ->
        let rec go = function
          | [] -> Nil
          | [ v ] -> v
          | v :: rest -> append2 v (go rest)
        in
        go args);
    p1 "reverse" (fun v ->
        let rec go acc = function
          | Nil -> acc
          | Pair p -> go (cons p.car acc) p.cdr
          | v -> error "reverse: expects a proper list, given tail %s" (write_string v)
        in
        go Nil v);
    p2 "list-ref" (fun l i ->
        let rec go l i =
          match l with
          | Pair p -> if i = 0 then p.car else go p.cdr (i - 1)
          | _ -> error "list-ref: index out of range"
        in
        go l (int_arg "list-ref" i));
    p2 "list-tail" (fun l i ->
        let rec go l i =
          if i = 0 then l
          else match l with Pair p -> go p.cdr (i - 1) | _ -> error "list-tail: index out of range"
        in
        go l (int_arg "list-tail" i));
    p2 "member" (fun x l ->
        let rec go = function
          | Nil -> Bool false
          | Pair p as v -> if equal_values x p.car then v else go p.cdr
          | _ -> error "member: expects a proper list"
        in
        go l);
    p2 "memq" (fun x l ->
        let rec go = function
          | Nil -> Bool false
          | Pair p as v -> if eqv x p.car then v else go p.cdr
          | _ -> error "memq: expects a proper list"
        in
        go l);
    p2 "assoc" (fun x l ->
        let rec go = function
          | Nil -> Bool false
          | Pair { car = Pair kv as entry; cdr } -> if equal_values x kv.car then entry else go cdr
          | _ -> error "assoc: expects a list of pairs"
        in
        go l);
    p2 "assq" (fun x l ->
        let rec go = function
          | Nil -> Bool false
          | Pair { car = Pair kv as entry; cdr } -> if eqv x kv.car then entry else go cdr
          | _ -> error "assq: expects a list of pairs"
        in
        go l);
    p2 "take" (fun l n ->
        let n = int_arg "take" n in
        let rec go l n =
          if n = 0 then Nil
          else
            match l with
            | Pair p -> cons p.car (go p.cdr (n - 1))
            | _ -> error "take: list too short"
        in
        go l n);
    p2 "drop" (fun l n ->
        let rec go l n =
          if n = 0 then l
          else match l with Pair p -> go p.cdr (n - 1) | _ -> error "drop: list too short"
        in
        go l (int_arg "drop" n));
    p2 "remove" (fun x l ->
        let rec go = function
          | Nil -> Nil
          | Pair p -> if equal_values x p.car then p.cdr else cons p.car (go p.cdr)
          | _ -> error "remove: expects a proper list"
        in
        go l);
    p2 "count" (fun f l ->
        Int (List.length (List.filter (fun x -> truthy (Interp.apply1 f x)) (to_list l))));
    p1 "flatten" (fun v ->
        let rec go acc = function
          | Nil -> acc
          | Pair p -> go (go acc p.cdr) p.car
          | x -> cons x acc
        in
        go Nil v);
    prim "range" (function
      | [ hi ] ->
          let hi = int_arg "range" hi in
          of_list (List.init (max 0 hi) (fun i -> Int i))
      | [ lo; hi ] ->
          let lo = int_arg "range" lo and hi = int_arg "range" hi in
          of_list (List.init (max 0 (hi - lo)) (fun i -> Int (lo + i)))
      | args -> bad_arity "range" 1 args);
    p1 "last-pair" (fun l ->
        let rec go = function
          | Pair ({ cdr = Pair _; _ } as p) -> go p.cdr
          | Pair _ as p -> p
          | _ -> error "last-pair: expects a nonempty list"
        in
        go l);
    p2 "memv" (fun x l ->
        let rec go = function
          | Nil -> Bool false
          | Pair p as v -> if eqv x p.car then v else go p.cdr
          | _ -> error "memv: expects a proper list"
        in
        go l);
    p1 "last" (fun l ->
        let rec go = function
          | Pair { car; cdr = Nil } -> car
          | Pair p -> go p.cdr
          | _ -> error "last: expects a nonempty proper list"
        in
        go l);
  ]

(* -- higher-order ------------------------------------------------------------- *)

let ho_prims =
  [
    prim "apply" (function
      | f :: args when args <> [] ->
          let rec split = function
            | [ tail ] -> to_list tail
            | a :: more -> a :: split more
            | [] -> assert false
          in
          Interp.apply f (split args)
      | _ -> error "apply: expects a procedure and arguments ending in a list");
    prim "map" (function
      | [ f; l ] -> of_list (List.map (fun x -> Interp.apply1 f x) (to_list l))
      | [ f; l1; l2 ] ->
          of_list (List.map2 (fun x y -> Interp.apply2 f x y) (to_list l1) (to_list l2))
      | args -> bad_arity "map" 2 args);
    prim "for-each" (function
      | [ f; l ] ->
          List.iter (fun x -> ignore (Interp.apply1 f x)) (to_list l);
          Void
      | [ f; l1; l2 ] ->
          List.iter2 (fun x y -> ignore (Interp.apply2 f x y)) (to_list l1) (to_list l2);
          Void
      | args -> bad_arity "for-each" 2 args);
    p2 "filter" (fun f l -> of_list (List.filter (fun x -> truthy (Interp.apply1 f x)) (to_list l)));
    p3 "foldl" (fun f init l ->
        List.fold_left (fun acc x -> Interp.apply2 f x acc) init (to_list l));
    p3 "foldr" (fun f init l ->
        List.fold_right (fun x acc -> Interp.apply2 f x acc) (to_list l) init);
    p2 "andmap" (fun f l -> Bool (List.for_all (fun x -> truthy (Interp.apply1 f x)) (to_list l)));
    p2 "ormap" (fun f l -> Bool (List.exists (fun x -> truthy (Interp.apply1 f x)) (to_list l)));
    p2 "sort" (fun l less ->
        of_list
          (List.stable_sort
             (fun a b ->
               if truthy (Interp.apply2 less a b) then -1
               else if truthy (Interp.apply2 less b a) then 1
               else 0)
             (to_list l)));
    p2 "build-list" (fun n f -> of_list (List.init (int_arg "build-list" n) (fun i -> Interp.apply1 f (Int i))));
    prim "values" (function [ v ] -> v | vs -> Values vs);
    p2 "call-with-values" (fun producer consumer ->
        match Interp.apply producer [] with
        | Values vs -> Interp.apply consumer vs
        | v -> Interp.apply1 consumer v);
    pred "procedure?" is_procedure;
  ]

(* -- vectors ------------------------------------------------------------------- *)

let vector_prims =
  [
    prim "vector" (fun args -> Vec (Array.of_list args));
    prim "make-vector" (function
      | [ n ] -> Vec (Array.make (int_arg "make-vector" n) (Int 0))
      | [ n; fill ] -> Vec (Array.make (int_arg "make-vector" n) fill)
      | args -> bad_arity "make-vector" 1 args);
    p2 "vector-ref" (fun v i ->
        let a = vec_arg "vector-ref" v and i = int_arg "vector-ref" i in
        if i < 0 || i >= Array.length a then
          error "vector-ref: index %d out of range for vector of length %d" i (Array.length a)
        else a.(i));
    p3 "vector-set!" (fun v i x ->
        let a = vec_arg "vector-set!" v and i = int_arg "vector-set!" i in
        if i < 0 || i >= Array.length a then
          error "vector-set!: index %d out of range for vector of length %d" i (Array.length a)
        else begin
          a.(i) <- x;
          Void
        end);
    p1 "vector-length" (fun v -> Int (Array.length (vec_arg "vector-length" v)));
    p1 "vector->list" (fun v -> of_list (Array.to_list (vec_arg "vector->list" v)));
    p1 "list->vector" (fun l -> Vec (Array.of_list (to_list l)));
    p2 "vector-fill!" (fun v x ->
        Array.fill (vec_arg "vector-fill!" v) 0 (Array.length (vec_arg "vector-fill!" v)) x;
        Void);
    p2 "vector-map" (fun f v -> Vec (Array.map (fun x -> Interp.apply1 f x) (vec_arg "vector-map" v)));
    p2 "build-vector" (fun n f ->
        Vec (Array.init (int_arg "build-vector" n) (fun i -> Interp.apply1 f (Int i))));
    p1 "vector-copy" (fun v -> Vec (Array.copy (vec_arg "vector-copy" v)));
    pred "vector?" (function Vec _ -> true | _ -> false);
  ]

(* -- strings, symbols, characters ----------------------------------------------- *)

let string_prims =
  [
    p1 "string-length" (fun s -> Int (Bytes.length (str_arg "string-length" s)));
    p2 "string-ref" (fun s i ->
        let b = str_arg "string-ref" s and i = int_arg "string-ref" i in
        if i < 0 || i >= Bytes.length b then error "string-ref: index %d out of range" i
        else Char (Bytes.get b i));
    p3 "string-set!" (fun s i c ->
        Bytes.set (str_arg "string-set!" s) (int_arg "string-set!" i) (char_arg "string-set!" c);
        Void);
    prim "substring" (function
      | [ s; st ] ->
          let b = str_arg "substring" s and st = int_arg "substring" st in
          Str (Bytes.sub b st (Bytes.length b - st))
      | [ s; st; en ] ->
          let b = str_arg "substring" s
          and st = int_arg "substring" st
          and en = int_arg "substring" en in
          Str (Bytes.sub b st (en - st))
      | args -> bad_arity "substring" 2 args);
    prim "string-append" (fun args ->
        Str (Bytes.concat Bytes.empty (List.map (str_arg "string-append") args)));
    prim "make-string" (function
      | [ n ] -> Str (Bytes.make (int_arg "make-string" n) ' ')
      | [ n; c ] -> Str (Bytes.make (int_arg "make-string" n) (char_arg "make-string" c))
      | args -> bad_arity "make-string" 1 args);
    prim "string" (fun args -> Str (Bytes.init (List.length args) (fun i -> char_arg "string" (List.nth args i))));
    p1 "string->symbol" (fun s -> Sym (Bytes.to_string (str_arg "string->symbol" s)));
    p1 "symbol->string" (fun s -> string_ (sym_arg "symbol->string" s));
    p1 "string->list" (fun s ->
        of_list (List.of_seq (Seq.map (fun c -> Char c) (Bytes.to_seq (str_arg "string->list" s)))));
    p1 "list->string" (fun l ->
        Str (Bytes.of_string (String.concat "" (List.map (fun c -> String.make 1 (char_arg "list->string" c)) (to_list l)))));
    p1 "string-copy" (fun s -> Str (Bytes.copy (str_arg "string-copy" s)));
    p1 "string-upcase" (fun s -> string_ (String.uppercase_ascii (Bytes.to_string (str_arg "string-upcase" s))));
    p1 "string-downcase" (fun s -> string_ (String.lowercase_ascii (Bytes.to_string (str_arg "string-downcase" s))));
    p2 "string=?" (fun a b -> Bool (Bytes.equal (str_arg "string=?" a) (str_arg "string=?" b)));
    p2 "string-contains?" (fun hay needle ->
        let h = Bytes.to_string (str_arg "string-contains?" hay) in
        let n = Bytes.to_string (str_arg "string-contains?" needle) in
        let nh = String.length h and nn = String.length n in
        let rec go i = i + nn <= nh && (String.sub h i nn = n || go (i + 1)) in
        Bool (nn = 0 || go 0));
    p2 "string-split" (fun s sep ->
        let str = Bytes.to_string (str_arg "string-split" s) in
        let sep = Bytes.to_string (str_arg "string-split" sep) in
        if String.length sep <> 1 then error "string-split: expects a 1-character separator"
        else
          of_list
            (List.filter_map
               (fun part -> if part = "" then None else Some (string_ part))
               (String.split_on_char sep.[0] str)));
    p2 "string-join" (fun parts sep ->
        let sep = Bytes.to_string (str_arg "string-join" sep) in
        string_
          (String.concat sep
             (List.map
                (function Str b -> Bytes.to_string b | v -> error "string-join: expects strings, given %s" (write_string v))
                (to_list parts))));
    p2 "string<?" (fun a b -> Bool (Bytes.compare (str_arg "string<?" a) (str_arg "string<?" b) < 0));
    p1 "string->number" (fun s ->
        match Liblang_reader.Reader.parse_number (Bytes.to_string (str_arg "string->number" s)) with
        | Some a -> of_datum (Liblang_reader.Datum.Atom a)
        | None -> Bool false);
    p1 "number->string" (fun v ->
        match v with
        | Int _ | Float _ | Cpx _ -> string_ (write_string v)
        | v -> error "number->string: expects a number, given %s" (write_string v));
    pred "string?" (function Str _ -> true | _ -> false);
    pred "symbol?" (function Sym _ -> true | _ -> false);
    pred "char?" (function Char _ -> true | _ -> false);
    p1 "char->integer" (fun c -> Int (Char.code (char_arg "char->integer" c)));
    p1 "integer->char" (fun n -> Char (Char.chr (int_arg "integer->char" n)));
    p2 "char=?" (fun a b -> Bool (char_arg "char=?" a = char_arg "char=?" b));
    p2 "char<?" (fun a b -> Bool (char_arg "char<?" a < char_arg "char<?" b));
    p1 "char-upcase" (fun c -> Char (Char.uppercase_ascii (char_arg "char-upcase" c)));
    p1 "char-alphabetic?" (fun c ->
        let c = char_arg "char-alphabetic?" c in
        Bool ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')));
    p1 "char-numeric?" (fun c ->
        let c = char_arg "char-numeric?" c in
        Bool (c >= '0' && c <= '9'));
    (let counter = ref 0 in
     prim "gensym" (fun args ->
         incr counter;
         let base = match args with Sym s :: _ -> s | Str s :: _ -> Bytes.to_string s | _ -> "g" in
         Sym (Printf.sprintf "%s%d" base !counter)));
  ]

(* -- equality, booleans, misc ----------------------------------------------------- *)

let misc_prims =
  [
    p2 "eq?" (fun a b -> Bool (eqv a b));
    p2 "eqv?" (fun a b -> Bool (eqv a b));
    p2 "equal?" (fun a b -> Bool (equal_values a b));
    p1 "not" (fun v -> Bool (not (truthy v)));
    pred "boolean?" (function Bool _ -> true | _ -> false);
    pred "void?" (function Void -> true | _ -> false);
    prim "void" (fun _ -> Void);
    p1 "identity" (fun v -> v);
    p1 "box" (fun v -> Box (ref v));
    p1 "unbox" (function Box b -> !b | v -> error "unbox: expects a box, given %s" (write_string v));
    p2 "set-box!" (fun b v ->
        match b with
        | Box r ->
            r := v;
            Void
        | v -> error "set-box!: expects a box, given %s" (write_string v));
    pred "box?" (function Box _ -> true | _ -> false);
    prim "error" (fun args ->
        let msg =
          String.concat " "
            (List.map (function Str s -> Bytes.to_string s | v -> write_string v) args)
        in
        raise (Scheme_error msg));
    prim "make-hash" (fun _ -> Hash (Hashtbl.create 16));
    p3 "hash-set!" (fun h k v ->
        match h with
        | Hash t ->
            Hashtbl.replace t k v;
            Void
        | _ -> error "hash-set!: expects a hash");
    prim "hash-ref" (function
      | [ Hash t; k ] -> (
          match Hashtbl.find_opt t k with
          | Some v -> v
          | None -> error "hash-ref: no value found for key %s" (write_string k))
      | [ Hash t; k; default ] -> (
          match Hashtbl.find_opt t k with
          | Some v -> v
          | None -> if is_procedure default then Interp.apply default [] else default)
      | _ -> error "hash-ref: expects a hash and a key");
    p2 "hash-has-key?" (fun h k ->
        match h with Hash t -> Bool (Hashtbl.mem t k) | _ -> error "hash-has-key?: expects a hash");
    p1 "hash-count" (fun h ->
        match h with Hash t -> Int (Hashtbl.length t) | _ -> error "hash-count: expects a hash");
    pred "hash?" (function Hash _ -> true | _ -> false);
    p1 "make-promise" (fun thunk ->
        if is_procedure thunk then Promise { forced = false; thunk }
        else error "make-promise: expects a thunk");
    p1 "force" (fun v ->
        match v with
        | Promise p ->
            if p.forced then p.thunk
            else begin
              let result = Interp.apply p.thunk [] in
              (* force through chained promises *)
              let rec chase = function
                | Promise inner when inner.forced -> inner.thunk
                | Promise inner ->
                    let r = chase (Interp.apply inner.thunk []) in
                    inner.forced <- true;
                    inner.thunk <- r;
                    r
                | v -> v
              in
              let result = chase result in
              p.forced <- true;
              p.thunk <- result;
              result
            end
        | v -> v);
    pred "promise?" (function Promise _ -> true | _ -> false);
  ]

(* -- output ------------------------------------------------------------------------ *)

(* Tests and the benchmark harness capture program output here rather than
   spying on stdout.  Domain-local so a parallel-build worker never writes
   into a capture buffer installed on the main domain. *)
let output_buffer_key : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let emit s =
  match Domain.DLS.get output_buffer_key with
  | None -> print_string s
  | Some b -> Buffer.add_string b s

let with_captured_output f =
  let b = Buffer.create 256 in
  let saved = Domain.DLS.get output_buffer_key in
  Domain.DLS.set output_buffer_key (Some b);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set output_buffer_key saved)
    (fun () ->
      let v = f () in
      (Buffer.contents b, v))

(* A tiny [printf]/[format]: ~a (display), ~s (write), ~v (write), ~% and \n
   (newline), ~~ (tilde). *)
let format_string fmt args =
  let buf = Buffer.create (String.length fmt) in
  let args = ref args in
  let next name =
    match !args with
    | [] -> error "%s: too few arguments for format string" name
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    (if fmt.[!i] = '~' && !i + 1 < n then begin
       (match Char.lowercase_ascii fmt.[!i + 1] with
       | 'a' -> Buffer.add_string buf (display_string (next "format"))
       | 's' | 'v' -> Buffer.add_string buf (write_string (next "format"))
       | '%' | 'n' -> Buffer.add_char buf '\n'
       | '~' -> Buffer.add_char buf '~'
       | c -> error "format: unknown directive ~%c" c);
       incr i
     end
     else Buffer.add_char buf fmt.[!i]);
    incr i
  done;
  if !args <> [] then error "format: too many arguments for format string";
  Buffer.contents buf

let io_prims =
  [
    p1 "display" (fun v ->
        emit (display_string v);
        Void);
    p1 "write" (fun v ->
        emit (write_string v);
        Void);
    p1 "displayln" (fun v ->
        emit (display_string v);
        emit "\n";
        Void);
    prim "newline" (fun _ ->
        emit "\n";
        Void);
    prim "printf" (function
      | Str fmt :: args ->
          emit (format_string (Bytes.to_string fmt) args);
          Void
      | _ -> error "printf: expects a format string");
    prim "format" (function
      | Str fmt :: args -> string_ (format_string (Bytes.to_string fmt) args)
      | _ -> error "format: expects a format string");
    p1 "with-output-to-string" (fun thunk ->
        if not (is_procedure thunk) then error "with-output-to-string: expects a thunk"
        else
          let out, _ = with_captured_output (fun () -> Interp.apply thunk []) in
          string_ out);
    prim "current-seconds" (fun _ -> Int (int_of_float (Unix.gettimeofday ())));
    prim "current-inexact-milliseconds" (fun _ -> Float (Unix.gettimeofday () *. 1000.));
  ]

(* -- syntax-object primitives (available at phase 1) -------------------------------- *)

module Stx = Liblang_stx.Stx
module Binding = Liblang_stx.Binding

let stx_prims =
  [
    p1 "syntax-e" (fun v ->
        let s = stx_arg "syntax-e" v in
        match Stx.view s with
        | Stx.Id name -> Sym (Stx.Symbol.name name)
        | Stx.Atom a -> of_datum (Liblang_reader.Datum.Atom a)
        | Stx.List xs -> of_list (List.map (fun x -> StxV x) xs)
        | Stx.DotList (xs, tl) ->
            List.fold_right (fun x acc -> cons (StxV x) acc) xs (StxV tl)
        | Stx.Vec xs -> Vec (Array.of_list (List.map (fun x -> StxV x) xs)));
    p1 "syntax->datum" (fun v -> of_datum (Stx.to_datum (stx_arg "syntax->datum" v)));
    p2 "datum->syntax" (fun ctx v ->
        let ctx = stx_arg "datum->syntax" ctx in
        let datum_of_value v =
          match v with
          | StxV s -> Stx.to_datum s
          | Pair _ | Nil | Vec _ | Sym _ | Int _ | Float _ | Cpx _ | Bool _ | Str _ | Char _ ->
              to_datum v
          | v -> error "datum->syntax: cannot convert %s" (write_string v)
        in
        StxV (Stx.datum_to_syntax ~ctx (datum_of_value v)));
    p1 "syntax->splice-list" (fun v ->
        (* for #,@ : accept either a syntax list or a plain list of syntax *)
        match v with
        | StxV s -> (
            match Stx.to_list s with
            | Some xs -> of_list (List.map (fun x -> StxV x) xs)
            | None -> error "unsyntax-splicing: expects a list, given %s" (write_string v))
        | Pair _ | Nil -> v
        | _ -> error "unsyntax-splicing: expects a list, given %s" (write_string v));
    p1 "syntax->list" (fun v ->
        match Stx.to_list (stx_arg "syntax->list" v) with
        | Some xs -> of_list (List.map (fun x -> StxV x) xs)
        | None -> Bool false);
    p2 "free-identifier=?" (fun a b ->
        Bool (Binding.free_identifier_eq (stx_arg "free-identifier=?" a) (stx_arg "free-identifier=?" b)));
    pred "identifier?" (function StxV s -> Stx.is_id s | _ -> false);
    pred "syntax?" (function StxV _ -> true | _ -> false);
    p3 "syntax-property-put" (fun s k v ->
        let s = stx_arg "syntax-property-put" s in
        let key = sym_arg "syntax-property-put" k in
        let pv =
          match v with
          | StxV p -> p
          | v -> Stx.datum_to_syntax ~ctx:s (to_datum v)
        in
        StxV (Stx.property_put key pv s));
    p2 "syntax-property-get" (fun s k ->
        let s = stx_arg "syntax-property-get" s in
        match Stx.property_get (sym_arg "syntax-property-get" k) s with
        | Some v -> StxV v
        | None -> Bool false);
  ]

(* -- fast paths ----------------------------------------------------------------------- *)

let () =
  Interp.register_fast2 "+" Numeric.add;
  Interp.register_fast2 "-" Numeric.sub;
  Interp.register_fast2 "*" Numeric.mul;
  Interp.register_fast2 "/" Numeric.div;
  Interp.register_fast2 "<" (fun a b -> Bool (Numeric.lt a b));
  Interp.register_fast2 ">" (fun a b -> Bool (Numeric.gt a b));
  Interp.register_fast2 "<=" (fun a b -> Bool (Numeric.le a b));
  Interp.register_fast2 ">=" (fun a b -> Bool (Numeric.ge a b));
  Interp.register_fast2 "=" (fun a b -> Bool (Numeric.num_eq a b));
  Interp.register_fast2 "quotient" Numeric.quotient;
  Interp.register_fast2 "remainder" Numeric.remainder;
  Interp.register_fast2 "modulo" Numeric.modulo;
  Interp.register_fast2 "cons" cons;
  Interp.register_fast2 "eq?" (fun a b -> Bool (eqv a b));
  Interp.register_fast2 "eqv?" (fun a b -> Bool (eqv a b));
  Interp.register_fast2 "equal?" (fun a b -> Bool (equal_values a b));
  Interp.register_fast1 "car" car_v;
  Interp.register_fast1 "cdr" cdr_v;
  Interp.register_fast1 "add1" Numeric.add1;
  Interp.register_fast1 "sub1" Numeric.sub1;
  Interp.register_fast1 "abs" Numeric.abs_;
  Interp.register_fast1 "sqrt" Numeric.sqrt_;
  Interp.register_fast1 "magnitude" Numeric.magnitude;
  Interp.register_fast1 "real-part" Numeric.real_part;
  Interp.register_fast1 "imag-part" Numeric.imag_part;
  Interp.register_fast2 "make-rectangular" Numeric.make_rectangular;
  Interp.register_fast1 "not" (fun v -> Bool (not (truthy v)));
  Interp.register_fast1 "null?" (fun v -> Bool (v = Nil));
  Interp.register_fast1 "pair?" (fun v -> Bool (match v with Pair _ -> true | _ -> false));
  Interp.register_fast1 "zero?" (fun v -> Bool (Numeric.is_zero v));
  Interp.register_fast2 "vector-ref" (fun v i ->
      match (v, i) with
      | Vec a, Int i ->
          if i < 0 || i >= Array.length a then
            error "vector-ref: index %d out of range for vector of length %d" i (Array.length a)
          else Array.unsafe_get a i
      | _ -> error "vector-ref: expects a vector and a fixnum");
  Interp.register_fast1 "vector-length" (fun v ->
      match v with Vec a -> Int (Array.length a) | _ -> error "vector-length: expects a vector");
  (* unsafe primitives also get direct-call paths, so that disabling the
     unboxing backend (ablation) still measures dispatch elimination *)
  List.iter
    (fun (name, f) -> Interp.register_fast2 name (fun a b ->
        match (a, b) with
        | Float x, Float y -> Float (f x y)
        | _ -> Float (f (Interp.unbox_float a) (Interp.unbox_float b))))
    [ ("unsafe-fl+", ( +. )); ("unsafe-fl-", ( -. )); ("unsafe-fl*", ( *. )); ("unsafe-fl/", ( /. )) ];
  List.iter
    (fun (name, f) -> Interp.register_fast2 name (fun a b ->
        Bool (f (Interp.unbox_float a) (Interp.unbox_float b))))
    [ ("unsafe-fl<", ( < )); ("unsafe-fl>", ( > )); ("unsafe-fl<=", ( <= )); ("unsafe-fl>=", ( >= )); ("unsafe-fl=", Float.equal) ];
  Interp.register_fast1 "unsafe-flsqrt" (fun a -> Float (Float.sqrt (Interp.unbox_float a)));
  Interp.register_fast1 "unsafe-fx->fl" (fun a ->
      match a with Int n -> Float (float_of_int n) | Float _ -> a | _ -> error "unsafe-fx->fl: off-type");
  Interp.register_fast1 "unsafe-flabs" (fun a -> Float (Float.abs (Interp.unbox_float a)));
  Interp.register_fast1 "unsafe-car" (function
    | Pair p -> p.car
    | v -> error "unsafe-car: undefined behavior off-type, given %s" (write_string v));
  Interp.register_fast1 "unsafe-cdr" (function
    | Pair p -> p.cdr
    | v -> error "unsafe-cdr: undefined behavior off-type, given %s" (write_string v));
  Interp.register_fast2 "unsafe-vector-ref" (fun v i ->
      match (v, i) with
      | Vec a, Int i -> Array.unsafe_get a i
      | _ -> error "unsafe-vector-ref: undefined behavior off-type");
  Interp.register_fast2 "unchecked-vector-ref" (fun v i ->
      match (v, i) with
      | Vec a, Int i -> Array.unsafe_get a i
      | _ -> error "unchecked-vector-ref: undefined behavior off-type");
  Interp.register_fast1 "unsafe-vector-length" (function
    | Vec a -> Int (Array.length a)
    | _ -> error "unsafe-vector-length: undefined behavior off-type");
  ()

let all : (string * value) list =
  List.map
    (fun v -> match v with Prim p -> (p.p_name, v) | _ -> assert false)
    (numeric_prims @ unsafe_prims @ list_prims @ ho_prims @ vector_prims @ string_prims
   @ misc_prims @ io_prims @ stx_prims)
