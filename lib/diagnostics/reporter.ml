(** The accumulating diagnostic sink.

    A reporter collects diagnostics in emission order (which is the source
    traversal order, hence deterministic) and enforces an error cap so a
    pathological input cannot flood the user: beyond [max_errors] errors,
    further errors are counted but dropped, and {!diagnostics} appends a
    summary note.

    The {e ambient} reporter ({!current}, installed with {!with_reporter})
    is how resilient phases choose between recover-and-continue and
    fail-fast: a phase that can synthesize a recovery value calls {!emit};
    if a reporter is installed the diagnostic is accumulated and the phase
    continues, otherwise the phase falls back to raising its legacy
    exception (preserving the behavior of direct library use). *)

type t = {
  mutable diags : Diagnostic.t list;  (** reversed emission order *)
  mutable error_count : int;
  mutable dropped : int;
  max_errors : int;
}

let create ?(max_errors = 50) () = { diags = []; error_count = 0; dropped = 0; max_errors }

let report r (d : Diagnostic.t) =
  if Diagnostic.is_error d then
    if r.error_count >= r.max_errors then r.dropped <- r.dropped + 1
    else begin
      r.error_count <- r.error_count + 1;
      r.diags <- d :: r.diags
    end
  else r.diags <- d :: r.diags

let error_count r = r.error_count + r.dropped
let has_errors r = error_count r > 0

(** True once the error cap has been reached — lets a long-running phase
    stop early instead of computing diagnostics that would be dropped. *)
let at_limit r = r.error_count >= r.max_errors

(** All diagnostics in emission order, with a trailing summary note when
    the error cap truncated the report. *)
let diagnostics r =
  let ds = List.rev r.diags in
  if r.dropped = 0 then ds
  else
    ds
    @ [
        Diagnostic.make ~severity:Diagnostic.Note ~phase:Diagnostic.Internal
          (Printf.sprintf "%d more error%s not shown (error limit %d reached)" r.dropped
             (if r.dropped = 1 then "" else "s")
             r.max_errors);
      ]

(* -- the ambient reporter -------------------------------------------------

   Domain-local: each domain has its own ambient reporter slot, so a worker
   in the parallel build pool accumulates its task's diagnostics privately
   and the driver aggregates them on join.  A freshly spawned domain starts
   with no reporter installed. *)

let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let installed () = Option.is_some (Domain.DLS.get current_key)

(** Install [r] as the ambient reporter for the extent of [f] (properly
    nested: the previous reporter is restored on exit). *)
let with_reporter r f =
  let saved = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some r);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key saved) f

(** Report to the ambient reporter if one is installed; returns whether a
    reporter accepted the diagnostic (callers raise their legacy exception
    when it returns [false]). *)
let emit d =
  match Domain.DLS.get current_key with
  | Some r ->
      report r d;
      true
  | None -> false
