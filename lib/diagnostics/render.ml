(** Human-facing rendering of diagnostics: a header line, an optional
    source-line excerpt with a caret underline (when the source text is
    registered in {!Sources}), and the notes — in plain text or with ANSI
    colors for TTYs.

    {v
    prog.scm:3:20: typecheck error: wrong type: expected Integer, got Float
      3 | (define x : Integer 3.7)
        |                     ^^^
      note: in: (quote 3.7)
    v} *)

module Srcloc = Liblang_reader.Srcloc

type style = Plain | Color

let bold = "\027[1m"
let red = "\027[31m"
let yellow = "\027[33m"
let cyan = "\027[36m"
let dim = "\027[2m"
let reset = "\027[0m"

let paint style code s = match style with Plain -> s | Color -> code ^ s ^ reset

let severity_color = function
  | Diagnostic.Error -> red
  | Diagnostic.Warning -> yellow
  | Diagnostic.Note -> cyan

(* The excerpt block for a location, if its source is registered. *)
let excerpt style (loc : Srcloc.t) : string option =
  if Srcloc.is_none loc then None
  else
    match Sources.line loc.Srcloc.file loc.Srcloc.line with
    | None -> None
    | Some text ->
        let lineno = string_of_int loc.Srcloc.line in
        let gutter = String.make (String.length lineno) ' ' in
        let col = min loc.Srcloc.col (String.length text) in
        (* the caret underline covers the span, clipped to the line *)
        let width = max 1 (min loc.Srcloc.span (String.length text - col)) in
        let carets = String.make width '^' in
        Some
          (Printf.sprintf "  %s | %s\n  %s | %s%s"
             (paint style dim lineno)
             text gutter (String.make col ' ')
             (paint style (severity_color Diagnostic.Error) carets))

let render ?(color = false) (d : Diagnostic.t) : string =
  let style = if color then Color else Plain in
  let buf = Buffer.create 160 in
  if not (Srcloc.is_none d.Diagnostic.loc) then begin
    Buffer.add_string buf (paint style bold (Srcloc.to_string d.Diagnostic.loc));
    Buffer.add_string buf ": "
  end;
  Buffer.add_string buf
    (paint style
       (severity_color d.Diagnostic.severity)
       (Diagnostic.phase_name d.Diagnostic.phase
       ^ " "
       ^ Diagnostic.severity_name d.Diagnostic.severity));
  Buffer.add_string buf ": ";
  Buffer.add_string buf (paint style bold d.Diagnostic.message);
  (match excerpt style d.Diagnostic.loc with
  | Some block ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf block
  | None -> ());
  List.iter
    (fun (n : Diagnostic.note) ->
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf (paint style cyan "note");
      Buffer.add_string buf ": ";
      Buffer.add_string buf n.Diagnostic.note_msg;
      if not (Srcloc.is_none n.Diagnostic.note_loc) then begin
        Buffer.add_string buf " (";
        Buffer.add_string buf (Srcloc.to_string n.Diagnostic.note_loc);
        Buffer.add_char buf ')'
      end)
    d.Diagnostic.notes;
  Buffer.contents buf

(** Render a whole report, one blank-line-separated block per diagnostic,
    followed by an error-count summary line. *)
let render_all ?(color = false) (ds : Diagnostic.t list) : string =
  let style = if color then Color else Plain in
  let blocks = List.map (render ~color) ds in
  let n_err = List.length (List.filter Diagnostic.is_error ds) in
  let summary =
    if n_err = 0 then []
    else
      [
        paint style (severity_color Diagnostic.Error)
          (Printf.sprintf "%d error%s generated" n_err (if n_err = 1 then "" else "s"));
      ]
  in
  String.concat "\n" (blocks @ summary)
