(** A registry mapping file/module names to their source text, so the
    renderer can show source-line excerpts with caret underlines.  The
    pipeline registers every source it reads; direct library users may
    register theirs. *)

let table : (string, string) Hashtbl.t = Hashtbl.create 16

let register ~file text = Hashtbl.replace table file text
let find file = Hashtbl.find_opt table file
let clear () = Hashtbl.reset table

(** The [n]-th (1-based) line of the registered source for [file], without
    its trailing newline. *)
let line file n : string option =
  match find file with
  | None -> None
  | Some text ->
      if n < 1 then None
      else begin
        let len = String.length text in
        let rec seek pos remaining =
          if remaining = 0 then Some pos
          else
            match String.index_from_opt text pos '\n' with
            | Some nl -> seek (nl + 1) (remaining - 1)
            | None -> None
        in
        match seek 0 (n - 1) with
        | None -> None
        | Some start ->
            if start >= len then None
            else
              let stop =
                match String.index_from_opt text start '\n' with Some nl -> nl | None -> len
              in
              Some (String.sub text start (stop - start))
      end
