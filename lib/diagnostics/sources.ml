(** A registry mapping file/module names to their source text, so the
    renderer can show source-line excerpts with caret underlines.  The
    pipeline registers every source it reads; direct library users may
    register theirs.

    The table is shared across domains under a (tiny, always-on) mutex:
    sources registered by parallel-build workers must be visible to the
    main domain, which renders the merged diagnostics after join.
    Registration and excerpt lookup are rare (per file / per rendered
    diagnostic), so an unconditional lock costs nothing measurable. *)

let table : (string, string) Hashtbl.t = Hashtbl.create 16
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register ~file text = locked (fun () -> Hashtbl.replace table file text)
let find file = locked (fun () -> Hashtbl.find_opt table file)
let clear () = locked (fun () -> Hashtbl.reset table)

(** The [n]-th (1-based) line of the registered source for [file], without
    its trailing newline. *)
let line file n : string option =
  match find file with
  | None -> None
  | Some text ->
      if n < 1 then None
      else begin
        let len = String.length text in
        let rec seek pos remaining =
          if remaining = 0 then Some pos
          else
            match String.index_from_opt text pos '\n' with
            | Some nl -> seek (nl + 1) (remaining - 1)
            | None -> None
        in
        match seek 0 (n - 1) with
        | None -> None
        | Some start ->
            if start >= len then None
            else
              let stop =
                match String.index_from_opt text start '\n' with Some nl -> nl | None -> len
              in
              Some (String.sub text start (stop - start))
      end
