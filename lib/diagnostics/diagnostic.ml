(** Located, phase-tagged diagnostics — the unified error currency of the
    pipeline.

    Every phase of a [liblang] compilation (reader, expander, typechecker,
    compiler, module system, runtime) reports failures as values of
    {!t} rather than ad-hoc exceptions, so that one invocation can carry
    {e many} located errors to the user, and so that fault containment (fuel
    exhaustion, recursion caps, crashed transformers) degrades into ordinary
    error reports instead of uncaught exceptions.  The paper's premise
    (§2.1) is that macro transformers are ordinary programs run at compile
    time; this module is what makes their failures ordinary too. *)

module Srcloc = Liblang_reader.Srcloc

type severity = Error | Warning | Note

(** Which stage of the pipeline produced the diagnostic.  [Internal] marks
    a violated invariant of the platform itself (a panic): the CLI maps it
    to exit code 2, and the crashcheck harness treats it as a failure. *)
type phase =
  | Reader      (** text → datums *)
  | Expander    (** macro expansion, hygiene, fuel/depth containment *)
  | Typecheck   (** the typed sister language's checker *)
  | Compile     (** core forms → runtime AST *)
  | Module      (** the module system: requires, provides, instantiation *)
  | Runtime     (** evaluation of the instantiated program *)
  | Internal    (** a bug in the platform — never a user error *)

type note = { note_msg : string; note_loc : Srcloc.t }

type t = {
  severity : severity;
  phase : phase;
  loc : Srcloc.t;
  message : string;
  notes : note list;
}

(** Raised (by phase drivers) to deliver an already-accumulated batch of
    diagnostics through an exception-shaped control path; the pipeline's
    containment boundary flattens it back into the result. *)
exception Failed of t list

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

let phase_name = function
  | Reader -> "reader"
  | Expander -> "expand"
  | Typecheck -> "typecheck"
  | Compile -> "compile"
  | Module -> "module"
  | Runtime -> "runtime"
  | Internal -> "internal"

(** Clip a rendered form to a readable width (used for "in: <stx>" notes,
    where the offending form may be arbitrarily large). *)
let truncated ?(limit = 160) s =
  if String.length s <= limit then s else String.sub s 0 limit ^ " ..."

let note ?(loc = Srcloc.none) note_msg = { note_msg; note_loc = loc }

let make ?(severity = Error) ~phase ?(loc = Srcloc.none) ?(notes = []) message =
  { severity; phase; loc; message; notes }

let error ~phase ?loc ?notes message = make ~severity:Error ~phase ?loc ?notes message
let warning ~phase ?loc ?notes message = make ~severity:Warning ~phase ?loc ?notes message

let errorf ~phase ?loc ?notes fmt =
  Printf.ksprintf (fun m -> error ~phase ?loc ?notes m) fmt

let is_error d = d.severity = Error
let is_internal d = d.phase = Internal

(** Order by source position (file, offset), then message — gives reports a
    stable, reader-friendly order independent of traversal details. *)
let compare_loc a b =
  let c = compare a.loc.Srcloc.file b.loc.Srcloc.file in
  if c <> 0 then c
  else
    let c = compare a.loc.Srcloc.pos b.loc.Srcloc.pos in
    if c <> 0 then c else compare a.message b.message

(** One-line rendering (no source excerpt): [FILE:LINE:COL: phase
    severity: message; note: ...].  The full renderer with source-line
    excerpts lives in {!Render}. *)
let to_string d =
  let buf = Buffer.create 80 in
  if not (Srcloc.is_none d.loc) then begin
    Buffer.add_string buf (Srcloc.to_string d.loc);
    Buffer.add_string buf ": "
  end;
  Buffer.add_string buf (phase_name d.phase);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (severity_name d.severity);
  Buffer.add_string buf ": ";
  Buffer.add_string buf d.message;
  List.iter
    (fun n ->
      Buffer.add_string buf "; ";
      Buffer.add_string buf n.note_msg;
      if not (Srcloc.is_none n.note_loc) then begin
        Buffer.add_string buf " (";
        Buffer.add_string buf (Srcloc.to_string n.note_loc);
        Buffer.add_char buf ')'
      end)
    d.notes;
  Buffer.contents buf

let pp fmt d = Format.pp_print_string fmt (to_string d)
