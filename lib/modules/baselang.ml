(** The base language: a builtin module named [racket] providing the
    primitives, the core forms, and the surface macros ([define], [let],
    [cond], [match], [quasiquote], [for], …).

    Everything here is an ordinary language library built on the public
    extension API: native transformers are host-language functions from
    syntax to syntax, exactly as Racket macros are Racket functions. *)

module Stx = Liblang_stx.Stx
module Scope = Liblang_stx.Scope
module Value = Liblang_runtime.Value
module Prims = Liblang_runtime.Prims
module Contracts = Liblang_contracts.Contracts
module Expander = Liblang_expander.Expander
module Denote = Liblang_expander.Denote

let err msg s = raise (Expander.Expand_error (msg, s))

let sl ?loc xs = Stx.list ?loc xs

let expect_list msg s = match Stx.to_list s with Some xs -> xs | None -> err msg s

(** An identifier guaranteed not to collide with anything else: it carries
    its own fresh scope.  Binders and references built from the same call
    resolve to each other. *)
let fresh_id name = Stx.id ~scopes:(Scope.Set.singleton (Scope.fresh ())) name

(* -- the module and its template context ---------------------------------- *)

let racket_mod, bid =
  Modsys.declare_builtin ~name:"racket"
    ~values:(Prims.all @ Contracts.prims @ Expander.phase1_prims)
    ~reexports:Expander.core_bindings ()

(* shorthands for template identifiers resolving in the base context *)
let b = bid
let app xs = sl xs
let quote_ d = sl [ b "quote"; d ]

(* -- macro definitions ------------------------------------------------------ *)

let m_lambda form =
  match Stx.to_list form with
  | Some (_ :: formals :: body) when body <> [] ->
      sl ~loc:(Stx.loc form) ((b "#%plain-lambda") :: formals :: body)
  | _ -> err "lambda: bad syntax" form

let m_define form =
  match Stx.to_list form with
  | Some [ kw; target; rhs ] when Stx.is_id target ->
      ignore kw;
      sl ~loc:(Stx.loc form) [ b "define-values"; sl [ target ]; rhs ]
  | Some (_ :: target :: body) when body <> [] -> (
      (* (define (f . formals) body ...) *)
      match Stx.view target with
      | Stx.List (fname :: formals) when Stx.is_id fname ->
          sl ~loc:(Stx.loc form)
            [
              b "define-values";
              sl [ fname ];
              sl ((b "#%plain-lambda") :: sl formals :: body);
            ]
      | Stx.DotList (fname :: formals, rest) when Stx.is_id fname ->
          sl ~loc:(Stx.loc form)
            [
              b "define-values";
              sl [ fname ];
              sl ((b "#%plain-lambda") :: Stx.mk (Stx.DotList (formals, rest)) :: body);
            ]
      | _ -> err "define: bad syntax" form)
  | _ -> err "define: bad syntax" form

let m_define_syntax form =
  match Stx.to_list form with
  | Some [ _; target; rhs ] when Stx.is_id target ->
      sl ~loc:(Stx.loc form) [ b "define-syntaxes"; sl [ target ]; rhs ]
  | Some (_ :: target :: body) when body <> [] -> (
      match Stx.view target with
      | Stx.List (fname :: formals) when Stx.is_id fname ->
          sl ~loc:(Stx.loc form)
            [
              b "define-syntaxes";
              sl [ fname ];
              sl ((b "#%plain-lambda") :: sl formals :: body);
            ]
      | _ -> err "define-syntax: bad syntax" form)
  | _ -> err "define-syntax: bad syntax" form

let m_define_syntax_rule form =
  match Stx.to_list form with
  | Some [ _; pattern; template ] -> (
      match Stx.view pattern with
      | Stx.List (name :: _) when Stx.is_id name ->
          sl ~loc:(Stx.loc form)
            [
              b "define-syntaxes";
              sl [ name ];
              sl [ b "syntax-rules"; sl []; sl [ pattern; template ] ];
            ]
      | _ -> err "define-syntax-rule: bad pattern" form)
  | _ -> err "define-syntax-rule: bad syntax" form

let parse_binding_clause name c =
  match Stx.to_list c with
  | Some [ x; e ] when Stx.is_id x -> (x, e)
  | _ -> err (name ^ ": bad binding clause") c

let m_let form =
  match Stx.to_list form with
  | Some (_ :: maybe_name :: rest) when Stx.is_id maybe_name && rest <> [] ->
      (* named let *)
      let loop_name = maybe_name in
      let clauses, body =
        match rest with
        | clauses :: body when body <> [] -> (expect_list "let: bad bindings" clauses, body)
        | _ -> err "let: bad syntax" form
      in
      let parsed = List.map (parse_binding_clause "let") clauses in
      let formals = sl (List.map fst parsed) in
      let inits = List.map snd parsed in
      sl ~loc:(Stx.loc form)
        [
          b "letrec-values";
          sl [ sl [ sl [ loop_name ]; sl ((b "#%plain-lambda") :: formals :: body) ] ];
          app (loop_name :: inits);
        ]
  | Some (_ :: clauses :: body) when body <> [] ->
      let parsed = List.map (parse_binding_clause "let") (expect_list "let: bad bindings" clauses) in
      sl ~loc:(Stx.loc form)
        ((b "let-values")
        :: sl (List.map (fun (x, e) -> sl [ sl [ x ]; e ]) parsed)
        :: body)
  | _ -> err "let: bad syntax" form

let m_let_star form =
  match Stx.to_list form with
  | Some (_ :: clauses :: body) when body <> [] ->
      let parsed =
        List.map (parse_binding_clause "let*") (expect_list "let*: bad bindings" clauses)
      in
      List.fold_right
        (fun (x, e) acc -> sl [ b "let-values"; sl [ sl [ sl [ x ]; e ] ]; acc ])
        parsed
        (match body with [ e ] -> e | es -> sl ((b "begin") :: es))
  | _ -> err "let*: bad syntax" form

let m_letrec form =
  match Stx.to_list form with
  | Some (_ :: clauses :: body) when body <> [] ->
      let parsed =
        List.map (parse_binding_clause "letrec") (expect_list "letrec: bad bindings" clauses)
      in
      sl ~loc:(Stx.loc form)
        ((b "letrec-values")
        :: sl (List.map (fun (x, e) -> sl [ sl [ x ]; e ]) parsed)
        :: body)
  | _ -> err "letrec: bad syntax" form

let sym_else = Stx.Symbol.intern "else"
let sym_wild = Stx.Symbol.intern "_"
let is_else s = Stx.has_sym sym_else s

let m_cond form =
  match Stx.to_list form with
  | Some (_ :: clauses) ->
      let rec build = function
        | [] -> app [ b "void" ]
        | c :: rest -> (
            match Stx.to_list c with
            | Some (test :: body) when is_else test ->
                if rest <> [] then err "cond: else clause must be last" form;
                if body = [] then err "cond: else clause needs a body" c
                else sl ((b "begin") :: body)
            | Some [ test ] ->
                let t = fresh_id "cond-val" in
                sl
                  [
                    b "let-values";
                    sl [ sl [ sl [ t ]; test ] ];
                    sl [ b "if"; t; t; build rest ];
                  ]
            | Some [ test; arrow; receiver ] when Stx.is_sym "=>" arrow ->
                let t = fresh_id "cond-val" in
                sl
                  [
                    b "let-values";
                    sl [ sl [ sl [ t ]; test ] ];
                    sl [ b "if"; t; app [ receiver; t ]; build rest ];
                  ]
            | Some (test :: body) ->
                sl [ b "if"; test; sl ((b "begin") :: body); build rest ]
            | _ -> err "cond: bad clause" c)
      in
      build clauses
  | _ -> err "cond: bad syntax" form

let m_case form =
  match Stx.to_list form with
  | Some (_ :: subject :: clauses) ->
      let t = fresh_id "case-val" in
      let build_clause c =
        match Stx.to_list c with
        | Some (data :: body) when is_else data -> sl ((b "else") :: body)
        | Some (data :: body) when not (Stx.is_id data) ->
            sl (app [ b "memv"; t; quote_ data ] :: body)
        | _ -> err "case: bad clause" c
      in
      sl ~loc:(Stx.loc form)
        [
          b "let-values";
          sl [ sl [ sl [ t ]; subject ] ];
          sl ((b "cond") :: List.map build_clause clauses);
        ]
  | _ -> err "case: bad syntax" form

let m_when form =
  match Stx.to_list form with
  | Some (_ :: test :: body) when body <> [] ->
      sl ~loc:(Stx.loc form) [ b "if"; test; sl ((b "begin") :: body); app [ b "void" ] ]
  | _ -> err "when: bad syntax" form

let m_unless form =
  match Stx.to_list form with
  | Some (_ :: test :: body) when body <> [] ->
      sl ~loc:(Stx.loc form) [ b "if"; test; app [ b "void" ]; sl ((b "begin") :: body) ]
  | _ -> err "unless: bad syntax" form

let m_and form =
  match Stx.to_list form with
  | Some [ _ ] -> Stx.bool_ true |> fun a -> sl [ b "quote"; a ]
  | Some (_ :: args) ->
      let rec build = function
        | [ e ] -> e
        | e :: rest -> sl [ b "if"; e; build rest; sl [ b "quote"; Stx.bool_ false ] ]
        | [] -> assert false
      in
      build args
  | _ -> err "and: bad syntax" form

let m_or form =
  match Stx.to_list form with
  | Some [ _ ] -> sl [ b "quote"; Stx.bool_ false ]
  | Some (_ :: args) ->
      let rec build = function
        | [ e ] -> e
        | e :: rest ->
            let t = fresh_id "or-val" in
            sl [ b "let-values"; sl [ sl [ sl [ t ]; e ] ]; sl [ b "if"; t; t; build rest ] ]
        | [] -> assert false
      in
      build args
  | _ -> err "or: bad syntax" form

let m_begin0 form =
  match Stx.to_list form with
  | Some (_ :: first :: rest) ->
      let t = fresh_id "begin0-val" in
      sl [ b "let-values"; sl [ sl [ sl [ t ]; first ] ]; sl ((b "begin") :: (rest @ [ t ])) ]
  | _ -> err "begin0: bad syntax" form

(* -- quasiquote --------------------------------------------------------------- *)

let rec qq (t : Stx.t) (depth : int) : Stx.t =
  match Stx.view t with
  | Stx.List [ kw; e ] when Stx.is_sym "unquote" kw ->
      if depth = 1 then e
      else app [ b "list"; quote_ kw; qq e (depth - 1) ]
  | Stx.List [ kw; e ] when Stx.is_sym "quasiquote" kw ->
      app [ b "list"; quote_ kw; qq e (depth + 1) ]
  | Stx.List elems -> qq_list t elems None depth
  | Stx.DotList (elems, tl) -> qq_list t elems (Some tl) depth
  | Stx.Vec elems ->
      app [ b "list->vector"; qq_list t elems None depth ]
  | Stx.Id _ | Stx.Atom _ -> quote_ t

and qq_list orig elems tail depth =
  let tail_expr =
    match tail with None -> quote_ (Stx.list []) | Some tl -> qq tl depth
  in
  (* [(a . ,e)] reads as [(a unquote e)]: an unquote in tail position *)
  let rec build = function
    | [ kw; e ] when Stx.is_sym "unquote" kw && depth = 1 && tail = None -> e
    | [] -> tail_expr
    | elem :: rest -> (
        match Stx.view elem with
        | Stx.List [ kw; e ] when Stx.is_sym "unquote-splicing" kw && depth = 1 ->
            app [ b "append"; e; build rest ]
        | Stx.List [ kw; e ] when Stx.is_sym "unquote-splicing" kw ->
            app [ b "cons"; app [ b "list"; quote_ kw; qq e (depth - 1) ]; build rest ]
        | _ -> app [ b "cons"; qq elem depth; build rest ])
  in
  build elems
  |> Stx.with_loc (Stx.loc orig)

let m_quasiquote form =
  match Stx.to_list form with
  | Some [ _; t ] -> qq t 1
  | _ -> err "quasiquote: bad syntax" form

(* -- quasisyntax: building syntax with escapes (#`...) ------------------------- *)

let rec qs (t : Stx.t) : Stx.t =
  match Stx.view t with
  | Stx.List [ kw; e ] when Stx.is_sym "unsyntax" kw -> e
  | Stx.List elems ->
      let part elem =
        match Stx.view elem with
        | Stx.List [ kw; e ] when Stx.is_sym "unsyntax-splicing" kw ->
            app [ b "syntax->splice-list"; e ]
        | _ -> app [ b "list"; qs elem ]
      in
      app
        [
          b "make-stx-list";
          sl [ b "quote-syntax"; t ];
          app ((b "append") :: List.map part elems);
        ]
  | _ -> sl [ b "quote-syntax"; t ]

let m_quasisyntax form =
  match Stx.to_list form with
  | Some [ _; t ] -> qs t
  | _ -> err "quasisyntax: bad syntax" form

let m_syntax form =
  match Stx.to_list form with
  | Some [ _; t ] -> sl [ b "quote-syntax"; t ]
  | _ -> err "syntax: bad syntax" form

(* -- delay / force ------------------------------------------------------------- *)

(* (time e): print wall-clock time of evaluating e; return e's value *)
let m_time form =
  match Stx.to_list form with
  | Some [ _; e ] ->
      let t0 = fresh_id "time-start" in
      let v = fresh_id "time-val" in
      sl
        [
          b "let-values";
          sl [ sl [ sl [ t0 ]; app [ b "current-inexact-milliseconds" ] ] ];
          sl
            [
              b "let-values";
              sl [ sl [ sl [ v ]; e ] ];
              app
                [
                  b "printf";
                  quote_ (Stx.str_ "cpu time: ~a ms~%");
                  app [ b "-"; app [ b "current-inexact-milliseconds" ]; t0 ];
                ];
              v;
            ];
        ]
  | _ -> err "time: bad syntax (expects one expression)" form

let m_delay form =
  match Stx.to_list form with
  | Some (_ :: body) when body <> [] ->
      app [ b "make-promise"; sl ((b "#%plain-lambda") :: sl [] :: body) ]
  | _ -> err "delay: bad syntax" form

(* -- for loops ------------------------------------------------------------------- *)

(* (for ([x (in-range a b)]) body ...) and (in-list l); single clause. *)
let m_for form =
  match Stx.to_list form with
  | Some (_ :: clauses :: body) when body <> [] -> (
      match expect_list "for: bad clauses" clauses with
      | [ clause ] -> (
          match Stx.to_list clause with
          | Some [ x; seq ] when Stx.is_id x -> (
              match Stx.to_list seq with
              | Some (kw :: bounds) when Stx.is_sym "in-range" kw ->
                  let lo, hi =
                    match bounds with
                    | [ hi ] -> (quote_ (Stx.int_ 0), hi)
                    | [ lo; hi ] -> (lo, hi)
                    | _ -> err "in-range: bad syntax" seq
                  in
                  let loop = fresh_id "for-loop" in
                  let stop = fresh_id "for-stop" in
                  sl
                    [
                      b "let-values";
                      sl [ sl [ sl [ stop ]; hi ] ];
                      sl
                        [
                          b "letrec-values";
                          sl
                            [
                              sl
                                [
                                  sl [ loop ];
                                  sl
                                    [
                                      b "#%plain-lambda";
                                      sl [ x ];
                                      sl
                                        [
                                          b "when";
                                          app [ b "<"; x; stop ];
                                          sl ((b "begin") :: body);
                                          app [ loop; app [ b "+"; x; quote_ (Stx.int_ 1) ] ];
                                        ];
                                    ];
                                ];
                            ];
                          app [ loop; lo ];
                        ];
                    ]
              | Some [ kw; lst ] when Stx.is_sym "in-list" kw ->
                  let loop = fresh_id "for-loop" in
                  let rest = fresh_id "for-rest" in
                  sl
                    [
                      b "letrec-values";
                      sl
                        [
                          sl
                            [
                              sl [ loop ];
                              sl
                                [
                                  b "#%plain-lambda";
                                  sl [ rest ];
                                  sl
                                    [
                                      b "unless";
                                      app [ b "null?"; rest ];
                                      sl
                                        ((b "let-values")
                                        :: sl [ sl [ sl [ x ]; app [ b "car"; rest ] ] ]
                                        :: body);
                                      app [ loop; app [ b "cdr"; rest ] ];
                                    ];
                                ];
                            ];
                        ];
                      app [ loop; lst ];
                    ]
              | _ -> err "for: unsupported sequence (use in-range or in-list)" seq)
          | _ -> err "for: bad clause" clause)
      | _ -> err "for: exactly one clause supported" clauses)
  | _ -> err "for: bad syntax" form

(* (for/list ([x seq]) body ...) and (for/sum ([x seq]) body ...): the
   comprehension forms, expressed through map/build-list. *)
let for_comprehension form =
  match Stx.to_list form with
  | Some (_ :: clauses :: body) when body <> [] -> (
      match expect_list "for/list: bad clauses" clauses with
      | [ clause ] -> (
          match Stx.to_list clause with
          | Some [ x; seq ] when Stx.is_id x -> (
              let fn = sl ((b "#%plain-lambda") :: sl [ x ] :: body) in
              match Stx.to_list seq with
              | Some [ kw; lst ] when Stx.is_sym "in-list" kw -> app [ b "map"; fn; lst ]
              | Some [ kw; hi ] when Stx.is_sym "in-range" kw -> app [ b "build-list"; hi; fn ]
              | Some [ kw; lo; hi ] when Stx.is_sym "in-range" kw ->
                  let i = fresh_id "for-idx" in
                  app
                    [
                      b "build-list";
                      app [ b "-"; hi; lo ];
                      sl
                        [
                          b "#%plain-lambda";
                          sl [ i ];
                          sl
                            [
                              b "let-values";
                              sl [ sl [ sl [ x ]; app [ b "+"; i; lo ] ] ];
                              sl ((b "begin") :: body);
                            ];
                        ];
                    ]
              | _ -> err "for/list: unsupported sequence (use in-range or in-list)" seq)
          | _ -> err "for/list: bad clause" clause)
      | _ -> err "for/list: exactly one clause supported" clauses)
  | _ -> err "for/list: bad syntax" form

let m_for_list form = for_comprehension form

let m_for_sum form =
  match Stx.to_list form with
  | Some (kw :: rest) -> app [ b "apply"; b "+"; for_comprehension (sl (kw :: rest)) ]
  | _ -> err "for/sum: bad syntax" form

(* The when/unless inside for templates appear before those macros are
   registered; registration order doesn't matter because resolution happens
   at use time. *)

(* -- match (a practical subset) ---------------------------------------------------- *)

let rec compile_pat (pat : Stx.t) (target : Stx.t) (success : Stx.t) (fail : Stx.t) : Stx.t =
  let fail_call = app [ fail ] in
  match Stx.view pat with
  | Stx.Id sym when Stx.Symbol.equal sym sym_wild || Stx.Symbol.equal sym sym_else ->
      success
  | Stx.Id _ -> sl [ b "let-values"; sl [ sl [ sl [ pat ]; target ] ]; success ]
  | Stx.Atom _ ->
      sl [ b "if"; app [ b "equal?"; target; quote_ pat ]; success; fail_call ]
  | Stx.List [ kw; d ] when Stx.is_sym "quote" kw ->
      sl [ b "if"; app [ b "equal?"; target; quote_ d ]; success; fail_call ]
  | Stx.List (kw :: pats) when Stx.is_sym "list" kw ->
      let rec go pats target =
        match pats with
        | [] -> sl [ b "if"; app [ b "null?"; target ]; success; fail_call ]
        | p :: rest ->
            let hd = fresh_id "match-hd" in
            let tl = fresh_id "match-tl" in
            sl
              [
                b "if";
                app [ b "pair?"; target ];
                sl
                  [
                    b "let-values";
                    sl
                      [
                        sl [ sl [ hd ]; app [ b "car"; target ] ];
                        sl [ sl [ tl ]; app [ b "cdr"; target ] ];
                      ];
                    compile_pat p hd (go rest tl) fail;
                  ];
                fail_call;
              ]
      in
      go pats target
  | Stx.List [ kw; pcar; pcdr ] when Stx.is_sym "cons" kw ->
      let hd = fresh_id "match-hd" in
      let tl = fresh_id "match-tl" in
      sl
        [
          b "if";
          app [ b "pair?"; target ];
          sl
            [
              b "let-values";
              sl
                [
                  sl [ sl [ hd ]; app [ b "car"; target ] ];
                  sl [ sl [ tl ]; app [ b "cdr"; target ] ];
                ];
              compile_pat pcar hd (compile_pat pcdr tl success fail) fail;
            ];
          fail_call;
        ]
  | Stx.List (kw :: pats) when Stx.is_sym "vector" kw ->
      let n = List.length pats in
      let checks =
        sl
          [
            b "and";
            app [ b "vector?"; target ];
            app [ b "="; app [ b "vector-length"; target ]; quote_ (Stx.int_ n) ];
          ]
      in
      let rec go i = function
        | [] -> success
        | p :: rest ->
            let elem = fresh_id "match-elem" in
            sl
              [
                b "let-values";
                sl [ sl [ sl [ elem ]; app [ b "vector-ref"; target; quote_ (Stx.int_ i) ] ] ];
                compile_pat p elem (go (i + 1) rest) fail;
              ]
      in
      sl [ b "if"; checks; go 0 pats; fail_call ]
  | Stx.List [ kw; pred ] when Stx.is_sym "?" kw ->
      sl [ b "if"; app [ pred; target ]; success; fail_call ]
  | Stx.List [ kw; pred; p ] when Stx.is_sym "?" kw ->
      sl [ b "if"; app [ pred; target ]; compile_pat p target success fail; fail_call ]
  | _ -> err "match: unsupported pattern" pat

let m_match form =
  match Stx.to_list form with
  | Some (_ :: subject :: clauses) when clauses <> [] ->
      let t = fresh_id "match-val" in
      let rec build = function
        | [] ->
            app
              [ b "error"; quote_ (Stx.str_ "match: no matching clause for"); t ]
        | c :: rest -> (
            match Stx.to_list c with
            | Some (pat :: body) when body <> [] ->
                let fail = fresh_id "match-fail" in
                sl
                  [
                    b "let-values";
                    sl
                      [
                        sl
                          [
                            sl [ fail ];
                            sl [ b "#%plain-lambda"; sl []; build rest ];
                          ];
                      ];
                    compile_pat pat t (sl ((b "begin") :: body)) fail;
                  ]
            | _ -> err "match: bad clause" c)
      in
      sl ~loc:(Stx.loc form)
        [ b "let-values"; sl [ sl [ sl [ t ]; subject ] ]; build clauses ]
  | _ -> err "match: bad syntax" form

(* -- module-begin, provide, require ------------------------------------------------- *)

let m_module_begin form =
  match Stx.to_list form with
  | Some (_ :: forms) -> sl ~loc:(Stx.loc form) ((b "#%plain-module-begin") :: forms)
  | _ -> err "#%module-begin: bad syntax" form

let m_provide form =
  match Stx.to_list form with
  | Some (_ :: specs) -> sl ~loc:(Stx.loc form) ((b "#%provide") :: specs)
  | _ -> err "provide: bad syntax" form

let m_require form =
  match Stx.to_list form with
  | Some (_ :: specs) -> sl ~loc:(Stx.loc form) ((b "#%require") :: specs)
  | _ -> err "require: bad syntax" form

(* -- registration --------------------------------------------------------------------- *)

let native name f = (name, Denote.Native (name, f))

let () =
  Modsys.add_builtin_exports racket_mod ~ctx_id:bid
    ~macros:
      [
        native "lambda" m_lambda;
        native "λ" m_lambda;
        native "define" m_define;
        native "define-syntax" m_define_syntax;
        native "define-syntax-rule" m_define_syntax_rule;
        native "let" m_let;
        native "let*" m_let_star;
        native "letrec" m_letrec;
        native "cond" m_cond;
        native "case" m_case;
        native "when" m_when;
        native "unless" m_unless;
        native "and" m_and;
        native "or" m_or;
        native "begin0" m_begin0;
        native "quasiquote" m_quasiquote;
        native "quasisyntax" m_quasisyntax;
        native "syntax" m_syntax;
        native "delay" m_delay;
        native "time" m_time;
        native "lazy" m_delay;
        native "for" m_for;
        native "for/list" m_for_list;
        native "for/sum" m_for_sum;
        native "match" m_match;
        native "#%module-begin" m_module_begin;
        native "provide" m_provide;
        native "require" m_require;
      ]
    ()

(** Force linking/initialization of the base language. *)
let init () = ignore racket_mod
