(** The module system (paper §2.3, §5).

    A module is compiled separately, with a fresh compile-time store; its
    compiled form records, besides runtime definitions, the compile-time
    declarations ([begin-for-syntax] forms) that are replayed — "visited" —
    into the store of any later compilation that requires it.  This is how
    Typed Racket persists its type environment across compilations (§5).

    Every module names its language; the language is itself just a module
    whose exports (including [#%module-begin]) form the initial binding
    environment of the body. *)

module Stx = Liblang_stx.Stx
module Scope = Liblang_stx.Scope
module Binding = Liblang_stx.Binding
module Value = Liblang_runtime.Value
module Ast = Liblang_runtime.Ast
module Interp = Liblang_runtime.Interp
module Reader = Liblang_reader.Reader
module Datum = Liblang_reader.Datum
module Expander = Liblang_expander.Expander
module Compile = Liblang_expander.Compile
module Denote = Liblang_expander.Denote
module Namespace = Liblang_expander.Namespace
module Ct_store = Liblang_expander.Ct_store
module Srcloc = Liblang_reader.Srcloc
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace

exception Module_error of string * Srcloc.t

let err_at loc fmt = Printf.ksprintf (fun s -> raise (Module_error (s, loc))) fmt
let err fmt = err_at Srcloc.none fmt
let err_stx (stx : Stx.t) fmt = err_at (Stx.loc stx) fmt

(* Names of modules whose compilation is currently in progress (innermost
   first).  A [require] of a module on this stack is a require cycle; the
   error carries the full cycle path.  Domain-local: each parallel-build
   worker tracks its own nest of in-progress compilations (a freshly
   spawned domain starts with an empty stack). *)
let compiling_stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let[@inline] compiling_stack () = Domain.DLS.get compiling_stack_key

let with_compiling name f =
  let compiling_stack = compiling_stack () in
  compiling_stack := name :: !compiling_stack;
  Fun.protect ~finally:(fun () -> compiling_stack := List.tl !compiling_stack) f

let check_cycle ?(loc = Srcloc.none) name =
  let compiling_stack = compiling_stack () in
  if List.mem name !compiling_stack then begin
    let rec upto acc = function
      | [] -> List.rev acc
      | x :: _ when String.equal x name -> List.rev (x :: acc)
      | x :: rest -> upto (x :: acc) rest
    in
    (* the stack is innermost-first; display the cycle outermost-first,
       closing back on [name] *)
    let path = List.rev (upto [] !compiling_stack) @ [ name ] in
    err_at loc "cyclic require: %s" (String.concat " -> " path)
  end

type export = { ext_name : string; binding : Binding.t }

type compiled_form =
  | CDef of Ast.global list * Ast.t
  | CExpr of Ast.t
  | CLazy of compiled_form Lazy.t
      (** a deferred body compilation, forced on first instantiation.  The
          artifact loader defers compiling [define-values] right-hand
          sides and top-level expressions: importers only need a loaded
          module's exports, macros and compile-time declarations to
          compile against it, so a load on the compile-only path (e.g. a
          parallel-build worker replaying a dependency) skips the
          expensive re-binding pass over the core forms entirely.  A
          [CLazy] is only ever forced by the domain that owns the module
          record (instantiation happens on the acquiring domain), so
          [Lazy.force] is single-domain here. *)

type t = {
  mod_name : string;
  mutable exports : export list;
  mutable body : compiled_form list;
  mutable ct_thunks : (unit -> unit) list;
  mutable requires : string list;
  mutable instantiated : bool;
  mutable visited_stores : int list;
  builtin : bool;
}

(* The module registry is domain-local, seeded at [Domain.spawn] with a
   copy of the parent's table in which every module {e record} is cloned
   (preserving alias sharing via physical identity): [visit] and
   [instantiate_at] mutate [visited_stores] / [instantiated] on registry
   records, and those per-compilation marks must stay private to the
   worker.  Clones still share immutable content — bindings, compiled
   bodies, the globals referenced from [body] — so builtin modules work
   unchanged in workers.  Store ids are globally unique (atomic counter in
   [Ct_store]), so a cloned record's inherited [visited_stores] list can
   never falsely match a store created in the child domain. *)
let clone_registry (parent : (string, t) Hashtbl.t) : (string, t) Hashtbl.t =
  let copy = Hashtbl.create (max 64 (Hashtbl.length parent)) in
  let seen : (t * t) list ref = ref [] in
  let clone m =
    match List.find_opt (fun (o, _) -> o == m) !seen with
    | Some (_, c) -> c
    | None ->
        let c = { m with mod_name = m.mod_name } in
        seen := (m, c) :: !seen;
        c
  in
  Hashtbl.iter (fun name m -> Hashtbl.replace copy name (clone m)) parent;
  copy

let registry_key : (string, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:clone_registry (fun () -> Hashtbl.create 64)

let[@inline] registry () = Domain.DLS.get registry_key

let find_opt name = Hashtbl.find_opt (registry ()) name

let find ?(loc = Srcloc.none) name =
  match find_opt name with
  | Some m -> m
  | None ->
      check_cycle ~loc name;
      err_at loc "require: unknown module %s" name

let is_declared name = Hashtbl.mem (registry ()) name

let register m = Hashtbl.replace (registry ()) m.mod_name m

(** Register an existing module under an additional name. *)
let alias m name = Hashtbl.replace (registry ()) name m

(* -- module-level internals (for separate compilation) -------------------------- *)

(* module key -> (defined name -> binding): every module-level
   [define-values] binding of the module, including unexported ones.  The
   separate-compilation layer uses this to re-link serialized cross-module
   references to internal bindings — e.g. the typed boundary's
   [defensive-*] definitions, which a typed module's export indirection
   (§6.2) splices into untyped clients without ever exporting them. *)
(* Domain-local like the registry; the split deep-copies (outer and inner
   tables) so a worker's recompilations never mutate tables shared with
   the parent. *)
let internals_key : (string, (string, Binding.t) Hashtbl.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(fun parent ->
      let copy = Hashtbl.create (max 32 (Hashtbl.length parent)) in
      Hashtbl.iter (fun k tbl -> Hashtbl.replace copy k (Hashtbl.copy tbl)) parent;
      copy)
    (fun () -> Hashtbl.create 32)

let[@inline] internals () = Domain.DLS.get internals_key

(* Start a fresh internals table for [mod_name] (re-declaration must not
   accumulate stale names). *)
let reset_internals mod_name =
  Hashtbl.replace (internals ()) mod_name (Hashtbl.create 8)

let record_internal ~mod_name name (b : Binding.t) =
  let internals = internals () in
  match Hashtbl.find_opt internals mod_name with
  | Some tbl -> Hashtbl.replace tbl name b
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace tbl name b;
      Hashtbl.replace internals mod_name tbl

(** The binding of module [mod_name]'s module-level definition [name], if
    any (independent of whether it is exported). *)
let find_internal ~mod_name name : Binding.t option =
  Option.bind (Hashtbl.find_opt (internals ()) mod_name) (fun tbl ->
      Hashtbl.find_opt tbl name)

(** The module (other than [excluding]) whose module-level definition
    [name] is exactly the binding [b], if any — the owner a serialized
    cross-module reference must be re-linked against. *)
let find_internal_owner ?excluding name (b : Binding.t) : string option =
  Hashtbl.fold
    (fun mod_name tbl acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if excluding = Some mod_name then None
          else (
            match Hashtbl.find_opt tbl name with
            | Some b' when Binding.equal b b' -> Some mod_name
            | _ -> None))
    (internals ()) None

(* -- visiting: replaying compile-time declarations (§5) ----------------------- *)

let rec visit (m : t) =
  let sid = Ct_store.store_id () in
  if not (List.mem sid m.visited_stores) then begin
    m.visited_stores <- sid :: m.visited_stores;
    List.iter (fun r -> visit (find r)) m.requires;
    List.iter (fun thunk -> thunk ()) m.ct_thunks
  end

(* -- instantiation: running a module ------------------------------------------- *)

(* The evaluation backend used to instantiate modules; the benchmark harness
   swaps in {!Liblang_runtime.Naive.eval_top} for its comparison series. *)
let evaluator : (Ast.t -> Value.value) ref = ref Interp.eval_top

let rec run_form = function
  | CLazy l -> run_form (Lazy.force l)
  | CExpr ast -> ignore (!evaluator ast)
  | CDef (globals, ast) -> (
      let v = !evaluator ast in
      match globals with
      | [ g ] -> g.Ast.g_val <- v
      | gs -> (
          match v with
          | Value.Values vs when List.length vs = List.length gs ->
              List.iter2 (fun g v -> g.Ast.g_val <- v) gs vs
          | _ -> err "define-values: expected %d values" (List.length gs)))

(* Instantiation is bounded: the [instantiated] flag already breaks
   require diamonds, so any chain deeper than the cap indicates a cyclic
   or pathological module graph rather than a legitimate program. *)
let max_instantiation_depth = ref 1_000

let rec instantiate_at depth (m : t) =
  if depth > !max_instantiation_depth then
    err "instantiate: module require chain deeper than %d at module %s (cyclic module graph?)"
      !max_instantiation_depth m.mod_name;
  if not m.instantiated then begin
    m.instantiated <- true;
    Metrics.count "module.instantiations";
    List.iter (fun r -> instantiate_at (depth + 1) (find r)) m.requires;
    List.iter run_form m.body
  end

let instantiate (m : t) =
  Trace.span "instantiate" ~detail:m.mod_name @@ fun () ->
  Metrics.time "phase.instantiate" @@ fun () -> instantiate_at 0 m

(* -- imports --------------------------------------------------------------------- *)

(** Make every export of [m] visible in the lexical context of [ctx]:
    each external name is bound, with [ctx]'s scopes, as an alias of the
    original binding — imported identifiers keep their identity (§5). *)
let export_binding (m : t) (ext_name : string) : Binding.t =
  match List.find_opt (fun e -> String.equal e.ext_name ext_name) m.exports with
  | None -> err "module %s provides no binding named %s" m.mod_name ext_name
  | Some e -> e.binding

(** Bind one export of [m] under the identifier [as_id] (using [as_id]'s own
    lexical context). *)
let bind_export_as (m : t) ~(ext_name : string) ~(as_id : Stx.t) =
  Binding.add as_id (export_binding m ext_name)

let bind_exports ~(ctx : Stx.t) (m : t) =
  List.iter
    (fun e ->
      let id = Stx.id ~scopes:(Stx.scopes ctx) e.ext_name in
      Binding.add id e.binding)
    m.exports

(* Per-domain dynamic compilation state: the requires recorded during the
   current compilation, and the name of the module currently being compiled
   (blame party for boundary contracts).  Each parallel-build worker
   carries its own, starting from the defaults. *)
type dyn = {
  mutable cur_requires : string list ref;  (** requires recorded during the current compilation *)
  mutable cur_module_name : string;
}

let dyn_key : dyn Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { cur_requires = ref []; cur_module_name = "top-level" })

let[@inline] dyn () = Domain.DLS.get dyn_key

let current_requires () = (dyn ()).cur_requires
let set_current_requires r = (dyn ()).cur_requires <- r
let current_module_name () = (dyn ()).cur_module_name
let set_current_module_name n = (dyn ()).cur_module_name <- n

(** File-based module resolution hook, installed by the separate
    compilation layer ([Liblang_compiled.Resolver]): resolves a
    [(require "path.scm")] spec to a module loaded/compiled from disk,
    registered under its canonical path. *)
let file_require_handler : (path:string -> loc:Srcloc.t -> t) ref =
  ref (fun ~path ~loc ->
      err_at loc
        "require: file-based module resolution is not installed (require of %S)" path)

(** Observer of successful module compilations, invoked with the module's
    fully-expanded core forms; the artifact store persists them so a later
    session can skip expansion and typechecking entirely. *)
let compiled_hook : (t -> lang:string -> core_forms:Stx.t list -> unit) ref =
  ref (fun _ ~lang:_ ~core_forms:_ -> ())

(* A require spec names its module either by registry name (an identifier)
   or by file path (a string literal, resolved from disk). *)
let module_of_spec_head (spec : Stx.t) : t =
  match Stx.view spec with
  | Stx.Id name -> find ~loc:(Stx.loc spec) (Stx.Symbol.name name)
  | Stx.Atom (Datum.Str path) -> !file_require_handler ~path ~loc:(Stx.loc spec)
  | _ -> err_stx spec "require: expected a module name or path, got %s" (Stx.to_string spec)

let handle_require (spec : Stx.t) =
  let record_and_visit mod_spec =
    let m = module_of_spec_head mod_spec in
    visit m;
    let reqs = current_requires () in
    if not (List.mem m.mod_name !reqs) then reqs := m.mod_name :: !reqs;
    m
  in
  match Stx.view spec with
  | Stx.Id _ | Stx.Atom (Datum.Str _) ->
      let m = record_and_visit spec in
      bind_exports ~ctx:spec m
  | Stx.List (kw :: mod_id :: clauses) when Stx.is_sym "only-in" kw ->
      let m = record_and_visit mod_id in
      List.iter
        (fun c ->
          match Stx.to_list c with
          | Some [ orig; new_id ] when Stx.is_id new_id ->
              bind_export_as m ~ext_name:(Stx.sym_exn orig) ~as_id:new_id
          | _ -> (
              match Stx.view c with
              | Stx.Id n -> bind_export_as m ~ext_name:(Stx.Symbol.name n) ~as_id:c
              | _ -> err_stx c "only-in: bad clause %s" (Stx.to_string c)))
        clauses
  | _ -> err_stx spec "require: bad require spec %s" (Stx.to_string spec)

let () = Expander.require_handler := handle_require

(* -- compiling a module ------------------------------------------------------------ *)

let resolve_exn id =
  match Binding.resolve id with
  | Some b -> b
  | None -> err_stx id "%s: unbound identifier in module compilation" (Stx.sym_exn id)

let parse_provide_spec (spec : Stx.t) : export list =
  match Stx.view spec with
  | Stx.Id name -> [ { ext_name = Stx.Symbol.name name; binding = resolve_exn spec } ]
  | Stx.List (kw :: clauses) when Stx.is_sym "rename-out" kw ->
      List.map
        (fun c ->
          match Stx.to_list c with
          | Some [ internal; ext ] ->
              { ext_name = Stx.sym_exn ext; binding = resolve_exn internal }
          | _ -> err_stx c "rename-out: bad clause %s" (Stx.to_string c))
        clauses
  | _ -> err_stx spec "provide: bad provide spec %s" (Stx.to_string spec)

let core_kind (hd : Stx.t) : string option =
  match Binding.resolve hd with
  | None -> None
  | Some b -> ( match Denote.get b with Some (Denote.DCore n) -> Some n | _ -> None)

(* Expand a whole module body (already wrapped in the language's
   #%module-begin) down to (#%plain-module-begin core-form ...). *)
let expand_module_top (wrapped : Stx.t) : Stx.t list =
  let w = Expander.partial_expand wrapped in
  match Stx.view w with
  | Stx.List (hd :: forms) when Stx.is_id hd -> (
      match core_kind hd with
      | Some "#%plain-module-begin" -> Expander.expand_module_body forms
      | _ -> err_stx w "module body did not expand to #%%plain-module-begin")
  | _ -> err_stx wrapped "module body did not expand to #%%plain-module-begin"

(* Set up a module's lexical context (fresh store, language imports) and
   expand its body to core forms; shared by compilation and the
   expansion-inspection entry point. *)
let expand_in_language ~name ~lang (body : Datum.annot list) (k : Stx.t list -> 'a) : 'a =
  check_cycle lang;
  if not (is_declared lang) then err "#lang %s: unknown language" lang;
  Expander.reset_limits ();
  with_compiling name @@ fun () ->
  Ct_store.with_fresh_store (fun () ->
      let sc = Scope.fresh () in
      let ctx = Stx.id ~scopes:(Scope.Set.singleton sc) "module-ctx" in
      let lang_mod = find lang in
      visit lang_mod;
      bind_exports ~ctx lang_mod;
      let forms = List.map (Stx.of_datum ~scopes:(Scope.Set.singleton sc)) body in
      let mb = Stx.id ~scopes:(Stx.scopes ctx) "#%module-begin" in
      let wrapped = Stx.list (mb :: forms) in
      k
        (Trace.span "expand" ~detail:name @@ fun () ->
         Metrics.time "phase.expand" @@ fun () -> expand_module_top wrapped))

(** Expand a module's body to core forms without compiling it — the view a
    whole-module analysis gets (paper §2.2, §4). *)
let expand_source ~name (source : string) : Stx.t list =
  match Reader.split_lang_line source with
  | None -> err "module %s: source must start with #lang <language>" name
  | Some (lang, rest) ->
      let saved = current_module_name () in
      set_current_module_name name;
      Fun.protect ~finally:(fun () -> set_current_module_name saved) @@ fun () ->
      expand_in_language ~name ~lang (Reader.read_all ~file:name rest) (fun forms -> forms)

(** Compile a module from its body forms (datums) in language [lang]. *)
let compile_module ~name ~lang (body : Datum.annot list) : t =
  check_cycle lang;
  if not (is_declared lang) then err "#lang %s: unknown language" lang;
  Expander.reset_limits ();
  Trace.span "compile-module" ~detail:name @@ fun () ->
  Metrics.count "module.compiles";
  (* [module.compiles] counts full (expand + typecheck + compile) module
     compilations.  Since the separate-compilation layer landed it is no
     longer the whole story: a file module acquired from the artifact
     store bumps [module.cache_hits] (in [Liblang_compiled.Loader])
     instead, so the two counters reconcile in [--profile] output —
     compiles + cache_hits = modules acquired — and a warm cache shows up
     as compiles = 0.  Re-declaring a module by the same name still
     re-expands it eagerly; that residual cache-less work is what
     [module.reexpansions] surfaces. *)
  if is_declared name then Metrics.count "module.reexpansions";
  with_compiling name @@ fun () ->
  Ct_store.with_fresh_store (fun () ->
      let requires = ref [ lang ] in
      (* save the enclosing compilation's recording state: a file require
         compiles its module {e during} the requiring module's expansion,
         so compilations nest *)
      let saved_requires = current_requires () in
      set_current_requires requires;
      let saved_name = current_module_name () in
      set_current_module_name name;
      Fun.protect
        ~finally:(fun () ->
          set_current_module_name saved_name;
          set_current_requires saved_requires)
      @@ fun () ->
      let sc = Scope.fresh () in
      let ctx = Stx.id ~scopes:(Scope.Set.singleton sc) "module-ctx" in
      (* the language's exports form the initial environment (§2.3) *)
      let lang_mod = find lang in
      visit lang_mod;
      bind_exports ~ctx lang_mod;
      let forms = List.map (Stx.of_datum ~scopes:(Scope.Set.singleton sc)) body in
      let mb = Stx.id ~scopes:(Stx.scopes ctx) "#%module-begin" in
      let wrapped = Stx.list (mb :: forms) in
      let core_forms =
        Trace.span "expand" ~detail:name @@ fun () ->
        Metrics.time "phase.expand" @@ fun () -> expand_module_top wrapped
      in
      (* walk the fully-expanded module and compile each form *)
      reset_internals name;
      let m =
        {
          mod_name = name;
          exports = [];
          body = [];
          ct_thunks = [];
          requires = [];
          instantiated = false;
          visited_stores = [ Ct_store.store_id () ];
          builtin = false;
        }
      in
      let compile_form (form : Stx.t) =
        match Stx.view form with
        | Stx.List (hd :: rest) when Stx.is_id hd -> (
            match core_kind hd with
            | Some "define-values" -> (
                match rest with
                | [ ids; rhs ] ->
                    let ids = Option.get (Stx.to_list ids) in
                    let globals =
                      List.map
                        (fun id ->
                          let b = resolve_exn id in
                          record_internal ~mod_name:name (Stx.sym_exn id) b;
                          Namespace.global_of b)
                        ids
                    in
                    let ast = Compile.compile_expr rhs in
                    (match (globals, ast) with
                    | [ g ], Ast.Lambda l when l.Ast.l_name = "" ->
                        l.Ast.l_name <- g.Ast.g_name
                    | _ -> ());
                    m.body <- CDef (globals, ast) :: m.body
                | _ -> err "define-values: bad form after expansion")
            | Some "define-syntaxes" -> ()
            | Some "begin-for-syntax" ->
                let thunks =
                  List.map
                    (fun e ->
                      let ast = Compile.compile_expr e in
                      fun () -> ignore (Interp.eval_top ast))
                    rest
                in
                m.ct_thunks <- m.ct_thunks @ thunks
            | Some "#%provide" ->
                List.iter (fun spec -> m.exports <- m.exports @ parse_provide_spec spec) rest
            | Some "#%require" -> ()
            | _ -> m.body <- CExpr (Compile.compile_expr form) :: m.body)
        | _ -> m.body <- CExpr (Compile.compile_expr form) :: m.body
      in
      (Trace.span "compile" ~detail:name @@ fun () ->
       Metrics.time "phase.compile" @@ fun () -> List.iter compile_form core_forms);
      m.body <- List.rev m.body;
      m.requires <- List.rev !requires;
      register m;
      !compiled_hook m ~lang ~core_forms;
      m)

(** Declare a module from full source text beginning with [#lang <name>]. *)
let declare ~name (source : string) : t =
  match Reader.split_lang_line source with
  | None -> err "module %s: source must start with #lang <language>" name
  | Some (lang, rest) -> compile_module ~name ~lang (Reader.read_all ~file:name rest)

(** Declare and run. Returns the module. *)
let declare_and_run ~name source =
  let m = declare ~name source in
  instantiate m;
  m

(* -- builtin (host-defined) modules -------------------------------------------------- *)

(** Construct a module whose bindings are provided by the host language:
    [values] become immutable globals, [macros] become transformers,
    [reexports] alias existing bindings (e.g. the core forms).  Returns the
    module and a [ctx_id] function for building identifiers that resolve in
    the module's definition context — native macros use it for their
    templates. *)
let declare_builtin ~name ?(values : (string * Value.value) list = [])
    ?(macros : (string * Denote.transformer) list = [])
    ?(reexports : (string * Binding.t) list = [])
    ?(ct_thunks : (unit -> unit) list = []) () : t * (string -> Stx.t) =
  let sc = Scope.fresh () in
  let scopes = Scope.Set.singleton sc in
  let ctx_id n = Stx.id ~scopes n in
  let exports = ref [] in
  List.iter
    (fun (n, v) ->
      let id = ctx_id n in
      let b = Binding.bind id in
      Denote.set b Denote.DVar;
      Namespace.define_immutable b v;
      exports := { ext_name = n; binding = b } :: !exports)
    values;
  List.iter
    (fun (n, t) ->
      let id = ctx_id n in
      let b = Binding.bind id in
      Denote.set b (Denote.DMacro t);
      exports := { ext_name = n; binding = b } :: !exports)
    macros;
  List.iter
    (fun (n, b) ->
      let id = ctx_id n in
      Binding.add id b;
      exports := { ext_name = n; binding = b } :: !exports)
    reexports;
  let m =
    {
      mod_name = name;
      exports = List.rev !exports;
      body = [];
      ct_thunks;
      requires = [];
      instantiated = true;
      visited_stores = [];
      builtin = true;
    }
  in
  register m;
  (m, ctx_id)

(** Add late exports to a builtin module (used to assemble layered
    languages). *)
let add_builtin_exports (m : t) ~(ctx_id : string -> Stx.t)
    ?(values : (string * Value.value) list = [])
    ?(macros : (string * Denote.transformer) list = [])
    ?(reexports : (string * Binding.t) list = []) () =
  List.iter
    (fun (n, v) ->
      let b = Binding.bind (ctx_id n) in
      Denote.set b Denote.DVar;
      Namespace.define_immutable b v;
      m.exports <- m.exports @ [ { ext_name = n; binding = b } ])
    values;
  List.iter
    (fun (n, t) ->
      let b = Binding.bind (ctx_id n) in
      Denote.set b (Denote.DMacro t);
      m.exports <- m.exports @ [ { ext_name = n; binding = b } ])
    macros;
  List.iter
    (fun (n, b) ->
      Binding.add (ctx_id n) b;
      m.exports <- m.exports @ [ { ext_name = n; binding = b } ])
    reexports

(* -- sessions (compile server / REPL isolation) --------------------------------- *)

(** A session: private registry/internals tables layered over the
    domain-local split, so two compile-server connections (or REPLs)
    declaring conflicting module names never observe each other's
    bindings.  [fresh_session] clones this domain's current tables —
    builtins and anything preloaded included — with the same record-clone
    discipline as the [Domain.spawn] split (mutable visit/instantiate
    marks stay per-session; immutable content is shared).
    [with_session] installs a session's tables for the extent of [f];
    mutations made inside persist in the session for its next request. *)
type session = {
  s_registry : (string, t) Hashtbl.t;
  s_internals : (string, (string, Binding.t) Hashtbl.t) Hashtbl.t;
}

let fresh_session () : session =
  let internals = internals () in
  let internals_copy = Hashtbl.create (max 32 (Hashtbl.length internals)) in
  Hashtbl.iter (fun k tbl -> Hashtbl.replace internals_copy k (Hashtbl.copy tbl)) internals;
  { s_registry = clone_registry (registry ()); s_internals = internals_copy }

let with_session (s : session) (f : unit -> 'a) : 'a =
  let saved_r = Domain.DLS.get registry_key and saved_i = Domain.DLS.get internals_key in
  Domain.DLS.set registry_key s.s_registry;
  Domain.DLS.set internals_key s.s_internals;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set registry_key saved_r;
      Domain.DLS.set internals_key saved_i)
    f

(** Forget [name] — and every alias of the same module record, so a stale
    alias can never resurrect a dropped module.  The resolver's
    incremental invalidation uses this to evict the dirty cone of an
    edit. *)
let forget name =
  let registry = registry () in
  (match Hashtbl.find_opt registry name with
  | None -> ()
  | Some m ->
      Hashtbl.iter
        (fun n m' -> if m' == m then Hashtbl.remove registry n)
        (Hashtbl.copy registry));
  Hashtbl.remove (internals ()) name

(** Clear the instantiate marks of [m]'s non-builtin require closure, so
    a long-lived session can re-run a program: the next [instantiate]
    re-evaluates every module body, exactly as a fresh process would
    (compile-time state is not replayed again; globals are redefined). *)
let rec reset_instantiated (m : t) =
  if (not m.builtin) && m.instantiated then begin
    m.instantiated <- false;
    List.iter
      (fun r -> match find_opt r with Some d -> reset_instantiated d | None -> ())
      m.requires
  end

(** Testing hook: forget declared modules (builtin modules must be
    re-registered by their libraries). *)
let reset_user_modules_for_tests () =
  let registry = registry () in
  let internals = internals () in
  Hashtbl.iter
    (fun name m ->
      if not m.builtin then begin
        Hashtbl.remove registry name;
        Hashtbl.remove internals name
      end)
    (Hashtbl.copy registry)
