(** The S-expression reader: text -> located datums.

    Supports the notation used throughout the paper: lists, improper lists,
    vectors, booleans, characters, strings, fixnums (decimal / #x / #b / #o),
    flonums, float-complex literals such as [2.0+2.0i], [+inf.0] / [+nan.0],
    line comments [;], nestable block comments [#| |#], datum comments [#;],
    and the quotation shorthands ['] [`] [,] [,@] [#'] [#`] [#,] [#,@].

    Symbol tokens are interned through {!Liblang_symbol.Symbol} at creation:
    equal names share one canonical string, and the downstream syntax layer
    ({!Liblang_stx.Stx}) re-interns them into O(1) symbol ids for free. *)

module Symbol = Liblang_symbol.Symbol

exception Error of string * Srcloc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make_state ?(file = "<string>") src = { src; file; pos = 0; line = 1; col = 0 }

let loc_here st ~span =
  Srcloc.make ~file:st.file ~line:st.line ~col:st.col ~pos:st.pos ~span

let err st msg = raise (Error (msg, loc_here st ~span:1))

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let peek2 st = if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 0
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let is_delimiter c =
  match c with
  | '(' | ')' | '[' | ']' | '"' | ';' | '\000' -> true
  | c -> c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_symbol_char c = not (is_delimiter c)

(* -- whitespace and comments ------------------------------------------- *)

let rec skip_atmosphere st =
  if eof st then ()
  else
    match peek st with
    | ' ' | '\t' | '\n' | '\r' ->
        advance st;
        skip_atmosphere st
    | ';' ->
        while (not (eof st)) && peek st <> '\n' do
          advance st
        done;
        skip_atmosphere st
    | '#' when peek2 st = '|' ->
        advance st;
        advance st;
        skip_block_comment st 1;
        skip_atmosphere st
    | '#' when peek2 st = ';' ->
        advance st;
        advance st;
        skip_atmosphere st;
        ignore (read_datum st);
        skip_atmosphere st
    | _ -> ()

and skip_block_comment st depth =
  if depth = 0 then ()
  else if eof st then err st "unterminated block comment"
  else if peek st = '|' && peek2 st = '#' then begin
    advance st;
    advance st;
    skip_block_comment st (depth - 1)
  end
  else if peek st = '#' && peek2 st = '|' then begin
    advance st;
    advance st;
    skip_block_comment st (depth + 1)
  end
  else begin
    advance st;
    skip_block_comment st depth
  end

(* -- tokens ------------------------------------------------------------- *)

and read_token_text st =
  let buf = Buffer.create 16 in
  while (not (eof st)) && is_symbol_char (peek st) do
    Buffer.add_char buf (peek st);
    advance st
  done;
  Buffer.contents buf

and read_string_lit st =
  let start_line = st.line and start_col = st.col and start_pos = st.pos in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then err st "unterminated string"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          (match peek st with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | '0' -> Buffer.add_char buf '\000'
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | c -> err st (Printf.sprintf "unknown string escape \\%c" c));
          advance st;
          go ()
      | c ->
          Buffer.add_char buf c;
          advance st;
          go ()
  in
  go ();
  let loc =
    Srcloc.make ~file:st.file ~line:start_line ~col:start_col ~pos:start_pos
      ~span:(st.pos - start_pos)
  in
  { Datum.d = Datum.Atom (Datum.Str (Buffer.contents buf)); loc }

and read_char_lit st loc0 =
  (* called after consuming "#\\" *)
  if eof st then err st "bad character literal"
  else begin
    let first = peek st in
    advance st;
    let rest = if is_symbol_char (peek st) then read_token_text st else "" in
    let named = String.make 1 first ^ rest in
    let c =
      match String.lowercase_ascii named with
      | "space" -> ' '
      | "newline" | "linefeed" -> '\n'
      | "tab" -> '\t'
      | "return" -> '\r'
      | "nul" | "null" -> '\000'
      | _ when String.length named = 1 -> first
      | _ -> err st (Printf.sprintf "unknown character literal #\\%s" named)
    in
    { Datum.d = Datum.Atom (Datum.Char c); loc = loc0 }
  end

(* -- numbers ------------------------------------------------------------ *)

and parse_unsigned_float s = float_of_string_opt s

(* Parse a possibly signed real written as text: "3", "3.5", "1e3", "+inf.0",
   "-nan.0", ".5". Returns [None] if [s] is not real-number syntax. *)
and parse_real s : [ `Int of int | `Float of float ] option =
  match s with
  | "+inf.0" -> Some (`Float Float.infinity)
  | "-inf.0" -> Some (`Float Float.neg_infinity)
  | "+nan.0" | "-nan.0" -> Some (`Float Float.nan)
  | _ -> (
      match int_of_string_opt s with
      | Some n -> Some (`Int n)
      | None -> (
          (* Reject things float_of_string accepts but Scheme doesn't, like
             "0x1" or "infinity"; require digits-and-[.eE+-] only. *)
          let ok =
            String.length s > 0
            && String.for_all
                 (fun c ->
                   (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-')
                 s
            && String.exists (fun c -> c >= '0' && c <= '9') s
          in
          if not ok then None
          else match parse_unsigned_float s with Some f -> Some (`Float f) | None -> None))

(* Recognize "<real><signed-real>i" float-complex syntax, e.g. 2.0+3.5i,
   -1e2-0.5i, +2.0i. *)
and parse_number s : Datum.atom option =
  let n = String.length s in
  if n = 0 then None
  else if s.[n - 1] = 'i' || s.[n - 1] = 'I' then begin
    let body = String.sub s 0 (n - 1) in
    (* find the sign that splits real and imaginary parts: the last '+' or '-'
       that is not part of an exponent and not at position 0 *)
    let split = ref (-1) in
    String.iteri
      (fun i c ->
        if (c = '+' || c = '-') && i > 0 && s.[i - 1] <> 'e' && s.[i - 1] <> 'E' then split := i)
      body;
    let to_float = function `Int n -> float_of_int n | `Float f -> f in
    if !split = -1 then
      (* pure imaginary: "+2.0i", "-i"-style not supported without digits *)
      match parse_real body with
      | Some r when body.[0] = '+' || body.[0] = '-' -> Some (Datum.Cpx (0., to_float r))
      | _ -> None
    else
      let re_s = String.sub body 0 !split in
      let im_s = String.sub body !split (String.length body - !split) in
      let im_s = if im_s = "+" then "1" else if im_s = "-" then "-1" else im_s in
      match (parse_real re_s, parse_real im_s) with
      | Some re, Some im -> Some (Datum.Cpx (to_float re, to_float im))
      | _ -> None
  end
  else
    match parse_real s with
    | Some (`Int n) -> Some (Datum.Int n)
    | Some (`Float f) -> Some (Datum.Float f)
    | None -> None

and read_radix_int st loc0 radix =
  let text = read_token_text st in
  let prefix = match radix with 16 -> "0x" | 8 -> "0o" | 2 -> "0b" | _ -> "" in
  let sign, digits =
    if String.length text > 0 && (text.[0] = '-' || text.[0] = '+') then
      ((if text.[0] = '-' then -1 else 1), String.sub text 1 (String.length text - 1))
    else (1, text)
  in
  match int_of_string_opt (prefix ^ digits) with
  | Some n -> { Datum.d = Datum.Atom (Datum.Int (sign * n)); loc = loc0 }
  | None -> err st (Printf.sprintf "bad radix-%d number: %s" radix text)

(* -- datums -------------------------------------------------------------- *)

and read_list st close =
  let items = ref [] in
  let rec go () =
    skip_atmosphere st;
    if eof st then err st "unterminated list"
    else if peek st = close then begin
      advance st;
      Datum.List (List.rev !items)
    end
    else if peek st = ')' || peek st = ']' then err st "mismatched close paren"
    else if
      peek st = '.'
      && (st.pos + 1 >= String.length st.src || is_delimiter st.src.[st.pos + 1])
    then begin
      advance st;
      skip_atmosphere st;
      let tl = read_datum_exn st in
      skip_atmosphere st;
      if eof st || peek st <> close then err st "expected close paren after dotted tail"
      else begin
        advance st;
        match !items with
        | [] -> err st "dotted pair with no head"
        | items -> (
            (* (a b . (c d)) reads as (a b c d) *)
            match tl.Datum.d with
            | Datum.List more -> Datum.List (List.rev_append items more)
            | Datum.DotList (more, tl') -> Datum.DotList (List.rev_append items more, tl')
            | _ -> Datum.DotList (List.rev items, tl))
      end
    end
    else begin
      items := read_datum_exn st :: !items;
      go ()
    end
  in
  go ()

and wrap_quote st name =
  skip_atmosphere st;
  let x = read_datum_exn st in
  let loc = x.Datum.loc in
  { Datum.d = Datum.List [ { Datum.d = Datum.Atom (Datum.Sym (Symbol.canon name)); loc }; x ]; loc }

and read_datum_exn st =
  match read_datum st with
  | Some d -> d
  | None -> err st "unexpected end of input"

and read_datum st : Datum.annot option =
  skip_atmosphere st;
  if eof st then None
  else begin
    let start_line = st.line and start_col = st.col and start_pos = st.pos in
    let mkloc () =
      Srcloc.make ~file:st.file ~line:start_line ~col:start_col ~pos:start_pos
        ~span:(st.pos - start_pos)
    in
    match peek st with
    | '(' | '[' ->
        let close = if peek st = '(' then ')' else ']' in
        advance st;
        let d = read_list st close in
        Some { Datum.d; loc = mkloc () }
    | ')' | ']' -> err st "unexpected close paren"
    | '"' -> Some (read_string_lit st)
    | '\'' ->
        advance st;
        Some (wrap_quote st "quote")
    | '`' ->
        advance st;
        Some (wrap_quote st "quasiquote")
    | ',' ->
        advance st;
        if peek st = '@' then begin
          advance st;
          Some (wrap_quote st "unquote-splicing")
        end
        else Some (wrap_quote st "unquote")
    | '#' -> (
        advance st;
        match peek st with
        | '(' ->
            advance st;
            let d = read_list st ')' in
            let items =
              match d with
              | Datum.List xs -> xs
              | _ -> err st "dotted pair not allowed in vector"
            in
            Some { Datum.d = Datum.Vec items; loc = mkloc () }
        | 't' | 'f' ->
            let text = read_token_text st in
            let b =
              match text with
              | "t" | "true" -> true
              | "f" | "false" -> false
              | _ -> err st ("bad boolean literal #" ^ text)
            in
            Some { Datum.d = Datum.Atom (Datum.Bool b); loc = mkloc () }
        | '\\' ->
            advance st;
            Some (read_char_lit st (mkloc ()))
        | 'x' | 'X' ->
            advance st;
            Some (read_radix_int st (mkloc ()) 16)
        | 'b' | 'B' ->
            advance st;
            Some (read_radix_int st (mkloc ()) 2)
        | 'o' | 'O' ->
            advance st;
            Some (read_radix_int st (mkloc ()) 8)
        | 'd' | 'D' ->
            advance st;
            Some (read_radix_int st (mkloc ()) 10)
        | '\'' ->
            advance st;
            Some (wrap_quote st "syntax")
        | '`' ->
            advance st;
            Some (wrap_quote st "quasisyntax")
        | ',' ->
            advance st;
            if peek st = '@' then begin
              advance st;
              Some (wrap_quote st "unsyntax-splicing")
            end
            else Some (wrap_quote st "unsyntax")
        | '%' ->
            (* #%app, #%plain-lambda, ... are ordinary symbols *)
            let text = read_token_text st in
            Some { Datum.d = Datum.Atom (Datum.Sym (Symbol.canon ("#" ^ text))); loc = mkloc () }
        | c -> err st (Printf.sprintf "unknown reader syntax #%c" c))
    | _ -> (
        let text = read_token_text st in
        if text = "" then err st "unreadable input"
        else
          match parse_number text with
          | Some a -> Some { Datum.d = Datum.Atom a; loc = mkloc () }
          | None -> Some { Datum.d = Datum.Atom (Datum.Sym (Symbol.canon text)); loc = mkloc () })
  end

(* -- entry points -------------------------------------------------------- *)

(** Read a single datum from [src]; raises {!Error} on malformed input,
    returns [None] on (whitespace-only) empty input. *)
let read_one ?file src =
  let st = make_state ?file src in
  read_datum st

module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace

(** Read all datums from [src]. *)
let read_all ?file src =
  Trace.span "read" ?detail:file @@ fun () ->
  Metrics.time "phase.read" @@ fun () ->
  Metrics.count "reader.reads";
  let st = make_state ?file src in
  let rec go acc = match read_datum st with None -> List.rev acc | Some d -> go (d :: acc) in
  let ds = go [] in
  if Metrics.installed () then Metrics.countn "reader.datums" (List.length ds);
  ds

(** Read all datums from [src] with {e datum-level resynchronization}: on a
    parse error, record it (message × location), skip forward to the next
    plausible top-level datum start, and keep reading — so one pass over a
    file surfaces {e all} of its parse errors, not just the first.  Returns
    the datums that did parse and the errors in source order.  Progress is
    guaranteed (each recovery consumes at least one character) and the
    error list is capped at [max_errors]. *)
let read_all_recovering ?file ?(max_errors = 25) src =
  Trace.span "read" ?detail:file @@ fun () ->
  Metrics.time "phase.read" @@ fun () ->
  Metrics.count "reader.reads";
  let st = make_state ?file src in
  let datums = ref [] and errors = ref [] and n_errors = ref 0 in
  (* Resynchronize: consume at least one character, then skip to the next
     whitespace or open-paren boundary, where a fresh datum plausibly
     starts.  An erroneous close paren at that point errors again, but each
     round still advances, so the loop terminates. *)
  let resync () =
    if not (eof st) then advance st;
    let rec go () =
      if eof st then ()
      else
        match peek st with
        | ' ' | '\t' | '\n' | '\r' | '(' | '[' -> ()
        | _ ->
            advance st;
            go ()
    in
    go ()
  in
  let rec go () =
    if !n_errors >= max_errors then ()
    else
      match read_datum st with
      | Some d ->
          datums := d :: !datums;
          go ()
      | None -> ()
      | exception Error (msg, loc) ->
          errors := (msg, loc) :: !errors;
          incr n_errors;
          resync ();
          go ()
  in
  go ();
  if Metrics.installed () then begin
    Metrics.countn "reader.datums" (List.length !datums);
    if !errors <> [] then Metrics.countn "reader.parse_errors" (List.length !errors)
  end;
  (List.rev !datums, List.rev !errors)

(** If [src] starts with a [#lang <name>] line, return [Some (name, rest)]
    where [rest] is the remaining source (with line numbering preserved by
    keeping a newline placeholder); otherwise [None]. *)
let split_lang_line src =
  let n = String.length src in
  let i = ref 0 in
  while !i < n && (src.[!i] = ' ' || src.[!i] = '\t' || src.[!i] = '\n' || src.[!i] = '\r') do
    incr i
  done;
  let start = !i in
  if start + 5 <= n && String.sub src start 5 = "#lang" then begin
    let nl = match String.index_from_opt src start '\n' with Some j -> j | None -> n in
    let name = String.trim (String.sub src (start + 5) (nl - start - 5)) in
    let rest = if nl >= n then "" else String.sub src nl (n - nl) in
    Some (name, rest)
  end
  else None
