(** The S-expression reader: text -> located datums.

    Supports the notation used throughout the paper: lists, improper lists,
    vectors, booleans, characters, strings, fixnums (decimal / #x / #b /
    #o), flonums, float-complex literals such as [2.0+2.0i],
    [+inf.0] / [+nan.0], line comments [;], nestable block comments
    [#| |#], datum comments [#;], and the quotation shorthands
    ['] [`] [,] [,@] [#'] [#`] [#,] [#,@]. *)

exception Error of string * Srcloc.t

(** Recognize number syntax in a token ([None] = not a number). Exposed for
    the [string->number] primitive. *)
val parse_number : string -> Datum.atom option

(** Read a single datum; [None] on (whitespace-only) empty input. *)
val read_one : ?file:string -> string -> Datum.annot option

(** Read all datums. *)
val read_all : ?file:string -> string -> Datum.annot list

(** Read all datums with datum-level error recovery: parse errors are
    collected (in source order, capped at [max_errors], default 25) and
    reading resynchronizes at the next plausible datum start, so one pass
    reports every parse error in the file.  Never raises {!Error}. *)
val read_all_recovering :
  ?file:string -> ?max_errors:int -> string -> Datum.annot list * (string * Srcloc.t) list

(** If the source starts with a [#lang <name>] line, return
    [Some (name, rest-of-source)]. *)
val split_lang_line : string -> (string * string) option
