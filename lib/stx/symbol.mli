(** Interned symbols: string ↔ dense int id, O(1) equality and hashing.

    Used by the reader (canonical strings for symbol tokens), by
    {!Liblang_stx.Stx} (identifier payloads), and by
    {!Liblang_stx.Binding} (binding-table and resolver-cache keys).  Ids
    are process-local; serialized formats keep plain strings. *)

type t = int

val intern : string -> t
val name : t -> string

(** [canon s] interns [s] and returns the canonical shared string. *)
val canon : string -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string

(** Number of distinct symbols interned so far. *)
val interned_count : unit -> int
