(** The global binding table of the sets-of-scopes expander.

    A binding associates (name, scope set) with a binding record carrying a
    globally unique id.  The paper relies on exactly this property (§5):
    "identifiers in Racket are given globally fresh names that are stable
    across modules during the expansion process", so an identifier-keyed
    table (here: a uid-keyed table) gives cross-module type environments for
    free.

    Performance shape (this is the expander's innermost loop — every
    identifier the expander, the typechecker, or [free-identifier=?] looks
    at goes through {!resolve}):

    - the table is keyed by {e interned symbol id} (int hashing, no string
      traversal);
    - resolution is {e memoized} per (symbol id, scope-set representative
      id) — scope sets are hash-consed, so the pair is two ints.  The cache
      for a symbol is invalidated whenever a binding for that symbol is
      added;
    - the subset scan takes a single pass, and when exactly one candidate
      matches (the overwhelmingly common case) the ambiguity total-order
      check is skipped entirely.

    Domain story: the table, the resolver cache and the hit/miss counters
    are {e domain-local} ([Domain.DLS]), seeded at [Domain.spawn] with a
    shallow copy of the parent's table.  This is deliberate — [resolve] is
    far too hot to put behind a shared mutex, and the separate-compilation
    model (paper §5) already makes worker domains pure artifact producers
    whose binding-table growth never needs to be seen by other domains:
    artifacts serialize names and datums, never uids or scope ids, and the
    main domain re-acquires modules by replaying artifacts into its own
    tables.  Binding {e uids} stay globally fresh (an atomic counter) so a
    record that does travel — e.g. a builtin binding present in every
    domain's seeded copy — means the same thing everywhere. *)

module Symbol = Liblang_symbol.Symbol

exception Ambiguous of Stx.t

type t = { uid : int; name : string }

let uid_counter = Atomic.make 0

let fresh name = { uid = 1 + Atomic.fetch_and_add uid_counter 1; name }

let equal a b = a.uid = b.uid
let compare a b = Int.compare a.uid b.uid
let to_string b = Printf.sprintf "%s.%d" b.name b.uid

module STbl = Hashtbl.Make (struct
  type t = Symbol.t

  let equal = Symbol.equal
  let hash = Symbol.hash
end)

(* -- the domain-local state -------------------------------------------------

   [table]: symbol id -> list of (scope set, binding).

   [cache]: symbol id -> (scope-set id -> resolution).  Both keys are ints;
   the scope-set id is stable because sets are hash-consed.  [add] drops the
   symbol's entire sub-table, which is exactly the set of results the new
   binding can change.  Ambiguity (a raise) is not cached — it is the rare
   error path.

   The hit/miss counters are plain mutable ints so the hot path never hashes
   a metric name; the pipeline reports deltas as ["expand.resolve_hits"] /
   ["expand.resolve_misses"]. *)

type state = {
  table : (Scope.Set.t * t) list STbl.t;
  mutable cache : (int, t option) Hashtbl.t STbl.t;
  mutable hits : int;
  mutable misses : int;
}

(* Entry lists are immutable (add replaces the whole list), so a shallow
   table copy is a faithful snapshot — the same property the bench
   harness's snapshot/restore relies on. *)
let state_key : state Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(fun (parent : state) ->
      { table = STbl.copy parent.table; cache = STbl.create 1024; hits = 0; misses = 0 })
    (fun () ->
      { table = STbl.create 1024; cache = STbl.create 1024; hits = 0; misses = 0 })

let[@inline] state () = Domain.DLS.get state_key

let resolve_hits () = (state ()).hits
let resolve_misses () = (state ()).misses

(** [add id b] records that [id]'s name, with [id]'s scope set, refers to
    [b].  Adding twice with the same name and scope set replaces (supports
    redefinition at a REPL-like top level). *)
let add (id : Stx.t) (b : t) =
  let st = state () in
  let sym = Stx.symbol_exn id in
  let scopes = Stx.scopes id in
  let existing = Option.value (STbl.find_opt st.table sym) ~default:[] in
  let existing = List.filter (fun (ss, _) -> not (Scope.Set.equal ss scopes)) existing in
  STbl.replace st.table sym ((scopes, b) :: existing);
  STbl.remove st.cache sym

(** Bind [id] to a fresh binding and return it. *)
let bind (id : Stx.t) : t =
  let b = fresh (Stx.sym_exn id) in
  add id b;
  b

(* The uncached resolution: one pass to find the candidate with the largest
   scope set and count the matches; the inclusion total-order check runs
   only when more than one candidate matched. *)
let resolve_scan (entries : (Scope.Set.t * t) list) (scopes : Scope.Set.t) (id : Stx.t) :
    t option =
  let best = ref None in
  let matched = ref 0 in
  List.iter
    (fun (ss, b) ->
      if Scope.Set.subset ss scopes then begin
        incr matched;
        match !best with
        | None -> best := Some (ss, b)
        | Some (ss', _) -> if Scope.Set.cardinal ss > Scope.Set.cardinal ss' then best := Some (ss, b)
      end)
    entries;
  match !best with
  | None -> None
  | Some (best_ss, b) ->
      if
        !matched = 1
        || List.for_all
             (fun (ss, _) -> (not (Scope.Set.subset ss scopes)) || Scope.Set.subset ss best_ss)
             entries
      then Some b
      else raise (Ambiguous id)

(** Resolve a reference to a binding: among all bindings for the name whose
    scope set is a subset of the reference's, take the one with the largest
    scope set.  Raises {!Ambiguous} when the candidates aren't totally
    ordered by inclusion (the classic hygiene error). *)
let resolve (id : Stx.t) : t option =
  let st = state () in
  let sym = Stx.symbol_exn id in
  let scopes = Stx.scopes id in
  match STbl.find_opt st.table sym with
  | None | Some [] -> None
  | Some ((_ :: _ :: _) as entries) -> (
      (* Two or more candidate binders: the scan (and its ambiguity check)
         is worth caching.  Macro-introduced references carry a fresh
         introduction scope on every transformer application, so their set
         ids never recur — but for multi-binder symbols the scan repeats
         over the same entries and the cache pays for itself. *)
      let per_sym =
        match STbl.find_opt st.cache sym with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 8 in
            STbl.add st.cache sym tbl;
            tbl
      in
      let key = Scope.Set.id scopes in
      match Hashtbl.find_opt per_sym key with
      | Some r ->
          st.hits <- st.hits + 1;
          r
      | None ->
          st.misses <- st.misses + 1;
          let r = resolve_scan entries scopes id in
          Hashtbl.add per_sym key r;
          r)
  | Some [ (ss, b) ] ->
      (* Exactly one binder: a single subset test is cheaper than a cache
         probe, let alone an insert.  Not counted as hit or miss — the
         cache is not involved. *)
      if Scope.Set.subset ss scopes then Some b else None

(** Racket's [free-identifier=?]: do two identifiers refer to the same
    binding?  Unbound identifiers compare by name. *)
let free_identifier_eq (a : Stx.t) (b : Stx.t) =
  match (resolve a, resolve b) with
  | Some ba, Some bb -> equal ba bb
  | None, None -> Symbol.equal (Stx.symbol_exn a) (Stx.symbol_exn b)
  | _ -> false

(** Testing hook: forget all bindings.  Only used by the test suite to get
    reproducible resolution scenarios. *)
let reset_for_tests () =
  let st = state () in
  STbl.reset st.table;
  STbl.reset st.cache

(* -- measurement isolation --------------------------------------------------

   The bench harness expands throwaway modules (fresh names, never
   instantiated) purely to time expansion.  Each such expansion appends
   binders to the per-name entry lists, and every later resolution of a
   shared name (loop, i, n, ...) scans those lists — so timing expansion
   would slow down everything measured after it.  Snapshot/restore brackets
   the throwaway work.  Entry lists are immutable (add replaces the list),
   so a shallow table copy is a faithful snapshot.  Both operate on the
   calling domain's state. *)

type snapshot = (Scope.Set.t * t) list STbl.t

let snapshot () : snapshot = STbl.copy (state ()).table

let restore (s : snapshot) =
  let st = state () in
  STbl.reset st.table;
  STbl.iter (fun k v -> STbl.replace st.table k v) s;
  STbl.reset st.cache
