(** Interned symbols: the expansion front end's identifier currency.

    Every identifier name is interned once into a global table and
    represented as a dense integer id from then on, so symbol equality and
    hashing are O(1) int operations instead of string traversals.  The
    reader interns at token creation (sharing one canonical string per
    distinct name), {!Liblang_stx.Stx} stores ids in syntax objects, and
    {!Liblang_stx.Binding} keys its binding table and resolver cache by id.

    Ids are process-local and never serialized: compiled artifacts
    (lib/compiled) flatten syntax back to datums, whose symbols are plain
    strings, so on-disk formats are stable across sessions while in-memory
    comparisons stay O(1).

    The table only grows (symbols are never forgotten); that is the usual
    compiler trade-off — the set of distinct identifier names in a workload
    is small and bounded by the source text. *)

type t = int

(* string -> id *)
let table : (string, int) Hashtbl.t = Hashtbl.create 4096

(* id -> canonical string, growable *)
let names : string array ref = ref (Array.make 1024 "")
let count = ref 0

let name (i : t) : string =
  if i < 0 || i >= !count then invalid_arg "Symbol.name: not an interned symbol id";
  !names.(i)

let intern (s : string) : t =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
      let i = !count in
      if i = Array.length !names then begin
        let bigger = Array.make (2 * i) "" in
        Array.blit !names 0 bigger 0 i;
        names := bigger
      end;
      !names.(i) <- s;
      Hashtbl.add table s i;
      incr count;
      i

(** Intern [s] and return its canonical string, so equal names share one
    allocation (the reader calls this on every symbol token). *)
let canon (s : string) : string = name (intern s)

let equal : t -> t -> bool = Int.equal
let compare : t -> t -> int = Int.compare
let hash (i : t) : int = i
let to_string = name

(** Number of distinct symbols interned so far (diagnostics/metrics). *)
let interned_count () = !count
