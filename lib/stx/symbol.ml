(** Interned symbols: the expansion front end's identifier currency.

    Every identifier name is interned once into a global table and
    represented as a dense integer id from then on, so symbol equality and
    hashing are O(1) int operations instead of string traversals.  The
    reader interns at token creation (sharing one canonical string per
    distinct name), {!Liblang_stx.Stx} stores ids in syntax objects, and
    {!Liblang_stx.Binding} keys its binding table and resolver cache by id.

    Ids are process-local and never serialized: compiled artifacts
    (lib/compiled) flatten syntax back to datums, whose symbols are plain
    strings, so on-disk formats are stable across sessions while in-memory
    comparisons stay O(1).

    The table only grows (symbols are never forgotten); that is the usual
    compiler trade-off — the set of distinct identifier names in a workload
    is small and bounded by the source text.

    Domain safety: interning is shared across domains (one id per name,
    process-wide), guarded by a mutex gated on {!Liblang_parallel.Parallel}
    — a plain call single-domain, a lock only while a domain pool runs.
    {!name} is lock-free in all modes: [count] is an atomic published with
    release semantics {e after} the slot (and, on growth, the fresh array)
    is in place, so any id a domain can legitimately hold reads its string
    without synchronization. *)

module Parallel = Liblang_parallel.Parallel

type t = int

(* string -> id; reads and writes both go under [mu] while a pool is
   active (OCaml's Hashtbl is not safe against concurrent resize). *)
let table : (string, int) Hashtbl.t = Hashtbl.create 4096
let mu = Mutex.create ()

(* id -> canonical string, growable.  Publication order (enforced by the
   atomics' SC semantics): grown array installed, slot filled, then count
   bumped — so a reader that observes [i < count] observes slot [i]. *)
let names : string array Atomic.t = Atomic.make (Array.make 1024 "")
let count = Atomic.make 0

let name (i : t) : string =
  if i < 0 || i >= Atomic.get count then
    invalid_arg "Symbol.name: not an interned symbol id";
  (Atomic.get names).(i)

let intern_locked (s : string) : t =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
      let i = Atomic.get count in
      let arr = Atomic.get names in
      let arr =
        if i = Array.length arr then begin
          let bigger = Array.make (2 * i) "" in
          Array.blit arr 0 bigger 0 i;
          Atomic.set names bigger;
          bigger
        end
        else arr
      in
      arr.(i) <- s;
      Hashtbl.add table s i;
      Atomic.set count (i + 1);
      i

let intern (s : string) : t = Parallel.with_gate mu (fun () -> intern_locked s)

(** Intern [s] and return its canonical string, so equal names share one
    allocation (the reader calls this on every symbol token). *)
let canon (s : string) : string = name (intern s)

let equal : t -> t -> bool = Int.equal
let compare : t -> t -> int = Int.compare
let hash (i : t) : int = i
let to_string = name

(** Number of distinct symbols interned so far (diagnostics/metrics). *)
let interned_count () = Atomic.get count
