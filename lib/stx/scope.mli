(** Scopes for the sets-of-scopes hygiene model (Flatt 2016).

    A scope is an opaque token; binders and references carry sets of them,
    and a reference resolves to the binder whose scope set is the largest
    subset of the reference's.

    Scope sets are {e hash-consed}: each distinct set has one live
    representative with a unique {!Set.id}, so {!Set.equal} is pointer
    comparison, {!Set.subset} is a sorted-array merge with O(1) early
    exits, and (symbol, set-id) pairs key {!Binding}'s resolver cache. *)

type t = int

val fresh : unit -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string

module Set : sig
  type elt = t
  type t

  val empty : t
  val singleton : elt -> t
  val of_list : elt list -> t

  val add : elt -> t -> t
  val remove : elt -> t -> t

  (** Symmetric difference with a single scope: used when applying a
      transformer's introduction scope to its result. *)
  val flip : elt -> t -> t

  val mem : elt -> t -> bool
  val subset : t -> t -> bool
  val union : t -> t -> t

  (** Pointer equality — sets are hash-consed. *)
  val equal : t -> t -> bool

  (** Total order on the unique representative ids (not structural). *)
  val compare : t -> t -> int

  (** The unique id of this set's representative; stable for the process
      lifetime, usable as a memoization key. *)
  val id : t -> int

  (** Cached structural hash. *)
  val hash : t -> int

  val cardinal : t -> int
  val is_empty : t -> bool
  val elements : t -> elt list
  val iter : (elt -> unit) -> t -> unit
  val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
  val to_string : t -> string

  (** Number of distinct scope sets interned so far. *)
  val interned_count : unit -> int
end
