(** The domain-parallelism gate: process-wide switches and gated locks for
    the multicore build driver ([Liblang_compiled.Build]).

    The front end's shared read-mostly tables — the {!Liblang_symbol.Symbol}
    intern table and the {!Liblang_stx.Scope} hash-cons table — must stay
    {e globally} shared across domains (their whole point is one canonical
    representative per name / per scope set, so pointer equality works), which
    means they need mutual exclusion while several domains run.  But the
    single-domain case is the common one, and those tables sit on the
    expander's hot paths, so the locks are {e gated}: {!with_gate} is a plain
    call when no domain pool is active (one uncontended [Atomic.get]), and a
    real mutex acquisition only while one is.

    Protocol: the build driver calls {!with_active} around the whole
    spawn…join window.  [Domain.spawn] happens-after {!enter} and
    [Domain.join] happens-before {!leave}, so every moment at which two
    domains can actually race is a moment at which {!active} is true in all
    of them — the gate cannot be seen "off" by one racing domain and "on" by
    another.  Long-lived pools follow the same bracket at a larger scale:
    the compile server ([Liblang_server.Server]) holds the gate open for
    its worker pool's whole lifetime — {!enter} before the first worker
    domain spawns, {!leave} after the last one joins at shutdown — so
    every request served concurrently runs with the gated locks live.

    The module also hosts the pool-level counters ({!tasks}, {!lock_waits})
    that the bench harness reports as [par.tasks] / [par.lock_waits]. *)

(* Number of nested/concurrent activations; > 0 while any domain pool runs. *)
let activations = Atomic.make 0

let[@inline] active () = Atomic.get activations > 0
let enter () = Atomic.incr activations
let leave () = Atomic.decr activations

(** Run [f] with the parallelism gate held open (exception-safe, nestable). *)
let with_active (f : unit -> 'a) : 'a =
  enter ();
  Fun.protect ~finally:leave f

(** Per-worker-domain GC tuning, shared by every domain pool (the build
    driver's task workers, the compile server's request workers).  OCaml 5
    minor collections are stop-the-world across every running domain, so N
    allocation-heavy expanders on default-size nurseries spend most of
    their time in global sync pauses (measured ~4x per-module CPU
    inflation at -j4).  A larger per-worker minor heap amortizes the sync
    points.  [Gc.set] is per-domain and does not propagate through
    [Domain.spawn], so each worker calls this itself, first thing. *)
let tune_worker_gc () : unit =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < 4 * 1024 * 1024 then
    Gc.set { g with Gc.minor_heap_size = 4 * 1024 * 1024 }

(* -- pool counters ----------------------------------------------------------

   Plain atomics (never behind a collector): the driver reads deltas around a
   build and reports them as the [par.*] metrics. *)

(** Tasks executed by domain pools (one per scheduled module compilation or
    bench cell). *)
let tasks = Atomic.make 0

(** Contended lock acquisitions under {!with_lock} — a direct measure of how
    much the shared front-end tables serialize the pool. *)
let lock_waits = Atomic.make 0

(** Task attempts re-run after a transient failure (injected fault,
    [Sys_error], [Unix_error]) — the build driver's retry loop; reported
    as [par.retries]. *)
let retries = Atomic.make 0

(** Tasks killed by their wall-clock deadline — reported as
    [par.timeouts]. *)
let timeouts = Atomic.make 0

(** Acquire [m] for the extent of [f], counting contention in
    {!lock_waits}. *)
let with_lock (m : Mutex.t) (f : unit -> 'a) : 'a =
  if not (Mutex.try_lock m) then begin
    Atomic.incr lock_waits;
    Mutex.lock m
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(** [with_gate m f]: run [f] under [m] while a pool is {!active}, plain
    otherwise.  Safe because activation brackets spawn…join (see above). *)
let[@inline] with_gate (m : Mutex.t) (f : unit -> 'a) : 'a =
  if active () then with_lock m f else f ()
