(** Scopes for the sets-of-scopes hygiene model (Flatt 2016).  A scope is an
    opaque token; binders and references carry sets of them, and a reference
    resolves to the binder whose scope set is the largest subset of the
    reference's.

    Scope {e sets} are hash-consed: every distinct set of scopes has exactly
    one live representative, carrying a unique id, a cached hash, and a
    sorted-array backing.  Consequences, all load-bearing for expansion
    performance:

    - set equality is pointer equality (one instruction);
    - [subset] is a linear sorted-array merge with an O(1) size-based early
      exit (and an O(1) pointer-equality fast path);
    - the unique [id] doubles as a memoization key — {!Binding}'s resolver
      cache is keyed by (symbol id, scope-set id).

    The cons table only grows; the number of distinct scope sets in an
    expansion is bounded by the binding structure of the program, which is
    the usual compiler trade-off.

    Domain safety: scope tokens and set ids come from atomics, while the
    cons table and the single-op memo are {e domain-local} ([Domain.DLS])
    and therefore lock-free.  A worker domain starts with a copy of its
    parent's cons table, so canonicity is per-domain: pointer-equality
    [equal] holds within a domain (which is where all hot comparisons
    happen), sets inherited from the parent keep their representatives,
    and the content-based [subset]/[union] fallbacks cover the cold
    cross-domain cases.  Set ids stay process-unique (one atomic), so the
    (symbol id, set id) resolver-cache key never collides across
    domains. *)

type t = int

let counter = Atomic.make 0

let fresh () = 1 + Atomic.fetch_and_add counter 1

let compare : t -> t -> int = Int.compare
let equal : t -> t -> bool = Int.equal
let to_string (s : t) = "sc" ^ string_of_int s

module Set = struct
  type elt = t

  type t = {
    id : int;  (** unique per distinct set; stable for the process lifetime *)
    elems : int array;  (** strictly increasing *)
    hash : int;  (** cached structural hash of [elems] *)
  }

  let hash_elems (a : int array) : int =
    let h = ref 5381 in
    for i = 0 to Array.length a - 1 do
      h := ((!h lsl 5) + !h) lxor a.(i)
    done;
    !h land max_int

  (* -- the cons table ------------------------------------------------------ *)

  module Key = struct
    type t = int array

    let equal a b =
      a == b
      ||
      let la = Array.length a in
      la = Array.length b
      &&
      let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
      go (la - 1)

    let hash = hash_elems
  end

  module Tbl = Hashtbl.Make (Key)

  (* The cons table is {e domain-local} ([Domain.DLS]), seeded at spawn
     with a copy of the parent's tables.  Interning is therefore lock-free
     — this is the hottest operation in expansion, and a shared gated
     table measurably serializes a domain pool.  Per-domain canonicity is
     sound because scope sets never cross domains at runtime: a worker
     inherits every representative the parent had already interned (so
     sets reachable from split-copied state — core bindings, builtin
     modules — stay pointer-canonical), and sets it interns afresh are
     only ever compared against cross-domain sets by [subset]/[union],
     which fall back to content merges when the pointer fast path misses.
     Set ids still come off one process-wide atomic, so ids remain
     globally unique and (symbol id, set id) memo keys never collide
     across domains.  The [n_shards] split bounds per-table rehash cost. *)
  let n_shards = 16

  let shards_key : t Tbl.t array Domain.DLS.key =
    Domain.DLS.new_key
      ~split_from_parent:(fun shards -> Array.map Tbl.copy shards)
      (fun () -> Array.init n_shards (fun _ -> Tbl.create 4096))

  let next_id = Atomic.make 0

  (** Number of distinct scope sets interned so far, process-wide
      (diagnostics; content-equal sets interned by two domains count
      twice, as they are distinct representatives). *)
  let interned_count () = Atomic.get next_id

  (* [elems] must be strictly increasing and must never be mutated after
     this call. *)
  let hashcons (elems : int array) : t =
    let h = hash_elems elems in
    let table = (Domain.DLS.get shards_key).(h land (n_shards - 1)) in
    match Tbl.find_opt table elems with
    | Some s -> s
    | None ->
        let s = { id = Atomic.fetch_and_add next_id 1; elems; hash = h } in
        Tbl.add table elems s;
        s

  let empty = hashcons [||]

  (* -- single-op memo --------------------------------------------------------

     [(set id, scope, op)] → result set.  Lazy scope propagation pushes the
     same one-scope delta onto many sibling nodes that share one interned
     scope set, so the same (set, scope) pair recurs constantly; this memo
     turns the repeat applications from an O(n) array copy + rehash into a
     three-int table hit.  Both tables only grow, bounded by the number of
     distinct (set, scope) pairs the expansion touches. *)

  module OpKey = struct
    type nonrec t = int * elt * int

    let equal ((a, b, c) : t) ((x, y, z) : t) = a = x && b = y && c = z
    let hash ((a, b, c) : t) = (((a * 0x01000193) lxor b) * 0x01000193) lxor c
  end

  module OpTbl = Hashtbl.Make (OpKey)

  (* Domain-local: a pure cache over the shared cons table (values are
     canonical representatives), so per-domain memoization is sound and
     needs no locking.  Workers start with an empty memo and warm it as
     they expand. *)
  let op_table_key : t OpTbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> OpTbl.create 4096)

  (* Below this cardinality the array copy + rehash is cheaper than the
     memo probe + insert, so small sets go straight to the cons table. *)
  let memo_threshold = 8

  let memo_op (sid : int) (x : elt) (tag : int) (compute : unit -> t) : t =
    let op_table = Domain.DLS.get op_table_key in
    let key = (sid, x, tag) in
    match OpTbl.find_opt op_table key with
    | Some r -> r
    | None ->
        let r = compute () in
        OpTbl.add op_table key r;
        r

  (* -- O(1) observers ------------------------------------------------------ *)

  let id (s : t) = s.id
  let hash (s : t) = s.hash
  let equal (a : t) (b : t) = a == b
  let compare (a : t) (b : t) = Int.compare a.id b.id
  let cardinal (s : t) = Array.length s.elems
  let is_empty (s : t) = Array.length s.elems = 0

  (* -- membership / modification ------------------------------------------- *)

  (* Position of [x] in [a], or the insertion point encoded as [-(i+1)]. *)
  let search (a : int array) (x : int) : int =
    let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = a.(mid) in
      if v = x then found := mid else if v < x then lo := mid + 1 else hi := mid - 1
    done;
    if !found >= 0 then !found else - !lo - 1

  let mem (x : elt) (s : t) = search s.elems x >= 0

  let add_build (s : t) (i : int) (x : elt) : t =
    let at = -i - 1 in
    let n = Array.length s.elems in
    let out = Array.make (n + 1) x in
    Array.blit s.elems 0 out 0 at;
    Array.blit s.elems at out (at + 1) (n - at);
    hashcons out

  let add (x : elt) (s : t) : t =
    let i = search s.elems x in
    if i >= 0 then s
    else if Array.length s.elems < memo_threshold then add_build s i x
    else memo_op s.id x 0 (fun () -> add_build s i x)

  let remove_build (s : t) (i : int) : t =
    let n = Array.length s.elems in
    let out = Array.make (n - 1) 0 in
    Array.blit s.elems 0 out 0 i;
    Array.blit s.elems (i + 1) out i (n - 1 - i);
    hashcons out

  let remove (x : elt) (s : t) : t =
    let i = search s.elems x in
    if i < 0 then s
    else if Array.length s.elems < memo_threshold then remove_build s i
    else memo_op s.id x 1 (fun () -> remove_build s i)

  (** Symmetric difference on a single scope: used when applying a macro's
      introduction scope to its result (scopes present are removed, absent
      are added), which distinguishes macro-introduced syntax from syntax
      that came in through the macro's input. *)
  let flip (x : elt) (s : t) = if mem x s then remove x s else add x s

  let singleton (x : elt) = hashcons [| x |]

  (** [subset a b]: pointer-equal sets are subsets in O(1); larger-than
    rules out in O(1); otherwise a linear merge over the sorted arrays. *)
  let subset (a : t) (b : t) : bool =
    a == b
    || begin
         let la = Array.length a.elems and lb = Array.length b.elems in
         la <= lb
         &&
         let i = ref 0 and j = ref 0 and ok = ref true in
         while !ok && !i < la do
           if !j >= lb || a.elems.(!i) < b.elems.(!j) then ok := false
           else if a.elems.(!i) = b.elems.(!j) then begin
             incr i;
             incr j
           end
           else incr j;
           (* early exit: not enough room left in b for the rest of a *)
           if !ok && la - !i > lb - !j then ok := false
         done;
         !ok
       end

  let union (a : t) (b : t) : t =
    if a == b || is_empty b then a
    else if is_empty a then b
    else begin
      let la = Array.length a.elems and lb = Array.length b.elems in
      let tmp = Array.make (la + lb) 0 in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < la || !j < lb do
        let v =
          if !j >= lb then (
            let v = a.elems.(!i) in
            incr i;
            v)
          else if !i >= la then (
            let v = b.elems.(!j) in
            incr j;
            v)
          else
            let x = a.elems.(!i) and y = b.elems.(!j) in
            if x < y then (
              incr i;
              x)
            else if y < x then (
              incr j;
              y)
            else (
              incr i;
              incr j;
              x)
        in
        tmp.(!k) <- v;
        incr k
      done;
      hashcons (Array.sub tmp 0 !k)
    end

  let elements (s : t) = Array.to_list s.elems
  let iter f (s : t) = Array.iter f s.elems
  let fold f (s : t) acc = Array.fold_left (fun acc x -> f x acc) acc s.elems

  let of_list (l : elt list) : t =
    let a = Array.of_list (List.sort_uniq Int.compare l) in
    hashcons a

  let to_string s = "{" ^ String.concat "," (List.map to_string (elements s)) ^ "}"
end
