(** Syntax objects: Racket's attributed ASTs (paper §2.2).  A syntax object
    pairs a datum with lexical context (a scope set), a source location, and
    a table of syntax properties — the out-of-band channel that lets separate
    language extensions communicate without interfering (the paper's
    [syntax-property-put] / [syntax-property-get]).

    {1 Lazy scope propagation}

    The naive sets-of-scopes implementation deep-copies the whole syntax
    tree on every [add_scope]/[remove_scope]/[flip_scope] — which makes
    macro expansion O(n²) on macro-heavy programs, because every macro step
    flips an introduction scope over its entire input and output.  This
    module instead uses Racket's actual strategy: a scope operation is O(1)
    at the root — it updates the root's own (hash-consed) scope set and
    records a {e pending delta} for the children — and the delta is pushed
    one level down only when a node's children are actually inspected
    (through {!view}).  Subtrees that are never looked at again are never
    copied.

    Invariants:
    - [scopes] is always accurate for the node itself;
    - [pending] is the composed delta that still has to be applied to the
      node's children (and transitively below);
    - forcing ({!view}) mutates the node in place — semantically
      transparent, since the forced form denotes the same syntax.

    Syntax properties are carried, not scoped: scope operations do not
    touch [props] (they never did; properties are out-of-band data). *)

module Datum = Liblang_reader.Datum
module Srcloc = Liblang_reader.Srcloc
module Symbol = Liblang_symbol.Symbol

type t = {
  mutable e : e;  (** access through {!view}, never directly *)
  mutable scopes : Scope.Set.t;
  loc : Srcloc.t;
  mutable props : (string * t) list;
  mutable pending : delta;  (** scope ops not yet pushed to children of [e] *)
}

and e =
  | Id of Symbol.t         (** identifier (interned) *)
  | Atom of Datum.atom     (** non-symbol atom *)
  | List of t list
  | DotList of t list * t
  | Vec of t list

(** One pending scope operation.  A delta is a normalized association list
    (each scope at most once), so application order within it is
    irrelevant. *)
and op = OAdd | ORemove | OFlip

and delta = (Scope.t * op) list

(* -- observability ---------------------------------------------------------

   [scope_pushes] counts child-node materializations performed by {!view}
   (the work the lazy representation actually does); the pipeline reports
   it as the ["stx.scope_pushes"] metric.  A plain int ref keeps the hot
   path free of hashing even when no collector is installed. *)

let scope_pushes = ref 0

(* -- deltas ----------------------------------------------------------------- *)

let apply_op op sc set =
  match op with
  | OAdd -> Scope.Set.add sc set
  | ORemove -> Scope.Set.remove sc set
  | OFlip -> Scope.Set.flip sc set

let rec apply_delta (d : delta) (set : Scope.Set.t) : Scope.Set.t =
  match d with [] -> set | (sc, op) :: rest -> apply_delta rest (apply_op op sc set)

(* [assq]/[remove_assq] specialized to int scope keys: deltas are tiny
   (almost always one entry), and the polymorphic-compare versions showed
   up in profiles of the expansion inner loop. *)
let rec delta_find (d : delta) (sc : Scope.t) : op option =
  match d with
  | [] -> None
  | (sc', op) :: rest -> if Int.equal sc sc' then Some op else delta_find rest sc

let rec delta_remove (d : delta) (sc : Scope.t) : delta =
  match d with
  | [] -> []
  | ((sc', _) as hd) :: rest ->
      if Int.equal sc sc' then rest else hd :: delta_remove rest sc

(* Compose [first] (applied earlier) with one later op on scope [sc]. *)
let compose1 (first : delta) (sc : Scope.t) (op : op) : delta =
  match delta_find first sc with
  | None -> (sc, op) :: first
  | Some prev -> (
      let rest = delta_remove first sc in
      match op with
      | OAdd -> (sc, OAdd) :: rest
      | ORemove -> (sc, ORemove) :: rest
      | OFlip -> (
          (* flip after add pins the scope absent; after remove, present;
             after flip, the two cancel *)
          match prev with
          | OAdd -> (sc, ORemove) :: rest
          | ORemove -> (sc, OAdd) :: rest
          | OFlip -> rest))

let compose (first : delta) (later : delta) : delta =
  List.fold_left (fun acc (sc, op) -> compose1 acc sc op) first later

(* -- constructors -------------------------------------------------------- *)

let mk ?(scopes = Scope.Set.empty) ?(loc = Srcloc.none) ?(props = []) e =
  { e; scopes; loc; props; pending = [] }

let id_sym ?scopes ?loc ?props s = mk ?scopes ?loc ?props (Id s)
let id ?scopes ?loc ?props name = id_sym ?scopes ?loc ?props (Symbol.intern name)
let atom ?scopes ?loc a = mk ?scopes ?loc (Atom a)
let int_ ?loc n = atom ?loc (Datum.Int n)
let bool_ ?loc b = atom ?loc (Datum.Bool b)
let str_ ?loc s = atom ?loc (Datum.Str s)
let list ?scopes ?loc ?props xs = mk ?scopes ?loc ?props (List xs)

(* -- forcing (one level) --------------------------------------------------- *)

let has_children = function Id _ | Atom _ -> false | List _ | DotList _ | Vec _ -> true

(* A copy of child [c] with delta [d] applied: [d] lands on [c]'s own scope
   set immediately (it is hash-consed, so usually a cheap cons-table hit)
   and is queued for [c]'s own children. *)
let push_delta (d : delta) (c : t) : t =
  incr scope_pushes;
  {
    e = c.e;
    scopes = apply_delta d c.scopes;
    loc = c.loc;
    props = c.props;
    pending = (if has_children c.e then compose c.pending d else []);
  }

(** The node's structure, with any pending scope delta pushed one level
    down first.  This is the only sound way to inspect children. *)
let view (s : t) : e =
  match s.pending with
  | [] -> s.e
  | d ->
      let e' =
        match s.e with
        | (Id _ | Atom _) as e -> e
        | List xs -> List (List.map (push_delta d) xs)
        | DotList (xs, tl) -> DotList (List.map (push_delta d) xs, push_delta d tl)
        | Vec xs -> Vec (List.map (push_delta d) xs)
      in
      s.e <- e';
      s.pending <- [];
      e'

(* -- accessors ------------------------------------------------------------- *)

let scopes (s : t) = s.scopes
let loc (s : t) = s.loc
let props (s : t) = s.props

(** A node with [orig]'s scopes, location, and properties but structure
    [e] — the hygienic "rebuild this form" helper (supersedes the record
    update [{ orig with e }]).  The new children are taken as already
    correct: no pending delta applies to them. *)
let rewrap (orig : t) (e : e) : t =
  { e; scopes = orig.scopes; loc = orig.loc; props = orig.props; pending = [] }

(** Same node with a different source location (pending delta preserved). *)
let with_loc (loc : Srcloc.t) (s : t) : t =
  { e = s.e; scopes = s.scopes; loc; props = s.props; pending = s.pending }

(* -- conversions ----------------------------------------------------------- *)

let rec of_datum ?(scopes = Scope.Set.empty) (a : Datum.annot) : t =
  let e =
    match a.Datum.d with
    | Datum.Atom (Datum.Sym s) -> Id (Symbol.intern s)
    | Datum.Atom x -> Atom x
    | Datum.List xs -> List (List.map (of_datum ~scopes) xs)
    | Datum.DotList (xs, tl) -> DotList (List.map (of_datum ~scopes) xs, of_datum ~scopes tl)
    | Datum.Vec xs -> Vec (List.map (of_datum ~scopes) xs)
  in
  { e; scopes; loc = a.Datum.loc; props = []; pending = [] }

let rec to_datum (s : t) : Datum.t =
  match s.e with
  (* [to_datum] ignores scopes entirely, so pending deltas need not be
     pushed — read the raw structure *)
  | Id sym -> Datum.Atom (Datum.Sym (Symbol.name sym))
  | Atom a -> Datum.Atom a
  | List xs -> Datum.List (List.map to_annot xs)
  | DotList (xs, tl) -> Datum.DotList (List.map to_annot xs, to_annot tl)
  | Vec xs -> Datum.Vec (List.map to_annot xs)

and to_annot s = { Datum.d = to_datum s; loc = s.loc }

(** [datum_to_syntax ~ctx d] converts a raw datum to syntax, taking lexical
    context (scopes) and source location from [ctx] — Racket's
    [datum->syntax]. *)
let datum_to_syntax ~ctx (d : Datum.t) : t =
  of_datum ~scopes:ctx.scopes { Datum.d; loc = ctx.loc }

let to_string s = Datum.to_string (to_datum s)
let pp fmt s = Format.pp_print_string fmt (to_string s)

(* -- scope operations ------------------------------------------------------ *)

(* O(1): update this node's own set, queue the delta for the children. *)
let scope_op (op : op) (sc : Scope.t) (s : t) : t =
  {
    e = s.e;
    scopes = apply_op op sc s.scopes;
    loc = s.loc;
    props = s.props;
    pending = (if has_children s.e then compose1 s.pending sc op else []);
  }

let add_scope sc s = scope_op OAdd sc s
let remove_scope sc s = scope_op ORemove sc s
let flip_scope sc s = scope_op OFlip sc s

(** Eagerly rebuild the tree with [f] applied to every node's scope set.
    Forces all pending deltas; only for cold paths and tests — the lazy
    [add/remove/flip_scope] are the fast path. *)
let rec map_scopes f s =
  let e =
    match view s with
    | (Id _ | Atom _) as e -> e
    | List xs -> List (List.map (map_scopes f) xs)
    | DotList (xs, tl) -> DotList (List.map (map_scopes f) xs, map_scopes f tl)
    | Vec xs -> Vec (List.map (map_scopes f) xs)
  in
  { e; scopes = f s.scopes; loc = s.loc; props = s.props; pending = [] }

(* -- identifier accessors -------------------------------------------------- *)

let is_id s = match s.e with Id _ -> true | _ -> false
let symbol s = match s.e with Id sym -> Some sym | _ -> None
let sym s = match s.e with Id sym -> Some (Symbol.name sym) | _ -> None

let symbol_exn s =
  match s.e with
  | Id sym -> sym
  | _ -> invalid_arg ("Stx.symbol_exn: not an identifier: " ^ to_string s)

let sym_exn s = Symbol.name (symbol_exn s)

(** [to_list] flattens a syntax list; Racket's [syntax->list].  Returns
    [None] for non-lists and improper lists. *)
let to_list s = match view s with List xs -> Some xs | _ -> None

(* Identifier-name tests never intern the probe (probing with arbitrary
   strings must not grow the symbol table). *)
let is_sym name s =
  match s.e with Id sym -> String.equal (Symbol.name sym) name | _ -> false

let has_sym (target : Symbol.t) s =
  match s.e with Id sym -> Symbol.equal sym target | _ -> false

(* -- syntax properties ---------------------------------------------------- *)

let property_get key s = List.assoc_opt key s.props

let property_put key v s =
  {
    e = s.e;
    scopes = s.scopes;
    loc = s.loc;
    props = (key, v) :: List.remove_assoc key s.props;
    pending = s.pending;
  }

(** Copy all properties of [src] onto [dst]; convenient when a macro rewrites
    a form but must preserve out-of-band annotations. *)
let copy_properties ~src dst =
  List.fold_left (fun acc (k, v) -> property_put k v acc) dst src.props

(* -- structural equality (ignoring scopes, locations, properties) -------- *)

(** Structural equality of the underlying datums, computed directly on the
    syntax trees — no intermediate [Datum.t] is materialized (the old
    implementation allocated two full datum trees per comparison, which is
    the [free-identifier=?] fallback path of every [syntax-rules] literal
    match).  Scope deltas are irrelevant to the answer, so nothing is
    forced. *)
let rec equal_datum a b =
  a == b
  ||
  match (a.e, b.e) with
  | Id i, Id j -> Symbol.equal i j
  | Id i, Atom (Datum.Sym s) | Atom (Datum.Sym s), Id i -> String.equal (Symbol.name i) s
  | Atom x, Atom y -> Datum.atom_equal x y
  | List xs, List ys | Vec xs, Vec ys -> equal_datum_list xs ys
  | DotList (xs, xt), DotList (ys, yt) -> equal_datum_list xs ys && equal_datum xt yt
  | _ -> false

and equal_datum_list xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs, y :: ys -> equal_datum x y && equal_datum_list xs ys
  | _ -> false
