(** Syntax objects: attributed ASTs (paper §2.2).

    A syntax object pairs a datum with lexical context (a scope set), a
    source location, and a table of {e syntax properties} — the out-of-band
    channel that lets separate language extensions communicate without
    interfering ([syntax-property-put] / [syntax-property-get] in the
    paper).

    The representation is {e lazy}: scope operations
    ([add_scope]/[remove_scope]/[flip_scope]) are O(1) at the root and
    record a pending delta that {!view} pushes one level down on access —
    so a macro step no longer deep-copies its whole input and output.  The
    type is therefore abstract: inspect structure with {!view}, read
    context with {!scopes}/{!loc}, rebuild forms with {!rewrap}. *)

module Datum = Liblang_reader.Datum
module Srcloc = Liblang_reader.Srcloc
module Symbol = Liblang_symbol.Symbol

type t

type e =
  | Id of Symbol.t         (** identifier (interned symbol) *)
  | Atom of Datum.atom     (** non-symbol atom *)
  | List of t list
  | DotList of t list * t
  | Vec of t list

(** {1 Inspection} *)

(** The node's structure, with any pending scope delta pushed one level
    down first.  Always use this (never a raw field) to look at children. *)
val view : t -> e

val scopes : t -> Scope.Set.t
val loc : t -> Srcloc.t
val props : t -> (string * t) list

(** {1 Construction} *)

val mk : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> ?props:(string * t) list -> e -> t
val id : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> ?props:(string * t) list -> string -> t

(** Like {!id} but from an already-interned symbol (hot paths). *)
val id_sym : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> ?props:(string * t) list -> Symbol.t -> t

val atom : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> Datum.atom -> t
val int_ : ?loc:Srcloc.t -> int -> t
val bool_ : ?loc:Srcloc.t -> bool -> t
val str_ : ?loc:Srcloc.t -> string -> t
val list : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> ?props:(string * t) list -> t list -> t

(** [rewrap orig e] is a node with [orig]'s scopes, location, and
    properties but structure [e] — the "rebuild this form" helper. *)
val rewrap : t -> e -> t

(** [with_loc loc s]: the same syntax with source location [loc]. *)
val with_loc : Srcloc.t -> t -> t

(** {1 Conversions} *)

val of_datum : ?scopes:Scope.Set.t -> Datum.annot -> t
val to_datum : t -> Datum.t
val to_annot : t -> Datum.annot

(** [datum_to_syntax ~ctx d] converts a raw datum to syntax, taking lexical
    context (scopes) and source location from [ctx] — Racket's
    [datum->syntax]. *)
val datum_to_syntax : ctx:t -> Datum.t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Scope operations (hygiene)} *)

(** Eager deep rebuild with [f] over every scope set (forces all pending
    deltas); cold paths and tests only. *)
val map_scopes : (Scope.Set.t -> Scope.Set.t) -> t -> t

(** O(1): updates the root's scope set and queues a pending delta for the
    children (pushed lazily by {!view}). *)
val add_scope : Scope.t -> t -> t

val remove_scope : Scope.t -> t -> t

(** [flip_scope] adds the scope where absent and removes it where present;
    applied to a transformer's input and output, it distinguishes
    macro-introduced syntax from use-site syntax. *)
val flip_scope : Scope.t -> t -> t

(** Child-node materializations performed by {!view} so far (monotonic;
    reported as the ["stx.scope_pushes"] metric). *)
val scope_pushes : int ref

(** {1 Accessors} *)

val is_id : t -> bool
val symbol : t -> Symbol.t option
val symbol_exn : t -> Symbol.t
val sym : t -> string option
val sym_exn : t -> string

(** Racket's [syntax->list]: [None] for non-lists and improper lists. *)
val to_list : t -> t list option

(** [is_sym name s]: is [s] the identifier [name]?  Never interns [name]. *)
val is_sym : string -> t -> bool

(** [has_sym sym s]: like {!is_sym} but O(1) against a pre-interned symbol. *)
val has_sym : Symbol.t -> t -> bool

(** {1 Syntax properties (the out-of-band channel, §3.1)} *)

val property_get : string -> t -> t option
val property_put : string -> t -> t -> t

(** Copy all properties of [src] onto the second argument; used when a
    rewrite must preserve out-of-band annotations. *)
val copy_properties : src:t -> t -> t

(** {1 Comparison} *)

(** Structural equality of the underlying datums (ignores scopes,
    locations, and properties); allocation-free — no datum trees are
    materialized. *)
val equal_datum : t -> t -> bool
