(** The global binding table of the sets-of-scopes expander.

    A binding associates (name, scope set) with a record carrying a
    globally unique id.  The paper relies on exactly this property (§5):
    "identifiers in Racket are given globally fresh names that are stable
    across modules during the expansion process", so identifier-keyed
    tables (type environments, namespaces) work across modules with no
    extra plumbing.

    The table is keyed by interned symbol id and {!resolve} is memoized per
    (symbol id, scope-set representative id), with invalidation on {!add}
    — see docs/architecture.md, "hygiene internals".

    The table, cache and counters are domain-local, seeded at
    [Domain.spawn] with a copy of the parent's table; binding uids remain
    globally fresh across domains (see docs/architecture.md, "Parallelism
    & domain-safety"). *)

exception Ambiguous of Stx.t
(** raised by {!resolve} when candidate bindings are not totally ordered by
    scope-set inclusion — the classic hygiene error *)

type t = { uid : int; name : string }

val fresh : string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string

(** [add id b] records that [id]'s name, under [id]'s scope set, refers to
    [b].  Re-adding with the same name and scope set replaces (supports
    module-level redefinition).  Invalidates the resolver cache for that
    name. *)
val add : Stx.t -> t -> unit

(** Bind [id] to a fresh binding and return it. *)
val bind : Stx.t -> t

(** Resolve a reference: among all bindings for the name whose scope set is
    a subset of the reference's, the one with the largest scope set.
    Memoized; when exactly one candidate matches, the ambiguity
    total-order check is skipped. *)
val resolve : Stx.t -> t option

(** Racket's [free-identifier=?]: do two identifiers refer to the same
    binding?  Unbound identifiers compare by name. *)
val free_identifier_eq : Stx.t -> Stx.t -> bool

(** Resolver-cache hit/miss counts for the calling domain (monotonic plain
    ints — the hot path never hashes a metric name).  The pipeline reports
    deltas as the ["expand.resolve_hits"] / ["expand.resolve_misses"]
    metrics; the parallel build driver flushes each worker's deltas into
    that worker's collector before merge-on-join. *)
val resolve_hits : unit -> int

val resolve_misses : unit -> int

(** Testing hook: forget all bindings (and the resolver cache). *)
val reset_for_tests : unit -> unit

type snapshot
(** An immutable copy of the binding table, for measurement isolation. *)

(** Capture the current binding table.  O(table size); entry lists are
    immutable, so the copy is shallow. *)
val snapshot : unit -> snapshot

(** Replace the binding table with a previously captured {!snapshot} and
    drop the resolver cache.  Used by the bench harness to make
    expansion-only measurements leave no residue: throwaway modules
    expanded for timing would otherwise keep growing the per-name binder
    lists that every later resolution scans. *)
val restore : snapshot -> unit
