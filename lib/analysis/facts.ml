(** Flow facts produced by the 0CFA machine ({!Zcfa}) and consumed by the
    optimizer ([Liblang_typed.Optimize]) and, through the syntax it
    rewrites, by the bytecode backend.

    Facts are keyed by {e physical} syntax-node identity: the analysis and
    the optimizer walk the very same expanded forms, and {!Liblang_stx.Stx.view}
    memoizes its materialized children, so node identity is stable between
    the two passes.  A fact that cannot be found (a rebuilt node, a node
    from a different expansion) simply means "nothing proved" — lookups are
    total and conservative. *)

module Stx = Liblang_stx.Stx

module NodeTbl = Hashtbl.Make (struct
  type t = Stx.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(** A proved-monomorphic call site: every value that can flow to the
    operator is the one lambda [callee_stx] (of fixed arity, no rest
    argument). *)
type callee = { callee_stx : Stx.t; callee_name : string; callee_arity : int }

type t = {
  direct : callee NodeTbl.t;  (** [#%plain-app] node -> unique callee *)
  ref_inbounds : unit NodeTbl.t;  (** [vector-ref] app node proved in-bounds *)
  set_inbounds : unit NodeTbl.t;  (** [vector-set!] app node proved in-bounds *)
  unboxable : unit NodeTbl.t;
      (** [#%plain-lambda] nodes that are let-bound, non-escaping,
          referenced exactly once and only in operator position *)
  mutable call_sites : int;
  mutable lambdas : int;
  mutable escaping : int;
  mutable vec_sites : int;
  mutable sweeps : int;
  mutable transfers : int;
  mutable stage : string;
  mutable exhausted : bool;  (** fuel ran out: all fact tables are empty *)
}

let create () =
  {
    direct = NodeTbl.create 64;
    ref_inbounds = NodeTbl.create 16;
    set_inbounds = NodeTbl.create 16;
    unboxable = NodeTbl.create 8;
    call_sites = 0;
    lambdas = 0;
    escaping = 0;
    vec_sites = 0;
    sweeps = 0;
    transfers = 0;
    stage = "?";
    exhausted = false;
  }

let direct_callee (t : t) (app : Stx.t) : callee option = NodeTbl.find_opt t.direct app
let ref_inbounds (t : t) (app : Stx.t) : bool = NodeTbl.mem t.ref_inbounds app
let set_inbounds (t : t) (app : Stx.t) : bool = NodeTbl.mem t.set_inbounds app
let lambda_unboxable (t : t) (lam : Stx.t) : bool = NodeTbl.mem t.unboxable lam

(** Human-readable report for [liblang analyze] — a summary line followed by
    one line per proved fact, sorted by source location for stable output. *)
let render (t : t) : string list =
  let loc_line (s : Stx.t) = Liblang_reader.Srcloc.to_string (Stx.loc s) in
  let collect tbl label =
    NodeTbl.fold (fun s () acc -> Printf.sprintf "  %-10s %s" label (loc_line s) :: acc) tbl []
  in
  let directs =
    NodeTbl.fold
      (fun s c acc ->
        Printf.sprintf "  %-10s %s -> %s/%d" "direct" (loc_line s) c.callee_name c.callee_arity
        :: acc)
      t.direct []
  in
  let summary =
    Printf.sprintf
      "analysis[%s]: %d call sites (%d monomorphic), %d lambdas (%d escaping, %d unboxable), %d \
       vector sites, %d in-bounds refs, %d in-bounds sets; %d sweeps, %d transfers%s"
      t.stage t.call_sites (NodeTbl.length t.direct) t.lambdas t.escaping
      (NodeTbl.length t.unboxable) t.vec_sites
      (NodeTbl.length t.ref_inbounds)
      (NodeTbl.length t.set_inbounds)
      t.sweeps t.transfers
      (if t.exhausted then " (FUEL EXHAUSTED: no facts)" else "")
  in
  summary
  :: List.sort compare
       (directs
       @ collect t.ref_inbounds "inbounds"
       @ collect t.set_inbounds "inbounds!"
       @ collect t.unboxable "unbox")
