(** A finite-state 0CFA over fully-expanded core forms (ROADMAP item 3).

    The machine abstracts a module body to a monovariant flow analysis: one
    abstract value per binding uid, one abstract record per lambda and per
    vector-allocation site.  The abstract value lattice is finite (closure
    sets over the module's lambdas, vector-site sets, a small integer
    domain with constant sets, non-negativity, and vector-length symbols),
    so the fixpoint terminates; an iteration/transfer fuel backs that
    guarantee up with a hard stop that degrades to {e no facts} rather
    than wrong facts.

    Following oaam, the solver is a staged progression — each stage is
    individually selectable ([liblang analyze --stage=...]) and
    benchmarkable:

    - {b wide}: the widened-store baseline — one global store, but the
      syntax is re-walked and bindings re-resolved on every sweep;
    - {b compiled}: the transfer functions are pre-compiled once into a
      closure-form node graph, then sweeps run over the graph;
    - {b lazy}: compiled, plus lazy nondeterminism — a top form whose
      read set did not change since its last evaluation is skipped;
    - {b delta}: compiled, plus delta-store frontier propagation — a
      worklist seeded from store deltas via dynamically recorded
      dependencies, rather than whole-module sweeps.

    All stages compute the same fixpoint over the same lattice; the staged
    tests assert fact-for-fact agreement. *)

module Stx = Liblang_stx.Stx
module Binding = Liblang_stx.Binding
module Denote = Liblang_expander.Denote
module Baselang = Liblang_modules.Baselang
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module IntSet = Set.Make (Int)

(** Master switch, for the ablation benchmarks ([Typed_no_cfa]): when off,
    [Liblang_typed.Optimize] skips the analysis and the flow-driven
    rewrites never fire. *)
let enabled = ref true

type stage = Wide | Compiled | Lazy | Delta

let default_stage = ref Delta

let stage_name = function
  | Wide -> "wide"
  | Compiled -> "compiled"
  | Lazy -> "lazy"
  | Delta -> "delta"

let stage_of_string = function
  | "wide" -> Some Wide
  | "compiled" -> Some Compiled
  | "lazy" -> Some Lazy
  | "delta" -> Some Delta
  | _ -> None

(* Fuel: the lattice is finite so sweeps converge, but adversarial corpus
   inputs get a hard stop anyway.  Exhaustion yields an *empty* fact table
   (sound: no rewrite fires), never a partial one. *)
let max_sweeps = 256
let max_transfers = 4_000_000

exception Out_of_fuel

(* -- abstract domains ------------------------------------------------------ *)

(* Integer abstraction.  [IConsts] is a small sorted constant set (widened
   past [const_cap]); [ILen s] means "the length of one of the vector sites
   in [s]" — the symbolic link that lets a `(< i (vector-length v))` guard
   prove `(vector-ref v i)` in bounds. *)
type aint = IBot | IConsts of int list | ILen of IntSet.t | INonNeg | ITop

let const_cap = 8

(* An abstract value covers every concrete value that can flow to a point:
   closures by lambda index, tracked vectors by allocation site, integers
   exactly by [ints], and [other] for every remaining first-order value
   (floats, booleans, strings, pairs, untracked vectors...).  [top]
   subsumes everything, including all closures and sites. *)
type aval = { clos : IntSet.t; vecs : IntSet.t; ints : aint; other : bool; top : bool }

let av_bot = { clos = IntSet.empty; vecs = IntSet.empty; ints = IBot; other = false; top = false }
let av_top = { av_bot with top = true }
let av_other = { av_bot with other = true }
let av_int n = { av_bot with ints = IConsts [ n ] }
let av_clos ix = { av_bot with clos = IntSet.singleton ix }
let av_vec ix = { av_bot with vecs = IntSet.singleton ix }

let iconsts ks =
  let ks = List.sort_uniq compare ks in
  if List.length ks <= const_cap then IConsts ks
  else if List.for_all (fun k -> k >= 0) ks then INonNeg
  else ITop

let aint_nonneg = function
  | IBot -> true
  | IConsts ks -> List.for_all (fun k -> k >= 0) ks
  | ILen _ | INonNeg -> true
  | ITop -> false

let join_aint a b =
  match (a, b) with
  | IBot, x | x, IBot -> x
  | ITop, _ | _, ITop -> ITop
  | IConsts xs, IConsts ys -> iconsts (xs @ ys)
  | ILen s1, ILen s2 -> if IntSet.equal s1 s2 then a else INonNeg
  | x, y -> if aint_nonneg x && aint_nonneg y then INonNeg else ITop

let aint_equal a b =
  match (a, b) with
  | ILen s1, ILen s2 -> IntSet.equal s1 s2
  | IConsts xs, IConsts ys -> xs = ys
  | x, y -> x = y

let join a b =
  if b == av_bot then a
  else if a == av_bot then b
  else
    {
      clos = IntSet.union a.clos b.clos;
      vecs = IntSet.union a.vecs b.vecs;
      ints = join_aint a.ints b.ints;
      other = a.other || b.other;
      top = a.top || b.top;
    }

let aval_equal a b =
  IntSet.equal a.clos b.clos && IntSet.equal a.vecs b.vecs && aint_equal a.ints b.ints
  && a.other = b.other && a.top = b.top

(* transfer for + / - / * / add1 / sub1 over the integer domain *)
let arith_aint name a b =
  let cross f xs ys =
    iconsts (List.concat_map (fun x -> List.map (fun y -> f x y) ys) xs)
  in
  match (name, a, b) with
  | _, IBot, _ | _, _, IBot -> IBot
  | "+", IConsts xs, IConsts ys -> cross ( + ) xs ys
  | "+", x, y when aint_nonneg x && aint_nonneg y -> INonNeg
  | "-", IConsts xs, IConsts ys -> cross ( - ) xs ys
  | "*", IConsts xs, IConsts ys -> cross ( * ) xs ys
  | "*", x, y when aint_nonneg x && aint_nonneg y -> INonNeg
  | _ -> ITop

(* -- the compiled node graph ----------------------------------------------- *)

type len_state = LUnknown | LKnown of int | LVar

type node = { n_stx : Stx.t; n_kind : kind; n_op : bool }

and kind =
  | KConst of aval
  | KVar of int
  | KPrim of string
  | KExt  (** unknown reference: an import or a prim without a transfer *)
  | KLam of int
  | KIf of node * node * node * guard option
  | KBegin of node list
  | KSet of int option * node
  | KApp of node * node list
  | KAlloc of int * node list  (** vector site: (vector ...) / (make-vector ...) *)
  | KLet of (int list * node) list * node list
  | KDefine of int list * node
  | KProvide of int list
  | KOpaque of node list  (** unrecognized form: children escape, result top *)
  | KSkip

and guard = { g_i : int; g_n : int }  (** the condition was [(< g_i g_n)] *)

and lam = {
  l_idx : int;
  l_stx : Stx.t;
  l_params : int list;
  l_rest : bool;
  l_arity : int;
  mutable l_name : string;
  mutable l_body : node list;
  mutable l_escapes : bool;
  mutable l_ret : aval;
}

and vsite = {
  v_idx : int;
  v_make : bool;  (** make-vector (length from first arg) vs. vector (length = argc) *)
  mutable v_len : len_state;
  mutable v_elem : aval;
  mutable v_escaped : bool;
}

type st = {
  store : (int, aval) Hashtbl.t;
  bound : (int, unit) Hashtbl.t;
  assigned : (int, unit) Hashtbl.t;
  refs_total : (int, int) Hashtbl.t;
  refs_op : (int, int) Hashtbl.t;
  lam_tbl : lam Facts.NodeTbl.t;  (** lambda stx -> record (stable across wide rebuilds) *)
  lams : (int, lam) Hashtbl.t;
  site_tbl : vsite Facts.NodeTbl.t;
  sites : (int, vsite) Hashtbl.t;
  mutable next_lam : int;
  mutable next_site : int;
  mutable let_lams : (int * int) list;  (** (binding uid, lambda idx) of single-id let clauses *)
  mutable escape_all : bool;  (** an unparseable #%provide spec: everything escapes *)
  mutable counted : bool;  (** ref counts recorded (first build only) *)
  mutable changed : bool;
  mutable sweeps : int;
  mutable transfers : int;
  mutable call_sites : int;
  (* lazy / delta bookkeeping *)
  mutable gen : int;
  uid_gen : (int, int) Hashtbl.t;
  mutable aux_gen : int;
  mutable cur_form : int;  (** -1 outside delta-stage evaluation *)
  uid_deps : (int, IntSet.t) Hashtbl.t;
  lam_deps : (int, IntSet.t) Hashtbl.t;
  site_deps : (int, IntSet.t) Hashtbl.t;
  mutable dirty : IntSet.t;  (** delta worklist (form indices), drained in order *)
}

let init_state () =
  {
    store = Hashtbl.create 64;
    bound = Hashtbl.create 64;
    assigned = Hashtbl.create 16;
    refs_total = Hashtbl.create 64;
    refs_op = Hashtbl.create 64;
    lam_tbl = Facts.NodeTbl.create 32;
    lams = Hashtbl.create 32;
    site_tbl = Facts.NodeTbl.create 16;
    sites = Hashtbl.create 16;
    next_lam = 0;
    next_site = 0;
    let_lams = [];
    escape_all = false;
    counted = false;
    changed = false;
    sweeps = 0;
    transfers = 0;
    call_sites = 0;
    gen = 0;
    uid_gen = Hashtbl.create 64;
    aux_gen = 0;
    cur_form = -1;
    uid_deps = Hashtbl.create 64;
    lam_deps = Hashtbl.create 32;
    site_deps = Hashtbl.create 16;
    dirty = IntSet.empty;
  }

let bump st = st.gen <- st.gen + 1

let add_dep tbl key st =
  if st.cur_form >= 0 then
    let old = Option.value (Hashtbl.find_opt tbl key) ~default:IntSet.empty in
    if not (IntSet.mem st.cur_form old) then Hashtbl.replace tbl key (IntSet.add st.cur_form old)

let wake st tbl key =
  match Hashtbl.find_opt tbl key with
  | Some forms -> st.dirty <- IntSet.union st.dirty forms
  | None -> ()

let touch_uid st uid =
  st.changed <- true;
  bump st;
  Hashtbl.replace st.uid_gen uid st.gen;
  wake st st.uid_deps uid

let touch_lam st ix =
  st.changed <- true;
  bump st;
  st.aux_gen <- st.gen;
  wake st st.lam_deps ix

let touch_site st ix =
  st.changed <- true;
  bump st;
  st.aux_gen <- st.gen;
  wake st st.site_deps ix

let store_get st uid =
  add_dep st.uid_deps uid st;
  Option.value (Hashtbl.find_opt st.store uid) ~default:av_bot

let store_join st uid v =
  let old = Option.value (Hashtbl.find_opt st.store uid) ~default:av_bot in
  let nv = join old v in
  if not (aval_equal nv old) then begin
    Hashtbl.replace st.store uid nv;
    touch_uid st uid
  end

(* Escaping: the value reaches code the analysis cannot see.  Closures get
   top parameters (and their results escape in turn); tracked vector sites
   keep their length — Scheme vectors are fixed-size — but their elements
   become top, since unknown code may vector-set! anything into them. *)
let rec escape_value st (v : aval) =
  IntSet.iter
    (fun ix ->
      let l = Hashtbl.find st.lams ix in
      if not l.l_escapes then begin
        l.l_escapes <- true;
        touch_lam st ix;
        List.iter (fun p -> store_join st p av_top) l.l_params;
        escape_value st l.l_ret
      end)
    v.clos;
  IntSet.iter
    (fun ix ->
      let s = Hashtbl.find st.sites ix in
      if not s.v_escaped then begin
        s.v_escaped <- true;
        let old = s.v_elem in
        s.v_elem <- join old av_top;
        touch_site st ix;
        escape_value st old
      end)
    v.vecs

let lam_ret_join st ix v =
  let l = Hashtbl.find st.lams ix in
  let nv = join l.l_ret v in
  if not (aval_equal nv l.l_ret) then begin
    l.l_ret <- nv;
    touch_lam st ix;
    if l.l_escapes then escape_value st nv
  end

let elem_join st ix v =
  let s = Hashtbl.find st.sites ix in
  let nv = join s.v_elem v in
  if not (aval_equal nv s.v_elem) then begin
    s.v_elem <- nv;
    touch_site st ix;
    if s.v_escaped then escape_value st nv
  end

let len_merge st ix (cand : len_state) =
  let s = Hashtbl.find st.sites ix in
  let merged =
    match (s.v_len, cand) with
    | LUnknown, x -> x
    | x, LUnknown -> x
    | LKnown a, LKnown b when a = b -> s.v_len
    | _ -> LVar
  in
  if merged <> s.v_len then begin
    s.v_len <- merged;
    touch_site st ix
  end

(* -- prims with transfer functions ----------------------------------------- *)

(* Everything else resolves to [KExt]: calling it escapes the arguments and
   returns top — sound for higher-order prims (apply, map, vector-map...),
   for pair constructors (contents become untracked), and for anything the
   table simply doesn't know. *)
let pure_prims =
  (* return numbers/booleans/other first-order data; never retain, call,
     or store their arguments *)
  [
    "/"; "quotient"; "remainder"; "modulo"; "min"; "max"; "abs"; "floor"; "ceiling"; "round";
    "truncate"; "sqrt"; "sin"; "cos"; "tan"; "atan"; "exp"; "log"; "expt"; "exact->inexact";
    "exact->float"; "<"; "<="; ">"; ">="; "="; "zero?"; "even?"; "odd?"; "not"; "eq?"; "eqv?";
    "equal?"; "null?"; "pair?"; "number?"; "boolean?"; "procedure?"; "vector?"; "string?";
    "symbol?"; "display"; "write"; "newline"; "void"; "make-rectangular"; "magnitude";
    "real-part"; "imag-part"; "unsafe-fl+"; "unsafe-fl-"; "unsafe-fl*"; "unsafe-fl/";
    "unsafe-flmin"; "unsafe-flmax"; "unsafe-fl<"; "unsafe-fl>"; "unsafe-fl<="; "unsafe-fl>=";
    "unsafe-fl="; "unsafe-flabs"; "unsafe-flsqrt"; "unsafe-flsin"; "unsafe-flcos"; "unsafe-fltan";
    "unsafe-flatan"; "unsafe-flexp"; "unsafe-fllog"; "unsafe-flfloor"; "unsafe-flceiling";
    "unsafe-flround"; "unsafe-fltruncate"; "unsafe-flexpt"; "unsafe-fx->fl";
    "unsafe-make-rectangular"; "unsafe-magnitude"; "unsafe-real-part"; "unsafe-imag-part";
    "unsafe-c+"; "unsafe-c-"; "unsafe-c*"; "unsafe-c/";
  ]

let arith_prims = [ "+"; "-"; "*"; "add1"; "sub1" ]

let vector_prims =
  [
    "vector"; "make-vector"; "vector-length"; "vector-ref"; "vector-set!";
    "unsafe-vector-length"; "unsafe-vector-ref"; "unsafe-vector-set!"; "unchecked-vector-ref";
    "unchecked-vector-set!";
  ]

(* uid -> prim name, resolved once against the base language's binding
   context (uids are exact: a shadowing local binder has a different uid) *)
let prim_uids : (int, string) Hashtbl.t = Hashtbl.create 128
let prim_uids_ready = ref false

let prim_uid_table () =
  if not !prim_uids_ready then begin
    List.iter
      (fun name ->
        match Binding.resolve (Baselang.bid name) with
        | Some b -> Hashtbl.replace prim_uids b.Binding.uid name
        | None -> ())
      (pure_prims @ arith_prims @ vector_prims @ [ "values" ]);
    prim_uids_ready := true
  end;
  prim_uids

let core_kind (hd : Stx.t) : string option =
  match Binding.resolve hd with
  | None -> None
  | Some b -> ( match Denote.get b with Some (Denote.DCore n) -> Some n | _ -> None)

(* -- building the node graph ----------------------------------------------- *)

let aval_of_atom = function Liblang_reader.Datum.Int n -> av_int n | _ -> av_other

let aval_of_quoted (s : Stx.t) =
  match Stx.view s with Stx.Atom a -> aval_of_atom a | _ -> av_other

let formals_of (formals : Stx.t) : int list * bool =
  let uid_of id = match Binding.resolve id with Some b -> b.Binding.uid | None -> -1 in
  match Stx.view formals with
  | Stx.Id _ -> ([ uid_of formals ], true)
  | Stx.List ids -> (List.map uid_of ids, false)
  | Stx.DotList (ids, rest) -> (List.map uid_of ids @ [ uid_of rest ], true)
  | _ -> ([], false)

(* pass 1: record every binder uid, module-wide, so forward references to
   later defines classify as local rather than external *)
let rec collect_binders st (s : Stx.t) =
  match Stx.view s with
  | Stx.List (hd :: args) when Stx.is_id hd -> (
      let bind_ids ids =
        List.iter
          (fun id ->
            match Binding.resolve id with
            | Some b -> Hashtbl.replace st.bound b.Binding.uid ()
            | None -> ())
          ids
      in
      match (core_kind hd, args) with
      | Some "#%plain-lambda", formals :: body ->
          let params, _ = formals_of formals in
          List.iter (fun u -> Hashtbl.replace st.bound u ()) params;
          List.iter (collect_binders st) body
      | Some ("let-values" | "letrec-values"), clauses :: body ->
          (match Stx.to_list clauses with
          | Some cs ->
              List.iter
                (fun c ->
                  match Stx.to_list c with
                  | Some [ ids; rhs ] ->
                      (match Stx.to_list ids with Some l -> bind_ids l | None -> ());
                      collect_binders st rhs
                  | _ -> ())
                cs
          | None -> ());
          List.iter (collect_binders st) body
      | Some "define-values", [ ids; rhs ] ->
          (match Stx.to_list ids with Some l -> bind_ids l | None -> ());
          collect_binders st rhs
      | Some ("quote" | "quote-syntax" | "define-syntaxes" | "begin-for-syntax" | "#%require"), _
        ->
          ()
      | _, args -> List.iter (collect_binders st) args)
  | _ -> ()

let classify st (id : Stx.t) : kind =
  match Binding.resolve id with
  | Some b ->
      if Hashtbl.mem st.bound b.Binding.uid then KVar b.Binding.uid
      else (
        match Hashtbl.find_opt (prim_uid_table ()) b.Binding.uid with
        | Some name -> KPrim name
        | None -> KExt)
  | None -> KExt

let note_ref st op_pos uid =
  if not st.counted then begin
    let inc tbl = Hashtbl.replace tbl uid (1 + Option.value (Hashtbl.find_opt tbl uid) ~default:0) in
    inc st.refs_total;
    if op_pos then inc st.refs_op
  end

let lam_record st (s : Stx.t) formals body_nodes =
  match Facts.NodeTbl.find_opt st.lam_tbl s with
  | Some l ->
      l.l_body <- body_nodes;
      l
  | None ->
      let params, rest = formals_of formals in
      let l =
        {
          l_idx = st.next_lam;
          l_stx = s;
          l_params = params;
          l_rest = rest;
          l_arity = List.length params - (if rest then 1 else 0);
          l_name = "lambda";
          l_body = body_nodes;
          l_escapes = false;
          l_ret = av_bot;
        }
      in
      st.next_lam <- st.next_lam + 1;
      Facts.NodeTbl.replace st.lam_tbl s l;
      Hashtbl.replace st.lams l.l_idx l;
      l

let site_record st (s : Stx.t) ~make =
  match Facts.NodeTbl.find_opt st.site_tbl s with
  | Some v -> v
  | None ->
      let v =
        { v_idx = st.next_site; v_make = make; v_len = LUnknown; v_elem = av_bot; v_escaped = false }
      in
      st.next_site <- st.next_site + 1;
      Facts.NodeTbl.replace st.site_tbl s v;
      Hashtbl.replace st.sites v.v_idx v;
      v

let rec build st ?(op_pos = false) (s : Stx.t) : node =
  let mk kind = { n_stx = s; n_kind = kind; n_op = op_pos } in
  match Stx.view s with
  | Stx.Id _ ->
      let k = classify st s in
      (match k with KVar uid -> note_ref st op_pos uid | _ -> ());
      mk k
  | Stx.Atom a -> mk (KConst (aval_of_atom a))
  | Stx.List (hd :: args) when Stx.is_id hd -> (
      match (core_kind hd, args) with
      | Some "quote", [ d ] -> mk (KConst (aval_of_quoted d))
      | Some "quote-syntax", _ -> mk (KConst av_other)
      | Some "if", [ c; t; e ] ->
          let cn = build st c in
          let g =
            match cn.n_kind with
            | KApp ({ n_kind = KPrim "<"; _ }, [ { n_kind = KVar i; _ }; { n_kind = KVar n; _ } ])
              ->
                Some { g_i = i; g_n = n }
            | _ -> None
          in
          mk (KIf (cn, build st t, build st e, g))
      | Some ("begin" | "#%expression"), body -> mk (KBegin (List.map (build st) body))
      | Some "set!", [ x; rhs ] ->
          let target =
            match classify st x with
            | KVar uid ->
                if not st.counted then Hashtbl.replace st.assigned uid ();
                Some uid
            | _ -> None
          in
          mk (KSet (target, build st rhs))
      | Some "#%plain-lambda", formals :: body ->
          let body_nodes = List.map (build st) body in
          let l = lam_record st s formals body_nodes in
          mk (KLam l.l_idx)
      | Some ("let-values" | "letrec-values"), clauses :: body ->
          let cls =
            match Stx.to_list clauses with
            | Some cs ->
                List.filter_map
                  (fun c ->
                    match Stx.to_list c with
                    | Some [ ids; rhs ] ->
                        let uids =
                          match Stx.to_list ids with
                          | Some l ->
                              List.filter_map
                                (fun id ->
                                  match Binding.resolve id with
                                  | Some b -> Some b.Binding.uid
                                  | None -> None)
                                l
                          | None -> []
                        in
                        let rn = build st rhs in
                        (match (uids, rn.n_kind) with
                        | [ uid ], KLam ix ->
                            let l = Hashtbl.find st.lams ix in
                            if l.l_name = "lambda" then
                              l.l_name <- Option.value (Stx.sym (List.hd (Option.get (Stx.to_list ids)))) ~default:"lambda";
                            if not st.counted then st.let_lams <- (uid, ix) :: st.let_lams
                        | _ -> ());
                        Some (uids, rn)
                    | _ -> None)
                  cs
            | None -> []
          in
          mk (KLet (cls, List.map (build st) body))
      | Some "define-values", [ ids; rhs ] ->
          let uids =
            match Stx.to_list ids with
            | Some l ->
                List.filter_map
                  (fun id -> match Binding.resolve id with Some b -> Some b.Binding.uid | None -> None)
                  l
          | None -> []
          in
          let rn = build st rhs in
          (match (uids, rn.n_kind, Stx.to_list ids) with
          | [ _ ], KLam ix, Some [ id ] ->
              let l = Hashtbl.find st.lams ix in
              if l.l_name = "lambda" then l.l_name <- Option.value (Stx.sym id) ~default:"lambda"
          | _ -> ());
          mk (KDefine (uids, rn))
      | Some "#%provide", specs ->
          let uids =
            List.concat_map
              (fun spec ->
                match Stx.view spec with
                | Stx.Id _ -> (
                    match Binding.resolve spec with Some b -> [ b.Binding.uid ] | None -> [])
                | Stx.List (kw :: clauses) when Stx.is_sym "rename-out" kw ->
                    List.filter_map
                      (fun c ->
                        match Stx.to_list c with
                        | Some [ internal; _ ] -> (
                            match Binding.resolve internal with
                            | Some b -> Some b.Binding.uid
                            | None -> None)
                        | _ -> None)
                      clauses
                | _ ->
                    st.escape_all <- true;
                    [])
              specs
          in
          mk (KProvide uids)
      | Some ("define-syntaxes" | "begin-for-syntax" | "#%require"), _ -> mk KSkip
      | Some "#%plain-app", op :: rands -> (
          let opn = build st ~op_pos:true op in
          let rns = List.map (build st) rands in
          match opn.n_kind with
          | KPrim ("vector" | "make-vector") ->
              let v = site_record st s ~make:(match opn.n_kind with KPrim "make-vector" -> true | _ -> false) in
              mk (KAlloc (v.v_idx, rns))
          | KPrim _ -> mk (KApp (opn, rns))
          | _ ->
              if not st.counted then st.call_sites <- st.call_sites + 1;
              mk (KApp (opn, rns)))
      | Some _, _ -> mk KSkip
      | None, _ -> mk (KOpaque (List.map (build st) (hd :: args))))
  | Stx.List xs -> mk (KOpaque (List.map (build st) xs))
  | Stx.DotList _ | Stx.Vec _ -> mk (KConst av_other)

(* -- the abstract transfer functions --------------------------------------- *)

let rec eval st (n : node) : aval =
  st.transfers <- st.transfers + 1;
  if st.transfers > max_transfers then raise Out_of_fuel;
  match n.n_kind with
  | KConst v -> v
  | KVar uid -> store_get st uid
  | KPrim _ -> av_other
  | KExt -> av_top
  | KLam ix ->
      add_dep st.lam_deps ix st;
      let l = Hashtbl.find st.lams ix in
      let rv = eval_body st l.l_body in
      lam_ret_join st ix rv;
      av_clos ix
  | KIf (c, t, e, _) ->
      ignore (eval st c);
      join (eval st t) (eval st e)
  | KBegin body -> eval_body st body
  | KSet (Some uid, rhs) ->
      store_join st uid (eval st rhs);
      av_other
  | KSet (None, rhs) ->
      escape_value st (eval st rhs);
      av_other
  | KDefine (uids, rhs) ->
      let v = eval st rhs in
      (match uids with
      | [ uid ] -> store_join st uid v
      | uids ->
          escape_value st v;
          List.iter (fun uid -> store_join st uid av_top) uids);
      av_other
  | KLet (clauses, body) ->
      List.iter
        (fun (uids, rhs) ->
          let v = eval st rhs in
          match uids with
          | [ uid ] -> store_join st uid v
          | uids ->
              escape_value st v;
              List.iter (fun uid -> store_join st uid av_top) uids)
        clauses;
      eval_body st body
  | KAlloc (ix, args) ->
      add_dep st.site_deps ix st;
      let vs = List.map (eval st) args in
      let site = Hashtbl.find st.sites ix in
      (if site.v_make then begin
         (match vs with
         | lenv :: initv ->
             let cand =
               match lenv.ints with
               | IConsts [ k ]
                 when (not lenv.other) && (not lenv.top) && IntSet.is_empty lenv.clos
                      && IntSet.is_empty lenv.vecs ->
                   LKnown k
               | _ -> LVar
             in
             len_merge st ix cand;
             List.iter (elem_join st ix) (if initv = [] then [ av_int 0 ] else initv)
         | [] -> len_merge st ix LVar)
       end
       else begin
         len_merge st ix (LKnown (List.length args));
         List.iter (elem_join st ix) vs
       end);
      av_vec ix
  | KApp (op, args) -> (
      match op.n_kind with
      | KPrim name ->
          let vs = List.map (eval st) args in
          prim_transfer st name args vs
      | _ ->
          let fv = eval st op in
          let vs = List.map (eval st) args in
          apply st fv vs)
  | KProvide uids ->
      List.iter
        (fun uid ->
          if Hashtbl.mem st.bound uid then escape_value st (store_get st uid))
        uids;
      av_other
  | KOpaque children ->
      List.iter (fun c -> escape_value st (eval st c)) children;
      av_top
  | KSkip -> av_other

and eval_body st body =
  match body with
  | [] -> av_other
  | _ ->
      let rec go = function
        | [ last ] -> eval st last
        | n :: rest ->
            ignore (eval st n);
            go rest
        | [] -> av_other
      in
      go body

and apply st (fv : aval) (arg_vs : aval list) : aval =
  let nargs = List.length arg_vs in
  let result = ref av_bot in
  IntSet.iter
    (fun ix ->
      add_dep st.lam_deps ix st;
      let l = Hashtbl.find st.lams ix in
      let compatible =
        if l.l_rest then nargs >= l.l_arity else nargs = l.l_arity
      in
      if compatible then begin
        let rec bind params vs =
          match (params, vs) with
          | [ rest_p ], vs when l.l_rest ->
              (* the rest parameter holds a fresh list: its elements are
                 reachable via car/cdr, which are untracked — escape them *)
              List.iter (escape_value st) vs;
              store_join st rest_p av_other
          | p :: ps, v :: rest ->
              store_join st p v;
              bind ps rest
          | p :: ps, [] ->
              store_join st p av_other;
              bind ps []
          | [], _ -> ()
        in
        bind l.l_params arg_vs;
        result := join !result l.l_ret
      end)
    fv.clos;
  if fv.top || fv.other then begin
    (* unknown callee: the arguments reach unseen code *)
    List.iter (escape_value st) arg_vs;
    result := join !result av_top
  end;
  !result

and prim_transfer st name (args : node list) (vs : aval list) : aval =
  ignore args;
  match (name, vs) with
  | ("+" | "-" | "*"), [ a; b ] ->
      let pure_int v =
        (not v.other) && (not v.top) && IntSet.is_empty v.clos && IntSet.is_empty v.vecs
      in
      if pure_int a && pure_int b then { av_bot with ints = arith_aint name a.ints b.ints }
      else { av_bot with ints = ITop; other = true }
  | ("+" | "-" | "*"), _ -> { av_bot with ints = ITop; other = true }
  | "add1", [ a ] -> prim_transfer st "+" [] [ a; av_int 1 ]
  | "sub1", [ a ] -> prim_transfer st "-" [] [ a; av_int 1 ]
  | ("vector-length" | "unsafe-vector-length"), [ v ] ->
      if v.top || v.other then { av_bot with ints = INonNeg }
      else if IntSet.is_empty v.vecs then
        (* the argument has no values yet (still bottom): stay bottom, or an
           early pessimistic INonNeg would poison the later ILen join *)
        av_bot
      else { av_bot with ints = ILen v.vecs }
  | ("vector-ref" | "unsafe-vector-ref" | "unchecked-vector-ref"), v :: _ ->
      if v.top || v.other then av_top
      else
        IntSet.fold
          (fun ix acc ->
            add_dep st.site_deps ix st;
            join acc (Hashtbl.find st.sites ix).v_elem)
          v.vecs av_bot
  | ("vector-set!" | "unsafe-vector-set!" | "unchecked-vector-set!"), [ v; _; x ] ->
      if v.top || v.other then escape_value st x
      else IntSet.iter (fun ix -> elem_join st ix x) v.vecs;
      av_other
  | "values", [ v ] -> v
  | "values", vs ->
      List.iter (escape_value st) vs;
      av_top
  | _ ->
      (* pure numeric / predicate / IO prims: never retain, call, or store
         arguments; may return an integer we no longer track exactly *)
      { av_bot with ints = ITop; other = true }

(* -- stage drivers --------------------------------------------------------- *)

(* read set including lambda bodies (they are evaluated with the form) *)
let full_readset st (form : node) : IntSet.t =
  let acc = ref IntSet.empty in
  let rec go n =
    match n.n_kind with
    | KConst _ | KPrim _ | KExt | KSkip | KProvide _ -> ()
    | KVar uid -> acc := IntSet.add uid !acc
    | KLam ix ->
        let l = Hashtbl.find st.lams ix in
        List.iter go l.l_body;
        List.iter (fun p -> acc := IntSet.add p !acc) l.l_params
    | KIf (a, b, c, _) -> go a; go b; go c
    | KBegin ns | KOpaque ns -> List.iter go ns
    | KSet (_, n) -> go n
    | KApp (f, ns) -> go f; List.iter go ns
    | KAlloc (_, ns) -> List.iter go ns
    | KLet (cls, body) ->
        List.iter (fun (_, rhs) -> go rhs) cls;
        List.iter go body
    | KDefine (_, n) -> go n
  in
  go form;
  !acc

let eval_form st n =
  ignore (eval st n);
  (* exported bindings escape on every pass: re-check after growth (snapshot
     the uids first — escape_value mutates the store mid-iteration) *)
  if st.escape_all then begin
    let uids = Hashtbl.fold (fun uid _ acc -> uid :: acc) st.store [] in
    List.iter (fun uid -> if Hashtbl.mem st.bound uid then escape_value st (store_get st uid)) uids
  end

let run_wide st (forms : Stx.t list) =
  let rec loop graph =
    st.changed <- false;
    List.iter (eval_form st) graph;
    st.sweeps <- st.sweeps + 1;
    if st.changed then
      if st.sweeps >= max_sweeps then raise Out_of_fuel
      else loop (List.map (build st) forms)  (* re-walk syntax: the wide baseline *)
    else graph
  in
  let g0 = List.map (build st) forms in
  st.counted <- true;
  loop g0

let run_sweeps st (graph : node list) =
  let rec loop () =
    st.changed <- false;
    List.iter (eval_form st) graph;
    st.sweeps <- st.sweeps + 1;
    if st.changed then if st.sweeps >= max_sweeps then raise Out_of_fuel else loop ()
  in
  loop ()

let run_lazy st (graph : node list) =
  let forms = Array.of_list graph in
  let readsets = Array.map (full_readset st) forms in
  let last_eval = Array.make (Array.length forms) (-1) in
  let last_aux = Array.make (Array.length forms) (-1) in
  let uid_gen uid = Option.value (Hashtbl.find_opt st.uid_gen uid) ~default:0 in
  let rec loop () =
    st.changed <- false;
    Array.iteri
      (fun i n ->
        let stale =
          last_eval.(i) < 0 || last_aux.(i) <> st.aux_gen
          || IntSet.exists (fun u -> uid_gen u > last_eval.(i)) readsets.(i)
        in
        if stale then begin
          let g0 = st.gen in
          eval_form st n;
          last_eval.(i) <- g0;
          last_aux.(i) <- st.aux_gen
        end
        else Metrics.count "analysis.lazy_skips")
      forms;
    st.sweeps <- st.sweeps + 1;
    if st.changed then if st.sweeps >= max_sweeps then raise Out_of_fuel else loop ()
  in
  loop ()

let run_delta st (graph : node list) =
  let forms = Array.of_list graph in
  let n = Array.length forms in
  let budget = max_sweeps * max 1 n in
  Array.iteri (fun i _ -> st.dirty <- IntSet.add i st.dirty) forms;
  let pops = ref 0 in
  while not (IntSet.is_empty st.dirty) do
    let i = IntSet.min_elt st.dirty in
    st.dirty <- IntSet.remove i st.dirty;
    incr pops;
    if !pops > budget then raise Out_of_fuel;
    st.cur_form <- i;
    (* re-entrancy: changes made while evaluating form i re-enqueue their
       dependents, including i itself, via the touch_* hooks *)
    eval_form st forms.(i);
    st.cur_form <- -1;
    st.sweeps <- !pops
  done

(* -- fact extraction ------------------------------------------------------- *)

let guards_ok st g =
  (not (Hashtbl.mem st.assigned g.g_i)) && not (Hashtbl.mem st.assigned g.g_n)

(* i < len(v) for every vector that can flow to [v] and every int that can
   flow to [i], using either constant knowledge or an active `(< i n)`
   guard tied to the vectors' length *)
let proved_inbounds st (guards : guard list) (vnode : node) (inode : node) : bool =
  let vv = eval st vnode in
  if vv.top || vv.other || IntSet.is_empty vv.vecs then false
  else
    let iv = eval st inode in
    if iv.top || iv.other || (not (IntSet.is_empty iv.clos)) || not (IntSet.is_empty iv.vecs) then
      false
    else
      let min_len =
        IntSet.fold
          (fun ix acc ->
            match ((Hashtbl.find st.sites ix).v_len, acc) with
            | LKnown k, Some m -> Some (min k m)
            | LKnown k, None -> Some k
            | _, _ -> None)
          vv.vecs (Some max_int)
        |> function
        | Some m when m < max_int -> Some m
        | _ -> None
      in
      let const_rule () =
        match (iv.ints, min_len) with
        | IConsts ks, Some len -> List.for_all (fun k -> k >= 0 && k < len) ks
        | _ -> false
      in
      let guard_rule () =
        match inode.n_kind with
        | KVar j when not (Hashtbl.mem st.assigned j) ->
            List.exists
              (fun g ->
                g.g_i = j && guards_ok st g
                && aint_nonneg (store_get st j).ints
                &&
                let nv = store_get st g.g_n in
                (not nv.top)
                &&
                match nv.ints with
                | ILen s ->
                    (* n = length(the one site in s), and v is that site *)
                    IntSet.cardinal s = 1 && IntSet.equal vv.vecs s
                | IConsts ks -> (
                    (* j < n <= max ks <= every possible length of v *)
                    match min_len with
                    | Some len -> ks <> [] && List.for_all (fun k -> k <= len) ks
                    | None -> false)
                | _ -> false)
              guards
        | _ -> false
      in
      const_rule () || guard_rule ()

let extract st (graph : node list) (facts : Facts.t) =
  let rec scan (guards : guard list) (n : node) =
    (match n.n_kind with
    | KApp (op, args) -> (
        match (op.n_kind, args) with
        | KPrim ("vector-ref" | "unsafe-vector-ref" | "unchecked-vector-ref"), [ v; i ] ->
            if proved_inbounds st guards v i then Facts.NodeTbl.replace facts.Facts.ref_inbounds n.n_stx ()
        | KPrim ("vector-set!" | "unsafe-vector-set!" | "unchecked-vector-set!"), [ v; i; _ ] ->
            if proved_inbounds st guards v i then Facts.NodeTbl.replace facts.Facts.set_inbounds n.n_stx ()
        | KPrim _, _ -> ()
        | _, _ -> (
            let fv = eval st op in
            if
              (not fv.top) && (not fv.other)
              && IntSet.is_empty fv.vecs
              && IntSet.cardinal fv.clos = 1
            then
              let l = Hashtbl.find st.lams (IntSet.choose fv.clos) in
              if (not l.l_rest) && l.l_arity = List.length args then
                Facts.NodeTbl.replace facts.Facts.direct n.n_stx
                  {
                    Facts.callee_stx = l.l_stx;
                    callee_name = l.l_name;
                    callee_arity = l.l_arity;
                  }))
    | _ -> ());
    match n.n_kind with
    | KConst _ | KVar _ | KPrim _ | KExt | KSkip | KProvide _ -> ()
    | KLam ix ->
        (* guards do not cross a lambda boundary: the body runs in an
           unrelated dynamic context *)
        List.iter (scan []) (Hashtbl.find st.lams ix).l_body
    | KIf (c, t, e, g) ->
        scan guards c;
        scan (match g with Some g when guards_ok st g -> g :: guards | _ -> guards) t;
        scan guards e
    | KBegin ns | KOpaque ns -> List.iter (scan guards) ns
    | KSet (_, rhs) -> scan guards rhs
    | KApp (f, ns) ->
        scan guards f;
        List.iter (scan guards) ns
    | KAlloc (_, ns) -> List.iter (scan guards) ns
    | KLet (cls, body) ->
        List.iter (fun (_, rhs) -> scan guards rhs) cls;
        List.iter (scan guards) body
    | KDefine (_, rhs) -> scan guards rhs
  in
  List.iter (scan []) graph;
  (* escape-free, single-use, operator-position-only let-bound lambdas *)
  List.iter
    (fun (uid, ix) ->
      let l = Hashtbl.find st.lams ix in
      let total = Option.value (Hashtbl.find_opt st.refs_total uid) ~default:0 in
      let op = Option.value (Hashtbl.find_opt st.refs_op uid) ~default:0 in
      if
        (not l.l_escapes) && (not l.l_rest) && total = 1 && op = 1
        && not (Hashtbl.mem st.assigned uid)
      then Facts.NodeTbl.replace facts.Facts.unboxable l.l_stx ())
    st.let_lams

(* -- entry point ----------------------------------------------------------- *)

let analyze_module ?stage (forms : Stx.t list) : Facts.t =
  let stage = Option.value stage ~default:!default_stage in
  Trace.span "analyze" @@ fun () ->
  Metrics.time "phase.analyze" @@ fun () ->
  let st = init_state () in
  let facts = Facts.create () in
  facts.Facts.stage <- stage_name stage;
  List.iter (collect_binders st) forms;
  (try
     let graph =
       match stage with
       | Wide -> run_wide st forms
       | Compiled | Lazy | Delta ->
           let g = List.map (build st) forms in
           st.counted <- true;
           (match stage with
           | Compiled -> run_sweeps st g
           | Lazy -> run_lazy st g
           | Delta -> run_delta st g
           | Wide -> assert false);
           g
     in
     extract st graph facts
   with Out_of_fuel ->
     (* degrade to "nothing proved": wipe any partial tables *)
     Facts.NodeTbl.reset facts.Facts.direct;
     Facts.NodeTbl.reset facts.Facts.ref_inbounds;
     Facts.NodeTbl.reset facts.Facts.set_inbounds;
     Facts.NodeTbl.reset facts.Facts.unboxable;
     facts.Facts.exhausted <- true;
     Metrics.count "analysis.fuel_exhausted");
  facts.Facts.call_sites <- st.call_sites;
  facts.Facts.lambdas <- st.next_lam;
  facts.Facts.vec_sites <- st.next_site;
  facts.Facts.sweeps <- st.sweeps;
  facts.Facts.transfers <- st.transfers;
  facts.Facts.escaping <-
    Hashtbl.fold (fun _ l acc -> if l.l_escapes then acc + 1 else acc) st.lams 0;
  Metrics.count "analysis.modules";
  Metrics.countn "analysis.call_sites" facts.Facts.call_sites;
  Metrics.countn "analysis.direct_call_sites" (Facts.NodeTbl.length facts.Facts.direct);
  Metrics.countn "analysis.lambdas" facts.Facts.lambdas;
  Metrics.countn "analysis.escaping_lambdas" facts.Facts.escaping;
  Metrics.countn "analysis.unboxable_closures" (Facts.NodeTbl.length facts.Facts.unboxable);
  Metrics.countn "analysis.vector_sites" facts.Facts.vec_sites;
  Metrics.countn "analysis.inbounds_refs" (Facts.NodeTbl.length facts.Facts.ref_inbounds);
  Metrics.countn "analysis.inbounds_sets" (Facts.NodeTbl.length facts.Facts.set_inbounds);
  Metrics.countn "analysis.sweeps" facts.Facts.sweeps;
  Metrics.countn "analysis.transfers" facts.Facts.transfers;
  facts
