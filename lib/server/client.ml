(** Client side of the compile-server protocol: connect to a daemon's
    Unix-domain socket, send one request frame, read one response frame.
    Used by [liblang client] and [liblang run/compile --via-server], and
    by the bench harness's [--serve] series.  Paths in requests should be
    absolute (the daemon resolves relative paths against {e its} working
    directory, not the client's) — {!Liblang_compiled.Resolver.module_key}
    canonicalizes on the client side. *)

module Json = Liblang_observe.Json
module P = Protocol

type t = { fd : Unix.file_descr; mutable next_id : int }

(** Connect to the daemon at [path].  [retries] (default 0) retries at
    50 ms intervals — for callers that just started the daemon and race
    its bind. *)
let connect ?(retries = 0) (path : string) : (t, string) result =
  (* a daemon that died mid-conversation must surface as an error result
     on the next send, not as a SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; next_id = 1 }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n > 0 then begin
          Unix.sleepf 0.05;
          go (n - 1)
        end
        else
          Error
            (Printf.sprintf "cannot connect to server at %s: %s" path
               (Unix.error_message e))
  in
  go retries

let close (t : t) : unit = try Unix.close t.fd with Unix.Unix_error _ -> ()

(** Send [req] and wait for its response object. *)
let request (t : t) (req : P.request) : (Json.t, string) result =
  let id = t.next_id in
  t.next_id <- id + 1;
  match P.write_frame t.fd (P.request_to_json ~id:(Json.Num (float_of_int id)) req) with
  | exception Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)
  | () -> (
      match P.read_frame t.fd with
      | P.Frame j -> Ok j
      | P.Eof -> Error "server closed the connection"
      | P.Malformed m -> Error ("malformed response: " ^ m))

(* -- response accessors ------------------------------------------------------- *)

let ok_of (j : Json.t) : bool =
  match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

let exit_of (j : Json.t) : int =
  match Option.bind (Json.member "exit" j) Json.to_num with
  | Some f -> int_of_float f
  | None -> 2

let output_of (j : Json.t) : string =
  match Option.bind (Json.member "output" j) Json.to_str with Some s -> s | None -> ""

let error_of (j : Json.t) : string option =
  Option.bind (Json.member "error" j) Json.to_str

let rendered_of (j : Json.t) : string option =
  Option.bind (Json.member "rendered" j) Json.to_str

(** The [n]-named count out of the response's [summary] object; [-1] when
    absent (callers treat that as "unknown", never as zero). *)
let summary_count (j : Json.t) (n : string) : int =
  match
    Option.bind (Json.member "summary" j) (fun s ->
        Option.bind (Json.member n s) Json.to_num)
  with
  | Some f -> int_of_float f
  | None -> -1
