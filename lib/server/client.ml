(** Client side of the compile-server protocol: connect to a daemon's
    Unix-domain socket, send request frames, read response frames.
    Used by [liblang client] and [liblang run/compile --via-server], and
    by the bench harness's [--serve] series.  Paths in requests should be
    absolute (the daemon resolves relative paths against {e its} working
    directory, not the client's) — {!Liblang_compiled.Resolver.module_key}
    canonicalizes on the client side.

    Two usage shapes:

    - {!request} — the simple synchronous call: send one frame, block for
      one frame.  Correct only while nothing else is in flight.
    - {!send} / {!recv} — pipelining: queue several requests on the
      connection, then read responses as the daemon produces them.
      Responses carry the request's [id] verbatim ({!id_of}); session ops
      answer in arrival order, but control ops ([status], [cancel]) may
      overtake them, so a pipelining caller must correlate by id, not by
      position.  See docs/server.md#pipelining. *)

module Json = Liblang_observe.Json
module P = Protocol

type t = { fd : Unix.file_descr; mutable next_id : int }

(** Connect to the daemon at [path].  [retries] (default 0) retries with
    capped exponential backoff — 5 ms doubling to a 200 ms ceiling, each
    sleep scaled by deterministic jitter in [0.5, 1.0) derived from
    [(pid, attempt)] — for callers that just started the daemon and race
    its bind.  Backoff keeps a herd of bench clients from hammering the
    socket in lockstep; determinism keeps test timings reproducible. *)
let connect ?(retries = 0) (path : string) : (t, string) result =
  (* a daemon that died mid-conversation must surface as an error result
     on the next send, not as a SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let backoff attempt =
    let base = Float.min 0.2 (0.005 *. Float.of_int (1 lsl min attempt 16)) in
    (* splitmix-flavored hash of (pid, attempt): deterministic per process
       and per attempt, decorrelated across processes *)
    let h = (Unix.getpid () * 0x9E3779B1) lxor ((attempt + 1) * 0x85EBCA77) in
    let h = h lxor (h lsr 15) in
    let h = h * 0x2C1B3C6D in
    let u = Float.of_int (h land 0xFFFF) /. 65536.0 in
    base *. (0.5 +. (0.5 *. u))
  in
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; next_id = 1 }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if attempt < retries then begin
          Unix.sleepf (backoff attempt);
          go (attempt + 1)
        end
        else
          Error
            (Printf.sprintf "cannot connect to server at %s: %s" path
               (Unix.error_message e))
  in
  go 0

let close (t : t) : unit = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* -- pipelining --------------------------------------------------------------- *)

(** Send [req] without waiting; returns the [id] the response will echo.
    Pair with {!recv}. *)
let send (t : t) (req : P.request) : (Json.t, string) result =
  let id = Json.Num (float_of_int t.next_id) in
  t.next_id <- t.next_id + 1;
  match P.write_frame t.fd (P.request_to_json ~id req) with
  | () -> Ok id
  | exception Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)

(** Send [req] under a caller-chosen [id] (echoed verbatim — any JSON
    value).  The caller owns uniqueness among its in-flight ids. *)
let send_with_id (t : t) ~(id : Json.t) (req : P.request) : (unit, string) result =
  match P.write_frame t.fd (P.request_to_json ~id req) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)

(** Read the next response frame, whichever request it answers. *)
let recv (t : t) : (Json.t, string) result =
  match P.read_frame t.fd with
  | P.Frame j -> Ok j
  | P.Eof -> Error "server closed the connection"
  | P.Malformed m -> Error ("malformed response: " ^ m)

(** Send [req] and wait for its response object (no pipelining: blocks for
    the next frame, which is [req]'s answer only if nothing else is in
    flight). *)
let request (t : t) (req : P.request) : (Json.t, string) result =
  match send t req with Error e -> Error e | Ok _ -> recv t

(* -- response accessors ------------------------------------------------------- *)

(** The echoed request id ([Json.Null] when the request carried none). *)
let id_of (j : Json.t) : Json.t = Option.value ~default:Json.Null (Json.member "id" j)

let ok_of (j : Json.t) : bool =
  match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

let exit_of (j : Json.t) : int =
  match Option.bind (Json.member "exit" j) Json.to_num with
  | Some f -> int_of_float f
  | None -> 2

let output_of (j : Json.t) : string =
  match Option.bind (Json.member "output" j) Json.to_str with Some s -> s | None -> ""

let error_of (j : Json.t) : string option =
  Option.bind (Json.member "error" j) Json.to_str

let rendered_of (j : Json.t) : string option =
  Option.bind (Json.member "rendered" j) Json.to_str

(** The [n]-named count out of the response's [summary] object; [-1] when
    absent (callers treat that as "unknown", never as zero). *)
let summary_count (j : Json.t) (n : string) : int =
  match
    Option.bind (Json.member "summary" j) (fun s ->
        Option.bind (Json.member n s) Json.to_num)
  with
  | Some f -> int_of_float f
  | None -> -1
