(** The compile-server daemon behind [liblang serve].

    A single-threaded {!Unix.select} loop over a Unix-domain socket:
    clients connect, speak the length-prefixed NDJSON protocol
    ({!Protocol}, spec in docs/server.md), and the daemon serves
    [compile]/[run]/[expand]/[status]/[shutdown] requests one at a time.
    What makes warm requests fast is everything the process keeps hot
    between them: the interned symbol and scope-set tables, one persistent
    artifact {!Liblang_compiled.Store.t}, and per-session module
    registries and resolver memos ({!Session}).  Before each
    compile/run/expand the resolver's incremental invalidation
    ({!Liblang_compiled.Resolver.invalidate_changed}) drops exactly the
    modules whose files changed on disk — plus their dependent cone — so
    an unchanged project compiles nothing and a one-leaf edit recompiles
    one cone.

    Robustness: the loop never dies for a session's sake.  A malformed
    frame, a request that raises, or an injected [server.session] fault
    costs that client (an error response, then the connection closes); an
    injected [server.accept] fault costs the incoming connection.  The
    daemon answers the next request either way — the same blast-radius
    discipline as the parallel build's worker supervision
    (docs/robustness.md). *)

module Core = Liblang_core.Core
module Pipeline = Liblang_core.Pipeline
module Compiled = Core.Compiled
module Modsys = Core.Modsys
module Interp = Core.Interp
module Prims = Core.Prims
module Diagnostic = Core.Diagnostic
module Json = Core.Json
module Metrics = Core.Metrics
module Trace = Core.Trace
module Observe = Core.Observe
module Fault = Core.Fault
module P = Protocol

let default_socket = ".liblang-server.sock"

type config = {
  socket_path : string;
  cache_dir : string;  (** root of the daemon's persistent artifact store *)
  default_jobs : int;  (** worker domains for [compile] requests that don't say *)
  fuel : int option;  (** default evaluation-step budget for [run] requests *)
  engine : Pipeline.engine;  (** evaluation backend for [run] requests *)
}

type conn = { fd : Unix.file_descr; session : Session.t }

type t = {
  cfg : config;
  listener : Unix.file_descr;
  store : Compiled.Store.t;
  metrics : Metrics.t;  (** daemon-lifetime counters (status, at-exit report) *)
  started : float;
  mutable conns : conn list;
  mutable sessions_total : int;
  mutable stopping : bool;
}

(* -- request handlers --------------------------------------------------------- *)

let num n = Json.Num (float_of_int n)

(* The per-request compile summary, computed exactly as the CLI's
   [compiled ...] line: modules touched = compiles + session hits. *)
let summary_field (c : Metrics.t) : string * Json.t =
  let g = Metrics.get c in
  ( "summary",
    Json.Obj
      [
        ("modules", num (g "module.compiles" + g "module.cache_hits"));
        ("hits", num (g "module.cache_hits"));
        ("compiles", num (g "module.compiles"));
        ("stale", num (g "cache.stale"));
        ("misses", num (g "cache.misses"));
      ] )

(* Failure fields shared by every op: a one-line [error], the structured
   [diagnostics] array, and the CLI's full [rendered] report (no color —
   the client's terminal does its own styling decisions). *)
let failure_fields (ds : Diagnostic.t list) : int * (string * Json.t) list =
  let exit = if List.exists Diagnostic.is_internal ds then 2 else 1 in
  let one (d : Diagnostic.t) =
    Json.Obj
      [
        ("severity", Json.Str (Diagnostic.severity_name d.Diagnostic.severity));
        ("phase", Json.Str (Diagnostic.phase_name d.Diagnostic.phase));
        ("message", Json.Str d.Diagnostic.message);
      ]
  in
  ( exit,
    [
      ( "error",
        Json.Str
          (match ds with d :: _ -> d.Diagnostic.message | [] -> "request failed") );
      ("diagnostics", Json.Arr (List.map one ds));
      ("rendered", Json.Str (Pipeline.render_errors ~color:false ds));
    ] )

(* Run [f] in the request's environment: the connection's session state,
   the daemon's artifact store, and — first — incremental invalidation of
   any session-loaded module whose file changed on disk since it was
   loaded (the dirty cone recompiles; everything else stays warm). *)
let in_request_env (srv : t) (conn : conn) (f : unit -> 'a) : 'a =
  Session.enter conn.session @@ fun () ->
  Compiled.Store.with_store (Some srv.store) @@ fun () ->
  let dropped = Compiled.Resolver.invalidate_changed () in
  if dropped > 0 then begin
    Metrics.countn "server.invalidated" dropped;
    Trace.event "server-invalidated"
      [
        ("sid", string_of_int conn.session.Session.sid);
        ("modules", string_of_int dropped);
      ]
  end;
  f ()

let handle (srv : t) (conn : conn) (env : P.envelope) : Json.t =
  let id = env.P.id and op = P.op_name env.P.req in
  let respond_result (c : Metrics.t) ok_fields = function
    | Ok () ->
        Metrics.merge ~into:srv.metrics c;
        P.response ~id ~op ~ok:true ~exit:0 ~fields:(ok_fields ()) ()
    | Error ds ->
        Metrics.merge ~into:srv.metrics c;
        Metrics.count "server.errors";
        let exit, fields = failure_fields ds in
        P.response ~id ~op ~ok:false ~exit ~fields ()
  in
  match env.P.req with
  | P.Compile { path; jobs } ->
      let jobs = match jobs with Some j -> j | None -> srv.cfg.default_jobs in
      let c = Metrics.create () in
      let observe = { Observe.metrics = Some c; trace = Trace.current () } in
      let r =
        in_request_env srv conn (fun () ->
            Pipeline.compile_file ?fuel:srv.cfg.fuel ~jobs ~observe path)
      in
      respond_result c (fun () -> [ summary_field c ]) r
  | P.Run { path; fuel } ->
      let fuel = match fuel with Some _ as f -> f | None -> srv.cfg.fuel in
      let c = Metrics.create () in
      let observe = { Observe.metrics = Some c; trace = Trace.current () } in
      (* Replicates the CLI's cached run: compile through the resolver
         (store-aware), alias under the basename so in-session requires by
         module name keep working, then instantiate.  [reset_instantiated]
         first: a warm session has already run this cone, and running a
         program twice must print twice. *)
      let output, r =
        Prims.with_captured_output (fun () ->
            in_request_env srv conn (fun () ->
                Observe.with_ctx observe (fun () ->
                    Pipeline.with_stx_counters @@ fun () ->
                    Trace.span "run" ~detail:path (fun () ->
                        Pipeline.contain ?fuel (fun () ->
                            Pipeline.with_engine srv.cfg.engine @@ fun () ->
                            let m = Compiled.compile_file path in
                            Modsys.alias m
                              (Filename.remove_extension (Filename.basename path));
                            Interp.fuel :=
                              (match fuel with Some n -> n | None -> Interp.unlimited);
                            Modsys.reset_instantiated m;
                            Modsys.instantiate m)))))
      in
      let output_field = ("output", Json.Str output) in
      (match r with
      | Ok () ->
          Metrics.merge ~into:srv.metrics c;
          P.response ~id ~op ~ok:true ~exit:0
            ~fields:[ output_field; summary_field c ]
            ()
      | Error ds ->
          Metrics.merge ~into:srv.metrics c;
          Metrics.count "server.errors";
          let exit, fields = failure_fields ds in
          (* partial output printed before the failure still belongs to
             the client *)
          P.response ~id ~op ~ok:false ~exit ~fields:(output_field :: fields) ())
  | P.Expand { path } ->
      let c = Metrics.create () in
      let observe = { Observe.metrics = Some c; trace = Trace.current () } in
      let r =
        in_request_env srv conn (fun () ->
            match Pipeline.slurp path with
            | exception Sys_error m ->
                Error
                  [
                    Diagnostic.error ~phase:Diagnostic.Module
                      ("cannot read file: " ^ m);
                  ]
            | source ->
                (* relative requires in the expanded module resolve
                   against the file's own directory, as under run *)
                Compiled.with_source_dir path (fun () ->
                    Pipeline.expand ?fuel:srv.cfg.fuel
                      ~name:(Filename.remove_extension (Filename.basename path))
                      ~observe source))
      in
      (match r with
      | Ok forms ->
          Metrics.merge ~into:srv.metrics c;
          P.response ~id ~op ~ok:true ~exit:0
            ~fields:
              [ ("output", Json.Str (String.concat "" (List.map (fun f -> f ^ "\n") forms))) ]
            ()
      | Error ds ->
          Metrics.merge ~into:srv.metrics c;
          Metrics.count "server.errors";
          let exit, fields = failure_fields ds in
          P.response ~id ~op ~ok:false ~exit ~fields ())
  | P.Analyze { path; stage } -> (
      let c = Metrics.create () in
      let observe = { Observe.metrics = Some c; trace = Trace.current () } in
      let stage =
        match stage with
        | None -> Ok None
        | Some s -> (
            match Liblang_core.Core.Zcfa.stage_of_string s with
            | Some st -> Ok (Some st)
            | None ->
                Error
                  [
                    Diagnostic.error ~phase:Diagnostic.Module
                      (Printf.sprintf "analyze: unknown stage %S (wide, compiled, lazy, delta)" s);
                  ])
      in
      let r =
        match stage with
        | Error ds -> Error ds
        | Ok stage ->
            in_request_env srv conn (fun () ->
                match Pipeline.slurp path with
                | exception Sys_error m ->
                    Error
                      [
                        Diagnostic.error ~phase:Diagnostic.Module
                          ("cannot read file: " ^ m);
                      ]
                | source ->
                    Compiled.with_source_dir path (fun () ->
                        Pipeline.analyze ?fuel:srv.cfg.fuel ?stage
                          ~name:(Filename.remove_extension (Filename.basename path))
                          ~observe source))
      in
      match r with
      | Ok lines ->
          Metrics.merge ~into:srv.metrics c;
          P.response ~id ~op ~ok:true ~exit:0
            ~fields:
              [ ("output", Json.Str (String.concat "" (List.map (fun l -> l ^ "\n") lines))) ]
            ()
      | Error ds ->
          Metrics.merge ~into:srv.metrics c;
          Metrics.count "server.errors";
          let exit, fields = failure_fields ds in
          P.response ~id ~op ~ok:false ~exit ~fields ())
  | P.Status ->
      let g = Metrics.get srv.metrics in
      P.response ~id ~op ~ok:true ~exit:0
        ~fields:
          [
            ( "status",
              Json.Obj
                [
                  ("pid", num (Unix.getpid ()));
                  ("uptime_ms", Json.Num (1000.0 *. (Unix.gettimeofday () -. srv.started)));
                  ("socket", Json.Str srv.cfg.socket_path);
                  ("cache_dir", Json.Str srv.cfg.cache_dir);
                  ("engine", Json.Str (Pipeline.engine_to_string srv.cfg.engine));
                  ("active_sessions", num (List.length srv.conns));
                  ("sessions", num srv.sessions_total);
                  ("requests", num (g "server.requests"));
                  ("errors", num (g "server.errors"));
                  ("session_faults", num (g "server.session_faults"));
                  ("accept_faults", num (g "server.accept_faults"));
                  ("invalidated", num (g "server.invalidated"));
                  ("compiles", num (g "module.compiles"));
                  ("cache_hits", num (g "module.cache_hits"));
                  ("stat_hits", num (g "module.stat_hits"));
                ] );
          ]
        ()
  | P.Shutdown -> P.response ~id ~op ~ok:true ~exit:0 ()

(* -- the connection loop ------------------------------------------------------ *)

let close_conn (srv : t) (conn : conn) : unit =
  srv.conns <- List.filter (fun c -> c != conn) srv.conns;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Send a response; a client that vanished mid-reply just loses its
   connection (never the daemon). *)
let send (srv : t) (conn : conn) (j : Json.t) : unit =
  match P.write_frame conn.fd j with
  | () -> ()
  | exception Unix.Unix_error _ -> close_conn srv conn

let serve_one (srv : t) (conn : conn) : unit =
  match P.read_frame conn.fd with
  | P.Eof -> close_conn srv conn
  | P.Malformed msg ->
      (* framing is unrecoverable once desynchronized: answer, then close *)
      Metrics.count "server.errors";
      send srv conn
        (P.response ~id:Json.Null ~op:"?" ~ok:false ~exit:64
           ~fields:[ ("error", Json.Str ("protocol error: " ^ msg)) ]
           ());
      close_conn srv conn
  | P.Frame j -> (
      Metrics.count "server.requests";
      conn.session.Session.requests <- conn.session.Session.requests + 1;
      match Fault.check "server.session" with
      | exception Fault.Injected (site, mode) ->
          (* chaos: this session dies, the daemon does not *)
          Metrics.count "server.session_faults";
          Trace.event "server-session-killed"
            [ ("sid", string_of_int conn.session.Session.sid); ("mode", mode) ];
          send srv conn
            (P.response ~id:(P.raw_id j) ~op:(P.raw_op j) ~ok:false ~exit:1
               ~fields:
                 [
                   ( "error",
                     Json.Str
                       (Printf.sprintf "injected fault at %s (%s): session killed"
                          site mode) );
                 ]
               ());
          close_conn srv conn
      | () -> (
          match P.request_of_json j with
          | Error msg ->
              Metrics.count "server.errors";
              send srv conn
                (P.response ~id:(P.raw_id j) ~op:(P.raw_op j) ~ok:false ~exit:64
                   ~fields:[ ("error", Json.Str msg) ]
                   ())
          | Ok env ->
              let reply =
                Metrics.time "server.request" @@ fun () ->
                Trace.span "server-request" ~detail:(P.op_name env.P.req) @@ fun () ->
                try handle srv conn env
                with e ->
                  (* a handler bug is an internal error for this client,
                     never a daemon crash *)
                  Metrics.count "server.errors";
                  P.response ~id:env.P.id ~op:(P.op_name env.P.req) ~ok:false
                    ~exit:2
                    ~fields:
                      [
                        ( "error",
                          Json.Str ("internal error: " ^ Printexc.to_string e) );
                      ]
                    ()
              in
              send srv conn reply;
              if env.P.req = P.Shutdown then srv.stopping <- true))

let accept_one (srv : t) : unit =
  match Unix.accept srv.listener with
  | exception Unix.Unix_error _ -> ()
  | fd, _ -> (
      match Fault.check "server.accept" with
      | () ->
          srv.sessions_total <- srv.sessions_total + 1;
          let session = Session.create () in
          Metrics.count "server.sessions";
          Trace.event "server-accept" [ ("sid", string_of_int session.Session.sid) ];
          srv.conns <- { fd; session } :: srv.conns
      | exception Fault.Injected _ ->
          (* chaos: drop the incoming connection only *)
          Metrics.count "server.accept_faults";
          (try Unix.close fd with Unix.Unix_error _ -> ()))

let rec loop (srv : t) : unit =
  if not srv.stopping then begin
    let fds = srv.listener :: List.map (fun c -> c.fd) srv.conns in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop srv
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if srv.stopping then ()
            else if fd = srv.listener then accept_one srv
            else
              match List.find_opt (fun c -> c.fd = fd) srv.conns with
              | Some conn -> serve_one srv conn
              | None -> () (* closed earlier in this very round *))
          readable;
        loop srv
  end

(* -- lifecycle ---------------------------------------------------------------- *)

(* Bind the listening socket.  A stale socket file from a dead daemon is
   unlinked and rebound; refusing to clobber anything that is not a
   socket keeps a typo'd --socket from deleting a real file. *)
let listen_socket (path : string) : Unix.file_descr =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> failwith (Printf.sprintf "socket path %s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  fd

(** Run the daemon until a [shutdown] request (blocking).  [on_ready] is
    invoked once the socket is bound and listening — before the first
    [accept] — so a caller can print the listening line or release a
    waiting client.  On return the listener and every live connection are
    closed and the socket file is removed.  Raises [Failure] if the
    socket path is unusable. *)
let serve ?(on_ready = fun (_ : t) -> ()) (cfg : config) : unit =
  Core.init ();
  (* a client that disconnects mid-reply must cost its connection (an
     EPIPE on the next write), never the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener = listen_socket cfg.socket_path in
  let srv =
    {
      cfg;
      listener;
      store = Compiled.Store.create ~dir:cfg.cache_dir ();
      metrics = Metrics.create ();
      started = Unix.gettimeofday ();
      conns = [];
      sessions_total = 0;
      stopping = false;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv.listener with Unix.Unix_error _ -> ());
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) srv.conns;
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      on_ready srv;
      Metrics.with_collector srv.metrics (fun () -> loop srv))

(** Daemon-lifetime counters (for the CLI's at-exit report). *)
let metrics (srv : t) : Metrics.t = srv.metrics
