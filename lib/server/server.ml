(** The compile-server daemon behind [liblang serve].

    Two kinds of thread share the work (docs/server.md#concurrency):

    - The {e accept loop} — single-threaded, a {!Unix.select} over the
      listener and every live connection.  It reads frames, answers the
      control ops ([status], [cancel], [shutdown]) inline, and enqueues
      everything else ([compile]/[run]/[expand]/[analyze]) as a job for
      the worker pool.  It never executes a request, so one slow cold
      compile cannot head-of-line-block the protocol.
    - N {e worker domains} — per-worker job queues under one
      mutex/condition, the same shape as the parallel build's pool
      ({!Liblang_compiled.Build}).  Sessions are {e sticky}: each
      connection is sharded onto a home worker at accept and every one
      of its requests executes there.  Stickiness is load-bearing, not a
      convenience — a session's live modules reference domain-private
      state (namespace cells, denotation entries, binding-table growth
      are all [Domain.DLS] with spawn-time snapshots), so a module
      compiled on one domain cannot be instantiated on another.  The
      parallel build solves this by replaying artifacts on the main
      domain; the server solves it by never moving a session between
      domains.  Requests of one session execute serially in arrival
      order; sessions on different workers run concurrently.

    Clients may pipeline: several requests in flight on one connection,
    correlated by the echoed [id].  Responses to session ops come back
    in arrival order; control-op responses are written by the accept
    loop and may overtake them — out-of-order responses on one
    connection are part of the contract.  A [cancel] op sets the target
    job's flag; a queued job dies before executing, a running one aborts
    at its next cooperative checkpoint ({!Liblang_fault.Fault.with_cancel}).

    Session lifecycle: a session's warm state is a cache the daemon may
    drop — idle sessions are evicted LRU after [session_ttl] seconds,
    and [max_sessions] caps how many warm registries exist at once.  An
    evicted session transparently rebuilds from the shared artifact
    store on its next request ([hits=N, compiles=0]).

    Robustness: the loop never dies for a session's sake.  A malformed
    frame, a request that raises, or an injected [server.session] fault
    costs that client; an injected [server.accept] fault costs the
    incoming connection; a worker domain dying ([server.worker]) costs
    exactly the request it held — supervision answers it with exit 2,
    releases the session, spawns a replacement worker, and lets the
    domain die.  The daemon answers the next request either way. *)

module Core = Liblang_core.Core
module Pipeline = Liblang_core.Pipeline
module Compiled = Core.Compiled
module Modsys = Core.Modsys
module Interp = Core.Interp
module Prims = Core.Prims
module Diagnostic = Core.Diagnostic
module Json = Core.Json
module Metrics = Core.Metrics
module Trace = Core.Trace
module Observe = Core.Observe
module Fault = Core.Fault
module Parallel = Liblang_parallel.Parallel
module P = Protocol

let default_socket = ".liblang-server.sock"

type config = {
  socket_path : string;
  cache_dir : string;  (** root of the daemon's persistent artifact store *)
  workers : int;  (** request-dispatch worker domains (clamped to >= 1) *)
  default_jobs : int;  (** build jobs for [compile] requests that don't say *)
  fuel : int option;  (** default evaluation-step budget for [run] requests *)
  engine : Pipeline.engine;  (** evaluation backend for [run] requests *)
  session_ttl : float option;
      (** evict a session's warm state after this many idle seconds *)
  max_sessions : int option;  (** cap on warm session registries (LRU-evicted) *)
}

(** A sensible worker count for interactive use: leave a core for the
    accept loop, never oversubscribe small containers. *)
let default_workers () : int =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

type job_state = Queued | Running | Done

type conn = {
  fd : Unix.file_descr;
  session : Session.t;
  slot : int;  (** home worker index — every request of this session runs there *)
  wmu : Mutex.t;  (** serializes frame writes (accept loop vs workers); guards [open_] *)
  mutable open_ : bool;  (** false once the fd is closed or EPIPE'd — no more writes *)
  (* scheduling state, all guarded by the pool mutex: *)
  mutable busy : bool;  (** a job of this session is eligible or running *)
  mutable lead : job option;  (** the job in the ready queue or running *)
  pending : job Queue.t;  (** arrival-order backlog behind [lead] *)
}

and job = {
  conn_ : conn;
  env : P.envelope;
  enqueued : float;
  cancelled : bool Atomic.t;  (** set by the accept loop's [cancel] op *)
  mutable state : job_state;  (** guarded by the pool mutex *)
}

type pool = {
  mu : Mutex.t;
  nonempty : Condition.t;  (** broadcast: each worker re-checks its own queue *)
  ready : job Queue.t array;
      (** per-worker queues of jobs eligible to run now (at most one per
          session); index = the session's home [slot] *)
  mutable stop : bool;  (** drain what is queued, then exit *)
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  store : Compiled.Store.t;
  metrics : Metrics.t;  (** daemon-lifetime counters (status, at-exit report) *)
  mmu : Mutex.t;
      (** gates every touch of [metrics] ({!Parallel.with_gate}): worker
          domains merge per-request collectors into it concurrently with
          the accept loop's own counts and [status] snapshots *)
  started : float;
  pool : pool;
  mutable domains : unit Domain.t list;  (** live worker domains (pool mutex) *)
  mutable conns : conn list;  (** accept loop only *)
  mutable sessions_total : int;
  mutable stopping : bool;
}

(* Touch the daemon-lifetime collector.  The gate is a real mutex for the
   daemon's whole life (the worker pool holds {!Parallel.enter} open), so
   worker merges, accept-loop counts and status snapshots serialize. *)
let gated (srv : t) (f : unit -> 'a) : 'a = Parallel.with_gate srv.mmu f

let daemon_count (srv : t) (name : string) : unit =
  gated srv (fun () -> Metrics.with_collector srv.metrics (fun () -> Metrics.count name))

(* -- request handlers --------------------------------------------------------- *)

let num n = Json.Num (float_of_int n)

(* The per-request compile summary, computed exactly as the CLI's
   [compiled ...] line: modules touched = compiles + session hits. *)
let summary_field (c : Metrics.t) : string * Json.t =
  let g = Metrics.get c in
  ( "summary",
    Json.Obj
      [
        ("modules", num (g "module.compiles" + g "module.cache_hits"));
        ("hits", num (g "module.cache_hits"));
        ("compiles", num (g "module.compiles"));
        ("stale", num (g "cache.stale"));
        ("misses", num (g "cache.misses"));
      ] )

(* Failure fields shared by every op: a one-line [error], the structured
   [diagnostics] array, and the CLI's full [rendered] report (no color —
   the client's terminal does its own styling decisions). *)
let failure_fields (ds : Diagnostic.t list) : int * (string * Json.t) list =
  let exit = if List.exists Diagnostic.is_internal ds then 2 else 1 in
  let one (d : Diagnostic.t) =
    Json.Obj
      [
        ("severity", Json.Str (Diagnostic.severity_name d.Diagnostic.severity));
        ("phase", Json.Str (Diagnostic.phase_name d.Diagnostic.phase));
        ("message", Json.Str d.Diagnostic.message);
      ]
  in
  ( exit,
    [
      ( "error",
        Json.Str
          (match ds with d :: _ -> d.Diagnostic.message | [] -> "request failed") );
      ("diagnostics", Json.Arr (List.map one ds));
      ("rendered", Json.Str (Pipeline.render_errors ~color:false ds));
    ] )

(* Run [f] in the request's environment: the connection's session state,
   the daemon's artifact store, and — first — incremental invalidation of
   any session-loaded module whose file changed on disk since it was
   loaded (the dirty cone recompiles; everything else stays warm).  Runs
   on whichever worker domain took the job; the per-session serialization
   in the scheduler is what makes that safe. *)
let in_request_env (srv : t) (conn : conn) (f : unit -> 'a) : 'a =
  Session.enter conn.session @@ fun () ->
  Compiled.Store.with_store (Some srv.store) @@ fun () ->
  let dropped = Compiled.Resolver.invalidate_changed () in
  if dropped > 0 then begin
    Metrics.countn "server.invalidated" dropped;
    Trace.event "server-invalidated"
      [
        ("sid", string_of_int conn.session.Session.sid);
        ("modules", string_of_int dropped);
      ]
  end;
  f ()

(* Execute one session op ([compile]/[run]/[expand]/[analyze]).  Runs on
   a worker domain under [Metrics.with_collector c] — every counter below
   lands in the request's private collector, merged into the daemon's
   once, after the response is built.  Control ops never reach here. *)
let handle (srv : t) (conn : conn) (c : Metrics.t) (env : P.envelope) : Json.t =
  let id = env.P.id and op = P.op_name env.P.req in
  let respond_result ok_fields = function
    | Ok () -> P.response ~id ~op ~ok:true ~exit:0 ~fields:(ok_fields ()) ()
    | Error ds ->
        Metrics.count "server.errors";
        let exit, fields = failure_fields ds in
        P.response ~id ~op ~ok:false ~exit ~fields ()
  in
  match env.P.req with
  | P.Compile { path; jobs } ->
      let jobs = match jobs with Some j -> j | None -> srv.cfg.default_jobs in
      let observe = { Observe.metrics = Some c; trace = Trace.current () } in
      let r =
        in_request_env srv conn (fun () ->
            Pipeline.compile_file ?fuel:srv.cfg.fuel ~jobs ~observe path)
      in
      respond_result (fun () -> [ summary_field c ]) r
  | P.Run { path; fuel } ->
      let fuel = match fuel with Some _ as f -> f | None -> srv.cfg.fuel in
      let observe = { Observe.metrics = Some c; trace = Trace.current () } in
      (* Replicates the CLI's cached run: compile through the resolver
         (store-aware), alias under the basename so in-session requires by
         module name keep working, then instantiate.  [reset_instantiated]
         first: a warm session has already run this cone, and running a
         program twice must print twice. *)
      let output, r =
        Prims.with_captured_output (fun () ->
            in_request_env srv conn (fun () ->
                Observe.with_ctx observe (fun () ->
                    Pipeline.with_stx_counters @@ fun () ->
                    Trace.span "run" ~detail:path (fun () ->
                        Pipeline.contain ?fuel (fun () ->
                            Pipeline.with_engine srv.cfg.engine @@ fun () ->
                            let m = Compiled.compile_file path in
                            Modsys.alias m
                              (Filename.remove_extension (Filename.basename path));
                            Interp.fuel ()
                            := (match fuel with Some n -> n | None -> Interp.unlimited);
                            Modsys.reset_instantiated m;
                            Modsys.instantiate m)))))
      in
      let output_field = ("output", Json.Str output) in
      (match r with
      | Ok () ->
          P.response ~id ~op ~ok:true ~exit:0
            ~fields:[ output_field; summary_field c ]
            ()
      | Error ds ->
          Metrics.count "server.errors";
          let exit, fields = failure_fields ds in
          (* partial output printed before the failure still belongs to
             the client *)
          P.response ~id ~op ~ok:false ~exit ~fields:(output_field :: fields) ())
  | P.Expand { path } ->
      let observe = { Observe.metrics = Some c; trace = Trace.current () } in
      let r =
        in_request_env srv conn (fun () ->
            match Pipeline.slurp path with
            | exception Sys_error m ->
                Error
                  [
                    Diagnostic.error ~phase:Diagnostic.Module
                      ("cannot read file: " ^ m);
                  ]
            | source ->
                (* relative requires in the expanded module resolve
                   against the file's own directory, as under run *)
                Compiled.with_source_dir path (fun () ->
                    Pipeline.expand ?fuel:srv.cfg.fuel
                      ~name:(Filename.remove_extension (Filename.basename path))
                      ~observe source))
      in
      (match r with
      | Ok forms ->
          P.response ~id ~op ~ok:true ~exit:0
            ~fields:
              [ ("output", Json.Str (String.concat "" (List.map (fun f -> f ^ "\n") forms))) ]
            ()
      | Error ds ->
          Metrics.count "server.errors";
          let exit, fields = failure_fields ds in
          P.response ~id ~op ~ok:false ~exit ~fields ())
  | P.Analyze { path; stage } -> (
      let observe = { Observe.metrics = Some c; trace = Trace.current () } in
      let stage =
        match stage with
        | None -> Ok None
        | Some s -> (
            match Liblang_core.Core.Zcfa.stage_of_string s with
            | Some st -> Ok (Some st)
            | None ->
                Error
                  [
                    Diagnostic.error ~phase:Diagnostic.Module
                      (Printf.sprintf "analyze: unknown stage %S (wide, compiled, lazy, delta)" s);
                  ])
      in
      let r =
        match stage with
        | Error ds -> Error ds
        | Ok stage ->
            in_request_env srv conn (fun () ->
                match Pipeline.slurp path with
                | exception Sys_error m ->
                    Error
                      [
                        Diagnostic.error ~phase:Diagnostic.Module
                          ("cannot read file: " ^ m);
                      ]
                | source ->
                    Compiled.with_source_dir path (fun () ->
                        Pipeline.analyze ?fuel:srv.cfg.fuel ?stage
                          ~name:(Filename.remove_extension (Filename.basename path))
                          ~observe source))
      in
      match r with
      | Ok lines ->
          P.response ~id ~op ~ok:true ~exit:0
            ~fields:
              [ ("output", Json.Str (String.concat "" (List.map (fun l -> l ^ "\n") lines))) ]
            ()
      | Error ds ->
          Metrics.count "server.errors";
          let exit, fields = failure_fields ds in
          P.response ~id ~op ~ok:false ~exit ~fields ())
  | P.Status | P.Cancel _ | P.Shutdown ->
      (* control ops are answered inline by the accept loop *)
      P.response ~id ~op ~ok:false ~exit:2
        ~fields:[ ("error", Json.Str "internal error: control op dispatched to pool") ]
        ()

(* -- sending (any thread) ------------------------------------------------------ *)

(* Write one response frame.  The connection mutex serializes the accept
   loop's inline replies against worker replies; a client that vanished
   mid-reply just loses its connection (never the daemon, never another
   client's bytes).  Never closes the fd — only the accept loop does
   that, so [select] never sees a closed descriptor. *)
let send (conn : conn) (j : Json.t) : unit =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if conn.open_ then
        match P.write_frame conn.fd j with
        | () -> ()
        | exception Unix.Unix_error _ -> conn.open_ <- false)

(* -- the worker pool ----------------------------------------------------------- *)

(* Release [job]'s session slot: promote the next pending request of the
   same connection into the ready queue, or mark the session idle. *)
let finish_job (srv : t) (job : job) : unit =
  let pool = srv.pool and conn = job.conn_ in
  Mutex.lock pool.mu;
  if job.state <> Done then begin
    job.state <- Done;
    conn.lead <- None;
    match Queue.take_opt conn.pending with
    | Some next ->
        conn.lead <- Some next;
        Queue.push next pool.ready.(conn.slot);
        Condition.broadcast pool.nonempty
    | None -> conn.busy <- false
  end;
  Mutex.unlock pool.mu

(* Execute one job on this worker domain and send its response.  All
   request counters land in a private collector merged into the daemon's
   under the gate — the merge is the only cross-domain touch. *)
let run_job (srv : t) (job : job) : unit =
  (* the [server.worker] fault site: deliberately OUTSIDE the containment
     below — an injected error here kills the worker domain itself, the
     supervision case (docs/robustness.md) *)
  Fault.check "server.worker";
  let conn = job.conn_ in
  let env = job.env in
  let id = env.P.id and op = P.op_name env.P.req in
  let c = Metrics.create () in
  let reply =
    Metrics.with_collector c @@ fun () ->
    Metrics.add_time "server.queued_ms" (Unix.gettimeofday () -. job.enqueued);
    if Atomic.get job.cancelled then begin
      (* cancelled while queued: answer without executing anything *)
      Metrics.count "server.errors";
      Some
        (P.response ~id ~op ~ok:false ~exit:1
           ~fields:[ ("error", Json.Str "request cancelled (while queued)") ]
           ())
    end
    else if not conn.open_ then None (* client vanished; nothing to compute for *)
    else
      Some
        ( Metrics.time "server.request" @@ fun () ->
          Trace.span "server-request" ~detail:op @@ fun () ->
          try
            Fault.with_cancel job.cancelled @@ fun () ->
            Fault.check "server.exec";
            handle srv conn c env
          with
          | Fault.Cancelled ->
              (* cancelled at a checkpoint outside [Pipeline.contain]
                 (inside it, the exception becomes an ordinary
                 "request cancelled" diagnostic with the same exit) *)
              Metrics.count "server.errors";
              P.response ~id ~op ~ok:false ~exit:1
                ~fields:[ ("error", Json.Str "request cancelled") ]
                ()
          | Fault.Injected (site, mode) ->
              Metrics.count "server.errors";
              P.response ~id ~op ~ok:false ~exit:1
                ~fields:
                  [
                    ( "error",
                      Json.Str (Printf.sprintf "injected fault at %s (%s)" site mode) );
                  ]
                ()
          | e ->
              (* a handler bug is an internal error for this client,
                 never a daemon crash *)
              Metrics.count "server.errors";
              P.response ~id ~op ~ok:false ~exit:2
                ~fields:
                  [ ("error", Json.Str ("internal error: " ^ Printexc.to_string e)) ]
                () )
  in
  (match reply with Some r -> send conn r | None -> ());
  gated srv (fun () -> Metrics.merge ~into:srv.metrics c);
  finish_job srv job

(* The worker domain for [slot]: take a job off its own queue, run it,
   repeat until the pool stops and drains.  Supervision: anything escaping
   [run_job]'s containment (an injected [server.worker] fault, stack
   overflow, OOM) kills this domain — the held request is answered with
   exit 2, its session's serialization slot released, and a replacement
   domain spawned {e from the dying domain} before the exception
   re-raises.  Spawning from the dying domain matters: the replacement's
   DLS tables split from this one's, so the slot's sessions keep their
   live modules (namespace cells, denotations) and stay warm across the
   death. *)
let rec worker_loop (srv : t) (slot : int) () : unit =
  Parallel.tune_worker_gc ();
  let pool = srv.pool in
  let rec next () =
    Mutex.lock pool.mu;
    let rec take () =
      match Queue.take_opt pool.ready.(slot) with
      | Some j -> Some j
      | None ->
          if pool.stop then None
          else begin
            Condition.wait pool.nonempty pool.mu;
            take ()
          end
    in
    match take () with
    | None -> Mutex.unlock pool.mu
    | Some job ->
        job.state <- Running;
        Mutex.unlock pool.mu;
        (match run_job srv job with
        | () -> ()
        | exception e -> worker_died srv job slot e);
        next ()
  in
  next ()

and worker_died (srv : t) (job : job) (slot : int) (e : exn) : unit =
  send job.conn_
    (P.response ~id:job.env.P.id ~op:(P.op_name job.env.P.req) ~ok:false ~exit:2
       ~fields:
         [ ("error", Json.Str ("worker domain died: " ^ Printexc.to_string e)) ]
       ());
  finish_job srv job;
  daemon_count srv "server.worker_deaths";
  daemon_count srv "server.errors";
  Trace.event "server-worker-died"
    [ ("slot", string_of_int slot); ("exn", Printexc.to_string e) ];
  let replacement = Domain.spawn (worker_loop srv slot) in
  Mutex.lock srv.pool.mu;
  srv.domains <- replacement :: srv.domains;
  Mutex.unlock srv.pool.mu;
  raise e

(* -- the accept loop ----------------------------------------------------------- *)

let close_conn (srv : t) (conn : conn) : unit =
  srv.conns <- List.filter (fun c -> c != conn) srv.conns;
  Mutex.lock conn.wmu;
  conn.open_ <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.unlock conn.wmu

(* Enqueue a session op for the session's home worker, preserving
   per-session arrival order: the session's lead job sits in the worker's
   ready queue, later arrivals wait in the connection's pending queue
   until [finish_job] promotes them.  Samples the total ready depth into
   [server.queue_depth]. *)
let enqueue (srv : t) (conn : conn) (env : P.envelope) : unit =
  let job =
    {
      conn_ = conn;
      env;
      enqueued = Unix.gettimeofday ();
      cancelled = Atomic.make false;
      state = Queued;
    }
  in
  conn.session.Session.warm <- true;
  let pool = srv.pool in
  Mutex.lock pool.mu;
  if conn.busy then Queue.push job conn.pending
  else begin
    conn.busy <- true;
    conn.lead <- Some job;
    Queue.push job pool.ready.(conn.slot);
    Condition.broadcast pool.nonempty
  end;
  let depth = Array.fold_left (fun n q -> n + Queue.length q) 0 pool.ready in
  Mutex.unlock pool.mu;
  gated srv (fun () ->
      Metrics.with_collector srv.metrics (fun () ->
          Metrics.countn "server.queue_depth" depth))

(* The [cancel] op, inline on the accept loop: find the target id among
   this connection's queued/running jobs (newest first is irrelevant —
   ids are the client's to keep unique) and set its flag.  A queued job
   dies in [run_job] before executing; a running one aborts at its next
   cooperative checkpoint. *)
let cancel_response (srv : t) (conn : conn) (env : P.envelope) (target : Json.t) :
    Json.t =
  let id = env.P.id in
  let pool = srv.pool in
  Mutex.lock pool.mu;
  let candidates =
    (match conn.lead with Some j -> [ j ] | None -> [])
    @ List.of_seq (Queue.to_seq conn.pending)
  in
  let hit =
    List.find_opt (fun j -> j.state <> Done && j.env.P.id = target) candidates
  in
  let state =
    Option.map
      (fun j ->
        Atomic.set j.cancelled true;
        j.state)
      hit
  in
  Mutex.unlock pool.mu;
  match state with
  | Some st ->
      daemon_count srv "server.cancelled";
      Trace.event "server-cancel"
        [
          ("sid", string_of_int conn.session.Session.sid);
          ("state", if st = Running then "inflight" else "queued");
        ];
      P.response ~id ~op:"cancel" ~ok:true ~exit:0
        ~fields:
          [ ("cancelled", Json.Str (if st = Running then "inflight" else "queued")) ]
        ()
  | None ->
      daemon_count srv "server.errors";
      P.response ~id ~op:"cancel" ~ok:false ~exit:1
        ~fields:
          [
            ( "error",
              Json.Str
                "cancel: no queued or in-flight request with that id on this \
                 connection" );
          ]
        ()

(* The [status] op, inline on the accept loop (it must answer even while
   every worker is busy — that responsiveness is what the pipelining test
   observes as an out-of-order response). *)
let status_response (srv : t) (env : P.envelope) : Json.t =
  let pool = srv.pool in
  Mutex.lock pool.mu;
  let depth = Array.fold_left (fun n q -> n + Queue.length q) 0 pool.ready
  and workers = List.length srv.domains
  and sess =
    List.map
      (fun c -> (c.session, c.busy, Queue.length c.pending))
      srv.conns
  in
  Mutex.unlock pool.mu;
  let now = Unix.gettimeofday () in
  gated srv @@ fun () ->
  let g = Metrics.get srv.metrics in
  P.response ~id:env.P.id ~op:"status" ~ok:true ~exit:0
    ~fields:
      [
        ( "status",
          Json.Obj
            [
              ("pid", num (Unix.getpid ()));
              ("uptime_ms", Json.Num (1000.0 *. (now -. srv.started)));
              ("socket", Json.Str srv.cfg.socket_path);
              ("cache_dir", Json.Str srv.cfg.cache_dir);
              ("engine", Json.Str (Pipeline.engine_to_string srv.cfg.engine));
              ("workers", num workers);
              ("queue_depth", num depth);
              ("active_sessions", num (List.length srv.conns));
              ("sessions", num srv.sessions_total);
              ("requests", num (g "server.requests"));
              ("errors", num (g "server.errors"));
              ("session_faults", num (g "server.session_faults"));
              ("accept_faults", num (g "server.accept_faults"));
              ("invalidated", num (g "server.invalidated"));
              ("cancelled", num (g "server.cancelled"));
              ("evictions", num (g "server.evictions"));
              ("worker_deaths", num (g "server.worker_deaths"));
              ("compiles", num (g "module.compiles"));
              ("cache_hits", num (g "module.cache_hits"));
              ("stat_hits", num (g "module.stat_hits"));
              ( "sessions_detail",
                Json.Arr
                  (List.rev_map
                     (fun ((s : Session.t), busy, queued) ->
                       Json.Obj
                         [
                           ("sid", num s.Session.sid);
                           ("requests", num s.Session.requests);
                           ("busy", Json.Bool busy);
                           ("queued", num queued);
                           ("idle_ms", Json.Num (1000.0 *. (now -. s.Session.last_used)));
                           ("warm", Json.Bool s.Session.warm);
                           ("evictions", num s.Session.evictions);
                         ])
                     sess) );
            ] );
      ]
    ()

(* -- session lifecycle --------------------------------------------------------- *)

let evict (srv : t) (reason : string) (conn : conn) : unit =
  Trace.event "server-evicted"
    [
      ("sid", string_of_int conn.session.Session.sid);
      ("reason", reason);
      ("requests", string_of_int conn.session.Session.requests);
    ];
  Session.reset conn.session;
  daemon_count srv "server.evictions"

(* Evict idle sessions: TTL expiry first, then LRU down to the warm-registry
   cap.  Runs on the accept loop between select rounds; the pool mutex
   orders the [busy]/[pending] reads against finishing workers, and a
   session with queued or running work is never touched.  New jobs only
   arrive from this same thread, so a session observed idle stays idle for
   the extent of the sweep. *)
let evict_sessions (srv : t) : unit =
  if srv.cfg.session_ttl <> None || srv.cfg.max_sessions <> None then begin
    let now = Unix.gettimeofday () in
    let idle_warm =
      Mutex.lock srv.pool.mu;
      let vs =
        List.filter
          (fun c ->
            (not c.busy) && Queue.is_empty c.pending && c.session.Session.warm)
          srv.conns
      in
      Mutex.unlock srv.pool.mu;
      vs
    in
    (match srv.cfg.session_ttl with
    | None -> ()
    | Some ttl ->
        List.iter
          (fun c ->
            if now -. c.session.Session.last_used > ttl then evict srv "ttl" c)
          idle_warm);
    match srv.cfg.max_sessions with
    | None -> ()
    | Some cap ->
        let warm =
          List.filter (fun c -> c.session.Session.warm) srv.conns |> List.length
        in
        let excess = warm - max 0 cap in
        if excess > 0 then
          List.filter (fun c -> c.session.Session.warm) idle_warm
          |> List.sort (fun a b ->
                 compare a.session.Session.last_used b.session.Session.last_used)
          |> List.filteri (fun i _ -> i < excess)
          |> List.iter (evict srv "cap")
  end

(* -- frame dispatch ------------------------------------------------------------ *)

let serve_one (srv : t) (conn : conn) : unit =
  match P.read_frame conn.fd with
  | P.Eof -> close_conn srv conn
  | P.Malformed msg ->
      (* framing is unrecoverable once desynchronized: answer, then close *)
      daemon_count srv "server.errors";
      send conn
        (P.response ~id:Json.Null ~op:"?" ~ok:false ~exit:64
           ~fields:[ ("error", Json.Str ("protocol error: " ^ msg)) ]
           ());
      close_conn srv conn
  | P.Frame j -> (
      daemon_count srv "server.requests";
      conn.session.Session.requests <- conn.session.Session.requests + 1;
      Session.touch conn.session;
      match Fault.check "server.session" with
      | exception Fault.Injected (site, mode) ->
          (* chaos: this session dies, the daemon does not *)
          daemon_count srv "server.session_faults";
          Trace.event "server-session-killed"
            [ ("sid", string_of_int conn.session.Session.sid); ("mode", mode) ];
          send conn
            (P.response ~id:(P.raw_id j) ~op:(P.raw_op j) ~ok:false ~exit:1
               ~fields:
                 [
                   ( "error",
                     Json.Str
                       (Printf.sprintf "injected fault at %s (%s): session killed"
                          site mode) );
                 ]
               ());
          close_conn srv conn
      | () -> (
          match P.request_of_json j with
          | Error msg ->
              daemon_count srv "server.errors";
              send conn
                (P.response ~id:(P.raw_id j) ~op:(P.raw_op j) ~ok:false ~exit:64
                   ~fields:[ ("error", Json.Str msg) ]
                   ())
          | Ok env -> (
              (* control ops answer inline (and may therefore overtake
                 queued session ops — the documented out-of-order case);
                 session ops go to the pool in arrival order *)
              match env.P.req with
              | P.Status -> send conn (status_response srv env)
              | P.Cancel { target } ->
                  send conn (cancel_response srv conn env target)
              | P.Shutdown ->
                  send conn
                    (P.response ~id:env.P.id ~op:"shutdown" ~ok:true ~exit:0 ());
                  srv.stopping <- true
              | P.Compile _ | P.Run _ | P.Expand _ | P.Analyze _ ->
                  enqueue srv conn env)))

let accept_one (srv : t) : unit =
  match Unix.accept srv.listener with
  | exception Unix.Unix_error _ -> ()
  | fd, _ -> (
      match Fault.check "server.accept" with
      | () ->
          (* shard the new session onto its home worker round-robin *)
          let slot = srv.sessions_total mod Array.length srv.pool.ready in
          srv.sessions_total <- srv.sessions_total + 1;
          let session = Session.create () in
          daemon_count srv "server.sessions";
          Trace.event "server-accept"
            [
              ("sid", string_of_int session.Session.sid);
              ("slot", string_of_int slot);
            ];
          srv.conns <-
            {
              fd;
              session;
              slot;
              wmu = Mutex.create ();
              open_ = true;
              busy = false;
              lead = None;
              pending = Queue.create ();
            }
            :: srv.conns
      | exception Fault.Injected _ ->
          (* chaos: drop the incoming connection only *)
          daemon_count srv "server.accept_faults";
          (try Unix.close fd with Unix.Unix_error _ -> ()))

(* Select timeout: block forever unless eviction needs a periodic sweep
   (then wake at a fraction of the TTL so expiry is timely even on an
   otherwise-quiet daemon). *)
let select_timeout (cfg : config) : float =
  match cfg.session_ttl with
  | Some ttl -> Float.max 0.02 (Float.min 1.0 (ttl /. 4.0))
  | None -> ( match cfg.max_sessions with Some _ -> 1.0 | None -> -1.0)

let rec loop (srv : t) : unit =
  if not srv.stopping then begin
    (* reap connections a worker marked dead (EPIPE mid-reply) *)
    List.iter
      (fun c -> if not c.open_ then close_conn srv c)
      (List.filter (fun c -> not c.open_) srv.conns);
    evict_sessions srv;
    let fds = srv.listener :: List.map (fun c -> c.fd) srv.conns in
    match Unix.select fds [] [] (select_timeout srv.cfg) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop srv
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if srv.stopping then ()
            else if fd = srv.listener then accept_one srv
            else
              match List.find_opt (fun c -> c.fd = fd) srv.conns with
              | Some conn -> serve_one srv conn
              | None -> () (* closed earlier in this very round *))
          readable;
        loop srv
  end

(* -- lifecycle ---------------------------------------------------------------- *)

(* Bind the listening socket.  A stale socket file from a dead daemon is
   unlinked and rebound; refusing to clobber anything that is not a
   socket keeps a typo'd --socket from deleting a real file. *)
let listen_socket (path : string) : Unix.file_descr =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> failwith (Printf.sprintf "socket path %s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  fd

(* Stop the pool and join every worker domain (including replacements
   spawned by supervision mid-drain): queued jobs all execute and answer
   before the daemon closes any connection. *)
let drain_pool (srv : t) : unit =
  Mutex.lock srv.pool.mu;
  srv.pool.stop <- true;
  Condition.broadcast srv.pool.nonempty;
  Mutex.unlock srv.pool.mu;
  let rec join_all () =
    Mutex.lock srv.pool.mu;
    let ds = srv.domains in
    srv.domains <- [];
    Mutex.unlock srv.pool.mu;
    match ds with
    | [] -> ()
    | ds ->
        List.iter (fun d -> match Domain.join d with () -> () | exception _ -> ()) ds;
        join_all ()
  in
  join_all ()

(** Run the daemon until a [shutdown] request (blocking).  [on_ready] is
    invoked once the socket is bound and listening — before the first
    [accept] — so a caller can print the listening line or release a
    waiting client.  On return the worker pool has drained (every queued
    request answered), the listener and every live connection are closed
    and the socket file is removed.  Raises [Failure] if the socket path
    is unusable. *)
let serve ?(on_ready = fun (_ : t) -> ()) (cfg : config) : unit =
  Core.init ();
  (* a client that disconnects mid-reply must cost its connection (an
     EPIPE on the next write), never the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener = listen_socket cfg.socket_path in
  let workers = max 1 cfg.workers in
  let srv =
    {
      cfg;
      listener;
      store = Compiled.Store.create ~dir:cfg.cache_dir ();
      metrics = Metrics.create ();
      mmu = Mutex.create ();
      started = Unix.gettimeofday ();
      pool =
        {
          mu = Mutex.create ();
          nonempty = Condition.create ();
          ready = Array.init workers (fun _ -> Queue.create ());
          stop = false;
        };
      domains = [];
      conns = [];
      sessions_total = 0;
      stopping = false;
    }
  in
  (* the gate stays open for the daemon's whole life: request workers can
     race each other (and the accept loop) at any moment, so the shared
     intern tables and store locks must stay mutexed throughout *)
  Parallel.with_active @@ fun () ->
  srv.domains <- List.init workers (fun slot -> Domain.spawn (worker_loop srv slot));
  Fun.protect
    ~finally:(fun () ->
      drain_pool srv;
      (try Unix.close srv.listener with Unix.Unix_error _ -> ());
      List.iter (fun c -> close_conn srv c) srv.conns;
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      on_ready srv;
      loop srv)

(** Daemon-lifetime counters (for the CLI's at-exit report). *)
let metrics (srv : t) : Metrics.t = srv.metrics
