(** Per-connection compile-server sessions.

    Each client connection gets its own {e session}: a snapshot of the
    daemon's module registry (aliases shared, declarations copy-on-write
    — {!Liblang_modules.Modsys.fresh_session}), its own resolver memo
    tables (loaded modules and file stats —
    {!Liblang_compiled.Resolver.with_session_tables}) and its own
    compile-time store ({!Liblang_expander.Ct_store.create}, with a
    globally-unique store id so one session's syntax objects can never
    smuggle compile-time state into another's expansion).

    What sessions deliberately {e do} share is the daemon's on-disk
    artifact store: it is content-addressed and digest-validated, so
    cross-session reuse is safe — that sharing is exactly what makes the
    second client's requests compile nothing.  Two sessions declaring
    conflicting module names (say, two different [decl.scm] files) stay
    isolated because each name lands in the session's own registry
    snapshot, never in the daemon's base registry.  See
    docs/server.md#session-isolation.

    {2 Lifecycle}

    A session's warm state (registry, memos, compile-time store) is a
    cache, and the daemon may {!reset} it while the connection stays
    open — the idle-session eviction policy (LRU by {!t.last_used},
    knobs in docs/server.md).  The next request on an evicted session
    transparently rebuilds: the artifact store still holds everything
    the session compiled, so the rebuild is hit-only ([hits=N,
    compiles=0]), never a re-expansion.  Sessions are entered on
    whichever worker domain picked the request up; the server
    serializes requests per session, so [enter] never races itself. *)

module Core = Liblang_core.Core
module Modsys = Core.Modsys
module Ct_store = Core.Ct_store
module Resolver = Liblang_compiled.Resolver

type t = {
  sid : int;  (** daemon-unique session number (traces, status) *)
  mutable modules : Modsys.session;
  loaded : (string, string * Modsys.t) Hashtbl.t;
      (** resolver memo: module key -> (source digest, module) *)
  stats : (string, float * int * string) Hashtbl.t;
      (** resolver stat memo: module key -> (mtime, size, digest) *)
  mutable ct : Ct_store.t;  (** the session's compile-time store *)
  mutable requests : int;  (** requests served on this session *)
  mutable last_used : float;  (** wall-clock time of the last request arrival *)
  mutable warm : bool;
      (** true once a request has run since the last create/reset — only
          warm sessions count against the live-registry cap or are worth
          evicting *)
  mutable evictions : int;  (** times this session's warm state was evicted *)
}

let counter = Atomic.make 0

(** A fresh session snapshotting the current (daemon base) module
    registry.  Cheap: the registry clone shares module records; internals
    tables are copied shallowly per module. *)
let create () : t =
  {
    sid = 1 + Atomic.fetch_and_add counter 1;
    modules = Modsys.fresh_session ();
    loaded = Hashtbl.create 16;
    stats = Hashtbl.create 16;
    ct = Ct_store.create ();
    requests = 0;
    last_used = Unix.gettimeofday ();
    warm = false;
    evictions = 0;
  }

(** Record a request arrival (feeds the LRU eviction clock). *)
let touch (s : t) : unit = s.last_used <- Unix.gettimeofday ()

(** Evict [s]'s warm state: a fresh registry snapshot, empty resolver
    memos, a fresh compile-time store.  The session object (and its
    connection) survives; the next request rebuilds from the shared
    artifact store.  Must only be called while no request of [s] is
    queued or running — the server's accept loop guarantees that. *)
let reset (s : t) : unit =
  s.modules <- Modsys.fresh_session ();
  Hashtbl.reset s.loaded;
  Hashtbl.reset s.stats;
  s.ct <- Ct_store.create ();
  s.warm <- false;
  s.evictions <- s.evictions + 1

(** Run [f] with [s] installed: its module registry, module internals,
    resolver memos and ambient compile-time store replace the domain's for
    the extent of [f].  Mutations persist in [s] for its next request —
    that persistence is the warm state — and nothing leaks into other
    sessions or the daemon's base tables. *)
let enter (s : t) (f : unit -> 'a) : 'a =
  Modsys.with_session s.modules @@ fun () ->
  Resolver.with_session_tables ~loaded:s.loaded ~stats:s.stats @@ fun () ->
  Ct_store.with_store s.ct f
