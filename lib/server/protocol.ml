(** The compile-server wire protocol: length-prefixed NDJSON frames over a
    Unix-domain socket.  The full specification — framing grammar, request
    and response schemas, error-code mapping — lives in docs/server.md;
    this module is the single codec both the daemon ({!Server}) and the
    client ({!Client}) speak.

    {2 Framing}

    One frame is

    {v <LEN> LF <PAYLOAD> LF v}

    where [LEN] is the byte length of [PAYLOAD] in ASCII decimal (at most
    9 digits, payload capped at {!max_frame}) and [PAYLOAD] is a single
    JSON value emitted on one line ({!Liblang_observe.Json} never emits
    newlines un-pretty).  The length prefix gives robust framing; the
    trailing newline keeps a socket dump readable NDJSON.  Anything else —
    a non-digit header, an oversized length, a missing terminator, payload
    that does not parse as JSON — is {!Malformed}; framing cannot be
    resynchronized after that, so the peer closes the connection.

    {2 Exit codes}

    Responses carry the CLI's exit-code convention verbatim: [0] success,
    [1] program diagnostics, [2] internal platform error, [64]
    protocol/usage error (docs/diagnostics.md). *)

module Json = Liblang_observe.Json

(** Payload byte-length cap: 16 MiB. *)
let max_frame = 16 * 1024 * 1024

(* -- framing ------------------------------------------------------------------ *)

(** The encoded bytes of one frame carrying [j]. *)
let encode_frame (j : Json.t) : string =
  let payload = Json.to_string j in
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

(** Write one frame (complete, looping over partial writes). *)
let write_frame (fd : Unix.file_descr) (j : Json.t) : unit =
  let s = encode_frame j in
  let b = Bytes.unsafe_of_string s in
  let rec go pos len =
    if len > 0 then begin
      let n =
        try Unix.write fd b pos len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (pos + n) (len - n)
    end
  in
  go 0 (Bytes.length b)

type frame =
  | Frame of Json.t
  | Eof  (** clean end of stream before any header byte *)
  | Malformed of string  (** framing violation; the connection is unrecoverable *)

(* Read exactly [len] bytes into [buf] at [pos]; false on premature EOF.
   A hard read error (ECONNRESET from a peer that closed without
   draining, and kin) is the same thing as the stream ending. *)
let really_read fd buf pos len : bool =
  let rec go pos len =
    len = 0
    ||
    match Unix.read fd buf pos len with
    | 0 -> false
    | n -> go (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
    | exception Unix.Unix_error _ -> false
  in
  go pos len

(** Read one frame (blocking).  [Eof] only when the stream ends cleanly
    between frames; a stream cut mid-frame is [Malformed]. *)
let read_frame (fd : Unix.file_descr) : frame =
  let byte = Bytes.create 1 in
  let hdr = Buffer.create 12 in
  let rec header () =
    if not (really_read fd byte 0 1) then
      if Buffer.length hdr = 0 then Eof else Malformed "truncated frame header"
    else
      match Bytes.get byte 0 with
      | '\n' ->
          if Buffer.length hdr = 0 then Malformed "empty frame header"
          else body (int_of_string (Buffer.contents hdr))
      | '0' .. '9' when Buffer.length hdr < 9 ->
          Buffer.add_char hdr (Bytes.get byte 0);
          header ()
      | _ -> Malformed "malformed frame header (want DIGITS LF)"
  and body len =
    if len > max_frame then Malformed (Printf.sprintf "frame too large (%d bytes)" len)
    else begin
      let payload = Bytes.create len in
      if not (really_read fd payload 0 len) then Malformed "truncated frame payload"
      else if not (really_read fd byte 0 1) || Bytes.get byte 0 <> '\n' then
        Malformed "missing frame terminator"
      else
        match Json.parse (Bytes.unsafe_to_string payload) with
        | Ok j -> Frame j
        | Error m -> Malformed ("payload is not JSON: " ^ m)
    end
  in
  header ()

(* -- requests ----------------------------------------------------------------- *)

type request =
  | Compile of { path : string; jobs : int option }
      (** compile [path] and its require graph through the store; [jobs]
          worker domains (daemon default when absent) *)
  | Run of { path : string; fuel : int option }
      (** compile, then instantiate; the response carries the program's
          captured output *)
  | Expand of { path : string }  (** fully-expanded core forms as text *)
  | Analyze of { path : string; stage : string option }
      (** 0CFA flow analysis over the expanded core forms; [stage] picks
          the solver stage (wide|compiled|lazy|delta, daemon default when
          absent) *)
  | Status  (** daemon liveness/counters snapshot *)
  | Cancel of { target : Json.t }
      (** abort the queued or in-flight request whose [id] equals
          [target] on this same connection (cooperative — docs/server.md) *)
  | Shutdown  (** acknowledge, then stop the daemon *)

(** A request plus its envelope: [id] is echoed verbatim in the response
    ([Json.Null] when the client sent none). *)
type envelope = { id : Json.t; req : request }

let op_name = function
  | Compile _ -> "compile"
  | Run _ -> "run"
  | Expand _ -> "expand"
  | Analyze _ -> "analyze"
  | Status -> "status"
  | Cancel _ -> "cancel"
  | Shutdown -> "shutdown"

(** The raw [id] / [op] of an unvalidated request object — for error
    responses to requests that fail validation. *)
let raw_id (j : Json.t) : Json.t = Option.value ~default:Json.Null (Json.member "id" j)

let raw_op (j : Json.t) : string =
  match Json.member "op" j with Some (Json.Str s) -> s | _ -> "?"

let request_to_json ?(id = Json.Null) (req : request) : Json.t =
  let base = if id = Json.Null then [] else [ ("id", id) ] in
  let fields =
    match req with
    | Compile { path; jobs } ->
        [ ("op", Json.Str "compile"); ("path", Json.Str path) ]
        @ (match jobs with None -> [] | Some j -> [ ("jobs", Json.Num (float_of_int j)) ])
    | Run { path; fuel } ->
        [ ("op", Json.Str "run"); ("path", Json.Str path) ]
        @ (match fuel with None -> [] | Some f -> [ ("fuel", Json.Num (float_of_int f)) ])
    | Expand { path } -> [ ("op", Json.Str "expand"); ("path", Json.Str path) ]
    | Analyze { path; stage } ->
        [ ("op", Json.Str "analyze"); ("path", Json.Str path) ]
        @ (match stage with None -> [] | Some s -> [ ("stage", Json.Str s) ])
    | Status -> [ ("op", Json.Str "status") ]
    | Cancel { target } -> [ ("op", Json.Str "cancel"); ("target", target) ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
  in
  Json.Obj (base @ fields)

let request_of_json (j : Json.t) : (envelope, string) result =
  match j with
  | Json.Obj _ -> (
      let str k = Option.bind (Json.member k j) Json.to_str in
      let num k = Option.bind (Json.member k j) Json.to_num in
      let with_path op k =
        match str "path" with
        | Some p when p <> "" -> Ok (k p)
        | _ -> Error (op ^ ": missing or empty \"path\"")
      in
      let req =
        match Json.member "op" j with
        | Some (Json.Str op) -> (
            match op with
            | "compile" ->
                let jobs =
                  match num "jobs" with
                  | Some f when f >= 1.0 -> Some (int_of_float f)
                  | _ -> None
                in
                with_path op (fun path -> Compile { path; jobs })
            | "run" ->
                let fuel =
                  match num "fuel" with
                  | Some f when f >= 1.0 -> Some (int_of_float f)
                  | _ -> None
                in
                with_path op (fun path -> Run { path; fuel })
            | "expand" -> with_path op (fun path -> Expand { path })
            | "analyze" ->
                let stage = str "stage" in
                with_path op (fun path -> Analyze { path; stage })
            | "status" -> Ok Status
            | "cancel" -> (
                match Json.member "target" j with
                | Some t when t <> Json.Null -> Ok (Cancel { target = t })
                | _ -> Error "cancel: missing \"target\" (the id of the request to abort)")
            | "shutdown" -> Ok Shutdown
            | _ ->
                Error
                  (Printf.sprintf
                     "unknown op %S (compile, run, expand, analyze, status, cancel, \
                      shutdown)" op))
        | Some _ -> Error "\"op\" must be a string"
        | None -> Error "missing \"op\""
      in
      Result.map (fun req -> { id = raw_id j; req }) req)
  | _ -> Error "request must be a JSON object"

(* -- responses ---------------------------------------------------------------- *)

(** Build a response object: the echoed [id] (omitted when the request had
    none), the [op] it answers, [ok], the CLI-convention [exit] code, and
    any op-specific [fields] ([summary], [output], [status], [error],
    [diagnostics], [rendered] — see docs/server.md). *)
let response ~(id : Json.t) ~(op : string) ~(ok : bool) ~(exit : int)
    ?(fields : (string * Json.t) list = []) () : Json.t =
  Json.Obj
    ((if id = Json.Null then [] else [ ("id", id) ])
    @ [
        ("op", Json.Str op);
        ("ok", Json.Bool ok);
        ("exit", Json.Num (float_of_int exit));
      ]
    @ fields)
