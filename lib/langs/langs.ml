(** Further languages implemented as libraries, demonstrating the breadth of
    the extension API (paper §1–2):

    - [count] — the paper's §2.3 example: a whole-module static semantics
      via [#%module-begin] (prints the number of top-level expressions).
    - [lazy] — a lazy variant of the base language (the paper cites Lazy
      Racket): the [#%app] hook delays arguments to user functions and the
      strict forms force where needed, so a different {e dynamic} semantics
      is a library too.
    - [limited] — a teaching language exposing only a whitelisted subset of
      bindings: a language is just a set of exports. *)

module Stx = Liblang_stx.Stx
module Value = Liblang_runtime.Value
module Interp = Liblang_runtime.Interp
module Expander = Liblang_expander.Expander
module Denote = Liblang_expander.Denote
module Modsys = Liblang_modules.Modsys
module Baselang = Liblang_modules.Baselang

let err msg s = raise (Expander.Expand_error (msg, s))

let u = Baselang.bid
let sl = Stx.list

let native name f = (name, Denote.Native (name, f))

(* -- count (§2.3) ------------------------------------------------------------- *)

(* (define-syntax (#%module-begin stx) ... (printf "Found ~a expressions.") ...) *)
let count_module_begin form =
  match Stx.to_list form with
  | Some (_ :: body) ->
      let n = List.length body in
      sl ~loc:(Stx.loc form)
        ((u "#%plain-module-begin")
        :: sl
             [
               u "printf";
               Stx.str_ "Found ~a expressions.";
               sl [ u "quote"; Stx.int_ n ];
             ]
        :: body)
  | _ -> err "#%module-begin: bad syntax" form

let count_mod, _ =
  Modsys.declare_builtin ~name:"count"
    ~reexports:
      (List.filter_map
         (fun (e : Modsys.export) ->
           if String.equal e.Modsys.ext_name "#%module-begin" then None
           else Some (e.Modsys.ext_name, e.Modsys.binding))
         (Modsys.find "racket").Modsys.exports)
    ~macros:[ native "#%module-begin" count_module_begin ]
    ()

(* -- lazy ------------------------------------------------------------------------ *)

(* Applications of user closures receive promises; primitives force their
   arguments (shallowly).  [if], [display] etc. force through the strict
   base forms below. *)
let force_value (v : Value.value) : Value.value =
  match v with
  | Value.Promise _ -> Interp.apply1 (List.assoc "force" Liblang_runtime.Prims.all) v
  | v -> v

let lazy_apply_prim =
  Value.prim "lazy-apply" (function
    | f :: args -> (
        let f = force_value f in
        match f with
        | Value.Prim _ -> Interp.apply f (List.map force_value args)
        | _ -> Interp.apply f args)
    | [] -> Value.error "lazy-apply: missing function")

let lazy_mod, lid =
  Modsys.declare_builtin ~name:"lazy"
    ~values:[ ("lazy-apply", lazy_apply_prim) ]
    ~reexports:
      (List.filter_map
         (fun (e : Modsys.export) ->
           if List.mem e.Modsys.ext_name [ "#%app"; "if" ] then None
           else Some (e.Modsys.ext_name, e.Modsys.binding))
         (Modsys.find "racket").Modsys.exports)
    ()

(* (#%app f a ...) => (lazy-apply f (delay a) ...) *)
let lazy_app form =
  match Stx.to_list form with
  | Some (_ :: f :: args) ->
      sl ~loc:(Stx.loc form)
        ((lid "lazy-apply") :: f :: List.map (fun a -> sl [ u "delay"; a ]) args)
  | _ -> err "#%app: bad syntax" form

(* strict conditional: force the test *)
let lazy_if form =
  match Stx.to_list form with
  | Some [ _; c; t; e ] ->
      sl ~loc:(Stx.loc form) [ Expander.core_id "if"; sl [ u "force"; c ]; t; e ]
  | _ -> err "if: bad syntax" form

(* (! e) forces explicitly *)
let lazy_force form =
  match Stx.to_list form with
  | Some [ _; e ] -> sl ~loc:(Stx.loc form) [ u "force"; e ]
  | _ -> err "!: bad syntax" form

let () =
  Modsys.add_builtin_exports lazy_mod ~ctx_id:lid
    ~macros:[ native "#%app" lazy_app; native "if" lazy_if; native "!" lazy_force ]
    ()

(* -- limited: a whitelisted teaching language ---------------------------------------- *)

let limited_whitelist =
  [
    "#%module-begin"; "#%app"; "#%datum"; "define"; "lambda"; "if"; "cond"; "else"; "quote";
    "let"; "and"; "or"; "not"; "+"; "-"; "*"; "/"; "="; "<"; ">"; "<="; ">="; "cons"; "car";
    "cdr"; "null?"; "pair?"; "list"; "first"; "rest"; "empty?"; "display"; "displayln"; "newline";
    "equal?"; "begin"; "provide"; "require"; "#%provide"; "#%require"; "#%plain-app";
    "#%plain-lambda"; "define-values"; "let-values"; "letrec-values"; "#%plain-module-begin";
  ]

let limited_mod, _ =
  Modsys.declare_builtin ~name:"limited"
    ~reexports:
      (List.filter_map
         (fun (e : Modsys.export) ->
           if List.mem e.Modsys.ext_name limited_whitelist then
             Some (e.Modsys.ext_name, e.Modsys.binding)
           else None)
         (Modsys.find "racket").Modsys.exports)
    ()

(** Force linking/initialization of the extra languages. *)
let init () = ignore (count_mod, lazy_mod, limited_mod)
