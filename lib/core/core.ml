(** Public facade of the platform: the API a language implementor or
    embedder programs against.

    - [run_string] / [run_file]: declare and run a [#lang] program,
      capturing its output.
    - [eval_expr]: evaluate a single expression in a given language's
      binding environment.
    - [expand_expr_string]: show the core-form expansion of an expression —
      what [local-expand] produces (paper §2.2).

    The underlying layers are re-exported for direct use. *)

module Reader = Liblang_reader.Reader
module Datum = Liblang_reader.Datum
module Srcloc = Liblang_reader.Srcloc
module Diagnostic = Liblang_diagnostics.Diagnostic
module Reporter = Liblang_diagnostics.Reporter
module Sources = Liblang_diagnostics.Sources
module Render = Liblang_diagnostics.Render
module Stx = Liblang_stx.Stx
module Scope = Liblang_stx.Scope
module Binding = Liblang_stx.Binding
module Value = Liblang_runtime.Value
module Numeric = Liblang_runtime.Numeric
module Ast = Liblang_runtime.Ast
module Interp = Liblang_runtime.Interp
module Naive = Liblang_runtime.Naive
module Il = Liblang_backend.Il
module Lower = Liblang_backend.Lower
module Vm = Liblang_backend.Vm
module Prims = Liblang_runtime.Prims
module Expander = Liblang_expander.Expander
module Compile = Liblang_expander.Compile
module Denote = Liblang_expander.Denote
module Ct_store = Liblang_expander.Ct_store
module Syntax_rules = Liblang_expander.Syntax_rules
module Contracts = Liblang_contracts.Contracts
module Modsys = Liblang_modules.Modsys
module Baselang = Liblang_modules.Baselang
module Compiled = Liblang_compiled.Compiled
module Types = Liblang_typed.Types
module Check = Liblang_typed.Check
module Zcfa = Liblang_analysis.Zcfa
module Facts = Liblang_analysis.Facts
module Optimize = Liblang_typed.Optimize
module Boundary = Liblang_typed.Boundary
module Typedlang = Liblang_typed.Typedlang
module Base_env = Liblang_typed.Base_env
module Langs = Liblang_langs.Langs
module Observe = Liblang_observe.Observe
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module Json = Liblang_observe.Json
module Fault = Liblang_fault.Fault

let () =
  Baselang.init ();
  Typedlang.init ();
  Langs.init ();
  Compiled.init ()

(** Force initialization of the platform (registers the builtin languages).
    Call this first when using the aliased sub-modules directly. *)
let init () = ()

let anon_counter = ref 0

let fresh_module_name prefix =
  incr anon_counter;
  Printf.sprintf "%s-%d" prefix !anon_counter

(** Declare and instantiate a module from source text beginning with
    [#lang <language>]; returns everything the program printed. *)
let run_string ?name (source : string) : string =
  let name = match name with Some n -> n | None -> fresh_module_name "program" in
  let output, () =
    Prims.with_captured_output (fun () -> ignore (Modsys.declare_and_run ~name source))
  in
  output

let run_file (path : string) : string =
  let ic = open_in_bin path in
  let source = really_input_string ic (in_channel_length ic) in
  close_in ic;
  run_string ~name:(Filename.basename path) source

(** Declare a module without running it (compile only — type errors in a
    typed module surface here). *)
let declare_string ?name (source : string) : Modsys.t =
  let name = match name with Some n -> n | None -> fresh_module_name "program" in
  Modsys.declare ~name source

(* A scratch lexical context with a language's exports in scope. *)
let in_lang_context ~(lang : string) (f : Scope.Set.t -> 'a) : 'a =
  Expander.reset_limits ();
  Liblang_expander.Ct_store.with_fresh_store (fun () ->
      let sc = Scope.fresh () in
      let scopes = Scope.Set.singleton sc in
      let ctx = Stx.id ~scopes "eval-ctx" in
      let m = Modsys.find lang in
      Modsys.visit m;
      Modsys.bind_exports ~ctx m;
      f scopes)

let read_one_stx ~scopes src =
  match Reader.read_one src with
  | Some d -> Stx.of_datum ~scopes d
  | None -> failwith "empty input"

(** Evaluate one expression in [lang]'s environment ([racket] by default). *)
let eval_expr ?(lang = "racket") (src : string) : Value.value =
  in_lang_context ~lang (fun scopes ->
      let stx = read_one_stx ~scopes src in
      let expanded = Expander.expand_expr stx in
      (* Vm.eval dispatches on the selected engine (interpreter by default) *)
      Vm.eval (Compile.compile_expr expanded))

(** Expand one expression to core forms and render it — the view
    [local-expand] gives a language (§2.2). *)
let expand_expr_string ?(lang = "racket") (src : string) : string =
  in_lang_context ~lang (fun scopes ->
      let stx = read_one_stx ~scopes src in
      Stx.to_string (Expander.expand_expr stx))
