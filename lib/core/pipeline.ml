(** The fault-contained pipeline: compile and run a [#lang] program,
    delivering every failure — reader, expander, typechecker, module
    system, runtime — as a list of {!Diagnostic.t} values instead of a
    zoo of exceptions (and never letting an exception escape).

    - Multiple independent errors are reported in one invocation: the
      reader resynchronizes after a parse error and the typechecker
      continues past a type error, so a file with three bad datums or
      three type errors yields three located diagnostics.
    - Divergent computations are cut off by fuel: macro transformers by
      the expander's step budget, compile-time and runtime evaluation by
      the interpreter's step counter ([?fuel]).
    - Anything unrecognized is wrapped as an [Internal] diagnostic (the
      CLI maps those to exit code 2). *)

module Diagnostic = Liblang_diagnostics.Diagnostic
module Reporter = Liblang_diagnostics.Reporter
module Sources = Liblang_diagnostics.Sources
module Render = Liblang_diagnostics.Render
module Reader = Core.Reader
module Srcloc = Core.Srcloc
module Stx = Core.Stx
module Binding = Liblang_stx.Binding
module Value = Core.Value
module Interp = Core.Interp
module Expander = Core.Expander
module Compile = Core.Compile
module Syntax_rules = Core.Syntax_rules
module Contracts = Core.Contracts
module Modsys = Core.Modsys
module Types = Core.Types
module Check = Core.Check
module Observe = Liblang_observe.Observe
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace

(** Step budget for compile-time evaluation when the caller does not give
    one: generous enough for any sane macro, small enough that a divergent
    phase-1 loop is cut off in well under a second. *)
let default_compile_fuel = 10_000_000

(** Which evaluation backend instantiates modules: the closure-tree
    interpreter (the default) or the bytecode VM ({!Core.Vm}, with
    per-form fallback to the interpreter — see docs/backend.md).  The
    two are observably identical; [Vm] exists for speed and for the
    differential gate that proves the equivalence. *)
type engine = Interp | Vm

let engine_of_string = function
  | "interp" -> Some Interp
  | "vm" -> Some Vm
  | _ -> None

let engine_to_string = function Interp -> "interp" | Vm -> "vm"

(** Run [f] with the chosen engine installed as the module system's
    evaluator (restored after — the setting is per-entry-point, not
    global, so a server can honor a per-request engine). *)
let with_engine (engine : engine) (f : unit -> 'a) : 'a =
  match engine with
  | Interp -> f ()
  | Vm ->
      let saved = !Modsys.evaluator in
      let saved_engine = !Core.Vm.Engine.current in
      Modsys.evaluator := Core.Vm.eval_top;
      Core.Vm.Engine.current := Core.Vm.Engine.Vm;
      Fun.protect
        ~finally:(fun () ->
          Modsys.evaluator := saved;
          Core.Vm.Engine.current := saved_engine)
        f

let in_note (s : Stx.t) = [ Diagnostic.note ("in: " ^ Diagnostic.truncated (Stx.to_string s)) ]

(* The hygiene engine (lib/stx) keeps plain monotonic int counters for its
   hot paths — per-domain resolver cache hits/misses and lazy scope pushes
   — so the expander's inner loop never hashes a metric name.  This wrapper
   flushes the deltas accumulated during [f] into the ambient collector as
   the ["expand.resolve_hits"]/["expand.resolve_misses"]/
   ["stx.scope_pushes"] metrics (plus interning gauges); it is a no-op
   without a collector.

   The bracket is {e reentrant per domain}: pipeline entry points nest
   (e.g. [run_file] over a module whose requires route back through
   [compile_file]-style machinery, or the parallel driver running worker
   tasks inside an outer profiled run), and if both the outer and the inner
   bracket flushed, the inner delta window would land twice in the merged
   [--profile].  Only the outermost bracket of each domain flushes.

   The per-domain deltas (resolver hits/misses) flush on every domain; the
   {e process-wide} gauges (scope pushes, interned symbols / scope sets)
   flush only from the main domain — concurrent worker windows overlap the
   main window, so per-worker deltas of a shared counter would double-
   count. *)
let stx_flush_depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let with_stx_counters (f : unit -> 'a) : 'a =
  if not (Metrics.installed ()) then f ()
  else begin
    let depth = Domain.DLS.get stx_flush_depth_key in
    if !depth > 0 then f () (* nested bracket: let the outermost flush *)
    else begin
      incr depth;
      let h0 = Binding.resolve_hits ()
      and m0 = Binding.resolve_misses ()
      and p0 = !Stx.scope_pushes
      and sy0 = Stx.Symbol.interned_count ()
      and sc0 = Liblang_stx.Scope.Set.interned_count () in
      Fun.protect
        ~finally:(fun () ->
          decr depth;
          Metrics.countn "expand.resolve_hits" (Binding.resolve_hits () - h0);
          Metrics.countn "expand.resolve_misses" (Binding.resolve_misses () - m0);
          if Domain.is_main_domain () then begin
            Metrics.countn "stx.scope_pushes" (!Stx.scope_pushes - p0);
            Metrics.countn "stx.symbols_interned" (Stx.Symbol.interned_count () - sy0);
            Metrics.countn "stx.scope_sets_interned"
              (Liblang_stx.Scope.Set.interned_count () - sc0)
          end)
        f
    end
  end

(** Translate a known pipeline exception to a located diagnostic;
    [None] for foreign exceptions (the caller wraps those as [Internal]). *)
let diagnostic_of_exn : exn -> Diagnostic.t option = function
  | Reader.Error (m, loc) -> Some (Diagnostic.error ~phase:Reader ~loc m)
  | Expander.Expand_error (m, stx) ->
      Some (Diagnostic.error ~phase:Expander ~loc:(Stx.loc stx) m ~notes:(in_note stx))
  | Syntax_rules.Bad_syntax (m, stx) ->
      Some (Diagnostic.error ~phase:Expander ~loc:(Stx.loc stx) m ~notes:(in_note stx))
  | Binding.Ambiguous id ->
      Some
        (Diagnostic.error ~phase:Expander ~loc:(Stx.loc id)
           ("ambiguous identifier: " ^ Stx.to_string id))
  | Compile.Compile_error (m, stx) ->
      Some (Diagnostic.error ~phase:Compile ~loc:(Stx.loc stx) m ~notes:(in_note stx))
  | Modsys.Module_error (m, loc) -> Some (Diagnostic.error ~phase:Module ~loc m)
  | Check.Type_error (m, s) -> Some (Check.diagnostic_of m s)
  | Types.Parse_error (m, loc) ->
      Some (Diagnostic.error ~phase:Typecheck ~loc ("type syntax: " ^ m))
  | Value.Scheme_error m -> Some (Diagnostic.error ~phase:Runtime m)
  | Contracts.Contract_violation { blame; contract; value } ->
      Some
        (Diagnostic.error ~phase:Runtime
           (Printf.sprintf "contract violation: %s, blaming %s" contract blame)
           ~notes:[ Diagnostic.note ("value: " ^ Value.write_string value) ])
  | Interp.Out_of_fuel ->
      Some
        (Diagnostic.error ~phase:Runtime
           "evaluation exhausted its fuel budget (the program probably diverges)")
  | Stack_overflow ->
      Some (Diagnostic.error ~phase:Runtime "stack overflow (runaway non-tail recursion)")
  | Liblang_fault.Fault.Injected (site, mode) ->
      Some
        (Diagnostic.error ~phase:Module
           (Printf.sprintf "injected fault at %s (%s)" site mode))
  | Liblang_fault.Fault.Timeout budget ->
      Some
        (Diagnostic.error ~phase:Module
           (Printf.sprintf "task exceeded its %gs wall-clock deadline" budget))
  | Liblang_fault.Fault.Cancelled ->
      (* the compile server's [cancel] op aborted this request at a
         cooperative checkpoint; exit 1 on the wire, like any ordinary
         diagnostic (docs/server.md) *)
      Some (Diagnostic.error ~phase:Module "request cancelled")
  | _ -> None

(** Run [f] under a fresh reporter with fuel limits armed; every failure
    mode — accumulated diagnostics, a [Diagnostic.Failed] batch, a known
    pipeline exception, or a foreign exception — comes back as [Error]. *)
let contain ?fuel (f : unit -> 'a) : ('a, Diagnostic.t list) result =
  let reporter = Reporter.create () in
  let fuel_cell = Interp.fuel () in
  let saved_fuel = !fuel_cell in
  let finish r =
    fuel_cell := saved_fuel;
    r
  in
  fuel_cell := (match fuel with Some n -> n | None -> default_compile_fuel);
  Expander.reset_limits ();
  let pending () = Reporter.diagnostics reporter in
  match Reporter.with_reporter reporter f with
  | v ->
      finish (if Reporter.has_errors reporter then Error (pending ()) else Ok v)
  | exception Diagnostic.Failed more -> finish (Error (pending () @ more))
  | exception e ->
      let d =
        match diagnostic_of_exn e with
        | Some d -> d
        | None ->
            Diagnostic.error ~phase:Internal
              ("uncaught exception: " ^ Printexc.to_string e)
      in
      finish (Error (pending () @ [ d ]))

let read_module_body ~name source =
  match Reader.split_lang_line source with
  | None ->
      raise
        (Modsys.Module_error
           ( Printf.sprintf "module %s: source must start with #lang <language>" name,
             Srcloc.none ))
  | Some (lang, rest) -> (
      match Reader.read_all_recovering ~file:name rest with
      | datums, [] -> (lang, datums)
      | _, errs ->
          raise
            (Diagnostic.Failed
               (List.map (fun (m, loc) -> Diagnostic.error ~phase:Reader ~loc m) errs)))

(** Compile and instantiate a [#lang] program.  [?fuel] bounds the number
    of evaluation steps (compile-time and runtime); without it, runtime
    evaluation is unbounded and only compile-time evaluation is capped.
    The source is registered with {!Sources} so rendered diagnostics can
    show source-line excerpts.

    [?observe] installs an observability context (metrics collector and/or
    trace sink, see {!Liblang_observe.Observe.ctx}) around the whole run:
    every phase reports per-phase wall time, per-macro expansion counts and
    fuel, optimizer rewrite-rule firings, and module-system activity into
    it.  The default context observes nothing and costs nothing (see
    docs/observability.md). *)
let run ?fuel ?name ?(observe = Observe.nothing) ?(engine = Interp) (source : string) :
    (Value.value, Diagnostic.t list) result =
  Core.init ();
  let name = match name with Some n -> n | None -> Core.fresh_module_name "program" in
  Sources.register ~file:name source;
  Observe.with_ctx observe (fun () ->
      with_stx_counters @@ fun () ->
      Trace.span "run" ~detail:name (fun () ->
          contain ?fuel (fun () ->
              with_engine engine (fun () ->
                  let lang, datums = read_module_body ~name source in
                  let m = Modsys.compile_module ~name ~lang datums in
                  (* compilation done: switch the step counter to the runtime allotment *)
                  Interp.fuel ()
                  := (match fuel with Some n -> n | None -> Interp.unlimited);
                  Modsys.instantiate m;
                  Value.Void))))

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run [f] with an artifact store rooted at [cache_dir] when one is
   requested; otherwise plain. *)
let with_optional_cache (cache_dir : string option) (f : unit -> 'a) : 'a =
  match cache_dir with
  | None -> f ()
  | Some dir -> Core.Compiled.with_cache_dir dir f

(* Raise the failures (and poisoned skips) of a parallel build as one
   [Diagnostic.Failed] batch; no-op when every task built. *)
let raise_build_failures (r : Core.Compiled.Build.result) : unit =
  let ds =
    List.concat_map
      (fun (key, o) ->
        match o with
        | Core.Compiled.Build.Built -> []
        | Core.Compiled.Build.Failed ds -> ds
        | Core.Compiled.Build.Skipped dep ->
            [
              Diagnostic.make ~severity:Diagnostic.Note ~phase:Diagnostic.Module
                (Printf.sprintf "%s not built: its require %s failed" key dep);
            ])
      r.Core.Compiled.Build.outcomes
  in
  if ds <> [] then raise (Diagnostic.Failed ds)

(** Build [paths] — and everything they require — with [jobs] worker
    domains over the artifact store (see {!Liblang_compiled.Build}).
    [jobs = 1] (the default) compiles serially on the calling domain.
    Returns the build result (scheduling stats included) or the combined
    diagnostics of every failed task. *)
let build_files ?fuel ?cache_dir ?(jobs = 1) ?(observe = Observe.nothing)
    (paths : string list) : (Core.Compiled.Build.result, Diagnostic.t list) result =
  Core.init ();
  Observe.with_ctx observe (fun () ->
      with_stx_counters @@ fun () ->
      Trace.span "build" (fun () ->
          contain ?fuel (fun () ->
              with_optional_cache cache_dir (fun () ->
                  let r = Core.Compiled.Build.build ~diagnostic_of_exn ~jobs paths in
                  raise_build_failures r;
                  r))))

(** Compile (without instantiating) the module in [path] and everything it
    requires, through the file resolver — and, when [?cache_dir] is given,
    through the artifact store rooted there (reading valid artifacts instead
    of re-compiling, and persisting fresh ones).  [?jobs > 1] distributes
    the module graph over that many worker domains (see
    {!Liblang_compiled.Build}).  See docs/compilation.md. *)
let compile_file ?fuel ?cache_dir ?(jobs = 1) ?(observe = Observe.nothing) (path : string) :
    (unit, Diagnostic.t list) result =
  if jobs > 1 then
    match build_files ?fuel ?cache_dir ~jobs ~observe [ path ] with
    | Ok _ -> Ok ()
    | Error ds -> Error ds
  else begin
    Core.init ();
    Observe.with_ctx observe (fun () ->
        with_stx_counters @@ fun () ->
        Trace.span "compile" ~detail:path (fun () ->
            contain ?fuel (fun () ->
                with_optional_cache cache_dir (fun () ->
                    ignore (Core.Compiled.compile_file path)))))
  end

let run_file ?fuel ?cache_dir ?(jobs = 1) ?(observe = Observe.nothing) ?(engine = Interp)
    (path : string) : (Value.value, Diagnostic.t list) result =
  match cache_dir with
  | None -> (
      match slurp path with
      | source ->
          (* relative (require "path.scm") forms resolve against the
             file's own directory, exactly as under the cached path *)
          Core.Compiled.with_source_dir path (fun () ->
              run ?fuel ~observe ~engine
                ~name:(Filename.remove_extension (Filename.basename path))
                source)
      | exception Sys_error m ->
          Error [ Diagnostic.error ~phase:Module ("cannot read file: " ^ m) ])
  | Some _ ->
      (* cached runs route through the file resolver: the module is
         registered under its canonical absolute path and may be loaded
         from its artifact instead of compiled.  With [jobs > 1] the
         module graph is first built in parallel (artifacts written by the
         pool), then the main domain acquires the program from the warm
         store and instantiates it serially — instantiation order is the
         language's observable semantics and is never parallelized. *)
      Core.init ();
      Observe.with_ctx observe (fun () ->
      with_stx_counters @@ fun () ->
          Trace.span "run" ~detail:path (fun () ->
              contain ?fuel (fun () ->
                  with_engine engine (fun () ->
                      with_optional_cache cache_dir (fun () ->
                          if jobs > 1 then
                            raise_build_failures
                              (Core.Compiled.Build.build ~diagnostic_of_exn ~jobs [ path ]);
                          let m = Core.Compiled.compile_file path in
                          Interp.fuel ()
                          := (match fuel with Some n -> n | None -> Interp.unlimited);
                          Modsys.instantiate m;
                          Value.Void)))))

(** Expand a module to core forms (each rendered as text). *)
let expand ?fuel ?name ?(observe = Observe.nothing) (source : string) :
    (string list, Diagnostic.t list) result =
  Core.init ();
  let name = match name with Some n -> n | None -> Core.fresh_module_name "program" in
  Sources.register ~file:name source;
  Observe.with_ctx observe (fun () ->
      with_stx_counters @@ fun () ->
      contain ?fuel (fun () ->
          match Reader.split_lang_line source with
          | None -> ignore (read_module_body ~name source); assert false
          | Some _ -> List.map Stx.to_string (Modsys.expand_source ~name source)))

(** Expand a module to core forms and run the 0CFA flow analysis
    ({!Core.Zcfa}) over them, returning the rendered fact report — a
    summary line plus one line per proved fact.  [?stage] selects the
    solver stage ("wide" | "compiled" | "lazy" | "delta", default
    delta); the analysis itself emits [analysis.*] metrics and a
    [phase.analyze] timer into [?observe]. *)
let analyze ?fuel ?name ?stage ?(observe = Observe.nothing) (source : string) :
    (string list, Diagnostic.t list) result =
  Core.init ();
  let name = match name with Some n -> n | None -> Core.fresh_module_name "program" in
  Sources.register ~file:name source;
  Observe.with_ctx observe (fun () ->
      with_stx_counters @@ fun () ->
      contain ?fuel (fun () ->
          match Reader.split_lang_line source with
          | None -> ignore (read_module_body ~name source); assert false
          | Some _ ->
              let forms = Modsys.expand_source ~name source in
              let facts = Core.Zcfa.analyze_module ?stage forms in
              Core.Facts.render facts))

(** Evaluate one expression in [lang]'s environment; [?fuel] bounds its
    evaluation steps (default: unbounded, as befits a REPL). *)
let eval ?fuel ?(lang = "racket") ?(observe = Observe.nothing) ?(engine = Interp)
    (src : string) : (Value.value, Diagnostic.t list) result =
  Core.init ();
  Observe.with_ctx observe (fun () ->
      with_stx_counters @@ fun () ->
      contain ?fuel (fun () ->
          with_engine engine (fun () ->
              Interp.fuel ()
              := (match fuel with Some n -> n | None -> Interp.unlimited);
              Core.eval_expr ~lang src)))

(** Render a diagnostic batch for the terminal. *)
let render_errors ?color (ds : Diagnostic.t list) : string = Render.render_all ?color ds
