(** Deterministic fault injection — the chaos layer behind [--faults].

    The separate-compilation story (paper §5, docs/compilation.md) rests
    on one promise: any unusable artifact {e degrades to a recompile,
    never an error}.  This module makes that promise testable.  A {!plan}
    — parsed from a compact textual spec — names {e sites} (the points
    where the compiled layer touches the outside world) and, per site, a
    failure {e mode} and a firing probability.  Each arrival at a site
    consults the installed plan; whether the n-th arrival fires is a pure
    function of [(seed, site, n)], so a seed reproduces a schedule
    exactly (modulo domain interleaving, which only permutes arrival
    indices between racing workers).

    Ambient and zero-cost when off, in the {!Liblang_observe.Metrics}
    mold: with no plan installed every hook is one uncontended
    [Atomic.get] and a branch — nothing on the expander's hot paths is
    touched either way, because sites only exist in the store, the build
    driver and the loader.

    {2 Sites}

    - [store.read]    reading an artifact file
    - [store.write]   serializing an artifact (before the temp write)
    - [store.rename]  the atomic rename of temp file to final path
    - [store.lock]    acquiring a per-key advisory lock
    - [build.spawn]   a worker domain starting up (fires per worker)
    - [build.task]    a scheduled build task starting
    - [loader.replay] rebuilding a live module from an artifact
    - [vm.load]       decoding an artifact's bytecode section (an
                      injected error skips priming: the VM lowers the
                      form afresh at first evaluation)
    - [server.accept]  the compile server accepting a client connection
                       (an injected error drops that connection only)
    - [server.session] a compile-server request starting (an injected
                       error kills that session; the daemon survives)
    - [server.exec]    a compile-server worker domain beginning to
                       execute a dispatched request (inside the
                       request's containment: an injected error costs
                       that request an error response, nothing else)
    - [server.worker]  a compile-server worker domain taking a job off
                       the queue, {e outside} the request containment —
                       an injected error kills the worker domain itself;
                       supervision answers the held request with exit 2
                       and respawns a replacement (docs/server.md)

    {2 Modes}

    - [error]    raise {!Injected} at the site (an injected I/O failure;
                 transient for the build driver's retry classifier)
    - [torn@k]   [store.write] only: persist just the first [k] bytes —
                 a torn artifact lands at the {e final} path, as after a
                 crash between write and fsync
    - [delay@ms] sleep [ms] milliseconds at the site (sliced, so a
                 cooperative task deadline can interrupt it)
    - [crash]    [Unix._exit 42] — kill-9 semantics: no flushing, no
                 [at_exit], temp files stranded.  Only meaningful when
                 the caller is a subprocess (tools/chaos_check.sh).

    {2 Plan spec}

    Semicolon-separated fields ([,] also accepted):

    {v seed=7;deadline=15;store.write=torn@64~0.3;build.task=error~0.2 v}

    [seed=N] seeds the per-arrival decisions (default 0); [deadline=S]
    overrides the build driver's per-task wall-clock deadline (seconds);
    every other field is [SITE=MODE[@ARG][~PROB]] with [PROB] defaulting
    to 1 (fire on every arrival).  See docs/robustness.md for the full
    catalogue and the fault × layer degradation matrix.

    {2 Cooperative deadlines and cancellation}

    {!with_deadline} arms a per-domain wall-clock budget; {!check_deadline}
    raises {!Timeout} once it is exceeded.  {!with_cancel} arms the same
    checkpoints with an externally-settable flag — the compile server's
    [cancel] op sets it from the accept loop, and the worker domain
    running the request aborts with {!Cancelled} at its next checkpoint.
    Checks live at every store I/O boundary, every fault site, and inside
    sliced [delay] sleeps — so a stalled task surfaces as a diagnostic
    instead of a wedged pool.  Pure compute between checkpoints is
    bounded by the interpreter's fuel, and tools/chaos_check.sh adds an
    outer [timeout] as the hard backstop. *)

module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace

type mode =
  | Error
  | Torn of int  (** byte offset at which the artifact write is cut *)
  | Delay of float  (** milliseconds *)
  | Crash

type rule = {
  site : string;
  mode : mode;
  prob : float;  (** firing probability per arrival, in [0, 1] *)
  hits : int Atomic.t;  (** arrivals so far (shared across domains) *)
}

type plan = {
  seed : int;
  deadline : float option;  (** per-task deadline override, seconds *)
  rules : rule list;
  spec : string;  (** the text this plan was parsed from, for reports *)
}

exception Injected of string * string  (** site, mode *)

(** Exit code of an injected [crash] — how tools/chaos_check.sh tells a
    scheduled crash from a real one. *)
let crash_exit_code = 42

let sites =
  [
    "store.read";
    "store.write";
    "store.rename";
    "store.lock";
    "build.spawn";
    "build.task";
    "loader.replay";
    "vm.load";
    "server.accept";
    "server.session";
    "server.exec";
    "server.worker";
  ]

let mode_to_string = function
  | Error -> "error"
  | Torn k -> Printf.sprintf "torn@%d" k
  | Delay ms -> Printf.sprintf "delay@%g" ms
  | Crash -> "crash"

(* -- the installed plan ------------------------------------------------------ *)

(* Process-wide (not DLS): parallel-build workers must see the plan the
   main domain installed, exactly as they share the artifact store. *)
let current : plan option Atomic.t = Atomic.make None

let install (p : plan option) : unit = Atomic.set current p
let active () : bool = Atomic.get current <> None
let installed_spec () = Option.map (fun p -> p.spec) (Atomic.get current)

(** The plan's [deadline=S] field, if a plan with one is installed. *)
let deadline_override () : float option =
  match Atomic.get current with Some p -> p.deadline | None -> None

(** Run [f] with [p] installed (exception-safe; restores the previous
    plan).  The test-suite entry point; the CLI uses {!install}. *)
let with_plan (p : plan) (f : unit -> 'a) : 'a =
  let saved = Atomic.get current in
  Atomic.set current (Some p);
  Fun.protect ~finally:(fun () -> Atomic.set current saved) f

(* -- deterministic per-arrival decisions -------------------------------------

   splitmix64-style finalizer: the decision for arrival [n] at [site]
   under [seed] is a pure hash, so schedules replay without any shared
   PRNG state to contend on. *)

let mix64 (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let unit_float ~seed ~site ~n : float =
  let h = Int64.of_int (Hashtbl.hash site) in
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L)
         (Int64.add (Int64.shift_left h 17) (Int64.of_int n)))
  in
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

(* -- cooperative deadlines ---------------------------------------------------- *)

exception Timeout of float  (** the budget that was exceeded, in seconds *)

exception Cancelled  (** the request owning this computation was cancelled *)

(* How many deadlines or cancellation scopes are armed anywhere;
   0 = check_deadline is one atomic load. *)
let armed = Atomic.make 0

(* (absolute expiry, budget) of the innermost deadline of this domain *)
let deadline_key : (float * float) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* the cancellation flag of this domain's current request, if any *)
let cancel_key : bool Atomic.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let check_deadline () : unit =
  if Atomic.get armed > 0 then begin
    (match !(Domain.DLS.get cancel_key) with
    | Some flag when Atomic.get flag -> raise Cancelled
    | _ -> ());
    match !(Domain.DLS.get deadline_key) with
    | Some (expiry, budget) when Unix.gettimeofday () > expiry -> raise (Timeout budget)
    | _ -> ()
  end

(** Run [f] under a wall-clock budget of [seconds]: any
    {!check_deadline} past the expiry raises {!Timeout} (properly
    nested; an inner deadline never loosens an outer one — the sooner
    expiry wins). *)
let with_deadline ~(seconds : float) (f : unit -> 'a) : 'a =
  let slot = Domain.DLS.get deadline_key in
  let saved = !slot in
  let expiry = Unix.gettimeofday () +. seconds in
  let effective =
    match saved with
    | Some (outer, _) when outer < expiry -> saved
    | _ -> Some (expiry, seconds)
  in
  slot := effective;
  Atomic.incr armed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr armed;
      slot := saved)
    f

(** Run [f] under [flag]: once another domain sets [flag], this domain's
    next {!check_deadline} checkpoint raises {!Cancelled}.  Cooperative
    and best-effort — a computation already past its last checkpoint
    completes normally.  Nests like {!with_deadline} (the innermost flag
    wins for the extent of [f]). *)
let with_cancel (flag : bool Atomic.t) (f : unit -> 'a) : 'a =
  let slot = Domain.DLS.get cancel_key in
  let saved = !slot in
  slot := Some flag;
  Atomic.incr armed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr armed;
      slot := saved)
    f

(* -- firing ------------------------------------------------------------------- *)

let crash (_site : string) : 'a =
  (* kill -9 semantics: no buffer flushing, no at_exit sweeps *)
  Unix._exit crash_exit_code

let sleep_sliced (ms : float) : unit =
  let until = Unix.gettimeofday () +. (ms /. 1000.0) in
  let rec go () =
    check_deadline ();
    let remaining = until -. Unix.gettimeofday () in
    if remaining > 0.0 then begin
      Unix.sleepf (Float.min 0.01 remaining);
      go ()
    end
  in
  go ()

(* The n-th arrival at [site]: [Some mode] when the plan says fire.
   Every firing bumps [fault.injected] and emits a [fault-injected]
   trace event (workers have no sink, so only main-domain firings
   trace — all of them count). *)
let fire_mode (site : string) : mode option =
  match Atomic.get current with
  | None -> None
  | Some p -> (
      match List.find_opt (fun r -> String.equal r.site site) p.rules with
      | None -> None
      | Some r ->
          let n = Atomic.fetch_and_add r.hits 1 in
          if unit_float ~seed:p.seed ~site ~n < r.prob then begin
            Metrics.count "fault.injected";
            Trace.event "fault-injected"
              [ ("site", site); ("mode", mode_to_string r.mode) ];
            Some r.mode
          end
          else None)

(** The uniform site hook: no-op without a plan; otherwise fire per the
    plan — [error] (and a misplaced [torn]) raise {!Injected}, [delay]
    sleeps (sliced against the deadline), [crash] exits the process.
    Also a deadline checkpoint. *)
let check (site : string) : unit =
  if Atomic.get current != None then begin
    check_deadline ();
    match fire_mode site with
    | None -> ()
    | Some (Error | Torn _) -> raise (Injected (site, "error"))
    | Some (Delay ms) -> sleep_sliced ms
    | Some Crash -> crash site
  end

(** [store.write]'s variant of {!check}: [Some k] means the caller must
    persist only the first [k] bytes (a torn artifact); other modes are
    handled as in {!check}. *)
let torn_write (site : string) : int option =
  if Atomic.get current == None then None
  else begin
    check_deadline ();
    match fire_mode site with
    | None -> None
    | Some (Torn k) -> Some k
    | Some Error -> raise (Injected (site, "error"))
    | Some (Delay ms) ->
        sleep_sliced ms;
        None
    | Some Crash -> crash site
  end

(* -- plan parsing -------------------------------------------------------------- *)

let parse_error fmt = Printf.ksprintf (fun m -> Result.Error m) fmt

let parse_mode ~(site : string) (spec : string) : (mode * float, string) result =
  let body, prob =
    match String.index_opt spec '~' with
    | None -> (spec, Ok 1.0)
    | Some i -> (
        let p = String.sub spec (i + 1) (String.length spec - i - 1) in
        ( String.sub spec 0 i,
          match float_of_string_opt p with
          | Some f when f >= 0.0 && f <= 1.0 -> Ok f
          | _ -> parse_error "%s: bad probability %S (want 0..1)" site p ))
  in
  let name, arg =
    match String.index_opt body '@' with
    | None -> (body, None)
    | Some i ->
        (String.sub body 0 i, Some (String.sub body (i + 1) (String.length body - i - 1)))
  in
  match prob with
  | Result.Error _ as e -> e
  | Ok prob -> (
      match (name, arg) with
      | "error", None -> Ok (Error, prob)
      | "crash", None -> Ok (Crash, prob)
      | "torn", None -> Ok (Torn 64, prob)
      | "torn", Some a -> (
          match int_of_string_opt a with
          | Some k when k >= 0 -> Ok (Torn k, prob)
          | _ -> parse_error "%s: bad torn offset %S" site a)
      | "delay", None -> Ok (Delay 20.0, prob)
      | "delay", Some a -> (
          match float_of_string_opt a with
          | Some ms when ms >= 0.0 -> Ok (Delay ms, prob)
          | _ -> parse_error "%s: bad delay %S (milliseconds)" site a)
      | ("error" | "crash"), Some _ ->
          parse_error "%s: mode %s takes no @argument" site name
      | _ -> parse_error "%s: unknown mode %S (error|torn@K|delay@MS|crash)" site name)

(** Parse a plan spec (grammar above; empty fields are ignored, so
    trailing separators are fine).  [Error] carries a one-line reason
    the CLI prints verbatim. *)
let parse (spec : string) : (plan, string) result =
  let fields =
    String.split_on_char ';' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let rec go seed deadline rules = function
    | [] -> Ok { seed; deadline; rules = List.rev rules; spec }
    | field :: rest -> (
        match String.index_opt field '=' with
        | None -> parse_error "bad field %S (want KEY=VALUE)" field
        | Some i -> (
            let key = String.sub field 0 i in
            let value = String.sub field (i + 1) (String.length field - i - 1) in
            match key with
            | "seed" -> (
                match int_of_string_opt value with
                | Some s -> go s deadline rules rest
                | None -> parse_error "bad seed %S" value)
            | "deadline" -> (
                match float_of_string_opt value with
                | Some s when s > 0.0 -> go seed (Some s) rules rest
                | _ -> parse_error "bad deadline %S (seconds)" value)
            | site when List.mem site sites -> (
                match parse_mode ~site value with
                | Result.Error _ as e -> e
                | Ok (mode, prob) ->
                    (* last rule for a site wins *)
                    let rules = List.filter (fun r -> r.site <> site) rules in
                    go seed deadline
                      ({ site; mode; prob; hits = Atomic.make 0 } :: rules)
                      rest)
            | _ ->
                parse_error "unknown field %S (seed, deadline, or a site: %s)" key
                  (String.concat " " sites)))
  in
  go 0 None [] fields
