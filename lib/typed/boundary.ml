(** Safe cross-module integration (paper §6).

    - [require/typed] (Fig. 4): imports an untyped binding under a fresh
      name, declares its type, and defines the public name as a
      contract-wrapped version.
    - Export rewriting (§6.2): every typed export becomes an indirection
      macro choosing the raw binding in typed client compilations (where the
      [typed-context?] flag is set in the client's fresh compile-time store)
      and the contract-protected binding in untyped ones.
    - [type->contract]: types compile to contract-constructing syntax. *)

module Stx = Liblang_stx.Stx
module Scope = Liblang_stx.Scope
module Binding = Liblang_stx.Binding
module Value = Liblang_runtime.Value
module Ct_store = Liblang_expander.Ct_store
module Expander = Liblang_expander.Expander
module Denote = Liblang_expander.Denote
module Baselang = Liblang_modules.Baselang
module Modsys = Liblang_modules.Modsys
open Types

exception Boundary_error of string * Stx.t

let berr s fmt = Printf.ksprintf (fun m -> raise (Boundary_error (m, s))) fmt

let u = Baselang.bid
let sl = Stx.list
let app xs = sl ((u "#%plain-app") :: xs)

let fresh_id name = Stx.id ~scopes:(Scope.Set.singleton (Scope.fresh ())) name

let mark_ignored (s : Stx.t) =
  Stx.property_put Check.ignore_key (Stx.str_ "yes") s

(* -- the typed-context? flag (§6.2) ------------------------------------------------ *)

let flag_key = "typed:context"

let set_typed_context () = Ct_store.set flag_key (Value.Bool true)

let in_typed_context () =
  match Ct_store.get flag_key with Some (Value.Bool true) -> true | _ -> false

(* -- type->contract ------------------------------------------------------------------ *)

let rec type_to_contract_d (depth : int) (t : Types.t) : Stx.t =
  let type_to_contract t = type_to_contract_d depth t in
  match t with
  | Name n ->
      (* unfold named (possibly recursive) types a bounded number of times,
         then fall back to any/c; see DESIGN.md *)
      if depth >= 3 then u "any/c" else type_to_contract_d (depth + 1) (Types.resolve_name n)
  | Any -> u "any/c"
  | Integer -> u "integer-contract"
  | Float -> u "flonum-contract"
  | FloatComplex -> u "float-complex-contract"
  | Real -> app [ u "or-contract"; u "integer-contract"; u "flonum-contract" ]
  | Number -> u "number-contract"
  | Boolean -> u "boolean-contract"
  | String_ -> u "string-contract"
  | Symbol -> u "symbol-contract"
  | Char_ -> u "char-contract"
  | Void_ -> u "void-contract"
  | Null -> u "null-contract"
  | Listof e -> app [ u "listof-contract"; type_to_contract e ]
  | ListT es ->
      List.fold_right
        (fun e acc -> app [ u "pair-contract"; type_to_contract e; acc ])
        es (u "null-contract")
  | Pairof (a, d) -> app [ u "pair-contract"; type_to_contract a; type_to_contract d ]
  | Vectorof e -> app [ u "vectorof-contract"; type_to_contract e ]
  | Union ts ->
      if List.exists is_function ts then
        raise (Types.Parse_error ("cannot convert a union containing function types to a contract", Liblang_reader.Srcloc.none))
      else app ((u "or-contract") :: List.map type_to_contract ts)
  | Fun (doms, rng) ->
      app
        [
          u "arrow-contract";
          app ((u "list") :: List.map type_to_contract doms);
          type_to_contract rng;
        ]

let type_to_contract (t : Types.t) : Stx.t = type_to_contract_d 0 t

(* -- phase-1 primitives ----------------------------------------------------------------- *)

let declare_type_prim =
  Value.prim "typed:declare-type" (function
    | [ Value.StxV id; ty ] ->
        (match Binding.resolve id with
        | Some b ->
            Hashtbl.replace (Check.types_table ()) b.Binding.uid ty
        | None -> Value.error "typed:declare-type: unbound identifier %s" (Stx.to_string id));
        Value.Void
    | _ -> Value.error "typed:declare-type: expects an identifier and a type datum")

let make_export_transformer_prim =
  Value.prim "typed:make-export-transformer" (function
    | [ Value.StxV real; Value.StxV defensive ] ->
        Value.prim "export-transformer" (function
          | [ Value.StxV form ] ->
              let chosen = if in_typed_context () then real else defensive in
              let out =
                match Stx.view form with
                | Stx.Id _ -> chosen
                | Stx.List (_ :: rest) -> Stx.rewrap form (Stx.List (chosen :: rest))
                | _ -> Value.error "export transformer: bad use"
              in
              Value.StxV out
          | _ -> Value.error "export transformer: expects syntax")
    | _ -> Value.error "typed:make-export-transformer: expects two identifiers")

let lookup_type_prim =
  Value.prim "typed:lookup-type" (function
    | [ Value.StxV id ] -> (
        match Binding.resolve id with
        | Some b -> (
            match Hashtbl.find_opt (Check.types_table ()) b.Binding.uid with
            | Some v -> v
            | None -> Value.Bool false)
        | None -> Value.Bool false)
    | _ -> Value.error "typed:lookup-type: expects an identifier")

let typed_context_prim =
  Value.prim "typed-context?" (fun _ -> Value.Bool (in_typed_context ()))

let define_type_prim =
  Value.prim "typed:define-type" (function
    | [ Value.Sym name; body ] ->
        Types.define_name name (Types.of_datum (Value.to_datum body));
        Value.Void
    | _ -> Value.error "typed:define-type: expects a name and a type datum")

let phase1_values =
  [
    ("typed:declare-type", declare_type_prim);
    ("typed:define-type", define_type_prim);
    ("typed:make-export-transformer", make_export_transformer_prim);
    ("typed:lookup-type", lookup_type_prim);
    ("typed-context?", typed_context_prim);
  ]

(* -- require/typed (figure 4) -------------------------------------------------------------- *)

let quote_ty (t : Types.t) : Stx.t =
  sl
    [
      u "quote";
      Stx.of_datum { Liblang_reader.Datum.d = Types.to_datum t; loc = Liblang_reader.Srcloc.none };
    ]

let quote_sym (name : string) : Stx.t = sl [ u "quote"; Stx.id name ]

(* A require/typed target is either a registry module (identifier) or a
   file module (string path, resolved by the separate-compilation layer);
   the blame party names it either way. *)
let is_mod_spec (s : Stx.t) =
  match Stx.view s with
  | Stx.Id _ -> true
  | Stx.Atom (Liblang_reader.Datum.Str _) -> true
  | _ -> false

let mod_spec_label (s : Stx.t) : string =
  match Stx.view s with
  | Stx.Id n -> Stx.Symbol.name n
  | Stx.Atom (Liblang_reader.Datum.Str p) -> p
  | _ -> Stx.to_string s

(* Quote the blame party: a symbol for registry modules, a string for file
   paths (both are accepted by the contract primitive). *)
let quote_party (s : Stx.t) : Stx.t =
  match Stx.view s with
  | Stx.Atom (Liblang_reader.Datum.Str _) -> sl [ u "quote"; s ]
  | _ -> quote_sym (mod_spec_label s)

(** Expand one [(id Ty)] clause of [require/typed] into the three stages of
    figure 4. *)
let require_typed_clause ~(mod_id : Stx.t) (id : Stx.t) (ty_stx : Stx.t) : Stx.t list =
  let ty =
    try Types.of_stx ty_stx with Types.Parse_error (m, _) -> berr ty_stx "require/typed: %s" m
  in
  let unsafe_id = fresh_id ("unsafe-" ^ Stx.sym_exn id) in
  let this_mod = Modsys.current_module_name () in
  [
    (* stage 1: import under a fresh name *)
    sl
      [
        Expander.core_id "#%require";
        sl [ Stx.id "only-in"; mod_id; sl [ id; unsafe_id ] ];
      ];
    (* stage 3 (emitted before stage 2 so the binding exists when the
       declaration is evaluated): the protected definition, invisible to the
       typechecker *)
    mark_ignored
      (sl
         [
           Expander.core_id "define-values";
           sl [ id ];
           app
             [
               u "contract";
               type_to_contract ty;
               unsafe_id;
               quote_party mod_id;
               quote_sym this_mod;
             ];
         ]);
    (* stage 2: declare the type *)
    sl
      [
        Expander.core_id "begin-for-syntax";
        app [ u "typed:declare-type"; sl [ Expander.core_id "quote-syntax"; id ]; quote_ty ty ];
      ];
  ]

let m_require_typed (form : Stx.t) : Stx.t =
  match Stx.to_list form with
  | Some (_ :: mod_id :: clauses) when is_mod_spec mod_id && clauses <> [] ->
      let expand_clause c =
        match Stx.to_list c with
        | Some [ id; ty ] when Stx.is_id id -> require_typed_clause ~mod_id id ty
        | _ -> berr c "require/typed: expected [id Type]"
      in
      sl ~loc:(Stx.loc form) ((u "begin") :: List.concat_map expand_clause clauses)
  | _ -> berr form "require/typed: bad syntax"

(* -- export rewriting (§5 + §6.2) ------------------------------------------------------------ *)

let core_kind (hd : Stx.t) : string option =
  match Binding.resolve hd with
  | None -> None
  | Some b -> ( match Denote.get b with Some (Denote.DCore n) -> Some n | _ -> None)

(** Rewrite one provided identifier into: the compile-time type declaration
    (§5), the defensive (contracted) definition, the indirection macro, and
    the renaming provide (§6.2). *)
let rewrite_one_provide (n : Stx.t) : Stx.t list =
  let name = Stx.sym_exn n in
  let b =
    match Binding.resolve n with
    | Some b -> b
    | None -> berr n "provide: unbound identifier %s" name
  in
  (match Denote.get b with
  | Some (Denote.DMacro _) ->
      berr n "provide: macros may not escape typed modules (§6.3): %s" name
  | _ -> ());
  let ty =
    match Check.lookup_type b with
    | Some t -> t
    | None -> berr n "provide: no type recorded for %s" name
  in
  let this_mod = Modsys.current_module_name () in
  let defensive = fresh_id ("defensive-" ^ name) in
  let export = fresh_id ("export-" ^ name) in
  [
    (* the §5 declaration: replayed into every requiring compilation *)
    sl
      [
        Expander.core_id "begin-for-syntax";
        app [ u "typed:declare-type"; sl [ Expander.core_id "quote-syntax"; n ]; quote_ty ty ];
      ];
    (* stage 1: the defensive version *)
    mark_ignored
      (sl
         [
           Expander.core_id "define-values";
           sl [ defensive ];
           app
             [
               u "contract";
               type_to_contract ty;
               n;
               quote_sym this_mod;
               quote_sym "untyped-client";
             ];
         ]);
    (* stage 2: the indirection *)
    sl
      [
        Expander.core_id "define-syntaxes";
        sl [ export ];
        app
          [
            u "typed:make-export-transformer";
            sl [ Expander.core_id "quote-syntax"; n ];
            sl [ Expander.core_id "quote-syntax"; defensive ];
          ];
      ];
    (* stage 3: provide the indirection under the original name *)
    sl [ Expander.core_id "#%provide"; sl [ Stx.id "rename-out"; sl [ export; n ] ] ];
  ]

let rewrite_provides (forms : Stx.t list) : Stx.t list =
  (* generated forms go at the end of the module, after every definition:
     the module is re-expanded, and a provide written above its definition
     must not make the compile-time declaration run before the definition
     re-binds the identifier *)
  let rewritten = ref [] in
  let rest =
    List.filter
      (fun form ->
        match Stx.view form with
        | Stx.List (hd :: specs) when Stx.is_id hd && core_kind hd = Some "#%provide" ->
            List.iter
              (fun spec ->
                match Stx.view spec with
                | Stx.Id _ -> rewritten := !rewritten @ rewrite_one_provide spec
                | _ -> berr spec "typed provide: only plain identifiers are supported")
              specs;
            false
        | _ -> true)
      forms
  in
  rest @ !rewritten
