(** The typechecker (paper §4, figure 3): a whole-module, context-sensitive
    analysis over fully-expanded core forms.

    The type environment is the identifier-keyed table of the paper: a
    mutable, binding-uid-keyed table living in the compile-time store (so a
    fresh one exists per compilation, and [begin-for-syntax] declarations
    from required modules repopulate it — §5).  Annotations arrive
    out-of-band as syntax properties placed by the surface macros (§3.1). *)

module Stx = Liblang_stx.Stx
module Binding = Liblang_stx.Binding
module Value = Liblang_runtime.Value
module Ct_store = Liblang_expander.Ct_store
module Denote = Liblang_expander.Denote
module Diagnostic = Liblang_diagnostics.Diagnostic
module Reporter = Liblang_diagnostics.Reporter
open Types

exception Type_error of string * Stx.t

let terr s fmt = Printf.ksprintf (fun m -> raise (Type_error (m, s))) fmt

(* -- multi-error recovery -------------------------------------------------

   When an ambient {!Reporter} is installed (the typed language's
   module-begin driver installs one), type errors are {e accumulated}
   rather than raised: the checker emits a located diagnostic, synthesizes
   a recovery type, and keeps going, so one compilation reports every type
   error in the module.  Without a reporter (direct library use) the legacy
   fail-fast [Type_error] exception is preserved. *)

let diagnostic_of (m : string) (s : Stx.t) : Diagnostic.t =
  Diagnostic.error ~phase:Diagnostic.Typecheck ~loc:(Stx.loc s) m
    ~notes:[ Diagnostic.note ("in: " ^ Diagnostic.truncated (Stx.to_string s)) ]

(* Emit into the ambient reporter, or raise if none is installed. *)
let soft_err (s : Stx.t) fmt =
  Printf.ksprintf
    (fun m ->
      if not (Reporter.emit (diagnostic_of m s)) then raise (Type_error (m, s)))
    fmt

(** The syntax-property key under which annotations travel (§3.1). *)
let annotation_key = "type-annotation"

(** Forms carrying this property are skipped by the checker — the moral
    equivalent of the paper's [begin-ignored] (Fig. 4). *)
let ignore_key = "typed-ignore"

(* -- the type environment ------------------------------------------------------ *)

let types_table () = Ct_store.uid_table "typed:types"

let add_type (b : Binding.t) (t : Types.t) =
  Hashtbl.replace (types_table ()) b.Binding.uid (Value.of_datum (Types.to_datum t))

let lookup_type (b : Binding.t) : Types.t option =
  match Hashtbl.find_opt (types_table ()) b.Binding.uid with
  | None -> None
  | Some v -> Some (Types.of_datum (Value.to_datum v))

(* (: id T) declarations collected by the module-begin driver before
   expansion; keyed by symbol name (module-level names are unique). *)
let pending_decls : (string, Types.t) Hashtbl.t = Hashtbl.create 16

(* -- annotations ----------------------------------------------------------------- *)

(** Read a binder's type: its [type-annotation] syntax property, or a
    pending [(: id T)] declaration. *)
let type_of_id (id : Stx.t) : Types.t option =
  match Stx.property_get annotation_key id with
  | Some ty_stx -> (
      try Some (Types.of_stx ty_stx)
      with Types.Parse_error (m, _) -> terr id "%s" m)
  | None -> Hashtbl.find_opt pending_decls (Stx.sym_exn id)

let resolve_exn (id : Stx.t) : Binding.t =
  match Binding.resolve id with
  | Some b -> b
  | None -> terr id "%s: unbound identifier" (Stx.sym_exn id)

let core_kind (hd : Stx.t) : string option =
  match Binding.resolve hd with
  | None -> None
  | Some b -> ( match Denote.get b with Some (Denote.DCore n) -> Some n | _ -> None)

let is_ignored (s : Stx.t) = Option.is_some (Stx.property_get ignore_key s)

(* -- types of literals -------------------------------------------------------------- *)

module Datum = Liblang_reader.Datum

let rec type_of_datum (d : Datum.t) : Types.t =
  match d with
  | Datum.Atom (Datum.Int _) -> Integer
  | Datum.Atom (Datum.Float _) -> Float
  | Datum.Atom (Datum.Cpx _) -> FloatComplex
  | Datum.Atom (Datum.Bool _) -> Boolean
  | Datum.Atom (Datum.Str _) -> String_
  | Datum.Atom (Datum.Sym _) -> Symbol
  | Datum.Atom (Datum.Char _) -> Char_
  | Datum.List [] -> Null
  | Datum.List xs -> ListT (List.map (fun a -> type_of_datum a.Datum.d) xs)
  | Datum.DotList (xs, tl) ->
      List.fold_right
        (fun a acc -> Pairof (type_of_datum a.Datum.d, acc))
        xs
        (type_of_datum tl.Datum.d)
  | Datum.Vec [] -> Vectorof Any
  | Datum.Vec (x :: xs) ->
      Vectorof
        (List.fold_left
           (fun acc a -> join acc (type_of_datum a.Datum.d))
           (type_of_datum x.Datum.d)
           xs)

(* -- occurrence typing (simplified) ----------------------------------------------------
   Typed Racket's full system (Tobin-Hochstadt & Felleisen 2010) tracks
   logical propositions; we implement the common special case the paper's
   idioms rely on: [(if (pred x) then else)] narrows the type of the
   variable [x] in each branch.  Narrowing is skipped for variables that
   are ever [set!] (the standard soundness condition). *)

(* Variables that are [set!] anywhere in the module under analysis may not
   be narrowed (their type at the branch could differ from the table). *)
let assigned_table () = Ct_store.uid_table "typed:assigned"

let rec record_assignments (s : Stx.t) : unit =
  match Stx.view s with
  | Stx.List (hd :: rest) when Stx.is_id hd -> (
      match core_kind hd with
      | Some "set!" -> (
          (match rest with
          | x :: _ when Stx.is_id x -> (
              match Binding.resolve x with
              | Some b -> Hashtbl.replace (assigned_table ()) b.Binding.uid Value.Void
              | None -> ())
          | _ -> ());
          List.iter record_assignments rest)
      | Some ("quote" | "quote-syntax") -> ()
      | _ -> List.iter record_assignments rest)
  | Stx.List xs -> List.iter record_assignments xs
  | _ -> ()

let is_assigned (b : Binding.t) = Hashtbl.mem (assigned_table ()) b.Binding.uid

(* predicate name -> the type it tests for *)
let predicate_types =
  [
    ("flonum?", Float);
    ("exact-integer?", Integer);
    ("fixnum?", Integer);
    ("real?", Real);
    ("number?", Number);
    ("complex?", Number);
    ("boolean?", Boolean);
    ("string?", String_);
    ("symbol?", Symbol);
    ("char?", Char_);
    ("void?", Void_);
  ]

(* [restrict t p]: the type of a value known to be [t] that passed the test
   for [p]; [remove t p]: ... that failed it.  Both conservative. *)
let rec restrict t p =
  let t = Types.unfold t in
  if subtype t p then t
  else
    match t with
    | Union ms -> (
        match List.filter (fun m -> overlaps m p) ms with
        | [] -> p
        | [ m ] -> restrict m p
        | ms -> List.fold_left (fun acc m -> join acc (restrict m p)) (restrict (List.hd ms) p) (List.tl ms))
    | _ -> p

and remove t p =
  let t' = Types.unfold t in
  match t' with
  | Union ms -> (
      match List.filter (fun m -> not (subtype m p)) ms with
      | [] -> t
      | [ m ] -> m
      | ms -> Union ms)
  | _ -> t

and overlaps a b = subtype a b || subtype b a

(* pair?/null? narrow the list spine *)
let narrow_pairness t =
  let view = Types.unfold t in
  let rec split v =
    (* returns (pair-part option, non-pair part option) *)
    match Types.unfold v with
    | Listof a -> (Some (Pairof (a, Listof a)), Some Null)
    | Null -> (None, Some Null)
    | Pairof _ as p -> (Some p, None)
    | ListT [] -> (None, Some Null)
    | ListT (x :: xs) -> (Some (Pairof (x, ListT xs)), None)
    | Any -> (Some (Pairof (Any, Any)), Some Any)
    | Union ms ->
        List.fold_left
          (fun (ps, ns) m ->
            let p, n = split m in
            let merge a b = match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (join a b) in
            (merge ps p, merge ns n))
          (None, None) ms
    | other -> (None, Some other)
  in
  split view

let narrowing_by_predicate (pred_name : string) (t : Types.t) : (Types.t * Types.t) option =
  match pred_name with
  | "pair?" -> (
      match narrow_pairness t with
      | Some p, Some n -> Some (p, n)
      | Some p, None -> Some (p, t)
      | None, Some n -> Some (t, n)
      | None, None -> None)
  | "null?" | "empty?" -> (
      match narrow_pairness t with
      | Some p, Some n -> Some (n, p)
      | _ -> None)
  | _ -> (
      match List.assoc_opt pred_name predicate_types with
      | Some p -> Some (restrict t p, remove t p)
      | None -> None)

(* recognize [(pred x)] and [(not (pred x))] in core form *)
let rec narrowing_of (cond : Stx.t) : (Binding.t * Types.t * Types.t) option =
  match Stx.view cond with
  | Stx.List [ app; pred; x ]
    when Stx.is_id app && core_kind app = Some "#%plain-app" && Stx.is_id pred && Stx.is_id x
    -> (
      match Binding.resolve pred with
      | None -> None
      | Some pb -> (
          Base_env.ensure_initialized ();
          match Base_env.prim_name_of pb with
          | Some "not" -> None
          | Some name -> (
              match Binding.resolve x with
              | None -> None
              | Some xb when is_assigned xb -> None
              | Some xb -> (
                  match lookup_type xb with
                  | None -> None
                  | Some t -> (
                      match narrowing_by_predicate name t with
                      | Some (then_t, else_t) -> Some (xb, then_t, else_t)
                      | None -> None)))
          | None -> None))
  | Stx.List [ app; notp; inner ]
    when Stx.is_id app && core_kind app = Some "#%plain-app" && Stx.is_id notp -> (
      match Binding.resolve notp with
      | Some nb when Base_env.prim_name_of nb = Some "not" -> (
          match narrowing_of inner with
          | Some (b, then_t, else_t) -> Some (b, else_t, then_t)
          | None -> None)
      | _ -> None)
  | _ -> None

(** Run [f] with [b]'s type temporarily narrowed to [t]. *)
let with_narrowed (b : Binding.t) (t : Types.t) (f : unit -> 'a) : 'a =
  let table = types_table () in
  let saved = Hashtbl.find_opt table b.Binding.uid in
  Hashtbl.replace table b.Binding.uid (Value.of_datum (Types.to_datum t));
  Fun.protect
    ~finally:(fun () ->
      match saved with
      | Some v -> Hashtbl.replace table b.Binding.uid v
      | None -> Hashtbl.remove table b.Binding.uid)
    f

(* -- the checker (figure 3) ----------------------------------------------------------- *)

let rec typecheck ?(expect : Types.t option) (s : Stx.t) : Types.t =
  let t = infer ?expect s in
  match expect with
  | Some ex when not (subtype t ex) ->
      soft_err s "wrong type: expected %s, got %s" (to_string ex) (to_string t);
      (* error recovery: trust the annotation, so one mistake does not
         cascade into spurious downstream errors *)
      ex
  | _ -> t

and infer ?expect (s : Stx.t) : Types.t =
  if is_ignored s then Any
  else
    match Stx.view s with
    | Stx.Id _ -> type_of_ref ?expect s
    | Stx.List (hd :: args) when Stx.is_id hd -> (
        match core_kind hd with
        | Some kind -> infer_core ?expect kind s args
        | None -> terr s "non-core form reached the typechecker (internal error)")
    | _ -> terr s "cannot typecheck this form"

and type_of_ref ?expect (id : Stx.t) : Types.t =
  let b = resolve_exn id in
  match lookup_type b with
  | Some t -> t
  | None -> (
      Base_env.ensure_initialized ();
      match Base_env.lookup b with
      | Some (Base_env.Mono t) -> t
      | Some (Base_env.Special rule) -> (
          (* an overloaded primitive in higher-order position: if the
             context expects a function type, validate the primitive at
             those domain types (instantiating the overloading) *)
          match expect with
          | Some (Fun (doms, rng) as ft) -> (
              match rule doms with
              | r when subtype r rng -> ft
              | _ -> fallback_ho id b
              | exception Base_env.Rule_error _ -> fallback_ho id b)
          | _ -> fallback_ho id b)
      | None -> terr id "untyped variable: %s" (Stx.sym_exn id))

and fallback_ho id b =
  match Base_env.ho_fallback b with
  | Some t -> t
  | None ->
      terr id "%s: primitive needs annotation when used in higher-order position"
        (Stx.sym_exn id)

and infer_core ?expect kind (s : Stx.t) (args : Stx.t list) : Types.t =
  match (kind, args) with
  | "quote", [ d ] -> type_of_datum (Stx.to_datum d)
  | "quote-syntax", [ _ ] -> Any
  | "if", [ c; t; e ] -> (
      ignore (typecheck c);
      match narrowing_of c with
      | Some (b, then_t, else_t) ->
          let t1 = with_narrowed b then_t (fun () -> typecheck ?expect t) in
          let t2 = with_narrowed b else_t (fun () -> typecheck ?expect e) in
          join t1 t2
      | None ->
          let t1 = typecheck ?expect t in
          let t2 = typecheck ?expect e in
          join t1 t2)
  | "begin", (_ :: _) ->
      let rec go = function
        | [ last ] -> typecheck ?expect last
        | e :: rest ->
            ignore (typecheck e);
            go rest
        | [] -> assert false
      in
      go args
  | "#%expression", [ e ] -> (
      match Stx.property_get "type-ascription" s with
      | Some ty_stx ->
          let t = Types.of_stx ty_stx in
          ignore (typecheck ~expect:t e);
          t
      | None -> typecheck ?expect e)
  | "#%plain-lambda", (formals :: body) when body <> [] -> infer_lambda ?expect s formals body
  | ("let-values" | "letrec-values"), (clauses :: body) when body <> [] ->
      let recursive = String.equal kind "letrec-values" in
      let clauses =
        match Stx.to_list clauses with Some cs -> cs | None -> terr s "bad let clauses"
      in
      let parsed =
        List.map
          (fun c ->
            match Stx.to_list c with
            | Some [ ids; rhs ] -> (
                match Stx.to_list ids with
                | Some [ id ] -> (id, rhs)
                | _ -> terr c "multiple values are not supported in typed code")
            | _ -> terr c "bad binding clause")
          clauses
      in
      (* annotated bindings are visible to every right-hand side when
         recursive (the two-pass discipline of §4.4) *)
      if recursive then
        List.iter
          (fun (id, _) ->
            match type_of_id id with
            | Some t -> add_type (resolve_exn id) t
            | None -> ())
          parsed;
      List.iter
        (fun (id, rhs) ->
          match type_of_id id with
          | Some t ->
              ignore (typecheck ~expect:t rhs);
              add_type (resolve_exn id) t
          | None ->
              let t = typecheck rhs in
              add_type (resolve_exn id) t)
        parsed;
      let rec go = function
        | [ last ] -> typecheck ?expect last
        | e :: rest ->
            ignore (typecheck e);
            go rest
        | [] -> assert false
      in
      go body
  | "set!", [ x; e ] ->
      let tx = type_of_ref x in
      ignore (typecheck ~expect:tx e);
      Void_
  | "#%plain-app", (op :: operands) -> infer_app s op operands
  | _, _ -> terr s "%s: unexpected form in typed code" kind

and infer_lambda ?expect (s : Stx.t) (formals : Stx.t) (body : Stx.t list) : Types.t =
  let ids =
    match Stx.view formals with
    | Stx.List ids -> ids
    | Stx.Id _ | Stx.DotList _ -> terr formals "rest arguments are not supported in typed code"
    | _ -> terr formals "bad formals"
  in
  let expected_doms, expected_rng =
    match expect with
    | Some (Fun (doms, rng)) when List.length doms = List.length ids ->
        (* an expected range of Any means: infer the body's type *)
        (List.map Option.some doms, if Types.equal rng Any then None else Some rng)
    | _ -> (List.map (fun _ -> None) ids, None)
  in
  let dom_types =
    List.map2
      (fun id exp_dom ->
        let t =
          match (type_of_id id, exp_dom) with
          | Some t, _ -> t
          | None, Some t -> t
          | None, None ->
              terr id "missing type annotation for argument %s" (Stx.sym_exn id)
        in
        add_type (resolve_exn id) t;
        t)
      ids expected_doms
  in
  let rec go = function
    | [ last ] -> typecheck ?expect:expected_rng last
    | e :: rest ->
        ignore (typecheck e);
        go rest
    | [] -> terr s "empty body"
  in
  let rng = go body in
  Fun (dom_types, rng)

and infer_app (s : Stx.t) (op : Stx.t) (operands : Stx.t list) : Types.t =
  Base_env.ensure_initialized ();
  let special_rule =
    if Stx.is_id op then
      match Binding.resolve op with
      | Some b when Option.is_none (lookup_type b) -> (
          match Base_env.lookup b with Some (Base_env.Special f) -> Some f | _ -> None)
      | _ -> None
    else None
  in
  let prim_name =
    if Stx.is_id op then
      match Binding.resolve op with Some b -> Base_env.prim_name_of b | None -> None
    else None
  in
  match special_rule with
  | Some rule -> (
      let argtys =
        List.map Types.unfold (check_special_args (Option.value prim_name ~default:"") operands)
      in
      (* Any is the dynamic type: an overloaded primitive applied to a
         dynamic argument yields a dynamic result (and never triggers the
         optimizer) *)
      if List.exists (Types.equal Any) argtys then Any
      else try rule argtys with Base_env.Rule_error m -> terr s "%s" m)
  | None -> (
      match Types.unfold (typecheck op) with
      | Any ->
          List.iter (fun a -> ignore (typecheck a)) operands;
          Any
      | Fun (doms, rng) ->
          if List.length doms <> List.length operands then
            terr s "wrong number of arguments: expected %d, got %d" (List.length doms)
              (List.length operands);
          List.iter2 (fun d a -> ignore (typecheck ~expect:d a)) doms operands;
          rng
      | t -> terr op "not a function type: %s" (to_string t))

(* Bidirectional checking of arguments to overloaded higher-order
   primitives: the function argument's domain comes from the collection's
   element type, so unannotated lambdas work in [(map (lambda (x) …) l)]
   and the comprehension forms built on it. *)
and check_special_args (name : string) (operands : Stx.t list) : Types.t list =
  let elem_of t =
    match Base_env.listof_view (Types.unfold t) with Some e -> e | None -> Any
  in
  match (name, operands) with
  | ("map" | "for-each" | "filter" | "andmap" | "ormap" | "count"), f :: lists when lists <> [] ->
      let ltys = List.map (fun l -> typecheck l) lists in
      let doms = List.map elem_of ltys in
      let ft = typecheck ~expect:(Fun (doms, Any)) f in
      ft :: ltys
  | ("foldl" | "foldr"), [ f; init; l ] ->
      let it = typecheck init in
      let lt = typecheck l in
      let ft = typecheck ~expect:(Fun ([ elem_of lt; it ], Any)) f in
      [ ft; it; lt ]
  | "sort", [ l; f ] ->
      let lt = typecheck l in
      let e = elem_of lt in
      let ft = typecheck ~expect:(Fun ([ e; e ], Any)) f in
      [ lt; ft ]
  | ("build-list" | "build-vector"), [ n; f ] ->
      let nt = typecheck n in
      let ft = typecheck ~expect:(Fun ([ Integer ], Any)) f in
      [ nt; ft ]
  | "vector-map", [ f; v ] ->
      let vt = typecheck v in
      let e = match Types.unfold vt with Vectorof e -> e | _ -> Any in
      let ft = typecheck ~expect:(Fun ([ e ], Any)) f in
      [ ft; vt ]
  | _ -> List.map (fun a -> typecheck a) operands

(* -- the module-level driver (figure 2 / §4.4) ----------------------------------------- *)

let definition_parts (form : Stx.t) : (Stx.t * Stx.t) option =
  match Stx.view form with
  | Stx.List [ hd; ids; rhs ] when Stx.is_id hd && core_kind hd = Some "define-values" -> (
      match Stx.to_list ids with Some [ id ] -> Some (id, rhs) | _ -> None)
  | _ -> None

let check_top_form (form : Stx.t) : unit =
  if is_ignored form then ()
  else
    match Stx.view form with
    | Stx.List (hd :: _) when Stx.is_id hd -> (
        match core_kind hd with
        | Some "define-values" -> (
            match definition_parts form with
            | Some (id, rhs) -> (
                let b = resolve_exn id in
                match lookup_type b with
                | Some t -> ignore (typecheck ~expect:t rhs)
                | None ->
                    let t = typecheck rhs in
                    add_type b t)
            | None -> terr form "define-values: multiple values are not supported in typed code")
        | Some ("define-syntaxes" | "begin-for-syntax" | "#%provide" | "#%require") -> ()
        | _ -> ignore (typecheck form))
    | _ -> ignore (typecheck form)

(** Typecheck a fully-expanded module body: pass A records every annotated
    definition (enabling mutual recursion and forward references — §4.4);
    pass B checks each form. *)
let check_module (forms : Stx.t list) : unit =
  Liblang_observe.Trace.span "typecheck" @@ fun () ->
  Liblang_observe.Metrics.time "phase.typecheck" @@ fun () ->
  Liblang_observe.Metrics.countn "typecheck.forms" (List.length forms);
  Base_env.ensure_initialized ();
  (* With a reporter installed, a failed form is reported and skipped so
     the remaining forms are still checked — one invocation reports every
     type error in the module, in source order. *)
  let contained f form =
    match f form with
    | () -> ()
    | exception Type_error (m, s) when Reporter.installed () ->
        ignore (Reporter.emit (diagnostic_of m s))
  in
  List.iter record_assignments forms;
  List.iter
    (contained (fun form ->
         if not (is_ignored form) then
           match definition_parts form with
           | Some (id, _) -> (
               match type_of_id id with
               | Some t -> add_type (resolve_exn id) t
               | None -> ())
           | None -> ()))
    forms;
  List.iter (contained check_top_form) forms

(** The type of an expression, for the optimizer's queries; relies on the
    type environment already populated by checking. *)
let type_of_expr (s : Stx.t) : Types.t = typecheck s
