(** The typed sister language, assembled as an ordinary library (paper §3).

    Exports everything the base language does, overriding the binding forms
    with versions that record type annotations as syntax properties (§3.1),
    and adding [:], [ann], [require/typed], and a [#%module-begin] that
    splices the typechecker and the optimizer into the tool chain
    (figures 2 and 5, §6.2).

    Registered as the languages [typed/racket], [typed], and [simple-type]. *)

module Stx = Liblang_stx.Stx
module Scope = Liblang_stx.Scope
module Value = Liblang_runtime.Value
module Expander = Liblang_expander.Expander
module Ct_store = Liblang_expander.Ct_store
module Denote = Liblang_expander.Denote
module Modsys = Liblang_modules.Modsys
module Baselang = Liblang_modules.Baselang
module Diagnostic = Liblang_diagnostics.Diagnostic
module Reporter = Liblang_diagnostics.Reporter

let err msg s = raise (Expander.Expand_error (msg, s))

let u = Baselang.bid
let sl = Stx.list

let annotate (id : Stx.t) (ty : Stx.t) : Stx.t =
  Stx.property_put Check.annotation_key ty id

let arrow_ty (doms : Stx.t list) (rng : Stx.t) : Stx.t = sl (doms @ [ Stx.id "->"; rng ])

(* -- parsing annotated binders ------------------------------------------------------ *)

(* A formal is either [x] or [x : T]; returns the (possibly annotated) id. *)
let parse_formal (f : Stx.t) : Stx.t * Stx.t option =
  match Stx.view f with
  | Stx.Id _ -> (f, None)
  | Stx.List [ x; colon; ty ] when Stx.is_id x && Stx.is_sym ":" colon -> (annotate x ty, Some ty)
  | _ -> err "expected a formal: x or [x : Type]" f

(* A binding clause is [x e] or [x : T e]. *)
let parse_clause (c : Stx.t) : Stx.t * Stx.t =
  match Stx.to_list c with
  | Some [ x; e ] when Stx.is_id x -> (x, e)
  | Some [ x; colon; ty; e ] when Stx.is_id x && Stx.is_sym ":" colon -> (annotate x ty, e)
  | _ -> err "expected a binding clause: [x e] or [x : Type e]" c

(* -- surface macros ------------------------------------------------------------------- *)

let m_define form =
  match Stx.to_list form with
  | Some [ _; x; colon; ty; rhs ] when Stx.is_id x && Stx.is_sym ":" colon ->
      (* (define x : T rhs) *)
      sl ~loc:(Stx.loc form) [ u "define-values"; sl [ annotate x ty ]; rhs ]
  | Some [ _; x; rhs ] when Stx.is_id x ->
      sl ~loc:(Stx.loc form) [ u "define-values"; sl [ x ]; rhs ]
  | Some (_ :: header :: rest) -> (
      (* (define (f formal ...) [: R] body ...) *)
      match Stx.view header with
      | Stx.DotList _ -> err "define: rest arguments are not supported in typed code" header
      | Stx.List (fname :: formals) when Stx.is_id fname -> (
          let formals = List.map parse_formal formals in
          let formal_ids = List.map fst formals in
          let build ret_ty body =
            let fname =
              match (ret_ty, List.map snd formals) with
              | Some rng, tys when List.for_all Option.is_some tys ->
                  annotate fname (arrow_ty (List.map Option.get tys) rng)
              | _ -> fname
            in
            sl ~loc:(Stx.loc form)
              [
                u "define-values";
                sl [ fname ];
                sl ((u "#%plain-lambda") :: sl formal_ids :: body);
              ]
          in
          match rest with
          | colon :: ret_ty :: body when Stx.is_sym ":" colon && body <> [] ->
              build (Some ret_ty) body
          | body when body <> [] -> build None body
          | _ -> err "define: bad syntax" form)
      | _ -> err "define: bad syntax" form)
  | _ -> err "define: bad syntax" form

let m_lambda form =
  match Stx.to_list form with
  | Some (_ :: formals :: body) when body <> [] -> (
      match Stx.view formals with
      | Stx.List fs ->
          let ids = List.map (fun f -> fst (parse_formal f)) fs in
          sl ~loc:(Stx.loc form) ((u "#%plain-lambda") :: sl ids :: body)
      | _ -> err "lambda: typed code does not support rest arguments" formals)
  | _ -> err "lambda: bad syntax" form

(* typed let: plain, annotated clauses, and the named form with an optional
   return annotation: (let loop : R ([x : T e] ...) body ...) *)
let rec m_let form =
  match Stx.to_list form with
  | Some (_ :: name :: colon :: ret_ty :: clauses :: body)
    when Stx.is_id name && Stx.is_sym ":" colon && body <> [] ->
      build_named_let form name (Some ret_ty) clauses body
  | Some (_ :: name :: clauses :: body)
    when Stx.is_id name && (match Stx.view clauses with Stx.List _ -> true | _ -> false)
         && body <> []
         && not (Stx.is_sym ":" name) ->
      (* distinguish named let from plain let: plain let's second element is
         the clause list, which is not an identifier *)
      build_named_let form name None clauses body
  | Some (_ :: clauses :: body) when body <> [] ->
      let parsed =
        match Stx.to_list clauses with
        | Some cs -> List.map parse_clause cs
        | None -> err "let: bad bindings" clauses
      in
      sl ~loc:(Stx.loc form)
        ((u "let-values")
        :: sl (List.map (fun (x, e) -> sl [ sl [ x ]; e ]) parsed)
        :: body)
  | _ -> err "let: bad syntax" form

and build_named_let form name ret_ty clauses body =
  let parsed =
    match Stx.to_list clauses with
    | Some cs -> List.map (fun c -> (parse_clause c, c)) cs
    | None -> err "let: bad bindings" clauses
  in
  let ids = List.map (fun ((x, _), _) -> x) parsed in
  let inits = List.map (fun ((_, e), _) -> e) parsed in
  let name =
    match ret_ty with
    | Some rng ->
        let arg_tys =
          List.map
            (fun ((x, _), c) ->
              match Stx.property_get Check.annotation_key x with
              | Some ty -> ty
              | None -> err "named let with a return type needs annotated bindings" c)
            parsed
        in
        annotate name (arrow_ty arg_tys rng)
    | None -> name
  in
  sl ~loc:(Stx.loc form)
    [
      u "letrec-values";
      sl [ sl [ sl [ name ]; sl ((u "#%plain-lambda") :: sl ids :: body) ] ];
      sl (name :: inits);
    ]

let m_let_colon form =
  (* let: is the same surface form; reuse *)
  m_let form

(* typed let*: sequential annotated clauses as nested let-values *)
let m_let_star form =
  match Stx.to_list form with
  | Some (_ :: clauses :: body) when body <> [] ->
      let parsed =
        match Stx.to_list clauses with
        | Some cs -> List.map parse_clause cs
        | None -> err "let*: bad bindings" clauses
      in
      List.fold_right
        (fun (x, e) acc -> sl [ u "let-values"; sl [ sl [ sl [ x ]; e ] ]; acc ])
        parsed
        (match body with [ e ] -> e | es -> sl ((u "begin") :: es))
  | _ -> err "let*: bad syntax" form

let m_colon form =
  (* (: id Type) — record a pending declaration (§4.4 first pass); the
     checker picks it up when the definition is seen *)
  match Stx.to_list form with
  | Some [ _; id; ty ] when Stx.is_id id ->
      (try Hashtbl.replace Check.pending_decls (Stx.sym_exn id) (Types.of_stx ty)
       with Types.Parse_error (m, _) -> err m ty);
      sl [ u "begin"; sl [ u "void" ] ]
  | Some (_ :: id :: colon :: tys) when Stx.is_id id && Stx.is_sym ":" colon && tys <> [] ->
      (* (: f : T ... -> R) — TR's curried-colon shorthand *)
      let ty = sl tys in
      (try Hashtbl.replace Check.pending_decls (Stx.sym_exn id) (Types.of_stx ty)
       with Types.Parse_error (m, _) -> err m ty);
      sl [ u "begin"; sl [ u "void" ] ]
  | _ -> err ": bad syntax (expects (: id Type))" form

let m_ann form =
  match Stx.to_list form with
  | Some [ _; e; ty ] ->
      Stx.property_put "type-ascription" ty
        (sl ~loc:(Stx.loc form) [ Expander.core_id "#%expression"; e ])
  | _ -> err "ann: bad syntax" form

let m_define_type form =
  match Stx.to_list form with
  | Some [ _; name; body ] when Stx.is_id name ->
      let name_s = Stx.sym_exn name in
      (* register the name before parsing so the definition may be
         self-referential (§4.4: complex declarations, first pass) *)
      Types.define_name name_s Types.Any;
      let ty =
        try Types.of_stx body with Types.Parse_error (m, _) -> err ("define-type: " ^ m) form
      in
      Types.define_name name_s ty;
      (* persist across compilations, like type declarations (§5) *)
      sl ~loc:(Stx.loc form)
        [
          Expander.core_id "begin-for-syntax";
          sl
            [
              Expander.core_id "#%plain-app";
              u "typed:define-type";
              sl [ u "quote"; name ];
              sl [ u "quote"; body ];
            ];
        ]
  | _ -> err "define-type: bad syntax (expects (define-type Name Type))" form

(* -- the driver (figure 2) -------------------------------------------------------------- *)

let m_module_begin form =
  match Stx.to_list form with
  | Some (_ :: forms) -> (
      (* the flag is set before the module's contents expand (§6.2) *)
      Boundary.set_typed_context ();
      Hashtbl.reset Check.pending_decls;
      let wrapped = sl ((Expander.core_id "#%plain-module-begin") :: forms) in
      let expanded = Expander.local_expand wrapped Expander.ModuleBegin in
      match Stx.view expanded with
      | Stx.List (mb :: core_forms) ->
          (* Check with a dedicated reporter so the checker accumulates
             every type error in the module (multi-error recovery); on any
             error, deliver the whole batch at once.  The reporter is
             uninstalled before the optimizer runs, so its internal
             type queries keep their fail-fast behavior. *)
          let reporter = Reporter.create () in
          (try Reporter.with_reporter reporter (fun () -> Check.check_module core_forms)
           with Check.Type_error (m, s) ->
             (* belt and braces: a type error that escaped recovery *)
             Reporter.report reporter (Check.diagnostic_of m s));
          if Reporter.has_errors reporter then
            raise (Diagnostic.Failed (Reporter.diagnostics reporter));
          let optimized = Optimize.optimize_module core_forms in
          (if Sys.getenv_opt "LIBLANG_DEBUG_OPT" <> None then
             List.iter (fun f -> print_endline (Stx.to_string f)) optimized);
          let rewritten = Boundary.rewrite_provides optimized in
          Stx.rewrap expanded (Stx.List (mb :: rewritten))
      | _ -> err "internal error: bad module-begin expansion" form)
  | _ -> err "#%module-begin: bad syntax" form

(* -- language assembly -------------------------------------------------------------------- *)

let overridden = [ "define"; "lambda"; "λ"; "let"; "let*"; "#%module-begin" ]

let typed_mod, tid =
  (* phase-1 helpers live in the base module so generated code can always
     reach them *)
  Modsys.add_builtin_exports Baselang.racket_mod ~ctx_id:Baselang.bid
    ~values:Boundary.phase1_values ();
  let reexports =
    List.filter_map
      (fun (e : Modsys.export) ->
        if List.mem e.Modsys.ext_name overridden then None
        else Some (e.Modsys.ext_name, e.Modsys.binding))
      (Modsys.find "racket").Modsys.exports
  in
  let native name f = (name, Denote.Native (name, f)) in
  Modsys.declare_builtin ~name:"typed/racket" ~reexports
    ~macros:
      [
        native "define" m_define;
        native "define:" m_define;
        native "lambda" m_lambda;
        native "λ" m_lambda;
        native "lambda:" m_lambda;
        native "let" m_let;
        native "let:" m_let_colon;
        native "let*" m_let_star;
        native ":" m_colon;
        native "ann" m_ann;
        native "require/typed" Boundary.m_require_typed;
        native "define-type" m_define_type;
        native "#%module-begin" m_module_begin;
      ]
    ()

let () =
  Modsys.alias typed_mod "typed";
  Modsys.alias typed_mod "simple-type"

(** Force linking/initialization of the typed language. *)
let init () = ignore (typed_mod, tid)
