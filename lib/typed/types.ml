(** The type grammar of the typed sister language (paper §3–4).

    A numeric hierarchy matching the runtime tower
    (Integer, Float ⊂ Real ⊂ Number; Float-Complex ⊂ Number), booleans,
    strings, symbols, chars, lists, pairs, vectors, function types, and
    finite unions.  Types serialize to datums so that compiled modules can
    persist their type environment (§5). *)

module Stx = Liblang_stx.Stx
module Datum = Liblang_reader.Datum

type t =
  | Any
  | Integer
  | Float
  | FloatComplex
  | Real
  | Number
  | Boolean
  | String_
  | Symbol
  | Char_
  | Void_
  | Null
  | Listof of t
  | ListT of t list  (** fixed-length list: [(List T ...)] *)
  | Pairof of t * t
  | Vectorof of t
  | Fun of t list * t
  | Union of t list
  | Name of string
      (** a named (possibly recursive) type introduced by [define-type];
          resolved through {!name_env} *)

exception Parse_error of string * Liblang_reader.Srcloc.t

(* Internal raises carry no location; {!of_stx} attaches the syntax
   object's srcloc on the way out so the diagnostics engine can point at
   the offending type expression. *)
let perr msg = raise (Parse_error (msg, Liblang_reader.Srcloc.none))

(* Named-type definitions ([define-type]); names are global to the process
   (see DESIGN.md).  Self-reference is allowed: resolution is lazy. *)
let name_env : (string, t) Hashtbl.t = Hashtbl.create 32

let define_name name t = Hashtbl.replace name_env name t

let resolve_name name =
  match Hashtbl.find_opt name_env name with
  | Some t -> t
  | None -> perr ("unknown type name: " ^ name)

(* -- printing ----------------------------------------------------------------- *)

let rec to_string = function
  | Any -> "Any"
  | Integer -> "Integer"
  | Float -> "Float"
  | FloatComplex -> "Float-Complex"
  | Real -> "Real"
  | Number -> "Number"
  | Boolean -> "Boolean"
  | String_ -> "String"
  | Symbol -> "Symbol"
  | Char_ -> "Char"
  | Void_ -> "Void"
  | Null -> "Null"
  | Listof t -> "(Listof " ^ to_string t ^ ")"
  | ListT ts -> "(List" ^ String.concat "" (List.map (fun t -> " " ^ to_string t) ts) ^ ")"
  | Pairof (a, d) -> "(Pairof " ^ to_string a ^ " " ^ to_string d ^ ")"
  | Vectorof t -> "(Vectorof " ^ to_string t ^ ")"
  | Fun (doms, rng) ->
      "(" ^ String.concat " " (List.map to_string doms) ^ " -> " ^ to_string rng ^ ")"
  | Union ts -> "(U" ^ String.concat "" (List.map (fun t -> " " ^ to_string t) ts) ^ ")"
  | Name n -> n

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* -- equality & subtyping -------------------------------------------------------- *)

let rec equal a b =
  match (a, b) with
  | Name x, Name y -> String.equal x y
  | Listof x, Listof y | Vectorof x, Vectorof y -> equal x y
  | ListT xs, ListT ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Pairof (a1, d1), Pairof (a2, d2) -> equal a1 a2 && equal d1 d2
  | Fun (ds1, r1), Fun (ds2, r2) ->
      List.length ds1 = List.length ds2 && List.for_all2 equal ds1 ds2 && equal r1 r2
  | Union xs, Union ys ->
      List.length xs = List.length ys
      && List.for_all (fun x -> List.exists (equal x) ys) xs
      && List.for_all (fun y -> List.exists (equal y) xs) ys
  | _ -> a = b

let rec subtype_assume assume a b =
  equal a b
  ||
  let subtype a b =
    match (a, b) with
    | Name x, Name y -> List.mem (x, y) assume || subtype_assume ((x, y) :: assume) a b
    | _ -> subtype_assume assume a b
  in
  match (a, b) with
  | Name x, Name y when List.mem (x, y) assume -> true
  | Name x, _ -> subtype_assume ((x, to_string b) :: assume) (resolve_name x) b
  | _, Name y -> subtype_assume ((to_string a, y) :: assume) a (resolve_name y)
  | _, Any -> true
  | Any, _ -> true (* Any is the dynamic type: see DESIGN.md *)
  | Integer, (Real | Number) -> true
  | Float, (Real | Number) -> true
  | Real, Number -> true
  | FloatComplex, Number -> true
  | Union xs, _ -> List.for_all (fun x -> subtype x b) xs
  | _, Union ys -> List.exists (fun y -> subtype a y) ys
  | Null, Listof _ -> true
  | ListT xs, Listof t -> List.for_all (fun x -> subtype x t) xs
  | ListT (x :: xs), Pairof (pa, pd) -> subtype x pa && subtype (ListT xs) pd
  | ListT [], Null -> true
  | ListT _, ListT _ -> false (* lengths differ; equal case handled above *)
  | Listof x, Listof y -> subtype x y
  | Pairof (a1, d1), Pairof (a2, d2) -> subtype a1 a2 && subtype d1 d2
  | Pairof (a1, d1), Listof t -> subtype a1 t && subtype d1 (Listof t)
  | Vectorof x, Vectorof y -> equal x y (* mutable: invariant *)
  | Fun (ds1, r1), Fun (ds2, r2) ->
      List.length ds1 = List.length ds2
      && List.for_all2 (fun d2 d1 -> subtype d2 d1) ds2 ds1
      && subtype r1 r2
  | _ -> false

and subtype a b = subtype_assume [] a b

(* Least upper bound within this finite grammar; used to join [if]
   branches. *)
let join a b =
  match (a, b) with
  | Any, _ | _, Any -> Any (* the dynamic type absorbs *)
  | _ -> (
  if subtype a b then b
  else if subtype b a then a
  else
    match (a, b) with
    | (Integer | Float | Real), (Integer | Float | Real) -> Real
    | (Integer | Float | Real | FloatComplex | Number), (Integer | Float | Real | FloatComplex | Number)
      ->
        Number
    | Union xs, Union ys -> Union (xs @ List.filter (fun y -> not (List.exists (equal y) xs)) ys)
    | Union xs, t | t, Union xs -> if List.exists (equal t) xs then Union xs else Union (t :: xs)
    | _ -> Union [ a; b ])

(* -- parsing from syntax / datums --------------------------------------------------- *)

let base_types =
  [
    ("Any", Any);
    ("Integer", Integer);
    ("Exact-Integer", Integer);
    ("Natural", Integer);
    ("Float", Float);
    ("Flonum", Float);
    ("Float-Complex", FloatComplex);
    ("Real", Real);
    ("Number", Number);
    ("Complex", Number);
    ("Boolean", Boolean);
    ("String", String_);
    ("Symbol", Symbol);
    ("Char", Char_);
    ("Void", Void_);
    ("Null", Null);
  ]

let rec of_datum (d : Datum.t) : t =
  match d with
  | Datum.Atom (Datum.Sym s) -> (
      match List.assoc_opt s base_types with
      | Some t -> t
      | None ->
          if Hashtbl.mem name_env s then Name s
          else perr ("unknown type: " ^ s))
  | Datum.List xs -> (
      let ds = List.map (fun a -> a.Datum.d) xs in
      match ds with
      | [ Datum.Atom (Datum.Sym "Listof"); e ] -> Listof (of_datum e)
      | Datum.Atom (Datum.Sym "List") :: es -> ListT (List.map of_datum es)
      | [ Datum.Atom (Datum.Sym "Pairof"); a; d ] -> Pairof (of_datum a, of_datum d)
      | [ Datum.Atom (Datum.Sym "Vectorof"); e ] -> Vectorof (of_datum e)
      | Datum.Atom (Datum.Sym "U") :: es -> (
          match List.map of_datum es with
          | [] -> perr "empty union type"
          | [ t ] -> t
          | ts -> Union ts)
      | [ Datum.Atom (Datum.Sym "Rec"); _; _ ] ->
          perr "use define-type for recursive types"
      | Datum.Atom (Datum.Sym "->") :: rest -> (
          match List.rev (List.map of_datum rest) with
          | rng :: doms_rev -> Fun (List.rev doms_rev, rng)
          | [] -> perr "bad function type")
      | _ -> (
          (* infix arrow: (T ... -> R), possibly with several arrows for
             curried shapes — only the last arrow splits *)
          let is_arrow = function Datum.Atom (Datum.Sym "->") -> true | _ -> false in
          match List.rev ds with
          | rng :: arrow :: doms_rev when is_arrow arrow ->
              Fun (List.rev_map of_datum doms_rev, of_datum rng)
          | _ -> perr ("bad type syntax: " ^ Datum.to_string d)))
  | _ -> perr ("bad type syntax: " ^ Datum.to_string d)

let of_stx (s : Stx.t) : t =
  try of_datum (Stx.to_datum s)
  with Parse_error (m, loc) when Liblang_reader.Srcloc.is_none loc ->
    raise (Parse_error (m, Stx.loc s))

(* -- serialization (§5): types as datums ---------------------------------------------- *)

let atom_sym s = { Datum.d = Datum.Atom (Datum.Sym s); loc = Liblang_reader.Srcloc.none }
let dlist xs = Datum.List xs
let annot d = { Datum.d; loc = Liblang_reader.Srcloc.none }

let rec to_datum (t : t) : Datum.t =
  match t with
  | Any | Integer | Float | FloatComplex | Real | Number | Boolean | String_ | Symbol | Char_
  | Void_ | Null ->
      Datum.Atom (Datum.Sym (to_string t))
  | Listof e -> dlist [ atom_sym "Listof"; annot (to_datum e) ]
  | ListT es -> dlist (atom_sym "List" :: List.map (fun e -> annot (to_datum e)) es)
  | Pairof (a, d) -> dlist [ atom_sym "Pairof"; annot (to_datum a); annot (to_datum d) ]
  | Vectorof e -> dlist [ atom_sym "Vectorof"; annot (to_datum e) ]
  | Union ts -> dlist (atom_sym "U" :: List.map (fun e -> annot (to_datum e)) ts)
  | Fun (doms, rng) ->
      dlist (atom_sym "->" :: List.map (fun e -> annot (to_datum e)) (doms @ [ rng ]))
  | Name n -> Datum.Atom (Datum.Sym n)

(* -- convenience -------------------------------------------------------------------- *)

let is_function = function Fun _ -> true | _ -> false

(** Resolve through named types to a structural head (bounded, in case of a
    degenerate self-referential definition). *)
let unfold t =
  let rec go n t = if n = 0 then t else match t with Name x -> go (n - 1) (resolve_name x) | t -> t in
  go 16 t
