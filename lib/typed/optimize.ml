(** The type-driven optimizer (paper §7, figure 5).

    A source-to-source pass over typechecked core forms.  Uses of generic
    operations whose operand types were proved [Float] (or [Float-Complex])
    rewrite to the unsafe type-specialized primitives; accesses to values
    whose pair/vector shape is proved rewrite to tag-check-free accessors.
    The unsafe primitives additionally signal the backend's unboxing
    (see {!Liblang_runtime.Interp}). *)

module Stx = Liblang_stx.Stx
module Binding = Liblang_stx.Binding
module Denote = Liblang_expander.Denote
module Baselang = Liblang_modules.Baselang
open Types

(** Optimization levels, for the ablation benchmarks:
    - [O0]: no rewriting (typecheck only);
    - [O1]: rewrite, but the backend's float unboxing is disabled
      separately via {!Liblang_runtime.Interp.unboxing_enabled};
    - [O2]: full (default). *)
let enabled = ref true

(* rewrite statistics, for tests and reporting — domain-local so parallel
   compilations don't race on the table (each worker's rule firings also
   land in that worker's own metrics collector and merge on join) *)
let stats_key : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let[@inline] stats () = Domain.DLS.get stats_key

let count what =
  let stats = stats () in
  Hashtbl.replace stats what (1 + Option.value (Hashtbl.find_opt stats what) ~default:0);
  (* mirror each rule firing into the ambient metrics collector so
     [--profile] reports the rewrite histogram per run *)
  if Liblang_observe.Metrics.installed () then
    Liblang_observe.Metrics.count ("optimize." ^ what)

let stats_alist () =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) (stats ()) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_stats () = Hashtbl.reset (stats ())
let stat what = Option.value (Hashtbl.find_opt (stats ()) what) ~default:0
let total_rewrites () = Hashtbl.fold (fun _ n acc -> acc + n) (stats ()) 0

let u name = Baselang.bid name
let sl = Stx.list

let prim_name_of (op : Stx.t) : string option =
  if not (Stx.is_id op) then None
  else
    match Binding.resolve op with
    | Some b when Option.is_none (Check.lookup_type b) -> Base_env.prim_name_of b
    | _ -> None

let type_of (e : Stx.t) : Types.t option =
  try Some (Types.unfold (Check.type_of_expr e))
  with Check.Type_error _ | Types.Parse_error _ -> None

(* Any is the dynamic type: subtype is permissive on it, so every guard
   here must exclude it explicitly — the optimizer may only fire on types
   the checker actually proved. *)
let proved_subtype t sub = (not (equal t Any)) && subtype t sub

let is_float e = match type_of e with Some Float -> true | _ -> false

let is_cpx_able e =
  match type_of e with
  | Some t -> proved_subtype t FloatComplex || proved_subtype t Real
  | None -> false

let has_cpx es =
  List.exists
    (fun e -> match type_of e with Some t -> proved_subtype t FloatComplex | None -> false)
    es

let float_lit f =
  sl [ u "quote"; Stx.atom (Liblang_reader.Datum.Float f) ]

let fold_binary op_id args =
  match args with
  | first :: rest -> List.fold_left (fun acc e -> sl [ u "#%plain-app"; op_id; acc; e ]) first rest
  | [] -> assert false

let fl_binops = [ ("+", "unsafe-fl+"); ("-", "unsafe-fl-"); ("*", "unsafe-fl*"); ("/", "unsafe-fl/"); ("min", "unsafe-flmin"); ("max", "unsafe-flmax") ]
let fl_cmps = [ ("<", "unsafe-fl<"); (">", "unsafe-fl>"); ("<=", "unsafe-fl<="); (">=", "unsafe-fl>="); ("=", "unsafe-fl=") ]

let fl_unops =
  [
    ("abs", "unsafe-flabs");
    ("sqrt", "unsafe-flsqrt");
    ("sin", "unsafe-flsin");
    ("cos", "unsafe-flcos");
    ("tan", "unsafe-fltan");
    ("atan", "unsafe-flatan");
    ("exp", "unsafe-flexp");
    ("log", "unsafe-fllog");
    ("floor", "unsafe-flfloor");
    ("ceiling", "unsafe-flceiling");
    ("round", "unsafe-flround");
    ("truncate", "unsafe-fltruncate");
  ]

let cpx_binops = [ ("+", "unsafe-c+"); ("-", "unsafe-c-"); ("*", "unsafe-c*"); ("/", "unsafe-c/") ]

let core_kind (hd : Stx.t) : string option =
  match Binding.resolve hd with
  | None -> None
  | Some b -> ( match Denote.get b with Some (Denote.DCore n) -> Some n | _ -> None)

let rec optimize (s : Stx.t) : Stx.t =
  if (not !enabled) || Option.is_some (Stx.property_get Check.ignore_key s) then s
  else
    match Stx.view s with
    | Stx.List (hd :: args) when Stx.is_id hd -> (
        match core_kind hd with
        | Some "#%plain-app" -> (
            match args with
            | op :: operands -> optimize_app s hd op operands
            | [] -> s)
        | Some ("quote" | "quote-syntax") -> s
        | Some "if" -> (
            match args with
            | [ c; t; e ] -> (
                let c' = optimize c in
                (* propagate the checker's occurrence-typing narrowing, so
                   e.g. (car l) after a null? test specializes *)
                match Check.narrowing_of c with
                | Some (b, then_t, else_t) ->
                    let t' = Check.with_narrowed b then_t (fun () -> optimize t) in
                    let e' = Check.with_narrowed b else_t (fun () -> optimize e) in
                    Stx.rewrap s (Stx.List [ hd; c'; t'; e' ])
                | None -> Stx.rewrap s (Stx.List [ hd; c'; optimize t; optimize e ]))
            | _ -> Stx.rewrap s (Stx.List (hd :: List.map optimize args)))
        | Some ("begin" | "#%expression" | "set!") ->
            Stx.rewrap s (Stx.List (hd :: List.map optimize args))
        | Some "#%plain-lambda" -> (
            match args with
            | formals :: body ->
                Stx.rewrap s (Stx.List (hd :: formals :: List.map optimize body))
            | [] -> s)
        | Some ("let-values" | "letrec-values") -> (
            match args with
            | clauses :: body ->
                let clauses' =
                  match Stx.to_list clauses with
                  | Some cs ->
                      let opt_clause c =
                        match Stx.to_list c with
                        | Some [ ids; rhs ] -> Stx.rewrap c (Stx.List [ ids; optimize rhs ])
                        | _ -> c
                      in
                      Stx.rewrap clauses (Stx.List (List.map opt_clause cs))
                  | None -> clauses
                in
                Stx.rewrap s (Stx.List (hd :: clauses' :: List.map optimize body))
            | [] -> s)
        | Some "define-values" -> (
            match args with
            | [ ids; rhs ] -> Stx.rewrap s (Stx.List [ hd; ids; optimize rhs ])
            | _ -> s)
        | Some ("define-syntaxes" | "begin-for-syntax" | "#%provide" | "#%require") -> s
        | _ -> s)
    | _ -> s

and optimize_app (s : Stx.t) (app_hd : Stx.t) (op : Stx.t) (operands : Stx.t list) : Stx.t =
  let default () =
    Stx.rewrap s (Stx.List (app_hd :: op :: List.map optimize operands))
  in
  match prim_name_of op with
  | None -> default ()
  | Some name -> (
      let all_float = operands <> [] && List.for_all is_float operands in
      let opt_operands () = List.map optimize operands in
      match (name, operands, all_float) with
      (* float specialization (figure 5) *)
      | _, _ :: _ :: _, true when List.mem_assoc name fl_binops ->
          count ("fl:" ^ name);
          fold_binary (u (List.assoc name fl_binops)) (opt_operands ())
      | "-", [ x ], true ->
          count "fl:-";
          sl [ u "#%plain-app"; u "unsafe-fl-"; float_lit 0.0; optimize x ]
      | "/", [ x ], true ->
          count "fl:/";
          sl [ u "#%plain-app"; u "unsafe-fl/"; float_lit 1.0; optimize x ]
      | _, [ _; _ ], true when List.mem_assoc name fl_cmps ->
          count ("fl:" ^ name);
          sl ((u "#%plain-app") :: u (List.assoc name fl_cmps) :: opt_operands ())
      | _, [ _ ], true when List.mem_assoc name fl_unops ->
          count ("fl:" ^ name);
          sl ((u "#%plain-app") :: u (List.assoc name fl_unops) :: opt_operands ())
      | "expt", [ _; _ ], true ->
          count "fl:expt";
          sl ((u "#%plain-app") :: u "unsafe-flexpt" :: opt_operands ())
      | "add1", [ x ], true ->
          count "fl:add1";
          sl [ u "#%plain-app"; u "unsafe-fl+"; optimize x; float_lit 1.0 ]
      | "sub1", [ x ], true ->
          count "fl:sub1";
          sl [ u "#%plain-app"; u "unsafe-fl-"; optimize x; float_lit 1.0 ]
      (* float-complex specialization (§7.2's arity-raising analogue) *)
      | _, _ :: _ :: _, _
        when List.mem_assoc name cpx_binops
             && List.for_all is_cpx_able operands
             && has_cpx operands ->
          count ("cpx:" ^ name);
          fold_binary (u (List.assoc name cpx_binops)) (opt_operands ())
      | "magnitude", [ x ], _ when type_of x = Some FloatComplex ->
          count "cpx:magnitude";
          sl [ u "#%plain-app"; u "unsafe-magnitude"; optimize x ]
      | "real-part", [ x ], _ when type_of x = Some FloatComplex ->
          count "cpx:real-part";
          sl [ u "#%plain-app"; u "unsafe-real-part"; optimize x ]
      | "imag-part", [ x ], _ when type_of x = Some FloatComplex ->
          count "cpx:imag-part";
          sl [ u "#%plain-app"; u "unsafe-imag-part"; optimize x ]
      | ("exact->inexact" | "exact->float"), [ x ], _
        when (match type_of x with Some t -> proved_subtype t Integer | None -> false) ->
          count "fl:fx->fl";
          sl [ u "#%plain-app"; u "unsafe-fx->fl"; optimize x ]
      | "make-rectangular", [ _; _ ], true ->
          count "cpx:make-rectangular";
          sl ((u "#%plain-app") :: u "unsafe-make-rectangular" :: opt_operands ())
      (* tag-check elimination (§3.2, the [first] example) *)
      | ("car" | "first"), [ x ], _ when pair_shaped x ->
          count "pair:car";
          sl [ u "#%plain-app"; u "unsafe-car"; optimize x ]
      | ("cdr" | "rest"), [ x ], _ when pair_shaped x ->
          count "pair:cdr";
          sl [ u "#%plain-app"; u "unsafe-cdr"; optimize x ]
      (* vector specialization *)
      | "vector-ref", [ v; i ], _ when vector_shaped v && integer_typed i ->
          count "vec:ref";
          sl [ u "#%plain-app"; u "unsafe-vector-ref"; optimize v; optimize i ]
      | "vector-set!", [ v; i; x ], _ when vector_shaped v && integer_typed i ->
          count "vec:set";
          sl [ u "#%plain-app"; u "unsafe-vector-set!"; optimize v; optimize i; optimize x ]
      | "vector-length", [ v ], _ when vector_shaped v ->
          count "vec:length";
          sl [ u "#%plain-app"; u "unsafe-vector-length"; optimize v ]
      | _ -> default ())

and pair_shaped e =
  match type_of e with Some (ListT (_ :: _)) | Some (Pairof _) -> true | _ -> false

and vector_shaped e = match type_of e with Some (Vectorof _) -> true | _ -> false
and integer_typed e = match type_of e with Some t -> proved_subtype t Integer | None -> false

(** Optimize every form of a typechecked module body. *)
let optimize_module (forms : Stx.t list) : Stx.t list =
  Liblang_observe.Trace.span "optimize" @@ fun () ->
  Liblang_observe.Metrics.time "phase.optimize" @@ fun () -> List.map optimize forms
