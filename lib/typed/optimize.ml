(** The type-driven optimizer (paper §7, figure 5).

    A source-to-source pass over typechecked core forms.  Uses of generic
    operations whose operand types were proved [Float] (or [Float-Complex])
    rewrite to the unsafe type-specialized primitives; accesses to values
    whose pair/vector shape is proved rewrite to tag-check-free accessors.
    The unsafe primitives additionally signal the backend's unboxing
    (see {!Liblang_runtime.Interp}). *)

module Stx = Liblang_stx.Stx
module Binding = Liblang_stx.Binding
module Denote = Liblang_expander.Denote
module Baselang = Liblang_modules.Baselang
module Zcfa = Liblang_analysis.Zcfa
module Facts = Liblang_analysis.Facts
open Types

(** Optimization levels, for the ablation benchmarks:
    - [O0]: no rewriting (typecheck only);
    - [O1]: rewrite, but the backend's float unboxing is disabled
      separately via {!Liblang_runtime.Interp.unboxing_enabled};
    - [O2]: full (default). *)
let enabled = ref true

(* rewrite statistics, for tests and reporting — domain-local so parallel
   compilations don't race on the table (each worker's rule firings also
   land in that worker's own metrics collector and merge on join) *)
let stats_key : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let[@inline] stats () = Domain.DLS.get stats_key

let count what =
  let stats = stats () in
  Hashtbl.replace stats what (1 + Option.value (Hashtbl.find_opt stats what) ~default:0);
  (* mirror each rule firing into the ambient metrics collector so
     [--profile] reports the rewrite histogram per run *)
  if Liblang_observe.Metrics.installed () then
    Liblang_observe.Metrics.count ("optimize." ^ what)

(* a flow-fact-driven rule firing: the per-rule histogram entry plus a
   flat counter the perf canary and the bench gates assert on *)
let count_cfa what metric =
  count what;
  Liblang_observe.Metrics.count metric

let stats_alist () =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) (stats ()) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_stats () = Hashtbl.reset (stats ())
let stat what = Option.value (Hashtbl.find_opt (stats ()) what) ~default:0
let total_rewrites () = Hashtbl.fold (fun _ n acc -> acc + n) (stats ()) 0

(* flow facts for the module being optimized, produced by {!Zcfa} at the
   top of [optimize_module] — domain-local for the same reason as [stats] *)
let facts_key : Facts.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let[@inline] facts () = Domain.DLS.get facts_key

let u name = Baselang.bid name
let sl = Stx.list

let prim_name_of (op : Stx.t) : string option =
  if not (Stx.is_id op) then None
  else
    match Binding.resolve op with
    | Some b when Option.is_none (Check.lookup_type b) -> Base_env.prim_name_of b
    | _ -> None

let type_of (e : Stx.t) : Types.t option =
  try Some (Types.unfold (Check.type_of_expr e))
  with Check.Type_error _ | Types.Parse_error _ -> None

(* Any is the dynamic type: subtype is permissive on it, so every guard
   here must exclude it explicitly — the optimizer may only fire on types
   the checker actually proved. *)
let proved_subtype t sub = (not (equal t Any)) && subtype t sub

let is_float e = match type_of e with Some Float -> true | _ -> false

let is_cpx_able e =
  match type_of e with
  | Some t -> proved_subtype t FloatComplex || proved_subtype t Real
  | None -> false

let has_cpx es =
  List.exists
    (fun e -> match type_of e with Some t -> proved_subtype t FloatComplex | None -> false)
    es

let float_lit f =
  sl [ u "quote"; Stx.atom (Liblang_reader.Datum.Float f) ]

let fold_binary op_id args =
  match args with
  | first :: rest -> List.fold_left (fun acc e -> sl [ u "#%plain-app"; op_id; acc; e ]) first rest
  | [] -> assert false

let fl_binops = [ ("+", "unsafe-fl+"); ("-", "unsafe-fl-"); ("*", "unsafe-fl*"); ("/", "unsafe-fl/"); ("min", "unsafe-flmin"); ("max", "unsafe-flmax") ]
let fl_cmps = [ ("<", "unsafe-fl<"); (">", "unsafe-fl>"); ("<=", "unsafe-fl<="); (">=", "unsafe-fl>="); ("=", "unsafe-fl=") ]

let fl_unops =
  [
    ("abs", "unsafe-flabs");
    ("sqrt", "unsafe-flsqrt");
    ("sin", "unsafe-flsin");
    ("cos", "unsafe-flcos");
    ("tan", "unsafe-fltan");
    ("atan", "unsafe-flatan");
    ("exp", "unsafe-flexp");
    ("log", "unsafe-fllog");
    ("floor", "unsafe-flfloor");
    ("ceiling", "unsafe-flceiling");
    ("round", "unsafe-flround");
    ("truncate", "unsafe-fltruncate");
  ]

let cpx_binops = [ ("+", "unsafe-c+"); ("-", "unsafe-c-"); ("*", "unsafe-c*"); ("/", "unsafe-c/") ]

let core_kind (hd : Stx.t) : string option =
  match Binding.resolve hd with
  | None -> None
  | Some b -> ( match Denote.get b with Some (Denote.DCore n) -> Some n | _ -> None)

let rec optimize (s : Stx.t) : Stx.t =
  if (not !enabled) || Option.is_some (Stx.property_get Check.ignore_key s) then s
  else
    match Stx.view s with
    | Stx.List (hd :: args) when Stx.is_id hd -> (
        match core_kind hd with
        | Some "#%plain-app" -> (
            match args with
            | op :: operands -> optimize_app s hd op operands
            | [] -> s)
        | Some ("quote" | "quote-syntax") -> s
        | Some "if" -> (
            match args with
            | [ c; t; e ] -> (
                let c' = optimize c in
                (* propagate the checker's occurrence-typing narrowing, so
                   e.g. (car l) after a null? test specializes *)
                match Check.narrowing_of c with
                | Some (b, then_t, else_t) ->
                    let t' = Check.with_narrowed b then_t (fun () -> optimize t) in
                    let e' = Check.with_narrowed b else_t (fun () -> optimize e) in
                    Stx.rewrap s (Stx.List [ hd; c'; t'; e' ])
                | None -> Stx.rewrap s (Stx.List [ hd; c'; optimize t; optimize e ]))
            | _ -> Stx.rewrap s (Stx.List (hd :: List.map optimize args)))
        | Some ("begin" | "#%expression" | "set!") ->
            Stx.rewrap s (Stx.List (hd :: List.map optimize args))
        | Some "#%plain-lambda" -> (
            match args with
            | formals :: body ->
                Stx.rewrap s (Stx.List (hd :: formals :: List.map optimize body))
            | [] -> s)
        | Some ("let-values" | "letrec-values") -> (
            match args with
            | clauses :: body ->
                let clauses, body =
                  (* opt:closure-unbox applies to non-recursive bindings
                     only: in a letrec the call could run before the
                     right-hand sides finish evaluating *)
                  if core_kind hd = Some "let-values" then unbox_clauses clauses body
                  else (clauses, body)
                in
                let clauses' =
                  match Stx.to_list clauses with
                  | Some cs ->
                      let opt_clause c =
                        match Stx.to_list c with
                        | Some [ ids; rhs ] -> Stx.rewrap c (Stx.List [ ids; optimize rhs ])
                        | _ -> c
                      in
                      Stx.rewrap clauses (Stx.List (List.map opt_clause cs))
                  | None -> clauses
                in
                Stx.rewrap s (Stx.List (hd :: clauses' :: List.map optimize body))
            | [] -> s)
        | Some "define-values" -> (
            match args with
            | [ ids; rhs ] -> Stx.rewrap s (Stx.List [ hd; ids; optimize rhs ])
            | _ -> s)
        | Some ("define-syntaxes" | "begin-for-syntax" | "#%provide" | "#%require") -> s
        | _ -> s)
    | _ -> s

and optimize_app (s : Stx.t) (app_hd : Stx.t) (op : Stx.t) (operands : Stx.t list) : Stx.t =
  let default () =
    let s' = Stx.rewrap s (Stx.List (app_hd :: op :: List.map optimize operands)) in
    (* opt:direct-call — the analysis proved a unique callee here, so mark
       the rebuilt node; Compile turns the property into [Ast.DirectApp]
       and the backend into a known-arity call *)
    match facts () with
    | Some facts -> (
        match Facts.direct_callee facts s with
        | Some c when c.Facts.callee_arity = List.length operands ->
            count_cfa "opt:direct-call" "opt.direct_calls";
            Stx.property_put "analysis:direct-call"
              (Stx.atom (Liblang_reader.Datum.Sym c.Facts.callee_name))
              s'
        | _ -> s')
    | None -> s'
  in
  let proved_inbounds tbl_lookup =
    match facts () with Some facts -> tbl_lookup facts s | None -> false
  in
  match prim_name_of op with
  | None -> default ()
  | Some name -> (
      let all_float = operands <> [] && List.for_all is_float operands in
      let opt_operands () = List.map optimize operands in
      match (name, operands, all_float) with
      (* float specialization (figure 5) *)
      | _, _ :: _ :: _, true when List.mem_assoc name fl_binops ->
          count ("fl:" ^ name);
          fold_binary (u (List.assoc name fl_binops)) (opt_operands ())
      | "-", [ x ], true ->
          count "fl:-";
          sl [ u "#%plain-app"; u "unsafe-fl-"; float_lit 0.0; optimize x ]
      | "/", [ x ], true ->
          count "fl:/";
          sl [ u "#%plain-app"; u "unsafe-fl/"; float_lit 1.0; optimize x ]
      | _, [ _; _ ], true when List.mem_assoc name fl_cmps ->
          count ("fl:" ^ name);
          sl ((u "#%plain-app") :: u (List.assoc name fl_cmps) :: opt_operands ())
      | _, [ _ ], true when List.mem_assoc name fl_unops ->
          count ("fl:" ^ name);
          sl ((u "#%plain-app") :: u (List.assoc name fl_unops) :: opt_operands ())
      | "expt", [ _; _ ], true ->
          count "fl:expt";
          sl ((u "#%plain-app") :: u "unsafe-flexpt" :: opt_operands ())
      | "add1", [ x ], true ->
          count "fl:add1";
          sl [ u "#%plain-app"; u "unsafe-fl+"; optimize x; float_lit 1.0 ]
      | "sub1", [ x ], true ->
          count "fl:sub1";
          sl [ u "#%plain-app"; u "unsafe-fl-"; optimize x; float_lit 1.0 ]
      (* float-complex specialization (§7.2's arity-raising analogue) *)
      | _, _ :: _ :: _, _
        when List.mem_assoc name cpx_binops
             && List.for_all is_cpx_able operands
             && has_cpx operands ->
          count ("cpx:" ^ name);
          fold_binary (u (List.assoc name cpx_binops)) (opt_operands ())
      | "magnitude", [ x ], _ when type_of x = Some FloatComplex ->
          count "cpx:magnitude";
          sl [ u "#%plain-app"; u "unsafe-magnitude"; optimize x ]
      | "real-part", [ x ], _ when type_of x = Some FloatComplex ->
          count "cpx:real-part";
          sl [ u "#%plain-app"; u "unsafe-real-part"; optimize x ]
      | "imag-part", [ x ], _ when type_of x = Some FloatComplex ->
          count "cpx:imag-part";
          sl [ u "#%plain-app"; u "unsafe-imag-part"; optimize x ]
      | ("exact->inexact" | "exact->float"), [ x ], _
        when (match type_of x with Some t -> proved_subtype t Integer | None -> false) ->
          count "fl:fx->fl";
          sl [ u "#%plain-app"; u "unsafe-fx->fl"; optimize x ]
      | "make-rectangular", [ _; _ ], true ->
          count "cpx:make-rectangular";
          sl ((u "#%plain-app") :: u "unsafe-make-rectangular" :: opt_operands ())
      (* tag-check elimination (§3.2, the [first] example) *)
      | ("car" | "first"), [ x ], _ when pair_shaped x ->
          count "pair:car";
          sl [ u "#%plain-app"; u "unsafe-car"; optimize x ]
      | ("cdr" | "rest"), [ x ], _ when pair_shaped x ->
          count "pair:cdr";
          sl [ u "#%plain-app"; u "unsafe-cdr"; optimize x ]
      (* vector specialization — the flow-proved in-bounds arms must come
         first, or the type-only rewrite claims the site *)
      | "vector-ref", [ v; i ], _
        when proved_inbounds Facts.ref_inbounds && vector_shaped v && integer_typed i ->
          count_cfa "vec:ref!" "opt.vec_unchecked";
          sl [ u "#%plain-app"; u "unchecked-vector-ref"; optimize v; optimize i ]
      | "vector-set!", [ v; i; x ], _
        when proved_inbounds Facts.set_inbounds && vector_shaped v && integer_typed i ->
          count_cfa "vec:set!" "opt.vec_unchecked";
          sl [ u "#%plain-app"; u "unchecked-vector-set!"; optimize v; optimize i; optimize x ]
      | "vector-ref", [ v; i ], _ when vector_shaped v && integer_typed i ->
          count "vec:ref";
          sl [ u "#%plain-app"; u "unsafe-vector-ref"; optimize v; optimize i ]
      | "vector-set!", [ v; i; x ], _ when vector_shaped v && integer_typed i ->
          count "vec:set";
          sl [ u "#%plain-app"; u "unsafe-vector-set!"; optimize v; optimize i; optimize x ]
      | "vector-length", [ v ], _ when vector_shaped v ->
          count "vec:length";
          sl [ u "#%plain-app"; u "unsafe-vector-length"; optimize v ]
      | _ -> default ())

(* opt:closure-unbox — a clause [(f) (lambda (x ...) body ...)] whose
   lambda the analysis proved single-use in operator position inlines at
   its unique call site as (let-values ([(x) arg] ...) body ...), and the
   clause (with its per-iteration closure allocation) disappears.  Free
   variables keep their meaning because fully-expanded bindings are
   uid-addressed: the call site sits lexically inside the defining scope,
   so every free reference of [body] still resolves, shadow-free. *)
and unbox_clauses (clauses : Stx.t) (body : Stx.t list) : Stx.t * Stx.t list =
  match (facts (), Stx.to_list clauses) with
  | Some facts, Some cs ->
      let kept = ref [] and body = ref body in
      List.iter
        (fun c ->
          match unbox_clause facts c !body with
          | Some body' -> body := body'
          | None -> kept := c :: !kept)
        cs;
      if List.length !kept = List.length cs then (clauses, !body)
      else (Stx.rewrap clauses (Stx.List (List.rev !kept)), !body)
  | _ -> (clauses, body)

and unbox_clause (facts : Facts.t) (c : Stx.t) (body : Stx.t list) : Stx.t list option =
  match Stx.to_list c with
  | Some [ ids; rhs ] when Facts.lambda_unboxable facts rhs -> (
      match (Stx.to_list ids, Stx.view rhs) with
      | Some [ fid ], Stx.List (_ :: formals :: lam_body) when Stx.is_id fid -> (
          match (Binding.resolve fid, Stx.to_list formals) with
          | Some b, Some params when List.for_all Stx.is_id params ->
              let replaced = ref false in
              let body' =
                List.map (subst_call b.Binding.uid params lam_body replaced) body
              in
              if !replaced then begin
                count_cfa "opt:closure-unbox" "opt.closure_unbox";
                Some body'
              end
              else None
          | _ -> None)
      | _ -> None)
  | _ -> None

and subst_call uid (params : Stx.t list) (lam_body : Stx.t list) (replaced : bool ref)
    (s : Stx.t) : Stx.t =
  if !replaced then s
  else
    match Stx.view s with
    | Stx.List (hd :: rest) when Stx.is_id hd -> (
        match core_kind hd with
        | Some ("quote" | "quote-syntax") -> s
        | Some "#%plain-app" -> (
            match rest with
            | op :: args
              when Stx.is_id op
                   && (match Binding.resolve op with
                      | Some b -> b.Binding.uid = uid
                      | None -> false)
                   && List.length args = List.length params ->
                replaced := true;
                let clause p a = sl [ sl [ p ]; a ] in
                Stx.rewrap s
                  (Stx.List
                     (u "let-values" :: sl (List.map2 clause params args) :: lam_body))
            | _ -> subst_children uid params lam_body replaced s hd rest)
        | _ -> subst_children uid params lam_body replaced s hd rest)
    | Stx.List (hd :: rest) -> subst_children uid params lam_body replaced s hd rest
    | _ -> s

and subst_children uid params lam_body replaced s hd rest =
  let items = hd :: rest in
  let items' = List.map (subst_call uid params lam_body replaced) items in
  (* rebuild only the spine above the replaced call site: everywhere else
     the original node must survive physically intact, because the facts
     table is keyed on node identity and later flow-driven rewrites still
     have to find their proofs *)
  if List.for_all2 ( == ) items items' then s else Stx.rewrap s (Stx.List items')

and pair_shaped e =
  match type_of e with Some (ListT (_ :: _)) | Some (Pairof _) -> true | _ -> false

and vector_shaped e = match type_of e with Some (Vectorof _) -> true | _ -> false
and integer_typed e = match type_of e with Some t -> proved_subtype t Integer | None -> false

(** Optimize every form of a typechecked module body.  When both the
    optimizer and the analysis are enabled, a 0CFA pass over the module
    runs first and its facts drive the [opt:*] and [vec:*!] rewrite
    classes; with analysis disabled (ablation) only the type-driven
    rules fire. *)
let optimize_module (forms : Stx.t list) : Stx.t list =
  Liblang_observe.Trace.span "optimize" @@ fun () ->
  let facts =
    if !enabled && !Zcfa.enabled then Some (Zcfa.analyze_module forms) else None
  in
  Domain.DLS.set facts_key facts;
  Fun.protect ~finally:(fun () -> Domain.DLS.set facts_key None) @@ fun () ->
  Liblang_observe.Metrics.time "phase.optimize" @@ fun () -> List.map optimize forms
