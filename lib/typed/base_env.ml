(** The initial type environment (paper §4.2): types for the identifiers
    the base language provides.

    Most primitives have a fixed function type ([Mono]); the numeric and
    list operations need simple overloading over the numeric tower /
    list shapes, expressed as [Special] rules.  Rules are keyed by binding,
    so shadowing a primitive hides its rule. *)

module Binding = Liblang_stx.Binding
module Modsys = Liblang_modules.Modsys
open Types

exception Rule_error of string

let rule_err fmt = Printf.ksprintf (fun s -> raise (Rule_error s)) fmt

type rule =
  | Mono of Types.t
  | Special of (Types.t list -> Types.t)

(* binding uid -> rule *)
let rules : (int, rule) Hashtbl.t = Hashtbl.create 256

(* binding uid -> primitive name, for the optimizer's "is this racket's +" *)
let prim_names : (int, string) Hashtbl.t = Hashtbl.create 256

let prim_name_of (b : Binding.t) : string option = Hashtbl.find_opt prim_names b.Binding.uid
let lookup (b : Binding.t) : rule option = Hashtbl.find_opt rules b.Binding.uid

(* A usable (monomorphic) type for overloaded primitives referenced in
   higher-order position, e.g. [(sort l <)]. *)
let ho_types : (int, Types.t) Hashtbl.t = Hashtbl.create 32
let ho_fallback (b : Binding.t) : Types.t option = Hashtbl.find_opt ho_types b.Binding.uid

(* -- numeric rules --------------------------------------------------------------- *)

let all_subtype ts t = List.for_all (fun x -> subtype x t) ts

let arith name ts =
  if ts = [] then rule_err "%s: expects arguments" name;
  if all_subtype ts Integer then Integer
  else if all_subtype ts Real then if List.exists (equal Float) ts then Float else Real
  else if all_subtype ts Number then
    if List.exists (fun t -> subtype t FloatComplex) ts then FloatComplex else Number
  else rule_err "%s: expects numbers, given %s" name (String.concat " " (List.map to_string ts))

let division name ts =
  if ts = [] then rule_err "%s: expects arguments" name;
  if all_subtype ts Real then if List.exists (equal Float) ts then Float else Real
  else if all_subtype ts Number then
    if List.exists (fun t -> subtype t FloatComplex) ts then FloatComplex else Number
  else rule_err "%s: expects numbers" name

let comparison name ts =
  if all_subtype ts Real then Boolean else rule_err "%s: expects real numbers" name

let num_eq ts = if all_subtype ts Number then Boolean else rule_err "=: expects numbers"

let real_preserving name = function
  | [ Integer ] -> Integer
  | [ Float ] -> Float
  | [ t ] when subtype t Real -> Real
  | _ -> rule_err "%s: expects one real number" name

let float_fun name = function
  | [ t ] when subtype t Real -> Float
  | _ -> rule_err "%s: expects one real number" name

(* -- list rules --------------------------------------------------------------------- *)

let rule_car name = function
  | [ Any ] -> Any (* dynamic *)
  | [ ListT (t :: _) ] -> t
  | [ Pairof (a, _) ] -> a
  | [ Listof t ] -> t
  | ts -> rule_err "%s: expects a pair, given %s" name (String.concat " " (List.map to_string ts))

let rule_cdr name = function
  | [ Any ] -> Any (* dynamic *)
  | [ ListT (_ :: ts) ] -> ListT ts
  | [ Pairof (_, d) ] -> d
  | [ Listof t ] -> Listof t
  | _ -> rule_err "%s: expects a pair" name

let rec listof_view = function
  | Listof t -> Some t
  | ListT ts -> Some (List.fold_left join (match ts with [] -> Any | t :: _ -> t) ts)
  | Null -> Some Any
  | Pairof (a, d) -> ( match listof_view d with Some t -> Some (join a t) | None -> None)
  | Union ts -> (
      match List.map listof_view ts with
      | [] -> None
      | v :: vs ->
          List.fold_left
            (fun acc v ->
              match (acc, v) with Some a, Some b -> Some (join a b) | _ -> None)
            v vs)
  | _ -> None

let expect_listof name t =
  match listof_view t with Some e -> e | None -> rule_err "%s: expects a list, given %s" name (to_string t)

(* [cons] returns the precise pair type; [Pairof] is a subtype of the
   matching [Listof], so list-typed contexts still accept it. *)
let rule_cons = function
  | [ a; ListT ts ] -> ListT (a :: ts)
  | [ a; Null ] -> ListT [ a ]
  | [ a; d ] -> Pairof (a, d)
  | _ -> rule_err "cons: expects 2 arguments"

let rule_append ts =
  let elems = List.map (expect_listof "append") ts in
  match elems with [] -> Null | e :: rest -> Listof (List.fold_left join e rest)

let fun_view name = function
  | Fun (doms, rng) -> (doms, rng)
  | t -> rule_err "%s: expects a function, given %s" name (to_string t)

let rule_map name = function
  | [ f; l ] ->
      let doms, rng = fun_view name f in
      let elem = expect_listof name l in
      (match doms with
      | [ d ] -> if not (subtype elem d) then rule_err "%s: element type %s does not fit %s" name (to_string elem) (to_string d)
      | _ -> rule_err "%s: function arity mismatch" name);
      Listof rng
  | [ f; l1; l2 ] ->
      let doms, rng = fun_view name f in
      let e1 = expect_listof name l1 and e2 = expect_listof name l2 in
      (match doms with
      | [ d1; d2 ] ->
          if not (subtype e1 d1 && subtype e2 d2) then rule_err "%s: element types do not fit" name
      | _ -> rule_err "%s: function arity mismatch" name);
      Listof rng
  | _ -> rule_err "%s: bad arguments" name

(* -- registration ----------------------------------------------------------------------- *)

let register_for_module (mod_name : string) =
  let m = Modsys.find mod_name in
  let bind_of name =
    List.find_opt (fun e -> String.equal e.Modsys.ext_name name) m.Modsys.exports
    |> Option.map (fun e -> e.Modsys.binding)
  in
  let reg name rule =
    match bind_of name with
    | Some b ->
        Hashtbl.replace rules b.Binding.uid rule;
        Hashtbl.replace prim_names b.Binding.uid name
    | None -> ()
  in
  let sp name f = reg name (Special (f name)) in
  let sp' name f = reg name (Special f) in
  let mono name doms rng = reg name (Mono (Fun (doms, rng))) in
  (* numeric *)
  sp "+" arith;
  sp "-" arith;
  sp "*" arith;
  sp "/" division;
  sp "<" comparison;
  sp ">" comparison;
  sp "<=" comparison;
  sp ">=" comparison;
  sp' "=" num_eq;
  sp "min" arith;
  sp "max" arith;
  sp "abs" real_preserving;
  sp "add1" real_preserving;
  sp "sub1" real_preserving;
  sp' "sqrt" (function
    | [ Float ] -> Float (* documented simplification; see DESIGN.md *)
    | [ FloatComplex ] -> FloatComplex
    | [ t ] when subtype t Number -> Number
    | _ -> rule_err "sqrt: expects a number");
  List.iter (fun n -> sp n float_fun) [ "sin"; "cos"; "tan"; "asin"; "acos"; "exp"; "log"; "atan" ];
  sp' "expt" (function
    | [ a; b ] when subtype a Real && subtype b Real ->
        if equal a Float || equal b Float then Float else Real
    | _ -> rule_err "expt: expects real numbers");
  List.iter (fun n -> sp n real_preserving) [ "floor"; "ceiling"; "truncate"; "round" ];
  mono "quotient" [ Integer; Integer ] Integer;
  mono "remainder" [ Integer; Integer ] Integer;
  mono "modulo" [ Integer; Integer ] Integer;
  mono "gcd" [ Integer; Integer ] Integer;
  sp' "magnitude" (function
    | [ FloatComplex ] -> Float
    | [ Integer ] -> Integer
    | [ Float ] -> Float
    | [ t ] when subtype t Real -> Real
    | [ t ] when subtype t Number -> Real
    | _ -> rule_err "magnitude: expects a number");
  sp' "real-part" (function
    | [ FloatComplex ] -> Float
    | [ t ] when subtype t Real -> t
    | [ t ] when subtype t Number -> Real
    | _ -> rule_err "real-part: expects a number");
  sp' "imag-part" (function
    | [ FloatComplex ] -> Float
    | [ t ] when subtype t Real -> Real
    | [ t ] when subtype t Number -> Real
    | _ -> rule_err "imag-part: expects a number");
  mono "make-rectangular" [ Real; Real ] FloatComplex;
  mono "make-polar" [ Real; Real ] FloatComplex;
  sp' "exact->inexact" (function
    | [ t ] when subtype t Real -> Float
    | [ FloatComplex ] -> FloatComplex
    | [ t ] when subtype t Number -> Number
    | _ -> rule_err "exact->inexact: expects a number");
  mono "exact->float" [ Real ] Float;
  mono "inexact->exact" [ Real ] Real;
  mono "exact" [ Real ] Real;
  (* predicates *)
  List.iter
    (fun n -> mono n [ Any ] Boolean)
    [
      "number?"; "integer?"; "exact-integer?"; "fixnum?"; "flonum?"; "real?"; "complex?";
      "boolean?"; "string?"; "symbol?"; "char?"; "pair?"; "null?"; "empty?"; "list?"; "vector?";
      "procedure?"; "void?"; "box?"; "not"; "promise?"; "hash?";
    ];
  List.iter
    (fun n -> sp' n (fun ts -> comparison n ts))
    [ "zero?"; "positive?"; "negative?" ];
  mono "even?" [ Integer ] Boolean;
  mono "odd?" [ Integer ] Boolean;
  (* lists *)
  sp "car" rule_car;
  sp "first" rule_car;
  sp "cdr" rule_cdr;
  sp "rest" rule_cdr;
  sp' "second" (fun ts -> rule_car "second" [ rule_cdr "second" ts ]);
  sp' "third" (fun ts -> rule_car "third" [ rule_cdr "third" [ rule_cdr "third" ts ] ]);
  sp' "cadr" (fun ts -> rule_car "cadr" [ rule_cdr "cadr" ts ]);
  sp' "caddr" (fun ts -> rule_car "caddr" [ rule_cdr "caddr" [ rule_cdr "caddr" ts ] ]);
  sp' "cddr" (fun ts -> rule_cdr "cddr" [ rule_cdr "cddr" ts ]);
  sp' "cons" rule_cons;
  sp' "list" (fun ts -> ListT ts);
  sp' "append" rule_append;
  sp' "reverse" (function
    | [ ListT ts ] -> ListT (List.rev ts)
    | [ t ] -> Listof (expect_listof "reverse" t)
    | _ -> rule_err "reverse: expects a list");
  sp' "length" (function
    | [ t ] ->
        ignore (expect_listof "length" t);
        Integer
    | _ -> rule_err "length: expects a list");
  sp' "list-ref" (function
    | [ l; i ] when subtype i Integer -> expect_listof "list-ref" l
    | _ -> rule_err "list-ref: expects a list and an integer");
  sp' "list-tail" (function
    | [ l; i ] when subtype i Integer -> Listof (expect_listof "list-tail" l)
    | _ -> rule_err "list-tail: expects a list and an integer");
  List.iter (fun n -> mono n [ Any; Any ] Any) [ "member"; "memq"; "memv"; "assoc"; "assq" ];
  sp "map" rule_map;
  sp' "for-each" (fun ts ->
      ignore (rule_map "for-each" ts);
      Void_);
  sp' "filter" (function
    | [ f; l ] ->
        let doms, _ = fun_view "filter" f in
        let elem = expect_listof "filter" l in
        (match doms with
        | [ d ] when subtype elem d -> ()
        | _ -> rule_err "filter: predicate does not fit element type");
        Listof elem
    | _ -> rule_err "filter: bad arguments");
  sp' "foldl" (function
    | [ f; init; l ] ->
        let doms, rng = fun_view "foldl" f in
        let elem = expect_listof "foldl" l in
        (match doms with
        | [ d; acc ] when subtype elem d && subtype init acc && subtype rng acc -> rng
        | _ -> rule_err "foldl: function does not fit")
    | _ -> rule_err "foldl: bad arguments");
  sp' "foldr" (function
    | [ f; init; l ] ->
        let doms, rng = fun_view "foldr" f in
        let elem = expect_listof "foldr" l in
        (match doms with
        | [ d; acc ] when subtype elem d && subtype init acc && subtype rng acc -> rng
        | _ -> rule_err "foldr: function does not fit")
    | _ -> rule_err "foldr: bad arguments");
  sp' "andmap" (fun ts ->
      ignore (rule_map "andmap" ts);
      Boolean);
  sp' "ormap" (fun ts ->
      ignore (rule_map "ormap" ts);
      Boolean);
  sp' "build-list" (function
    | [ n; f ] when subtype n Integer ->
        let doms, rng = fun_view "build-list" f in
        (match doms with
        | [ d ] when subtype Integer d -> Listof rng
        | _ -> rule_err "build-list: function must accept an Integer")
    | _ -> rule_err "build-list: bad arguments");
  sp' "sort" (function
    | [ l; f ] ->
        let elem = expect_listof "sort" l in
        let doms, rng = fun_view "sort" f in
        (match doms with
        | [ a; b ] when subtype elem a && subtype elem b && subtype rng Boolean -> Listof elem
        | _ -> rule_err "sort: comparison does not fit element type")
    | _ -> rule_err "sort: bad arguments");
  sp' "last" (fun ts -> expect_listof "last" (List.hd ts));
  sp' "take" (function
    | [ l; n ] when subtype n Integer -> Listof (expect_listof "take" l)
    | _ -> rule_err "take: expects a list and an integer");
  sp' "drop" (function
    | [ l; n ] when subtype n Integer -> Listof (expect_listof "drop" l)
    | _ -> rule_err "drop: expects a list and an integer");
  sp' "remove" (function
    | [ _; l ] -> Listof (expect_listof "remove" l)
    | _ -> rule_err "remove: expects a value and a list");
  sp' "count" (function
    | [ f; l ] ->
        let doms, _ = fun_view "count" f in
        let elem = expect_listof "count" l in
        (match doms with
        | [ d ] when subtype elem d -> Integer
        | _ -> rule_err "count: predicate does not fit element type")
    | _ -> rule_err "count: bad arguments");
  sp' "range" (fun ts ->
      if List.for_all (fun t -> subtype t Integer) ts && ts <> [] then Listof Integer
      else rule_err "range: expects integers");
  mono "string-contains?" [ String_; String_ ] Boolean;
  mono "string-split" [ String_; String_ ] (Listof String_);
  mono "string-join" [ Listof String_; String_ ] String_;
  (* vectors *)
  sp' "vector" (function
    | [] -> Vectorof Any
    | t :: ts -> Vectorof (List.fold_left join t ts));
  sp' "make-vector" (function
    | [ n ] when subtype n Integer -> Vectorof Integer
    | [ n; fill ] when subtype n Integer -> Vectorof fill
    | _ -> rule_err "make-vector: bad arguments");
  sp' "vector-ref" (function
    | [ Vectorof t; i ] when subtype i Integer -> t
    | _ -> rule_err "vector-ref: expects a vector and an integer");
  sp' "vector-set!" (function
    | [ Vectorof t; i; v ] when subtype i Integer && subtype v t -> Void_
    | _ -> rule_err "vector-set!: value does not fit vector element type");
  sp' "vector-length" (function
    | [ Vectorof _ ] -> Integer
    | _ -> rule_err "vector-length: expects a vector");
  sp' "vector->list" (function
    | [ Vectorof t ] -> Listof t
    | _ -> rule_err "vector->list: expects a vector");
  sp' "list->vector" (function
    | [ t ] -> Vectorof (expect_listof "list->vector" t)
    | _ -> rule_err "list->vector: expects a list");
  sp' "build-vector" (function
    | [ n; f ] when subtype n Integer ->
        let doms, rng = fun_view "build-vector" f in
        (match doms with
        | [ d ] when subtype Integer d -> Vectorof rng
        | _ -> rule_err "build-vector: function must accept an Integer")
    | _ -> rule_err "build-vector: bad arguments");
  sp' "vector-copy" (function
    | [ Vectorof t ] -> Vectorof t
    | _ -> rule_err "vector-copy: expects a vector");
  sp' "vector-fill!" (function
    | [ Vectorof t; v ] when subtype v t -> Void_
    | _ -> rule_err "vector-fill!: value does not fit");
  sp' "vector-map" (function
    | [ f; Vectorof t ] ->
        let doms, rng = fun_view "vector-map" f in
        (match doms with
        | [ d ] when subtype t d -> Vectorof rng
        | _ -> rule_err "vector-map: function does not fit")
    | _ -> rule_err "vector-map: bad arguments");
  (* strings, symbols, chars *)
  mono "string-length" [ String_ ] Integer;
  mono "string-ref" [ String_; Integer ] Char_;
  mono "string-set!" [ String_; Integer; Char_ ] Void_;
  sp' "substring" (function
    | [ String_; i ] when subtype i Integer -> String_
    | [ String_; i; j ] when subtype i Integer && subtype j Integer -> String_
    | _ -> rule_err "substring: bad arguments");
  sp' "string-append" (fun ts ->
      if List.for_all (fun t -> subtype t String_) ts then String_
      else rule_err "string-append: expects strings");
  sp' "string" (fun ts ->
      if List.for_all (fun t -> subtype t Char_) ts then String_
      else rule_err "string: expects characters");
  sp' "make-string" (function
    | [ n ] when subtype n Integer -> String_
    | [ n; c ] when subtype n Integer && subtype c Char_ -> String_
    | _ -> rule_err "make-string: bad arguments");
  mono "string->symbol" [ String_ ] Symbol;
  mono "symbol->string" [ Symbol ] String_;
  mono "string->list" [ String_ ] (Listof Char_);
  mono "list->string" [ Listof Char_ ] String_;
  mono "string-copy" [ String_ ] String_;
  mono "string-upcase" [ String_ ] String_;
  mono "string-downcase" [ String_ ] String_;
  mono "string=?" [ String_; String_ ] Boolean;
  mono "string<?" [ String_; String_ ] Boolean;
  mono "string->number" [ String_ ] Any;
  mono "number->string" [ Number ] String_;
  mono "char->integer" [ Char_ ] Integer;
  mono "integer->char" [ Integer ] Char_;
  mono "char=?" [ Char_; Char_ ] Boolean;
  mono "char<?" [ Char_; Char_ ] Boolean;
  mono "char-upcase" [ Char_ ] Char_;
  mono "char-alphabetic?" [ Char_ ] Boolean;
  mono "char-numeric?" [ Char_ ] Boolean;
  sp' "gensym" (fun _ -> Symbol);
  (* equality, io, misc *)
  List.iter (fun n -> mono n [ Any; Any ] Boolean) [ "eq?"; "eqv?"; "equal?" ];
  List.iter (fun n -> mono n [ Any ] Void_) [ "display"; "write"; "displayln" ];
  sp' "newline" (fun _ -> Void_);
  sp' "printf" (function
    | fmt :: _ when subtype fmt String_ -> Void_
    | _ -> rule_err "printf: expects a format string");
  sp' "format" (function
    | fmt :: _ when subtype fmt String_ -> String_
    | _ -> rule_err "format: expects a format string");
  sp' "error" (fun _ -> Any);
  sp' "void" (fun _ -> Void_);
  mono "identity" [ Any ] Any;
  sp' "current-seconds" (fun _ -> Integer);
  sp' "current-inexact-milliseconds" (fun _ -> Float);
  mono "box" [ Any ] Any;
  mono "unbox" [ Any ] Any;
  mono "set-box!" [ Any; Any ] Void_;
  (* unsafe primitives, so optimizer output re-checks *)
  List.iter
    (fun n -> mono n [ Float; Float ] Float)
    [ "unsafe-fl+"; "unsafe-fl-"; "unsafe-fl*"; "unsafe-fl/"; "unsafe-flmin"; "unsafe-flmax"; "unsafe-flexpt" ];
  List.iter
    (fun n -> mono n [ Float; Float ] Boolean)
    [ "unsafe-fl<"; "unsafe-fl>"; "unsafe-fl<="; "unsafe-fl>="; "unsafe-fl=" ];
  List.iter
    (fun n -> mono n [ Float ] Float)
    [
      "unsafe-flabs"; "unsafe-flsqrt"; "unsafe-flsin"; "unsafe-flcos"; "unsafe-fltan";
      "unsafe-flatan"; "unsafe-flexp"; "unsafe-fllog"; "unsafe-flfloor"; "unsafe-flceiling";
      "unsafe-flround"; "unsafe-fltruncate";
    ];
  List.iter
    (fun n -> mono n [ Number; Number ] FloatComplex)
    [ "unsafe-c+"; "unsafe-c-"; "unsafe-c*"; "unsafe-c/" ];
  mono "unsafe-fx->fl" [ Integer ] Float;
  mono "unsafe-magnitude" [ Number ] Float;
  mono "unsafe-real-part" [ Number ] Float;
  mono "unsafe-imag-part" [ Number ] Float;
  mono "unsafe-make-rectangular" [ Real; Real ] FloatComplex;
  sp "unsafe-car" rule_car;
  sp "unsafe-cdr" rule_cdr;
  sp' "unsafe-vector-ref" (function
    | [ Vectorof t; i ] when subtype i Integer -> t
    | _ -> rule_err "unsafe-vector-ref: bad arguments");
  sp' "unsafe-vector-set!" (function
    | [ Vectorof t; i; v ] when subtype i Integer && subtype v t -> Void_
    | _ -> rule_err "unsafe-vector-set!: bad arguments");
  sp' "unsafe-vector-length" (function
    | [ Vectorof _ ] -> Integer
    | _ -> rule_err "unsafe-vector-length: bad arguments");
  sp' "unchecked-vector-ref" (function
    | [ Vectorof t; i ] when subtype i Integer -> t
    | _ -> rule_err "unchecked-vector-ref: bad arguments");
  sp' "unchecked-vector-set!" (function
    | [ Vectorof t; i; v ] when subtype i Integer && subtype v t -> Void_
    | _ -> rule_err "unchecked-vector-set!: bad arguments");
  (* higher-order fallbacks for overloaded primitives *)
  let ho name t = match bind_of name with Some b -> Hashtbl.replace ho_types b.Binding.uid t | None -> () in
  List.iter (fun n -> ho n (Fun ([ Number; Number ], Number))) [ "+"; "-"; "*"; "/"; "min"; "max" ];
  List.iter (fun n -> ho n (Fun ([ Real; Real ], Boolean))) [ "<"; ">"; "<="; ">="; "=" ];
  List.iter (fun n -> ho n (Fun ([ Number ], Number))) [ "add1"; "sub1"; "abs"; "sqrt" ];
  List.iter (fun n -> ho n (Fun ([ Real ], Float))) [ "sin"; "cos"; "exp"; "log" ]

let initialized = ref false

let ensure_initialized () =
  if not !initialized then begin
    initialized := true;
    register_for_module "racket"
  end
