(** The type grammar of the typed sister language (paper §3–4).

    A numeric hierarchy matching the runtime tower (Integer, Float ⊂ Real ⊂
    Number; Float-Complex ⊂ Number), booleans, strings, symbols, chars,
    lists, pairs, vectors, function types, finite unions, the dynamic type
    [Any], and named (possibly recursive) types.  Types serialize to datums
    so compiled modules can persist their type environment (§5). *)

module Stx = Liblang_stx.Stx
module Datum = Liblang_reader.Datum

type t =
  | Any
      (** the dynamic type: a supertype {e and} subtype of everything (the
          gradual-typing stand-in for occurrence typing; see DESIGN.md) *)
  | Integer
  | Float
  | FloatComplex
  | Real
  | Number
  | Boolean
  | String_
  | Symbol
  | Char_
  | Void_
  | Null
  | Listof of t
  | ListT of t list  (** fixed-length list: [(List T ...)] *)
  | Pairof of t * t
  | Vectorof of t
  | Fun of t list * t
  | Union of t list
  | Name of string
      (** a named (possibly recursive) type introduced by [define-type] *)

exception Parse_error of string * Liblang_reader.Srcloc.t
(** Bad type syntax; the location points at the offending type expression
    when parsed from syntax ({!of_stx}), and is [Srcloc.none] when parsed
    from a bare datum. *)

(** {1 Named types} *)

val name_env : (string, t) Hashtbl.t
val define_name : string -> t -> unit
val resolve_name : string -> t

(** Resolve through named types to a structural head (bounded). *)
val unfold : t -> t

(** {1 Printing and equality} *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** {1 Subtyping and joins} *)

(** Coinductive on named types; [Any] is permissive in both directions. *)
val subtype : t -> t -> bool

(** Least upper bound within this grammar; used to join [if] branches. *)
val join : t -> t -> t

(** {1 Parsing and serialization (§5)} *)

val base_types : (string * t) list
val of_datum : Datum.t -> t
val of_stx : Stx.t -> t
val to_datum : t -> Datum.t

(** {1 Convenience} *)

val is_function : t -> bool
