(** The compile-time environment: what each binding means to the expander.

    Keyed by binding uid — since bindings are globally fresh (§5), a single
    table serves every module and phase. *)

module Binding = Liblang_stx.Binding
module Stx = Liblang_stx.Stx
module Value = Liblang_runtime.Value

type transformer =
  | Native of string * (Stx.t -> Stx.t)
      (** a transformer implemented in the host language (OCaml) — the
          analogue of a Racket macro implemented in Racket *)
  | Rules of Syntax_rules.t  (** a [syntax-rules] macro from object code *)
  | ObjProc of Value.value
      (** an object-language phase-1 procedure: applied to the use-site
          syntax object, returns syntax *)

type denotation =
  | DVar  (** a (module-level or local) variable *)
  | DCore of string  (** a core form; the string is the dispatch key *)
  | DMacro of transformer

module ITbl = Hashtbl.Make (Int)

(* Domain-local, seeded at [Domain.spawn] with a copy of the parent's table:
   workers see every denotation established before the spawn (builtins, core
   forms) and record their own privately; the main domain re-acquires worker
   output by replaying artifacts. *)
let table_key : denotation ITbl.t Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:ITbl.copy (fun () -> ITbl.create 1024)

let[@inline] table () = Domain.DLS.get table_key

let set (b : Binding.t) (d : denotation) = ITbl.replace (table ()) b.Binding.uid d
let get (b : Binding.t) : denotation option = ITbl.find_opt (table ()) b.Binding.uid

let transformer_name = function
  | Native (n, _) -> n
  | Rules sr -> sr.Syntax_rules.name
  | ObjProc _ -> "#<phase-1 procedure>"
