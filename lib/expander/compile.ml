(** Compilation of fully-expanded core syntax to the runtime AST, with
    lexical addressing.  Pattern-matches exactly the core grammar of the
    paper's figure 1 — anything else is an internal error, because the
    expander guarantees its output is core. *)

module Stx = Liblang_stx.Stx
module Binding = Liblang_stx.Binding
module Ast = Liblang_runtime.Ast
module Value = Liblang_runtime.Value

exception Compile_error of string * Stx.t

let err msg s = raise (Compile_error (msg, s))

(* compile-time environment: frames of (binding uid, slot) *)
type cenv = (int * int) list list

let lookup (cenv : cenv) (uid : int) : (int * int) option =
  let rec go depth = function
    | [] -> None
    | frame :: rest -> (
        match List.assoc_opt uid frame with
        | Some slot -> Some (depth, slot)
        | None -> go (depth + 1) rest)
  in
  go 0 cenv

let resolve_exn (id : Stx.t) : Binding.t =
  match Binding.resolve id with
  | Some b -> b
  | None -> err (Printf.sprintf "%s: unbound identifier" (Stx.sym_exn id)) id

let core_kind (hd : Stx.t) : string option =
  match Binding.resolve hd with
  | None -> None
  | Some b -> ( match Denote.get b with Some (Denote.DCore name) -> Some name | _ -> None)

type formals = { ids : Stx.t list; rest : Stx.t option }

let parse_formals (f : Stx.t) : formals =
  match Stx.view f with
  | Stx.Id _ -> { ids = []; rest = Some f }
  | Stx.List ids -> { ids; rest = None }
  | Stx.DotList (ids, tl) -> { ids; rest = Some tl }
  | _ -> err "lambda: bad formals" f

let rec compile (cenv : cenv) (s : Stx.t) : Ast.t =
  match Stx.view s with
  | Stx.Id _ -> (
      let b = resolve_exn s in
      match lookup cenv b.Binding.uid with
      | Some (depth, slot) -> Ast.LocalRef (depth, slot)
      | None -> (
          match Denote.get b with
          | Some (Denote.DCore name) -> err (name ^ ": core form used as a variable") s
          | Some (Denote.DMacro _) -> err "macro used as a variable after expansion" s
          | _ -> Ast.GlobalRef (Namespace.global_of b)))
  | Stx.Atom _ -> err "literal not wrapped in quote (expander bug?)" s
  | Stx.List (hd :: args) when Stx.is_id hd -> (
      match core_kind hd with
      | Some name -> compile_core cenv name s args
      | None -> err "compile: non-core form (expander bug?)" s)
  | _ -> err "compile: non-core form (expander bug?)" s

and compile_core cenv name (s : Stx.t) (args : Stx.t list) : Ast.t =
  match (name, args) with
  | "quote", [ x ] -> Ast.Quote (Value.of_datum (Stx.to_datum x))
  | "quote-syntax", [ x ] -> Ast.QuoteStx x
  | "if", [ c; t; e ] -> Ast.If (compile cenv c, compile cenv t, compile cenv e)
  | "begin", (_ :: _) -> Ast.Begin (Array.of_list (List.map (compile cenv) args))
  | "#%expression", [ e ] -> compile cenv e
  | "#%plain-app", (f :: rest) ->
      let cf = compile cenv f in
      let cargs = Array.of_list (List.map (compile cenv) rest) in
      (* the flow analysis marks call sites it proved monomorphic; the
         property survives any optimizer rewrap of the same node *)
      if Option.is_some (Stx.property_get "analysis:direct-call" s) then
        Ast.DirectApp (cf, cargs)
      else Ast.App (cf, cargs)
  | "#%plain-lambda", (formals :: body) when body <> [] ->
      let { ids; rest } = parse_formals formals in
      let uids = List.map (fun id -> (resolve_exn id).Binding.uid) ids in
      let rest_uid = Option.map (fun id -> (resolve_exn id).Binding.uid) rest in
      let all = uids @ Option.to_list rest_uid in
      let frame = List.mapi (fun i uid -> (uid, i)) all in
      let cbody = compile_body (frame :: cenv) s body in
      Ast.Lambda
        { Ast.l_arity = List.length ids; l_rest = Option.is_some rest_uid; l_name = ""; l_body = cbody }
  | ("let-values" | "letrec-values"), (clauses :: body) when body <> [] ->
      let recursive = String.equal name "letrec-values" in
      let clauses =
        match Stx.to_list clauses with Some cs -> cs | None -> err (name ^ ": bad clauses") s
      in
      let parsed =
        List.map
          (fun c ->
            match Stx.to_list c with
            | Some [ ids; rhs ] -> (
                match Stx.to_list ids with
                | Some ids -> (List.map (fun id -> (resolve_exn id).Binding.uid) ids, rhs)
                | None -> err (name ^ ": bad clause") c)
            | _ -> err (name ^ ": bad clause") c)
          clauses
      in
      let frame =
        List.mapi (fun i uid -> (uid, i)) (List.concat_map fst parsed)
      in
      let inner = frame :: cenv in
      let rhs_env = if recursive then inner else cenv in
      let names =
        List.map
          (fun c ->
            match Stx.to_list c with
            | Some [ ids; _ ] -> (
                match Stx.to_list ids with Some [ id ] -> Stx.sym id | _ -> None)
            | _ -> None)
          clauses
      in
      let compiled_clauses =
        Array.of_list
          (List.map2
             (fun (uids, rhs) name ->
               let ast = compile rhs_env rhs in
               (match (ast, name) with
               | Ast.Lambda l, Some n when l.Ast.l_name = "" -> l.Ast.l_name <- n
               | _ -> ());
               { Ast.n_vals = List.length uids; rhs = ast })
             parsed names)
      in
      let cbody = compile_body inner s body in
      if recursive then Ast.LetrecVals (compiled_clauses, cbody)
      else Ast.LetVals (compiled_clauses, cbody)
  | "set!", [ x; e ] -> (
      let b = resolve_exn x in
      let ce = compile cenv e in
      match lookup cenv b.Binding.uid with
      | Some (depth, slot) -> Ast.SetLocal (depth, slot, ce)
      | None ->
          let g = Namespace.global_of b in
          if not g.Ast.g_mutable then err "set!: cannot mutate an immutable binding" x
          else Ast.SetGlobal (g, ce))
  | _ -> err (name ^ ": unexpected core form in expression position") s

and compile_body cenv s body =
  match body with
  | [ e ] -> compile cenv e
  | _ :: _ -> Ast.Begin (Array.of_list (List.map (compile cenv) body))
  | [] -> err "empty body" s

(** Compile a fully-expanded expression (no free local variables). *)
let compile_expr (s : Stx.t) : Ast.t = compile [] s
