(** The hygienic macro expander (paper §2).

    [expand_expr] reduces any expression to the core grammar of the paper's
    figure 1; [expand_module_body] runs the two-pass module-body expansion
    that [#%plain-module-begin] triggers; [local_expand] is the key API that
    lets a language analyze arbitrary code without knowing about user macros
    (§2.2).  Transformers are either host-language (OCaml) functions,
    [syntax-rules] macros, or phase-1 object-language procedures. *)

module Stx = Liblang_stx.Stx
module Scope = Liblang_stx.Scope
module Binding = Liblang_stx.Binding
module Value = Liblang_runtime.Value
module Interp = Liblang_runtime.Interp

exception Expand_error of string * Stx.t

let err msg s = raise (Expand_error (msg, s))

(* -- core bindings --------------------------------------------------------- *)

let core_scope = Scope.fresh ()

let core_form_names =
  [
    "#%plain-lambda";
    "if";
    "begin";
    "let-values";
    "letrec-values";
    "set!";
    "quote";
    "quote-syntax";
    "#%plain-app";
    "#%expression";
    "define-values";
    "define-syntaxes";
    "begin-for-syntax";
    "#%provide";
    "#%require";
    "#%plain-module-begin";
    "#%app";
    "#%datum";
    "syntax-rules";
  ]

let core_scope_set = Scope.Set.singleton core_scope

(** An identifier carrying (only) the core scope; resolves to core forms. *)
let core_id ?(loc = Liblang_reader.Srcloc.none) name =
  Stx.id ~scopes:core_scope_set ~loc name

(** Like {!core_id} but from a pre-interned symbol — the hot paths
    ([#%datum]/[#%app] insertion) never re-hash a keyword string. *)
let core_id_sym ?(loc = Liblang_reader.Srcloc.none) sym =
  Stx.id_sym ~scopes:core_scope_set ~loc sym

let sym_datum = Stx.Symbol.intern "#%datum"
let sym_app = Stx.Symbol.intern "#%app"
let sym_plain_app = Stx.Symbol.intern "#%plain-app"
let sym_quote = Stx.Symbol.intern "quote"

let core_bindings : (string * Binding.t) list =
  List.map
    (fun name ->
      let b = Binding.bind (core_id name) in
      Denote.set b (Denote.DCore name);
      (name, b))
    core_form_names

let core_binding name = List.assoc name core_bindings

(* -- helpers ---------------------------------------------------------------- *)

let resolve_id (s : Stx.t) : (Binding.t * Denote.denotation) option =
  match Binding.resolve s with
  | None -> None
  | Some b -> Some (b, Option.value (Denote.get b) ~default:Denote.DVar)

let head_of (s : Stx.t) : Stx.t option =
  match Stx.view s with
  | Stx.List (hd :: _) when Stx.is_id hd -> Some hd
  | _ -> None

(* Rebuild a list form, preserving location and syntax properties of the
   original — out-of-band information must survive rewriting (§3.1). *)
let relist (orig : Stx.t) (xs : Stx.t list) : Stx.t = Stx.rewrap orig (Stx.List xs)

let expect_list msg s = match Stx.to_list s with Some xs -> xs | None -> err msg s

let expect_id msg s = if Stx.is_id s then s else err msg s

(* -- fault containment --------------------------------------------------------

   Macro transformers are ordinary programs run at compile time (paper
   §2.1), so a library-defined language can diverge or blow the stack
   during expansion.  Two guards keep the expander total:

   - {e macro-step fuel}: every transformer application consumes one unit;
     a divergent macro exhausts the budget and is reported as a located
     diagnostic naming the macro and its use site.
   - {e recursion depth}: structural expansion of pathologically nested
     input is cut off before it can overflow the host stack.

   Both are restored at each module-compilation boundary (see Modsys) via
   {!reset_limits}; the pipeline can also tighten them per run. *)

let default_fuel = 100_000
let default_max_depth = 5_000

(* The limits are per-domain: each parallel-build worker expands under its
   own fuel budget and depth counter, so one worker's consumption can
   neither starve nor corrupt another's.  Workers inherit the defaults (the
   driver resets limits at each module boundary anyway). *)
type limits = {
  mutable budget : int;
  mutable fuel : int;
  mutable max_depth : int;
  mutable depth : int;
}

let limits_key : limits Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { budget = default_fuel; fuel = default_fuel; max_depth = default_max_depth; depth = 0 })

let[@inline] limits () = Domain.DLS.get limits_key

(** Restore the fuel budget and depth counter (optionally adjusting the
    configured limits).  Called at every module-compilation boundary so one
    compilation's consumption never bleeds into the next. *)
let reset_limits ?fuel:budget ?max_depth:md () =
  let l = limits () in
  (match budget with Some n -> l.budget <- n | None -> ());
  (match md with Some n -> l.max_depth <- n | None -> ());
  l.fuel <- l.budget;
  l.depth <- 0

(* -- transformer application ------------------------------------------------- *)

(* The user-facing name of the macro being applied at use-site [s]. *)
let macro_name_of (t : Denote.transformer) (s : Stx.t) : string =
  match t with
  | Denote.Native (n, _) | Denote.Rules { Syntax_rules.name = n; _ } -> n
  | Denote.ObjProc _ -> (
      match Stx.view s with
      | Stx.Id n -> Stx.Symbol.name n
      | Stx.List (hd :: _) when Stx.is_id hd -> Stx.sym_exn hd
      | _ -> "#<phase-1 procedure>")

let contain_err name (s : Stx.t) what =
  err
    (Printf.sprintf "while expanding macro %s (invoked at %s): %s" name
       (Liblang_reader.Srcloc.to_string (Stx.loc s))
       what)
    s

let transform (t : Denote.transformer) (s : Stx.t) : Stx.t =
  let l = limits () in
  l.fuel <- l.fuel - 1;
  if l.fuel <= 0 then
    contain_err (macro_name_of t s) s
      (Printf.sprintf
         "macro expansion exhausted its fuel budget of %d steps (expansion probably diverges)"
         l.budget);
  let intro = Scope.fresh () in
  let input = Stx.flip_scope intro s in
  let output =
    match t with
    | Denote.Native (_, f) -> f input
    | Denote.Rules sr -> (
        try Syntax_rules.apply sr input
        with Syntax_rules.Bad_syntax (m, stx) -> raise (Expand_error (m, stx)))
    | Denote.ObjProc proc -> (
        match Interp.apply1 proc (Value.StxV input) with
        | Value.StxV out -> out
        | v ->
            err
              (Printf.sprintf "transformer returned %s instead of syntax" (Value.write_string v))
              s
        | exception Interp.Out_of_fuel ->
            contain_err (macro_name_of t s) s
              "compile-time evaluation exhausted its fuel budget (the transformer probably \
               diverges)"
        | exception Stack_overflow ->
            contain_err (macro_name_of t s) s
              "compile-time evaluation overflowed the stack (runaway recursion in the \
               transformer)")
  in
  Stx.flip_scope intro output

(* Observability wrapper around [transform]: per-macro application counts,
   per-transformer wall time, compile-time fuel attribution, and (at trace
   verbosity 2, the CLI's [-vv]) the syntax before and after each macro
   step.  When neither a metrics collector nor a trace sink is installed
   this is a load-and-branch on top of [transform]. *)
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace

let apply_transformer (t : Denote.transformer) (s : Stx.t) : Stx.t =
  if not (Metrics.installed () || Trace.installed ()) then transform t s
  else begin
    let name = macro_name_of t s in
    if Trace.enabled_at 2 then
      Trace.event ~level:2 "macro"
        [
          ("name", name);
          ("loc", Liblang_reader.Srcloc.to_string (Stx.loc s));
          ("before", Stx.to_string s);
        ];
    let interp_fuel0 = !(Interp.fuel ()) in
    let t0 = Metrics.now () in
    let output = transform t s in
    if Metrics.installed () then begin
      let key = "expand.macro." ^ name in
      Metrics.count key;
      Metrics.add_time key (Metrics.now () -. t0);
      (* compile-time evaluation steps burned inside the transformer: only
         phase-1 (object-language) procedures consume interpreter fuel *)
      let burned = interp_fuel0 - !(Interp.fuel ()) in
      if burned > 0 then Metrics.countn ("expand.fuel." ^ name) burned
    end;
    if Trace.enabled_at 2 then
      Trace.event ~level:2 "macro-out" [ ("name", name); ("after", Stx.to_string output) ];
    output
  end

(* -- expression expansion ------------------------------------------------------ *)

type stops = Binding.t list

let in_stops (stops : stops) (b : Binding.t) = List.exists (Binding.equal b) stops

let rec expand_expr ?(stops : stops = []) (s : Stx.t) : Stx.t =
  let l = limits () in
  let d = l.depth in
  if d >= l.max_depth then
    err
      (Printf.sprintf
         "expansion recursion too deep (limit %d): nesting exceeds the expander's depth guard"
         l.max_depth)
      s;
  l.depth <- d + 1;
  match expand_expr_at ~stops s with
  | v ->
      l.depth <- d;
      v
  | exception e ->
      l.depth <- d;
      raise e

and expand_expr_at ~(stops : stops) (s : Stx.t) : Stx.t =
  match Stx.view s with
  | Stx.Id _ -> (
      match resolve_id s with
      | Some (b, _) when in_stops stops b -> s
      | Some (_, Denote.DMacro t) -> expand_expr_at ~stops (apply_transformer t s)
      | Some (_, Denote.DCore name) -> err (Printf.sprintf "%s: bad use of core form" name) s
      | Some (_, Denote.DVar) -> s
      | None -> err (Printf.sprintf "%s: unbound identifier" (Stx.sym_exn s)) s)
  | Stx.Atom _ -> expand_datum ~stops s
  | Stx.List [] -> err "missing procedure expression" s
  | Stx.List (hd :: args) when Stx.is_id hd -> (
      match resolve_id hd with
      | Some (b, _) when in_stops stops b -> s
      | Some (_, Denote.DMacro t) -> expand_expr_at ~stops (apply_transformer t s)
      | Some (_, Denote.DCore name) -> expand_core ~stops name s hd args
      | Some (_, Denote.DVar) | None -> expand_app ~stops s)
  | Stx.List _ -> expand_app ~stops s
  | Stx.DotList _ -> err "unexpected dotted list in expression position" s
  | Stx.Vec _ -> expand_datum ~stops s

(* Implicit #%datum: self-evaluating literals consult the context's #%datum
   binding, so a language can reinterpret literals. *)
and expand_datum ~stops (s : Stx.t) : Stx.t =
  let datum_id = Stx.id_sym ~scopes:(Stx.scopes s) sym_datum in
  match resolve_id datum_id with
  | Some (_, Denote.DMacro t) ->
      expand_expr ~stops (apply_transformer t (relist s [ datum_id; s ]))
  | _ -> relist s [ core_id_sym ~loc:(Stx.loc s) sym_quote; s ]

(* Implicit #%app: applications consult the context's #%app binding, so a
   language can reinterpret application (e.g. a lazy language). *)
and expand_app ~stops (s : Stx.t) : Stx.t =
  let elems = expect_list "application: bad syntax" s in
  let app_id = Stx.id_sym ~scopes:(Stx.scopes s) sym_app in
  match resolve_id app_id with
  | Some (_, Denote.DMacro t) ->
      expand_expr ~stops (apply_transformer t (relist s (app_id :: elems)))
  | _ ->
      relist s
        (core_id_sym ~loc:(Stx.loc s) sym_plain_app :: List.map (expand_expr ~stops) elems)

and expand_core ~stops name (s : Stx.t) (hd : Stx.t) (args : Stx.t list) : Stx.t =
  match (name, args) with
  | "quote", [ _ ] | "quote-syntax", [ _ ] -> s
  | ("quote" | "quote-syntax"), _ -> err (name ^ ": bad syntax") s
  | "if", [ c; t; e ] ->
      relist s [ hd; expand_expr ~stops c; expand_expr ~stops t; expand_expr ~stops e ]
  | "if", _ -> err "if: bad syntax (expects 3 subexpressions)" s
  | "begin", (_ :: _) -> relist s (hd :: List.map (expand_expr ~stops) args)
  | "begin", [] -> err "begin: empty body" s
  | "#%expression", [ e ] -> relist s [ hd; expand_expr ~stops e ]
  | "#%plain-app", (_ :: _) -> relist s (hd :: List.map (expand_expr ~stops) args)
  | "#%plain-app", [] -> err "#%plain-app: missing procedure" s
  | "#%app", (f :: rest) ->
      relist s
        (core_id_sym ~loc:(Stx.loc s) sym_plain_app
        :: List.map (expand_expr ~stops) (f :: rest))
  | "set!", [ x; e ] ->
      let x = expect_id "set!: expects an identifier" x in
      (match resolve_id x with
      | Some (_, Denote.DVar) -> ()
      | Some (_, Denote.DMacro _) -> err "set!: cannot mutate a syntactic binding" x
      | Some (_, Denote.DCore _) -> err "set!: cannot mutate a core form" x
      | None -> err (Printf.sprintf "set!: unbound identifier %s" (Stx.sym_exn x)) x);
      relist s [ hd; x; expand_expr ~stops e ]
  | "#%plain-lambda", (formals :: body) when body <> [] ->
      let sc = Scope.fresh () in
      let formals = Stx.add_scope sc formals in
      let bind_formal id =
        let id = expect_id "lambda: expects identifiers as formals" id in
        let b = Binding.bind id in
        Denote.set b Denote.DVar;
        id
      in
      let formals =
        match Stx.view formals with
        | Stx.Id _ ->
            ignore (bind_formal formals);
            formals
        | Stx.List ids -> relist formals (List.map bind_formal ids)
        | Stx.DotList (ids, tl) ->
            Stx.rewrap formals (Stx.DotList (List.map bind_formal ids, bind_formal tl))
        | _ -> err "lambda: bad formals" formals
      in
      let body = List.map (fun e -> expand_expr ~stops (Stx.add_scope sc e)) body in
      relist s (hd :: formals :: body)
  | "#%plain-lambda", _ -> err "lambda: bad syntax" s
  | ("let-values" | "letrec-values"), (clauses :: body) when body <> [] ->
      let recursive = String.equal name "letrec-values" in
      let clauses = expect_list (name ^ ": bad binding clauses") clauses in
      let sc = Scope.fresh () in
      let parse_clause c =
        match Stx.to_list c with
        | Some [ ids; rhs ] ->
            let ids = expect_list (name ^ ": bad binding clause") ids in
            (List.map (expect_id (name ^ ": expects identifiers")) ids, rhs, c)
        | _ -> err (name ^ ": bad binding clause") c
      in
      let parsed = List.map parse_clause clauses in
      (* letrec: scope rhs too, before binding *)
      let parsed =
        List.map
          (fun (ids, rhs, c) ->
            let ids = List.map (Stx.add_scope sc) ids in
            let rhs = if recursive then Stx.add_scope sc rhs else rhs in
            (ids, rhs, c))
          parsed
      in
      List.iter
        (fun (ids, _, _) ->
          List.iter
            (fun id ->
              let b = Binding.bind id in
              Denote.set b Denote.DVar)
            ids)
        parsed;
      let clauses' =
        List.map
          (fun (ids, rhs, c) -> relist c [ relist c ids; expand_expr ~stops rhs ])
          parsed
      in
      let body = List.map (fun e -> expand_expr ~stops (Stx.add_scope sc e)) body in
      relist s (hd :: relist s clauses' :: body)
  | ("let-values" | "letrec-values"), _ -> err (name ^ ": bad syntax") s
  | "syntax-rules", _ -> err "syntax-rules: only allowed as a transformer expression" s
  | ( ("define-values" | "define-syntaxes" | "begin-for-syntax" | "#%provide" | "#%require"
      | "#%plain-module-begin" | "#%datum"),
      _ ) ->
      err (name ^ ": not allowed in an expression context") s
  | _ -> err (name ^ ": bad syntax") s

(* -- phase 1: evaluating transformer expressions -------------------------------- *)

and eval_expr (s : Stx.t) : Value.value =
  let expanded = expand_expr s in
  let ast = Compile.compile_expr expanded in
  match Interp.eval_top ast with
  | v -> v
  | exception Interp.Out_of_fuel ->
      err "compile-time evaluation exhausted its fuel budget (probably divergent)" s
  | exception Stack_overflow ->
      err "compile-time evaluation overflowed the stack (runaway recursion)" s

and eval_transformer_rhs ~name (rhs : Stx.t) : Denote.transformer =
  let is_syntax_rules =
    match head_of rhs with
    | Some hd -> (
        match resolve_id hd with
        | Some (_, Denote.DCore "syntax-rules") -> true
        | None -> Stx.is_sym "syntax-rules" hd
        | _ -> false)
    | None -> false
  in
  if is_syntax_rules then Denote.Rules (Syntax_rules.parse ~name rhs)
  else
    match eval_expr rhs with
    | (Value.Closure _ | Value.Prim _) as proc -> Denote.ObjProc proc
    | v ->
        err
          (Printf.sprintf "define-syntaxes: transformer must be a procedure, got %s"
             (Value.write_string v))
          rhs

(* -- module-body expansion (two passes, §4.2) -------------------------------------- *)

(* The module system (a higher layer) installs the actual require handler;
   it must make the required module's exports visible to [spec]'s context
   and return unit. *)
let require_handler : (Stx.t -> unit) ref =
  ref (fun spec -> err "#%require: no module system installed" spec)

(* Partial expansion: apply macros until the head is a core form or a
   variable; used by pass 1 to discover definitions. *)
let rec partial_expand (s : Stx.t) : Stx.t =
  match Stx.view s with
  | Stx.List (hd :: _) when Stx.is_id hd -> (
      match resolve_id hd with
      | Some (_, Denote.DMacro t) -> partial_expand (apply_transformer t s)
      | _ -> s)
  | Stx.Id _ -> (
      match resolve_id s with
      | Some (_, Denote.DMacro t) -> partial_expand (apply_transformer t s)
      | _ -> s)
  | _ -> s

type mod_form =
  | MDefine of Stx.t * Stx.t list * Stx.t  (** original form, ids, rhs *)
  | MDefineSyntaxes of Stx.t
  | MBeginForSyntax of Stx.t * Stx.t list  (** original, expanded phase-1 forms *)
  | MProvide of Stx.t
  | MRequire of Stx.t
  | MExpr of Stx.t

let expand_module_body (forms : Stx.t list) : Stx.t list =
  (* pass 1: uncover definitions, requires, provides *)
  let acc = ref [] in
  let rec pass1 (form : Stx.t) =
    let form = partial_expand form in
    match Stx.view form with
    | Stx.List (hd :: rest) when Stx.is_id hd -> (
        match resolve_id hd with
        | Some (_, Denote.DCore "begin") -> List.iter pass1 rest
        | Some (_, Denote.DCore "define-values") -> (
            match rest with
            | [ ids; rhs ] ->
                let ids = expect_list "define-values: bad syntax" ids in
                let ids = List.map (expect_id "define-values: expects identifiers") ids in
                List.iter
                  (fun id ->
                    let b = Binding.bind id in
                    Denote.set b Denote.DVar)
                  ids;
                acc := MDefine (form, ids, rhs) :: !acc
            | _ -> err "define-values: bad syntax" form)
        | Some (_, Denote.DCore "define-syntaxes") -> (
            match rest with
            | [ ids; rhs ] ->
                let ids = expect_list "define-syntaxes: bad syntax" ids in
                let ids = List.map (expect_id "define-syntaxes: expects identifiers") ids in
                (match ids with
                | [ id ] ->
                    let t = eval_transformer_rhs ~name:(Stx.sym_exn id) rhs in
                    let b = Binding.bind id in
                    Denote.set b (Denote.DMacro t)
                | _ -> err "define-syntaxes: expects exactly one identifier" form);
                acc := MDefineSyntaxes form :: !acc
            | _ -> err "define-syntaxes: bad syntax" form)
        | Some (_, Denote.DCore "begin-for-syntax") ->
            let expanded = List.map expand_expr rest in
            List.iter
              (fun e ->
                match Interp.eval_top (Compile.compile_expr e) with
                | _ -> ()
                | exception Interp.Out_of_fuel ->
                    err
                      "begin-for-syntax: compile-time evaluation exhausted its fuel budget \
                       (probably divergent)"
                      e
                | exception Stack_overflow ->
                    err "begin-for-syntax: compile-time evaluation overflowed the stack" e)
              expanded;
            acc := MBeginForSyntax (form, expanded) :: !acc
        | Some (_, Denote.DCore "#%provide") -> acc := MProvide form :: !acc
        | Some (_, Denote.DCore "#%require") ->
            List.iter (fun spec -> !require_handler spec) rest;
            acc := MRequire form :: !acc
        | _ -> acc := MExpr form :: !acc)
    | _ -> acc := MExpr form :: !acc
  in
  List.iter pass1 forms;
  (* pass 2: fully expand deferred right-hand sides and expressions *)
  let finish = function
    | MDefine (form, ids, rhs) ->
        let rhs' = expand_expr rhs in
        relist form
          [ core_id ~loc:(Stx.loc form) "define-values"; relist form ids; rhs' ]
        |> Stx.copy_properties ~src:form
    | MDefineSyntaxes form -> form
    | MBeginForSyntax (form, expanded) ->
        relist form (core_id ~loc:(Stx.loc form) "begin-for-syntax" :: expanded)
    | MProvide form -> form
    | MRequire form -> form
    | MExpr form -> expand_expr form |> Stx.copy_properties ~src:form
  in
  List.map finish (List.rev !acc)

(* -- local-expand (§2.2) -------------------------------------------------------------- *)

type local_context = Expression | ModuleBegin

(** The paper's [local-expand].  In [Expression] context, [stops] lists
    identifiers at which expansion should stop (an empty list means: expand
    fully to core forms).  In [ModuleBegin] context the argument must be a
    [#%plain-module-begin] form, and the whole two-pass module-body
    expansion runs — this is what the Typed Racket driver (Fig. 2) uses. *)
let local_expand ?(stops : Stx.t list = []) (s : Stx.t) (ctx : local_context) : Stx.t =
  match ctx with
  | Expression ->
      let stop_bindings = List.filter_map Binding.resolve stops in
      expand_expr ~stops:stop_bindings s
  | ModuleBegin -> (
      match Stx.view s with
      | Stx.List (hd :: forms) when Stx.is_id hd -> (
          match resolve_id hd with
          | Some (_, Denote.DCore "#%plain-module-begin") ->
              relist s (hd :: expand_module_body forms)
          | _ -> err "local-expand: module-begin context expects #%plain-module-begin" s)
      | _ -> err "local-expand: module-begin context expects #%plain-module-begin" s)

(* -- phase-1 primitives for object-language macros -------------------------------------- *)

let phase1_prims : (string * Value.value) list =
  let mk name fn = (name, Value.prim name fn) in
  [
    mk "local-expand" (function
      | [ Value.StxV s ] -> Value.StxV (local_expand s Expression)
      | [ Value.StxV s; Value.Sym "expression"; stop_list ] ->
          let stops =
            List.map
              (function
                | Value.StxV id -> id
                | v -> Value.error "local-expand: bad stop list entry %s" (Value.write_string v))
              (Value.to_list stop_list)
          in
          Value.StxV (local_expand ~stops s Expression)
      | _ -> Value.error "local-expand: expects a syntax object");
    mk "make-stx-list" (function
      | [ Value.StxV ctx; parts ] ->
          let stxs =
            List.map
              (function
                | Value.StxV s -> s
                | v ->
                    Value.error "make-stx-list: expects syntax parts, got %s"
                      (Value.write_string v))
              (Value.to_list parts)
          in
          Value.StxV (Stx.list ~loc:(Stx.loc ctx) stxs)
      | _ -> Value.error "make-stx-list: expects a context and a list of syntax objects");
  ]
