(** The runtime namespace: module-level variables, keyed by binding uid.

    A binding imported from another module keeps its identity (§5), so the
    importing module's references reach the exporting module's global cell
    with no extra indirection. *)

module Binding = Liblang_stx.Binding
module Ast = Liblang_runtime.Ast
module Value = Liblang_runtime.Value

(* Domain-local, seeded at [Domain.spawn] with a shallow copy of the
   parent's table.  The copy shares the [Ast.global] records themselves —
   builtin primitives installed before the spawn resolve to the very same
   cells in every worker; cells a worker creates for its own module-level
   definitions stay private to that worker. *)
let table_key : (int, Ast.global) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Hashtbl.copy (fun () -> Hashtbl.create 1024)

let[@inline] table () = Domain.DLS.get table_key

(** The global cell for a binding, created on demand. *)
let global_of (b : Binding.t) : Ast.global =
  let table = table () in
  match Hashtbl.find_opt table b.Binding.uid with
  | Some g -> g
  | None ->
      let g = Ast.global b.Binding.name in
      Hashtbl.add table b.Binding.uid g;
      g

(** Install an immutable (non-[set!]-able) value, e.g. a primitive. *)
let define_immutable (b : Binding.t) (v : Value.value) =
  let g = Ast.global ~mutable_:false b.Binding.name in
  g.Ast.g_val <- v;
  Hashtbl.replace (table ()) b.Binding.uid g

let lookup_value (b : Binding.t) : Value.value option =
  match Hashtbl.find_opt (table ()) b.Binding.uid with
  | Some g when g.Ast.g_val != Value.Undefined -> Some g.Ast.g_val
  | _ -> None
