(** The compile-time store: per-compilation mutable state for phase-1 code.

    The paper (§5, §6.2) leans on Racket's guarantee that "each module is
    compiled with a fresh store": mutations made by compile-time code during
    one compilation are invisible to other compilations.  Languages keep
    their compile-time state here (e.g. Typed Racket's type environment and
    its [typed-context?] flag); the module compiler installs a fresh store
    around each module compilation and replays required modules'
    compile-time declarations into it. *)

module Value = Liblang_runtime.Value

type t = {
  id : int;
  vals : (string, Value.value) Hashtbl.t;
  tables : (string, (int, Value.value) Hashtbl.t) Hashtbl.t;
      (** named tables keyed by binding uid — e.g. a type environment *)
}

(* Store ids are globally unique (atomic counter): module records carry
   [visited_stores] lists of store ids, and module records cloned into a
   worker domain must never collide with ids minted by another domain. *)
let counter = Atomic.make 0

let create () : t =
  { id = 1 + Atomic.fetch_and_add counter 1; vals = Hashtbl.create 32; tables = Hashtbl.create 4 }

(* The ambient store is per-domain: each parallel-build worker compiles with
   its own store stack, which is exactly the "fresh store per compilation"
   guarantee extended to domains. *)
let current_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> create ())

let[@inline] current () : t = Domain.DLS.get current_key

(** Run [f] with [store] as the ambient store (restoring the previous one
    after).  The artifact loader uses this to re-enter a module's
    load-time store when a deferred body compilation is forced at
    instantiation time. *)
let with_store (store : t) f =
  let saved = current () in
  Domain.DLS.set current_key store;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key saved) f

let with_fresh_store f = with_store (create ()) f

let store_id () = (current ()).id
let get key = Hashtbl.find_opt (current ()).vals key
let set key v = Hashtbl.replace (current ()).vals key v

(** A named, binding-uid-keyed table in the current store, created on first
    access.  Typed Racket's type environment is [uid_table "typed:types"]. *)
let uid_table name : (int, Value.value) Hashtbl.t =
  let cur = current () in
  match Hashtbl.find_opt cur.tables name with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 64 in
      Hashtbl.add cur.tables name t;
      t
