(** [syntax-rules]: pattern/template macros written in the object language.

    Full ellipsis support: patterns and templates may nest [...] to any
    depth, with the usual constraints (a template variable must be used at
    the depth it was matched at).  Literals are compared with
    [free-identifier=?], so a literal keyword respects the binding structure
    of the program (hygienic literal matching).

    Pattern variables are keyed by interned {!Stx.Symbol.t}, so match-env
    lookups are O(1) integer comparisons rather than string compares. *)

module Stx = Liblang_stx.Stx
module Binding = Liblang_stx.Binding
module Symbol = Liblang_symbol.Symbol

exception Bad_syntax of string * Stx.t

type rule = { pattern : Stx.t; template : Stx.t }

type t = { literals : Stx.t list; rules : rule list; name : string }

let sym_ellipsis = Symbol.intern "..."
let sym_underscore = Symbol.intern "_"
let is_ellipsis s = Stx.has_sym sym_ellipsis s

(* What a pattern variable matched: a single piece of syntax at depth 0, or
   a sequence of matches at depth n+1. *)
type matched = One of Stx.t | Seq of matched list

type menv = (Symbol.t * matched) list

let is_literal literals id =
  List.exists (fun l -> Binding.free_identifier_eq l id) literals

(* -- matching -------------------------------------------------------------- *)

let rec match_pattern literals (pat : Stx.t) (s : Stx.t) : menv option =
  match Stx.view pat with
  | Stx.Id name when Symbol.equal name sym_underscore -> Some []
  | Stx.Id _ when is_literal literals pat ->
      if Stx.is_id s && Binding.free_identifier_eq pat s then Some [] else None
  | Stx.Id name -> Some [ (name, One s) ]
  | Stx.Atom a -> (
      match Stx.view s with
      | Stx.Atom b when Liblang_reader.Datum.atom_equal a b -> Some []
      | _ -> None)
  | Stx.List pats -> (
      match Stx.view s with
      | Stx.List elems -> match_list literals pats elems
      | _ -> None)
  | Stx.DotList (pats, tailpat) -> (
      (* (p1 p2 . tail) can match both dotted and proper input *)
      match Stx.view s with
      | Stx.List elems ->
          let n = List.length pats in
          if List.length elems < n then None
          else
            let front = List.filteri (fun i _ -> i < n) elems in
            let back = List.filteri (fun i _ -> i >= n) elems in
            combine_envs
              (match_list literals pats front)
              (match_pattern literals tailpat (Stx.list ~loc:(Stx.loc s) back))
      | Stx.DotList (elems, tl) ->
          let n = List.length pats in
          if List.length elems < n then None
          else
            let front = List.filteri (fun i _ -> i < n) elems in
            let back = List.filteri (fun i _ -> i >= n) elems in
            let tail_stx =
              if back = [] then tl else Stx.mk ~loc:(Stx.loc s) (Stx.DotList (back, tl))
            in
            combine_envs (match_list literals pats front) (match_pattern literals tailpat tail_stx)
      | _ -> None)
  | Stx.Vec pats -> (
      match Stx.view s with
      | Stx.Vec elems -> match_list literals pats elems
      | _ -> None)

and combine_envs a b = match (a, b) with Some x, Some y -> Some (x @ y) | _ -> None

and match_list literals (pats : Stx.t list) (elems : Stx.t list) : menv option =
  match pats with
  | [] -> if elems = [] then Some [] else None
  | p :: rest when rest <> [] && is_ellipsis (List.hd rest) ->
      (* p ... tail-pats *)
      let tail_pats = List.tl rest in
      let min_tail = List.length tail_pats in
      let n_rep = List.length elems - min_tail in
      if n_rep < 0 then None
      else
        let rep = List.filteri (fun i _ -> i < n_rep) elems in
        let tail = List.filteri (fun i _ -> i >= n_rep) elems in
        let sub_envs = List.map (fun e -> match_pattern literals p e) rep in
        if List.exists Option.is_none sub_envs then None
        else
          let sub_envs = List.map Option.get sub_envs in
          let vars = pattern_vars literals p in
          let seq_env =
            List.map
              (fun v ->
                ( v,
                  Seq
                    (List.map
                       (fun env ->
                         match List.assoc_opt v env with
                         | Some m -> m
                         | None ->
                             raise
                               (Bad_syntax
                                  ("syntax-rules: internal var " ^ Symbol.name v, p)))
                       sub_envs) ))
              vars
          in
          combine_envs (Some seq_env) (match_list literals tail_pats tail)
  | p :: rest -> (
      match elems with
      | [] -> None
      | e :: more -> combine_envs (match_pattern literals p e) (match_list literals rest more))

and pattern_vars literals (pat : Stx.t) : Symbol.t list =
  match Stx.view pat with
  | Stx.Id name when Symbol.equal name sym_underscore || Symbol.equal name sym_ellipsis
    -> []
  | Stx.Id name -> if is_literal literals pat then [] else [ name ]
  | Stx.Atom _ -> []
  | Stx.List ps | Stx.Vec ps -> List.concat_map (pattern_vars literals) ps
  | Stx.DotList (ps, tl) -> List.concat_map (pattern_vars literals) ps @ pattern_vars literals tl

(* -- template instantiation -------------------------------------------------- *)

let rec template_vars (t : Stx.t) : Symbol.t list =
  match Stx.view t with
  | Stx.Id name -> [ name ]
  | Stx.Atom _ -> []
  | Stx.List ts | Stx.Vec ts -> List.concat_map template_vars ts
  | Stx.DotList (ts, tl) -> List.concat_map template_vars ts @ template_vars tl

let rec instantiate (env : menv) (tmpl : Stx.t) : Stx.t =
  match Stx.view tmpl with
  | Stx.Id name -> (
      match List.assoc_opt name env with
      | Some (One s) -> s
      | Some (Seq _) ->
          raise
            (Bad_syntax
               ( "syntax-rules: pattern variable used at wrong ellipsis depth: "
                 ^ Symbol.name name,
                 tmpl ))
      | None -> tmpl)
  | Stx.Atom _ -> tmpl
  | Stx.List ts -> Stx.rewrap tmpl (Stx.List (instantiate_seq env ts))
  | Stx.DotList (ts, tl) ->
      Stx.rewrap tmpl (Stx.DotList (instantiate_seq env ts, instantiate env tl))
  | Stx.Vec ts -> Stx.rewrap tmpl (Stx.Vec (instantiate_seq env ts))

and instantiate_seq env (ts : Stx.t list) : Stx.t list =
  match ts with
  | t :: rest when rest <> [] && is_ellipsis (List.hd rest) ->
      (* t ... — and possibly more ellipses for deeper splicing *)
      let rec count_ellipses acc = function
        | e :: more when is_ellipsis e -> count_ellipses (acc + 1) more
        | more -> (acc, more)
      in
      let depth, rest' = count_ellipses 0 rest in
      let expanded = expand_ellipsis env t depth in
      expanded @ instantiate_seq env rest'
  | t :: rest -> instantiate env t :: instantiate_seq env rest
  | [] -> []

and expand_ellipsis env (t : Stx.t) (depth : int) : Stx.t list =
  if depth = 0 then [ instantiate env t ]
  else
    let vars = List.filter (fun v -> List.mem_assoc v env) (template_vars t) in
    let seq_vars = List.filter (fun v -> match List.assoc v env with Seq _ -> true | One _ -> false) vars in
    if seq_vars = [] then
      raise (Bad_syntax ("syntax-rules: ellipsis template with no sequence variable", t));
    let len =
      match List.assoc (List.hd seq_vars) env with Seq ms -> List.length ms | One _ -> 0
    in
    List.iter
      (fun v ->
        match List.assoc v env with
        | Seq ms when List.length ms <> len ->
            raise
              (Bad_syntax
                 ("syntax-rules: mismatched ellipsis counts for " ^ Symbol.name v, t))
        | _ -> ())
      seq_vars;
    List.concat
      (List.init len (fun i ->
           let env_i =
             List.map
               (fun (v, m) ->
                 match m with
                 | Seq ms when List.mem v seq_vars -> (v, List.nth ms i)
                 | _ -> (v, m))
               env
           in
           expand_ellipsis env_i t (depth - 1)))

(* -- the transformer --------------------------------------------------------- *)

(** Parse [(syntax-rules (lit ...) [pattern template] ...)]. *)
let parse ~name (form : Stx.t) : t =
  match Stx.to_list form with
  | Some (_kw :: lits :: rules) ->
      let literals =
        match Stx.to_list lits with
        | Some ids when List.for_all Stx.is_id ids -> ids
        | _ -> raise (Bad_syntax ("syntax-rules: expected a parenthesized literals list", lits))
      in
      let parse_rule r =
        match Stx.to_list r with
        | Some [ pattern; template ] -> { pattern; template }
        | _ -> raise (Bad_syntax ("syntax-rules: expected [pattern template]", r))
      in
      { literals; rules = List.map parse_rule rules; name }
  | _ -> raise (Bad_syntax ("syntax-rules: bad form", form))

(** Apply a [syntax-rules] transformer to a use-site form.  The leading
    identifier of each pattern is ignored (standard behavior). *)
let apply (sr : t) (form : Stx.t) : Stx.t =
  let try_rule { pattern; template } =
    let pattern' =
      (* replace the head of the pattern with _ so the macro name matches itself *)
      match Stx.view pattern with
      | Stx.List (hd :: rest) when Stx.is_id hd ->
          Stx.rewrap pattern
            (Stx.List (Stx.rewrap hd (Stx.Id sym_underscore) :: rest))
      | _ -> pattern
    in
    match match_pattern sr.literals pattern' form with
    | Some env -> Some (instantiate env template)
    | None -> None
  in
  let rec go = function
    | [] -> raise (Bad_syntax (sr.name ^ ": no matching syntax-rules pattern", form))
    | r :: rest -> ( match try_rule r with Some out -> out | None -> go rest)
  in
  go sr.rules
