(** Pipeline metrics: named counters and accumulating wall-clock timers,
    collected by an {e ambient collector} that mirrors the diagnostics
    layer's [Reporter] pattern (install with {!with_collector}; phases
    report through the module-level hooks below).

    The design constraint is {e zero cost when off}: every hook first loads
    {!current} and returns immediately when no collector is installed — no
    allocation, no hashing, no string building.  The hot-interpreter hook
    ({!bump_apps}) is a single load-compare-increment so it can sit inside
    the evaluator's application path without moving the benchmarks.

    Metric names are dotted paths; the conventions (documented in
    [docs/observability.md]) are:

    - ["phase.<name>"]    timers: wall time per pipeline phase
                          (read, expand, typecheck, optimize, compile,
                          instantiate)
    - ["expand.macro.<m>"] counter {e and} timer: applications of macro [m]
                          and the wall time spent inside its transformer
    - ["expand.fuel.<m>"] counter: compile-time evaluation steps burned by
                          macro [m]'s phase-1 procedure
    - ["optimize.<rule>"] counter: firings of one optimizer rewrite rule
    - ["reader.datums"]   counter: top-level datums read
    - ["module.*"]        counters: compiles, instantiations, re-expansions *)

type timer = { mutable total_s : float; mutable calls : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  mutable interp_apps : int;  (** procedure applications in the evaluator *)
}

let create () = { counters = Hashtbl.create 32; timers = Hashtbl.create 16; interp_apps = 0 }

let now () = Unix.gettimeofday ()

(* -- the ambient collector --------------------------------------------------

   Domain-local: the ambient collector slot lives in [Domain.DLS], so each
   parallel-build worker collects into its own [t] and the driver merges
   them on join ({!merge}).  To keep the zero-cost-when-off promise on the
   evaluator's hot path, a process-wide atomic count of installed
   collectors gates every hook: when it is zero (the benchmark case — no
   collector anywhere), the hook is one uncontended [Atomic.get] and a
   branch, with no DLS access at all. *)

let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Collectors installed across all domains; 0 = every hook is off. *)
let installed_count = Atomic.make 0

let[@inline] current () : t option =
  if Atomic.get installed_count = 0 then None else Domain.DLS.get current_key

let installed () = Option.is_some (current ())

(** Install [c] for the extent of [f] (properly nested). *)
let with_collector (c : t) (f : unit -> 'a) : 'a =
  let saved = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some c);
  Atomic.incr installed_count;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr installed_count;
      Domain.DLS.set current_key saved)
    f

let with_opt (c : t option) (f : unit -> 'a) : 'a =
  match c with None -> f () | Some c -> with_collector c f

(* -- hooks (call sites live throughout lib/) -------------------------------- *)

let count_in c key n =
  match Hashtbl.find_opt c.counters key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add c.counters key (ref n)

(** Add [n] (default 1) to counter [key] of the ambient collector. *)
let countn key n = match current () with None -> () | Some c -> count_in c key n

let count key = countn key 1

(** Accumulate [dt] seconds into timer [key]. *)
let add_time key dt =
  match current () with
  | None -> ()
  | Some c -> (
      match Hashtbl.find_opt c.timers key with
      | Some t ->
          t.total_s <- t.total_s +. dt;
          t.calls <- t.calls + 1
      | None -> Hashtbl.add c.timers key { total_s = dt; calls = 1 })

(** Time [f] into timer [key]; when no collector is installed this is just
    [f ()] — no clock reads. *)
let time key f =
  match current () with
  | None -> f ()
  | Some _ ->
      let t0 = now () in
      Fun.protect ~finally:(fun () -> add_time key (now () -. t0)) f

(** The hot-path hook: one evaluator procedure application.  Kept free of
    allocation and hashing so the evaluator can call it unconditionally —
    with no collector installed anywhere it is one atomic load and a
    branch. *)
let[@inline] bump_apps () =
  if Atomic.get installed_count > 0 then
    match Domain.DLS.get current_key with
    | None -> ()
    | Some c -> c.interp_apps <- c.interp_apps + 1

(* -- reading a collector ---------------------------------------------------- *)

let get (c : t) key = match Hashtbl.find_opt c.counters key with Some r -> !r | None -> 0

let get_ms (c : t) key =
  match Hashtbl.find_opt c.timers key with Some t -> 1000.0 *. t.total_s | None -> 0.0

let counters_alist (c : t) : (string * int) list =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let timers_alist (c : t) : (string * timer) list =
  Hashtbl.fold (fun k t acc -> (k, t) :: acc) c.timers []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Counters matching a dotted prefix, with the prefix stripped:
    [by_prefix c "optimize."] is the rewrite-rule histogram. *)
let by_prefix (c : t) prefix : (string * int) list =
  let pl = String.length prefix in
  List.filter_map
    (fun (k, n) ->
      if String.length k > pl && String.sub k 0 pl = prefix then
        Some (String.sub k pl (String.length k - pl), n)
      else None)
    (counters_alist c)

let reset (c : t) =
  Hashtbl.reset c.counters;
  Hashtbl.reset c.timers;
  c.interp_apps <- 0

(** Fold collector [c] into [into] (counters, timers, interpreter
    applications).  Used by the CLI to aggregate per-file collectors into a
    session-wide profile, and by the parallel build driver to merge each
    worker domain's collector into the main collector on join. *)
let merge ~(into : t) (c : t) : unit =
  List.iter (fun (k, n) -> count_in into k n) (counters_alist c);
  List.iter
    (fun (k, (t : timer)) ->
      match Hashtbl.find_opt into.timers k with
      | Some dst ->
          dst.total_s <- dst.total_s +. t.total_s;
          dst.calls <- dst.calls + t.calls
      | None -> Hashtbl.add into.timers k { total_s = t.total_s; calls = t.calls })
    (timers_alist c);
  into.interp_apps <- into.interp_apps + c.interp_apps

(* -- reports ---------------------------------------------------------------- *)

(** The canonical phase order of the pipeline (see docs/architecture.md). *)
let phase_order =
  [ "read"; "expand"; "typecheck"; "analyze"; "optimize"; "compile"; "lower"; "load"; "instantiate" ]

(** Human-readable profile report (what [--profile] prints). *)
let render (c : t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== profile ==\n";
  Buffer.add_string buf "phase wall time:\n";
  List.iter
    (fun p ->
      let key = "phase." ^ p in
      match Hashtbl.find_opt c.timers key with
      | Some t -> Buffer.add_string buf (Printf.sprintf "  %-12s %10.3f ms  (%d call%s)\n" p (1000.0 *. t.total_s) t.calls (if t.calls = 1 then "" else "s"))
      | None -> ())
    phase_order;
  let section title prefix render_row =
    match by_prefix c prefix with
    | [] -> ()
    | rows ->
        Buffer.add_string buf (title ^ ":\n");
        List.iter render_row
          (List.sort (fun (_, a) (_, b) -> compare b a) rows)
  in
  section "macro expansions" "expand.macro." (fun (name, n) ->
      let ms = get_ms c ("expand.macro." ^ name) in
      Buffer.add_string buf
        (if ms > 0.0 then Printf.sprintf "  %-28s %8d  %10.3f ms\n" name n ms
         else Printf.sprintf "  %-28s %8d\n" name n));
  section "compile-time fuel by macro" "expand.fuel." (fun (name, n) ->
      Buffer.add_string buf (Printf.sprintf "  %-28s %8d steps\n" name n));
  section "optimizer rewrites" "optimize." (fun (rule, n) ->
      Buffer.add_string buf (Printf.sprintf "  %-28s %8d\n" rule n));
  section "reader" "reader." (fun (k, n) ->
      Buffer.add_string buf (Printf.sprintf "  %-28s %8d\n" k n));
  (let hyg =
     List.filter_map
       (fun k ->
         match Hashtbl.find_opt c.counters k with Some r -> Some (k, !r) | None -> None)
       [
         "expand.resolve_hits";
         "expand.resolve_misses";
         "stx.scope_pushes";
         "stx.symbols_interned";
         "stx.scope_sets_interned";
       ]
   in
   if hyg <> [] then begin
     Buffer.add_string buf "hygiene engine:\n";
     List.iter
       (fun (k, n) -> Buffer.add_string buf (Printf.sprintf "  %-28s %8d\n" k n))
       hyg
   end);
  section "module system" "module." (fun (k, n) ->
      Buffer.add_string buf (Printf.sprintf "  %-28s %8d\n" k n));
  section "artifact cache" "cache." (fun (k, n) ->
      Buffer.add_string buf (Printf.sprintf "  %-28s %8d\n" k n));
  if c.interp_apps > 0 then
    Buffer.add_string buf (Printf.sprintf "interpreter applications: %d\n" c.interp_apps);
  Buffer.contents buf

(** Machine-readable profile (what [--profile=json] prints); schema in
    docs/observability.md. *)
let to_json (c : t) : Json.t =
  let phases =
    List.filter_map
      (fun p ->
        match Hashtbl.find_opt c.timers ("phase." ^ p) with
        | Some t ->
            Some
              ( p,
                Json.Obj
                  [ ("ms", Json.Num (1000.0 *. t.total_s)); ("calls", Json.Num (float_of_int t.calls)) ] )
        | None -> None)
      phase_order
  in
  let other_timers =
    List.filter_map
      (fun (k, (t : timer)) ->
        if String.length k > 6 && String.sub k 0 6 = "phase." then None
        else
          Some
            ( k,
              Json.Obj
                [ ("ms", Json.Num (1000.0 *. t.total_s)); ("calls", Json.Num (float_of_int t.calls)) ] ))
      (timers_alist c)
  in
  Json.Obj
    [
      ("phases", Json.Obj phases);
      ("counters", Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) (counters_alist c)));
      ("timers", Json.Obj other_timers);
      ("interp_apps", Json.Num (float_of_int c.interp_apps));
    ]
