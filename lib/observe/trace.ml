(** Phase-level tracing: span (enter/exit) and point events emitted, as the
    pipeline runs, to an ambient {e sink} — either human-readable indented
    text or NDJSON (one JSON object per line; schema in
    docs/observability.md).

    Like {!Metrics}, tracing is zero-cost when off: every emission point
    checks {!current} (and its verbosity level) before building any
    strings.  Verbosity levels:

    - 1 (default): phase spans — read, expand, typecheck, optimize,
      compile, instantiate, run — with wall-clock durations;
    - 2 ([-vv] in the CLI): additionally each macro transformer step, with
      the syntax before and after the rewrite. *)

type format = Text | Ndjson

type sink = {
  out : out_channel;
  format : format;
  verbosity : int;
  t0 : float;  (** trace epoch; event times are relative, in ms *)
  mutable depth : int;  (** current span nesting, for text indentation *)
}

let make_sink ?(format = Text) ?(verbosity = 1) (out : out_channel) : sink =
  { out; format; verbosity; t0 = Metrics.now (); depth = 0 }

(* -- the ambient sink -------------------------------------------------------

   Domain-local: a sink installed on the main domain is not seen by
   parallel-build workers (a freshly spawned domain starts with no sink), so
   workers never interleave writes into the main domain's trace channel.
   Worker-side activity still shows up in the merged metrics. *)

let current_key : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let[@inline] current () : sink option = Domain.DLS.get current_key

let installed () = Option.is_some (current ())

(** True when a sink is installed at verbosity >= [level] — call sites use
    this to skip building expensive payloads (rendered syntax). *)
let enabled_at level =
  match current () with Some s -> s.verbosity >= level | None -> false

let with_sink (s : sink) (f : unit -> 'a) : 'a =
  let saved = current () in
  Domain.DLS.set current_key (Some s);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set current_key saved;
      flush s.out)
    f

let with_opt (s : sink option) (f : unit -> 'a) : 'a =
  match s with None -> f () | Some s -> with_sink s f

(* -- emission --------------------------------------------------------------- *)

let rel_ms (s : sink) = 1000.0 *. (Metrics.now () -. s.t0)

let emit_ndjson (s : sink) (fields : (string * Json.t) list) =
  output_string s.out (Json.to_string (Json.Obj fields));
  output_char s.out '\n'

let emit_text (s : sink) line =
  output_string s.out (String.make (2 * s.depth) ' ');
  output_string s.out line;
  output_char s.out '\n'

(** A point event.  [fields] are extra key/value payload (strings); only
    built by the caller after checking {!enabled_at}. *)
let event ?(level = 1) (ev : string) (fields : (string * string) list) =
  match current () with
  | Some s when s.verbosity >= level -> (
      match s.format with
      | Ndjson ->
          emit_ndjson s
            (("ev", Json.Str ev)
            :: ("t", Json.Num (rel_ms s))
            :: List.map (fun (k, v) -> (k, Json.Str v)) fields)
      | Text ->
          emit_text s
            (ev
            ^ String.concat ""
                (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) fields)))
  | _ -> ()

(** Run [f] inside a span named [name] (a pipeline phase or a module-scoped
    activity); emits enter/exit events with the span's wall-clock duration.
    [detail] disambiguates (module name, file).  No-op without a sink. *)
let span ?(level = 1) ?(detail = "") (name : string) (f : unit -> 'a) : 'a =
  match current () with
  | Some s when s.verbosity >= level ->
      let t0 = Metrics.now () in
      (match s.format with
      | Ndjson ->
          emit_ndjson s
            (("ev", Json.Str "enter") :: ("span", Json.Str name)
            :: ("t", Json.Num (rel_ms s))
            :: (if detail = "" then [] else [ ("detail", Json.Str detail) ]))
      | Text ->
          emit_text s
            (Printf.sprintf "-> %s%s" name (if detail = "" then "" else " (" ^ detail ^ ")")));
      s.depth <- s.depth + 1;
      let finish ok =
        s.depth <- s.depth - 1;
        let ms = 1000.0 *. (Metrics.now () -. t0) in
        match s.format with
        | Ndjson ->
            emit_ndjson s
              (("ev", Json.Str "exit") :: ("span", Json.Str name)
              :: ("t", Json.Num (rel_ms s))
              :: ("ms", Json.Num ms)
              :: (if ok then [] else [ ("raised", Json.Bool true) ]))
        | Text ->
            emit_text s
              (Printf.sprintf "<- %s %.3f ms%s" name ms (if ok then "" else " (raised)"))
      in
      (match f () with
      | v ->
          finish true;
          v
      | exception e ->
          finish false;
          raise e)
  | _ -> f ()
