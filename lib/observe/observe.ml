(** Facade of the observability layer: a {!ctx} bundles an optional
    metrics collector ({!Metrics.t}) and an optional trace sink
    ({!Trace.sink}); {!with_ctx} installs both ambiently for the extent of
    a pipeline run.  [Pipeline.run ~observe] (lib/core) threads a [ctx]
    through a whole compilation; the per-phase hooks live inside each
    subsystem (reader, expander, typed, modules, runtime) and are no-ops
    when nothing is installed.

    See docs/observability.md for the metric catalogue, the NDJSON trace
    schema, and a worked example. *)

module Json = Json
module Metrics = Metrics
module Trace = Trace

type ctx = { metrics : Metrics.t option; trace : Trace.sink option }

(** The do-nothing context (the default of [Pipeline.run ?observe]). *)
let nothing : ctx = { metrics = None; trace = None }

let profiling () : ctx = { metrics = Some (Metrics.create ()); trace = None }

let with_ctx (ctx : ctx) (f : unit -> 'a) : 'a =
  Metrics.with_opt ctx.metrics (fun () -> Trace.with_opt ctx.trace f)
