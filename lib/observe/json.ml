(** A deliberately small JSON library: enough to emit the profiler's
    machine-readable output ([--profile=json], trace NDJSON, and
    [BENCH_fig6.json]) and to parse it back in tests and tooling, without
    adding a dependency the container may not have.

    Emission is total; parsing is strict RFC-8259-shaped (objects, arrays,
    strings with the standard escapes, numbers, [true]/[false]/[null]) and
    returns [Error msg] rather than raising. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* -- emission ------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity; clamp to null like most emitters. Integral
   floats print without a fractional part so counters read naturally. *)
let add_num buf f =
  if Float.is_nan f || not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.6g" f)

let rec write ?(indent = 0) ?(pretty = false) buf (j : t) =
  let nl_ind n =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape_string buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          nl_ind (indent + 1);
          write ~indent:(indent + 1) ~pretty buf x)
        xs;
      nl_ind indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl_ind (indent + 1);
          escape_string buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          write ~indent:(indent + 1) ~pretty buf v)
        kvs;
      nl_ind indent;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) (j : t) : string =
  let buf = Buffer.create 256 in
  write ~pretty buf j;
  Buffer.contents buf

(* -- parsing -------------------------------------------------------------- *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = s.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char buf e;
                  go ()
              | 'n' -> Buffer.add_char buf '\n'; go ()
              | 't' -> Buffer.add_char buf '\t'; go ()
              | 'r' -> Buffer.add_char buf '\r'; go ()
              | 'b' -> Buffer.add_char buf '\b'; go ()
              | 'f' -> Buffer.add_char buf '\012'; go ()
              | 'u' ->
                  if !pos + 4 > n then fail "bad \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                  in
                  (* encode the code point as UTF-8 (BMP only; surrogate
                     pairs in input are passed through unpaired) *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end;
                  go ()
              | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with Some f -> Num f | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* -- accessors (for tests and tooling) ------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr xs -> Some xs | _ -> None
