(** The compiled-artifact format — the on-disk record of one separately
    compiled module (the moral equivalent of Racket's [compiled/*.zo]
    files, paper §5).

    An artifact carries everything a later session needs to {e visit} and
    {e instantiate} the module without re-running expansion or
    typechecking:

    - a format version (artifacts from other versions are stale);
    - the digest of the module's source text;
    - the module's requires, each either a [builtin] host module or a
      [file] module together with the digest of {e its} artifact — this is
      what makes invalidation transitive;
    - the export table (external names), informational;
    - the fully-expanded core forms of the module body.  The
      [begin-for-syntax] forms inside it are the serialized compile-time
      (type-environment) declarations of §5: the loader regenerates the
      module's [ct_thunks] from them, so closures are never marshaled.

    The serialization is a single reader-parseable s-expression, so a
    corrupt or truncated artifact surfaces as an ordinary parse failure
    and degrades to a recompile (see {!Store}). *)

module Datum = Liblang_reader.Datum
module Reader = Liblang_reader.Reader
module Stx = Liblang_stx.Stx

(** Bump whenever the serialized shape (or the meaning of the core forms)
    changes; artifacts written by any other version are ignored.
    v2: integrity trailer appended (see {!verify_integrity}).
    v3: optional [(bytecode ...)] section — the backend's lowered code
    for the body forms, covered by the integrity trailer like
    everything else.  Absent when the compiling session lowered
    nothing; a v2 artifact (no such section possible) is version skew
    and degrades to a recompile. *)
let format_version = 3

(** The magic header line; doubles as a human hint not to edit the file. *)
let magic = ";; liblang compiled artifact (machine-generated; do not edit)"

(** Last line of every artifact: [;; integrity: <md5hex>] of everything
    before it.  A reader comment, so parsing ignores it — but the store
    verifies it before parsing, which catches damage the reader cannot:
    a truncated tail, or a bit flip that still reads as a well-formed
    s-expression and would otherwise replay silently wrong. *)
let integrity_marker = ";; integrity: "

type require_ref =
  | Builtin of string  (** a host-provided module, e.g. [racket] *)
  | File of string * string
      (** a file module: canonical key and the digest of its artifact *)

type t = {
  version : int;
  mod_name : string;  (** canonical module key (absolute path) *)
  lang : string;
  source_digest : string;
  requires : require_ref list;
  exports : string list;  (** external names, for listing/validation *)
  links : (string * string) list;
      (** cross-module {e internal} references: [(name, module-key)] pairs
          for every free identifier in the core forms that is bound to a
          required module's unexported module-level definition — e.g. the
          [defensive-*] bindings a typed module's export indirection
          (§6.2) splices into untyped clients.  Exported names rebind by
          name through the require; these cannot, so the loader re-links
          them explicitly via {!Liblang_modules.Modsys.find_internal}. *)
  core_forms : Datum.annot list;  (** fully-expanded module body *)
  bytecode : Datum.annot option;
      (** the backend's serialized lowering of the body's runnable forms
          (see {!Liblang_backend.Lower.code_to_datum}); [None] when the
          writer had none.  Purely an acceleration: the loader primes
          the VM's code cache from it, and any inconsistency degrades to
          lowering afresh. *)
}

(** Why a stored artifact cannot be used (each degrades to a recompile). *)
type invalid =
  | Missing  (** no artifact on disk for this module key *)
  | Unreadable of string  (** I/O error reading the artifact file *)
  | Corrupt of string  (** parse failure / wrong shape (incl. truncation) *)
  | Version_skew of int  (** written by another format version *)
  | Stale_source  (** the module's source text changed *)
  | Stale_require of string  (** a required module's artifact changed *)
  | Load_failed of string
      (** the artifact parsed but could not be rebuilt into a live module
          (e.g. a link target vanished because its module was recompiled
          by a cache-less session) *)

let invalid_to_string = function
  | Missing -> "no artifact"
  | Unreadable m -> "unreadable artifact: " ^ m
  | Corrupt m -> "corrupt artifact: " ^ m
  | Version_skew v -> Printf.sprintf "format version skew (artifact v%d, expected v%d)" v format_version
  | Stale_source -> "stale: source changed"
  | Stale_require r -> "stale: required module changed: " ^ r
  | Load_failed m -> "artifact failed to load: " ^ m

(* -- serialization --------------------------------------------------------- *)

let str s = Datum.str s
let sym s = Datum.sym s
let dlist xs = Datum.list xs

let datum_of_require = function
  | Builtin name -> dlist [ sym "builtin"; str name ]
  | File (key, digest) -> dlist [ sym "file"; str key; str digest ]

(** Render an artifact to its on-disk text. *)
let to_string (a : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  let header =
    dlist
      [
        sym "liblang-artifact";
        dlist [ sym "version"; Datum.int a.version ];
        dlist [ sym "module"; str a.mod_name ];
        dlist [ sym "lang"; str a.lang ];
        dlist [ sym "source-digest"; str a.source_digest ];
        dlist (sym "requires" :: List.map datum_of_require a.requires);
        dlist (sym "exports" :: List.map str a.exports);
        dlist
          (sym "links"
          :: List.map (fun (n, k) -> dlist [ str n; str k ]) a.links);
      ]
  in
  Buffer.add_string buf (Datum.to_string header.Datum.d);
  Buffer.add_char buf '\n';
  Buffer.add_string buf "(body\n";
  List.iter
    (fun (f : Datum.annot) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Datum.to_string f.Datum.d);
      Buffer.add_char buf '\n')
    a.core_forms;
  Buffer.add_string buf ")\n";
  (match a.bytecode with
  | None -> ()
  | Some bc ->
      Buffer.add_string buf (Datum.to_string bc.Datum.d);
      Buffer.add_char buf '\n');
  let body_text = Buffer.contents buf in
  body_text ^ integrity_marker ^ Digest_util.of_string body_text ^ "\n"

(** Build the artifact for a compiled module from its expanded core forms
    (syntax is flattened to datums; scopes are per-session and are
    reconstructed by the loader). *)
let of_compiled ?bytecode ~mod_name ~lang ~source_digest ~requires ~exports ~links
    ~(core_forms : Stx.t list) () : t =
  {
    version = format_version;
    mod_name;
    lang;
    source_digest;
    requires;
    exports;
    links;
    core_forms = List.map Stx.to_annot core_forms;
    bytecode;
  }

(* -- integrity -------------------------------------------------------------- *)

let last_index_of ~(sub : string) (s : string) : int option =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i < 0 then None
    else if String.equal (String.sub s i m) sub then Some i
    else go (i - 1)
  in
  if m > n then None else go (n - m)

(** Verify the {!integrity_marker} trailer: [Ok ()] iff the final
    trailer's digest matches the text preceding it.  A missing trailer is
    [Corrupt] too — callers that must not mistake {e old-format} artifacts
    for damage should fall back to {!of_string}'s version check (the store
    does; see [Store.read]). *)
let verify_integrity (text : string) : (unit, invalid) result =
  match last_index_of ~sub:("\n" ^ integrity_marker) text with
  | None -> Error (Corrupt "missing integrity trailer")
  | Some i ->
      let start = i + 1 + String.length integrity_marker in
      let claimed = String.trim (String.sub text start (String.length text - start)) in
      let prefix = String.sub text 0 (i + 1) in
      if String.equal claimed (Digest_util.of_string prefix) then Ok ()
      else Error (Corrupt "integrity digest mismatch (artifact damaged on disk)")

(* -- parsing --------------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let expect_str what (a : Datum.annot) =
  match a.Datum.d with Datum.Atom (Datum.Str s) -> s | _ -> bad "%s: expected a string" what

let parse_require (a : Datum.annot) : require_ref =
  match a.Datum.d with
  | Datum.List [ k; n ] when Datum.is_sym "builtin" k -> Builtin (expect_str "require" n)
  | Datum.List [ k; n; d ] when Datum.is_sym "file" k ->
      File (expect_str "require" n, expect_str "require digest" d)
  | _ -> bad "bad require entry"

(** Parse artifact text.  [Error] carries the reason the artifact cannot
    be used; version skew is detected before the rest of the header so a
    future format change never surfaces as "corrupt". *)
let of_string (text : string) : (t, invalid) result =
  match Reader.read_all ~file:"<artifact>" text with
  | exception Reader.Error (m, _) -> Error (Corrupt m)
  | datums -> (
      try
        (* the bytecode section is optional; peel it off so the 2-datum
           core shape below stays the only required structure *)
        let datums, bytecode =
          match datums with
          | [ h; b; bc ] -> (
              match bc.Datum.d with
              | Datum.List (k :: _) when Datum.is_sym "bytecode" k ->
                  ([ h; b ], Some bc)
              | _ -> (datums, None))
          | _ -> (datums, None)
        in
        match datums with
        | [ header; body ] -> (
            let fields =
              match header.Datum.d with
              | Datum.List (h :: fields) when Datum.is_sym "liblang-artifact" h -> fields
              | _ -> bad "not a liblang-artifact"
            in
            let field name =
              List.find_opt
                (fun (f : Datum.annot) ->
                  match f.Datum.d with
                  | Datum.List (k :: _) -> Datum.is_sym name k
                  | _ -> false)
                fields
            in
            let field_exn name =
              match field name with Some f -> f | None -> bad "missing field %s" name
            in
            let version =
              match (field_exn "version").Datum.d with
              | Datum.List [ _; { d = Datum.Atom (Datum.Int v); _ } ] -> v
              | _ -> bad "bad version field"
            in
            if version <> format_version then Error (Version_skew version)
            else
              let str_field name =
                match (field_exn name).Datum.d with
                | Datum.List [ _; v ] -> expect_str name v
                | _ -> bad "bad field %s" name
              in
              let requires =
                match (field_exn "requires").Datum.d with
                | Datum.List (_ :: rs) -> List.map parse_require rs
                | _ -> bad "bad requires field"
              in
              let exports =
                match (field_exn "exports").Datum.d with
                | Datum.List (_ :: es) -> List.map (expect_str "export") es
                | _ -> bad "bad exports field"
              in
              let links =
                match (field_exn "links").Datum.d with
                | Datum.List (_ :: ls) ->
                    List.map
                      (fun (l : Datum.annot) ->
                        match l.Datum.d with
                        | Datum.List [ n; k ] ->
                            (expect_str "link name" n, expect_str "link module" k)
                        | _ -> bad "bad link entry")
                      ls
                | _ -> bad "bad links field"
              in
              let core_forms =
                match body.Datum.d with
                | Datum.List (h :: forms) when Datum.is_sym "body" h -> forms
                | _ -> bad "missing body section"
              in
              Ok
                {
                  version;
                  mod_name = str_field "module";
                  lang = str_field "lang";
                  source_digest = str_field "source-digest";
                  requires;
                  exports;
                  links;
                  core_forms;
                  bytecode;
                })
        | _ -> bad "expected a header and a body (truncated?)"
      with Bad m -> Error (Corrupt m))
