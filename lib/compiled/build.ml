(** The domain-parallel build driver: compile a set of root files — and
    everything they require — onto a fixed pool of worker domains, writing
    artifacts through the shared {!Store}.

    Pipeline shape:

    + {e graph}: a textual, pre-expansion require scan ({!scan_graph})
      reads each file and extracts its [(require "path")] edges,
      canonicalized exactly as the resolver would, following them to a
      transitive closure.  The scan is {e advisory}: an edge the scan
      misses (e.g. a macro-generated require) costs parallelism, never
      correctness — the worker that hits it compiles the module inline
      under the store's per-key advisory lock, exactly as the serial
      resolver would.
    + {e schedule}: modules are topologically scheduled by in-degree
      countdown onto [jobs] domains; no task starts before all its
      scanned requires are done, so workers find their dependencies'
      artifacts warm and replay them ([module.cache_hits]) instead of
      recompiling.
    + {e contain}: each task runs under its own {!Reporter}; a failing
      task records its diagnostics and {e poisons} its dependents (they
      are skipped with a note rather than racing into the same failure).
    + {e merge}: each worker accumulates into its own metrics collector
      (plus per-domain resolver-cache counters, flushed before join) and
      the driver folds them into the ambient collector on join — so
      [--profile] over a parallel build reports pool-wide totals.

    Determinism: artifacts serialize names and datums, never binding uids
    or scope ids, so a [-j N] build writes byte-identical artifacts to a
    [-j 1] build (test: [test_compiled.ml], "parallel determinism").

    [jobs = 1] never spawns and never takes a lock: tasks run serially on
    the calling domain in topological order, which is exactly the serial
    resolver's behavior. *)

module Modsys = Liblang_modules.Modsys
module Binding = Liblang_stx.Binding
module Reader = Liblang_reader.Reader
module Datum = Liblang_reader.Datum
module Diagnostic = Liblang_diagnostics.Diagnostic
module Reporter = Liblang_diagnostics.Reporter
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module Parallel = Liblang_parallel.Parallel

(* -- the require graph ------------------------------------------------------- *)

type node = {
  key : string;  (** canonical absolute path *)
  deps : string list;  (** scanned require edges (canonical keys) *)
}

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The string-path require specs of one top-level datum, if it is a
   (require ...) form: (require "a.scm" (only-in "b.scm" f) c) contributes
   ["a.scm"; "b.scm"] — identifier requires are registry modules, not
   files. *)
let require_paths_of_datum (d : Datum.annot) : string list =
  match d.Datum.d with
  | Datum.List (hd :: specs) when Datum.is_sym "require" hd ->
      List.filter_map
        (fun (spec : Datum.annot) ->
          match spec.Datum.d with
          | Datum.Atom (Datum.Str p) -> Some p
          | Datum.List (_ :: m :: _) -> (
              match m.Datum.d with Datum.Atom (Datum.Str p) -> Some p | _ -> None)
          | _ -> None)
        specs
  | _ -> []

(* Scan one file's top-level require edges; unreadable or unparsable files
   scan as edge-free (the compiling worker surfaces the real diagnostic). *)
let scan_file (key : string) : string list =
  match slurp key with
  | exception Sys_error _ -> []
  | source -> (
      let body =
        match Reader.split_lang_line source with Some (_, rest) -> rest | None -> source
      in
      match Reader.read_all ~file:key body with
      | exception _ -> []
      | datums ->
          (* canonicalize each edge relative to this file's directory,
             exactly as the resolver will during compilation *)
          Resolver.with_dir (Filename.dirname key) @@ fun () ->
          List.concat_map require_paths_of_datum datums
          |> List.map Resolver.module_key
          |> List.sort_uniq String.compare)

(** The transitive require graph reachable from [roots] (canonical keys,
    deterministic order: depth-first from the roots). *)
let scan_graph (roots : string list) : node list =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let deps = scan_file key in
      List.iter visit deps;
      acc := { key; deps } :: !acc
    end
  in
  List.iter visit (List.map Resolver.module_key roots);
  (* reversed post-order = dependencies before dependents *)
  List.rev !acc

(* -- results ------------------------------------------------------------------ *)

type outcome =
  | Built  (** compiled from source or loaded from a valid artifact *)
  | Failed of Diagnostic.t list
  | Skipped of string  (** a scanned require failed; carries its key *)

type result = {
  jobs : int;
  graph : node list;
  outcomes : (string * outcome) list;  (** in graph order *)
  graph_ms : float;
  compile_ms : float;
  tasks : int;  (** tasks actually run (scheduled, not skipped) *)
  lock_waits : int;  (** contended store/per-key lock acquisitions *)
}

let failures (r : result) : (string * Diagnostic.t list) list =
  List.filter_map
    (fun (k, o) -> match o with Failed ds -> Some (k, ds) | _ -> None)
    r.outcomes

let ok (r : result) : bool =
  List.for_all (fun (_, o) -> match o with Built -> true | _ -> false) r.outcomes

(* -- the scheduler ------------------------------------------------------------- *)

type task = {
  node : node;
  mutable unmet : int;  (** scanned requires not yet done *)
  mutable started : bool;  (** dispatched to a worker (or force-run) *)
  mutable outcome : outcome option;  (** [None] while pending/running *)
  mutable dependents : task list;
}

(* Run one task on the calling domain: acquire the module through the
   resolver (so through the store), containing failures as diagnostics. *)
let run_task ~(diagnostic_of_exn : exn -> Diagnostic.t option) (t : task) : outcome =
  let reporter = Reporter.create () in
  Atomic.incr Parallel.tasks;
  match Reporter.with_reporter reporter (fun () -> Resolver.require_key t.node.key) with
  | _m when not (Reporter.has_errors reporter) -> Built
  | _m -> Failed (Reporter.diagnostics reporter)
  | exception Diagnostic.Failed ds -> Failed (Reporter.diagnostics reporter @ ds)
  | exception e ->
      let d =
        match diagnostic_of_exn e with
        | Some d -> d
        | None ->
            Diagnostic.error ~phase:Diagnostic.Internal
              ("uncaught exception: " ^ Printexc.to_string e)
      in
      Failed (Reporter.diagnostics reporter @ [ d ])

(* Mark [t] finished, release dependents whose last dependency this was
   (or poison them if [t] failed), and return the newly ready tasks.
   Caller holds the scheduler lock (or runs single-domain). *)
let finish (t : task) (o : outcome) : task list =
  t.outcome <- Some o;
  let poison = match o with Built -> false | _ -> true in
  List.filter_map
    (fun (d : task) ->
      match d.outcome with
      | Some _ -> None
      | None ->
          if poison then begin
            d.outcome <- Some (Skipped t.node.key);
            (* transitively poison: a skipped task releases nobody, so
               poison its dependents here as well *)
            Some d
          end
          else begin
            d.unmet <- d.unmet - 1;
            if d.unmet = 0 then Some d else None
          end)
    t.dependents

let link_tasks (graph : node list) : task list =
  let by_key : (string, task) Hashtbl.t = Hashtbl.create 64 in
  let tasks =
    List.map
      (fun node ->
        let t = { node; unmet = 0; started = false; outcome = None; dependents = [] } in
        Hashtbl.replace by_key node.key t;
        t)
      graph
  in
  List.iter
    (fun t ->
      List.iter
        (fun dep ->
          match Hashtbl.find_opt by_key dep with
          | Some d when d != t ->
              d.dependents <- t :: d.dependents;
              t.unmet <- t.unmet + 1
          | _ -> ())
        t.node.deps)
    tasks;
  tasks

(* Serial fallback: topological order on one domain, no locks, no spawns —
   bit-for-bit the serial resolver's behavior.  A cycle in the scanned
   graph leaves tasks with positive in-degree; they are force-run so the
   resolver reports the cycle as a proper diagnostic. *)
let run_serial ~diagnostic_of_exn (tasks : task list) : unit =
  let ready = Queue.create () in
  List.iter (fun t -> if t.unmet = 0 then Queue.add t ready) tasks;
  let rec drain () =
    while not (Queue.is_empty ready) do
      let t = Queue.pop ready in
      match t.outcome with
      | Some (Skipped _ as o) ->
          (* poisoned while pending: propagate *)
          List.iter (fun d -> Queue.add d ready) (finish t o)
      | Some _ -> ()
      | None ->
          if not t.started then begin
            t.started <- true;
            let o = run_task ~diagnostic_of_exn t in
            List.iter (fun d -> Queue.add d ready) (finish t o)
          end
    done;
    match List.find_opt (fun t -> (not t.started) && t.outcome = None) tasks with
    | Some t ->
        Queue.add t ready;
        drain ()
    | None -> ()
  in
  drain ()

(* Parallel scheduler: a work queue under a mutex/condition, in-degree
   countdown, [jobs] worker domains.  Worker metrics collectors are merged
   into [merge_into] (the spawning domain's ambient collector) on join. *)
let run_parallel ~diagnostic_of_exn ~(jobs : int) (tasks : task list) : unit =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let ready : task Queue.t = Queue.create () in
  let remaining = ref (List.length tasks) in
  let running = ref 0 in
  List.iter (fun t -> if t.unmet = 0 then Queue.add t ready) tasks;
  let merge_into = Metrics.current () in
  let worker_results : Metrics.t option array = Array.make jobs None in
  let worker (slot : int) () =
    (* OCaml 5 minor collections are stop-the-world across every running
       domain, so [jobs] allocation-heavy expanders on default-size
       nurseries spend most of their time in global sync pauses (measured
       ~4x per-module CPU inflation at -j4).  A larger per-worker minor
       heap amortizes the sync points.  [Gc.set] is per-domain and does
       not propagate through [Domain.spawn], so each worker sets its
       own. *)
    let g = Gc.get () in
    if g.Gc.minor_heap_size < 4 * 1024 * 1024 then
      Gc.set { g with Gc.minor_heap_size = 4 * 1024 * 1024 };
    (* each worker collects into its own collector (merged on join); no
       collector at all when the build itself is unobserved *)
    let collector = Option.map (fun _ -> Metrics.create ()) merge_into in
    Array.set worker_results slot collector;
    Metrics.with_opt collector @@ fun () ->
    Fun.protect
      ~finally:(fun () ->
        (* flush this domain's resolver-cache counters (plain per-domain
           ints, zero at domain birth) into this worker's collector *)
        match collector with
        | None -> ()
        | Some _ ->
            Metrics.countn "expand.resolve_hits" (Binding.resolve_hits ());
            Metrics.countn "expand.resolve_misses" (Binding.resolve_misses ()))
    @@ fun () ->
    let rec loop () =
      Mutex.lock mu;
      (* under [mu]: the next dispatchable task, waiting while others run.
         If the queue is dry with nothing running but tasks remain, the
         scanned graph has a cycle — force one pending task so the
         resolver reports the cycle as a diagnostic instead of the pool
         deadlocking. *)
      let rec next () =
        if !remaining = 0 then None
        else
          match Queue.take_opt ready with
          | Some t -> Some t
          | None ->
              if !running = 0 then
                List.find_opt (fun t -> (not t.started) && t.outcome = None) tasks
              else begin
                Condition.wait cond mu;
                next ()
              end
      in
      match next () with
      | None ->
          Mutex.unlock mu;
          Condition.broadcast cond
      | Some t -> (
          match t.outcome with
          | Some (Skipped _ as o) ->
              (* poisoned while queued: propagate without running *)
              let released = finish t o in
              decr remaining;
              List.iter (fun d -> Queue.add d ready) released;
              Condition.broadcast cond;
              Mutex.unlock mu;
              loop ()
          | Some _ ->
              Mutex.unlock mu;
              loop ()
          | None when t.started ->
              Mutex.unlock mu;
              loop ()
          | None ->
              t.started <- true;
              incr running;
              Mutex.unlock mu;
              let o = run_task ~diagnostic_of_exn t in
              Mutex.lock mu;
              decr running;
              let released = finish t o in
              decr remaining;
              List.iter (fun d -> Queue.add d ready) released;
              Condition.broadcast cond;
              Mutex.unlock mu;
              loop ())
    in
    loop ()
  in
  Parallel.with_active (fun () ->
      let domains = Array.init jobs (fun slot -> Domain.spawn (worker slot)) in
      Array.iter Domain.join domains);
  (* merge-on-join: fold every worker's collector into the ambient one *)
  match merge_into with
  | None -> ()
  | Some into -> Array.iter (Option.iter (fun c -> Metrics.merge ~into c)) worker_results

(** Build [roots] (and everything they require) with [jobs] domains.
    Requires an active {!Store} for [jobs > 1] to be useful (workers
    communicate exclusively through artifacts), but does not enforce one.
    [diagnostic_of_exn] translates known pipeline exceptions to located
    diagnostics (the CLI passes the pipeline's translator). *)
let build ?(diagnostic_of_exn = fun _ -> None) ~(jobs : int) (roots : string list) : result =
  let jobs = max 1 jobs in
  let t0 = Metrics.now () in
  let graph = Trace.span "build-graph" (fun () -> scan_graph roots) in
  let t1 = Metrics.now () in
  let tasks = link_tasks graph in
  let jobs = min jobs (max 1 (List.length tasks)) in
  let tasks0 = Atomic.get Parallel.tasks and waits0 = Atomic.get Parallel.lock_waits in
  (Trace.span "build-compile" @@ fun () ->
   Metrics.time "phase.build" @@ fun () ->
   if jobs = 1 then run_serial ~diagnostic_of_exn tasks
   else run_parallel ~diagnostic_of_exn ~jobs tasks);
  let tasks_run = Atomic.get Parallel.tasks - tasks0 in
  let lock_waits = Atomic.get Parallel.lock_waits - waits0 in
  Metrics.countn "par.tasks" tasks_run;
  Metrics.countn "par.lock_waits" lock_waits;
  Metrics.countn "par.jobs" jobs;
  let t2 = Metrics.now () in
  {
    jobs;
    graph;
    tasks = tasks_run;
    lock_waits;
    outcomes =
      List.map
        (fun t ->
          ( t.node.key,
            match t.outcome with
            | Some o -> o
            | None -> Skipped "(scheduler: never released)" ))
        tasks;
    graph_ms = 1000.0 *. (t1 -. t0);
    compile_ms = 1000.0 *. (t2 -. t1);
  }
