(** The domain-parallel build driver: compile a set of root files — and
    everything they require — onto a fixed pool of worker domains, writing
    artifacts through the shared {!Store}.

    Pipeline shape:

    + {e graph}: a textual, pre-expansion require scan ({!scan_graph})
      reads each file and extracts its [(require "path")] edges,
      canonicalized exactly as the resolver would, following them to a
      transitive closure.  The scan is {e advisory}: an edge the scan
      misses (e.g. a macro-generated require) costs parallelism, never
      correctness — the worker that hits it compiles the module inline
      under the store's per-key advisory lock, exactly as the serial
      resolver would.
    + {e schedule}: modules are topologically scheduled by in-degree
      countdown onto [jobs] domains; no task starts before all its
      scanned requires are done, so workers find their dependencies'
      artifacts warm and replay them ([module.cache_hits]) instead of
      recompiling.
    + {e contain}: each task runs under its own {!Reporter}; a failing
      task records its diagnostics and {e poisons} its dependents (they
      are skipped with a note rather than racing into the same failure).
    + {e merge}: each worker accumulates into its own metrics collector
      (plus per-domain resolver-cache counters, flushed before join) and
      the driver folds them into the ambient collector on join — so
      [--profile] over a parallel build reports pool-wide totals.

    Determinism: artifacts serialize names and datums, never binding uids
    or scope ids, so a [-j N] build writes byte-identical artifacts to a
    [-j 1] build (test: [test_compiled.ml], "parallel determinism").

    [jobs = 1] never spawns and never takes a lock: tasks run serially on
    the calling domain in topological order, which is exactly the serial
    resolver's behavior. *)

module Modsys = Liblang_modules.Modsys
module Binding = Liblang_stx.Binding
module Reader = Liblang_reader.Reader
module Datum = Liblang_reader.Datum
module Diagnostic = Liblang_diagnostics.Diagnostic
module Reporter = Liblang_diagnostics.Reporter
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module Parallel = Liblang_parallel.Parallel
module Fault = Liblang_fault.Fault

(* -- the require graph ------------------------------------------------------- *)

type node = {
  key : string;  (** canonical absolute path *)
  deps : string list;  (** scanned require edges (canonical keys) *)
}

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The string-path require specs of one top-level datum, if it is a
   (require ...) form: (require "a.scm" (only-in "b.scm" f) c) contributes
   ["a.scm"; "b.scm"] — identifier requires are registry modules, not
   files. *)
let require_paths_of_datum (d : Datum.annot) : string list =
  match d.Datum.d with
  | Datum.List (hd :: specs) when Datum.is_sym "require" hd ->
      List.filter_map
        (fun (spec : Datum.annot) ->
          match spec.Datum.d with
          | Datum.Atom (Datum.Str p) -> Some p
          | Datum.List (_ :: m :: _) -> (
              match m.Datum.d with Datum.Atom (Datum.Str p) -> Some p | _ -> None)
          | _ -> None)
        specs
  | _ -> []

(* Scan one file's top-level require edges; unreadable or unparsable files
   scan as edge-free (the compiling worker surfaces the real diagnostic) —
   but observably so: a skipped scan costs parallelism, and the
   [build-scan-skipped] trace event is how a -v run sees where. *)
let scan_skipped key err =
  Trace.event "build-scan-skipped" [ ("file", key); ("error", err) ];
  []

let scan_file (key : string) : string list =
  match slurp key with
  | exception Sys_error m -> scan_skipped key m
  | source -> (
      let body =
        match Reader.split_lang_line source with Some (_, rest) -> rest | None -> source
      in
      match Reader.read_all ~file:key body with
      | exception e -> scan_skipped key (Printexc.to_string e)
      | datums ->
          (* canonicalize each edge relative to this file's directory,
             exactly as the resolver will during compilation *)
          Resolver.with_dir (Filename.dirname key) @@ fun () ->
          List.concat_map require_paths_of_datum datums
          |> List.map Resolver.module_key
          |> List.sort_uniq String.compare)

(** The transitive require graph reachable from [roots] (canonical keys,
    deterministic order: depth-first from the roots). *)
let scan_graph (roots : string list) : node list =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let deps = scan_file key in
      List.iter visit deps;
      acc := { key; deps } :: !acc
    end
  in
  List.iter visit (List.map Resolver.module_key roots);
  (* reversed post-order = dependencies before dependents *)
  List.rev !acc

(* -- results ------------------------------------------------------------------ *)

type outcome =
  | Built  (** compiled from source or loaded from a valid artifact *)
  | Failed of Diagnostic.t list
  | Skipped of string  (** a scanned require failed; carries its key *)

type result = {
  jobs : int;
  graph : node list;
  outcomes : (string * outcome) list;  (** in graph order *)
  graph_ms : float;
  compile_ms : float;
  tasks : int;  (** tasks actually run (scheduled, not skipped) *)
  lock_waits : int;  (** contended store/per-key lock acquisitions *)
  retries : int;  (** task attempts re-run after transient failures *)
  timeouts : int;  (** tasks killed by their wall-clock deadline *)
  worker_deaths : int;  (** worker domains that died outside a task *)
}

let failures (r : result) : (string * Diagnostic.t list) list =
  List.filter_map
    (fun (k, o) -> match o with Failed ds -> Some (k, ds) | _ -> None)
    r.outcomes

let ok (r : result) : bool =
  List.for_all (fun (_, o) -> match o with Built -> true | _ -> false) r.outcomes

(* -- the scheduler ------------------------------------------------------------- *)

type task = {
  node : node;
  mutable unmet : int;  (** scanned requires not yet done *)
  mutable started : bool;  (** dispatched to a worker (or force-run) *)
  mutable outcome : outcome option;  (** [None] while pending/running *)
  mutable dependents : task list;
}

(* Transient failure classes: worth a bounded retry, because a second
   attempt can genuinely succeed (an injected fault's arrival index moves
   on; an I/O error may be a racing sibling).  Anything else — diagnostics,
   timeouts, real compile errors — is deterministic and retrying would
   just repeat it. *)
let transient_exn = function
  | Fault.Injected _ | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

(* One attempt at a task on the calling domain: acquire the module through
   the resolver (so through the store) under a wall-clock [deadline],
   containing failures as diagnostics.  Returns the outcome plus whether a
   failure was transient (retryable). *)
let run_task_once ~(diagnostic_of_exn : exn -> Diagnostic.t option) ~(deadline : float)
    (t : task) : outcome * bool =
  let reporter = Reporter.create () in
  match
    Reporter.with_reporter reporter (fun () ->
        Fault.with_deadline ~seconds:deadline (fun () ->
            Fault.check "build.task";
            Resolver.require_key t.node.key))
  with
  | _m when not (Reporter.has_errors reporter) -> (Built, false)
  | _m -> (Failed (Reporter.diagnostics reporter), false)
  | exception Diagnostic.Failed ds -> (Failed (Reporter.diagnostics reporter @ ds), false)
  | exception Fault.Timeout budget ->
      Atomic.incr Parallel.timeouts;
      let d =
        Diagnostic.error ~phase:Diagnostic.Module
          (Printf.sprintf "task timed out: %s exceeded its %gs deadline" t.node.key budget)
      in
      (Failed (Reporter.diagnostics reporter @ [ d ]), false)
  | exception e ->
      let d =
        match diagnostic_of_exn e with
        | Some d -> d
        | None ->
            Diagnostic.error ~phase:Diagnostic.Internal
              ("uncaught exception: " ^ Printexc.to_string e)
      in
      (Failed (Reporter.diagnostics reporter @ [ d ]), transient_exn e)

(* 1 try + 2 retries; backoff 2ms, 8ms (capped at 50ms) — enough to let a
   racing writer finish, short enough that a deterministically failing
   task still fails fast. *)
let max_task_attempts = 3

let run_task ~diagnostic_of_exn ~deadline (t : task) : outcome =
  Atomic.incr Parallel.tasks;
  let rec attempt n =
    let o, transient = run_task_once ~diagnostic_of_exn ~deadline t in
    if transient && n + 1 < max_task_attempts then begin
      Atomic.incr Parallel.retries;
      Unix.sleepf (Float.min 0.05 (0.002 *. (4.0 ** float_of_int n)));
      attempt (n + 1)
    end
    else o
  in
  attempt 0

(* Mark [t] finished, release dependents whose last dependency this was
   (or poison them if [t] failed), and return the newly ready tasks.
   Caller holds the scheduler lock (or runs single-domain). *)
let finish (t : task) (o : outcome) : task list =
  t.outcome <- Some o;
  let poison = match o with Built -> false | _ -> true in
  List.filter_map
    (fun (d : task) ->
      match d.outcome with
      | Some _ -> None
      | None ->
          if poison then begin
            d.outcome <- Some (Skipped t.node.key);
            (* transitively poison: a skipped task releases nobody, so
               poison its dependents here as well *)
            Some d
          end
          else begin
            d.unmet <- d.unmet - 1;
            if d.unmet = 0 then Some d else None
          end)
    t.dependents

let link_tasks (graph : node list) : task list =
  let by_key : (string, task) Hashtbl.t = Hashtbl.create 64 in
  let tasks =
    List.map
      (fun node ->
        let t = { node; unmet = 0; started = false; outcome = None; dependents = [] } in
        Hashtbl.replace by_key node.key t;
        t)
      graph
  in
  List.iter
    (fun t ->
      List.iter
        (fun dep ->
          match Hashtbl.find_opt by_key dep with
          | Some d when d != t ->
              d.dependents <- t :: d.dependents;
              t.unmet <- t.unmet + 1
          | _ -> ())
        t.node.deps)
    tasks;
  tasks

(* Serial fallback: topological order on one domain, no locks, no spawns —
   bit-for-bit the serial resolver's behavior.  A cycle in the scanned
   graph leaves tasks with positive in-degree; they are force-run so the
   resolver reports the cycle as a proper diagnostic. *)
let run_serial ~diagnostic_of_exn ~deadline (tasks : task list) : unit =
  let ready = Queue.create () in
  List.iter (fun t -> if t.unmet = 0 then Queue.add t ready) tasks;
  let rec drain () =
    while not (Queue.is_empty ready) do
      let t = Queue.pop ready in
      match t.outcome with
      | Some (Skipped _ as o) ->
          (* poisoned while pending: propagate *)
          List.iter (fun d -> Queue.add d ready) (finish t o)
      | Some _ -> ()
      | None ->
          if not t.started then begin
            t.started <- true;
            let o = run_task ~diagnostic_of_exn ~deadline t in
            List.iter (fun d -> Queue.add d ready) (finish t o)
          end
    done;
    match List.find_opt (fun t -> (not t.started) && t.outcome = None) tasks with
    | Some t ->
        Queue.add t ready;
        drain ()
    | None -> ()
  in
  drain ()

(* Parallel scheduler: a work queue under a mutex/condition, in-degree
   countdown, [jobs] worker domains.  Worker metrics collectors are merged
   into [merge_into] (the spawning domain's ambient collector) on join.

   Supervision: a worker domain dying must never hang the join.  The three
   death windows and why each is safe:
   - at spawn (the [build.spawn] fault site, or a real startup failure):
     the dead worker holds no task, so [remaining] still drains through
     the surviving workers; waiters only block while [running > 0], and
     whichever worker is running will broadcast when it finishes;
   - mid-task: the defensive wrapper below accounts for the task (its
     dependents are poisoned, [running]/[remaining] are restored, waiters
     are broadcast) before letting the domain die;
   - all workers dead: every [Domain.join] returns (with an exception),
     and the supervisor marks whatever never ran as [Failed] so the
     caller reports real errors instead of silence.
   Returns the number of worker deaths observed at join. *)
let run_parallel ~diagnostic_of_exn ~deadline ~(jobs : int) (tasks : task list) : int =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let ready : task Queue.t = Queue.create () in
  let remaining = ref (List.length tasks) in
  let running = ref 0 in
  List.iter (fun t -> if t.unmet = 0 then Queue.add t ready) tasks;
  let merge_into = Metrics.current () in
  let worker_results : Metrics.t option array = Array.make jobs None in
  let worker (slot : int) () =
    (* the [build.spawn] fault site: an injected error here kills the
       domain before it ever takes a task — the supervision case the
       chaos gate exercises hardest *)
    Fault.check "build.spawn";
    Parallel.tune_worker_gc ();
    (* each worker collects into its own collector (merged on join); no
       collector at all when the build itself is unobserved *)
    let collector = Option.map (fun _ -> Metrics.create ()) merge_into in
    Array.set worker_results slot collector;
    Metrics.with_opt collector @@ fun () ->
    Fun.protect
      ~finally:(fun () ->
        (* flush this domain's resolver-cache counters (plain per-domain
           ints, zero at domain birth) into this worker's collector *)
        match collector with
        | None -> ()
        | Some _ ->
            Metrics.countn "expand.resolve_hits" (Binding.resolve_hits ());
            Metrics.countn "expand.resolve_misses" (Binding.resolve_misses ()))
    @@ fun () ->
    let rec loop () =
      Mutex.lock mu;
      (* under [mu]: the next dispatchable task, waiting while others run.
         If the queue is dry with nothing running but tasks remain, the
         scanned graph has a cycle — force one pending task so the
         resolver reports the cycle as a diagnostic instead of the pool
         deadlocking. *)
      let rec next () =
        if !remaining = 0 then None
        else
          match Queue.take_opt ready with
          | Some t -> Some t
          | None ->
              if !running = 0 then
                List.find_opt (fun t -> (not t.started) && t.outcome = None) tasks
              else begin
                Condition.wait cond mu;
                next ()
              end
      in
      match next () with
      | None ->
          Mutex.unlock mu;
          Condition.broadcast cond
      | Some t -> (
          match t.outcome with
          | Some (Skipped _ as o) ->
              (* poisoned while queued: propagate without running *)
              let released = finish t o in
              decr remaining;
              List.iter (fun d -> Queue.add d ready) released;
              Condition.broadcast cond;
              Mutex.unlock mu;
              loop ()
          | Some _ ->
              Mutex.unlock mu;
              loop ()
          | None when t.started ->
              Mutex.unlock mu;
              loop ()
          | None ->
              t.started <- true;
              incr running;
              Mutex.unlock mu;
              let o =
                match run_task ~diagnostic_of_exn ~deadline t with
                | o -> o
                | exception e ->
                    (* a worker dying mid-task ([run_task] contains task
                       failures, so this is the scheduler's own margin:
                       stack overflow, OOM, an async exception): account
                       for the task and wake the pool, then let the
                       domain die — join observes the death *)
                    Mutex.lock mu;
                    decr running;
                    let d =
                      Diagnostic.error ~phase:Diagnostic.Internal
                        (Printf.sprintf "worker domain died building %s: %s" t.node.key
                           (Printexc.to_string e))
                    in
                    let released = finish t (Failed [ d ]) in
                    decr remaining;
                    List.iter (fun x -> Queue.add x ready) released;
                    Condition.broadcast cond;
                    Mutex.unlock mu;
                    raise e
              in
              Mutex.lock mu;
              decr running;
              let released = finish t o in
              decr remaining;
              List.iter (fun d -> Queue.add d ready) released;
              Condition.broadcast cond;
              Mutex.unlock mu;
              loop ())
    in
    loop ()
  in
  let deaths = ref 0 in
  let death_msg = ref "" in
  Parallel.with_active (fun () ->
      let domains = Array.init jobs (fun slot -> Domain.spawn (worker slot)) in
      Array.iter
        (fun d ->
          match Domain.join d with
          | () -> ()
          | exception e ->
              incr deaths;
              death_msg := Printexc.to_string e)
        domains);
  (* every domain is joined: no locks needed from here on.  If workers
     died, whatever they stranded must fail loudly, not read as skipped. *)
  if !deaths > 0 then
    List.iter
      (fun t ->
        if t.outcome = None then
          t.outcome <-
            Some
              (Failed
                 [
                   (* Module phase, not Internal: a worker death under
                      fault injection is a contained build failure (exit
                      1), not a platform bug (exit 2) *)
                   Diagnostic.error ~phase:Diagnostic.Module
                     (Printf.sprintf "not built: a worker domain died (%s)" !death_msg);
                 ]))
      tasks;
  (* merge-on-join: fold every worker's collector into the ambient one *)
  (match merge_into with
  | None -> ()
  | Some into -> Array.iter (Option.iter (fun c -> Metrics.merge ~into c)) worker_results);
  !deaths

(** Build [roots] (and everything they require) with [jobs] domains.
    Requires an active {!Store} for [jobs > 1] to be useful (workers
    communicate exclusively through artifacts), but does not enforce one.
    [diagnostic_of_exn] translates known pipeline exceptions to located
    diagnostics (the CLI passes the pipeline's translator).

    [task_timeout] bounds each task's wall clock (cooperatively — checked
    at store I/O and fault sites; the interpreter's fuel bounds pure
    compute): an overrun surfaces as a [Failed] timeout diagnostic, never
    a wedged pool.  An installed fault plan's [deadline=] field overrides
    it. *)
let build ?(diagnostic_of_exn = fun _ -> None) ?(task_timeout = 300.0) ~(jobs : int)
    (roots : string list) : result =
  let jobs = max 1 jobs in
  let deadline =
    match Fault.deadline_override () with Some s -> s | None -> task_timeout
  in
  let t0 = Metrics.now () in
  let graph = Trace.span "build-graph" (fun () -> scan_graph roots) in
  let t1 = Metrics.now () in
  let tasks = link_tasks graph in
  let jobs = min jobs (max 1 (List.length tasks)) in
  let tasks0 = Atomic.get Parallel.tasks and waits0 = Atomic.get Parallel.lock_waits in
  let retries0 = Atomic.get Parallel.retries and timeouts0 = Atomic.get Parallel.timeouts in
  let worker_deaths =
    Trace.span "build-compile" @@ fun () ->
    Metrics.time "phase.build" @@ fun () ->
    if jobs = 1 then begin
      run_serial ~diagnostic_of_exn ~deadline tasks;
      0
    end
    else run_parallel ~diagnostic_of_exn ~deadline ~jobs tasks
  in
  let tasks_run = Atomic.get Parallel.tasks - tasks0 in
  let lock_waits = Atomic.get Parallel.lock_waits - waits0 in
  let retries = Atomic.get Parallel.retries - retries0 in
  let timeouts = Atomic.get Parallel.timeouts - timeouts0 in
  Metrics.countn "par.tasks" tasks_run;
  Metrics.countn "par.lock_waits" lock_waits;
  Metrics.countn "par.jobs" jobs;
  (* only when nonzero: a healthy no-fault profile stays free of
     robustness counters *)
  if retries > 0 then Metrics.countn "par.retries" retries;
  if timeouts > 0 then Metrics.countn "par.timeouts" timeouts;
  if worker_deaths > 0 then Metrics.countn "par.worker_deaths" worker_deaths;
  let t2 = Metrics.now () in
  {
    jobs;
    graph;
    tasks = tasks_run;
    lock_waits;
    retries;
    timeouts;
    worker_deaths;
    outcomes =
      List.map
        (fun t ->
          ( t.node.key,
            match t.outcome with
            | Some o -> o
            | None -> Skipped "(scheduler: never released)" ))
        tasks;
    graph_ms = 1000.0 *. (t1 -. t0);
    compile_ms = 1000.0 *. (t2 -. t1);
  }
