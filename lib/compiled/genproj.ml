(** Synthetic project generator for the parallel-build benchmarks and
    tests ([liblang gen-modules]): a family of require graphs over
    macro-heavy modules, with a closed-form checksum.

    Three shapes, all rooted at [main.scm]:

    - {e wide}: [main] requires [m1 .. m(n-1)], which are independent —
      the embarrassingly parallel case (speedup bounded by jobs);
    - {e diamond}: [main] requires every mid module, each mid requires
      one shared base — the common-dependency case (the base serializes
      the start, then the mids fan out);
    - {e chain}: [m_i] requires [m_(i+1)] — the fully serial case
      (parallelism can win nothing; the scheduler must not lose either).

    Each module carries the same macro-tower shape as the bench suite's
    expansion stress family (a [2^depth] [syntax-rules] tower plus an
    [nvars]-deep binder nest, [copies] times).  The defaults are
    deliberately tower-heavy and nest-light: expansion work scales with
    [2^depth] while the {e expanded-code size} — and so the cost of
    loading the module back from its artifact — scales with [nvars].
    Keeping the output small makes module compilation dominated by
    expansion, the phase the parallel driver distributes, rather than by
    artifact loads (which a worker performs serially for every require
    some other worker compiled).

    Every module [i] provides one value [v<i>] = its own tower value plus
    the sum of its requires' values; [main] displays its value, so one
    number checks the whole graph.  {!generate} returns the closed form. *)

(* The per-module macro tower (same shape as the bench stress family):
   tower value = copies * (2^depth + nvars). *)
let tower_body ~depth ~nvars ~copies (buf : Buffer.t) : unit =
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  add "(define-syntax-rule (inc x) (+ x 1))";
  add "(define-syntax-rule (t0 x) (inc x))";
  for i = 1 to depth do
    add "(define-syntax-rule (t%d x) (t%d (t%d x)))" i (i - 1) (i - 1)
  done;
  add "(define-syntax nest";
  add "  (syntax-rules ()";
  add "    [(_ () body) body]";
  add "    [(_ (v vs ...) body) (let ([v 1]) (nest (vs ...) body))]))";
  let vars = String.concat " " (List.init nvars (Printf.sprintf "v%d")) in
  for c = 0 to copies - 1 do
    add "(define (go%d) (nest (%s) (+ (t%d 0) %s)))" c vars depth vars
  done;
  let calls = String.concat " " (List.init copies (Printf.sprintf "(go%d)")) in
  add "(define tower (+ %s))" calls

type shape = Wide | Diamond | Chain

let shape_of_string = function
  | "wide" -> Some Wide
  | "diamond" -> Some Diamond
  | "chain" -> Some Chain
  | _ -> None

let shape_to_string = function Wide -> "wide" | Diamond -> "diamond" | Chain -> "chain"

(* module index -> list of required module indices *)
let deps_of ~(shape : shape) ~(n : int) (i : int) : int list =
  match shape with
  | Wide -> if i = 0 then List.init (n - 1) (fun j -> j + 1) else []
  | Diamond ->
      if i = 0 then List.init (max 0 (n - 2)) (fun j -> j + 1)
      else if i < n - 1 then [ n - 1 ]
      else []
  | Chain -> if i < n - 1 then [ i + 1 ] else []

let file_of (i : int) : string = if i = 0 then "main.scm" else Printf.sprintf "m%d.scm" i

let module_source ~shape ~n ~depth ~nvars ~copies (i : int) : string =
  let buf = Buffer.create 4096 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  add "#lang racket";
  let deps = deps_of ~shape ~n i in
  List.iter (fun j -> add "(require \"%s\")" (file_of j)) deps;
  if i > 0 then add "(provide v%d)" i;
  tower_body ~depth ~nvars ~copies buf;
  let dep_vals = String.concat " " (List.map (Printf.sprintf "v%d") deps) in
  add "(define v%d (+ tower %s))" i dep_vals;
  if i = 0 then add "(display v0)";
  Buffer.contents buf

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)

(** Generate an [n]-module project of [shape] into [dir] (created if
    needed).  Returns [(root_path, checksum)] where [checksum] is the
    number [main.scm] displays when the graph is compiled and
    instantiated correctly. *)
let generate ~(dir : string) ~(shape : shape) ~(n : int) ?(depth = 10) ?(nvars = 16)
    ?(copies = 2) () : string * int =
  if n < 1 then invalid_arg "Genproj.generate: n must be >= 1";
  (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  for i = 0 to n - 1 do
    write_file
      (Filename.concat dir (file_of i))
      (module_source ~shape ~n ~depth ~nvars ~copies i)
  done;
  (* the closed form: tower = copies * (2^depth + nvars); v_i = tower +
     sum of requires' v_j (requires point at strictly larger indices, so
     one reverse pass suffices) *)
  let tower = copies * ((1 lsl depth) + nvars) in
  let vals = Array.make n 0 in
  for i = n - 1 downto 0 do
    vals.(i) <- tower + List.fold_left (fun acc j -> acc + vals.(j)) 0 (deps_of ~shape ~n i)
  done;
  (Filename.concat dir (file_of 0), vals.(0))
