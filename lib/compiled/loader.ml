(** Reconstructing a live module from a compiled artifact — the §5 replay
    path, without re-running expansion or the typechecker.

    The artifact's body is the module's fully-expanded core forms, so
    loading is exactly the back half of {!Modsys.compile_module}: set up a
    fresh lexical context with the language's (and each require's) exports
    bound, then walk the core forms once —

    - [#%require] re-binds the required module's exports (the required
      module itself was already resolved by {!Resolver} while validating
      the artifact's transitive digests);
    - [define-values] binds each id now, but {e defers} compiling its
      right-hand side to first instantiation ({!Modsys.CLazy}): the rhs
      takes one pass through the expander (already core, so no macro work
      — but the pass re-binds local binders hygienically, which the
      textual serialization cannot preserve) and that pass is the bulk of
      load cost, while only the instantiating domain ever needs its
      result.  Compile-only consumers — importers, parallel-build workers
      replaying a dependency — skip it entirely;
    - [define-syntaxes] re-evaluates the (already fully expanded)
      transformer expression and installs the macro — this is how a typed
      module's export indirections (§6.2) come back to life;
    - [begin-for-syntax] forms are the serialized compile-time
      declarations of §5 (e.g. Typed Racket's [typed:declare-type] calls):
      each is compiled once and becomes a regenerated [ct_thunk], replayed
      by [visit] into every later compilation that requires the module.
      Closures are never read from disk — only core syntax is.

    Loading bumps [module.cache_hits] (the cache-aware sibling of
    [module.compiles]: their sum is the number of modules this session
    acquired by any means) and never [module.compiles] — that is the
    counter the warm-path acceptance test pins to zero. *)

module Stx = Liblang_stx.Stx
module Scope = Liblang_stx.Scope
module Binding = Liblang_stx.Binding
module Ast = Liblang_runtime.Ast
module Interp = Liblang_runtime.Interp
module Expander = Liblang_expander.Expander
module Compile = Liblang_expander.Compile
module Denote = Liblang_expander.Denote
module Namespace = Liblang_expander.Namespace
module Ct_store = Liblang_expander.Ct_store
module Modsys = Liblang_modules.Modsys
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module Datum = Liblang_reader.Datum
module Lower = Liblang_backend.Lower
module Vm = Liblang_backend.Vm
module Il = Liblang_backend.Il

let err = Modsys.err

(* -- bytecode priming -----------------------------------------------------

   Parse the artifact's optional [(bytecode (unboxing B) (form I CODE|interp) ...)]
   section into a body-index table.  Entirely best-effort: a malformed
   section yields an empty table and the VM lowers afresh at first
   evaluation — never an error (the integrity trailer already vouches
   for undamaged bytes; this guards shape skew). *)
type bc_entry = BCode of Datum.annot | BInterp

let parse_bytecode (bc : Datum.annot option) : bool * (int, bc_entry) Hashtbl.t =
  let table = Hashtbl.create 8 in
  match bc with
  | None -> (true, table)
  | Some bc -> (
      match bc.Datum.d with
      | Datum.List (_tag :: flag :: entries) ->
          let unboxing =
            match flag.Datum.d with
            | Datum.List [ k; { d = Datum.Atom (Datum.Bool b); _ } ]
              when Datum.is_sym "unboxing" k ->
                b
            | _ -> true
          in
          List.iter
            (fun (e : Datum.annot) ->
              match e.Datum.d with
              | Datum.List
                  [ k; { d = Datum.Atom (Datum.Int i); _ }; payload ]
                when Datum.is_sym "form" k -> (
                  match payload.Datum.d with
                  | Datum.Atom (Datum.Sym "interp") ->
                      Hashtbl.replace table i BInterp
                  | _ -> Hashtbl.replace table i (BCode payload))
              | _ -> ())
            entries;
          (unboxing, table)
      | _ -> (true, table))

(* Decode-and-prime for one deferred body form.  The [vm.load] fault
   site models bytecode deserialization failure; injected faults and
   decode errors alike degrade to lowering afresh at first eval. *)
let prime_form ~unboxing (table : (int, bc_entry) Hashtbl.t) ix (ast : Ast.t) : unit =
  match Hashtbl.find_opt table ix with
  | None -> ()
  | Some BInterp -> Liblang_backend.Vm.prime_fallback ast ~unboxing
  | Some (BCode d) -> (
      match
        Liblang_fault.Fault.check "vm.load";
        Lower.code_of_datum ast d
      with
      | code -> Vm.prime ast ~unboxing code
      | exception (Il.Decode_error _ | Liblang_fault.Fault.Injected _) ->
          Metrics.count "vm.load_failures")

let resolve_exn id =
  match Binding.resolve id with
  | Some b -> b
  | None ->
      err "%s: unbound identifier while loading compiled module (stale artifact?)"
        (Stx.sym_exn id)

(** Rebuild a {!Modsys.t} from [a]'s core forms and register it.  Every
    module [a] requires must already be declared (the resolver loads
    requires first, as part of validating transitive digests). *)
let load (a : Artifact.t) : Modsys.t =
  (* the [loader.replay] fault site: an injected error here is caught by
     the resolver's load wrapper and degrades to a recompile *)
  Liblang_fault.Fault.check "loader.replay";
  let name = a.Artifact.mod_name and lang = a.Artifact.lang in
  Modsys.check_cycle lang;
  if not (Modsys.is_declared lang) then err "#lang %s: unknown language" lang;
  Expander.reset_limits ();
  Trace.span "load-module" ~detail:name @@ fun () ->
  Metrics.time "phase.load" @@ fun () ->
  Metrics.count "module.cache_hits";
  Modsys.with_compiling name @@ fun () ->
  Ct_store.with_fresh_store (fun () ->
      let requires = ref [ lang ] in
      (* loads nest inside an enclosing compilation (a require of a cached
         file module), so save and restore its recording state *)
      let saved_requires = Modsys.current_requires () in
      Modsys.set_current_requires requires;
      let saved_name = Modsys.current_module_name () in
      Modsys.set_current_module_name name;
      Fun.protect
        ~finally:(fun () ->
          Modsys.set_current_module_name saved_name;
          Modsys.set_current_requires saved_requires)
      @@ fun () ->
      let sc = Scope.fresh () in
      let scopes = Scope.Set.singleton sc in
      let ctx = Stx.id ~scopes "module-ctx" in
      let lang_mod = Modsys.find lang in
      Modsys.visit lang_mod;
      Modsys.bind_exports ~ctx lang_mod;
      let forms = List.map (Stx.of_datum ~scopes) a.Artifact.core_forms in
      (* pass A: process requires and forward-bind every module-level
         definition, so mutually recursive right-hand sides compile (the
         expander's pass 1 did the same during the original compilation) *)
      Modsys.reset_internals name;
      List.iter
        (fun (form : Stx.t) ->
          match Stx.view form with
          | Stx.List (hd :: rest) when Stx.is_id hd -> (
              match Modsys.core_kind hd with
              | Some "#%require" -> List.iter Modsys.handle_require rest
              | Some "define-values" -> (
                  match rest with
                  | [ ids; _ ] ->
                      let ids =
                        match Stx.to_list ids with
                        | Some ids -> ids
                        | None -> err "artifact: bad define-values in %s" name
                      in
                      List.iter
                        (fun id ->
                          let b = Binding.bind id in
                          Denote.set b Denote.DVar;
                          Modsys.record_internal ~mod_name:name (Stx.sym_exn id) b)
                        ids
                  | _ -> err "artifact: bad define-values in %s" name)
              | _ -> ())
          | _ -> ())
        forms;
      (* re-link serialized references to other modules' internal
         (unexported) bindings — the names a require cannot rebind.  A
         missing target means the owner was recompiled to a different
         shape by a cache-less session: fail, and the resolver degrades
         this artifact to a recompile. *)
      List.iter
        (fun (n, owner) ->
          match Modsys.find_internal ~mod_name:owner n with
          | Some b -> Binding.add (Stx.id ~scopes n) b
          | None ->
              err "artifact: link target %s in module %s no longer exists" n owner)
        a.Artifact.links;
      let m =
        {
          Modsys.mod_name = name;
          exports = [];
          body = [];
          ct_thunks = [];
          requires = [];
          instantiated = false;
          visited_stores = [ Ct_store.store_id () ];
          builtin = false;
        }
      in
      (* pass B: process each core form.  Transformers and compile-time
         declarations are re-evaluated eagerly — importers compile against
         them — but [define-values] right-hand sides and top-level
         expressions only matter at instantiation, so their (expensive)
         re-binding pass + AST compilation is deferred behind a
         [Modsys.CLazy], re-entering this load's compile-time store and
         module name when forced.  A compile-only consumer — an importer,
         or a parallel-build worker replaying a dependency's artifact —
         therefore never pays for the body at all. *)
      let store = Ct_store.current () in
      let bc_unboxing, bc_table = parse_bytecode a.Artifact.bytecode in
      let body_ix = ref 0 in
      let next_ix () =
        let i = !body_ix in
        incr body_ix;
        i
      in
      let defer (compile : unit -> Modsys.compiled_form) : Modsys.compiled_form =
        Modsys.CLazy
          (lazy
            (Ct_store.with_store store @@ fun () ->
             let saved = Modsys.current_module_name () in
             Modsys.set_current_module_name name;
             Fun.protect
               ~finally:(fun () -> Modsys.set_current_module_name saved)
               compile))
      in
      let defer_expr (form : Stx.t) : Modsys.compiled_form =
        let ix = next_ix () in
        defer (fun () ->
            let ast = Compile.compile_expr (Expander.expand_expr form) in
            prime_form ~unboxing:bc_unboxing bc_table ix ast;
            Modsys.CExpr ast)
      in
      let load_form (form : Stx.t) =
        match Stx.view form with
        | Stx.List (hd :: rest) when Stx.is_id hd -> (
            match Modsys.core_kind hd with
            | Some "define-values" -> (
                match rest with
                | [ ids; rhs ] ->
                    let ids = Option.get (Stx.to_list ids) in
                    let globals =
                      List.map (fun id -> Namespace.global_of (resolve_exn id)) ids
                    in
                    let ix = next_ix () in
                    let form =
                      defer (fun () ->
                          let ast = Compile.compile_expr (Expander.expand_expr rhs) in
                          (match (globals, ast) with
                          | [ g ], Ast.Lambda l when l.Ast.l_name = "" ->
                              l.Ast.l_name <- g.Ast.g_name
                          | _ -> ());
                          prime_form ~unboxing:bc_unboxing bc_table ix ast;
                          Modsys.CDef (globals, ast))
                    in
                    m.Modsys.body <- form :: m.Modsys.body
                | _ -> err "artifact: bad define-values in %s" name)
            | Some "define-syntaxes" -> (
                match rest with
                | [ ids; rhs ] -> (
                    match Stx.to_list ids with
                    | Some [ id ] ->
                        let t = Expander.eval_transformer_rhs ~name:(Stx.sym_exn id) rhs in
                        let b = Binding.bind id in
                        Denote.set b (Denote.DMacro t)
                    | _ -> err "artifact: bad define-syntaxes in %s" name)
                | _ -> err "artifact: bad define-syntaxes in %s" name)
            | Some "begin-for-syntax" ->
                (* the serialized §5 declarations: compile once, replay now
                   into the module's own (fresh) store — mirroring the
                   original compilation — and keep the thunk for [visit] *)
                let thunks =
                  List.map
                    (fun e ->
                      let ast = Compile.compile_expr (Expander.expand_expr e) in
                      fun () -> ignore (Interp.eval_top ast))
                    rest
                in
                List.iter (fun thunk -> thunk ()) thunks;
                m.Modsys.ct_thunks <- m.Modsys.ct_thunks @ thunks
            | Some "#%provide" ->
                List.iter
                  (fun spec ->
                    m.Modsys.exports <- m.Modsys.exports @ Modsys.parse_provide_spec spec)
                  rest
            | Some "#%require" -> ()
            | _ -> m.Modsys.body <- defer_expr form :: m.Modsys.body)
        | _ -> m.Modsys.body <- defer_expr form :: m.Modsys.body
      in
      List.iter load_form forms;
      m.Modsys.body <- List.rev m.Modsys.body;
      m.Modsys.requires <- List.rev !requires;
      Modsys.register m;
      m)
