(** The content-addressed on-disk artifact store ([.liblang-cache/] by
    default, or any [--cache-dir]).

    Layout: one file per module key, [<dir>/<md5hex(key)>.lart], where the
    key is the module's canonical absolute path.  The {e identity} of an
    artifact is the digest of its serialized bytes; dependents record
    that digest, so any change to a module's compiled form — directly via
    its source, or transitively via one of its requires — changes the
    digests up the whole require chain and invalidates exactly the
    dependents (docs/compilation.md has the invalidation table).

    Observability: every consultation bumps one of [cache.hits],
    [cache.misses] (no artifact) or [cache.stale] (artifact unusable, with
    the reason as a [-v] trace note), and reads/writes run inside
    [artifact-read]/[artifact-write] trace spans.  Any unusable artifact —
    corrupt, truncated, version-skewed, stale — degrades to a recompile;
    it is never an error. *)

module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace

let default_dir = ".liblang-cache"

type t = {
  dir : string;
  digests : (string, string) Hashtbl.t;
      (** module key -> digest of its current (validated or just-written)
          artifact, memoized for this session; dependents consult this to
          record / check transitive digests *)
}

(** Open (creating if needed) a store rooted at [dir]. *)
let create ?(dir = default_dir) () : t =
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  { dir; digests = Hashtbl.create 16 }

let artifact_path (s : t) (key : string) : string =
  Filename.concat s.dir (Digest_util.key_file key ^ ".lart")

(** The digest of [key]'s artifact: memoized from a read or a write this
    session, else computed from the bytes on disk (a dependent may consult
    a store instance that never itself read [key]'s artifact — the module
    having been satisfied from the resolver's session memo).  [None] if
    the module has no artifact at all. *)
let current_digest (s : t) (key : string) : string option =
  match Hashtbl.find_opt s.digests key with
  | Some d -> Some d
  | None -> (
      match Digest_util.of_file (artifact_path s key) with
      | Some d ->
          Hashtbl.replace s.digests key d;
          Some d
      | None -> None)

let forget_digest (s : t) (key : string) = Hashtbl.remove s.digests key

(* -- the ambient store ------------------------------------------------------ *)

(** The store consulted by the file resolver; [None] disables caching
    (every file module is compiled from source). *)
let active : t option ref = ref None

let with_store (s : t option) (f : unit -> 'a) : 'a =
  let saved = !active in
  active := s;
  Fun.protect ~finally:(fun () -> active := saved) f

(* -- reading ----------------------------------------------------------------- *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Read and parse [key]'s artifact.  On success also memoizes its
    identity digest.  Does {e not} check freshness against the source or
    requires — that is the resolver's job (it owns recursive require
    resolution). *)
let read (s : t) ~(key : string) : (Artifact.t * string, Artifact.invalid) result =
  let path = artifact_path s key in
  if not (Sys.file_exists path) then Error Artifact.Missing
  else
    Trace.span "artifact-read" ~detail:key @@ fun () ->
    match slurp path with
    | exception Sys_error m -> Error (Artifact.Unreadable m)
    | text -> (
        match Artifact.of_string text with
        | Error reason -> Error reason
        | Ok a ->
            let digest = Digest_util.of_string text in
            Hashtbl.replace s.digests key digest;
            Ok (a, digest))

(* -- writing ----------------------------------------------------------------- *)

(** Serialize and persist [a] under its module key (atomically: write to a
    temp file in the cache dir, then rename).  Memoizes the new identity
    digest so dependents compiled later in this session record it.  A
    failed write is reported as a [-v] trace note and otherwise ignored —
    a read-only cache dir must never break compilation. *)
let write (s : t) (a : Artifact.t) : unit =
  Trace.span "artifact-write" ~detail:a.Artifact.mod_name @@ fun () ->
  let text = Artifact.to_string a in
  let path = artifact_path s a.Artifact.mod_name in
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  match
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text);
    Sys.rename tmp path
  with
  | () ->
      Hashtbl.replace s.digests a.Artifact.mod_name (Digest_util.of_string text);
      Metrics.count "cache.writes"
  | exception Sys_error m ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Trace.event "cache-write-failed" [ ("module", a.Artifact.mod_name); ("error", m) ]

(* -- counters ----------------------------------------------------------------- *)

let count_hit () = Metrics.count "cache.hits"
let count_miss () = Metrics.count "cache.misses"

let count_stale key (reason : Artifact.invalid) =
  Metrics.count "cache.stale";
  Trace.event "cache-stale"
    [ ("module", key); ("reason", Artifact.invalid_to_string reason) ]
