(** The content-addressed on-disk artifact store ([.liblang-cache/] by
    default, or any [--cache-dir]).

    Layout: one file per module key, [<dir>/<md5hex(key)>.lart], where the
    key is the module's canonical absolute path.  The {e identity} of an
    artifact is the digest of its serialized bytes; dependents record
    that digest, so any change to a module's compiled form — directly via
    its source, or transitively via one of its requires — changes the
    digests up the whole require chain and invalidates exactly the
    dependents (docs/compilation.md has the invalidation table).

    Observability: every consultation bumps one of [cache.hits],
    [cache.misses] (no artifact) or [cache.stale] (artifact unusable, with
    the reason as a [-v] trace note), and reads/writes run inside
    [artifact-read]/[artifact-write] trace spans.  Any unusable artifact —
    corrupt, truncated, version-skewed, stale — degrades to a recompile;
    it is never an error. *)

module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module Parallel = Liblang_parallel.Parallel
module Fault = Liblang_fault.Fault

let default_dir = ".liblang-cache"

type t = {
  dir : string;
  digests : (string, string) Hashtbl.t;
      (** module key -> digest of its current (validated or just-written)
          artifact, memoized for this session; dependents consult this to
          record / check transitive digests *)
  mu : Mutex.t;
      (** guards [digests] and [key_locks] while a domain pool is active
          (gated — single-domain runs skip it entirely) *)
  key_locks : (string, Mutex.t) Hashtbl.t;
      (** per-module-key advisory locks, created on demand: parallel-build
          workers racing to acquire the same uncompiled module serialize on
          the key, so the loser sees the winner's fresh artifact (one
          write + one cache hit) instead of compiling it a second time *)
  corrupt_reads : (string, int) Hashtbl.t;
      (** module key -> consecutive corrupt reads this session (guarded by
          [mu]); at {!quarantine_threshold} the artifact is renamed to
          [.bad] instead of being re-read forever (docs/robustness.md) *)
}

let contains_sub ~(sub : string) (s : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

(* Remove temp files stranded by previously killed processes (a crash
   between the temp write and the rename leaves [<name>.lart.tmp.<pid>.<dom>]
   behind forever).  Everything present when the store is {e opened}
   predates this process's own writes, so sweeping unconditionally is
   safe for ourselves; a racing sibling process can lose at most one
   in-flight temp file, which costs it one artifact write — a failure
   mode the write path already tolerates (and the next cold read heals). *)
let sweep_tmp (dir : string) : unit =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.iter
        (fun name ->
          if contains_sub ~sub:".lart.tmp." name then begin
            match Sys.remove (Filename.concat dir name) with
            | () ->
                Metrics.count "cache.tmp_swept";
                Trace.event "cache-tmp-swept" [ ("file", name) ]
            | exception Sys_error _ -> ()
          end)
        entries

(** Open (creating if needed) a store rooted at [dir]; sweeps temp files
    stranded by crashed predecessors. *)
let create ?(dir = default_dir) () : t =
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  sweep_tmp dir;
  {
    dir;
    digests = Hashtbl.create 16;
    mu = Mutex.create ();
    key_locks = Hashtbl.create 16;
    corrupt_reads = Hashtbl.create 4;
  }

(* [digests] is read and written by every domain that consults the store;
   all accesses below go through this gate. *)
let[@inline] locked (s : t) f = Parallel.with_gate s.mu f

(** Run [f] holding [key]'s advisory lock (a no-op outside parallel
    builds).  Lock acquisition follows require edges, which are acyclic
    (the cycle check raises first), so nested holds cannot deadlock.
    Contention is surfaced as the [cache.lock_waits] metric. *)
let with_key_lock (s : t) (key : string) (f : unit -> 'a) : 'a =
  Fault.check "store.lock";
  if not (Parallel.active ()) then f ()
  else begin
    let m =
      Parallel.with_lock s.mu (fun () ->
          match Hashtbl.find_opt s.key_locks key with
          | Some m -> m
          | None ->
              let m = Mutex.create () in
              Hashtbl.add s.key_locks key m;
              m)
    in
    if not (Mutex.try_lock m) then begin
      Metrics.count "cache.lock_waits";
      Atomic.incr Parallel.lock_waits;
      Mutex.lock m
    end;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  end

let artifact_path (s : t) (key : string) : string =
  Filename.concat s.dir (Digest_util.key_file key ^ ".lart")

(** The digest of [key]'s artifact: memoized from a read or a write this
    session, else computed from the bytes on disk (a dependent may consult
    a store instance that never itself read [key]'s artifact — the module
    having been satisfied from the resolver's session memo).  [None] if
    the module has no artifact at all. *)
let current_digest (s : t) (key : string) : string option =
  match locked s (fun () -> Hashtbl.find_opt s.digests key) with
  | Some d -> Some d
  | None -> (
      match Digest_util.of_file (artifact_path s key) with
      | Some d ->
          locked s (fun () -> Hashtbl.replace s.digests key d);
          Some d
      | None -> None)

let forget_digest (s : t) (key : string) =
  locked s (fun () -> Hashtbl.remove s.digests key)

(* -- the ambient store ------------------------------------------------------ *)

(** The store consulted by the file resolver; [None] disables caching
    (every file module is compiled from source).  The slot is domain-local
    but split with {e identity}: a worker spawned while a store is active
    shares that very store instance — that sharing (plus the gated mutex
    above) is what makes the artifact store the inter-domain communication
    channel of a parallel build. *)
let active_key : t option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:(fun v -> v) (fun () -> None)

let[@inline] active () : t option = Domain.DLS.get active_key

let with_store (s : t option) (f : unit -> 'a) : 'a =
  let saved = active () in
  Domain.DLS.set active_key s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set active_key saved) f

(* -- reading ----------------------------------------------------------------- *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* After this many corrupt reads of one key, stop re-reading the bytes
   forever: rename them aside as a [.bad] post-mortem.  Two, not one —
   a single corrupt read may race an in-flight write from a sibling
   process; persistent corruption is what quarantine is for. *)
let quarantine_threshold = 2

(* Record a corrupt read of [key]; at the threshold, quarantine the file
   (rename to [.bad]) so subsequent reads see [Missing] and the recompile
   path heals the store, while the damaged bytes survive for post-mortem.
   Returns [reason] so call sites stay one-liners. *)
let note_corrupt (s : t) ~(key : string) ~(path : string)
    (reason : Artifact.invalid) : Artifact.invalid =
  let n =
    locked s (fun () ->
        let n =
          (match Hashtbl.find_opt s.corrupt_reads key with Some n -> n | None -> 0) + 1
        in
        Hashtbl.replace s.corrupt_reads key n;
        n)
  in
  if n >= quarantine_threshold then begin
    match Sys.rename path (path ^ ".bad") with
    | () ->
        locked s (fun () ->
            Hashtbl.remove s.digests key;
            Hashtbl.remove s.corrupt_reads key);
        Metrics.count "cache.quarantined";
        Trace.event "cache-quarantined"
          [ ("module", key); ("file", Filename.basename path ^ ".bad") ]
    | exception Sys_error _ -> ()
  end;
  reason

(** Read and parse [key]'s artifact, verifying its integrity trailer
    first (a torn or bit-flipped artifact is caught before — or instead
    of — parsing).  On success also memoizes its identity digest.  Does
    {e not} check freshness against the source or requires — that is the
    resolver's job (it owns recursive require resolution).  Repeatedly
    corrupt artifacts are quarantined (see {!note_corrupt}). *)
let read (s : t) ~(key : string) : (Artifact.t * string, Artifact.invalid) result =
  Fault.check_deadline ();
  let path = artifact_path s key in
  if not (Sys.file_exists path) then Error Artifact.Missing
  else
    Trace.span "artifact-read" ~detail:key @@ fun () ->
    match Fault.check "store.read" with
    | exception Fault.Injected _ -> Error (Artifact.Unreadable "injected I/O fault")
    | () -> (
        match slurp path with
        | exception Sys_error m -> Error (Artifact.Unreadable m)
        | text -> (
            let parse () =
              match Artifact.of_string text with
              | Error (Artifact.Corrupt _ as r) -> Error (note_corrupt s ~key ~path r)
              | Error reason -> Error reason
              | Ok a ->
                  let digest = Digest_util.of_string text in
                  locked s (fun () ->
                      Hashtbl.replace s.digests key digest;
                      Hashtbl.remove s.corrupt_reads key);
                  Ok (a, digest)
            in
            match Artifact.verify_integrity text with
            | Ok () -> parse ()
            | Error integrity_reason -> (
                (* distinguish old-format artifacts (which predate the
                   trailer) from damage: version skew must never surface
                   as corrupt, and must not feed quarantine *)
                match Artifact.of_string text with
                | Error (Artifact.Version_skew _ as r) -> Error r
                | _ -> Error (note_corrupt s ~key ~path integrity_reason))))

(* -- writing ----------------------------------------------------------------- *)

(** Serialize and persist [a] under its module key (atomically: write to a
    temp file in the cache dir, then rename).  Memoizes the new identity
    digest so dependents compiled later in this session record it.  A
    failed write is reported as a [-v] trace note and otherwise ignored —
    a read-only cache dir must never break compilation.

    Fault sites: [store.write] (mode [torn@k] persists only the first [k]
    bytes — the torn artifact lands at the {e final} path, as after a
    crash between write and fsync) and [store.rename] (an injected error
    strands the temp file exactly as a kill would; the next
    {!create}'s sweep collects it). *)
let write (s : t) (a : Artifact.t) : unit =
  Trace.span "artifact-write" ~detail:a.Artifact.mod_name @@ fun () ->
  Fault.check_deadline ();
  let path = artifact_path s a.Artifact.mod_name in
  (* the temp name carries pid {e and} domain id: two domains of one
     process racing on a key must not share a temp file *)
  let tmp =
    path ^ ".tmp." ^ string_of_int (Unix.getpid ()) ^ "."
    ^ string_of_int (Domain.self () :> int)
  in
  match
    let full = Artifact.to_string a in
    let cut = Fault.torn_write "store.write" in
    let text =
      match cut with
      | Some k when k < String.length full -> String.sub full 0 k
      | _ -> full
    in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text);
    Fault.check "store.rename";
    Sys.rename tmp path;
    (cut, full)
  with
  | None, full ->
      locked s (fun () ->
          Hashtbl.replace s.digests a.Artifact.mod_name (Digest_util.of_string full);
          Hashtbl.remove s.corrupt_reads a.Artifact.mod_name);
      Metrics.count "cache.writes"
  | Some _, _ ->
      (* a torn artifact landed at the final path: nobody may trust a
         memoized digest for it, and it must not count as a clean write *)
      forget_digest s a.Artifact.mod_name;
      Trace.event "cache-write-torn" [ ("module", a.Artifact.mod_name) ]
  | exception Sys_error m ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Trace.event "cache-write-failed" [ ("module", a.Artifact.mod_name); ("error", m) ]
  | exception Fault.Injected (site, _) ->
      (* an injected failure at/before the rename: leave the temp file
         stranded, exactly as a crash would — the next store open sweeps
         it, and this session proceeds uncached for this module *)
      Trace.event "cache-write-failed"
        [ ("module", a.Artifact.mod_name); ("error", "injected fault at " ^ site) ]

(* -- counters ----------------------------------------------------------------- *)

let count_hit () = Metrics.count "cache.hits"
let count_miss () = Metrics.count "cache.misses"

let count_stale key (reason : Artifact.invalid) =
  Metrics.count "cache.stale";
  Trace.event "cache-stale"
    [ ("module", key); ("reason", Artifact.invalid_to_string reason) ]
