(** The content-addressed on-disk artifact store ([.liblang-cache/] by
    default, or any [--cache-dir]).

    Layout: one file per module key, [<dir>/<md5hex(key)>.lart], where the
    key is the module's canonical absolute path.  The {e identity} of an
    artifact is the digest of its serialized bytes; dependents record
    that digest, so any change to a module's compiled form — directly via
    its source, or transitively via one of its requires — changes the
    digests up the whole require chain and invalidates exactly the
    dependents (docs/compilation.md has the invalidation table).

    Observability: every consultation bumps one of [cache.hits],
    [cache.misses] (no artifact) or [cache.stale] (artifact unusable, with
    the reason as a [-v] trace note), and reads/writes run inside
    [artifact-read]/[artifact-write] trace spans.  Any unusable artifact —
    corrupt, truncated, version-skewed, stale — degrades to a recompile;
    it is never an error. *)

module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module Parallel = Liblang_parallel.Parallel

let default_dir = ".liblang-cache"

type t = {
  dir : string;
  digests : (string, string) Hashtbl.t;
      (** module key -> digest of its current (validated or just-written)
          artifact, memoized for this session; dependents consult this to
          record / check transitive digests *)
  mu : Mutex.t;
      (** guards [digests] and [key_locks] while a domain pool is active
          (gated — single-domain runs skip it entirely) *)
  key_locks : (string, Mutex.t) Hashtbl.t;
      (** per-module-key advisory locks, created on demand: parallel-build
          workers racing to acquire the same uncompiled module serialize on
          the key, so the loser sees the winner's fresh artifact (one
          write + one cache hit) instead of compiling it a second time *)
}

(** Open (creating if needed) a store rooted at [dir]. *)
let create ?(dir = default_dir) () : t =
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  { dir; digests = Hashtbl.create 16; mu = Mutex.create (); key_locks = Hashtbl.create 16 }

(* [digests] is read and written by every domain that consults the store;
   all accesses below go through this gate. *)
let[@inline] locked (s : t) f = Parallel.with_gate s.mu f

(** Run [f] holding [key]'s advisory lock (a no-op outside parallel
    builds).  Lock acquisition follows require edges, which are acyclic
    (the cycle check raises first), so nested holds cannot deadlock.
    Contention is surfaced as the [cache.lock_waits] metric. *)
let with_key_lock (s : t) (key : string) (f : unit -> 'a) : 'a =
  if not (Parallel.active ()) then f ()
  else begin
    let m =
      Parallel.with_lock s.mu (fun () ->
          match Hashtbl.find_opt s.key_locks key with
          | Some m -> m
          | None ->
              let m = Mutex.create () in
              Hashtbl.add s.key_locks key m;
              m)
    in
    if not (Mutex.try_lock m) then begin
      Metrics.count "cache.lock_waits";
      Atomic.incr Parallel.lock_waits;
      Mutex.lock m
    end;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  end

let artifact_path (s : t) (key : string) : string =
  Filename.concat s.dir (Digest_util.key_file key ^ ".lart")

(** The digest of [key]'s artifact: memoized from a read or a write this
    session, else computed from the bytes on disk (a dependent may consult
    a store instance that never itself read [key]'s artifact — the module
    having been satisfied from the resolver's session memo).  [None] if
    the module has no artifact at all. *)
let current_digest (s : t) (key : string) : string option =
  match locked s (fun () -> Hashtbl.find_opt s.digests key) with
  | Some d -> Some d
  | None -> (
      match Digest_util.of_file (artifact_path s key) with
      | Some d ->
          locked s (fun () -> Hashtbl.replace s.digests key d);
          Some d
      | None -> None)

let forget_digest (s : t) (key : string) =
  locked s (fun () -> Hashtbl.remove s.digests key)

(* -- the ambient store ------------------------------------------------------ *)

(** The store consulted by the file resolver; [None] disables caching
    (every file module is compiled from source).  The slot is domain-local
    but split with {e identity}: a worker spawned while a store is active
    shares that very store instance — that sharing (plus the gated mutex
    above) is what makes the artifact store the inter-domain communication
    channel of a parallel build. *)
let active_key : t option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:(fun v -> v) (fun () -> None)

let[@inline] active () : t option = Domain.DLS.get active_key

let with_store (s : t option) (f : unit -> 'a) : 'a =
  let saved = active () in
  Domain.DLS.set active_key s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set active_key saved) f

(* -- reading ----------------------------------------------------------------- *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Read and parse [key]'s artifact.  On success also memoizes its
    identity digest.  Does {e not} check freshness against the source or
    requires — that is the resolver's job (it owns recursive require
    resolution). *)
let read (s : t) ~(key : string) : (Artifact.t * string, Artifact.invalid) result =
  let path = artifact_path s key in
  if not (Sys.file_exists path) then Error Artifact.Missing
  else
    Trace.span "artifact-read" ~detail:key @@ fun () ->
    match slurp path with
    | exception Sys_error m -> Error (Artifact.Unreadable m)
    | text -> (
        match Artifact.of_string text with
        | Error reason -> Error reason
        | Ok a ->
            let digest = Digest_util.of_string text in
            locked s (fun () -> Hashtbl.replace s.digests key digest);
            Ok (a, digest))

(* -- writing ----------------------------------------------------------------- *)

(** Serialize and persist [a] under its module key (atomically: write to a
    temp file in the cache dir, then rename).  Memoizes the new identity
    digest so dependents compiled later in this session record it.  A
    failed write is reported as a [-v] trace note and otherwise ignored —
    a read-only cache dir must never break compilation. *)
let write (s : t) (a : Artifact.t) : unit =
  Trace.span "artifact-write" ~detail:a.Artifact.mod_name @@ fun () ->
  let text = Artifact.to_string a in
  let path = artifact_path s a.Artifact.mod_name in
  (* the temp name carries pid {e and} domain id: two domains of one
     process racing on a key must not share a temp file *)
  let tmp =
    path ^ ".tmp." ^ string_of_int (Unix.getpid ()) ^ "."
    ^ string_of_int (Domain.self () :> int)
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text);
    Sys.rename tmp path
  with
  | () ->
      locked s (fun () -> Hashtbl.replace s.digests a.Artifact.mod_name (Digest_util.of_string text));
      Metrics.count "cache.writes"
  | exception Sys_error m ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Trace.event "cache-write-failed" [ ("module", a.Artifact.mod_name); ("error", m) ]

(* -- counters ----------------------------------------------------------------- *)

let count_hit () = Metrics.count "cache.hits"
let count_miss () = Metrics.count "cache.misses"

let count_stale key (reason : Artifact.invalid) =
  Metrics.count "cache.stale";
  Trace.event "cache-stale"
    [ ("module", key); ("reason", Artifact.invalid_to_string reason) ]
