(** Content digests for the separate-compilation layer.

    Every digest in the artifact store is the lowercase hex MD5 of a byte
    string (the stdlib [Digest]); what matters is not cryptographic
    strength but that (a) equal content yields equal digests, so an
    unchanged module recompiled from scratch produces a byte-identical
    artifact and its dependents stay valid, and (b) any edit to a source
    file or to a required module's artifact changes the digest and so
    transitively invalidates every dependent (see docs/compilation.md). *)

let of_string (s : string) : string = Digest.to_hex (Digest.string s)

(** Digest of a file's bytes; [None] when the file cannot be read. *)
let of_file (path : string) : string option =
  match Digest.file path with
  | d -> Some (Digest.to_hex d)
  | exception Sys_error _ -> None

(** A short prefix for trace/log lines (full digests are noisy). *)
let short (d : string) : string =
  if String.length d > 12 then String.sub d 0 12 else d

(** Stable key for naming an artifact file after its module key (an
    absolute path or registry name): hex MD5 of the key itself, so cache
    file names are filesystem-safe regardless of the key's characters. *)
let key_file (key : string) : string = of_string key
