(** Separate compilation (paper §5, scaled to disk): the file-based module
    resolver and the content-addressed compiled-artifact store.

    - {!Resolver} makes [(require "path.scm")] work: the path is resolved
      relative to the requiring file, compiled (or loaded from its
      artifact) and registered under its canonical absolute path, with
      require cycles across files reported through the module system's
      existing cycle machinery.
    - {!Store} is the on-disk cache ([.liblang-cache/] or [--cache-dir]):
      one artifact per module, validated by format version, source digest
      and the digests of its requires' artifacts (transitive
      invalidation); anything unusable degrades to a recompile.
    - {!Artifact} is the serialized format; {!Loader} rebuilds a live
      module from it without re-running expansion or the typechecker,
      regenerating [ct_thunks] from the serialized §5 declarations.

    See docs/compilation.md for the format table, the invalidation rules
    and a worked [liblang compile] example. *)

module Digest_util = Digest_util
module Artifact = Artifact
module Store = Store
module Loader = Loader
module Resolver = Resolver
module Build = Build
module Genproj = Genproj

(** Install the file resolver and artifact hooks into the module system
    (idempotent). *)
let init () = Resolver.install ()

(** Run [f] with an artifact store rooted at [dir] active: file modules
    resolved while [f] runs are loaded from (and persisted to) the
    store. *)
let with_cache_dir (dir : string) (f : unit -> 'a) : 'a =
  Store.with_store (Some (Store.create ~dir ())) f

(** Compile (without instantiating) the module in [path] and everything
    it requires, through the resolver — and so through the artifact store
    when one is active.  Returns the module. *)
let compile_file (path : string) : Liblang_modules.Modsys.t =
  Resolver.require_key (Resolver.module_key path)

(** Run [f] with relative [(require "path.scm")] forms resolving against
    [path]'s directory.  The resolver does this automatically for files it
    loads itself; use this when compiling a file's source through
    [Modsys.declare] directly (e.g. an uncached [liblang run FILE]), so
    cached and uncached runs resolve requires identically. *)
let with_source_dir (path : string) (f : unit -> 'a) : 'a =
  let abs =
    if Filename.is_relative path then Filename.concat (Sys.getcwd ()) path else path
  in
  Resolver.with_dir (Filename.dirname abs) f

(** Test/bench hook: forget session state so the next [compile_file]
    exercises the artifact store as a fresh process would. *)
let reset_session () = Resolver.reset_session ()
