(** The file-based module resolver: [(require "path.scm")] loads, compiles
    and registers modules from disk.

    Canonicalization: a required path is resolved relative to the
    {e requiring} file's directory (or the process working directory at
    the top level) and normalized to an absolute path — the module's
    {e key}, under which it is registered, recorded in dependents'
    [requires] lists, and addressed in the artifact store.

    Cycle detection reuses the module system's require-cycle machinery:
    every in-progress file load pushes its key onto
    [Modsys.compiling_stack], so [a.scm -> b.scm -> a.scm] surfaces as the
    same "cyclic require" diagnostic (with the full path chain) as
    registry-module cycles.

    With a {!Store} active, each file consults its artifact first:
    requires recorded in the artifact are resolved (recursively) {e before}
    the artifact is trusted, and their current artifact digests must match
    the recorded ones — that is the transitive-invalidation check.  Any
    unusable artifact degrades to a compile from source, after which a
    fresh artifact is written. *)

module Modsys = Liblang_modules.Modsys
module Stx = Liblang_stx.Stx
module Srcloc = Liblang_reader.Srcloc
module Datum = Liblang_reader.Datum
module Sources = Liblang_diagnostics.Sources
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module Lower = Liblang_backend.Lower

(* -- path canonicalization --------------------------------------------------- *)

(* Directory of the file currently being loaded (innermost first); the
   base for resolving relative require paths.  Domain-local: each
   parallel-build worker resolves relative to its own load nest (workers
   are handed absolute keys, so an empty initial stack is correct). *)
let dir_stack_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let[@inline] dir_stack () = Domain.DLS.get dir_stack_key

let base_dir () = match !(dir_stack ()) with d :: _ -> d | [] -> Sys.getcwd ()

let with_dir d f =
  let dir_stack = dir_stack () in
  dir_stack := d :: !dir_stack;
  Fun.protect ~finally:(fun () -> dir_stack := List.tl !dir_stack) f

(** Lexically normalize [path] to an absolute path (collapse [.] and
    [..]; no symlink resolution, so the same text always yields the same
    key). *)
let normalize (path : string) : string =
  let path =
    if Filename.is_relative path then Filename.concat (base_dir ()) path else path
  in
  let parts = String.split_on_char '/' path in
  let rec go acc = function
    | [] -> List.rev acc
    | "" :: rest | "." :: rest -> go acc rest
    | ".." :: rest -> go (match acc with _ :: tl -> tl | [] -> []) rest
    | p :: rest -> go (p :: acc) rest
  in
  "/" ^ String.concat "/" (go [] parts)

(** Canonicalize [path] to the one true module key: lexical normalization
    first (so the result is deterministic for nonexistent files), then
    symlink resolution via [realpath] when the file — or at least its
    directory — exists.  Every consumer of module identity must go
    through here: [Build.scan_file]'s textual require scan, the server's
    mtime/digest invalidation, and the resolver itself all agree on keys
    only because they share this helper — a [./]-prefixed or symlinked
    spelling of the same file must never yield a second cache key. *)
let canonicalize (path : string) : string =
  let lex = normalize path in
  match Unix.realpath lex with
  | p -> p
  | exception Unix.Unix_error _ -> (
      (* file not (yet) on disk: canonicalize the directory so a later
         require of the created file lands on the same key *)
      match Unix.realpath (Filename.dirname lex) with
      | d -> Filename.concat d (Filename.basename lex)
      | exception Unix.Unix_error _ -> lex)

(** The canonical module key for a require of [path] from the current
    load context. *)
let module_key (path : string) : string = canonicalize path

(* -- session state ------------------------------------------------------------ *)

(* key -> (source digest, module): file modules already acquired this
   session.  A re-require only reuses the entry while the source is
   unchanged on disk and the module is still registered (tests reset the
   registry); otherwise the file is re-acquired and re-registered.

   Domain-local with a {e fresh} (empty) table in spawned workers — not a
   copy: a copied entry would hand the worker the parent's live module
   record, whose mutable visit/instantiate marks must stay per-domain
   (the worker's registry holds clones).  Workers re-acquire what they
   need from the artifact store, which is warm by construction. *)
let loaded_key : (string, string * Modsys.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let[@inline] loaded () = Domain.DLS.get loaded_key

(* key -> (mtime, size, source digest): the stat fast path.  When a file's
   (mtime, size) pair is unchanged since the digest was last computed, the
   digest is trusted without re-reading the bytes — this is what makes a
   warm compile-server request O(stat) per module.  Same caveat as make:
   a same-second, same-size rewrite is invisible (ext4 nanosecond mtimes
   make that window vanishingly small).  Domain-local and fresh in
   workers, like [loaded]. *)
let stat_memo_key : (string, float * int * string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let[@inline] stat_memo () = Domain.DLS.get stat_memo_key

(** Run [f] with the given session tables installed as this domain's
    [loaded] / stat-memo state (restored after).  The compile-server's
    session layer swaps a per-connection pair in around each request, so
    concurrent sessions never share acquisition memos; see
    [Liblang_server.Session]. *)
let with_session_tables ~(loaded : (string, string * Modsys.t) Hashtbl.t)
    ~(stats : (string, float * int * string) Hashtbl.t) (f : unit -> 'a) : 'a =
  let saved_l = Domain.DLS.get loaded_key and saved_s = Domain.DLS.get stat_memo_key in
  Domain.DLS.set loaded_key loaded;
  Domain.DLS.set stat_memo_key stats;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set loaded_key saved_l;
      Domain.DLS.set stat_memo_key saved_s)
    f

(* key -> source digest for files the resolver is compiling right now;
   the Modsys compiled_hook persists artifacts only for these
   (inline/test modules are not files and are never cached).
   Domain-local: tracks the calling domain's in-progress compiles. *)
let cacheable_key : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let[@inline] cacheable () = Domain.DLS.get cacheable_key

(** Forget all session state (loaded files and registered user modules) —
    the test/bench hook for simulating a fresh process, so a warm run
    actually exercises the artifact store. *)
let reset_session () =
  Hashtbl.reset (loaded ());
  Hashtbl.reset (stat_memo ());
  Modsys.reset_user_modules_for_tests ()

(* -- compiling and loading ----------------------------------------------------- *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_from_source ~key ~source : Modsys.t =
  Sources.register ~file:key source;
  let cacheable = cacheable () in
  Hashtbl.replace cacheable key (Digest_util.of_string source);
  Fun.protect
    ~finally:(fun () -> Hashtbl.remove cacheable key)
    (fun () -> Modsys.declare ~name:key source)

(** Resolve, validate (recursively) and load [key]'s artifact; [None]
    (with the cache counters bumped) when the file must be compiled from
    source instead. *)
let rec try_artifact (store : Store.t) ~key ~source_digest : Modsys.t option =
  match Store.read store ~key with
  | Error Artifact.Missing ->
      Store.count_miss ();
      None
  | Error reason ->
      Store.forget_digest store key;
      Store.count_stale key reason;
      None
  | Ok (a, _digest) ->
      let stale reason =
        Store.forget_digest store key;
        Store.count_stale key reason;
        None
      in
      if not (String.equal a.Artifact.source_digest source_digest) then
        stale Artifact.Stale_source
      else begin
        (* transitive invalidation: every required file module must
           re-resolve to an artifact whose digest matches the recorded
           one; required builtins must (still) exist *)
        let check_require = function
          | Artifact.Builtin n ->
              if Modsys.is_declared n && (Modsys.find n).Modsys.builtin then None
              else Some (Artifact.Stale_require n)
          | Artifact.File (rkey, rdigest) -> (
              match require_key rkey with
              | _m -> (
                  match Store.current_digest store rkey with
                  | Some d when String.equal d rdigest -> None
                  | _ -> Some (Artifact.Stale_require rkey))
              | exception Modsys.Module_error _ ->
                  (* e.g. a require recorded in a corrupt artifact that now
                     cycles or points at a missing file: treat as stale and
                     recompile this module from source, which will surface
                     the real diagnostic (or succeed, if the artifact lied) *)
                  Some (Artifact.Stale_require rkey))
        in
        match List.find_map check_require a.Artifact.requires with
        | Some reason -> stale reason
        | None -> (
            (* the artifact is valid; if rebuilding a live module from it
               still fails (e.g. a link target vanished because its module
               was recompiled by a cache-less session), degrade to a
               recompile — an unusable artifact is never an error *)
            match Loader.load a with
            | m ->
                Store.count_hit ();
                Some m
            | exception e ->
                stale (Artifact.Load_failed (Printexc.to_string e)))
      end

(** Acquire the file module for [key] (an absolute, normalized path):
    reuse it if already acquired and unchanged, else load it from a valid
    artifact, else compile it from source. *)
and require_key ?(loc = Srcloc.none) (key : string) : Modsys.t =
  (* cooperative deadline checkpoint: every module acquisition passes
     through here, bounding how far a task can run past its budget *)
  Liblang_fault.Fault.check_deadline ();
  Modsys.check_cycle ~loc key;
  let loaded = loaded () in
  let stat_memo = stat_memo () in
  let st = match Unix.stat key with s -> Some s | exception Unix.Unix_error _ -> None in
  (* stat fast path: (mtime, size) unchanged since this session digested
     the file, and the module is still loaded+registered — return it
     without reading a byte.  The warm-server steady state. *)
  let stat_hit =
    match (st, Hashtbl.find_opt stat_memo key) with
    | Some st, Some (mt, sz, d) when Float.equal st.Unix.st_mtime mt && st.Unix.st_size = sz
      -> (
        match Hashtbl.find_opt loaded key with
        | Some (d', m) when String.equal d' d && Modsys.is_declared key -> Some m
        | _ -> None)
    | _ -> None
  in
  match stat_hit with
  | Some m ->
      Metrics.count "module.stat_hits";
      m
  | None -> (
  let source =
    match slurp key with
    | s -> s
    | exception Sys_error m ->
        Metrics.count "module.file_require_errors";
        Modsys.err_at loc "require: cannot read module file %s: %s" key m
  in
  let source_digest = Digest_util.of_string source in
  (match st with
  | Some st -> Hashtbl.replace stat_memo key (st.Unix.st_mtime, st.Unix.st_size, source_digest)
  | None -> ());
  match Hashtbl.find_opt loaded key with
  | Some (d, m) when String.equal d source_digest && Modsys.is_declared key -> m
  | _ ->
      Modsys.with_compiling key @@ fun () ->
      with_dir (Filename.dirname key) @@ fun () ->
      let m =
        match Store.active () with
        | None -> compile_from_source ~key ~source
        | Some store ->
            (* Per-key advisory lock: parallel workers racing on an
               uncompiled module serialize here, so the loser re-reads the
               winner's fresh artifact (one write + one cache hit for the
               whole pool).  No-op outside parallel builds. *)
            Store.with_key_lock store key @@ fun () -> (
            match try_artifact store ~key ~source_digest with
            | Some m -> m
            | None -> compile_from_source ~key ~source)
      in
      Hashtbl.replace loaded key (source_digest, m);
      m)

(** The [Modsys.file_require_handler]: resolve a [(require "path")] spec
    against the requiring file's directory. *)
let require_path ~(path : string) ~(loc : Srcloc.t) : Modsys.t =
  require_key ~loc (module_key path)

(* -- incremental invalidation (compile server) --------------------------------- *)

(** Drop from the session every loaded module whose source changed on disk
    (or vanished) — and, transitively, every loaded dependent: the dirty
    cone of the edit.  Dropped modules are forgotten from the module
    registry too, so the next acquisition re-resolves them — dependents
    whose own sources are unchanged typically replay from freshly written
    artifacts rather than recompiling.  Unchanged modules keep their
    loaded records, registry entries and stat memos: this is what makes a
    server edit-recompile touch only the cone.  Returns the number of
    modules dropped.  The compile server calls this at the top of every
    [compile]/[run]/[expand] request (see docs/server.md). *)
let invalidate_changed () : int =
  let loaded = loaded () in
  let stat_memo = stat_memo () in
  let changed : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun key (d, _m) ->
      let current =
        match Unix.stat key with
        | exception Unix.Unix_error _ -> None
        | st -> (
            match Hashtbl.find_opt stat_memo key with
            | Some (mt, sz, d')
              when Float.equal st.Unix.st_mtime mt && st.Unix.st_size = sz ->
                Some d'
            | _ -> (
                match slurp key with
                | s ->
                    let d' = Digest_util.of_string s in
                    Hashtbl.replace stat_memo key (st.Unix.st_mtime, st.Unix.st_size, d');
                    Some d'
                | exception Sys_error _ -> None))
      in
      match current with
      | Some d' when String.equal d' d -> ()
      | _ -> Hashtbl.replace changed key ())
    loaded;
  (* close over dependents: a loaded module requiring anything in the
     changed set is itself dirty (fixpoint; graphs are small) *)
  let grew = ref true in
  while !grew do
    grew := false;
    Hashtbl.iter
      (fun key (_d, m) ->
        if
          (not (Hashtbl.mem changed key))
          && List.exists (Hashtbl.mem changed) m.Modsys.requires
        then begin
          Hashtbl.replace changed key ();
          grew := true
        end)
      loaded
  done;
  Hashtbl.iter
    (fun key () ->
      Hashtbl.remove loaded key;
      Hashtbl.remove stat_memo key;
      Modsys.forget key)
    changed;
  Hashtbl.length changed

(* -- persisting artifacts ------------------------------------------------------ *)

(* Free identifiers in [core_forms] that resolve to {e another} module's
   internal (module-level) binding are serialized as explicit links:
   rebinding by name through a require only covers exports, and
   macro-introduced references routinely name unexported internals — the
   typed boundary's [defensive-*] definitions (§6.2) being the canonical
   case.  [quote] bodies are data and are skipped; [quote-syntax] bodies
   are future references and are scanned. *)
let compute_links (m : Liblang_modules.Modsys.t) (core_forms : Stx.t list) :
    (string * string) list =
  let module Binding = Liblang_stx.Binding in
  let key = m.Modsys.mod_name in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let links = ref [] in
  let consider (id : Stx.t) =
    let name = Stx.sym_exn id in
    if not (Hashtbl.mem seen name) then (
      Hashtbl.add seen name ();
      match (try Binding.resolve id with Binding.Ambiguous _ -> None) with
      | None -> ()
      | Some b -> (
          (* own module-level definitions rebind in pass A of the loader;
             anything owned by another module needs an explicit link *)
          match Modsys.find_internal ~mod_name:key name with
          | Some b' when Binding.equal b b' -> ()
          | _ -> (
              match Modsys.find_internal_owner ~excluding:key name b with
              | Some owner -> links := (name, owner) :: !links
              | None -> ())))
  in
  let rec walk (s : Stx.t) =
    match Stx.view s with
    | Stx.Id _ -> consider s
    | Stx.List (hd :: args) when Stx.is_id hd -> (
        match Modsys.core_kind hd with
        | Some "quote" -> ()
        | _ -> List.iter walk args)
    | Stx.List xs -> List.iter walk xs
    | Stx.DotList (xs, tl) ->
        List.iter walk xs;
        walk tl
    | _ -> ()
  in
  List.iter walk core_forms;
  List.rev !links

(* Lower each runnable body form (by its position in [m.body] — the
   loader's pass B rebuilds the same sequence) and serialize the result
   into the artifact's [(bytecode ...)] section.  Forms the backend
   cannot express serialize as [interp] so warm sessions also skip
   re-attempting the lowering.  The unboxing flag is recorded because
   lowering decisions depend on it. *)
let bytecode_section (m : Modsys.t) : Datum.annot option =
  let unboxing = !Liblang_runtime.Interp.unboxing_enabled in
  let entries =
    Metrics.time "phase.lower" @@ fun () ->
    List.mapi
      (fun i (f : Modsys.compiled_form) ->
        let ast =
          match f with
          | Modsys.CExpr a | Modsys.CDef (_, a) -> Some a
          | Modsys.CLazy _ -> None
        in
        match ast with
        | None -> None
        | Some a ->
            Some
              (match Lower.lower_form ~unboxing a with
              | Some code ->
                  Datum.list
                    [ Datum.sym "form"; Datum.int i; Lower.code_to_datum code ]
              | None -> Datum.list [ Datum.sym "form"; Datum.int i; Datum.sym "interp" ]))
      m.Modsys.body
    |> List.filter_map Fun.id
  in
  if entries = [] then None
  else
    Some
      (Datum.list
         (Datum.sym "bytecode"
         :: Datum.list [ Datum.sym "unboxing"; Datum.bool unboxing ]
         :: entries))

(** The [Modsys.compiled_hook]: persist an artifact for every successful
    file-module compilation while a store is active.  A module is only
    cacheable when each of its requires is a builtin or itself has a
    current artifact (so the transitive digest chain is complete);
    otherwise it is skipped with a [-v] trace note. *)
let on_compiled (m : Modsys.t) ~(lang : string) ~(core_forms : Stx.t list) : unit =
  match (Store.active (), Hashtbl.find_opt (cacheable ()) m.Modsys.mod_name) with
  | None, _ | _, None -> ()
  | Some store, Some source_digest ->
      let key = m.Modsys.mod_name in
      let require_refs =
          List.map
            (fun r ->
              match Modsys.find_opt r with
              | Some rm when rm.Modsys.builtin -> Some (Artifact.Builtin r)
              | _ -> (
                  match Store.current_digest store r with
                  | Some d -> Some (Artifact.File (r, d))
                  | None -> None))
            m.Modsys.requires
      in
      if List.mem None require_refs then
        Trace.event "cache-skip"
          [ ("module", key); ("reason", "requires a module with no artifact") ]
      else
        let a =
          Artifact.of_compiled ~mod_name:key ~lang ~source_digest
            ~requires:(List.filter_map Fun.id require_refs)
            ~exports:(List.map (fun e -> e.Modsys.ext_name) m.Modsys.exports)
            ~links:(compute_links m core_forms)
            ?bytecode:(bytecode_section m) ~core_forms ()
        in
        Store.write store a

(* -- installation --------------------------------------------------------------- *)

let installed = ref false

(** Install the resolver into the module system (idempotent); called by
    the platform's [init]. *)
let install () =
  if not !installed then begin
    installed := true;
    Modsys.file_require_handler := require_path;
    Modsys.compiled_hook := on_compiled
  end
