(** The [liblang] command-line tool.

    {v
    liblang run [--fuel N] FILE ...   run #lang programs (later files may
                                      require modules declared by earlier
                                      ones); --fuel bounds evaluation steps
    liblang expand FILE               print a module's fully-expanded core forms
    liblang eval [-l LANG] EXPR       evaluate one expression
    liblang repl [-l LANG]            interactive read-eval-print loop
    liblang langs                     list the registered languages
    v}

    All failures are rendered as diagnostics (with source excerpts and
    caret underlines when the terminal is a TTY, in color).  Exit codes:
    0 = success, 1 = the program had diagnostics, 2 = internal error in
    the platform itself, 64 = usage error. *)

module Pipeline = Liblang_core.Pipeline
module Diagnostic = Pipeline.Diagnostic
module Render = Pipeline.Render
module Value = Liblang_core.Core.Value

let color_stderr = lazy (Unix.isatty Unix.stderr)

let exit_code ds = if List.exists Diagnostic.is_internal ds then 2 else 1

(** Print a diagnostic batch to stderr; return the exit code it implies. *)
let report ds =
  prerr_endline (Render.render_all ~color:(Lazy.force color_stderr) ds);
  exit_code ds

let fail ds = exit (report ds)

let cmd_run fuel paths =
  List.iter
    (fun path ->
      match Pipeline.run_file ?fuel path with Ok _ -> () | Error ds -> fail ds)
    paths

let cmd_expand path =
  let source =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some s
    with Sys_error m ->
      Printf.eprintf "liblang: cannot read file: %s\n" m;
      None
  in
  match source with
  | None -> exit 1
  | Some source -> (
      let name = Filename.remove_extension (Filename.basename path) in
      match Pipeline.expand ~name source with
      | Ok forms -> List.iter print_endline forms
      | Error ds -> fail ds)

let cmd_eval lang expr =
  match Pipeline.eval ~lang expr with
  | Ok v -> print_endline (Value.write_string v)
  | Error ds -> fail ds

let cmd_langs () =
  (* every builtin language *)
  List.iter print_endline
    [ "racket"; "typed/racket (aliases: typed, simple-type)"; "count"; "lazy"; "limited" ]

let cmd_repl lang =
  Printf.printf "liblang repl (#lang %s); ctrl-d to exit\n" lang;
  let buf = Buffer.create 256 in
  let balanced s =
    let depth = ref 0 and in_str = ref false in
    String.iteri
      (fun i c ->
        if !in_str then (if c = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false)
        else
          match c with
          | '"' -> in_str := true
          | '(' | '[' -> incr depth
          | ')' | ']' -> decr depth
          | _ -> ())
      s;
    !depth <= 0 && not !in_str
  in
  try
    while true do
      if Buffer.length buf = 0 then print_string "> " else print_string "  ";
      flush stdout;
      let line = input_line stdin in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.trim text <> "" && balanced text then begin
        Buffer.clear buf;
        match Pipeline.eval ~lang text with
        | Ok v -> if v <> Value.Void then print_endline (Value.write_string v)
        | Error ds -> ignore (report ds)
      end
    done
  with End_of_file -> print_newline ()

let usage () =
  prerr_endline
    "usage: liblang run [--fuel N] FILE... | expand FILE | eval [-l LANG] EXPR | repl [-l \
     LANG] | langs";
  exit 64

let () =
  Liblang_core.Core.init ();
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "run" :: "--fuel" :: n :: (_ :: _ as paths) -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> cmd_run (Some n) paths
      | _ -> usage ())
  | _ :: "run" :: (_ :: _ as paths) -> cmd_run None paths
  | [ _; "expand"; path ] -> cmd_expand path
  | [ _; "eval"; "-l"; lang; expr ] -> cmd_eval lang expr
  | [ _; "eval"; expr ] -> cmd_eval "racket" expr
  | [ _; "repl"; "-l"; lang ] -> cmd_repl lang
  | [ _; "repl" ] -> cmd_repl "racket"
  | [ _; "langs" ] -> cmd_langs ()
  | _ -> usage ()
