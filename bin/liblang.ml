(** The [liblang] command-line tool.

    {v
    liblang run [--fuel N] [--profile[=json]] [--trace FILE] [-v|-vv]
                [--cache | --cache-dir DIR] FILE ...
                                      run #lang programs (later files may
                                      require modules declared by earlier
                                      ones); --fuel bounds evaluation steps;
                                      --profile reports per-phase wall time,
                                      per-macro expansion counts and
                                      per-rule optimizer rewrites (as JSON
                                      on stdout with --profile=json);
                                      --trace streams span/macro events to
                                      FILE (NDJSON if FILE ends in .json or
                                      .ndjson, indented text otherwise;
                                      -vv adds per-macro-step syntax);
                                      --cache compiles through the artifact
                                      store (docs/compilation.md)
    liblang compile [--cache-dir DIR] FILE ...
                                      compile files (and their requires)
                                      through the artifact store without
                                      running them; one summary line each
    liblang expand FILE               print a module's fully-expanded core forms
    liblang eval [-l LANG] EXPR       evaluate one expression
    liblang repl [-l LANG]            interactive read-eval-print loop
    liblang langs                     list the registered languages
    liblang help | --help             print this usage (exit 0)
    v}

    All failures are rendered as diagnostics (with source excerpts and
    caret underlines when the terminal is a TTY, in color).  Exit codes:
    0 = success, 1 = the program had diagnostics, 2 = internal error in
    the platform itself, 64 = usage error (unknown subcommand, malformed
    flags, or missing arguments).

    See docs/observability.md for the profile/trace model. *)

module Pipeline = Liblang_core.Pipeline
module Diagnostic = Pipeline.Diagnostic
module Render = Pipeline.Render
module Observe = Pipeline.Observe
module Metrics = Pipeline.Metrics
module Trace = Pipeline.Trace
module Json = Liblang_core.Core.Json
module Value = Liblang_core.Core.Value

let color_stderr = lazy (Unix.isatty Unix.stderr)

let exit_code ds = if List.exists Diagnostic.is_internal ds then 2 else 1

(** Print a diagnostic batch to stderr; return the exit code it implies. *)
let report ds =
  prerr_endline (Render.render_all ~color:(Lazy.force color_stderr) ds);
  exit_code ds

let fail ds = exit (report ds)

let usage_text =
  "usage: liblang <command> [options]\n\n\
   commands:\n\
  \  run [--fuel N] [--profile[=json]] [--trace FILE] [-v|-vv] FILE...\n\
  \                          run #lang programs (later files may require\n\
  \                          modules declared by earlier ones)\n\
  \      --fuel N            bound evaluation to N steps (compile time and runtime)\n\
  \      --profile           print a profile report (per-phase wall time,\n\
  \                          per-macro expansion counts, per-rule optimizer\n\
  \                          rewrites) to stderr after the run\n\
  \      --profile=json      same, as one JSON object on stdout\n\
  \      --trace FILE        stream trace events to FILE as the pipeline runs\n\
  \                          (NDJSON if FILE ends in .json/.ndjson, else text)\n\
  \      -v | -vv            trace verbosity: -vv adds each macro step with\n\
  \                          the syntax before/after the rewrite\n\
  \      --cache             compile through the artifact store in .liblang-cache/\n\
  \      --cache-dir DIR     same, rooted at DIR\n\
  \      -j N                compile the require graph on N worker domains\n\
  \                          (needs --cache/--cache-dir for run; artifacts\n\
  \                          are byte-identical to a -j1 build)\n\
  \      --faults PLAN       inject deterministic faults at store/build/loader\n\
  \                          sites for chaos testing, e.g.\n\
  \                          'seed=7;store.write=torn@64~0.3;build.task=error~0.2'\n\
  \                          (docs/robustness.md has the site catalogue)\n\
  \  compile [--cache-dir DIR] [--fuel N] [-j N] [--profile[=json]]\n\
  \          [--trace FILE] [-v|-vv] FILE...\n\
  \                          compile each file (and its requires) through the\n\
  \                          artifact store without running it; prints one\n\
  \                          summary line per file:\n\
  \                          compiled FILE: modules=N hits=H compiles=C stale=S misses=M\n\
  \                          (default cache dir: .liblang-cache)\n\
  \  gen-modules [--dir DIR] [--shape wide|diamond|chain] N\n\
  \                          write an N-module synthetic project (macro-heavy\n\
  \                          modules over a require graph of the given shape)\n\
  \                          for exercising the parallel build; prints the\n\
  \                          root file and its expected output\n\
  \  expand FILE             print a module's fully-expanded core forms\n\
  \  eval [-l LANG] EXPR     evaluate one expression (default language: racket)\n\
  \  repl [-l LANG]          interactive read-eval-print loop\n\
  \  langs                   list the registered languages\n\
  \  help                    print this message\n\n\
   exit codes: 0 success; 1 program diagnostics; 2 internal platform error;\n\
   64 usage error (unknown subcommand, malformed flags, missing arguments).\n\n\
   docs: docs/observability.md (profiling/tracing), docs/diagnostics.md (errors),\n\
  \ docs/architecture.md (pipeline map)."

let usage () =
  prerr_endline usage_text;
  exit 64

let help () =
  print_endline usage_text;
  exit 0

(* -- run -------------------------------------------------------------------- *)

type profile_mode = Profile_off | Profile_text | Profile_json

type run_opts = {
  mutable fuel : int option;
  mutable profile : profile_mode;
  mutable trace_file : string option;
  mutable verbosity : int;
  mutable cache_dir : string option;
  mutable jobs : int option;  (** [-j N]: worker domains for the build *)
  mutable faults : string option;  (** [--faults PLAN]: chaos testing *)
  mutable paths : string list;  (** reversed *)
}

let parse_run_opts args =
  let o =
    {
      fuel = None;
      profile = Profile_off;
      trace_file = None;
      verbosity = 1;
      cache_dir = None;
      jobs = None;
      faults = None;
      paths = [];
    }
  in
  let set_jobs n =
    match int_of_string_opt n with Some n when n > 0 -> o.jobs <- Some n | _ -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "--fuel" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 0 ->
            o.fuel <- Some n;
            go rest
        | _ -> usage ())
    | "--fuel" :: [] -> usage ()
    | "-j" :: n :: rest ->
        set_jobs n;
        go rest
    | "-j" :: [] -> usage ()
    | flag :: rest when String.length flag > 2 && String.sub flag 0 2 = "-j" ->
        set_jobs (String.sub flag 2 (String.length flag - 2));
        go rest
    | "--profile" :: rest ->
        o.profile <- Profile_text;
        go rest
    | "--profile=json" :: rest ->
        o.profile <- Profile_json;
        go rest
    | "--trace" :: file :: rest ->
        o.trace_file <- Some file;
        go rest
    | "--trace" :: [] -> usage ()
    | "--cache" :: rest ->
        if o.cache_dir = None then o.cache_dir <- Some Liblang_core.Core.Compiled.Store.default_dir;
        go rest
    | "--cache-dir" :: dir :: rest ->
        o.cache_dir <- Some dir;
        go rest
    | "--cache-dir" :: [] -> usage ()
    | "--faults" :: plan :: rest ->
        o.faults <- Some plan;
        go rest
    | "--faults" :: [] -> usage ()
    | "-v" :: rest ->
        o.verbosity <- max o.verbosity 1;
        go rest
    | "-vv" :: rest ->
        o.verbosity <- 2;
        go rest
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' -> usage ()
    | path :: rest ->
        o.paths <- path :: o.paths;
        go rest
  in
  go args;
  if o.paths = [] then usage ();
  (* install the fault plan before anything touches the store or spawns a
     pool; a malformed plan is a usage error, not a diagnostic *)
  (match o.faults with
  | None -> ()
  | Some spec -> (
      match Liblang_core.Core.Fault.parse spec with
      | Ok plan -> Liblang_core.Core.Fault.install (Some plan)
      | Error m ->
          Printf.eprintf "liblang: bad --faults plan: %s\n" m;
          exit 64));
  { o with paths = List.rev o.paths }

let has_suffix suf s =
  let ls = String.length s and l = String.length suf in
  ls >= l && String.sub s (ls - l) l = suf

(* Build the trace sink (if requested) and arrange for the profile and the
   trace to reach the user even when a file fails and we exit through
   [fail]. *)
let setup_observe (o : run_opts) =
  let metrics =
    match o.profile with Profile_off -> None | _ -> Some (Metrics.create ())
  in
  let trace =
    match o.trace_file with
    | None -> None
    | Some file ->
        let oc = open_out file in
        let format =
          if has_suffix ".json" file || has_suffix ".ndjson" file then Trace.Ndjson
          else Trace.Text
        in
        Some (Trace.make_sink ~format ~verbosity:o.verbosity oc)
  in
  at_exit (fun () ->
      (match (metrics, o.profile) with
      | Some c, Profile_json -> print_endline (Json.to_string ~pretty:true (Metrics.to_json c))
      | Some c, Profile_text -> prerr_string (Metrics.render c)
      | _ -> ());
      match trace with Some s -> flush s.Trace.out; close_out_noerr s.Trace.out | None -> ());
  (metrics, trace)

let cmd_run args =
  let o = parse_run_opts args in
  let metrics, trace = setup_observe o in
  let observe = { Observe.metrics; trace } in
  List.iter
    (fun path ->
      match Pipeline.run_file ?fuel:o.fuel ?cache_dir:o.cache_dir ?jobs:o.jobs ~observe path with
      | Ok _ -> ()
      | Error ds -> fail ds)
    o.paths

(* -- compile ---------------------------------------------------------------- *)

(** [liblang compile]: compile each file (and everything it requires)
    through the artifact store, without instantiating, and print one
    machine-checkable summary line per file:
    [compiled FILE: modules=N hits=H compiles=C stale=S misses=M]. *)
let cmd_compile args =
  let o = parse_run_opts args in
  let cache_dir =
    match o.cache_dir with
    | Some d -> d
    | None -> Liblang_core.Core.Compiled.Store.default_dir
  in
  let profile_c, trace = setup_observe o in
  let worst = ref 0 in
  List.iter
    (fun path ->
      (* a private collector per file, so the summary line reflects just
         this file's compilation; folded into the --profile report after *)
      let c = Metrics.create () in
      let observe = { Observe.metrics = Some c; trace } in
      (match Pipeline.compile_file ?fuel:o.fuel ~cache_dir ?jobs:o.jobs ~observe path with
      | Ok () ->
          let g = Metrics.get c in
          Printf.printf "compiled %s: modules=%d hits=%d compiles=%d stale=%d misses=%d\n"
            path
            (g "module.compiles" + g "module.cache_hits")
            (g "module.cache_hits") (g "module.compiles") (g "cache.stale")
            (g "cache.misses")
      | Error ds -> worst := max !worst (report ds));
      match profile_c with Some into -> Metrics.merge ~into c | None -> ())
    o.paths;
  if !worst > 0 then exit !worst

(* -- gen-modules ------------------------------------------------------------- *)

(** [liblang gen-modules [--dir DIR] [--shape wide|diamond|chain] N]:
    write an [N]-module synthetic project (macro-heavy modules over a
    require graph of the given shape) and print the root file and the
    number it displays when compiled and run correctly — the input for
    the parallel-build benchmarks and for trying [-j] by hand. *)
let cmd_gen_modules args =
  let module Genproj = Liblang_core.Core.Compiled.Genproj in
  let dir = ref "." and shape = ref Genproj.Wide and n = ref None in
  let rec go = function
    | [] -> ()
    | "--dir" :: d :: rest ->
        dir := d;
        go rest
    | "--dir" :: [] -> usage ()
    | "--shape" :: s :: rest -> (
        match Genproj.shape_of_string s with
        | Some sh ->
            shape := sh;
            go rest
        | None -> usage ())
    | "--shape" :: [] -> usage ()
    | arg :: rest -> (
        match int_of_string_opt arg with
        | Some k when k >= 1 && !n = None ->
            n := Some k;
            go rest
        | _ -> usage ())
  in
  go args;
  match !n with
  | None -> usage ()
  | Some n ->
      let root, checksum = Genproj.generate ~dir:!dir ~shape:!shape ~n () in
      Printf.printf "generated %d modules (%s) under %s\nroot: %s\nexpected output: %d\n" n
        (Genproj.shape_to_string !shape) !dir root checksum

(* -- other subcommands ------------------------------------------------------- *)

let cmd_expand path =
  match Pipeline.slurp path with
  | exception Sys_error m ->
      (* like every other failure: a located diagnostic through the
         renderer, not a bare eprintf *)
      fail [ Diagnostic.error ~phase:Diagnostic.Module ("cannot read file: " ^ m) ]
  | source -> (
      let name = Filename.remove_extension (Filename.basename path) in
      match Pipeline.expand ~name source with
      | Ok forms -> List.iter print_endline forms
      | Error ds -> fail ds)

let cmd_eval lang expr =
  match Pipeline.eval ~lang expr with
  | Ok v -> print_endline (Value.write_string v)
  | Error ds -> fail ds

let cmd_langs () =
  (* every builtin language *)
  List.iter print_endline
    [ "racket"; "typed/racket (aliases: typed, simple-type)"; "count"; "lazy"; "limited" ]

let cmd_repl lang =
  Printf.printf "liblang repl (#lang %s); ctrl-d to exit\n" lang;
  let buf = Buffer.create 256 in
  let balanced s =
    let depth = ref 0 and in_str = ref false in
    String.iteri
      (fun i c ->
        if !in_str then (if c = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false)
        else
          match c with
          | '"' -> in_str := true
          | '(' | '[' -> incr depth
          | ')' | ']' -> decr depth
          | _ -> ())
      s;
    !depth <= 0 && not !in_str
  in
  try
    while true do
      if Buffer.length buf = 0 then print_string "> " else print_string "  ";
      flush stdout;
      let line = input_line stdin in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.trim text <> "" && balanced text then begin
        Buffer.clear buf;
        match Pipeline.eval ~lang text with
        | Ok v -> if v <> Value.Void then print_endline (Value.write_string v)
        | Error ds -> ignore (report ds)
      end
    done
  with End_of_file -> print_newline ()

let () =
  Liblang_core.Core.init ();
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "run" :: (_ :: _ as rest) -> cmd_run rest
  | _ :: "compile" :: (_ :: _ as rest) -> cmd_compile rest
  | _ :: "gen-modules" :: (_ :: _ as rest) -> cmd_gen_modules rest
  | [ _; "expand"; path ] -> cmd_expand path
  | [ _; "eval"; "-l"; lang; expr ] -> cmd_eval lang expr
  | [ _; "eval"; expr ] -> cmd_eval "racket" expr
  | [ _; "repl"; "-l"; lang ] -> cmd_repl lang
  | [ _; "repl" ] -> cmd_repl "racket"
  | [ _; "langs" ] -> cmd_langs ()
  | [ _; "help" ] | [ _; "--help" ] | [ _; "-h" ] -> help ()
  | _ -> usage ()
