(** The [liblang] command-line tool.

    {v
    liblang run [--fuel N] [--profile[=json]] [--trace FILE] [-v|-vv]
                [--cache | --cache-dir DIR] [--engine interp|vm] FILE ...
                                      run #lang programs (later files may
                                      require modules declared by earlier
                                      ones); --fuel bounds evaluation steps;
                                      --profile reports per-phase wall time,
                                      per-macro expansion counts and
                                      per-rule optimizer rewrites (as JSON
                                      on stdout with --profile=json);
                                      --trace streams span/macro events to
                                      FILE (NDJSON if FILE ends in .json or
                                      .ndjson, indented text otherwise;
                                      -vv adds per-macro-step syntax);
                                      --cache compiles through the artifact
                                      store (docs/compilation.md)
    liblang compile [--cache-dir DIR] FILE ...
                                      compile files (and their requires)
                                      through the artifact store without
                                      running them; one summary line each
    liblang expand FILE               print a module's fully-expanded core forms
    liblang analyze [--stage S] [--profile[=json]] FILE
                                      run the 0CFA flow analysis and print the
                                      proved facts (docs/analysis.md)
    liblang eval [-l LANG] EXPR       evaluate one expression
    liblang repl [-l LANG]            interactive read-eval-print loop
    liblang serve [--socket PATH] [--cache-dir DIR]
                                      start the compile-server daemon
                                      (protocol: docs/server.md)
    liblang client [--socket PATH] (run|compile|expand|analyze) FILE...
    liblang client [--socket PATH] (status|shutdown)
                                      talk to a running compile server
    liblang langs                     list the registered languages
    liblang help | --help             print this usage (exit 0)
    v}

    All failures are rendered as diagnostics (with source excerpts and
    caret underlines when the terminal is a TTY, in color).  Exit codes:
    0 = success, 1 = the program had diagnostics, 2 = internal error in
    the platform itself, 64 = usage error (unknown subcommand, malformed
    flags, or missing arguments).

    See docs/observability.md for the profile/trace model. *)

module Pipeline = Liblang_core.Pipeline
module Diagnostic = Pipeline.Diagnostic
module Render = Pipeline.Render
module Observe = Pipeline.Observe
module Metrics = Pipeline.Metrics
module Trace = Pipeline.Trace
module Json = Liblang_core.Core.Json
module Value = Liblang_core.Core.Value
module Server = Liblang_server.Server
module Client = Liblang_server.Client
module Sproto = Liblang_server.Protocol

let color_stderr = lazy (Unix.isatty Unix.stderr)

let exit_code ds = if List.exists Diagnostic.is_internal ds then 2 else 1

(** Print a diagnostic batch to stderr; return the exit code it implies. *)
let report ds =
  prerr_endline (Render.render_all ~color:(Lazy.force color_stderr) ds);
  exit_code ds

let fail ds = exit (report ds)

let usage_text =
  "usage: liblang <command> [options]\n\n\
   commands:\n\
  \  run [--fuel N] [--profile[=json]] [--trace FILE] [-v|-vv] FILE...\n\
  \                          run #lang programs (later files may require\n\
  \                          modules declared by earlier ones)\n\
  \      --fuel N            bound evaluation to N steps (compile time and runtime)\n\
  \      --profile           print a profile report (per-phase wall time,\n\
  \                          per-macro expansion counts, per-rule optimizer\n\
  \                          rewrites) to stderr after the run\n\
  \      --profile=json      same, as one JSON object on stdout\n\
  \      --trace FILE        stream trace events to FILE as the pipeline runs\n\
  \                          (NDJSON if FILE ends in .json/.ndjson, else text)\n\
  \      -v | -vv            trace verbosity: -vv adds each macro step with\n\
  \                          the syntax before/after the rewrite\n\
  \      --cache             compile through the artifact store in .liblang-cache/\n\
  \      --cache-dir DIR     same, rooted at DIR\n\
  \      -j N                compile the require graph on N worker domains\n\
  \                          (needs --cache/--cache-dir for run; artifacts\n\
  \                          are byte-identical to a -j1 build)\n\
  \      --faults PLAN       inject deterministic faults at store/build/loader\n\
  \                          sites for chaos testing, e.g.\n\
  \                          'seed=7;store.write=torn@64~0.3;build.task=error~0.2'\n\
  \                          (docs/robustness.md has the site catalogue)\n\
  \      --via-server PATH   route the command through the compile server\n\
  \                          listening on socket PATH instead of compiling\n\
  \                          locally (also accepted by compile)\n\
  \      --engine interp|vm  evaluation backend: the closure-tree interpreter\n\
  \                          (default) or the bytecode VM (docs/backend.md);\n\
  \                          the two are observably identical\n\
  \  compile [--cache-dir DIR] [--fuel N] [-j N] [--profile[=json]]\n\
  \          [--trace FILE] [-v|-vv] FILE...\n\
  \                          compile each file (and its requires) through the\n\
  \                          artifact store without running it; prints one\n\
  \                          summary line per file:\n\
  \                          compiled FILE: modules=N hits=H compiles=C stale=S misses=M\n\
  \                          (default cache dir: .liblang-cache)\n\
  \  gen-modules [--dir DIR] [--shape wide|diamond|chain] N\n\
  \                          write an N-module synthetic project (macro-heavy\n\
  \                          modules over a require graph of the given shape)\n\
  \                          for exercising the parallel build; prints the\n\
  \                          root file and its expected output\n\
  \  expand FILE             print a module's fully-expanded core forms\n\
  \  analyze [--stage wide|compiled|lazy|delta] [--profile[=json]] FILE\n\
  \                          expand FILE and run the 0CFA flow analysis over\n\
  \                          its core forms; prints a fact summary plus one\n\
  \                          line per proved fact (call-site callees, escape\n\
  \                          status, in-bounds accesses — docs/analysis.md);\n\
  \                          --stage picks the solver stage (default delta),\n\
  \                          --profile adds analysis.* metrics and the\n\
  \                          phase.analyze timer\n\
  \  eval [-l LANG] [--engine interp|vm] EXPR\n\
  \                          evaluate one expression (default language: racket)\n\
  \  repl [-l LANG]          interactive read-eval-print loop\n\
  \  serve [--socket PATH] [--cache-dir DIR] [--fuel N] [-j N] [--workers N]\n\
  \        [--session-ttl SECS] [--max-sessions N] [--faults PLAN]\n\
  \        [--engine interp|vm]\n\
  \                          start the compile server: a persistent daemon on\n\
  \                          a unix socket (default .liblang-server.sock) that\n\
  \                          keeps compiled state warm across requests and\n\
  \                          recompiles only modules whose files changed;\n\
  \                          --workers sizes the request-dispatch domain pool\n\
  \                          (default: cores-1 capped at 4), -j the per-request\n\
  \                          build jobs, --session-ttl/--max-sessions the idle-\n\
  \                          session eviction policy; clients may pipeline and\n\
  \                          cancel requests — protocol in docs/server.md\n\
  \  client [--socket PATH] (run|compile|expand|analyze) FILE...\n\
  \  client [--socket PATH] (status|shutdown)\n\
  \                          send requests to a running compile server; run,\n\
  \                          compile and expand mirror the local subcommands\n\
  \                          (same output, same exit codes); status prints the\n\
  \                          daemon's counters as JSON\n\
  \  langs                   list the registered languages\n\
  \  help                    print this message\n\n\
   exit codes: 0 success; 1 program diagnostics; 2 internal platform error;\n\
   64 usage error (unknown subcommand, malformed flags, missing arguments).\n\n\
   docs: docs/observability.md (profiling/tracing), docs/diagnostics.md (errors),\n\
  \ docs/architecture.md (pipeline map)."

let usage () =
  prerr_endline usage_text;
  exit 64

let help () =
  print_endline usage_text;
  exit 0

(* -- run -------------------------------------------------------------------- *)

type profile_mode = Profile_off | Profile_text | Profile_json

type run_opts = {
  mutable fuel : int option;
  mutable profile : profile_mode;
  mutable trace_file : string option;
  mutable verbosity : int;
  mutable cache_dir : string option;
  mutable jobs : int option;  (** [-j N]: worker domains for the build *)
  mutable faults : string option;  (** [--faults PLAN]: chaos testing *)
  mutable via_server : string option;
      (** [--via-server PATH]: route through the compile server on PATH *)
  mutable engine : Pipeline.engine;  (** [--engine interp|vm] *)
  mutable paths : string list;  (** reversed *)
}

let parse_run_opts args =
  let o =
    {
      fuel = None;
      profile = Profile_off;
      trace_file = None;
      verbosity = 1;
      cache_dir = None;
      jobs = None;
      faults = None;
      via_server = None;
      engine = Pipeline.Interp;
      paths = [];
    }
  in
  let set_jobs n =
    match int_of_string_opt n with Some n when n > 0 -> o.jobs <- Some n | _ -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "--fuel" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 0 ->
            o.fuel <- Some n;
            go rest
        | _ -> usage ())
    | "--fuel" :: [] -> usage ()
    | "-j" :: n :: rest ->
        set_jobs n;
        go rest
    | "-j" :: [] -> usage ()
    | flag :: rest when String.length flag > 2 && String.sub flag 0 2 = "-j" ->
        set_jobs (String.sub flag 2 (String.length flag - 2));
        go rest
    | "--profile" :: rest ->
        o.profile <- Profile_text;
        go rest
    | "--profile=json" :: rest ->
        o.profile <- Profile_json;
        go rest
    | "--trace" :: file :: rest ->
        o.trace_file <- Some file;
        go rest
    | "--trace" :: [] -> usage ()
    | "--cache" :: rest ->
        if o.cache_dir = None then o.cache_dir <- Some Liblang_core.Core.Compiled.Store.default_dir;
        go rest
    | "--cache-dir" :: dir :: rest ->
        o.cache_dir <- Some dir;
        go rest
    | "--cache-dir" :: [] -> usage ()
    | "--faults" :: plan :: rest ->
        o.faults <- Some plan;
        go rest
    | "--faults" :: [] -> usage ()
    | "--via-server" :: sock :: rest ->
        o.via_server <- Some sock;
        go rest
    | "--via-server" :: [] -> usage ()
    | "--engine" :: e :: rest -> (
        match Pipeline.engine_of_string e with
        | Some eng ->
            o.engine <- eng;
            go rest
        | None -> usage ())
    | "--engine" :: [] -> usage ()
    | "-v" :: rest ->
        o.verbosity <- max o.verbosity 1;
        go rest
    | "-vv" :: rest ->
        o.verbosity <- 2;
        go rest
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' -> usage ()
    | path :: rest ->
        o.paths <- path :: o.paths;
        go rest
  in
  go args;
  if o.paths = [] then usage ();
  (* install the fault plan before anything touches the store or spawns a
     pool; a malformed plan is a usage error, not a diagnostic *)
  (match o.faults with
  | None -> ()
  | Some spec -> (
      match Liblang_core.Core.Fault.parse spec with
      | Ok plan -> Liblang_core.Core.Fault.install (Some plan)
      | Error m ->
          Printf.eprintf "liblang: bad --faults plan: %s\n" m;
          exit 64));
  { o with paths = List.rev o.paths }

let has_suffix suf s =
  let ls = String.length s and l = String.length suf in
  ls >= l && String.sub s (ls - l) l = suf

(* Build the trace sink (if requested) and arrange for the profile and the
   trace to reach the user even when a file fails and we exit through
   [fail]. *)
let setup_observe (o : run_opts) =
  let metrics =
    match o.profile with Profile_off -> None | _ -> Some (Metrics.create ())
  in
  let trace =
    match o.trace_file with
    | None -> None
    | Some file ->
        let oc = open_out file in
        let format =
          if has_suffix ".json" file || has_suffix ".ndjson" file then Trace.Ndjson
          else Trace.Text
        in
        Some (Trace.make_sink ~format ~verbosity:o.verbosity oc)
  in
  at_exit (fun () ->
      (match (metrics, o.profile) with
      | Some c, Profile_json -> print_endline (Json.to_string ~pretty:true (Metrics.to_json c))
      | Some c, Profile_text -> prerr_string (Metrics.render c)
      | _ -> ());
      match trace with Some s -> flush s.Trace.out; close_out_noerr s.Trace.out | None -> ());
  (metrics, trace)

(* -- talking to a compile server --------------------------------------------- *)

let client_connect socket =
  match Client.connect socket with
  | Ok c -> c
  | Error m ->
      Printf.eprintf "liblang: %s\n" m;
      exit 2

(* The daemon resolves paths against its own cwd; canonicalize here so a
   client in any directory names the same module. *)
let abs_path p = Liblang_core.Core.Compiled.Resolver.module_key p

(* Print a response the way the equivalent local command would — raw
   program output to stdout, the rendered diagnostic report to stderr —
   and return the exit code it implies. *)
let print_response ~(print_output : bool) (r : (Json.t, string) result) : int =
  match r with
  | Error m ->
      Printf.eprintf "liblang: %s\n" m;
      2
  | Ok j ->
      if print_output then begin
        print_string (Client.output_of j);
        flush stdout
      end;
      if Client.ok_of j then 0
      else begin
        (match Client.rendered_of j with
        | Some r when r <> "" -> prerr_endline r
        | _ -> (
            match Client.error_of j with
            | Some e -> Printf.eprintf "liblang: %s\n" e
            | None -> ()));
        Client.exit_of j
      end

(* [run]/[expand] through a server connection: like the local commands,
   stop at the first failing file. *)
let run_via_server conn ~fuel paths =
  List.iter
    (fun path ->
      let code =
        print_response ~print_output:true
          (Client.request conn (Sproto.Run { path = abs_path path; fuel }))
      in
      if code <> 0 then exit code)
    paths

let expand_via_server conn paths =
  List.iter
    (fun path ->
      let code =
        print_response ~print_output:true
          (Client.request conn (Sproto.Expand { path = abs_path path }))
      in
      if code <> 0 then exit code)
    paths

let analyze_via_server conn paths =
  List.iter
    (fun path ->
      let code =
        print_response ~print_output:true
          (Client.request conn (Sproto.Analyze { path = abs_path path; stage = None }))
      in
      if code <> 0 then exit code)
    paths

(* [compile] through a server connection: the same per-file summary line
   as the local command, built from the response's [summary] object. *)
let compile_via_server conn ~jobs paths =
  let worst = ref 0 in
  List.iter
    (fun path ->
      match Client.request conn (Sproto.Compile { path = abs_path path; jobs }) with
      | Ok j when Client.ok_of j ->
          let s = Client.summary_count j in
          Printf.printf "compiled %s: modules=%d hits=%d compiles=%d stale=%d misses=%d\n"
            path (s "modules") (s "hits") (s "compiles") (s "stale") (s "misses")
      | r -> worst := max !worst (print_response ~print_output:false r))
    paths;
  if !worst > 0 then exit !worst

let cmd_run args =
  let o = parse_run_opts args in
  match o.via_server with
  | Some sock ->
      let conn = client_connect sock in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () -> run_via_server conn ~fuel:o.fuel o.paths)
  | None ->
      let metrics, trace = setup_observe o in
      let observe = { Observe.metrics; trace } in
      List.iter
        (fun path ->
          match
            Pipeline.run_file ?fuel:o.fuel ?cache_dir:o.cache_dir ?jobs:o.jobs ~observe
              ~engine:o.engine path
          with
          | Ok _ -> ()
          | Error ds -> fail ds)
        o.paths

(* -- compile ---------------------------------------------------------------- *)

(** [liblang compile]: compile each file (and everything it requires)
    through the artifact store, without instantiating, and print one
    machine-checkable summary line per file:
    [compiled FILE: modules=N hits=H compiles=C stale=S misses=M]. *)
let cmd_compile args =
  let o = parse_run_opts args in
  match o.via_server with
  | Some sock ->
      let conn = client_connect sock in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () -> compile_via_server conn ~jobs:o.jobs o.paths)
  | None ->
  let cache_dir =
    match o.cache_dir with
    | Some d -> d
    | None -> Liblang_core.Core.Compiled.Store.default_dir
  in
  let profile_c, trace = setup_observe o in
  let worst = ref 0 in
  List.iter
    (fun path ->
      (* a private collector per file, so the summary line reflects just
         this file's compilation; folded into the --profile report after *)
      let c = Metrics.create () in
      let observe = { Observe.metrics = Some c; trace } in
      (match Pipeline.compile_file ?fuel:o.fuel ~cache_dir ?jobs:o.jobs ~observe path with
      | Ok () ->
          let g = Metrics.get c in
          Printf.printf "compiled %s: modules=%d hits=%d compiles=%d stale=%d misses=%d\n"
            path
            (g "module.compiles" + g "module.cache_hits")
            (g "module.cache_hits") (g "module.compiles") (g "cache.stale")
            (g "cache.misses")
      | Error ds -> worst := max !worst (report ds));
      match profile_c with Some into -> Metrics.merge ~into c | None -> ())
    o.paths;
  if !worst > 0 then exit !worst

(* -- gen-modules ------------------------------------------------------------- *)

(** [liblang gen-modules [--dir DIR] [--shape wide|diamond|chain] N]:
    write an [N]-module synthetic project (macro-heavy modules over a
    require graph of the given shape) and print the root file and the
    number it displays when compiled and run correctly — the input for
    the parallel-build benchmarks and for trying [-j] by hand. *)
let cmd_gen_modules args =
  let module Genproj = Liblang_core.Core.Compiled.Genproj in
  let dir = ref "." and shape = ref Genproj.Wide and n = ref None in
  let rec go = function
    | [] -> ()
    | "--dir" :: d :: rest ->
        dir := d;
        go rest
    | "--dir" :: [] -> usage ()
    | "--shape" :: s :: rest -> (
        match Genproj.shape_of_string s with
        | Some sh ->
            shape := sh;
            go rest
        | None -> usage ())
    | "--shape" :: [] -> usage ()
    | arg :: rest -> (
        match int_of_string_opt arg with
        | Some k when k >= 1 && !n = None ->
            n := Some k;
            go rest
        | _ -> usage ())
  in
  go args;
  match !n with
  | None -> usage ()
  | Some n ->
      let root, checksum = Genproj.generate ~dir:!dir ~shape:!shape ~n () in
      Printf.printf "generated %d modules (%s) under %s\nroot: %s\nexpected output: %d\n" n
        (Genproj.shape_to_string !shape) !dir root checksum

(* -- serve / client ----------------------------------------------------------- *)

(** [liblang serve]: run the compile-server daemon in the foreground until
    a [shutdown] request arrives (see docs/server.md). *)
let cmd_serve args =
  let socket = ref Server.default_socket
  and cache = ref Liblang_core.Core.Compiled.Store.default_dir
  and fuel = ref None
  and jobs = ref 1
  and workers = ref (Server.default_workers ())
  and session_ttl = ref None
  and max_sessions = ref None
  and engine = ref Pipeline.Interp in
  let rec go = function
    | [] -> ()
    | "--socket" :: s :: rest ->
        socket := s;
        go rest
    | "--cache-dir" :: d :: rest ->
        cache := d;
        go rest
    | "--fuel" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 0 ->
            fuel := Some n;
            go rest
        | _ -> usage ())
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 0 ->
            jobs := n;
            go rest
        | _ -> usage ())
    | ("--workers" | "-w") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n > 0 ->
            workers := n;
            go rest
        | _ -> usage ())
    | "--session-ttl" :: s :: rest -> (
        match float_of_string_opt s with
        | Some t when t > 0.0 ->
            session_ttl := Some t;
            go rest
        | _ -> usage ())
    | "--max-sessions" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            max_sessions := Some n;
            go rest
        | _ -> usage ())
    | "--faults" :: plan :: rest -> (
        match Liblang_core.Core.Fault.parse plan with
        | Ok p ->
            Liblang_core.Core.Fault.install (Some p);
            go rest
        | Error m ->
            Printf.eprintf "liblang: bad --faults plan: %s\n" m;
            exit 64)
    | "--engine" :: e :: rest -> (
        match Pipeline.engine_of_string e with
        | Some eng ->
            engine := eng;
            go rest
        | None -> usage ())
    | _ -> usage ()
  in
  go args;
  let cfg =
    {
      Server.socket_path = !socket;
      cache_dir = !cache;
      workers = !workers;
      default_jobs = !jobs;
      fuel = !fuel;
      engine = !engine;
      session_ttl = !session_ttl;
      max_sessions = !max_sessions;
    }
  in
  match
    Server.serve
      ~on_ready:(fun _ ->
        Printf.printf "liblang server: listening on %s (cache %s, %d workers, pid %d)\n%!"
          !socket !cache (max 1 !workers) (Unix.getpid ()))
      cfg
  with
  | () -> print_endline "liblang server: shut down"
  | exception Failure m ->
      Printf.eprintf "liblang: %s\n" m;
      exit 2

(** [liblang client]: one-shot requests against a running daemon. *)
let cmd_client args =
  let socket = ref Server.default_socket in
  let rec flags = function
    | "--socket" :: s :: rest ->
        socket := s;
        flags rest
    | "--socket" :: [] -> usage ()
    | rest -> rest
  in
  let rest = flags args in
  let with_conn f =
    let conn = client_connect !socket in
    Fun.protect ~finally:(fun () -> Client.close conn) (fun () -> f conn)
  in
  (* an ok:false reply (a faulted session, a protocol error) is a failed
     command: report it and exit with the response's code, never pretend
     the request took effect *)
  let failed_reply j =
    Printf.eprintf "liblang: %s\n"
      (match Client.error_of j with Some m -> m | None -> "request failed");
    exit (Client.exit_of j)
  in
  match rest with
  | [ "status" ] ->
      with_conn (fun conn ->
          match Client.request conn Sproto.Status with
          | Ok j when Client.ok_of j ->
              let body =
                match Json.member "status" j with Some s -> s | None -> j
              in
              print_endline (Json.to_string ~pretty:true body)
          | Ok j -> failed_reply j
          | Error m ->
              Printf.eprintf "liblang: %s\n" m;
              exit 2)
  | [ "shutdown" ] ->
      with_conn (fun conn ->
          match Client.request conn Sproto.Shutdown with
          | Ok j when Client.ok_of j -> print_endline "liblang server: shut down"
          | Ok j -> failed_reply j
          | Error m ->
              Printf.eprintf "liblang: %s\n" m;
              exit 2)
  | "run" :: (_ :: _ as paths) -> with_conn (fun conn -> run_via_server conn ~fuel:None paths)
  | "compile" :: (_ :: _ as paths) ->
      with_conn (fun conn -> compile_via_server conn ~jobs:None paths)
  | "expand" :: (_ :: _ as paths) -> with_conn (fun conn -> expand_via_server conn paths)
  | "analyze" :: (_ :: _ as paths) -> with_conn (fun conn -> analyze_via_server conn paths)
  | _ -> usage ()

(* -- other subcommands ------------------------------------------------------- *)

let cmd_expand path =
  match Pipeline.slurp path with
  | exception Sys_error m ->
      (* like every other failure: a located diagnostic through the
         renderer, not a bare eprintf *)
      fail [ Diagnostic.error ~phase:Diagnostic.Module ("cannot read file: " ^ m) ]
  | source -> (
      let name = Filename.remove_extension (Filename.basename path) in
      match Pipeline.expand ~name source with
      | Ok forms -> List.iter print_endline forms
      | Error ds -> fail ds)

(* [analyze]: expand to core forms, run the 0CFA flow analysis, print the
   fact report.  Diagnostics only — the analysis never rejects a program,
   so the exit code is 0 unless expansion itself failed. *)
let cmd_analyze args =
  let stage = ref None and profile = ref Profile_off and path = ref None in
  let rec go = function
    | [] -> ()
    | "--stage" :: s :: rest -> (
        match Liblang_core.Core.Zcfa.stage_of_string s with
        | Some st ->
            stage := Some st;
            go rest
        | None -> usage ())
    | "--stage" :: [] -> usage ()
    | "--profile" :: rest ->
        profile := Profile_text;
        go rest
    | "--profile=json" :: rest ->
        profile := Profile_json;
        go rest
    | p :: rest when !path = None && (p = "" || p.[0] <> '-') ->
        path := Some p;
        go rest
    | _ -> usage ()
  in
  go args;
  match !path with
  | None -> usage ()
  | Some path -> (
      match Pipeline.slurp path with
      | exception Sys_error m ->
          fail [ Diagnostic.error ~phase:Diagnostic.Module ("cannot read file: " ^ m) ]
      | source -> (
          let metrics =
            match !profile with Profile_off -> None | _ -> Some (Metrics.create ())
          in
          at_exit (fun () ->
              match (metrics, !profile) with
              | Some c, Profile_json ->
                  print_endline (Json.to_string ~pretty:true (Metrics.to_json c))
              | Some c, Profile_text -> prerr_string (Metrics.render c)
              | _ -> ());
          let observe = { Observe.metrics; trace = None } in
          let name = Filename.remove_extension (Filename.basename path) in
          match Pipeline.analyze ~name ?stage:!stage ~observe source with
          | Ok lines -> List.iter print_endline lines
          | Error ds -> fail ds))

let cmd_eval args =
  let lang = ref "racket" and engine = ref Pipeline.Interp and expr = ref None in
  let rec go = function
    | [] -> ()
    | "-l" :: l :: rest ->
        lang := l;
        go rest
    | "-l" :: [] -> usage ()
    | "--engine" :: e :: rest -> (
        match Pipeline.engine_of_string e with
        | Some eng ->
            engine := eng;
            go rest
        | None -> usage ())
    | "--engine" :: [] -> usage ()
    | e :: rest when !expr = None ->
        expr := Some e;
        go rest
    | _ -> usage ()
  in
  go args;
  match !expr with
  | None -> usage ()
  | Some expr -> (
      match Pipeline.eval ~lang:!lang ~engine:!engine expr with
      | Ok v -> print_endline (Value.write_string v)
      | Error ds -> fail ds)

let cmd_langs () =
  (* every builtin language *)
  List.iter print_endline
    [ "racket"; "typed/racket (aliases: typed, simple-type)"; "count"; "lazy"; "limited" ]

let cmd_repl lang =
  Printf.printf "liblang repl (#lang %s); ctrl-d to exit\n" lang;
  let buf = Buffer.create 256 in
  let balanced s =
    let depth = ref 0 and in_str = ref false in
    String.iteri
      (fun i c ->
        if !in_str then (if c = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false)
        else
          match c with
          | '"' -> in_str := true
          | '(' | '[' -> incr depth
          | ')' | ']' -> decr depth
          | _ -> ())
      s;
    !depth <= 0 && not !in_str
  in
  try
    while true do
      if Buffer.length buf = 0 then print_string "> " else print_string "  ";
      flush stdout;
      let line = input_line stdin in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.trim text <> "" && balanced text then begin
        Buffer.clear buf;
        match Pipeline.eval ~lang text with
        | Ok v -> if v <> Value.Void then print_endline (Value.write_string v)
        | Error ds -> ignore (report ds)
      end
    done
  with End_of_file -> print_newline ()

let () =
  Liblang_core.Core.init ();
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "run" :: (_ :: _ as rest) -> cmd_run rest
  | _ :: "compile" :: (_ :: _ as rest) -> cmd_compile rest
  | _ :: "gen-modules" :: (_ :: _ as rest) -> cmd_gen_modules rest
  | _ :: "serve" :: rest -> cmd_serve rest
  | _ :: "client" :: (_ :: _ as rest) -> cmd_client rest
  | [ _; "expand"; path ] -> cmd_expand path
  | _ :: "analyze" :: (_ :: _ as rest) -> cmd_analyze rest
  | _ :: "eval" :: (_ :: _ as rest) -> cmd_eval rest
  | [ _; "repl"; "-l"; lang ] -> cmd_repl lang
  | [ _; "repl" ] -> cmd_repl "racket"
  | [ _; "langs" ] -> cmd_langs ()
  | [ _; "help" ] | [ _; "--help" ] | [ _; "-h" ] -> help ()
  | _ -> usage ()
