(** Expander tests: macros, hygiene, [syntax-rules] ellipses, phase-1
    procedural macros, [local-expand], syntax properties across rewriting,
    and the implicit [#%app] / [#%datum] hooks. *)

open Liblang_core.Core
open Test_util

let syntax_rules =
  [
    t_run "simple rule" "#lang racket\n(define-syntax-rule (twice e) (begin e e))\n(twice (display 1))" "11";
    t_run "rule with multiple pattern vars"
      "#lang racket\n(define-syntax-rule (swap-args f a b) (f b a))\n(display (swap-args - 1 10))" "9";
    t_run "ellipsis basic"
      "#lang racket\n(define-syntax my-list (syntax-rules () [(_ x ...) (list x ...)]))\n(display (my-list 1 2 3))"
      "(1 2 3)";
    t_run "ellipsis empty"
      "#lang racket\n(define-syntax my-list (syntax-rules () [(_ x ...) (list x ...)]))\n(display (my-list))"
      "()";
    t_run "ellipsis pairs"
      "#lang racket\n(define-syntax sums (syntax-rules () [(_ (a b) ...) (list (+ a b) ...)]))\n(display (sums (1 2) (3 4) (5 6)))"
      "(3 7 11)";
    t_run "ellipsis with tail pattern"
      "#lang racket\n(define-syntax keep-last (syntax-rules () [(_ x ... y) y]))\n(display (keep-last 1 2 3))"
      "3";
    t_run "nested ellipses"
      "#lang racket\n(define-syntax flat (syntax-rules () [(_ ((x ...) ...)) (list x ... ...)]))\n(display (flat ((1 2) (3) ())))"
      "(1 2 3)";
    t_run "template reuses var twice"
      "#lang racket\n(define-syntax dup (syntax-rules () [(_ x) (list x x)]))\n(display (dup (+ 1 2)))"
      "(3 3)";
    t_run "multiple rules first match wins"
      "#lang racket\n(define-syntax m (syntax-rules () [(_ ) 'zero] [(_ a) 'one] [(_ a b) 'two]))\n(display (list (m) (m 1) (m 1 2)))"
      "(zero one two)";
    t_run "literals match by binding"
      "#lang racket\n(define-syntax at (syntax-rules (=>) [(_ a => b) (list a b)] [(_ a b) 'no-arrow]))\n(display (list (at 1 => 2) (at 1 2)))"
      "((1 2) no-arrow)";
    t_run "recursive macro"
      "#lang racket\n(define-syntax my-and (syntax-rules () [(_) #t] [(_ e) e] [(_ e r ...) (if e (my-and r ...) #f)]))\n(display (list (my-and) (my-and 1 2) (my-and 1 #f 2)))"
      "(#t 2 #f)";
    t_run "dotted pattern"
      "#lang racket\n(define-syntax headof (syntax-rules () [(_ (h . t)) 'h]))\n(display (headof (a b c)))"
      "a";
    t_err "no matching pattern"
      "#lang racket\n(define-syntax one-arg (syntax-rules () [(_ x) x]))\n(one-arg 1 2)"
      "no matching syntax-rules pattern";
    t_err "mismatched ellipsis depth"
      "#lang racket\n(define-syntax bad (syntax-rules () [(_ x ...) x]))\n(bad 1 2)"
      "ellipsis";
  ]

let hygiene =
  [
    t_run "macro temp does not capture user var"
      "#lang racket\n(define-syntax-rule (or2 a b) (let ([t a]) (if t t b)))\n(define t 42)\n(display (or2 #f t))"
      "42";
    Alcotest.test_case "macro from another module keeps its own references" `Quick (fun () ->
        let srv = fresh "hyg-srv" in
        declare ~name:srv "#lang racket\n(provide five)\n(define-syntax-rule (five) (+ 2 3))";
        (* the client shadows +, but the imported macro still sees racket's + *)
        check_s "definition-site reference" "5"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(define + *)\n(display (five))" srv)));
    t_run "module-level shadowing applies to locally-defined macros (Racket semantics)"
      "#lang racket\n(define-syntax-rule (five) (+ 2 3))\n(define + *)\n(display (five))"
      "6";
    t_run "nested macro uses stay separate"
      "#lang racket\n(define-syntax-rule (m x) (let ([v 1]) (+ v x)))\n(display (m (m 10)))"
      "12";
    t_run "swap classic"
      "#lang racket\n(define-syntax-rule (swap! a b) (let ([tmp a]) (set! a b) (set! b tmp)))\n(define tmp 1)(define b 2)\n(swap! tmp b)\n(display (list tmp b))"
      "(2 1)";
    t_run "macro-introduced binder visible to macro-introduced reference"
      "#lang racket\n(define-syntax-rule (with-hundred e) (let ([h 100]) e))\n(display (with-hundred 5))"
      "5";
    t_run "macro defining macro"
      "#lang racket\n(define-syntax-rule (def-const name v) (define-syntax-rule (name) v))\n(def-const seven 7)\n(display (seven))"
      "7";
  ]

let procedural =
  [
    t_run "phase-1 procedure with quasisyntax"
      "#lang racket\n(define-syntax (double stx)\n  (let ([arg (cadr (syntax->list stx))])\n    #`(+ #,arg #,arg)))\n(display (double 21))"
      "42";
    t_run "phase-1 computation happens at compile time"
      "#lang racket\n(define-syntax (compile-time-sum stx)\n  #`(quote #,(datum->syntax stx (+ 2 3))))\n(display (compile-time-sum))"
      "5";
    t_run "syntax-e and syntax->datum"
      "#lang racket\n(define-syntax (count-args stx)\n  #`(quote #,(datum->syntax stx (length (cdr (syntax->list stx))))))\n(display (count-args a b c))"
      "3";
    t_run "unsyntax-splicing"
      "#lang racket\n(define-syntax (rev stx)\n  (let ([args (cdr (syntax->list stx))])\n    #`(list #,@(reverse args))))\n(display (rev 1 2 3))"
      "(3 2 1)";
    t_run "free-identifier=? in a transformer"
      "#lang racket\n(define-syntax (is-plus? stx)\n  (let ([id (cadr (syntax->list stx))])\n    (if (free-identifier=? id #'+) #''yes #''no)))\n(display (list (is-plus? +) (is-plus? -)))"
      "(yes no)";
    t_run "syntax-property round trip through phase 1"
      "#lang racket\n(define-syntax (tag stx)\n  (let ([e (cadr (syntax->list stx))])\n    (syntax-property-put e 'color #'red)))\n(define-syntax (read-tag stx)\n  (let ([e (cadr (syntax->list stx))])\n    (let ([c (syntax-property-get (local-expand e 'expression '()) 'color)])\n      (if c #''tagged #''plain))))\n(display (read-tag (tag 5)))"
      "tagged";
    t_err "transformer returning non-syntax"
      "#lang racket\n(define-syntax (bad stx) 42)\n(bad)"
      "transformer";
    t_err "runaway macro"
      "#lang racket\n(define-syntax (loop stx) stx)\n(loop)"
      "exhausted its fuel budget";
  ]

let local_expand_tests =
  [
    Alcotest.test_case "local-expand reaches core forms" `Quick (fun () ->
        let out = expand_expr_string "(let ([x 1]) (when x (displayln x)))" in
        check_b "has let-values" true (contains out "let-values");
        check_b "has if" true (contains out "(if ");
        check_b "no when left" false (contains out "(when "));
    Alcotest.test_case "expansion wraps literals in quote" `Quick (fun () ->
        check_s "lit" "'5" (expand_expr_string "5"));
    Alcotest.test_case "application becomes #%plain-app" `Quick (fun () ->
        check_s "app" "(#%plain-app + '1 '2)" (expand_expr_string "(+ 1 2)"));
    Alcotest.test_case "lambda becomes #%plain-lambda" `Quick (fun () ->
        check_b "plain-lambda" true
          (contains (expand_expr_string "(lambda (x) x)") "#%plain-lambda"));
    t_run "local-expand from phase 1 sees through macros"
      "#lang racket\n(define-syntax-rule (function args body) (lambda args body))\n(define-syntax (is-lambda? stx)\n  (let ([e (cadr (syntax->list stx))])\n    (let ([core (local-expand e 'expression '())])\n      (let ([head (car (syntax->list core))])\n        (if (free-identifier=? head #'#%plain-lambda) #''yes #''no)))))\n(display (list (is-lambda? (lambda (x) x)) (is-lambda? (function (x) x)) (is-lambda? (+ 1 2))))"
      "(yes yes no)";
  ]

(* A language can rebind the implicit hooks: #%app (seen in the lazy
   language) and #%datum. *)
let hooks =
  [
    t_run "#%app hook: lazy application" "#lang lazy\n(define (k x) 'constant)\n(display (k (error \"not evaluated\")))"
      "constant";
    Alcotest.test_case "#%datum hook: a language that doubles literals" `Quick (fun () ->
        let doubler form =
          match Stx.to_list form with
          | Some [ _; lit ] -> (
              match Stx.view lit with
              | Stx.Atom (Datum.Int n) ->
                  Stx.list [ Expander.core_id "quote"; Stx.int_ (2 * n) ]
              | _ -> Stx.list [ Expander.core_id "quote"; lit ])
          | _ -> failwith "bad #%datum use"
        in
        let name = fresh "doubling-lang" in
        let _m, _ =
          Modsys.declare_builtin ~name
            ~reexports:
              (List.filter_map
                 (fun (e : Modsys.export) ->
                   if e.Modsys.ext_name = "#%datum" then None
                   else Some (e.Modsys.ext_name, e.Modsys.binding))
                 (Modsys.find "racket").Modsys.exports)
            ~macros:[ ("#%datum", Denote.Native ("#%datum", doubler)) ]
            ()
        in
        let out = run_string (Printf.sprintf "#lang %s\n(display (+ 1 2))\n" name) in
        (* 1 and 2 read as 2 and 4 *)
        check_s "doubled literals" "6" out);
  ]

(* Syntax properties survive macro rewriting (the §3.1 requirement). *)
let out_of_band =
  [
    (* expansion is outside-in, so the observer must local-expand its
       argument before reading the inner macro's out-of-band annotation —
       exactly the discipline of §3.1 + §2.2 *)
    t_run "define: style annotation survives to a later observer"
      "#lang racket\n(define-syntax (annotate stx)\n  (let ([e (cadr (syntax->list stx))])\n    (syntax-property-put e 'note #'hello)))\n(define-syntax (observe stx)\n  (let ([e (cadr (syntax->list stx))])\n    (let ([n (syntax-property-get (local-expand e 'expression '()) 'note)])\n      (if n #`(quote #,n) #''missing))))\n(display (observe (annotate 42)))"
      "hello";
  ]

let module_body =
  [
    t_run "definitions may come after uses (two-pass)"
      "#lang racket\n(define (f) (g))\n(define (g) 'late)\n(display (f))"
      "late";
    t_run "macros usable before their definition site in same module... (forward macro)"
      "#lang racket\n(define (user) (m))\n(define-syntax-rule (m) 'expanded)\n(display (user))"
      "expanded";
    t_run "begin splices at module level"
      "#lang racket\n(begin (define a 1) (define b 2))\n(display (+ a b))"
      "3";
    t_run "begin-for-syntax runs at compile time"
      "#lang racket\n(begin-for-syntax (void))\n(display 'ok)"
      "ok";
    t_err "define in expression position" "#lang racket\n(display (define x 1))"
      "not allowed in an expression context";
    t_err "set! of unbound" "#lang racket\n(set! nope 1)" "unbound";
    t_err "set! of macro" "#lang racket\n(define-syntax-rule (m) 1)\n(set! m 2)" "syntactic";
  ]

let suite =
  syntax_rules @ hygiene @ procedural @ local_expand_tests @ hooks @ out_of_band @ module_body
