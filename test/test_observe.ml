(** Tests for the observability subsystem (lib/observe/): exact metric
    counters on known programs, JSON round-trips, trace output shape, and
    the zero-cost-when-off guarantee on the interpreter's hot path. *)

open Test_util
module Pipeline = Liblang_core.Pipeline
module Observe = Liblang_observe.Observe
module Metrics = Liblang_observe.Metrics
module Trace = Liblang_observe.Trace
module Json = Liblang_observe.Json

(** Run [src] as a #lang program under a fresh metrics collector; return
    the collector.  Fails the test if the program itself fails. *)
let metrics_of ?name src : Metrics.t =
  let c = Metrics.create () in
  let name = match name with Some n -> n | None -> fresh "observe" in
  (match
     Pipeline.run ~name ~observe:{ Observe.metrics = Some c; trace = None } src
   with
  | Ok _ -> ()
  | Error ds ->
      Alcotest.failf "program failed: %s"
        (String.concat "; " (List.map Liblang_core.Core.Diagnostic.to_string ds)));
  c

(* total JSON accessors (Json.member/to_num/to_str are optional) *)
let mem key j =
  match Json.member key j with Some v -> v | None -> Alcotest.failf "missing JSON key %S" key

let num j = match Json.to_num j with Some f -> f | None -> Alcotest.fail "expected JSON number"
let str j = match Json.to_str j with Some s -> s | None -> Alcotest.fail "expected JSON string"

(* -- exact counters on known programs ---------------------------------------- *)

(* A macro used exactly 3 times expands exactly 3 times (plus whatever
   recursive uses the expansion itself introduces: none here). *)
let macro_counts_exact () =
  let c =
    metrics_of
      "#lang racket\n\
       (define-syntax-rule (twice e) (begin e e))\n\
       (twice (void))\n\
       (twice (void))\n\
       (twice (void))\n"
  in
  check_i "expand.macro.twice" 3 (Metrics.get c "expand.macro.twice")

(* A recursive macro: (rep n e) unfolds n+1 times (n recursive steps plus
   the base case). *)
let recursive_macro_counts () =
  let c =
    metrics_of
      "#lang racket\n\
       (define-syntax rep\n\
      \  (syntax-rules ()\n\
      \    [(_ 0 e) (void)]\n\
      \    [(_ n e) (begin e (rep 0 e))]))\n\
       (rep 5 (void))\n"
  in
  (* (rep 5 e) -> (begin e (rep 0 e)) -> (void): 2 applications *)
  check_i "expand.macro.rep" 2 (Metrics.get c "expand.macro.rep")

(* Optimizer rewrites are mirrored one-for-one into optimize.<rule>
   counters: one flonum addition in a typed module fires fl:+ exactly
   once. *)
let optimizer_counts_exact () =
  let c =
    metrics_of
      "#lang typed/racket\n\
       (define (f [x : Float]) : Float (+ x 1.0))\n\
       (display (f 1.0))\n"
  in
  check_i "optimize.fl:+" 1 (Metrics.get c "optimize.fl:+")

(* Phase timers exist for every pipeline phase the program exercises. *)
let phase_timers_present () =
  let c =
    metrics_of
      "#lang typed/racket\n(define (f [x : Float]) : Float (+ x 1.0))\n(display (f 1.0))\n"
  in
  List.iter
    (fun phase ->
      let key = "phase." ^ phase in
      if Metrics.get_ms c key <= 0.0 then Alcotest.failf "no time recorded under %s" key)
    [ "read"; "expand"; "typecheck"; "optimize"; "compile"; "instantiate" ]

(* Module-system counters: one compile, one instantiation; re-declaring
   the same module name counts a re-expansion. *)
let module_counters () =
  let name = fresh "observe-mod" in
  let src = "#lang racket\n(display 1)\n" in
  let c1 = metrics_of ~name src in
  check_i "module.compiles" 1 (Metrics.get c1 "module.compiles");
  check_i "module.instantiations" 1 (Metrics.get c1 "module.instantiations");
  check_i "module.reexpansions" 0 (Metrics.get c1 "module.reexpansions");
  (* same name again: a cache-less re-expansion *)
  let c2 = metrics_of ~name src in
  check_i "module.reexpansions" 1 (Metrics.get c2 "module.reexpansions")

(* The interpreter's hot-path counter records runtime applications. *)
let interp_apps_counted () =
  let c = metrics_of "#lang racket\n(define (f x) (if (= x 0) 0 (f (- x 1))))\n(display (f 100))\n" in
  let apps = c.Metrics.interp_apps in
  if apps < 100 then Alcotest.failf "expected >= 100 interp apps, got %d" apps

(* -- JSON -------------------------------------------------------------------- *)

(* Metrics.to_json round-trips through the parser with counters intact —
   the same path `liblang run --profile=json` output takes. *)
let profile_json_roundtrip () =
  let c =
    metrics_of
      "#lang racket\n(define-syntax-rule (twice e) (begin e e))\n(twice (void))\n(twice (void))\n"
  in
  let text = Json.to_string ~pretty:true (Metrics.to_json c) in
  match Json.parse text with
  | Error m -> Alcotest.failf "profile JSON does not parse: %s" m
  | Ok j ->
      let n = num (mem "expand.macro.twice" (mem "counters" j)) in
      check_i "round-tripped counter" 2 (int_of_float n)

let json_parser_basics () =
  let cases =
    [
      ("null", Json.Null);
      ("true", Json.Bool true);
      ("-2.5", Json.Num (-2.5));
      ({|"a\nb"|}, Json.Str "a\nb");
      ("[1,2]", Json.Arr [ Json.Num 1.0; Json.Num 2.0 ]);
      ({|{"k":"v"}|}, Json.Obj [ ("k", Json.Str "v") ]);
    ]
  in
  List.iter
    (fun (text, expect) ->
      match Json.parse text with
      | Ok j when j = expect -> ()
      | Ok j -> Alcotest.failf "%s parsed to %s" text (Json.to_string j)
      | Error m -> Alcotest.failf "%s: %s" text m)
    cases;
  (match Json.parse "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted")

(* -- tracing ----------------------------------------------------------------- *)

(* An NDJSON trace of a run is one JSON object per line, with balanced
   enter/exit events and macro events at -vv. *)
let ndjson_trace_shape () =
  let path = Filename.temp_file "liblang-trace" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      let sink = Trace.make_sink ~format:Trace.Ndjson ~verbosity:2 oc in
      (match
         Pipeline.run ~name:(fresh "observe-trace")
           ~observe:{ Observe.metrics = None; trace = Some sink }
           "#lang racket\n(define-syntax-rule (twice e) (begin e e))\n(twice (void))\n"
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "traced program failed");
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let events =
        List.rev_map
          (fun line ->
            match Json.parse line with
            | Ok j -> j
            | Error m -> Alcotest.failf "trace line is not JSON: %s (%s)" line m)
          !lines
      in
      let ev_of j = str (mem "ev" j) in
      let count p = List.length (List.filter p events) in
      let enters = count (fun j -> ev_of j = "enter")
      and exits = count (fun j -> ev_of j = "exit")
      and macros = count (fun j -> ev_of j = "macro") in
      check_i "enter/exit balanced" enters exits;
      if enters = 0 then Alcotest.fail "no spans traced";
      if macros < 1 then Alcotest.fail "no -vv macro events traced";
      (* the macro event names the macro *)
      let named =
        List.exists
          (fun j -> ev_of j = "macro" && str (mem "name" j) = "twice")
          events
      in
      check_b "macro event names 'twice'" true named)

(* -- zero-cost-when-off ------------------------------------------------------- *)

(* With no collector installed, the hot-path hooks must not allocate: the
   whole point of the ambient-ref design is that instrumentation left in
   shipping code costs a compare-and-branch, not garbage. *)
let off_means_no_allocation () =
  Metrics.with_opt None (fun () ->
      (* warm up (first call may trigger lazy init elsewhere) *)
      for _ = 1 to 100 do
        Metrics.bump_apps ()
      done;
      let w0 = Gc.minor_words () in
      for _ = 1 to 100_000 do
        Metrics.bump_apps ()
      done;
      let dw = Gc.minor_words () -. w0 in
      (* tolerance: the two Gc.minor_words calls themselves box a float *)
      if dw > 64.0 then
        Alcotest.failf "bump_apps with no collector allocated %.0f words per 100k calls" dw)

(* ...and a full program run with observation off leaves the ambient slots
   empty (nothing installed globally as a side effect). *)
let off_leaves_no_residue () =
  ignore (run "#lang racket\n(display 1)\n");
  check_b "no ambient collector" false (Metrics.installed ());
  check_b "no ambient trace sink" false (Trace.installed ())

(* -- suite -------------------------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case "macro counters are exact" `Quick macro_counts_exact;
    Alcotest.test_case "recursive macro counters" `Quick recursive_macro_counts;
    Alcotest.test_case "optimizer rewrite counters are exact" `Quick optimizer_counts_exact;
    Alcotest.test_case "all phase timers recorded" `Quick phase_timers_present;
    Alcotest.test_case "module compile/instantiate/re-expand counters" `Quick module_counters;
    Alcotest.test_case "interpreter applications counted" `Quick interp_apps_counted;
    Alcotest.test_case "profile JSON round-trips" `Quick profile_json_roundtrip;
    Alcotest.test_case "JSON parser basics" `Quick json_parser_basics;
    Alcotest.test_case "NDJSON trace is well-formed" `Quick ndjson_trace_shape;
    Alcotest.test_case "hooks allocate nothing when off" `Quick off_means_no_allocation;
    Alcotest.test_case "observation leaves no ambient residue" `Quick off_leaves_no_residue;
  ]
