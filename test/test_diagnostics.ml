(** Tests for the fault-contained pipeline: multi-error reporting, fuel
    exhaustion, cyclic requires, and diagnostic rendering. *)

open Test_util
module P = Liblang_core.Pipeline
module D = Liblang_core.Core.Diagnostic
module Srcloc = Liblang_core.Core.Srcloc
module Sources = Liblang_core.Core.Sources
module Render = Liblang_core.Core.Render

let errors_of src =
  match P.run ~name:(fresh "diag") src with
  | Ok _ -> Alcotest.fail "expected diagnostics, program succeeded"
  | Error ds -> ds

let errors_of_fueled ~fuel src =
  match P.run ~fuel ~name:(fresh "diag") src with
  | Ok _ -> Alcotest.fail "expected diagnostics, program succeeded"
  | Error ds -> ds

let msg_of (d : D.t) = D.to_string d

let assert_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: expected %S within %S" what needle hay

let multi_error_tests =
  [
    Alcotest.test_case "three type errors in one run" `Quick (fun () ->
        let ds =
          errors_of
            "#lang typed/racket\n\
             (define a : Integer 3.7)\n\
             (define b : String 42)\n\
             (define c : Boolean \"no\")\n\
             (display \"done\")"
        in
        let tys = List.filter (fun d -> d.D.phase = D.Typecheck) ds in
        check_i "three typecheck diagnostics" 3 (List.length tys);
        (* stable source order: lines 2, 3, 4 *)
        let lines = List.map (fun d -> d.D.loc.Srcloc.line) tys in
        Alcotest.(check (list int)) "source order" [ 2; 3; 4 ] lines;
        assert_contains "first" (msg_of (List.nth tys 0)) "expected Integer, got Float";
        assert_contains "second" (msg_of (List.nth tys 1)) "expected String, got Integer";
        assert_contains "third" (msg_of (List.nth tys 2)) "expected Boolean, got String");
    Alcotest.test_case "type errors do not abort checking of later forms" `Quick
      (fun () ->
        (* an error in the middle still lets the checker find the one at the end *)
        let ds =
          errors_of
            "#lang typed/racket\n\
             (define ok : Integer 1)\n\
             (define bad1 : Integer \"mid\")\n\
             (define also-ok : String \"s\")\n\
             (define bad2 : String 5)"
        in
        check_i "two diagnostics" 2
          (List.length (List.filter (fun d -> d.D.phase = D.Typecheck) ds)));
    Alcotest.test_case "reader reports several parse errors in one pass" `Quick
      (fun () ->
        let ds =
          errors_of "#lang racket\n#\\bogusone\n(display 1)\n#\\bogustwo\n(display 2)"
        in
        let rs = List.filter (fun d -> d.D.phase = D.Reader) ds in
        check_i "two reader diagnostics" 2 (List.length rs);
        assert_contains "first" (msg_of (List.nth rs 0)) "bogusone";
        assert_contains "second" (msg_of (List.nth rs 1)) "bogustwo");
    Alcotest.test_case "read_all_recovering never raises" `Quick (fun () ->
        let module R = Liblang_core.Core.Reader in
        let datums, errs = R.read_all_recovering ")( oops #\\nope (fine) \"open" in
        check_b "some datums recovered" true (List.length datums >= 1);
        check_b "some errors collected" true (List.length errs >= 2));
  ]

let fuel_tests =
  [
    Alcotest.test_case "divergent syntax-rules macro is cut off" `Quick (fun () ->
        let ds =
          errors_of
            "#lang racket\n(define-syntax loop (syntax-rules () ((_) (loop))))\n(loop)"
        in
        check_i "one diagnostic" 1 (List.length ds);
        let m = msg_of (List.hd ds) in
        assert_contains "names the macro" m "while expanding macro loop";
        assert_contains "blames fuel" m "exhausted its fuel budget";
        check_b "located" true (not (Srcloc.is_none (List.hd ds).D.loc)));
    Alcotest.test_case "divergent procedural transformer is cut off" `Quick (fun () ->
        let ds =
          errors_of "#lang racket\n(define-syntax (loop stx) stx)\n(loop)"
        in
        assert_contains "fuel message" (msg_of (List.hd ds)) "exhausted its fuel budget");
    Alcotest.test_case "divergent phase-1 evaluation is cut off" `Quick (fun () ->
        let ds =
          errors_of_fueled ~fuel:100_000
            "#lang racket\n(define-syntax bad ((lambda (f) (f f)) (lambda (f) (f f))))"
        in
        assert_contains "compile-time fuel message" (msg_of (List.hd ds))
          "compile-time evaluation exhausted its fuel budget");
    Alcotest.test_case "runtime divergence is cut off by ?fuel" `Quick (fun () ->
        let ds =
          errors_of_fueled ~fuel:50_000 "#lang racket\n(define (spin) (spin))\n(spin)"
        in
        let m = msg_of (List.hd ds) in
        check_b "runtime phase" true ((List.hd ds).D.phase = D.Runtime);
        assert_contains "fuel message" m "exhausted its fuel budget");
    Alcotest.test_case "fuel does not fire on terminating programs" `Quick (fun () ->
        match P.run ~fuel:1_000_000 ~name:(fresh "diag") "#lang racket\n(+ 1 2)" with
        | Ok _ -> ()
        | Error ds -> Alcotest.failf "unexpected diagnostics: %s" (msg_of (List.hd ds)));
    Alcotest.test_case "deep nesting trips the depth guard, not the stack" `Quick
      (fun () ->
        let n = 6_000 in
        let src =
          "#lang racket\n" ^ String.concat "" (List.init n (fun _ -> "(")) ^ "+ 1 1"
          ^ String.concat "" (List.init n (fun _ -> ")"))
        in
        let ds = errors_of src in
        assert_contains "depth guard" (msg_of (List.hd ds)) "recursion too deep");
  ]

let module_tests =
  [
    Alcotest.test_case "self require reports the cycle path" `Quick (fun () ->
        let name = fresh "cycle" in
        (match P.run ~name (Printf.sprintf "#lang racket\n(require %s)" name) with
        | Ok _ -> Alcotest.fail "expected a cyclic-require diagnostic"
        | Error ds ->
            let m = msg_of (List.hd ds) in
            assert_contains "cycle path" m
              (Printf.sprintf "cyclic require: %s -> %s" name name)));
    Alcotest.test_case "missing #lang line is a module diagnostic" `Quick (fun () ->
        let ds = errors_of "(display 1)" in
        check_b "module phase" true ((List.hd ds).D.phase = D.Module);
        assert_contains "message" (msg_of (List.hd ds)) "#lang");
    Alcotest.test_case "unknown exceptions surface as internal diagnostics" `Quick
      (fun () ->
        match P.contain (fun () -> raise Exit) with
        | Ok _ -> Alcotest.fail "expected Error"
        | Error ds ->
            check_i "one diagnostic" 1 (List.length ds);
            check_b "internal" true (D.is_internal (List.hd ds)));
  ]

let render_tests =
  [
    Alcotest.test_case "renderer shows excerpt with caret underline" `Quick (fun () ->
        Sources.register ~file:"caret-test" "#lang typed/racket\n(define x : Integer 3.7)\n";
        let d =
          D.error ~phase:D.Typecheck
            ~loc:{ Srcloc.file = "caret-test"; line = 2; col = 20; pos = 39; span = 3 }
            "wrong type: expected Integer, got Float"
        in
        let s = Render.render d in
        assert_contains "header" s "caret-test:2:20: typecheck error";
        assert_contains "excerpt" s "2 | (define x : Integer 3.7)";
        assert_contains "caret" s "^^^");
    Alcotest.test_case "render_all counts errors" `Quick (fun () ->
        let d = D.error ~phase:D.Runtime "boom" in
        assert_contains "summary" (Render.render_all [ d; d ]) "2 errors generated");
    Alcotest.test_case "reporter caps accumulated errors" `Quick (fun () ->
        let module Rep = Liblang_core.Core.Reporter in
        let r = Rep.create ~max_errors:3 () in
        for i = 1 to 10 do
          Rep.report r (D.error ~phase:D.Typecheck (Printf.sprintf "e%d" i))
        done;
        check_i "counted all" 10 (Rep.error_count r);
        let ds = Rep.diagnostics r in
        (* 3 kept + 1 "more errors not shown" note *)
        check_i "capped" 4 (List.length ds);
        assert_contains "truncation note" (msg_of (List.nth ds 3)) "not shown");
  ]

let suite = multi_error_tests @ fuel_tests @ module_tests @ render_tests
