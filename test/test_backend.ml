(** The bytecode backend (lib/backend/): engine parity against the
    closure-tree interpreter, the IL's encode/decode round-trip, and the
    VM's observability counters.

    Parity is the backend's prime directive (docs/backend.md): the
    cases here pin the quirks the lowerer reproduces on purpose —
    evaluation order, fuel accounting, binding errors — on top of the
    whole-corpus differential gate in tools/crashcheck. *)

open Liblang_core.Core
open Test_util
module Pipeline = Liblang_core.Pipeline
module Il = Liblang_backend.Il

let run_vm (src : string) : string =
  Pipeline.with_engine Pipeline.Vm (fun () -> run src)

(** Run [src] under both engines and assert byte-identical output. *)
let t_par name src =
  Alcotest.test_case name `Quick (fun () ->
      let interp = run src in
      let vm = run_vm src in
      check_s name interp vm)

let parity =
  [
    t_par "float loop (register lane)"
      "#lang typed/racket\n\
       (: run (Float -> Float))\n\
       (define (run n)\n\
      \  (let loop : Float ([i : Float 0.0] [s : Float 0.0])\n\
      \    (if (< i n) (loop (+ i 1.0) (+ s i)) s)))\n\
       (display (run 1000.0))\n";
    t_par "int loop counter keeps exactness"
      "#lang typed/racket\n\
       (: count (Integer -> Integer))\n\
       (define (count n)\n\
      \  (let loop : Integer ([i : Integer 0])\n\
      \    (if (< i n) (loop (+ i 1)) i)))\n\
       (display (count 10))\n";
    t_par "one-arg application: argument effect before callee effect"
      "#lang racket\n\
       (define (pick) (display \"c\") (lambda (x) x))\n\
       (display ((pick) (begin (display \"a\") 7)))\n";
    t_par "multi-arg application: callee first, args left to right"
      "#lang racket\n\
       (define (f a b) (+ a b))\n\
       (display ((begin (display \"c\") f)\n\
      \          (begin (display \"1\") 1)\n\
      \          (begin (display \"2\") 2)))\n";
    t_par "closure capture over loop-coalesced locals"
      "#lang racket\n\
       (define (adders)\n\
      \  (let ([a (let ([x 1]) (lambda (y) (+ x y)))]\n\
      \        [b (let ([x 10]) (lambda (y) (+ x y)))])\n\
      \    (+ (a 100) (b 100))))\n\
       (display (adders))\n";
    t_par "letrec forward reference through a closure"
      "#lang racket\n\
       (define (go) (letrec ([x (lambda () y)] [y 2]) (x)))\n\
       (display (go))\n";
    t_par "named let over generic (non-register) values"
      "#lang racket\n\
       (display (let loop ([l '(1 2 3)] [acc '()])\n\
      \  (if (null? l) acc (loop (cdr l) (cons (car l) acc)))))\n";
  ]

(* Fuel parity: both engines must exhaust the same budget at the same
   observable point — the diagnostics must render identically. *)
let fuel_exhaustion_point () =
  let src = "#lang racket\n(define (f) (f))\n(f)\n" in
  let under engine =
    Modsys.reset_user_modules_for_tests ();
    let out, r =
      Prims.with_captured_output (fun () ->
          Pipeline.run ~fuel:5_000 ~engine ~name:"fuelpar" src)
    in
    let ds =
      match r with
      | Ok _ -> []
      | Error ds -> List.map Pipeline.Diagnostic.to_string ds
    in
    (out, String.concat "\n" ds)
  in
  let oi, di = under Pipeline.Interp in
  let ov, dv = under Pipeline.Vm in
  check_s "fuel: output identical" oi ov;
  check_s "fuel: diagnostics identical" di dv;
  check_b "fuel: the budget actually ran out" true (contains di "fuel")

(* The vm.* and lower.* counters: a float loop under the VM must
   actually retire bytecode (the perf_smoke canary's in-process twin). *)
let vm_counters () =
  Modsys.reset_user_modules_for_tests ();
  let c = Metrics.create () in
  let src =
    "#lang typed/racket\n\
     (: run (Float -> Float))\n\
     (define (run n)\n\
    \  (let loop : Float ([i : Float 0.0] [s : Float 0.0])\n\
    \    (if (< i n) (loop (+ i 1.0) (+ s i)) s)))\n\
     (display (run 1000.0))\n"
  in
  let expected = run src in
  let out, r =
    Prims.with_captured_output (fun () ->
        Pipeline.run ~engine:Pipeline.Vm
          ~observe:{ Observe.metrics = Some c; trace = None }
          ~name:"vmcounters" src)
  in
  (match r with
  | Ok _ -> ()
  | Error ds ->
      Alcotest.failf "vm run failed: %s"
        (String.concat "; " (List.map Pipeline.Diagnostic.to_string ds)));
  check_s "vm: same answer as the interpreter" expected out;
  check_b "vm.instructions > 0" true (Metrics.get c "vm.instructions" > 0);
  check_b "lower.protos > 0" true (Metrics.get c "lower.protos" > 0);
  check_b "lower.instructions > 0" true (Metrics.get c "lower.instructions" > 0)

(* -- the IL's flat-int serialization ------------------------------------- *)

let every_instr : Il.instr array =
  [|
    Il.Const 3; Il.Pop; Il.Lref (0, 2); Il.Lset (1, 4); Il.Gref 0; Il.Gset 1;
    Il.Jump 9; Il.Jfalse 10; Il.JcmpGen (0, 11); Il.MkClosure 1; Il.Call 2;
    Il.TailCall 3; Il.Fast1 0; Il.Fast2 1; Il.Step; Il.StepJump 4; Il.Return;
    Il.BindE (0, 5, Il.bind_short); Il.BindEV (0, 6, 2); Il.ClearE (0, 7);
    Il.FlConst (0, 1); Il.FlLoad (1, 0, 2); Il.FlPop 0; Il.FlPush 1;
    Il.FlBin (Il.FAdd, 0, 1, 2); Il.FlUn (Il.FSqrt, 0, 1);
    Il.FlCmp (Il.Clt, 0, 1); Il.FlJcmp (Il.Cge, 0, 1, 12); Il.FlMov (0, 1);
    Il.FlOfI (0, 1); Il.FxConst (0, 42); Il.FxPush 0;
    Il.FxBin (Il.XAdd, 0, 1, 2); Il.FxCmp (Il.Ceq, 0, 1);
    Il.FxJcmp (Il.Cgt, 0, 1, 13); Il.FxMov (0, 1); Il.FxToFl 0;
  |]

let il_round_trip () =
  let decoded = Il.decode_code (Il.encode_code every_instr) in
  check_b "every opcode round-trips" true (decoded = every_instr)

let il_bad_opcode () =
  match Il.decode_code [ 99; 0 ] with
  | _ -> Alcotest.fail "bad opcode must not decode"
  | exception Il.Decode_error _ -> ()

let il_truncated_stream () =
  (* an operand-hungry opcode cut short must fail cleanly, not read junk *)
  match Il.decode_code [ 26; 0; 1 ] with
  | _ -> Alcotest.fail "truncated stream must not decode"
  | exception Il.Decode_error _ -> ()

let t name f = Alcotest.test_case name `Quick f

let suite =
  parity
  @ [
      t "fuel: same exhaustion point under both engines" fuel_exhaustion_point;
      t "metrics: vm.* and lower.* counters" vm_counters;
      t "il: every opcode round-trips through the int stream" il_round_trip;
      t "il: unknown opcode is a decode error" il_bad_opcode;
      t "il: truncated stream is a decode error" il_truncated_stream;
    ]
