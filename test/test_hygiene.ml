(** The hygiene engine's performance machinery, checked for semantics:

    - a qcheck property suite driving the hash-consed {!Scope.Set} through
      random operation sequences against a reference [Set.Make(Int)] model
      (interning must be observationally invisible);
    - regression tests for lazy scope propagation: interleavings of
      add/remove/flip applied lazily must agree with the eager
      [map_scopes] semantics, [datum->syntax], [free-identifier=?], and
      syntax properties must all survive delayed pushes. *)

open Liblang_core.Core
module Scope = Liblang_core.Core.Scope
module Binding = Liblang_stx.Binding
module Symbol = Liblang_symbol.Symbol
open Test_util
module Q = QCheck
module IntSet = Set.Make (Int)

let to_alcotest = QCheck_alcotest.to_alcotest

(* -- the model: Scope.Set vs Set.Make(Int) ---------------------------------

   Random scope values are drawn from a small universe so operations
   collide often (adds that are already present, removes of absent
   elements, unions with overlap).  The hash-consed implementation and the
   model run the same op script; after every step the interned set's
   elements must equal the model's. *)

type sop = SAdd of int | SRemove of int | SFlip of int | SUnion of int list

let gen_sop =
  let elt = Q.Gen.int_bound 30 in
  Q.Gen.oneof
    [
      Q.Gen.map (fun x -> SAdd x) elt;
      Q.Gen.map (fun x -> SRemove x) elt;
      Q.Gen.map (fun x -> SFlip x) elt;
      Q.Gen.map (fun xs -> SUnion xs) (Q.Gen.list_size (Q.Gen.int_bound 5) elt);
    ]

let print_sop = function
  | SAdd x -> Printf.sprintf "add %d" x
  | SRemove x -> Printf.sprintf "remove %d" x
  | SFlip x -> Printf.sprintf "flip %d" x
  | SUnion xs -> "union {" ^ String.concat "," (List.map string_of_int xs) ^ "}"

let arb_script =
  Q.make
    ~print:(fun ops -> String.concat "; " (List.map print_sop ops))
    (Q.Gen.list_size (Q.Gen.int_bound 40) gen_sop)

let apply_real s = function
  | SAdd x -> Scope.Set.add x s
  | SRemove x -> Scope.Set.remove x s
  | SFlip x -> Scope.Set.flip x s
  | SUnion xs -> Scope.Set.union s (Scope.Set.of_list xs)

let apply_model m = function
  | SAdd x -> IntSet.add x m
  | SRemove x -> IntSet.remove x m
  | SFlip x -> if IntSet.mem x m then IntSet.remove x m else IntSet.add x m
  | SUnion xs -> IntSet.union m (IntSet.of_list xs)

let agrees (s : Scope.Set.t) (m : IntSet.t) =
  Scope.Set.elements s = IntSet.elements m
  && Scope.Set.cardinal s = IntSet.cardinal m
  && Scope.Set.is_empty s = IntSet.is_empty m

let prop_model =
  Q.Test.make ~count:500 ~name:"Scope.Set agrees with Set.Make(Int) model" arb_script
    (fun ops ->
      let s, m =
        List.fold_left
          (fun (s, m) op ->
            let s = apply_real s op and m = apply_model m op in
            if not (agrees s m) then Q.Test.fail_reportf "diverged after %s" (print_sop op);
            (s, m))
          (Scope.Set.empty, IntSet.empty) ops
      in
      agrees s m)

let prop_interning =
  Q.Test.make ~count:500
    ~name:"equal-as-sets means pointer-equal (hash-consing) and equal ids"
    (Q.pair arb_script arb_script) (fun (ops1, ops2) ->
      let run ops = List.fold_left apply_real Scope.Set.empty ops in
      let a = run ops1 and b = run ops2 in
      let same_elems = Scope.Set.elements a = Scope.Set.elements b in
      (* one representative per distinct set: structural agreement and
         [equal] (pointer comparison) must coincide, as must id equality;
         equal sets must have equal hashes (the converse can collide) *)
      Bool.equal same_elems (Scope.Set.equal a b)
      && Bool.equal same_elems (Scope.Set.id a = Scope.Set.id b)
      && ((not same_elems) || Scope.Set.hash a = Scope.Set.hash b))

let prop_subset =
  Q.Test.make ~count:500 ~name:"subset agrees with the model" (Q.pair arb_script arb_script)
    (fun (ops1, ops2) ->
      let run ops = List.fold_left apply_real Scope.Set.empty ops in
      let mrun ops = List.fold_left apply_model IntSet.empty ops in
      let a = run ops1 and b = run ops2 in
      let ma = mrun ops1 and mb = mrun ops2 in
      Bool.equal (Scope.Set.subset a b) (IntSet.subset ma mb)
      && Bool.equal (Scope.Set.subset b a) (IntSet.subset mb ma)
      && Scope.Set.subset a (Scope.Set.union a b)
      && Scope.Set.subset b (Scope.Set.union a b))

let prop_mem =
  Q.Test.make ~count:500 ~name:"mem agrees with the model" (Q.pair (Q.int_bound 30) arb_script)
    (fun (x, ops) ->
      let s = List.fold_left apply_real Scope.Set.empty ops in
      let m = List.fold_left apply_model IntSet.empty ops in
      Bool.equal (Scope.Set.mem x s) (IntSet.mem x m))

let properties =
  List.map to_alcotest [ prop_model; prop_interning; prop_subset; prop_mem ]

(* -- lazy propagation vs the eager semantics ---------------------------------

   [map_scopes] forces everything eagerly, so applying an op script through
   the lazy [add/remove/flip_scope] API and comparing every node's scope
   set against the eagerly-computed expectation checks that delayed deltas
   land exactly where the naive deep-copy implementation would have put
   them. *)

let stx_of src =
  match Reader.read_one src with Some d -> Stx.of_datum d | None -> failwith "empty"

(* Every node's scope set, in preorder (forces all pending deltas). *)
let rec scope_spine (s : Stx.t) : Scope.Set.t list =
  Stx.scopes s
  ::
  (match Stx.view s with
  | Stx.List xs | Stx.Vec xs -> List.concat_map scope_spine xs
  | Stx.DotList (xs, tl) -> List.concat_map scope_spine xs @ scope_spine tl
  | Stx.Id _ | Stx.Atom _ -> [])

type top = TAdd | TRemove | TFlip

let apply_lazy op sc s =
  match op with
  | TAdd -> Stx.add_scope sc s
  | TRemove -> Stx.remove_scope sc s
  | TFlip -> Stx.flip_scope sc s

let apply_eager op sc s =
  let f set =
    match op with
    | TAdd -> Scope.Set.add sc set
    | TRemove -> Scope.Set.remove sc set
    | TFlip -> Scope.Set.flip sc set
  in
  Stx.map_scopes f s

let arb_tops =
  let gen =
    Q.Gen.list_size (Q.Gen.int_bound 12)
      (Q.Gen.oneofl [ TAdd; TRemove; TFlip ])
  in
  Q.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function TAdd -> "add" | TRemove -> "rm" | TFlip -> "flip") ops))
    gen

let deep_src = "(a (b (c d) 1) #(e (f)) (g . h))"

let prop_lazy_eager =
  Q.Test.make ~count:300 ~name:"lazy add/remove/flip interleavings = eager map_scopes"
    arb_tops (fun ops ->
      (* two scopes, alternated, so removes and flips interact *)
      let sc1 = Scope.fresh () and sc2 = Scope.fresh () in
      let lazy_s, eager_s, _ =
        List.fold_left
          (fun (ls, es, i) op ->
            let sc = if i mod 2 = 0 then sc1 else sc2 in
            (apply_lazy op sc ls, apply_eager op sc es, i + 1))
          (stx_of deep_src, stx_of deep_src, 0)
          ops
      in
      List.for_all2 Scope.Set.equal (scope_spine lazy_s) (scope_spine eager_s))

let prop_lazy_interleaved_views =
  Q.Test.make ~count:300 ~name:"forcing between ops does not change the outcome" arb_tops
    (fun ops ->
      let sc1 = Scope.fresh () and sc2 = Scope.fresh () in
      let force_some s = ignore (scope_spine s); s in
      let forced, unforced, _ =
        List.fold_left
          (fun (f, u, i) op ->
            let sc = if i mod 2 = 0 then sc1 else sc2 in
            (* one copy is forced after every step, the other only at the end *)
            (force_some (apply_lazy op sc f), apply_lazy op sc u, i + 1))
          (stx_of deep_src, stx_of deep_src, 0)
          ops
      in
      List.for_all2 Scope.Set.equal (scope_spine forced) (scope_spine unforced))

let lazy_props = List.map to_alcotest [ prop_lazy_eager; prop_lazy_interleaved_views ]

(* -- targeted regressions ----------------------------------------------------- *)

let check_sets msg a b = check_b msg true (Scope.Set.equal a b)

let regressions =
  [
    Alcotest.test_case "pending delta survives structure-only reads" `Quick (fun () ->
        let sc = Scope.fresh () in
        let s = Stx.add_scope sc (stx_of "(f x 1)") in
        (* to_datum/equal_datum/to_string read raw structure without forcing *)
        check_s "datum" "(f x 1)" (Datum.to_string (Stx.to_datum s));
        check_b "equal_datum" true (Stx.equal_datum s (stx_of "(f x 1)"));
        match Stx.view s with
        | Stx.List [ f; x; one ] ->
            List.iter
              (fun n -> check_b "child got scope" true (Scope.Set.mem sc (Stx.scopes n)))
              [ f; x; one ]
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "datum->syntax adopts context scopes under pending deltas" `Quick
      (fun () ->
        let sc = Scope.fresh () in
        let ctx = Stx.add_scope sc (stx_of "(ctx)") in
        (* ctx's own set is updated immediately even though its delta is
           still pending for children *)
        let d = Stx.datum_to_syntax ~ctx (Datum.Atom (Datum.Sym "x")) in
        check_b "adopted" true (Scope.Set.mem sc (Stx.scopes d)));
    Alcotest.test_case "free-identifier=? across delayed pushes" `Quick (fun () ->
        let sc = Scope.fresh () in
        let binder = Stx.add_scope sc (stx_of "hyg-free-id-x") in
        let b = Binding.bind binder in
        (* a reference that reaches the same scopes only after a push *)
        let form = Stx.add_scope sc (stx_of "(hyg-free-id-x)") in
        match Stx.view form with
        | Stx.List [ reference ] ->
            check_b "resolves" true
              (match Binding.resolve reference with Some b' -> Binding.equal b b' | None -> false);
            check_b "free-id=?" true (Binding.free_identifier_eq binder reference)
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "resolver cache invalidated by later binding" `Quick (fun () ->
        let sc1 = Scope.fresh () and sc2 = Scope.fresh () in
        let mk ss = Stx.id ~scopes:ss "hyg-cache-inval-x" in
        let outer = Scope.Set.singleton sc1 in
        let inner = Scope.Set.add sc2 outer in
        let b1 = Binding.bind (mk outer) in
        (* resolve the inner reference now: caches outer as the answer *)
        check_b "pre" true
          (match Binding.resolve (mk inner) with Some b -> Binding.equal b b1 | None -> false);
        (* a new, more specific binding must invalidate that cache line *)
        let b2 = Binding.bind (mk inner) in
        check_b "post" true
          (match Binding.resolve (mk inner) with Some b -> Binding.equal b b2 | None -> false);
        check_b "outer still outer" true
          (match Binding.resolve (mk outer) with Some b -> Binding.equal b b1 | None -> false));
    Alcotest.test_case "syntax properties preserved across delayed pushes" `Quick (fun () ->
        let sc = Scope.fresh () in
        let tagged = Stx.property_put "hyg-prop" (Stx.str_ "payload") (stx_of "(a b)") in
        let s = Stx.flip_scope sc tagged in
        (* property must survive the scope op before and after forcing *)
        (match Stx.property_get "hyg-prop" s with
        | Some v -> check_s "prop before force" "\"payload\"" (Datum.to_string (Stx.to_datum v))
        | None -> Alcotest.fail "property lost before force");
        ignore (Stx.view s);
        check_b "prop after force" true (Stx.property_get "hyg-prop" s <> None));
    Alcotest.test_case "flip distinguishes macro-introduced syntax" `Quick (fun () ->
        (* the expander's actual use: user syntax flipped twice returns to
           its original set; template syntax flipped once gains the scope *)
        let intro = Scope.fresh () in
        let user = stx_of "(user-part)" in
        let round_tripped = Stx.flip_scope intro (Stx.flip_scope intro user) in
        check_sets "user unchanged" (Stx.scopes user) (Stx.scopes round_tripped);
        (match (Stx.view round_tripped, Stx.view user) with
        | Stx.List [ a ], Stx.List [ b ] ->
            check_sets "child unchanged" (Stx.scopes a) (Stx.scopes b)
        | _ -> Alcotest.fail "shape");
        let template = stx_of "tmpl" in
        check_b "template marked" true
          (Scope.Set.mem intro (Stx.scopes (Stx.flip_scope intro template))));
    Alcotest.test_case "interned symbols: equality, canon, and no probe interning" `Quick
      (fun () ->
        let a = Symbol.intern "hyg-sym-alpha" in
        let b = Symbol.intern "hyg-sym-alpha" in
        check_b "same id" true (Symbol.equal a b);
        check_s "name" "hyg-sym-alpha" (Symbol.name a);
        let before = Symbol.interned_count () in
        (* identifier-name probes must not grow the symbol table *)
        check_b "is_sym" false (Stx.is_sym "hyg-sym-never-interned-xyzzy" (stx_of "foo"));
        check_i "no growth" before (Symbol.interned_count ()));
    Alcotest.test_case "hygiene end-to-end still holds (swap example)" `Quick (fun () ->
        (* the classic capture test, as a guard that the fast path did not
           change observable expansion *)
        let out =
          run
            {|#lang racket
(define-syntax-rule (swap! a b) (let ([tmp a]) (set! a b) (set! b tmp)))
(define x 1)
(define tmp 2)
(swap! x tmp)
(display (list x tmp))|}
        in
        check_s "swap" "(2 1)" out);
  ]

let suite = properties @ lazy_props @ regressions
