(** Shared helpers for the test suites. *)

open Liblang_core.Core

let () = init ()

let counter = ref 0

let fresh name =
  incr counter;
  Printf.sprintf "%s-t%d" name !counter

(** Evaluate an expression in the racket environment; return its written
    form. *)
let ev ?lang (src : string) : string = Value.write_string (eval_expr ?lang src)

(** Run a whole #lang program; return captured output. *)
let run (src : string) : string = run_string ~name:(fresh "test-program") src

(** Declare a module under [name] (so other test programs can require it). *)
let declare ~name src = ignore (Modsys.declare ~name src)

(** Run, expecting an error; return a label describing which error and its
    message. *)
let run_err (src : string) : string =
  match run src with
  | out -> "no error; output: " ^ out
  | exception Value.Scheme_error m -> "runtime: " ^ m
  | exception Expander.Expand_error (m, _) -> "syntax: " ^ m
  | exception Compile.Compile_error (m, _) -> "compile: " ^ m
  | exception Modsys.Module_error (m, _) -> "module: " ^ m
  | exception Contracts.Contract_violation { blame; contract; _ } ->
      Printf.sprintf "contract: %s blaming %s" contract blame
  | exception Types.Parse_error (m, _) -> "type-parse: " ^ m
  | exception Diagnostic.Failed ds ->
      "typecheck: " ^ String.concat "; " (List.map Diagnostic.to_string ds)

let ev_err (src : string) : string =
  match ev src with
  | out -> "no error; value: " ^ out
  | exception Value.Scheme_error m -> "runtime: " ^ m
  | exception Expander.Expand_error (m, _) -> "syntax: " ^ m
  | exception Compile.Compile_error (m, _) -> "compile: " ^ m

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* -- alcotest shorthands ------------------------------------------------------ *)

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(** A test case asserting an expression evaluates (writes) to [expect]. *)
let t_ev name src expect =
  Alcotest.test_case name `Quick (fun () -> check_s src expect (ev src))

(** A test case asserting a program prints [expect]. *)
let t_run name src expect =
  Alcotest.test_case name `Quick (fun () -> check_s name expect (run src))

(** A test case asserting a program fails with an error message containing
    [fragment]. *)
let t_err name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      let msg = run_err src in
      if not (contains msg fragment) then
        Alcotest.failf "%s: expected error containing %S, got %S" name fragment msg)

(** Same for plain expressions. *)
let t_ev_err name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      let msg = ev_err src in
      if not (contains msg fragment) then
        Alcotest.failf "%s: expected error containing %S, got %S" name fragment msg)

(** Assert a typed program and its untyped twin print the same thing (the
    optimizer preserves behaviour). *)
let t_agree name ~untyped ~typed =
  Alcotest.test_case name `Quick (fun () ->
      let u = run ("#lang racket\n" ^ untyped) in
      let t = run ("#lang typed/racket\n" ^ typed) in
      check_s name u t)
