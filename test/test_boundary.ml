(** Typed/untyped integration tests (paper §6): [require/typed], the export
    indirection with [typed-context?], blame assignment across module
    boundaries, and §6.3's macro-export restriction. *)

open Liblang_core.Core
open Test_util

let setup_typed_server () =
  let name = fresh "b-server" in
  declare ~name
    (Printf.sprintf
       "#lang typed/racket\n(: add-5 (Integer -> Integer))\n(define (add-5 x) (+ x 5))\n(provide add-5)");
  name

let exports =
  [
    Alcotest.test_case "typed client uses raw binding (§6.2)" `Quick (fun () ->
        let srv = setup_typed_server () in
        check_s "no contract in the way" "12"
          (run (Printf.sprintf "#lang typed/racket\n(require %s)\n(display (add-5 7))" srv)));
    Alcotest.test_case "untyped client: safe use passes" `Quick (fun () ->
        let srv = setup_typed_server () in
        check_s "safe" "17"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display (add-5 12))" srv)));
    Alcotest.test_case "untyped client: unsafe use blames the client" `Quick (fun () ->
        let srv = setup_typed_server () in
        let msg = run_err (Printf.sprintf "#lang racket\n(require %s)\n(add-5 \"bad\")" srv) in
        check_b "contract violation" true (contains msg "contract");
        check_b "blames untyped client" true (contains msg "untyped-client"));
    Alcotest.test_case "typed export used higher-order from untyped code" `Quick (fun () ->
        let srv = setup_typed_server () in
        check_s "map over it" "(6 7 8)"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display (map add-5 '(1 2 3)))" srv)));
    Alcotest.test_case "typed export referenced as a value in typed code" `Quick (fun () ->
        let srv = setup_typed_server () in
        check_s "identifier position" "(6 7)"
          (run
             (Printf.sprintf "#lang typed/racket\n(require %s)\n(display (map add-5 (list 1 2)))"
                srv)));
    Alcotest.test_case "typed module exporting non-function value" `Quick (fun () ->
        let srv = fresh "b-val" in
        declare ~name:srv "#lang typed/racket\n(define limit : Integer 100)\n(provide limit)";
        check_s "typed gets it" "100"
          (run (Printf.sprintf "#lang typed/racket\n(require %s)\n(display limit)" srv));
        check_s "untyped gets it" "100"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display limit)" srv)));
    Alcotest.test_case "provide before define works" `Quick (fun () ->
        let srv = fresh "b-early" in
        declare ~name:srv
          "#lang typed/racket\n(provide step)\n(define (step [x : Integer]) : Integer (+ x 1))";
        check_s "ok" "2"
          (run (Printf.sprintf "#lang typed/racket\n(require %s)\n(display (step 1))" srv)));
    Alcotest.test_case "typed client type-checks against imported type" `Quick (fun () ->
        let srv = setup_typed_server () in
        let msg =
          run_err (Printf.sprintf "#lang typed/racket\n(require %s)\n(add-5 \"bad\")" srv)
        in
        check_b "static error, not contract" true (contains msg "wrong type"));
    Alcotest.test_case "macros may not escape typed modules (§6.3)" `Quick (fun () ->
        let srv = fresh "b-macro" in
        let msg =
          try
            declare ~name:srv
              "#lang typed/racket\n(define-syntax-rule (m) 1)\n(provide m)";
            "no error"
          with
          | Expander.Expand_error (m, _) -> m
          | Boundary.Boundary_error (m, _) -> m
        in
        check_b "rejected" true (contains msg "macros may not escape"));
    Alcotest.test_case "chain: typed -> typed -> untyped" `Quick (fun () ->
        let base = setup_typed_server () in
        let mid = fresh "b-mid" in
        declare ~name:mid
          (Printf.sprintf
             "#lang typed/racket\n(require %s)\n(: add-10 (Integer -> Integer))\n(define (add-10 x) (add-5 (add-5 x)))\n(provide add-10)"
             base);
        check_s "typed chain" "11"
          (run (Printf.sprintf "#lang typed/racket\n(require %s)\n(display (add-10 1))" mid));
        let msg = run_err (Printf.sprintf "#lang racket\n(require %s)\n(add-10 'x)" mid) in
        check_b "still protected at the end" true (contains msg "contract"));
  ]

let imports =
  [
    Alcotest.test_case "require/typed: well-typed import works (fig. 4)" `Quick (fun () ->
        let umod = fresh "b-ulib" in
        declare ~name:umod "#lang racket\n(provide dbl)\n(define (dbl x) (* 2 x))";
        check_s "use" "42"
          (run
             (Printf.sprintf
                "#lang typed/racket\n(require/typed %s [dbl (Integer -> Integer)])\n(display (dbl 21))"
                umod)));
    Alcotest.test_case "require/typed: lying untyped code blames the untyped module" `Quick
      (fun () ->
        let umod = fresh "b-liar" in
        declare ~name:umod "#lang racket\n(provide badfn)\n(define (badfn x) \"oops\")";
        let msg =
          run_err
            (Printf.sprintf
               "#lang typed/racket\n(require/typed %s [badfn (Integer -> Integer)])\n(display (badfn 1))"
               umod)
        in
        check_b "contract" true (contains msg "contract");
        check_b "blames untyped library" true (contains msg umod));
    Alcotest.test_case "require/typed: misuse in typed code is a static error" `Quick (fun () ->
        let umod = fresh "b-ulib2" in
        declare ~name:umod "#lang racket\n(provide f)\n(define (f x) x)";
        let msg =
          run_err
            (Printf.sprintf
               "#lang typed/racket\n(require/typed %s [f (String -> String)])\n(f 42)" umod)
        in
        check_b "static" true (contains msg "wrong type"));
    Alcotest.test_case "require/typed: several clauses" `Quick (fun () ->
        let umod = fresh "b-multi" in
        declare ~name:umod "#lang racket\n(provide a b)\n(define (a x) (+ x 1))\n(define (b x) (* x 2))";
        check_s "both" "8"
          (run
             (Printf.sprintf
                "#lang typed/racket\n(require/typed %s [a (Integer -> Integer)] [b (Integer -> Integer)])\n(display (b (a 3)))"
                umod)));
    Alcotest.test_case "require/typed of a first-order value" `Quick (fun () ->
        let umod = fresh "b-const" in
        declare ~name:umod "#lang racket\n(provide n)\n(define n 41)";
        check_s "imported with checked type" "42"
          (run
             (Printf.sprintf "#lang typed/racket\n(require/typed %s [n Integer])\n(display (+ n 1))"
                umod)));
    Alcotest.test_case "require/typed of a value with a wrong type blames immediately" `Quick
      (fun () ->
        let umod = fresh "b-badconst" in
        declare ~name:umod "#lang racket\n(provide s)\n(define s \"not a number\")";
        let msg =
          run_err
            (Printf.sprintf "#lang typed/racket\n(require/typed %s [s Integer])\n(display s)" umod)
        in
        check_b "contract" true (contains msg "contract"));
    Alcotest.test_case "plain require of untyped binding into typed code is untyped" `Quick
      (fun () ->
        let umod = fresh "b-plain" in
        declare ~name:umod "#lang racket\n(provide mystery)\n(define (mystery x) x)";
        let msg =
          run_err
            (Printf.sprintf "#lang typed/racket\n(require %s)\n(display (mystery 1))" umod)
        in
        check_b "untyped variable error" true (contains msg "untyped variable"));
  ]

let type_to_contract_tests =
  let tc ty = Stx.to_string (Boundary.type_to_contract (Types.of_datum (Option.get (Reader.read_one ty)).Datum.d)) in
  [
    Alcotest.test_case "base types map to flat contracts" `Quick (fun () ->
        check_b "int" true (contains (tc "Integer") "integer-contract");
        check_b "float" true (contains (tc "Float") "flonum-contract");
        check_b "any" true (contains (tc "Any") "any/c"));
    Alcotest.test_case "arrow type maps to arrow-contract" `Quick (fun () ->
        let s = tc "(Integer -> Float)" in
        check_b "arrow" true (contains s "arrow-contract");
        check_b "dom" true (contains s "integer-contract");
        check_b "rng" true (contains s "flonum-contract"));
    Alcotest.test_case "structural types" `Quick (fun () ->
        check_b "listof" true (contains (tc "(Listof Integer)") "listof-contract");
        check_b "pairof" true (contains (tc "(Pairof Integer Float)") "pair-contract");
        check_b "vectorof" true (contains (tc "(Vectorof Float)") "vectorof-contract");
        check_b "union" true (contains (tc "(U Integer Boolean)") "or-contract"));
    Alcotest.test_case "union of functions has no contract" `Quick (fun () ->
        match tc "(U (Integer -> Integer) Boolean)" with
        | _ -> Alcotest.fail "expected failure"
        | exception Types.Parse_error (m, _) -> check_b "msg" true (contains m "union"));
  ]

let suite = exports @ imports @ type_to_contract_tests
