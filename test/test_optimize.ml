(** Optimizer tests (paper §7, fig. 5): the right rewrites fire, wrong ones
    don't, and — most importantly — optimization never changes observable
    behaviour (typed and untyped twins print the same). *)

open Liblang_core.Core
open Test_util

(* Count rewrites triggered by compiling one typed module. *)
let rewrites_of body =
  Optimize.reset_stats ();
  declare ~name:(fresh "opt-probe") ("#lang typed/racket\n" ^ body);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (Optimize.stats ()) []

let expect_stat name body key count =
  Alcotest.test_case name `Quick (fun () ->
      let stats = rewrites_of body in
      let got = Option.value (List.assoc_opt key stats) ~default:0 in
      check_i (name ^ " [" ^ key ^ "]") count got)

let expect_no_rewrites name body =
  Alcotest.test_case name `Quick (fun () ->
      let stats = rewrites_of body in
      let total = List.fold_left (fun a (_, n) -> a + n) 0 stats in
      if total <> 0 then
        Alcotest.failf "%s: expected no rewrites, got %s" name
          (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) stats)))

let firing =
  [
    expect_stat "float + rewrites" "(define (f [x : Float]) : Float (+ x 1.0))" "fl:+" 1;
    expect_stat "float * rewrites" "(define (f [x : Float]) : Float (* x x))" "fl:*" 1;
    expect_stat "n-ary + folds into binary rewrites"
      "(define (f [x : Float]) : Float (+ x x x))" "fl:+" 1;
    expect_stat "float comparison" "(define (f [x : Float]) : Boolean (< x 1.0))" "fl:<" 1;
    expect_stat "sqrt specializes" "(define (f [x : Float]) : Float (sqrt x))" "fl:sqrt" 1;
    expect_stat "sin specializes" "(define (f [x : Float]) : Float (sin x))" "fl:sin" 1;
    expect_stat "unary minus" "(define (f [x : Float]) : Float (- x))" "fl:-" 1;
    expect_stat "add1 on float" "(define (f [x : Float]) : Float (add1 x))" "fl:add1" 1;
    expect_stat "exact->inexact on Integer" "(define (f [n : Integer]) : Float (exact->inexact n))"
      "fl:fx->fl" 1;
    expect_stat "complex multiply (the paper's count example)"
      "(define (f [z : Float-Complex]) : Float-Complex (* z z))" "cpx:*" 1;
    expect_stat "complex divide"
      "(define (f [z : Float-Complex]) : Float-Complex (/ z 2.0+2.0i))" "cpx:/" 1;
    expect_stat "magnitude of complex"
      "(define (f [z : Float-Complex]) : Float (magnitude z))" "cpx:magnitude" 1;
    expect_stat "make-rectangular from floats"
      "(define (f [x : Float]) : Float-Complex (make-rectangular x x))" "cpx:make-rectangular" 1;
    expect_stat "first on a fixed-shape list (§3.2)"
      "(define p : (List Integer Integer Integer) (list 1 2 3))\n(define (f) : Integer (first p))"
      "pair:car" 1;
    expect_stat "car on a Pairof" "(define (f [p : (Pairof Integer Integer)]) : Integer (car p))"
      "pair:car" 1;
    expect_stat "vector-ref on known vector"
      "(define (f [v : (Vectorof Float)] [i : Integer]) : Float (vector-ref v i))" "vec:ref" 1;
    expect_stat "vector-set! on known vector"
      "(define (f [v : (Vectorof Float)] [i : Integer]) : Void (vector-set! v i 0.0))" "vec:set" 1;
    expect_stat "floats through let bindings"
      "(define (f [x : Float]) : Float (let ([y (* x 2.0)]) (+ y 1.0)))" "fl:+" 1;
  ]

let not_firing =
  [
    expect_no_rewrites "integers are not specialized"
      "(define (f [x : Integer]) : Integer (+ x 1))";
    expect_no_rewrites "Real is not enough for float ops"
      "(define (f [x : Real]) : Real (+ x 1.0))";
    expect_no_rewrites "mixed int/float stays generic"
      "(define (f [x : Float] [n : Integer]) : Float (* x n))";
    expect_no_rewrites "Any never triggers (dynamic type)"
      "(define (f [x : Any] [y : Any]) : Any (+ x y))";
    expect_no_rewrites "car on Listof keeps its check (may be empty)"
      "(define (f [l : (Listof Integer)]) : Integer (car l))";
    expect_no_rewrites "vector-ref with Any index stays safe"
      "(define (f [v : (Vectorof Float)] [i : Any]) : Float (vector-ref v i))";
    (* the shadowing definition is itself a legitimate monomorphic callee,
       so the flow analysis MAY mark the call direct — what must not fire
       is the float specialization of racket's + *)
    expect_stat "shadowed + is not racket's +"
      "(define (+ [a : Float] [b : Float]) : Float 0.0)\n(define (f [x : Float]) : Float (+ x x))"
      "fl:+" 0;
    Alcotest.test_case "optimizer disabled (O0)" `Quick (fun () ->
        Optimize.enabled := false;
        Fun.protect
          ~finally:(fun () -> Optimize.enabled := true)
          (fun () ->
            Optimize.reset_stats ();
            declare ~name:(fresh "opt-off")
              "#lang typed/racket\n(define (f [x : Float]) : Float (+ x 1.0))";
            check_i "no rewrites" 0 (Optimize.total_rewrites ())));
  ]

(* Semantic preservation: typed (optimized) and untyped twins agree. *)
let preservation =
  [
    t_agree "float kernel"
      ~untyped:
        "(define (f x) (- (* 1.1 x) (/ (sqrt x) (+ x 0.5))))\n(display (f 2.0))(display \" \")(display (f 9.0))"
      ~typed:
        "(define (f [x : Float]) : Float (- (* 1.1 x) (/ (sqrt x) (+ x 0.5))))\n(display (f 2.0))(display \" \")(display (f 9.0))";
    t_agree "float loop"
      ~untyped:
        "(display (let loop ([i 0] [acc 0.0]) (if (= i 100) acc (loop (+ i 1) (+ acc (* 0.5 (exact->inexact i)))))))"
      ~typed:
        "(display (let loop : Float ([i : Integer 0] [acc : Float 0.0]) (if (= i 100) acc (loop (+ i 1) (+ acc (* 0.5 (exact->inexact i)))))))";
    t_agree "complex iteration (paper §3.2 count)"
      ~untyped:
        "(define (count f) (let loop ([f f] [n 0]) (if (< (magnitude f) 0.001) n (loop (/ f 2.0+2.0i) (+ n 1)))))\n(display (count 1.0+1.0i))"
      ~typed:
        "(define (count [f : Float-Complex]) : Integer (let loop : Integer ([f : Float-Complex f] [n : Integer 0]) (if (< (magnitude f) 0.001) n (loop (/ f 2.0+2.0i) (+ n 1)))))\n(display (count 1.0+1.0i))";
    t_agree "vector sums"
      ~untyped:
        "(define v (build-vector 10 (lambda (i) (exact->inexact i))))\n(display (let loop ([i 0] [s 0.0]) (if (= i 10) s (loop (+ i 1) (+ s (vector-ref v i))))))"
      ~typed:
        "(define v : (Vectorof Float) (build-vector 10 (lambda ([i : Integer]) (exact->inexact i))))\n(display (let loop : Float ([i : Integer 0] [s : Float 0.0]) (if (= i 10) s (loop (+ i 1) (+ s (vector-ref v i))))))";
    t_agree "list car/cdr specialization"
      ~untyped:"(define p (list 1 2 3))\n(display (+ (first p) (second p)))"
      ~typed:
        "(define p : (List Integer Integer Integer) (list 1 2 3))\n(display (+ (first p) (second p)))";
    t_agree "min/max/abs/floor on floats"
      ~untyped:"(display (list (min 1.5 2.5) (max 1.5 2.5) (abs -1.5) (floor 1.7) (ceiling 1.2)))"
      ~typed:
        "(define (go [a : Float] [b : Float]) (list (min a b) (max a b) (abs (- a)) (floor (+ a 0.2)) (ceiling (- b 1.3))))\n(display (go 1.5 2.5))";
    t_agree "float special values"
      ~untyped:"(display (list (/ 1.0 0.0) (/ -1.0 0.0) (sqrt (* 1.0 4.0))))"
      ~typed:
        "(define (f [z : Float]) (list (/ 1.0 z) (/ -1.0 z) (sqrt (* 1.0 4.0))))\n(display (f 0.0))";
  ]

(* Every benchmark program agrees between its typed and untyped variant —
   the harness's checksum invariant, enforced as unit tests too. *)
let benchmarks_agree =
  List.map
    (fun (b : Programs.t) ->
      Alcotest.test_case ("benchmark agrees: " ^ b.Programs.name) `Slow (fun () ->
          let u = run ("#lang racket\n" ^ b.Programs.untyped) in
          let t = run ("#lang typed/racket\n" ^ b.Programs.typed) in
          check_s b.Programs.name u t))
    Programs.all

let suite = firing @ not_firing @ preservation @ benchmarks_agree
