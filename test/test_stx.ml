(** Syntax objects, scope sets, properties, and the binding table. *)

open Liblang_core.Core
module Scope = Liblang_core.Core.Scope
open Test_util

let stx_of src =
  match Reader.read_one src with Some d -> Stx.of_datum d | None -> failwith "empty"

let conversions =
  [
    Alcotest.test_case "datum->syntax->datum round trip" `Quick (fun () ->
        List.iter
          (fun src ->
            let s = stx_of src in
            check_s src src (Datum.to_string (Stx.to_datum s)))
          [ "(a (b 1) 2.5 \"s\" #\\c #t)"; "#(1 2)"; "(a . b)"; "()" ]);
    Alcotest.test_case "syntax->list on proper list" `Quick (fun () ->
        match Stx.to_list (stx_of "(a b c)") with
        | Some xs -> check_i "length" 3 (List.length xs)
        | None -> Alcotest.fail "expected a list");
    Alcotest.test_case "syntax->list on atom" `Quick (fun () ->
        check_b "none" true (Stx.to_list (stx_of "a") = None));
    Alcotest.test_case "syntax->list on dotted" `Quick (fun () ->
        check_b "none" true (Stx.to_list (stx_of "(a . b)") = None));
    Alcotest.test_case "sym accessors" `Quick (fun () ->
        check_b "id" true (Stx.is_id (stx_of "foo"));
        check_s "name" "foo" (Stx.sym_exn (stx_of "foo"));
        check_b "not id" false (Stx.is_id (stx_of "42")));
    Alcotest.test_case "datum_to_syntax adopts context scopes" `Quick (fun () ->
        let sc = Scope.fresh () in
        let ctx = Stx.id ~scopes:(Scope.Set.singleton sc) "ctx" in
        let s = Stx.datum_to_syntax ~ctx (Datum.Atom (Datum.Sym "x")) in
        check_b "scope copied" true (Scope.Set.mem sc (Stx.scopes s)));
  ]

let scopes =
  [
    Alcotest.test_case "add_scope is recursive" `Quick (fun () ->
        let sc = Scope.fresh () in
        let s = Stx.add_scope sc (stx_of "(a (b c))") in
        match Stx.view s with
        | Stx.List [ a; inner ] ->
            check_b "outer" true (Scope.Set.mem sc (Stx.scopes s));
            check_b "a" true (Scope.Set.mem sc (Stx.scopes a));
            check_b "inner" true (Scope.Set.mem sc (Stx.scopes inner))
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "flip twice is identity" `Quick (fun () ->
        let sc = Scope.fresh () in
        let s = stx_of "x" in
        let s' = Stx.flip_scope sc (Stx.flip_scope sc s) in
        check_b "same scopes" true (Scope.Set.equal (Stx.scopes s) (Stx.scopes s')));
    Alcotest.test_case "flip adds when absent, removes when present" `Quick (fun () ->
        let sc = Scope.fresh () in
        let s = stx_of "x" in
        let once = Stx.flip_scope sc s in
        check_b "added" true (Scope.Set.mem sc (Stx.scopes once));
        let twice = Stx.flip_scope sc once in
        check_b "removed" false (Scope.Set.mem sc (Stx.scopes twice)));
    Alcotest.test_case "remove_scope" `Quick (fun () ->
        let sc = Scope.fresh () in
        let s = Stx.remove_scope sc (Stx.add_scope sc (stx_of "x")) in
        check_b "gone" false (Scope.Set.mem sc (Stx.scopes s)));
  ]

let properties =
  [
    Alcotest.test_case "put and get" `Quick (fun () ->
        let s = stx_of "x" in
        let s = Stx.property_put "k" (stx_of "payload") s in
        match Stx.property_get "k" s with
        | Some p -> check_s "payload" "payload" (Stx.to_string p)
        | None -> Alcotest.fail "missing property");
    Alcotest.test_case "missing key" `Quick (fun () ->
        check_b "none" true (Stx.property_get "nope" (stx_of "x") = None));
    Alcotest.test_case "put replaces" `Quick (fun () ->
        let s = stx_of "x" in
        let s = Stx.property_put "k" (stx_of "one") s in
        let s = Stx.property_put "k" (stx_of "two") s in
        check_s "latest" "two" (Stx.to_string (Option.get (Stx.property_get "k" s))));
    Alcotest.test_case "properties independent per key" `Quick (fun () ->
        let s = stx_of "x" in
        let s = Stx.property_put "a" (stx_of "1") s in
        let s = Stx.property_put "b" (stx_of "2") s in
        check_s "a" "1" (Stx.to_string (Option.get (Stx.property_get "a" s)));
        check_s "b" "2" (Stx.to_string (Option.get (Stx.property_get "b" s))));
    Alcotest.test_case "copy_properties" `Quick (fun () ->
        let src = Stx.property_put "k" (stx_of "v") (stx_of "src") in
        let dst = Stx.copy_properties ~src (stx_of "dst") in
        check_s "copied" "v" (Stx.to_string (Option.get (Stx.property_get "k" dst))));
    Alcotest.test_case "scope ops preserve properties" `Quick (fun () ->
        let sc = Scope.fresh () in
        let s = Stx.property_put "k" (stx_of "v") (stx_of "x") in
        let s = Stx.add_scope sc s in
        check_b "still there" true (Stx.property_get "k" s <> None));
  ]

(* Binding-table resolution follows the sets-of-scopes rules. *)
let bindings =
  let mk name scopes = Stx.id ~scopes:(Scope.Set.of_list scopes) name in
  [
    Alcotest.test_case "resolve subset rule" `Quick (fun () ->
        let s1 = Scope.fresh () and s2 = Scope.fresh () in
        let b = Binding.bind (mk "rv1" [ s1 ]) in
        (* a reference with more scopes still sees the binding *)
        check_b "superset resolves" true (Binding.resolve (mk "rv1" [ s1; s2 ]) = Some b);
        (* fewer scopes does not *)
        check_b "subset does not" true (Binding.resolve (mk "rv1" [ s2 ]) = None));
    Alcotest.test_case "largest subset wins (shadowing)" `Quick (fun () ->
        let s1 = Scope.fresh () and s2 = Scope.fresh () in
        let outer = Binding.bind (mk "rv2" [ s1 ]) in
        let inner = Binding.bind (mk "rv2" [ s1; s2 ]) in
        check_b "inner wins" true (Binding.resolve (mk "rv2" [ s1; s2 ]) = Some inner);
        check_b "outer for outer ref" true (Binding.resolve (mk "rv2" [ s1 ]) = Some outer));
    Alcotest.test_case "ambiguous reference raises" `Quick (fun () ->
        let s1 = Scope.fresh () and s2 = Scope.fresh () and s3 = Scope.fresh () in
        ignore (Binding.bind (mk "rv3" [ s1; s2 ]));
        ignore (Binding.bind (mk "rv3" [ s1; s3 ]));
        match Binding.resolve (mk "rv3" [ s1; s2; s3 ]) with
        | exception Binding.Ambiguous _ -> ()
        | _ -> Alcotest.fail "expected ambiguity error");
    Alcotest.test_case "rebinding same scopes replaces" `Quick (fun () ->
        let s1 = Scope.fresh () in
        let _b1 = Binding.bind (mk "rv4" [ s1 ]) in
        let b2 = Binding.bind (mk "rv4" [ s1 ]) in
        check_b "latest" true (Binding.resolve (mk "rv4" [ s1 ]) = Some b2));
    Alcotest.test_case "free_identifier_eq on same binding" `Quick (fun () ->
        let s1 = Scope.fresh () and s2 = Scope.fresh () in
        ignore (Binding.bind (mk "rv5" [ s1 ]));
        check_b "eq" true (Binding.free_identifier_eq (mk "rv5" [ s1 ]) (mk "rv5" [ s1; s2 ])));
    Alcotest.test_case "free_identifier_eq unbound compares by name" `Quick (fun () ->
        check_b "eq" true
          (Binding.free_identifier_eq (mk "never-bound-zzz" []) (mk "never-bound-zzz" []));
        check_b "neq" false
          (Binding.free_identifier_eq (mk "never-bound-zzz" []) (mk "never-bound-yyy" [])));
    Alcotest.test_case "bound vs unbound are not free-identifier=?" `Quick (fun () ->
        let s1 = Scope.fresh () in
        ignore (Binding.bind (mk "rv6" [ s1 ]));
        check_b "neq" false (Binding.free_identifier_eq (mk "rv6" [ s1 ]) (mk "rv6" [])));
  ]

let suite = conversions @ scopes @ properties @ bindings
