(** Tests for the compile server (lib/server/): the frame codec and its
    rejection of malformed input, session isolation between concurrent
    clients, warm requests that compile nothing, incremental invalidation
    of edited files, and fault containment ([server.session] kills one
    session, never the daemon).

    The daemon under test runs in a spawned domain of this process,
    listening on a socket in a fresh temp dir; tests speak to it through
    the real {!Client}.  Each server test ends with a [shutdown] request
    and joins the domain, so no state leaks between tests. *)

open Test_util
module Core = Liblang_core.Core
module Json = Core.Json
module Fault = Core.Fault
module P = Liblang_server.Protocol
module Server = Liblang_server.Server
module Client = Liblang_server.Client

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "liblang-test-server-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ());
  d

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* -- the frame codec ----------------------------------------------------------- *)

(* Round-trip [j] through a real pipe (exercising the fd reader, not just
   string functions). *)
let roundtrip (j : Json.t) : P.frame =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      P.write_frame w j;
      P.read_frame r)

let codec_roundtrip () =
  List.iter
    (fun j ->
      match roundtrip j with
      | P.Frame j' -> check_s "round-trip" (Json.to_string j) (Json.to_string j')
      | P.Eof -> Alcotest.fail "unexpected EOF"
      | P.Malformed m -> Alcotest.failf "unexpected malformed: %s" m)
    [
      Json.Null;
      Json.Obj [ ("op", Json.Str "status") ];
      Json.Obj
        [
          ("id", Json.Num 7.0);
          ("op", Json.Str "run");
          ("path", Json.Str "/tmp/weird \"name\"\nwith newline.scm");
        ];
      Json.Arr [ Json.Num 1.0; Json.Bool true; Json.Str "x" ];
    ]

(* Feed raw bytes to the frame reader. *)
let read_raw (bytes : string) : P.frame =
  let r, w = Unix.pipe () in
  let n = Unix.write_substring w bytes 0 (String.length bytes) in
  assert (n = String.length bytes);
  Unix.close w;
  Fun.protect ~finally:(fun () -> try Unix.close r with Unix.Unix_error _ -> ()) (fun () -> P.read_frame r)

let codec_malformed () =
  let expect_malformed label bytes =
    match read_raw bytes with
    | P.Malformed _ -> ()
    | P.Frame j -> Alcotest.failf "%s: accepted as %s" label (Json.to_string j)
    | P.Eof -> Alcotest.failf "%s: reported EOF" label
  in
  expect_malformed "non-digit header" "abc\n{}\n";
  expect_malformed "empty header" "\n{}\n";
  expect_malformed "oversized length" "999999999\n";
  expect_malformed "header too long" "1234567890123\n";
  expect_malformed "truncated payload" "10\n{}";
  expect_malformed "missing terminator" "2\n{}X";
  expect_malformed "payload not JSON" "5\nhello\n";
  expect_malformed "cut mid-header" "12";
  match read_raw "" with
  | P.Eof -> ()
  | _ -> Alcotest.fail "clean EOF not reported as Eof"

let request_parsing () =
  let parse s =
    match Json.parse s with
    | Ok j -> P.request_of_json j
    | Error m -> Alcotest.failf "test JSON does not parse: %s" m
  in
  (match parse {|{"id":3,"op":"run","path":"/x.scm","fuel":100}|} with
  | Ok { P.id = Json.Num 3.0; req = P.Run { path = "/x.scm"; fuel = Some 100 } } -> ()
  | Ok _ -> Alcotest.fail "run request parsed wrong"
  | Error m -> Alcotest.failf "run request rejected: %s" m);
  (match parse {|{"op":"compile","path":"/x.scm"}|} with
  | Ok { P.id = Json.Null; req = P.Compile { path = "/x.scm"; jobs = None } } -> ()
  | _ -> Alcotest.fail "compile request parsed wrong");
  let rejected s =
    match parse s with Error _ -> () | Ok _ -> Alcotest.failf "accepted: %s" s
  in
  rejected {|{"op":"frobnicate"}|};
  rejected {|{"op":"run"}|};
  rejected {|{"op":42}|};
  rejected {|{"path":"/x.scm"}|};
  rejected {|[1,2,3]|}

(* -- a live daemon -------------------------------------------------------------- *)

(* Start a daemon in a spawned domain; run [f socket dir], then shut the
   daemon down and join it (even when [f] raises).  Two worker domains by
   default, so every test exercises the concurrent dispatch path. *)
let with_server ?(workers = 2) ?session_ttl ?max_sessions
    (f : string -> string -> unit) : unit =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "server.sock" in
  let cfg =
    {
      Server.socket_path = socket;
      cache_dir = Filename.concat dir "cache";
      workers;
      default_jobs = 1;
      fuel = None;
      engine = Liblang_core.Pipeline.Interp;
      session_ttl;
      max_sessions;
    }
  in
  let d = Domain.spawn (fun () -> Server.serve cfg) in
  Fun.protect
    ~finally:(fun () ->
      (match Client.connect ~retries:20 socket with
      | Ok c ->
          ignore (Client.request c P.Shutdown);
          Client.close c
      | Error _ -> ());
      Domain.join d)
    (fun () -> f socket dir)

let connect socket =
  match Client.connect ~retries:100 socket with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let request c req =
  match Client.request c req with
  | Ok j -> j
  | Error m -> Alcotest.failf "request: %s" m

let run_req c path = request c (P.Run { path; fuel = None })
let compile_req c path = request c (P.Compile { path; jobs = None })

(* The three-module project of the invalidation tests: main requires two
   leaves.  Sources deliberately differ in length across edits so the
   resolver's (mtime, size) fast path cannot mask a same-second rewrite. *)
let project dir =
  write_file (Filename.concat dir "left.scm")
    "#lang racket\n(provide l)\n(define l 10)\n";
  write_file (Filename.concat dir "right.scm")
    "#lang racket\n(provide r)\n(define r 1)\n";
  write_file (Filename.concat dir "main.scm")
    "#lang racket\n(require \"left.scm\")\n(require \"right.scm\")\n(display (+ l r))\n";
  Filename.concat dir "main.scm"

let warm_requests_compile_nothing () =
  with_server (fun socket dir ->
      let main = project dir in
      let c1 = connect socket in
      let j = compile_req c1 main in
      check_b "cold compile ok" true (Client.ok_of j);
      check_i "cold compiles" 3 (Client.summary_count j "compiles");
      (* same session again: everything is in the session memo *)
      let j = compile_req c1 main in
      check_b "warm compile ok" true (Client.ok_of j);
      check_i "warm same-session compiles" 0 (Client.summary_count j "compiles");
      Client.close c1;
      (* a brand-new session: satisfied from the artifact store *)
      let c2 = connect socket in
      let j = compile_req c2 main in
      check_i "warm new-session compiles" 0 (Client.summary_count j "compiles");
      check_i "warm new-session artifact hits" 3 (Client.summary_count j "hits");
      let j = run_req c2 main in
      check_b "warm run ok" true (Client.ok_of j);
      check_s "warm run output" "11" (Client.output_of j);
      check_i "warm run compiles" 0 (Client.summary_count j "compiles");
      Client.close c2)

let invalidation_recompiles_dirty_cone () =
  with_server (fun socket dir ->
      let main = project dir in
      let c = connect socket in
      check_s "cold output" "11" (Client.output_of (run_req c main));
      (* edit one leaf (different length, see [project]); only it and its
         dependent cone — main — may recompile *)
      write_file (Filename.concat dir "right.scm")
        "#lang racket\n(provide r)\n(define r 100)\n";
      let j = run_req c main in
      check_s "edited output" "110" (Client.output_of j);
      check_i "only the dirty cone recompiles" 2 (Client.summary_count j "compiles");
      (* untouched project: nothing recompiles, output repeats *)
      let j = run_req c main in
      check_s "steady output" "110" (Client.output_of j);
      check_i "steady compiles" 0 (Client.summary_count j "compiles");
      Client.close c)

let sessions_are_isolated () =
  with_server (fun socket dir ->
      (* two directories declaring the same module names with different
         meanings; one session per directory, requests interleaved *)
      let mk sub tag =
        let d = Filename.concat dir sub in
        (try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ());
        write_file (Filename.concat d "decl.scm")
          (Printf.sprintf "#lang racket\n(provide tag)\n(define tag %d)\n" tag);
        write_file (Filename.concat d "prog.scm")
          "#lang racket\n(require \"decl.scm\")\n(display tag)\n";
        Filename.concat d "prog.scm"
      in
      let prog_a = mk "a" 1 and prog_b = mk "b" 2 in
      let ca = connect socket and cb = connect socket in
      check_s "session A" "1" (Client.output_of (run_req ca prog_a));
      check_s "session B" "2" (Client.output_of (run_req cb prog_b));
      (* interleaved warm re-runs: neither session sees the other's
         [decl]/[prog] registrations *)
      check_s "session A again" "1" (Client.output_of (run_req ca prog_a));
      check_s "session B again" "2" (Client.output_of (run_req cb prog_b));
      Client.close ca;
      Client.close cb)

let session_fault_spares_daemon () =
  with_server (fun socket dir ->
      let main = project dir in
      let c1 = connect socket in
      check_s "before fault" "11" (Client.output_of (run_req c1 main));
      (* arm the chaos plan: every request faults at server.session *)
      (match Fault.parse "seed=7;server.session=error" with
      | Ok plan -> Fault.install (Some plan)
      | Error m -> Alcotest.failf "plan: %s" m);
      Fun.protect ~finally:(fun () -> Fault.install None) (fun () ->
          let j = run_req c1 main in
          check_b "faulted request fails" false (Client.ok_of j);
          (match Client.error_of j with
          | Some e -> check_b "error names the fault" true (contains e "injected fault")
          | None -> Alcotest.fail "faulted response carries no error");
          (* the session died with its connection... *)
          match Client.request c1 (P.Run { path = main; fuel = None }) with
          | Ok _ -> Alcotest.fail "killed session still answers"
          | Error _ -> Client.close c1);
      (* ...but the daemon did not: a fresh session works *)
      let c2 = connect socket in
      check_s "daemon survives" "11" (Client.output_of (run_req c2 main));
      Client.close c2)

let malformed_frame_closes_only_that_connection () =
  with_server (fun socket dir ->
      let main = project dir in
      let c = connect socket in
      (* speak garbage on a raw socket *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let garbage = "not a frame at all\n" in
      ignore (Unix.write_substring fd garbage 0 (String.length garbage));
      (match P.read_frame fd with
      | P.Frame j ->
          check_b "64 for protocol error" true (Client.exit_of j = 64);
          check_b "not ok" false (Client.ok_of j)
      | _ -> Alcotest.fail "no error response to a malformed frame");
      (* the server closed the offender... *)
      (match P.read_frame fd with
      | P.Eof -> ()
      | _ -> Alcotest.fail "offending connection not closed");
      Unix.close fd;
      (* ...and still serves the well-behaved connection *)
      check_s "daemon survives garbage" "11" (Client.output_of (run_req c main));
      Client.close c)

let errors_are_diagnostics () =
  with_server (fun socket dir ->
      let bad = Filename.concat dir "bad.scm" in
      write_file bad "#lang racket\n(display (+ 1 \"two\"))\n";
      let c = connect socket in
      let j = run_req c bad in
      check_b "runtime error not ok" false (Client.ok_of j);
      check_i "exit 1 for program diagnostics" 1 (Client.exit_of j);
      (match Client.rendered_of j with
      | Some r -> check_b "rendered report present" true (String.length r > 0)
      | None -> Alcotest.fail "no rendered report");
      (* the session survives its program's failure *)
      let main = project dir in
      check_s "session survives a diagnostic" "11" (Client.output_of (run_req c main));
      (* missing file *)
      let j = run_req c (Filename.concat dir "nope.scm") in
      check_b "missing file not ok" false (Client.ok_of j);
      Client.close c)

let status_and_expand () =
  with_server (fun socket dir ->
      let main = project dir in
      let c = connect socket in
      ignore (run_req c main);
      let j = request c P.Status in
      check_b "status ok" true (Client.ok_of j);
      (match Json.member "status" j with
      | Some s ->
          let n k =
            match Option.bind (Json.member k s) Json.to_num with
            | Some f -> int_of_float f
            | None -> -1
          in
          check_b "requests counted" true (n "requests" >= 1);
          check_b "sessions counted" true (n "sessions" >= 1);
          check_b "pid is ours" true (n "pid" = Unix.getpid ())
      | None -> Alcotest.fail "status response carries no status object");
      let j = request c (P.Expand { path = main }) in
      check_b "expand ok" true (Client.ok_of j);
      check_b "expand output mentions the require"
        true
        (contains (Client.output_of j) "left");
      Client.close c)

(* -- pipelining, cancellation, lifecycle ---------------------------------------- *)

(* Install [plan] (parsed) for the extent of [f]. *)
let with_plan (spec : string) (f : unit -> unit) : unit =
  (match Fault.parse spec with
  | Ok plan -> Fault.install (Some plan)
  | Error m -> Alcotest.failf "plan: %s" m);
  Fun.protect ~finally:(fun () -> Fault.install None) f

let send_with_id c ~id req =
  match Client.send_with_id c ~id req with
  | Ok () -> ()
  | Error m -> Alcotest.failf "send: %s" m

let recv c =
  match Client.recv c with
  | Ok j -> j
  | Error m -> Alcotest.failf "recv: %s" m

(* Read [n] responses and return them keyed by echoed id. *)
let recv_by_id c n : (Json.t * Json.t) list =
  List.init n (fun _ ->
      let j = recv c in
      (Client.id_of j, j))

let find_response (label : string) (rs : (Json.t * Json.t) list) (id : Json.t) :
    Json.t =
  match List.assoc_opt id rs with
  | Some j -> j
  | None -> Alcotest.failf "%s: no response with id %s" label (Json.to_string id)

let pipelined_out_of_order_responses () =
  with_server (fun socket dir ->
      let main = project dir in
      let c = connect socket in
      (* hold the run at the server.exec checkpoint so the inline status
         answer observably overtakes it *)
      with_plan "seed=7;server.exec=delay@200" (fun () ->
          send_with_id c ~id:(Json.Str "A") (P.Run { path = main; fuel = None });
          send_with_id c ~id:(Json.Num 42.0) P.Status;
          (* out-of-order: the control op answers first even though it was
             sent second *)
          let first = recv c in
          check_s "status overtakes the queued run" "42"
            (match Client.id_of first with
            | Json.Num f -> string_of_int (int_of_float f)
            | j -> Json.to_string j);
          check_b "status ok" true (Client.ok_of first);
          let second = recv c in
          check_b "run id echoed verbatim" true (Client.id_of second = Json.Str "A");
          check_b "run ok" true (Client.ok_of second);
          check_s "run output" "11" (Client.output_of second));
      (* two session ops pipelined on one connection answer in arrival
         order *)
      send_with_id c ~id:(Json.Str "r1") (P.Run { path = main; fuel = None });
      send_with_id c ~id:(Json.Str "r2") (P.Run { path = main; fuel = None });
      check_b "first run answers first" true (Client.id_of (recv c) = Json.Str "r1");
      check_b "second run answers second" true (Client.id_of (recv c) = Json.Str "r2");
      Client.close c)

let cancel_queued_request () =
  with_server (fun socket dir ->
      let main = project dir in
      let c = connect socket in
      ignore (run_req c main);
      (* r1 holds the session at the server.exec checkpoint; r2 queues
         behind it; the cancel kills r2 before it ever executes *)
      with_plan "seed=7;server.exec=delay@300" (fun () ->
          send_with_id c ~id:(Json.Str "r1") (P.Run { path = main; fuel = None });
          send_with_id c ~id:(Json.Str "r2") (P.Run { path = main; fuel = None });
          send_with_id c ~id:(Json.Str "k") (P.Cancel { target = Json.Str "r2" });
          let rs = recv_by_id c 3 in
          let k = find_response "cancel" rs (Json.Str "k") in
          check_b "cancel acknowledged" true (Client.ok_of k);
          (match Json.member "cancelled" k with
          | Some (Json.Str "queued") -> ()
          | Some j -> Alcotest.failf "cancelled a %s request, wanted queued" (Json.to_string j)
          | None -> Alcotest.fail "cancel response carries no cancelled field");
          let r1 = find_response "r1" rs (Json.Str "r1") in
          check_b "uncancelled request unaffected" true (Client.ok_of r1);
          let r2 = find_response "r2" rs (Json.Str "r2") in
          check_b "cancelled request fails" false (Client.ok_of r2);
          check_i "cancelled request exits 1" 1 (Client.exit_of r2);
          match Client.error_of r2 with
          | Some e -> check_b "error says cancelled" true (contains e "cancelled")
          | None -> Alcotest.fail "cancelled response carries no error");
      (* cancelling an id with nothing in flight is an error, not a hang *)
      let j = request c (P.Cancel { target = Json.Str "nope" }) in
      check_b "cancel of unknown id not ok" false (Client.ok_of j);
      check_i "cancel of unknown id exits 1" 1 (Client.exit_of j);
      (* the session is still usable after both *)
      check_s "session survives cancellation" "11" (Client.output_of (run_req c main));
      Client.close c)

let cancel_inflight_request () =
  with_server (fun socket dir ->
      let main = project dir in
      let c = connect socket in
      ignore (run_req c main);
      with_plan "seed=7;server.exec=delay@500" (fun () ->
          send_with_id c ~id:(Json.Str "r1") (P.Run { path = main; fuel = None });
          (* let the worker reach the sliced delay, then cancel mid-flight *)
          Unix.sleepf 0.15;
          send_with_id c ~id:(Json.Str "k") (P.Cancel { target = Json.Str "r1" });
          let rs = recv_by_id c 2 in
          let k = find_response "cancel" rs (Json.Str "k") in
          check_b "cancel acknowledged" true (Client.ok_of k);
          (match Json.member "cancelled" k with
          | Some (Json.Str "inflight") -> ()
          | Some j -> Alcotest.failf "cancelled a %s request, wanted inflight" (Json.to_string j)
          | None -> Alcotest.fail "cancel response carries no cancelled field");
          let r1 = find_response "r1" rs (Json.Str "r1") in
          check_b "cancelled request fails" false (Client.ok_of r1);
          check_i "cancelled request exits 1" 1 (Client.exit_of r1);
          match Client.error_of r1 with
          | Some e -> check_b "error says cancelled" true (contains e "cancelled")
          | None -> Alcotest.fail "cancelled response carries no error");
      (* the abort was cooperative: same session, next request is fine and
         still warm *)
      let j = run_req c main in
      check_s "session survives in-flight cancel" "11" (Client.output_of j);
      check_i "still warm after cancel" 0 (Client.summary_count j "compiles");
      Client.close c)

let idle_session_eviction_rebuilds_from_store () =
  with_server ~session_ttl:0.05 (fun socket dir ->
      let main = project dir in
      let c = connect socket in
      let j = compile_req c main in
      check_i "cold compiles" 3 (Client.summary_count j "compiles");
      (* idle past the TTL: the sweep resets the session's warm state *)
      Unix.sleepf 0.3;
      let j = compile_req c main in
      check_b "evicted session still answers" true (Client.ok_of j);
      check_i "rebuild is hit-only" 0 (Client.summary_count j "compiles");
      check_i "rebuild hits the artifact store" 3 (Client.summary_count j "hits");
      (* the eviction is visible in status *)
      let s = request c P.Status in
      (match Json.member "status" s with
      | Some st ->
          let n k =
            match Option.bind (Json.member k st) Json.to_num with
            | Some f -> int_of_float f
            | None -> -1
          in
          check_b "evictions counted" true (n "evictions" >= 1);
          (match Json.member "sessions_detail" st with
          | Some (Json.Arr (_ :: _)) -> ()
          | _ -> Alcotest.fail "status carries no sessions_detail")
      | None -> Alcotest.fail "status response carries no status object");
      Client.close c)

let worker_death_spares_daemon () =
  with_server (fun socket dir ->
      let main = project dir in
      let c = connect socket in
      check_s "before death" "11" (Client.output_of (run_req c main));
      (* kill the worker domain outside the request containment *)
      with_plan "seed=7;server.worker=error" (fun () ->
          let j = run_req c main in
          check_b "orphaned request fails" false (Client.ok_of j);
          check_i "worker death is an internal error" 2 (Client.exit_of j);
          match Client.error_of j with
          | Some e -> check_b "error names the dead worker" true (contains e "worker domain died")
          | None -> Alcotest.fail "response carries no error");
      (* supervision respawned a worker: same connection, same session,
         still warm *)
      let j = run_req c main in
      check_s "daemon survives worker death" "11" (Client.output_of j);
      check_i "still warm after worker death" 0 (Client.summary_count j "compiles");
      Client.close c)

let suite =
  [
    Alcotest.test_case "codec round-trips" `Quick codec_roundtrip;
    Alcotest.test_case "codec rejects malformed frames" `Quick codec_malformed;
    Alcotest.test_case "request parsing" `Quick request_parsing;
    Alcotest.test_case "warm requests compile nothing" `Quick warm_requests_compile_nothing;
    Alcotest.test_case "edits recompile only the dirty cone" `Quick
      invalidation_recompiles_dirty_cone;
    Alcotest.test_case "concurrent sessions are isolated" `Quick sessions_are_isolated;
    Alcotest.test_case "session fault spares the daemon" `Quick session_fault_spares_daemon;
    Alcotest.test_case "malformed frame closes only its connection" `Quick
      malformed_frame_closes_only_that_connection;
    Alcotest.test_case "errors arrive as diagnostics" `Quick errors_are_diagnostics;
    Alcotest.test_case "status and expand" `Quick status_and_expand;
    Alcotest.test_case "pipelined responses arrive out of order" `Quick
      pipelined_out_of_order_responses;
    Alcotest.test_case "cancel kills a queued request" `Quick cancel_queued_request;
    Alcotest.test_case "cancel aborts an in-flight request" `Quick
      cancel_inflight_request;
    Alcotest.test_case "idle sessions evict and rebuild from the store" `Quick
      idle_session_eviction_rebuilds_from_store;
    Alcotest.test_case "worker death spares the daemon" `Quick
      worker_death_spares_daemon;
  ]
