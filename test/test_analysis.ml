(** The 0CFA flow analysis (lib/analysis): qcheck soundness properties —
    the abstract facts must over-approximate what the concrete
    interpreter actually does — plus pinned parity cases asserting the
    fact-driven rewrites never change observable behavior under either
    engine. *)

open Liblang_core.Core
open Test_util
module Pipeline = Liblang_core.Pipeline
module Q = QCheck

let to_alcotest = QCheck_alcotest.to_alcotest

(* Expand an (untyped) module and run the analysis over its core forms —
   the programmatic twin of [liblang analyze].  Untyped so the optimizer
   has not rewritten anything: the facts describe the program as
   written. *)
let analyze_src (src : string) : Facts.t =
  let forms = Modsys.expand_source ~name:(fresh "analysis-prop") src in
  Zcfa.analyze_module forms

(* Run [src] with the flow analysis toggled off (the optimizer still
   runs, so this isolates exactly the fact-driven rewrites). *)
let run_nocfa (src : string) : string =
  let saved = !Zcfa.enabled in
  Zcfa.enabled := false;
  Fun.protect ~finally:(fun () -> Zcfa.enabled := saved) (fun () -> run src)

let run_vm (src : string) : string = Pipeline.with_engine Pipeline.Vm (fun () -> run src)

let run_vm_nocfa (src : string) : string =
  Pipeline.with_engine Pipeline.Vm (fun () -> run_nocfa src)

(* -- soundness: monomorphic call facts ----------------------------------------

   Generated chain programs where the generator knows the ground truth:
   every worker is called by name exactly once, so every call site is
   concretely monomorphic and the abstract facts must agree — and the
   typed twin, whose call sites the optimizer rewrites to direct calls
   on the strength of those facts, must print the same closed-form
   answer as the untyped original under both engines, analyzed or
   not. *)

let gen_chain = Q.Gen.(pair (int_range 1 4) (list_size (return 4) (int_range (-9) 9)))

let chain_soundness =
  Q.Test.make ~name:"0cfa: chain programs are all-monomorphic and parity holds" ~count:25
    (Q.make
       ~print:(fun (k, cs) ->
         Printf.sprintf "k=%d cs=%s" k (String.concat "," (List.map string_of_int cs)))
       gen_chain)
    (fun (k, cs) ->
      let cs = List.filteri (fun i _ -> i < k) cs in
      let defs ann =
        String.concat "\n"
          (List.mapi
             (fun i c ->
               if ann then
                 Printf.sprintf "(define (f%d [x : Integer]) : Integer (+ x %d))" i c
               else Printf.sprintf "(define (f%d x) (+ x %d))" i c)
             cs)
      in
      let call =
        List.fold_left (fun acc i -> Printf.sprintf "(f%d %s)" i acc) "100"
          (List.init k (fun i -> i))
      in
      let untyped = Printf.sprintf "#lang racket\n%s\n(display %s)\n" (defs false) call in
      let typed =
        Printf.sprintf "#lang typed/racket\n%s\n(display %s)\n" (defs true) call
      in
      let expected = string_of_int (List.fold_left ( + ) 100 cs) in
      let facts = analyze_src untyped in
      (* abstract = concrete here: every site has exactly one callee *)
      facts.Facts.call_sites = k
      && Facts.NodeTbl.length facts.Facts.direct = k
      && run untyped = expected
      && run typed = expected
      && run_nocfa typed = expected
      && run_vm typed = expected
      && run_vm_nocfa typed = expected)

(* -- soundness: in-bounds proofs ----------------------------------------------

   A literal index against a vector of generated length: the analysis
   may prove the access in-bounds exactly when the concrete semantics
   can never trap — [i < len] — and must refuse the proof whenever the
   concrete run would raise.  (Here the rule is complete too, so the
   iff is pinned, not just the sound direction.) *)

let inbounds_soundness =
  Q.Test.make ~name:"0cfa: in-bounds proof iff the concrete index cannot trap" ~count:40
    (Q.pair (Q.int_range 1 6) (Q.int_range 0 8))
    (fun (len, i) ->
      let src =
        Printf.sprintf "#lang racket\n(define v (make-vector %d 7))\n(display (vector-ref v %d))\n"
          len i
      in
      let facts = analyze_src src in
      let proved = Facts.NodeTbl.length facts.Facts.ref_inbounds in
      if i < len then proved = 1 && run src = "7"
      else
        proved = 0
        && (match run src with
           | exception Value.Scheme_error _ -> true
           | _ -> false))

(* -- soundness: polymorphic merge points -------------------------------------- *)

(* A function value that flows from both branches of an opaque
   conditional: the abstract callee set at the call site has two
   elements, so the site must NOT be claimed monomorphic — a direct
   fact here would be exactly the unsoundness the property hunts. *)
let polymorphic_not_direct () =
  let src =
    "#lang racket\n\
     (define (f0 x) 1)\n\
     (define (f1 x) 2)\n\
     (define h (if (zero? (string-length \"a\")) f0 f1))\n\
     (display (h 5))\n"
  in
  let facts = analyze_src src in
  Alcotest.(check int)
    "no direct fact at the two-callee merge point" 0
    (Facts.NodeTbl.length facts.Facts.direct);
  Alcotest.(check string) "concrete run picks one branch" "2" (run src)

(* A provided lambda reaches code the analysis cannot see, so it must be
   flagged escaping and never unboxable, even with a single local call
   site.  (A closure stored into a tracked vector does NOT escape — the
   element flow stays visible — which is exactly the precision the
   escape bit exists to preserve.) *)
let escaping_not_unboxable () =
  let src =
    "#lang racket\n\
     (provide esc)\n\
     (define esc (lambda (x) (* x x)))\n\
     (display (esc 6))\n"
  in
  let facts = analyze_src src in
  Alcotest.(check bool) "provided lambda escapes" true (facts.Facts.escaping > 0);
  Alcotest.(check int) "not unboxable" 0 (Facts.NodeTbl.length facts.Facts.unboxable);
  Alcotest.(check string) "still runs" "36" (run src)

(* -- pinned parity: analyzed vs unanalyzed, interp vs vm ----------------------

   The fact-driven rewrites (direct calls, closure unboxing, bound-check
   elision) must be observationally invisible: byte-identical output
   with the analysis on and off, under the tree-walking interpreter and
   the bytecode VM alike. *)

let kernel =
  "#lang typed/racket\n\
   (define (A [i : Integer] [j : Integer]) : Float\n\
  \  (/ 1.0 (exact->inexact (+ (* i 3) (+ j 1)))))\n\
   (define (sweep [n : Integer] [v : (Vectorof Float)]) : Float\n\
  \  (let ([elt (lambda ([k : Integer]) (* (A k k) (vector-ref v k)))])\n\
  \    (let loop : Float ([k : Integer 0] [acc : Float 0.0])\n\
  \      (if (< k n) (loop (+ k 1) (+ acc (elt k))) acc))))\n\
   (define (main) : Float\n\
  \  (let* ([n 12] [v (make-vector n 2.0)])\n\
  \    (let fill : Void ([k : Integer 0])\n\
  \      (when (< k n) (vector-set! v k (exact->inexact (+ k 1))) (fill (+ k 1))))\n\
  \    (sweep n v)))\n\
   (display (main))\n"

let counted_loop =
  "#lang typed/racket\n\
   (define (sum [v : (Vectorof Integer)]) : Integer\n\
  \  (let ([n (vector-length v)])\n\
  \    (let loop : Integer ([j : Integer 0] [acc : Integer 0])\n\
  \      (if (< j n) (loop (+ j 1) (+ acc (vector-ref v j))) acc))))\n\
   (display (sum (make-vector 16 3)))\n"

let t_parity name src =
  Alcotest.test_case name `Quick (fun () ->
      let reference = run_nocfa src in
      Alcotest.(check string) "analyzed interp" reference (run src);
      Alcotest.(check string) "analyzed vm" reference (run_vm src);
      Alcotest.(check string) "unanalyzed vm" reference (run_vm_nocfa src))

let suite =
  [
    to_alcotest chain_soundness;
    to_alcotest inbounds_soundness;
    Alcotest.test_case "0cfa: polymorphic merge point is not direct" `Quick
      polymorphic_not_direct;
    Alcotest.test_case "0cfa: escaping lambda is not unboxable" `Quick
      escaping_not_unboxable;
    t_parity "parity: unboxed-closure float kernel" kernel;
    t_parity "parity: counted loop with elided bound checks" counted_loop;
  ]
