(** Tests for separate compilation (lib/compiled/): the file-based module
    resolver, the content-addressed artifact store, §5 replay from
    artifacts, robustness against unusable artifacts, and exact dependent
    invalidation.

    Every test works in a fresh temp directory with its own cache dir and
    calls [Compiled.reset_session] to simulate a fresh process, so a
    "warm" run really exercises the on-disk store.  Counters are pinned
    via a fresh metrics collector: [module.compiles] is the
    expand-and-compile path, [module.cache_hits] the artifact replay path
    (their sum is the number of modules acquired). *)

open Test_util
module Core = Liblang_core.Core
module Compiled = Core.Compiled
module Modsys = Core.Modsys
module Prims = Core.Prims
module Metrics = Core.Metrics
module Observe = Core.Observe

(* -- temp project dirs -------------------------------------------------------- *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "liblang-test-compiled-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ());
  d

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Where the store keeps [key]'s artifact under [cache]. *)
let artifact_file ~cache key =
  Filename.concat cache (Compiled.Digest_util.key_file key ^ ".lart")

(* -- running through the resolver --------------------------------------------- *)

(** Compile+instantiate [path] as a fresh process would (session state
    reset first), through a store at [cache] if given; return captured
    output and the metrics collector. *)
let run_measured ?cache path : string * Metrics.t =
  let c = Metrics.create () in
  Compiled.reset_session ();
  let go () =
    let m = Compiled.compile_file path in
    Modsys.instantiate m
  in
  let out, () =
    Prims.with_captured_output (fun () ->
        Observe.with_ctx
          { Observe.metrics = Some c; trace = None }
          (fun () ->
            match cache with None -> go () | Some dir -> Compiled.with_cache_dir dir go))
  in
  (out, c)

let run_file ?cache path : string = fst (run_measured ?cache path)

(** Same, expecting an error; returns a label describing it. *)
let run_file_err ?cache path : string =
  match run_file ?cache path with
  | out -> "no error; output: " ^ out
  | exception Modsys.Module_error (m, _) -> "module: " ^ m
  | exception Core.Contracts.Contract_violation { blame; contract; _ } ->
      Printf.sprintf "contract: %s blaming %s" contract blame
  | exception Core.Diagnostic.Failed ds ->
      "typecheck: " ^ String.concat "; " (List.map Core.Diagnostic.to_string ds)

let compiles c = Metrics.get c "module.compiles"
let hits c = Metrics.get c "module.cache_hits"
let stale c = Metrics.get c "cache.stale"

(* -- the file resolver (no cache) --------------------------------------------- *)

let file_require_basic () =
  let dir = fresh_dir () in
  write_file (Filename.concat dir "lib.scm")
    "#lang racket\n(provide double)\n(define (double x) (* 2 x))\n";
  write_file (Filename.concat dir "main.scm")
    "#lang racket\n(require \"lib.scm\")\n(display (double 21))\n";
  check_s "file require output" "42" (run_file (Filename.concat dir "main.scm"))

let file_require_relative_nesting () =
  (* requires resolve relative to the requiring file, not the cwd *)
  let dir = fresh_dir () in
  let sub = Filename.concat dir "sub" in
  (try Unix.mkdir sub 0o755 with Unix.Unix_error _ -> ());
  write_file (Filename.concat sub "inner.scm") "#lang racket\n(provide n)\n(define n 7)\n";
  write_file (Filename.concat sub "mid.scm")
    "#lang racket\n(provide n)\n(require \"inner.scm\")\n";
  write_file (Filename.concat dir "main.scm")
    "#lang racket\n(require \"sub/mid.scm\")\n(display n)\n";
  check_s "nested relative require" "7" (run_file (Filename.concat dir "main.scm"))

let file_require_missing () =
  let dir = fresh_dir () in
  write_file (Filename.concat dir "main.scm") "#lang racket\n(require \"nope.scm\")\n";
  let msg = run_file_err (Filename.concat dir "main.scm") in
  check_b "missing file is a module diagnostic" true
    (contains msg "cannot read module file")

let file_require_cycle () =
  let dir = fresh_dir () in
  write_file (Filename.concat dir "a.scm") "#lang racket\n(require \"b.scm\")\n";
  write_file (Filename.concat dir "b.scm") "#lang racket\n(require \"a.scm\")\n";
  let msg = run_file_err (Filename.concat dir "a.scm") in
  check_b "cross-file cycle detected" true (contains msg "cyclic require")

(* -- the warm path ------------------------------------------------------------- *)

(* A three-module project: main requires dep and other. *)
let project () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  write_file (Filename.concat dir "dep.scm")
    "#lang racket\n(provide inc)\n(define (inc x) (+ x 1))\n";
  write_file (Filename.concat dir "other.scm")
    "#lang racket\n(provide ten)\n(define ten 10)\n";
  write_file (Filename.concat dir "main.scm")
    "#lang racket\n(require \"dep.scm\")\n(require \"other.scm\")\n(display (inc ten))\n";
  (dir, cache, Filename.concat dir "main.scm")

let warm_run_zero_compiles () =
  let _, cache, main = project () in
  let cold, c0 = run_measured ~cache main in
  check_s "cold output" "11" cold;
  check_i "cold compiles all three" 3 (compiles c0);
  check_i "cold hits nothing" 0 (hits c0);
  let warm, c1 = run_measured ~cache main in
  check_s "warm output identical" cold warm;
  check_i "warm compiles nothing" 0 (compiles c1);
  check_i "warm hits all three" 3 (hits c1)

let dependent_invalidation_exact () =
  let dir, cache, main = project () in
  let cold, _ = run_measured ~cache main in
  ignore (run_measured ~cache main);
  (* editing dep invalidates dep and main (its dependent) but not other *)
  write_file (Filename.concat dir "dep.scm")
    "#lang racket\n(provide inc)\n(define (inc x) (+ x 1))\n;; touched\n";
  let warm, c = run_measured ~cache main in
  check_s "output unchanged by the edit" cold warm;
  check_i "exactly dep and main recompile" 2 (compiles c);
  check_i "other still hits" 1 (hits c);
  check_b "staleness was counted" true (stale c >= 1);
  (* and the rewritten artifacts make the next run fully warm again *)
  let _, c2 = run_measured ~cache main in
  check_i "steady state: no compiles" 0 (compiles c2);
  check_i "steady state: all hits" 3 (hits c2)

(* -- robustness: unusable artifacts degrade to recompiles ---------------------- *)

(** Cold-compile a one-module project, mutate something ([mutate ~src
    ~art] gets the source path and its artifact path), then re-run warm:
    output must be byte-identical, the module must recompile, and the
    staleness must be counted (never an error). *)
let robustness name mutate =
  Alcotest.test_case name `Quick (fun () ->
      let dir = fresh_dir () in
      let cache = Filename.concat dir "cache" in
      let src = Filename.concat dir "m.scm" in
      write_file src "#lang racket\n(define (sq x) (* x x))\n(display (sq 9))\n";
      let cold, c0 = run_measured ~cache src in
      check_i (name ^ ": cold compiles") 1 (compiles c0);
      let art = artifact_file ~cache (Compiled.Resolver.module_key src) in
      check_b (name ^ ": artifact written") true (Sys.file_exists art);
      mutate ~src ~art;
      let warm, c = run_measured ~cache src in
      check_s (name ^ ": output byte-identical") cold warm;
      check_i (name ^ ": recompiled from source") 1 (compiles c);
      check_i (name ^ ": nothing loaded from cache") 0 (hits c);
      check_b (name ^ ": staleness counted") true (stale c >= 1);
      (* the recompile rewrote a good artifact *)
      let _, c2 = run_measured ~cache src in
      check_i (name ^ ": healed") 1 (hits c2))

let t_corrupt = robustness "corrupt artifact" (fun ~src:_ ~art ->
    write_file art "(this is ;; not an artifact")

let t_truncated = robustness "truncated artifact" (fun ~src:_ ~art ->
    let text = read_file art in
    write_file art (String.sub text 0 (String.length text / 2)))

(* replace the first occurrence of [needle] in [hay] with [repl] *)
let replace_first hay needle repl =
  let nh = String.length hay and nn = String.length needle in
  let rec find i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else find (i + 1) in
  match find 0 with
  | None -> hay
  | Some i -> String.sub hay 0 i ^ repl ^ String.sub hay (i + nn) (nh - i - nn)

let t_version_skew = robustness "format version skew" (fun ~src:_ ~art ->
    let text = read_file art in
    let skewed = replace_first text "(version 3)" "(version 999)" in
    check_b "artifact records its version" true (text <> skewed);
    write_file art skewed)

(* Strip [text]'s integrity trailer line, returning the covered body. *)
let strip_trailer text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> not (String.starts_with ~prefix:";; integrity:" l))
  |> String.concat "\n"

(* Re-trailer [body] so it reads as a *valid* artifact again (the skew
   under test is structural, not damage). *)
let with_trailer body = body ^ ";; integrity: " ^ Compiled.Digest_util.of_string body ^ "\n"

let t_v2_no_bytecode =
  robustness "v2 artifact (no bytecode section)" (fun ~src:_ ~art ->
      (* regress a real v3 artifact to the v2 shape: drop the (bytecode
         ...) section, regress the version marker, and recompute the
         trailer so it is a well-formed v2 artifact rather than a corrupt
         v3 one.  The warm run must see version skew — never an error,
         never a bytecode-less replay of the v3 format *)
      let text = read_file art in
      check_b "v3 artifact carries a bytecode section" true
        (List.exists (String.starts_with ~prefix:"(bytecode ") (String.split_on_char '\n' text));
      let body =
        strip_trailer text |> String.split_on_char '\n'
        |> List.filter (fun l -> not (String.starts_with ~prefix:"(bytecode " l))
        |> String.concat "\n"
      in
      let body = replace_first body "(version 3)" "(version 2)" in
      write_file art (with_trailer body))

let t_bad_bytecode_trailer =
  robustness "damaged bytecode section caught by integrity trailer" (fun ~src:_ ~art ->
      (* flip one opcode digit inside the (bytecode ...) section only —
         header and core forms untouched, trailer left stale.  The
         integrity check must reject the artifact before the VM ever
         decodes the damaged code *)
      let text = read_file art in
      let damaged =
        String.split_on_char '\n' text
        |> List.map (fun l ->
               if String.starts_with ~prefix:"(bytecode " l then begin
                 let b = Bytes.of_string l in
                 (* mutate the first digit after the section head *)
                 let rec go i =
                   if i >= Bytes.length b then failwith "no digit in bytecode section"
                   else
                     match Bytes.get b i with
                     | '0' .. '8' as c ->
                         Bytes.set b i (Char.chr (Char.code c + 1));
                         Bytes.to_string b
                     | '9' ->
                         Bytes.set b i '8';
                         Bytes.to_string b
                     | _ -> go (i + 1)
                 in
                 go (String.length "(bytecode ")
               end
               else l)
        |> String.concat "\n"
      in
      check_b "bytecode section present and mutated" true (text <> damaged);
      write_file art damaged)

let t_stale_source = robustness "stale source" (fun ~src ~art:_ ->
    write_file src "#lang racket\n(define (sq x) (* x x))\n(display (sq 9))\n;; edited\n")

let stale_transitive_require () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  write_file (Filename.concat dir "dep.scm")
    "#lang racket\n(provide base)\n(define base 40)\n";
  let main = Filename.concat dir "main.scm" in
  write_file main "#lang racket\n(require \"dep.scm\")\n(display (+ base 2))\n";
  let cold, _ = run_measured ~cache main in
  (* editing dep changes its artifact digest; main's own source is
     untouched but its recorded require digest no longer matches *)
  write_file (Filename.concat dir "dep.scm")
    "#lang racket\n(provide base)\n(define base 40)\n;; touched\n";
  let warm, c = run_measured ~cache main in
  check_s "stale require: output byte-identical" cold warm;
  check_i "stale require: both recompile" 2 (compiles c);
  check_b "stale require: staleness counted" true (stale c >= 1)

(* -- §5 replay: the type environment comes back from the artifact -------------- *)

let typed_lib_source =
  "#lang typed/racket\n\
   (provide scale)\n\
   (: scale (Integer -> Integer))\n\
   (define (scale x) (* 10 x))\n"

(** A typed client compiled fresh against an artifact-loaded typed
    library still sees the library's types: the serialized
    [begin-for-syntax] declarations are replayed by [visit], not
    re-expanded. *)
let replay_types_from_artifact () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  let lib = Filename.concat dir "lib.scm" in
  write_file lib typed_lib_source;
  (* cold-compile the library alone so its artifact exists *)
  Compiled.reset_session ();
  Compiled.with_cache_dir cache (fun () -> ignore (Compiled.compile_file lib));
  (* a new typed client: the library must replay from its artifact *)
  let client = Filename.concat dir "client.scm" in
  write_file client
    "#lang typed/racket\n\
     (require \"lib.scm\")\n\
     (define (main) : Integer (scale 4))\n\
     (display (main))\n";
  let out, c = run_measured ~cache client in
  check_s "typed client against replayed lib" "40" out;
  check_i "only the client compiles" 1 (compiles c);
  check_i "the lib replays from its artifact" 1 (hits c);
  (* the replayed type environment really typechecks: an ill-typed use
     of the replayed export is rejected at compile time *)
  let bad = Filename.concat dir "bad.scm" in
  write_file bad "#lang typed/racket\n(require \"lib.scm\")\n(display (scale \"nope\"))\n";
  let msg = run_file_err ~cache bad in
  check_b "ill-typed client still rejected" true (contains msg "typecheck")

(** The §6.2 boundary survives replay: an untyped client of a replayed
    typed module goes through the same defensive export indirection —
    same output on the good path, same blame on the bad path — whether
    the typed module was compiled from source or loaded from its
    artifact. *)
let replay_boundary_contracts () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  write_file (Filename.concat dir "lib.scm") typed_lib_source;
  let good = Filename.concat dir "good.scm" in
  write_file good "#lang racket\n(require \"lib.scm\")\n(display (scale 4))\n";
  let bad = Filename.concat dir "bad.scm" in
  write_file bad "#lang racket\n(require \"lib.scm\")\n(display (scale \"nope\"))\n";
  (* uncached reference behaviour *)
  let good_ref = run_file good in
  let bad_ref = run_file_err bad in
  check_b "reference: contract blames the untyped client" true (contains bad_ref "contract:");
  (* cold (writes artifacts), then warm from artifacts only *)
  ignore (run_measured ~cache good);
  let good_warm, c = run_measured ~cache good in
  check_i "boundary client replays fully warm" 2 (hits c);
  check_i "boundary client: no compiles warm" 0 (compiles c);
  check_s "good path identical cached/uncached" good_ref good_warm;
  ignore (run_file_err ~cache bad);
  let bad_warm = run_file_err ~cache bad in
  check_s "blame identical cached/uncached" bad_ref bad_warm

(* -- domain-parallel builds ----------------------------------------------------- *)

module Build = Compiled.Build
module Genproj = Compiled.Genproj
module Parallel = Liblang_parallel.Parallel

(** Sorted [(file, md5)] pairs for every artifact under [dir] — the
    byte-identity witness for determinism across job counts. *)
let dir_digests dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".lart")
    |> List.sort compare
    |> List.map (fun f -> (f, Digest.to_hex (Digest.file (Filename.concat dir f))))

(* small genproj instances: tower = copies * (2^depth + nvars) = 20 *)
let gen ~dir ~shape ~n = Genproj.generate ~dir ~shape ~n ~depth:4 ~nvars:4 ~copies:1 ()

let build_into ~jobs ~cache root : Build.result =
  Compiled.reset_session ();
  Compiled.with_cache_dir cache (fun () -> Build.build ~jobs [ root ])

(** [-j1] and [-jN] builds of the same generated project must write
    byte-identical artifact sets (serialization never leaks scope or
    binding uids), and the [-jN] cache must replay fully warm. *)
let parallel_determinism shape =
  let name = Genproj.shape_to_string shape in
  Alcotest.test_case (Printf.sprintf "determinism: -j1 = -j3 (%s)" name) `Quick
    (fun () ->
      let dir = fresh_dir () in
      let root, expected = gen ~dir ~shape ~n:6 in
      let c1 = Filename.concat dir "cache-j1" in
      let c3 = Filename.concat dir "cache-j3" in
      let r1 = build_into ~jobs:1 ~cache:c1 root in
      let r3 = build_into ~jobs:3 ~cache:c3 root in
      check_b (name ^ ": -j1 build ok") true (Build.ok r1);
      check_b (name ^ ": -j3 build ok") true (Build.ok r3);
      check_i (name ^ ": same modules scheduled") r1.Build.tasks r3.Build.tasks;
      check_i (name ^ ": all six artifacts written") 6
        (List.length (dir_digests c3));
      check_b (name ^ ": artifacts byte-identical across job counts") true
        (dir_digests c1 = dir_digests c3);
      (* the parallel cache replays fully warm with the right value *)
      let out, c = run_measured ~cache:c3 root in
      check_s (name ^ ": warm checksum") (string_of_int expected) (String.trim out);
      check_i (name ^ ": warm compiles nothing") 0 (compiles c);
      check_i (name ^ ": warm hits all six") 6 (hits c))

(** K domains racing on one store: all compile the same 6-module diamond,
    and each additionally compiles a private module (disjoint keys), all
    against a single shared cache dir.  The per-key advisory locks must
    yield exactly one artifact write per key — the losers block, then
    load the winner's artifact — and the store must end up fully usable
    (a warm rerun replays with zero compiles, so no torn [.lart]
    survives). *)
let concurrent_store_stress () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  let root, expected = gen ~dir ~shape:Genproj.Diamond ~n:6 in
  let k = 4 in
  (* disjoint per-domain modules, each requiring the shared diamond base *)
  let solo i =
    let path = Filename.concat dir (Printf.sprintf "solo%d.scm" i) in
    write_file path
      (Printf.sprintf
         "#lang racket\n(require \"m5.scm\")\n(provide s%d)\n(define s%d (+ v5 %d))\n"
         i i i);
    path
  in
  let solos = List.init k solo in
  let collectors = Array.init k (fun _ -> Metrics.create ()) in
  Compiled.reset_session ();
  let store = Compiled.Store.create ~dir:cache () in
  (* share ONE store instance (the DLS slot splits by identity, exactly as
     the build driver's workers do) and hold the parallelism gate open so
     the per-key locks are live across the spawn..join window *)
  Compiled.Store.with_store (Some store) (fun () ->
      Parallel.with_active (fun () ->
          let worker slot () =
            Observe.with_ctx
              { Observe.metrics = Some collectors.(slot); trace = None }
              (fun () ->
                ignore (Compiled.compile_file root);
                ignore (Compiled.compile_file (List.nth solos slot)))
          in
          let domains = Array.init k (fun slot -> Domain.spawn (worker slot)) in
          Array.iter Domain.join domains));
  let total key =
    Array.fold_left (fun acc c -> acc + Metrics.get c key) 0 collectors
  in
  (* exactly one write per key: 6 shared + k disjoint *)
  check_i "exactly one artifact write per key" (6 + k) (total "cache.writes");
  check_i "one .lart file per key on disk" (6 + k) (List.length (dir_digests cache));
  (* every domain acquired its full closure one way or the other *)
  check_i "each domain acquired all its modules"
    (k * (6 + 1))
    (total "module.compiles" + total "module.cache_hits");
  check_b "losers loaded rather than recompiled" true (total "module.compiles" < k * 7);
  (* no torn artifacts: a fresh session replays everything byte-for-byte
     warm — any corrupt .lart would degrade to a recompile and show up
     in the compiles counter *)
  let out, c = run_measured ~cache root in
  check_s "warm checksum after the race" (string_of_int expected) (String.trim out);
  check_i "warm rerun: zero compiles" 0 (compiles c);
  check_i "warm rerun: all hits" 6 (hits c)

(* -- chaos: deterministic fault injection (docs/robustness.md) ------------------ *)

module Fault = Core.Fault

(** Parse [spec], install it for the duration of [f], uninstall after —
    even when [f] raises, so a failing check can't leak faults into the
    next test case. *)
let with_plan spec f =
  match Fault.parse spec with
  | Result.Error m -> Alcotest.failf "test plan %S did not parse: %s" spec m
  | Ok p -> Fault.with_plan p f

exception Hung

(** Wall-clock backstop for the supervision tests: their whole point is
    that a damaged pool terminates, so a hang must fail the test rather
    than freeze the suite. *)
let with_test_alarm seconds f =
  let previous = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Hung)) in
  ignore (Unix.alarm seconds);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm previous)
    f

let plan_parse () =
  let ok spec =
    match Fault.parse spec with
    | Ok p -> p
    | Result.Error m -> Alcotest.failf "%S should parse: %s" spec m
  in
  let bad label spec = check_b label true (Result.is_error (Fault.parse spec)) in
  let p = ok "seed=7;deadline=2.5;store.read=error~0.25,store.write=torn@64" in
  check_i "plan seed" 7 p.Fault.seed;
  check_b "plan deadline" true (p.Fault.deadline = Some 2.5);
  check_i "plan rules" 2 (List.length p.Fault.rules);
  check_b "empty plan is valid (no rules)" true
    (match Fault.parse "seed=3" with Ok q -> q.Fault.rules = [] | _ -> false);
  bad "unknown site rejected" "store.zap=error";
  bad "unknown mode rejected" "store.read=explode";
  bad "probability out of range" "store.read=error~1.5";
  bad "non-numeric torn offset" "store.write=torn@x";
  bad "non-positive deadline" "deadline=0";
  bad "bare word" "whatever"

(** Whether the n-th arrival at a site fires is a pure function of
    (seed, site, n): two installs of the same spec produce the same
    firing pattern — the property that makes a chaos seed replayable. *)
let deterministic_decisions () =
  let pattern () =
    with_plan "seed=11;build.task=error~0.5" (fun () ->
        List.init 32 (fun _ ->
            match Fault.check "build.task" with
            | () -> false
            | exception Fault.Injected _ -> true))
  in
  let a = pattern () in
  check_b "same seed, same firing pattern" true (a = pattern ());
  check_b "p=0.5 fires sometimes" true (List.mem true a);
  check_b "p=0.5 passes sometimes" true (List.mem false a)

(** With no plan installed every hook is inert: no exception, no delay,
    no metric — the zero-cost-when-off contract. *)
let hooks_inert_when_off () =
  check_b "no ambient plan" false (Fault.active ());
  let c = Metrics.create () in
  Observe.with_ctx
    { Observe.metrics = Some c; trace = None }
    (fun () ->
      List.iter Fault.check Fault.sites;
      List.iter (fun s -> check_b (s ^ ": no torn cut") true (Fault.torn_write s = None)) Fault.sites;
      Fault.check_deadline ());
  check_i "nothing injected" 0 (Metrics.get c "fault.injected")

(** Opening a store sweeps tmp files stranded by a crashed writer, and
    only those — neighbouring artifacts are untouched. *)
let tmp_sweep_on_open () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  Unix.mkdir cache 0o755;
  let stranded = Filename.concat cache "deadbeef.lart.tmp.4242.0" in
  write_file stranded "half an artifact";
  let keeper = Filename.concat cache "deadbeef.lart" in
  write_file keeper "not a tmp file";
  let c = Metrics.create () in
  Observe.with_ctx
    { Observe.metrics = Some c; trace = None }
    (fun () -> ignore (Compiled.Store.create ~dir:cache ()));
  check_b "stranded tmp swept on open" false (Sys.file_exists stranded);
  check_b "non-tmp neighbour untouched" true (Sys.file_exists keeper);
  check_i "sweep counted" 1 (Metrics.get c "cache.tmp_swept")

(** Repeatedly-corrupt artifacts are quarantined: the second corrupt
    read renames the file to [.bad], later reads see [Missing], and a
    fresh run recompiles and heals. *)
let quarantine_after_repeated_corruption () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  let src = Filename.concat dir "m.scm" in
  write_file src "#lang racket\n(define (sq x) (* x x))\n(display (sq 9))\n";
  let cold, _ = run_measured ~cache src in
  let key = Compiled.Resolver.module_key src in
  let art = artifact_file ~cache key in
  write_file art "(liblang-artifact garbage that parses as nothing";
  Compiled.reset_session ();
  let store = Compiled.Store.create ~dir:cache () in
  let c = Metrics.create () in
  Observe.with_ctx
    { Observe.metrics = Some c; trace = None }
    (fun () ->
      let corrupt = function
        | Stdlib.Error (Compiled.Artifact.Corrupt _) -> true
        | _ -> false
      in
      check_b "first corrupt read reported" true (corrupt (Compiled.Store.read store ~key));
      check_b "second corrupt read reported" true (corrupt (Compiled.Store.read store ~key));
      check_b "third read finds nothing (quarantined)" true
        (Compiled.Store.read store ~key = Stdlib.Error Compiled.Artifact.Missing));
  check_i "quarantine counted once" 1 (Metrics.get c "cache.quarantined");
  check_b "post-mortem kept as .bad" true (Sys.file_exists (art ^ ".bad"));
  check_b "corrupt artifact gone" false (Sys.file_exists art);
  (* and the degraded path still heals: recompile, identical output *)
  let warm, c2 = run_measured ~cache src in
  check_s "output identical after quarantine" cold warm;
  check_i "recompiled past the quarantine" 1 (compiles c2)

(* A parseable artifact whose body was flipped after the write: only the
   integrity trailer can tell.  Without it the flipped '9 would replay as
   '8 and print 64 — the byte-identical-output check inside [robustness]
   is what makes this a real test. *)
let t_bitflip =
  robustness "bit-flipped body caught by integrity trailer" (fun ~src:_ ~art ->
      let text = read_file art in
      let flipped = replace_first text "'9" "'8" in
      check_b "body contains the literal" true (text <> flipped);
      write_file art flipped)

(** A torn artifact write (cut mid-file by an injected fault) never
    poisons the cache: the cold run's output is unaffected, the torn
    bytes fail verification on the next read, and a warm run recompiles
    and heals byte-identically. *)
let torn_write_replayed () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  let src = Filename.concat dir "m.scm" in
  write_file src "#lang racket\n(define (sq x) (* x x))\n(display (sq 9))\n";
  let cold, c0 = with_plan "store.write=torn@40" (fun () -> run_measured ~cache src) in
  check_s "cold output unaffected by the torn write" "81" cold;
  check_b "the fault actually fired" true (Metrics.get c0 "fault.injected" >= 1);
  let warm, c1 = run_measured ~cache src in
  check_s "warm output byte-identical" cold warm;
  check_i "torn artifact not replayed" 1 (compiles c1);
  check_i "nothing loaded from the torn cache" 0 (hits c1);
  let _, c2 = run_measured ~cache src in
  check_i "healed: steady state replays" 1 (hits c2)

(** Injected read errors degrade to recompiles (never an error), and the
    store recovers as soon as the faults stop. *)
let injected_read_error_degrades () =
  let dir = fresh_dir () in
  let cache = Filename.concat dir "cache" in
  let src = Filename.concat dir "m.scm" in
  write_file src "#lang racket\n(define (sq x) (* x x))\n(display (sq 9))\n";
  let cold, _ = run_measured ~cache src in
  let warm, c = with_plan "store.read=error" (fun () -> run_measured ~cache src) in
  check_s "output identical under injected read errors" cold warm;
  check_i "read fault degrades to a recompile" 1 (compiles c);
  check_i "no cache hits under the fault" 0 (hits c);
  let _, c2 = run_measured ~cache src in
  check_i "store recovered once the faults stop" 1 (hits c2)

(** Every worker domain dying at spawn must not hang [Domain.join] or
    leave modules without outcomes; a fault-free rebuild then succeeds. *)
let worker_death_does_not_hang () =
  let dir = fresh_dir () in
  let root, expected = gen ~dir ~shape:Genproj.Diamond ~n:6 in
  let cache = Filename.concat dir "cache" in
  let r =
    with_test_alarm 30 (fun () ->
        with_plan "build.spawn=error" (fun () -> build_into ~jobs:3 ~cache root))
  in
  check_b "join returned with failures, not a hang" true (not (Build.ok r));
  check_b "worker deaths observed" true (r.Build.worker_deaths >= 1);
  check_i "every module still has an outcome"
    (List.length r.Build.graph)
    (List.length r.Build.outcomes);
  check_b "deaths surface as ordinary diagnostics" true
    (List.exists
       (fun (_, ds) ->
         List.exists
           (fun d -> contains (Core.Diagnostic.to_string d) "worker domain died")
           ds)
       (Build.failures r));
  let r2 = build_into ~jobs:3 ~cache root in
  check_b "fault-free rebuild succeeds" true (Build.ok r2);
  let out, _ = run_measured ~cache root in
  check_s "recovered build runs correctly" (string_of_int expected) (String.trim out)

(** A task stuck in an injected delay is killed by its cooperative
    wall-clock deadline and surfaces as a timeout diagnostic, never a
    hang. *)
let task_deadline_times_out () =
  let dir = fresh_dir () in
  let root, _ = gen ~dir ~shape:Genproj.Chain ~n:3 in
  let cache = Filename.concat dir "cache" in
  let r =
    with_test_alarm 30 (fun () ->
        with_plan "deadline=0.05;build.task=delay@400" (fun () ->
            build_into ~jobs:2 ~cache root))
  in
  check_b "deadline kills the delayed task" true (not (Build.ok r));
  check_b "timeout counted" true (r.Build.timeouts >= 1);
  check_b "timeout is an ordinary diagnostic" true
    (List.exists
       (fun (_, ds) ->
         List.exists (fun d -> contains (Core.Diagnostic.to_string d) "deadline") ds)
       (Build.failures r));
  let r2 = build_into ~jobs:2 ~cache root in
  check_b "recovers without the plan" true (Build.ok r2)

(** Transient faults are retried with a deterministic budget: 1 try + 2
    retries for the one task that runs; its dependents are poisoned, not
    attempted. *)
let transient_retries_counted () =
  let dir = fresh_dir () in
  let root, _ = gen ~dir ~shape:Genproj.Chain ~n:3 in
  let cache = Filename.concat dir "cache" in
  let r = with_plan "build.task=error" (fun () -> build_into ~jobs:1 ~cache root) in
  check_b "persistent task faults fail the build" true (not (Build.ok r));
  check_i "exactly two retries" 2 r.Build.retries;
  check_i "only the first task ran" 1 r.Build.tasks;
  let r2 = build_into ~jobs:1 ~cache root in
  check_b "clean rebuild succeeds" true (Build.ok r2)

(** Path canonicalization: the textual require scan, the resolver and the
    server's invalidation must agree on one key per file, however it is
    spelled — [./]-prefixed, [dir/../dir]-indirected, or reached through a
    symlinked directory.  One helper ([Resolver.module_key], realpath-
    based) owns that; a second spelling of an already-loaded module must
    be a session memo hit, not a recompile. *)
let canonicalization_one_key_per_file () =
  let module Resolver = Compiled.Resolver in
  let dir = fresh_dir () in
  let real = Filename.concat dir "real" in
  (try Unix.mkdir real 0o755 with Unix.Unix_error _ -> ());
  write_file (Filename.concat real "lib.scm")
    "#lang racket\n(provide seven)\n(define seven 7)\n";
  let plain = Filename.concat real "lib.scm" in
  let dotted = Filename.concat dir "./real/./lib.scm" in
  let indirected = Filename.concat dir "real/../real/lib.scm" in
  check_s "./ spelling" (Resolver.module_key plain) (Resolver.module_key dotted);
  check_s "dir/../dir spelling" (Resolver.module_key plain)
    (Resolver.module_key indirected);
  let link = Filename.concat dir "link" in
  (match Unix.symlink real link with
  | () ->
      check_s "symlinked dir spelling" (Resolver.module_key plain)
        (Resolver.module_key (Filename.concat link "lib.scm"))
  | exception Unix.Unix_error _ -> () (* filesystem without symlinks *));
  (* a not-yet-existing path still canonicalizes through its parent *)
  check_s "nonexistent file keys through its dir"
    (Filename.concat (Resolver.module_key real) "future.scm")
    (Resolver.module_key (Filename.concat dir "./real/../real/future.scm"));
  (* and the resolver treats every spelling as one module: main requires
     the same file under two spellings — it must compile (and run) once *)
  write_file (Filename.concat dir "main.scm")
    "#lang racket\n(require \"real/lib.scm\")\n(require \"./real/../real/lib.scm\")\n(display seven)\n";
  let out, c = run_measured (Filename.concat dir "main.scm") in
  check_s "two spellings, one module" "7" out;
  check_i "compiled once" 2 (Metrics.get c "module.compiles")
(* main + lib *)

(* -- suite --------------------------------------------------------------------- *)

let t name f = Alcotest.test_case name `Quick f

let suite =
  [
    t "file require: basic" file_require_basic;
    t "file require: relative to requiring file" file_require_relative_nesting;
    t "file require: missing file" file_require_missing;
    t "file require: cross-file cycle" file_require_cycle;
    t "canonicalization: one key per file" canonicalization_one_key_per_file;
    t "warm run: zero compiles, all hits" warm_run_zero_compiles;
    t "invalidation: exactly the dependents" dependent_invalidation_exact;
    t_corrupt;
    t_truncated;
    t_version_skew;
    t_v2_no_bytecode;
    t_bad_bytecode_trailer;
    t_stale_source;
    t "stale transitive require" stale_transitive_require;
    t "§5 replay: types from artifact" replay_types_from_artifact;
    t "§6.2 replay: boundary contracts" replay_boundary_contracts;
    parallel_determinism Genproj.Wide;
    parallel_determinism Genproj.Diamond;
    parallel_determinism Genproj.Chain;
    t "concurrent store: K domains, one cache" concurrent_store_stress;
    t "fault plan: parse + reject" plan_parse;
    t "fault plan: decisions are deterministic" deterministic_decisions;
    t "fault hooks: inert when off" hooks_inert_when_off;
    t "store: tmp sweep on open" tmp_sweep_on_open;
    t "store: quarantine after repeated corruption" quarantine_after_repeated_corruption;
    t_bitflip;
    t "store: torn write heals by recompiling" torn_write_replayed;
    t "store: injected read errors degrade" injected_read_error_degrades;
    t "build: worker death does not hang join" worker_death_does_not_hang;
    t "build: per-task deadline times out" task_deadline_times_out;
    t "build: transient retries counted" transient_retries_counted;
  ]
