#lang racket
(require self-require)
