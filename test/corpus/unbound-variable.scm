#lang racket
(display undefined-variable)
