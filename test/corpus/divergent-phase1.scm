#lang racket
(define-syntax bad ((lambda (f) (f f)) (lambda (f) (f f))))
(bad)
