#lang nonexistent-language
(display 1)
