#lang racket
(define-syntax loop (syntax-rules () ((_) (loop))))
(loop)
