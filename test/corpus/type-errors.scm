#lang typed/racket
(define a : Integer 3.7)
(define b : String 42)
(define c : Boolean "no")
