(display "there is no lang line")
