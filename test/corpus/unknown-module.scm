#lang racket
(require no-such-module)
