#lang racket
(+ 1 2
