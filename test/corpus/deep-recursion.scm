#lang racket
(define (f n) (+ 1 (f n)))
(f 0)
