#lang racket
(display "oops
