#lang racket
)
(display "after")
)
