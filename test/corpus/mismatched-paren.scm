#lang racket
(display 1]
