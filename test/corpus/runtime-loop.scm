#lang racket
(define (spin) (spin))
(spin)
