#lang racket
#\bogusone
(display 1)
#\bogustwo
(display 2)
