#lang typed/racket
(define x : (Listof) 1)
