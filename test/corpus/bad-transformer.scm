#lang racket
(define-syntax (bad stx) 42)
(bad)
