(** Type-grammar tests: parsing, printing, subtyping, joins, serialization
    (§5), and named/recursive types. *)

open Liblang_core.Core
open Test_util
module T = Types

let parse s = T.of_datum (Option.get (Reader.read_one s)).Datum.d

let t_parse name src expect =
  Alcotest.test_case ("parse " ^ name) `Quick (fun () ->
      check_s name expect (T.to_string (parse src)))

let parsing =
  [
    t_parse "Integer" "Integer" "Integer";
    t_parse "Float" "Float" "Float";
    t_parse "Flonum alias" "Flonum" "Float";
    t_parse "Float-Complex" "Float-Complex" "Float-Complex";
    t_parse "Real" "Real" "Real";
    t_parse "Number" "Number" "Number";
    t_parse "Boolean" "Boolean" "Boolean";
    t_parse "String" "String" "String";
    t_parse "Any" "Any" "Any";
    t_parse "Null" "Null" "Null";
    t_parse "infix arrow" "(Integer -> Integer)" "(Integer -> Integer)";
    t_parse "multi-arg arrow" "(Integer Float -> Boolean)" "(Integer Float -> Boolean)";
    t_parse "prefix arrow" "(-> Integer Float)" "(Integer -> Float)";
    t_parse "nullary arrow" "(-> Integer)" "( -> Integer)";
    t_parse "higher order" "((Integer -> Integer) -> Integer)"
      "((Integer -> Integer) -> Integer)";
    t_parse "Listof" "(Listof Integer)" "(Listof Integer)";
    t_parse "List fixed" "(List Integer Float)" "(List Integer Float)";
    t_parse "Pairof" "(Pairof Integer Float)" "(Pairof Integer Float)";
    t_parse "Vectorof" "(Vectorof Float)" "(Vectorof Float)";
    t_parse "Union" "(U Integer Boolean)" "(U Integer Boolean)";
    t_parse "singleton union collapses" "(U Integer)" "Integer";
    t_parse "nested" "(Listof (Pairof Integer (Listof Float)))"
      "(Listof (Pairof Integer (Listof Float)))";
    Alcotest.test_case "unknown type errors" `Quick (fun () ->
        match parse "Zorble" with
        | _ -> Alcotest.fail "expected parse error"
        | exception T.Parse_error (m, _) -> check_b "msg" true (contains m "unknown type"));
  ]

let sub a b = T.subtype (parse a) (parse b)

let t_sub name a b expect =
  Alcotest.test_case name `Quick (fun () -> check_b (a ^ " <: " ^ b) expect (sub a b))

let subtyping =
  [
    t_sub "refl" "Integer" "Integer" true;
    t_sub "Integer <: Real" "Integer" "Real" true;
    t_sub "Float <: Real" "Float" "Real" true;
    t_sub "Real <: Number" "Real" "Number" true;
    t_sub "Integer <: Number" "Integer" "Number" true;
    t_sub "Float-Complex <: Number" "Float-Complex" "Number" true;
    t_sub "Float-Complex not <: Real" "Float-Complex" "Real" false;
    t_sub "Real not <: Integer" "Real" "Integer" false;
    t_sub "Integer not <: Float" "Integer" "Float" false;
    t_sub "everything <: Any" "(Listof (Integer -> Float))" "Any" true;
    t_sub "Any <: anything (dynamic)" "Any" "Integer" true;
    t_sub "member <: union" "Integer" "(U Integer Boolean)" true;
    t_sub "union <: wider" "(U Integer Float)" "Real" true;
    t_sub "union not <: narrower" "(U Integer Boolean)" "Integer" false;
    t_sub "union <: union" "(U Integer Float)" "(U Float Boolean Integer)" true;
    t_sub "Null <: Listof" "Null" "(Listof Integer)" true;
    t_sub "List <: Listof when elements fit" "(List Integer Integer)" "(Listof Integer)" true;
    t_sub "List not <: Listof when an element doesn't" "(List Integer String)" "(Listof Integer)"
      false;
    t_sub "List <: Listof of supertype" "(List Integer Float)" "(Listof Real)" true;
    t_sub "List <: Pairof view" "(List Integer Float)" "(Pairof Integer (List Float))" true;
    t_sub "Pairof <: Listof (proper spine)" "(Pairof Integer (Listof Integer))"
      "(Listof Integer)" true;
    t_sub "Pairof covariant" "(Pairof Integer Null)" "(Pairof Real (Listof Integer))" true;
    t_sub "Listof covariant" "(Listof Integer)" "(Listof Real)" true;
    t_sub "Listof not contravariant" "(Listof Real)" "(Listof Integer)" false;
    t_sub "Vectorof invariant" "(Vectorof Integer)" "(Vectorof Real)" false;
    t_sub "Vectorof refl" "(Vectorof Integer)" "(Vectorof Integer)" true;
    t_sub "arrow contravariant domain" "(Real -> Integer)" "(Integer -> Integer)" true;
    t_sub "arrow domain not covariant" "(Integer -> Integer)" "(Real -> Integer)" false;
    t_sub "arrow covariant range" "(Integer -> Integer)" "(Integer -> Real)" true;
    t_sub "arrow arity mismatch" "(Integer -> Integer)" "(Integer Integer -> Integer)" false;
  ]

let joins =
  let j a b = T.to_string (T.join (parse a) (parse b)) in
  [
    Alcotest.test_case "join equal" `Quick (fun () -> check_s "j" "Integer" (j "Integer" "Integer"));
    Alcotest.test_case "join sub" `Quick (fun () -> check_s "j" "Real" (j "Integer" "Real"));
    Alcotest.test_case "join numeric" `Quick (fun () -> check_s "j" "Real" (j "Integer" "Float"));
    Alcotest.test_case "join with complex" `Quick (fun () ->
        check_s "j" "Number" (j "Float" "Float-Complex"));
    Alcotest.test_case "join unrelated makes union" `Quick (fun () ->
        check_s "j" "(U Integer Boolean)" (j "Integer" "Boolean"));
    Alcotest.test_case "join with Any is Any" `Quick (fun () -> check_s "j" "Any" (j "Any" "Integer"));
    Alcotest.test_case "join is upper bound" `Quick (fun () ->
        List.iter
          (fun (a, b) ->
            let l = T.join (parse a) (parse b) in
            check_b (a ^ " <= join") true (T.subtype (parse a) l);
            check_b (b ^ " <= join") true (T.subtype (parse b) l))
          [ ("Integer", "Float"); ("(Listof Integer)", "Null"); ("Boolean", "String") ]);
  ]

let serialization =
  let roundtrip s =
    let t = parse s in
    T.equal t (T.of_datum (T.to_datum t))
  in
  [
    Alcotest.test_case "serialize round trips" `Quick (fun () ->
        List.iter
          (fun s -> check_b s true (roundtrip s))
          [
            "Integer"; "Float-Complex"; "(Integer -> Integer)"; "(Listof (U Integer Boolean))";
            "(List Integer Float String)"; "(Pairof Integer Null)"; "(Vectorof Float)";
            "((Integer -> Real) Float -> (Listof Any))";
          ]);
  ]

let named =
  [
    Alcotest.test_case "define-type introduces a name" `Quick (fun () ->
        T.define_name "TestIntList" (parse "(Listof Integer)");
        check_b "resolves" true (T.equal (T.unfold (parse "TestIntList")) (parse "(Listof Integer)"));
        check_b "subtype through name" true (sub "TestIntList" "(Listof Real)");
        check_b "subtype into name" true (sub "Null" "TestIntList"));
    Alcotest.test_case "recursive type subtyping terminates" `Quick (fun () ->
        T.define_name "TestTree" T.Any (* placeholder first, as define-type does *);
        T.define_name "TestTree" (parse "(U Integer (Pairof TestTree TestTree))");
        check_b "member" true (sub "Integer" "TestTree");
        check_b "pair of trees" true (sub "(Pairof TestTree TestTree)" "TestTree");
        check_b "self" true (sub "TestTree" "TestTree");
        check_b "not boolean" false (sub "Boolean" "TestTree"));
    t_run "define-type in a typed program"
      "#lang typed/racket\n(define-type IntPair (Pairof Integer Integer))\n(define (swap [p : IntPair]) : IntPair (cons (cdr p) (car p)))\n(display (swap (cons 1 2)))"
      "(2 . 1)";
  ]

let suite = parsing @ subtyping @ joins @ serialization @ named
