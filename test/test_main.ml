(** Test runner: all suites. *)

let () =
  Alcotest.run "liblang"
    [
      ("reader", Test_reader.suite);
      ("syntax-objects", Test_stx.suite);
      ("runtime", Test_runtime.suite);
      ("evaluator", Test_interp.suite);
      ("expander", Test_expander.suite);
      ("modules", Test_modules.suite);
      ("contracts", Test_contracts.suite);
      ("types", Test_types.suite);
      ("typechecker", Test_check.suite);
      ("occurrence-typing", Test_occurrence.suite);
      ("boundary", Test_boundary.suite);
      ("optimizer", Test_optimize.suite);
      ("analysis", Test_analysis.suite);
      ("languages", Test_langs.suite);
      ("diagnostics", Test_diagnostics.suite);
      ("observe", Test_observe.suite);
      ("extra", Test_extra.suite);
      ("properties", Test_props.suite);
      ("hygiene", Test_hygiene.suite);
      (* last: these tests reset the module registry between runs to
         simulate fresh processes *)
      ("compiled", Test_compiled.suite);
      ("server", Test_server.suite);
      ("backend", Test_backend.suite);
    ]
