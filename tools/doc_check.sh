#!/bin/sh
# Documentation coherence gate (CI): the docs suite must not drift from
# itself or from the code.
#
#   links: every relative markdown link in README.md and docs/*.md must
#     resolve to an existing file (http/mailto/pure-anchor targets are
#     skipped; a trailing #fragment is stripped before the check) -- a
#     renamed doc or a typo'd cross-reference fails the gate;
#   metrics: every metric name passed as a string literal to
#     Metrics.count / countn / time / add_time anywhere under lib/, bin/
#     or bench/ must appear in docs/observability.md -- the catalogue is
#     the contract, and an instrumented counter nobody documented is
#     drift by definition.  Dynamic names built by concatenation
#     ("optimize." ^ what) contribute their literal prefix, which the
#     catalogue's family rows (optimize.<rule>, expand.fuel.<m>) cover.
#
# Usage: tools/doc_check.sh   (from anywhere; the script cd's to the repo root)

set -u
cd "$(dirname "$0")/.." || exit 2

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT INT TERM

fail=0
bad() { printf 'doc_check FAIL: %s\n' "$*" >&2; fail=1; }

# -- pass 1: relative links resolve ------------------------------------------
nlinks=0
for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' >"$WORK/links" || :
  while IFS= read -r target; do
    case $target in
      http://* | https://* | mailto:* | '#'* | '') continue ;;
    esac
    t=${target%%#*}
    [ -n "$t" ] || continue
    nlinks=$((nlinks + 1))
    if [ ! -e "$dir/$t" ]; then
      bad "$doc: broken link ($target): $dir/$t does not exist"
    fi
  done <"$WORK/links"
done

if [ "$nlinks" -eq 0 ]; then
  bad "no relative links found at all (extraction is broken?)"
fi

# -- pass 2: the metric catalogue covers every instrumented name -------------
CATALOGUE=docs/observability.md
if [ ! -f "$CATALOGUE" ]; then
  bad "$CATALOGUE is missing"
else
  grep -rhoE 'Metrics\.(add_time|countn|count|time)[[:space:]]*\(?[[:space:]]*"[^"]+"' \
    lib bin bench 2>/dev/null \
    | sed 's/.*"\(.*\)"$/\1/' | sort -u >"$WORK/metrics"
  if [ ! -s "$WORK/metrics" ]; then
    bad "no Metrics.* literals found under lib/ bin/ bench/ (extraction is broken?)"
  fi
  while IFS= read -r name; do
    if ! grep -qF "$name" "$CATALOGUE"; then
      bad "metric \"$name\" is instrumented in the code but absent from $CATALOGUE"
    fi
  done <"$WORK/metrics"
fi

if [ "$fail" -eq 0 ]; then
  nmetrics=$(wc -l <"$WORK/metrics" | tr -d ' ')
  echo "doc_check OK: $nlinks relative links resolve; $nmetrics metric literals documented in $CATALOGUE"
fi
exit "$fail"
