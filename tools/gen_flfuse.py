#!/usr/bin/env python3
"""Generate lib/runtime/flfuse.ml: fused closures for the unsafe float and
float-complex primitives.

Each (operation, operand-shape) combination becomes a single OCaml closure
with the leaf reads and the arithmetic inlined, so a nest of unsafe
operations evaluates with one closure call per operation, no dynamic
dispatch, and no boxing of operands — the interpreter-level realization of
the unboxing that the unsafe primitives signal to the code generator
(paper section 7.1)."""

binops = [("unsafe-fl+", "{} +. {}"), ("unsafe-fl-", "{} -. {}"),
          ("unsafe-fl*", "{} *. {}"), ("unsafe-fl/", "{} /. {}"),
          ("unsafe-flmin", "Float.min {} {}"), ("unsafe-flmax", "Float.max {} {}"),
          ("unsafe-flexpt", "Float.pow {} {}")]
cmps = [("unsafe-fl<", "{} < {}"), ("unsafe-fl>", "{} > {}"),
        ("unsafe-fl<=", "{} <= {}"), ("unsafe-fl>=", "{} >= {}"),
        ("unsafe-fl=", "Float.equal {} {}")]
unops = [("unsafe-flabs", "Float.abs"), ("unsafe-flsqrt", "Float.sqrt"),
         ("unsafe-flsin", "sin"), ("unsafe-flcos", "cos"), ("unsafe-fltan", "tan"),
         ("unsafe-flatan", "atan"), ("unsafe-flexp", "exp"), ("unsafe-fllog", "log"),
         ("unsafe-flfloor", "Float.floor"), ("unsafe-flceiling", "Float.ceil"),
         ("unsafe-flround", "Numeric.round_half_even"), ("unsafe-fltruncate", "Float.trunc")]

SHAPES = ["C", "L0", "L1", "LD", "X"]


def nm(name):
    s = name.replace("unsafe-", "u_")
    s = s.replace("fl+", "fl_add").replace("fl-", "fl_sub")
    s = s.replace("fl*", "fl_mul").replace("fl/", "fl_div")
    s = s.replace("fl<=", "fl_le").replace("fl>=", "fl_ge")
    s = s.replace("fl<", "fl_lt").replace("fl>", "fl_gt").replace("fl=", "fl_eq")
    return s.replace("-", "_")


def fpat(shape, v):
    return {"C": f"C {v}", "L0": f"L0 {v}", "L1": f"L1 {v}",
            "LD": f"LD (d{v}, {v})", "X": f"X {v}"}[shape]


def fread(shape, v):
    if shape == "C":
        return v
    if shape == "L0":
        return f"(match env.frame.({v}) with Float f -> f | v -> ub v)"
    if shape == "L1":
        return f"(match env.up.frame.({v}) with Float f -> f | v -> ub v)"
    if shape == "LD":
        return f"(match local env d{v} {v} with Float f -> f | v -> ub v)"
    return f"(match {v} env with Float f -> f | v -> ub v)"


def emit_bin(name, tmpl, result):
    lines = [f"let bin_{nm(name)} (a : leaf) (b : leaf) : env -> value =",
             "  match (a, b) with"]
    for sa in SHAPES:
        for sb in SHAPES:
            va, vb = "x", "y"
            pa, pb = fpat(sa, va), fpat(sb, vb)
            expr = tmpl.format(fread(sa, va), fread(sb, vb))
            if sa == "C" and sb == "C":
                lines.append(f"  | C x, C y ->\n      let r = {tmpl.format('x', 'y')} in\n      fun _ -> {result}(r)")
            else:
                lines.append(f"  | {pa}, {pb} -> fun env -> {result}({expr})")
    return "\n".join(lines) + "\n"


def emit_un(name, fn):
    lines = [f"let un_{nm(name)} (a : leaf) : env -> value =", "  match a with"]
    for sa in SHAPES:
        pa = fpat(sa, "x")
        if sa == "C":
            lines.append(f"  | C x ->\n      let r = {fn} x in\n      fun _ -> Float r")
        else:
            lines.append(f"  | {pa} -> fun env -> Float ({fn} {fread(sa, 'x')})")
    return "\n".join(lines) + "\n"


def cpat(shape, v):
    return {"C": f"CC ({v}r, {v}i)", "L0": f"CL0 {v}", "L1": f"CL1 {v}",
            "LD": f"CLD (d{v}, {v})", "X": f"CX {v}"}[shape]


def cval(shape, v):
    """expression evaluating to the runtime value holding the complex"""
    if shape == "L0":
        return f"env.frame.({v})"
    if shape == "L1":
        return f"env.up.frame.({v})"
    if shape == "LD":
        return f"local env d{v} {v}"
    return f"{v} env"


def emit_cbin(name, body):
    """body: function of (ar ai br bi) -> OCaml expr producing value"""
    fname = {"unsafe-c+": "cbin_add", "unsafe-c-": "cbin_sub",
             "unsafe-c*": "cbin_mul", "unsafe-c/": "cbin_div"}[name]
    lines = [f"let {fname} (a : cleaf) (b : cleaf) : env -> value =",
             "  match (a, b) with"]
    for sa in SHAPES:
        for sb in SHAPES:
            pa, pb = cpat(sa, "x"), cpat(sb, "y")
            if sa == "C" and sb == "C":
                lines.append(
                    f"  | CC (xr, xi), CC (yr, yi) ->\n"
                    f"      let ar = xr and ai = xi and br = yr and bi = yi in\n"
                    f"      let r = {body} in\n"
                    f"      fun _ -> r")
            elif sa == "C":
                lines.append(
                    f"  | CC (xr, xi), {pb} ->\n"
                    f"      fun env ->\n"
                    f"        let ar = xr and ai = xi in\n"
                    f"        (match {cval(sb, 'y')} with\n"
                    f"        | Cpx (br, bi) -> {body}\n"
                    f"        | v ->\n"
                    f"            let br, bi = ubc v in\n"
                    f"            {body})")
            elif sb == "C":
                lines.append(
                    f"  | {pa}, CC (yr, yi) ->\n"
                    f"      fun env ->\n"
                    f"        let br = yr and bi = yi in\n"
                    f"        (match {cval(sa, 'x')} with\n"
                    f"        | Cpx (ar, ai) -> {body}\n"
                    f"        | v ->\n"
                    f"            let ar, ai = ubc v in\n"
                    f"            {body})")
            else:
                lines.append(
                    f"  | {pa}, {pb} ->\n"
                    f"      fun env ->\n"
                    f"        (match ({cval(sa, 'x')}, {cval(sb, 'y')}) with\n"
                    f"        | Cpx (ar, ai), Cpx (br, bi) -> {body}\n"
                    f"        | va, vb ->\n"
                    f"            let ar, ai = ubc va in\n"
                    f"            let br, bi = ubc vb in\n"
                    f"            {body})")
    return "\n".join(lines) + "\n"


def emit_cun(fname, body):
    lines = [f"let {fname} (a : cleaf) : env -> value =", "  match a with"]
    for sa in SHAPES:
        pa = cpat(sa, "x")
        if sa == "C":
            lines.append(
                f"  | CC (xr, xi) ->\n"
                f"      let re = xr and im = xi in\n"
                f"      let r = {body} in\n"
                f"      fun _ -> r")
        else:
            lines.append(
                f"  | {pa} ->\n"
                f"      fun env ->\n"
                f"        (match {cval(sa, 'x')} with\n"
                f"        | Cpx (re, im) -> {body}\n"
                f"        | v ->\n"
                f"            let re, im = ubc v in\n"
                f"            {body})")
    return "\n".join(lines) + "\n"


out = ['''(** GENERATED by tools/gen_flfuse.py — do not edit by hand.

    Fused closures for the unsafe float / float-complex primitives: each
    (operation, operand shape) pair gets a single OCaml closure with the
    leaf reads and the arithmetic inlined, so a nest of unsafe operations
    evaluates with one closure call per operation, no dispatch, and no
    operand boxing — the interpreter-level realization of the unboxing
    that the unsafe primitives signal to the code generator (§7.1). *)

open Value

let ub = function
  | Float f -> f
  | Int n -> float_of_int n
  | v -> error "unsafe flonum operation: given %s (undefined behavior off-type)" (write_string v)

let ubc = function
  | Cpx (re, im) -> (re, im)
  | Float f -> (f, 0.)
  | Int n -> (float_of_int n, 0.)
  | v -> error "unsafe float-complex operation: given %s" (write_string v)

let local env d i =
  let rec up env d = if d = 0 then env.frame.(i) else up env.up (d - 1) in
  up env d

(** float operand shapes: constant, local slot at depth 0/1/deeper, or a
    generic compiled subexpression *)
type leaf = C of float | L0 of int | L1 of int | LD of int * int | X of (env -> value)

(** complex operand shapes *)
type cleaf = CC of float * float | CL0 of int | CL1 of int | CLD of int * int | CX of (env -> value)
''']

for n, t in binops:
    out.append(emit_bin(n, t, "Float "))
for n, t in cmps:
    out.append(emit_bin(n, t, "Bool "))
for n, fn in unops:
    out.append(emit_un(n, fn))

out.append('''let un_fx_to_fl (a : leaf) : env -> value =
  let cvt = function
    | Int n -> float_of_int n
    | Float f -> f
    | v -> error "unsafe-fx->fl: expects a fixnum, given %s" (write_string v)
  in
  match a with
  | C x -> fun _ -> Float x
  | L0 i -> fun env -> Float (cvt env.frame.(i))
  | L1 i -> fun env -> Float (cvt env.up.frame.(i))
  | LD (d, i) -> fun env -> Float (cvt (local env d i))
  | X cx -> fun env -> Float (cvt (cx env))
''')

out.append(emit_cbin("unsafe-c+", "Cpx (ar +. br, ai +. bi)"))
out.append(emit_cbin("unsafe-c-", "Cpx (ar -. br, ai -. bi)"))
out.append(emit_cbin("unsafe-c*", "Cpx ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br))"))
out.append(emit_cbin(
    "unsafe-c/",
    "(let d = (br *. br) +. (bi *. bi) in Cpx (((ar *. br) +. (ai *. bi)) /. d, ((ai *. br) -. (ar *. bi)) /. d))"))
out.append(emit_cun("cun_neg", "Cpx (-.re, -.im)"))
out.append(emit_cun("cun_conj", "Cpx (re, -.im)"))
out.append(emit_cun("c_magnitude", "Float (Float.hypot re im)"))
out.append(emit_cun("c_real_part", "(let _ = im in Float re)"))
out.append(emit_cun("c_imag_part", "(let _ = re in Float im)"))

out.append('''(* make-rectangular from float leaves *)
let c_rect (a : leaf) (b : leaf) : env -> value =
  let rd (l : leaf) (env : env) =
    match l with
    | C x -> x
    | L0 i -> ( match env.frame.(i) with Float f -> f | v -> ub v)
    | L1 i -> ( match env.up.frame.(i) with Float f -> f | v -> ub v)
    | LD (d, i) -> ( match local env d i with Float f -> f | v -> ub v)
    | X c -> ( match c env with Float f -> f | v -> ub v)
  in
  fun env ->
    let re = rd a env in
    Cpx (re, rd b env)
''')

out.append("let bin_table : (string * (leaf -> leaf -> env -> value)) list =\n  [\n"
           + "\n".join(f'    ("{n}", bin_{nm(n)});' for n, _ in binops) + "\n  ]\n")
out.append("let cmp_table : (string * (leaf -> leaf -> env -> value)) list =\n  [\n"
           + "\n".join(f'    ("{n}", bin_{nm(n)});' for n, _ in cmps) + "\n  ]\n")
out.append("let un_table : (string * (leaf -> env -> value)) list =\n  [\n"
           + "\n".join(f'    ("{n}", un_{nm(n)});' for n, _ in unops)
           + '\n    ("unsafe-fx->fl", un_fx_to_fl);\n  ]\n')
out.append('''let cbin_table =
  [ ("unsafe-c+", cbin_add); ("unsafe-c-", cbin_sub); ("unsafe-c*", cbin_mul); ("unsafe-c/", cbin_div) ]

let cun_table =
  [
    ("unsafe-cneg", cun_neg); ("unsafe-conjugate", cun_conj);
    ("unsafe-magnitude", c_magnitude); ("unsafe-real-part", c_real_part);
    ("unsafe-imag-part", c_imag_part);
  ]
''')

with open("lib/runtime/flfuse.ml", "w") as f:
    f.write("\n".join(out))
print("generated", sum(ch.count("\n") for ch in out), "lines")
