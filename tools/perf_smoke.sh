#!/bin/sh
# Hygiene-engine perf smoke gate (CI): the fast path must stay *wired*,
# not just fast.  Four checks (docs/architecture.md "Hygiene internals",
# docs/observability.md metric catalogue):
#
#   1. the expansion stress family (bench --expand --smoke) expands and
#      its closed-form checksums hold -- the bench driver exits 1 on any
#      mismatch, same contract as the cross-variant checksum gate;
#   2. BENCH_fig6.json actually carries the expansion_stress rows with
#      ok:true (guards against the bench wiring silently dropping them);
#   3. a shadowing-heavy program reports expand.resolve_hits > 0 under
#      --profile=json -- the memoized binding resolver only caches
#      multi-binder symbols, so this asserts the cache is exercised
#      rather than silently bypassed by the single-binder fast path;
#   4. the stress family re-runs alone (--filter stx-: no fig6 rows, no
#      parallel projects, hence no domain pool) -- the single-domain
#      regression gate for the parallelism work: the gated locks must
#      not change any checksum when no pool is active;
#   5. a typed float loop under run --engine vm reports
#      vm.instructions > 0 via --profile=json -- the bytecode VM must be
#      actually retiring instructions, not silently falling back to the
#      tree walker (docs/backend.md);
#   6. a known-monomorphic typed program reports analysis.call_sites > 0
#      and opt.direct_calls > 0 via --profile=json -- the 0CFA pass must
#      be finding call sites and the optimizer must be consuming its
#      facts, so a silently inert analysis cannot pass CI
#      (docs/analysis.md).
#
# Timings are noise in CI and are not asserted; correctness of the perf
# machinery is what this gate pins down.
#
# Usage: tools/perf_smoke.sh [path/to/bench/main.exe [path/to/liblang.exe]]
# (from the repo root; the script cd's there itself when invoked from
# elsewhere).  With PERF_SMOKE_REUSE_JSON=1 and a BENCH_fig6.json already
# present, step 1 is skipped and the existing file is checked instead --
# CI uses this so the artifact it uploads keeps the --cached series from
# its own bench step rather than being overwritten here.

set -u
cd "$(dirname "$0")/.." || exit 2

BENCH=${1:-_build/default/bench/main.exe}
LIBLANG=${2:-_build/default/bin/liblang.exe}
for exe in "$BENCH" "$LIBLANG"; do
  if [ ! -x "$exe" ]; then
    echo "perf_smoke: $exe not built (dune build first)" >&2
    exit 2
  fi
done

if command -v timeout >/dev/null 2>&1; then RUN="timeout 300"; else RUN=""; fi

fail=0

# -- 1. expansion stress family + checksum gate ------------------------------
if [ "${PERF_SMOKE_REUSE_JSON:-0}" = 1 ] && [ -f BENCH_fig6.json ]; then
  echo "== perf_smoke: reusing existing BENCH_fig6.json (PERF_SMOKE_REUSE_JSON=1) =="
else
  echo "== perf_smoke: bench --expand --smoke =="
  if ! $RUN "$BENCH" --expand --smoke; then
    echo "perf_smoke: FAIL: bench --expand --smoke exited nonzero (checksum gate?)" >&2
    fail=1
  fi
fi

# -- 2. expansion_stress rows present and ok in BENCH_fig6.json --------------
if [ ! -f BENCH_fig6.json ]; then
  echo "perf_smoke: FAIL: BENCH_fig6.json not written" >&2
  fail=1
else
  rows=$(grep -c '"expand_ms"' BENCH_fig6.json || true)
  if [ "$rows" -lt 3 ]; then
    echo "perf_smoke: FAIL: expected >=3 expand_ms rows in BENCH_fig6.json, got $rows" >&2
    fail=1
  fi
  if grep -q '"ok": false' BENCH_fig6.json; then
    echo "perf_smoke: FAIL: expansion stress checksum row not ok in BENCH_fig6.json" >&2
    fail=1
  fi
  if ! grep -q '"expansion_stress"' BENCH_fig6.json; then
    echo "perf_smoke: FAIL: no expansion_stress section in BENCH_fig6.json" >&2
    fail=1
  fi
fi

# -- 3. the resolver cache is exercised (hits > 0 on shadowing) --------------
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/shadow.scm" <<'EOF'
#lang racket
(define x 1)
(define (f x)
  (let ([x (+ x 10)])
    (let ([x (+ x 100)])
      (+ x x))))
(define (g x) (+ x (f x)))
(display (g x))
EOF

out=$($RUN "$LIBLANG" run --profile=json "$WORK/shadow.scm" 2>/dev/null)
# Program output precedes the JSON object on stdout; the counter line is
# unambiguous either way.
hits=$(printf '%s\n' "$out" | sed -n 's/.*"expand\.resolve_hits": *\([0-9][0-9]*\).*/\1/p' | head -n 1)
if [ -z "${hits:-}" ]; then
  echo "perf_smoke: FAIL: expand.resolve_hits missing from --profile=json output" >&2
  fail=1
elif [ "$hits" -le 0 ]; then
  echo "perf_smoke: FAIL: expand.resolve_hits = $hits (resolver cache not exercised)" >&2
  fail=1
else
  echo "perf_smoke: resolver cache exercised (expand.resolve_hits = $hits)"
fi

# -- 4. single-domain regression gate: stx checksums with no pool ------------
# Re-run the stress family alone in a scratch directory.  `--filter stx-`
# skips the fig6 rows and the parallel projects entirely, so no domain
# pool ever activates: this pins the stress checksums on the pure
# single-domain path, where the parallelism gate must be a no-op (its
# locks sit off the intern-hit fast path -- docs/architecture.md,
# "Parallelism & domain-safety").  Gate on checksums, never wall time.
echo "== perf_smoke: single-domain stx stress (--expand --smoke --filter stx-) =="
BENCH_ABS=$(cd "$(dirname "$BENCH")" && pwd)/$(basename "$BENCH")
if ! (cd "$WORK" && $RUN "$BENCH_ABS" --expand --smoke --filter "stx-" >/dev/null); then
  echo "perf_smoke: FAIL: single-domain stx stress exited nonzero (checksum gate?)" >&2
  fail=1
elif [ ! -f "$WORK/BENCH_fig6.json" ]; then
  echo "perf_smoke: FAIL: single-domain stx stress wrote no BENCH_fig6.json" >&2
  fail=1
else
  srows=$(grep -c '"expand_ms"' "$WORK/BENCH_fig6.json" || true)
  if [ "$srows" -lt 3 ]; then
    echo "perf_smoke: FAIL: expected >=3 single-domain stress rows, got $srows" >&2
    fail=1
  fi
  if grep -q '"ok": false' "$WORK/BENCH_fig6.json"; then
    echo "perf_smoke: FAIL: single-domain stx checksum row not ok" >&2
    fail=1
  else
    echo "perf_smoke: single-domain stx checksums hold ($srows rows)"
  fi
fi

# -- 5. the bytecode VM is wired (vm.instructions > 0 under --engine vm) -----
# Same answer under both engines, and the VM run must actually retire
# bytecode: a zero counter means every form fell back to the interpreter,
# which the parity gates cannot see (fallback is observably identical by
# design -- docs/backend.md).
cat > "$WORK/flloop.scm" <<'EOF'
#lang typed/racket
(: run (Float -> Float))
(define (run n)
  (let loop : Float ([i : Float 0.0] [s : Float 0.0])
    (if (< i n) (loop (+ i 1.0) (+ s i)) s)))
(display (run 1000.0))
EOF

interp_out=$($RUN "$LIBLANG" run "$WORK/flloop.scm" 2>/dev/null)
vm_answer=$($RUN "$LIBLANG" run --engine vm "$WORK/flloop.scm" 2>/dev/null)
if [ "$interp_out" != "$vm_answer" ]; then
  echo "perf_smoke: FAIL: --engine vm output '$vm_answer' != interpreter '$interp_out'" >&2
  fail=1
fi
# The profile JSON follows the program output on stdout; the counter line
# is unambiguous either way.
vm_out=$($RUN "$LIBLANG" run --profile=json --engine vm "$WORK/flloop.scm" 2>/dev/null)
instrs=$(printf '%s\n' "$vm_out" | sed -n 's/.*"vm\.instructions": *\([0-9][0-9]*\).*/\1/p' | head -n 1)
if [ -z "${instrs:-}" ]; then
  echo "perf_smoke: FAIL: vm.instructions missing from --engine vm --profile=json output" >&2
  fail=1
elif [ "$instrs" -le 0 ]; then
  echo "perf_smoke: FAIL: vm.instructions = $instrs (VM fell back to the interpreter)" >&2
  fail=1
else
  echo "perf_smoke: bytecode VM wired (vm.instructions = $instrs)"
fi

# -- 6. the 0CFA analysis is wired (facts found and consumed) -----------------
# Every call in this program is monomorphic, so the analysis must report
# call sites and the optimizer must turn at least one of them into a
# direct call.  Zero on either counter means the flow-analysis pipeline
# is inert -- parity gates cannot see that (an unoptimized program is
# observably identical by design -- docs/analysis.md).
cat > "$WORK/mono.scm" <<'EOF'
#lang typed/racket
(define (add2 [x : Integer]) : Integer (+ x 2))
(define (go [v : (Vectorof Integer)]) : Integer
  (let ([n (vector-length v)])
    (let loop : Integer ([j : Integer 0] [acc : Integer 0])
      (if (< j n) (loop (+ j 1) (+ acc (vector-ref v j))) acc))))
(display (add2 (go (make-vector 16 3))))
EOF

mono_out=$($RUN "$LIBLANG" run --profile=json "$WORK/mono.scm" 2>/dev/null)
sites=$(printf '%s\n' "$mono_out" | sed -n 's/.*"analysis\.call_sites": *\([0-9][0-9]*\).*/\1/p' | head -n 1)
directs=$(printf '%s\n' "$mono_out" | sed -n 's/.*"opt\.direct_calls": *\([0-9][0-9]*\).*/\1/p' | head -n 1)
if [ -z "${sites:-}" ] || [ "$sites" -le 0 ]; then
  echo "perf_smoke: FAIL: analysis.call_sites = ${sites:-missing} (0CFA pass inert)" >&2
  fail=1
elif [ -z "${directs:-}" ] || [ "$directs" -le 0 ]; then
  echo "perf_smoke: FAIL: opt.direct_calls = ${directs:-missing} (facts not consumed)" >&2
  fail=1
else
  echo "perf_smoke: 0CFA wired (analysis.call_sites = $sites, opt.direct_calls = $directs)"
fi

if [ "$fail" -ne 0 ]; then
  echo "perf_smoke: FAILED" >&2
  exit 1
fi
echo "perf_smoke: OK"
