#!/bin/sh
# Cache coherence gate (CI): exercise the separate-compilation layer
# (lib/compiled/, docs/compilation.md) over every example and adversarial
# corpus file, twice, through one shared artifact store.
#
#   pass 1 (cold): every file must either compile (exit 0) or fail with
#     ordinary diagnostics (exit 1) -- any other exit means the compiler
#     crashed instead of containing the failure;
#   pass 2 (warm): every file that compiled must now be satisfied
#     entirely from the store (compiles=0, misses=0 on the summary line);
#   pass 3 (-j2): the same files again, fresh store, a two-domain pool:
#     the parallel build must succeed, replay warm, and write artifacts
#     byte-identical to the serial store's (docs/compilation.md,
#     "Parallel builds" -- determinism is a hard invariant, not a
#     best-effort);
#   runs: every example must print byte-identical output with and
#     without the cache, with matching exit codes;
#   engine vm: every example again under run --engine vm, cached and
#     uncached -- both must match the interpreter's uncached output
#     byte-for-byte (the cached leg warm-loads the artifact's v3
#     bytecode section; docs/backend.md).
#
# Usage: tools/cache_check.sh [path/to/liblang.exe]   (from the repo root;
# the script cd's there itself when invoked from elsewhere)

set -u
cd "$(dirname "$0")/.." || exit 2

LIBLANG=${1:-_build/default/bin/liblang.exe}
if [ ! -x "$LIBLANG" ]; then
  echo "cache_check: $LIBLANG not built (dune build bin/liblang.exe first)" >&2
  exit 2
fi

# Bound each invocation when coreutils timeout is available (a hang is a
# failure, not a freeze).
if command -v timeout >/dev/null 2>&1; then RUN="timeout 120"; else RUN=""; fi

WORK=$(mktemp -d)
CACHE="$WORK/cache"
trap 'rm -rf "$WORK"' EXIT INT TERM

fail=0
bad() { printf 'cache_check FAIL: %s\n' "$*" >&2; fail=1; }

files="examples/scm/*.scm test/corpus/*.scm"

# -- pass 1: cold ------------------------------------------------------------
for f in $files; do
  out=$($RUN "$LIBLANG" compile --cache-dir "$CACHE" "$f" 2>/dev/null)
  code=$?
  case $code in
    0) printf '%s\n' "$f" >>"$WORK/ok" ;;
    1) ;; # ordinary diagnostics: expected for the adversarial corpus
    *) bad "$f: cold compile exited $code (diagnostics should exit 1, never crash)" ;;
  esac
done

if [ ! -f "$WORK/ok" ]; then
  bad "no file compiled successfully on the cold pass"
fi

# -- pass 2: warm ------------------------------------------------------------
if [ -f "$WORK/ok" ]; then
  while IFS= read -r f; do
    out=$($RUN "$LIBLANG" compile --cache-dir "$CACHE" "$f" 2>/dev/null)
    code=$?
    if [ "$code" -ne 0 ]; then
      bad "$f: warm compile exited $code"
      continue
    fi
    case $out in
      *"compiles=0 "*) : ;;
      *) bad "$f: warm pass recompiled instead of loading artifacts: $out" ;;
    esac
    case $out in
      *"misses=0"*) : ;;
      *) bad "$f: warm pass missed the cache: $out" ;;
    esac
  done <"$WORK/ok"
fi

# -- pass 3: parallel (-j2) ---------------------------------------------------
CACHE2="$WORK/cache-j2"
if [ -f "$WORK/ok" ]; then
  # cold with a two-domain pool, into a fresh store
  while IFS= read -r f; do
    out=$($RUN "$LIBLANG" compile -j 2 --cache-dir "$CACHE2" "$f" 2>/dev/null)
    code=$?
    if [ "$code" -ne 0 ]; then
      bad "$f: -j2 cold compile exited $code"
    fi
  done <"$WORK/ok"
  # warm with the pool: still hit-only
  while IFS= read -r f; do
    out=$($RUN "$LIBLANG" compile -j 2 --cache-dir "$CACHE2" "$f" 2>/dev/null)
    code=$?
    if [ "$code" -ne 0 ]; then
      bad "$f: -j2 warm compile exited $code"
      continue
    fi
    case $out in
      *"compiles=0 "*) : ;;
      *) bad "$f: -j2 warm pass recompiled instead of loading artifacts: $out" ;;
    esac
  done <"$WORK/ok"
  # determinism: every artifact the -j2 store wrote must be byte-identical
  # to the serial store's copy (same keys: same files, absolute paths)
  for a in "$CACHE2"/*.lart; do
    [ -e "$a" ] || continue
    b="$CACHE/$(basename "$a")"
    if [ ! -f "$b" ]; then
      bad "determinism: $(basename "$a") exists in the -j2 store but not the serial one"
    elif ! cmp -s "$a" "$b"; then
      bad "determinism: $(basename "$a") differs between the serial and -j2 stores"
    fi
  done
fi

# -- cached vs uncached run output -------------------------------------------
for f in examples/scm/*.scm; do
  plain=$($RUN "$LIBLANG" run "$f" 2>/dev/null)
  pc=$?
  cached=$($RUN "$LIBLANG" run --cache-dir "$CACHE" "$f" 2>/dev/null)
  cc=$?
  if [ "$pc" -ne "$cc" ]; then
    bad "$f: exit code diverges cached ($cc) vs uncached ($pc)"
  fi
  if [ "$plain" != "$cached" ]; then
    bad "$f: cached run output diverges from uncached"
  fi
  # engine parity through the same store: the VM must agree with the
  # interpreter uncached, and warm-loading the artifact's bytecode
  # section must not change a byte either.
  vm=$($RUN "$LIBLANG" run --engine vm "$f" 2>/dev/null)
  vc=$?
  vmc=$($RUN "$LIBLANG" run --engine vm --cache-dir "$CACHE" "$f" 2>/dev/null)
  vcc=$?
  if [ "$pc" -ne "$vc" ] || [ "$pc" -ne "$vcc" ]; then
    bad "$f: exit code diverges under --engine vm (interp $pc, vm $vc, vm cached $vcc)"
  fi
  if [ "$plain" != "$vm" ]; then
    bad "$f: --engine vm output diverges from the interpreter"
  fi
  if [ "$plain" != "$vmc" ]; then
    bad "$f: cached --engine vm output diverges from the interpreter"
  fi
done

if [ "$fail" -eq 0 ]; then
  n=0
  [ -f "$WORK/ok" ] && n=$(wc -l <"$WORK/ok")
  echo "cache_check OK: $n modules warm-loaded (serial and -j2, byte-identical stores); cached, uncached, and --engine vm runs agree"
fi
exit "$fail"
