#!/bin/sh
# Chaos gate (CI): drive seeded fault schedules through the CLI and
# assert the closed-loop robustness property of the separate-compilation
# layer (docs/robustness.md):
#
#   for every seeded fault plan over every gen-modules graph shape, a
#   -j2 build either succeeds, fails with ordinary diagnostics (exit 1),
#   or dies on an injected crash (exit 42 -- kill -9 semantics, temp
#   files stranded); it never hangs (the per-run timeout fails the gate)
#   and never exits any other way.  Afterwards a fault-free -j2 build
#   over the damaged cache must succeed, every artifact must be
#   byte-identical to a fault-free -j1 reference store, the warm program
#   must print the generator's expected output, and no *.tmp.* orphans
#   may remain (quarantined *.bad post-mortems are allowed by design).
#
# Unlike bench --chaos (in-process, error/torn/delay only), this gate
# runs each schedule in a subprocess, so it exercises the crash mode and
# the tmp-file sweep for real.
#
# Usage: tools/chaos_check.sh [path/to/liblang.exe]   (from the repo root;
# the script cd's there itself when invoked from elsewhere).
# CHAOS_SEEDS=N overrides the seeds-per-shape count (default 18: 18
# seeds x 3 shapes = 54 schedules).

set -u
cd "$(dirname "$0")/.." || exit 2

LIBLANG=${1:-_build/default/bin/liblang.exe}
if [ ! -x "$LIBLANG" ]; then
  echo "chaos_check: $LIBLANG not built (dune build bin/liblang.exe first)" >&2
  exit 2
fi
LIBLANG=$(cd "$(dirname "$LIBLANG")" && pwd)/$(basename "$LIBLANG")

if command -v timeout >/dev/null 2>&1; then RUN="timeout 60"; else RUN=""; fi

SEEDS=${CHAOS_SEEDS:-18}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT INT TERM

fail=0
bad() { printf 'chaos_check FAIL: %s\n' "$*" >&2; fail=1; }

schedules=0
crashes=0
diag_fails=0

for shape in wide diamond chain; do
  DIR="$WORK/$shape"
  mkdir -p "$DIR"
  gen=$("$LIBLANG" gen-modules --dir "$DIR" --shape "$shape" 6)
  root=$(printf '%s\n' "$gen" | sed -n 's/^root: //p')
  expected=$(printf '%s\n' "$gen" | sed -n 's/^expected output: //p')
  if [ -z "$root" ] || [ -z "$expected" ]; then
    bad "$shape: gen-modules did not report a root/expected output"
    continue
  fi

  # fault-free -j1 reference store
  REF="$DIR/cache-ref"
  if ! $RUN "$LIBLANG" compile -j 1 --cache-dir "$REF" "$root" >/dev/null 2>&1; then
    bad "$shape: fault-free -j1 reference build failed"
    continue
  fi

  CACHE="$DIR/cache-chaos"
  s=0
  while [ "$s" -lt "$SEEDS" ]; do
    s=$((s + 1))
    seed=$((s * 37))
    # rotate three plan templates; crash modes are the point of running
    # via the CLI (an in-process crash would kill the driver)
    case $((s % 3)) in
      0) plan="seed=$seed;deadline=20;store.read=error~0.25;store.write=torn@64~0.3;build.task=error~0.25" ;;
      1) plan="seed=$seed;deadline=20;store.rename=crash~0.08;store.write=torn@40~0.2;loader.replay=error~0.25;store.lock=delay@5~0.2" ;;
      2) plan="seed=$seed;deadline=20;build.spawn=error~0.3;build.task=delay@15~0.2;store.read=error~0.2" ;;
    esac
    $RUN "$LIBLANG" compile -j 2 --cache-dir "$CACHE" --faults "$plan" "$root" >/dev/null 2>&1
    code=$?
    schedules=$((schedules + 1))
    case $code in
      0) ;;                            # survived the schedule
      1) diag_fails=$((diag_fails + 1)) ;;  # contained diagnostics
      42) crashes=$((crashes + 1)) ;;  # injected crash (expected)
      124) bad "$shape seed=$seed: build timed out (pool hang?) plan=$plan" ;;
      *) bad "$shape seed=$seed: build exited $code (not 0/1/42) plan=$plan" ;;
    esac
  done

  # recovery: a fault-free warm build over the damaged cache must heal it
  if ! $RUN "$LIBLANG" compile -j 2 --cache-dir "$CACHE" "$root" >/dev/null 2>&1; then
    bad "$shape: fault-free recovery build failed over the damaged cache"
    continue
  fi
  # ... reach a fully warm steady state ...
  out=$($RUN "$LIBLANG" compile -j 2 --cache-dir "$CACHE" "$root" 2>/dev/null)
  case $out in
    *"compiles=0 "*) : ;;
    *) bad "$shape: post-recovery build is not fully warm: $out" ;;
  esac
  # ... print the generator's closed form ...
  got=$($RUN "$LIBLANG" run --cache-dir "$CACHE" "$root" 2>/dev/null)
  if [ "$got" != "$expected" ]; then
    bad "$shape: recovered run printed '$got', expected '$expected'"
  fi
  # ... with every artifact byte-identical to the fault-free -j1 store ...
  for a in "$CACHE"/*.lart; do
    [ -e "$a" ] || continue
    b="$REF/$(basename "$a")"
    if [ ! -f "$b" ]; then
      bad "$shape: $(basename "$a") exists in the chaos store but not the reference"
    elif ! cmp -s "$a" "$b"; then
      bad "$shape: $(basename "$a") differs from the fault-free reference after recovery"
    fi
  done
  for b in "$REF"/*.lart; do
    [ -e "$b" ] || continue
    if [ ! -f "$CACHE/$(basename "$b")" ]; then
      bad "$shape: $(basename "$b") missing from the chaos store after recovery"
    fi
  done
  # ... and no stranded temp files (the recovery build's store open swept
  # anything a crashed schedule left behind)
  leftover=$(find "$CACHE" -name '*.tmp.*' | wc -l)
  if [ "$leftover" -ne 0 ]; then
    bad "$shape: $leftover stranded *.tmp.* file(s) survived recovery"
  fi
done

if [ "$schedules" -lt 50 ]; then
  bad "only $schedules schedules ran (need >= 50; is CHAOS_SEEDS too low?)"
fi

# -- bytecode-section chaos (docs/backend.md) --------------------------------
# The artifact's v3 bytecode section must degrade like every other
# artifact problem: injected vm.load faults fall back to a fresh
# lowering, and on-disk corruption fails the integrity trailer into a
# clean recompile -- in both cases the program's output is byte-identical
# to the fault-free run, and a fault-free rebuild heals the store
# byte-identical to the reference artifact.
VMDIR="$WORK/vm"
mkdir -p "$VMDIR"
cat > "$VMDIR/flloop.scm" <<'EOF'
#lang typed/racket
(: run (Float -> Float))
(define (run n)
  (let loop : Float ([i : Float 0.0] [s : Float 0.0])
    (if (< i n) (loop (+ i 1.0) (+ s i)) s)))
(display (run 1000.0))
EOF
VMCACHE="$VMDIR/cache"
if ! $RUN "$LIBLANG" compile --cache-dir "$VMCACHE" "$VMDIR/flloop.scm" >/dev/null 2>&1; then
  bad "vm: cold compile of the float kernel failed"
else
  vm_expected=$($RUN "$LIBLANG" run --cache-dir "$VMCACHE" --engine vm "$VMDIR/flloop.scm" 2>/dev/null)
  # injected load faults: every decode attempt errors; the form must
  # lower afresh and the answer must not change
  for seed in 11 23 47; do
    got=$($RUN "$LIBLANG" run --cache-dir "$VMCACHE" --engine vm \
      --faults "seed=$seed;vm.load=error~1.0" "$VMDIR/flloop.scm" 2>/dev/null)
    schedules=$((schedules + 1))
    if [ "$got" != "$vm_expected" ]; then
      bad "vm seed=$seed: output under vm.load faults diverged ('$got' vs '$vm_expected')"
    fi
  done
  # on-disk corruption: flip one digit inside the bytecode section,
  # leaving the integrity trailer stale -- the loader must reject the
  # whole artifact and recompile cleanly
  art=$(ls "$VMCACHE"/*.lart 2>/dev/null | head -n 1)
  if [ -z "$art" ] || ! grep -q '^(bytecode ' "$art"; then
    bad "vm: artifact has no bytecode section to corrupt"
  else
    cp "$art" "$VMDIR/art-ref"
    sed '/^(bytecode /s/5/6/' "$VMDIR/art-ref" > "$art"
    if cmp -s "$art" "$VMDIR/art-ref"; then
      bad "vm: corruption sed was a no-op (artifact unchanged)"
    fi
    got=$($RUN "$LIBLANG" run --cache-dir "$VMCACHE" --engine vm "$VMDIR/flloop.scm" 2>/dev/null)
    if [ "$got" != "$vm_expected" ]; then
      bad "vm: output over a corrupt bytecode section diverged ('$got' vs '$vm_expected')"
    fi
    # the fault-free rebuild must have healed the artifact byte-identically
    if ! cmp -s "$art" "$VMDIR/art-ref"; then
      bad "vm: corrupt bytecode section did not heal byte-identical to the reference"
    fi
  fi
fi

# -- concurrent-server chaos (docs/server.md) --------------------------------
# The daemon's worker pool must extend the same blast-radius discipline:
# under seeded session/exec/worker-death/build faults and concurrent
# client load, the daemon survives and the artifact store stays
# crash-consistent -- a fresh fault-free daemon over the same cache must
# heal it, serve a fresh session fully warm (compiles=0), print the
# generator's closed form, and match a fault-free reference store byte
# for byte.
server_reqs=0
SRVDIR="$WORK/server"
mkdir -p "$SRVDIR"
sgen=$("$LIBLANG" gen-modules --dir "$SRVDIR" --shape diamond 6)
sroot=$(printf '%s\n' "$sgen" | sed -n 's/^root: //p')
sexpected=$(printf '%s\n' "$sgen" | sed -n 's/^expected output: //p')
SOCK="$SRVDIR/chaos.sock"
SCACHE="$SRVDIR/cache"
srv_pid=
if [ -z "$sroot" ] || [ -z "$sexpected" ]; then
  bad "server: gen-modules did not report a root/expected output"
else
  "$LIBLANG" serve --socket "$SOCK" --cache-dir "$SCACHE" --workers 2 \
    --session-ttl 2 --faults \
    "seed=91;deadline=20;server.session=error~0.12;server.exec=error~0.2;server.worker=error~0.08;build.task=error~0.15" \
    >/dev/null 2>&1 &
  srv_pid=$!
  tries=0
  while [ ! -S "$SOCK" ] && [ "$tries" -lt 50 ]; do
    tries=$((tries + 1)); sleep 0.1
  done
  if [ ! -S "$SOCK" ]; then
    bad "server: faulted daemon did not come up"
  else
    round=0
    while [ "$round" -lt 3 ]; do
      round=$((round + 1))
      pids=
      i=0
      while [ "$i" -lt 8 ]; do
        i=$((i + 1))
        # faults may cost any single client its request or connection --
        # any exit code but a hang is acceptable
        $RUN "$LIBLANG" client --socket "$SOCK" run "$sroot" >/dev/null 2>&1 &
        pids="$pids $!"
      done
      for p in $pids; do
        wait "$p"
        code=$?
        server_reqs=$((server_reqs + 1))
        if [ "$code" -eq 124 ]; then
          bad "server: a chaos client hung (round $round)"
        fi
      done
      if ! kill -0 "$srv_pid" 2>/dev/null; then
        bad "server: daemon died under chaos load (round $round)"
        break
      fi
    done
    # shut the faulted daemon down; the session fault can kill a shutdown
    # request's connection, so retry, then hard-kill as a last resort
    tries=0
    while kill -0 "$srv_pid" 2>/dev/null && [ "$tries" -lt 10 ]; do
      tries=$((tries + 1))
      $RUN "$LIBLANG" client --socket "$SOCK" shutdown >/dev/null 2>&1 && break
      sleep 0.1
    done
    sleep 0.2
    if kill -0 "$srv_pid" 2>/dev/null; then
      kill "$srv_pid" 2>/dev/null
    fi
    wait "$srv_pid" 2>/dev/null
  fi
fi
if [ -n "$srv_pid" ]; then
  # heal: a fresh fault-free daemon over the chaos-damaged cache
  SOCK2="$SRVDIR/heal.sock"
  "$LIBLANG" serve --socket "$SOCK2" --cache-dir "$SCACHE" --workers 2 \
    >/dev/null 2>&1 &
  heal_pid=$!
  tries=0
  while [ ! -S "$SOCK2" ] && [ "$tries" -lt 50 ]; do
    tries=$((tries + 1)); sleep 0.1
  done
  if [ ! -S "$SOCK2" ]; then
    bad "server: fault-free heal daemon did not come up"
    kill "$heal_pid" 2>/dev/null
  else
    # first client connection recovers whatever the chaos runs left cold
    if ! $RUN "$LIBLANG" client --socket "$SOCK2" compile "$sroot" >/dev/null 2>&1; then
      bad "server: fault-free recovery compile failed over the damaged cache"
    fi
    # each client invocation is a NEW connection = a fresh session, so a
    # warm store is the only way this reports compiles=0
    out=$($RUN "$LIBLANG" client --socket "$SOCK2" compile "$sroot" 2>/dev/null)
    case $out in
      *"compiles=0 "*) : ;;
      *) bad "server: post-recovery fresh session is not fully warm: $out" ;;
    esac
    got=$($RUN "$LIBLANG" client --socket "$SOCK2" run "$sroot" 2>/dev/null)
    if [ "$got" != "$sexpected" ]; then
      bad "server: recovered run printed '$got', expected '$sexpected'"
    fi
    $RUN "$LIBLANG" client --socket "$SOCK2" shutdown >/dev/null 2>&1
    wait "$heal_pid" 2>/dev/null
  fi
  # the healed store must match a fault-free reference byte for byte,
  # with no stranded temp files
  SREF="$SRVDIR/cache-ref"
  if ! $RUN "$LIBLANG" compile -j 1 --cache-dir "$SREF" "$sroot" >/dev/null 2>&1; then
    bad "server: fault-free reference build failed"
  else
    for a in "$SCACHE"/*.lart; do
      [ -e "$a" ] || continue
      b="$SREF/$(basename "$a")"
      if [ ! -f "$b" ]; then
        bad "server: $(basename "$a") exists in the chaos store but not the reference"
      elif ! cmp -s "$a" "$b"; then
        bad "server: $(basename "$a") differs from the fault-free reference after recovery"
      fi
    done
    for b in "$SREF"/*.lart; do
      [ -e "$b" ] || continue
      if [ ! -f "$SCACHE/$(basename "$b")" ]; then
        bad "server: $(basename "$b") missing from the chaos store after recovery"
      fi
    done
  fi
  leftover=$(find "$SCACHE" -name '*.tmp.*' | wc -l)
  if [ "$leftover" -ne 0 ]; then
    bad "server: $leftover stranded *.tmp.* file(s) survived recovery"
  fi
fi

if [ "$fail" -eq 0 ]; then
  echo "chaos_check OK: $schedules seeded schedules ($crashes injected crashes, $diag_fails contained failures), $server_reqs concurrent-server chaos requests; all stores recovered byte-identical"
fi
exit "$fail"
