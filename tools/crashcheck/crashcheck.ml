(** Crash-containment corpus runner.

    Feeds every adversarial program under [test/corpus/*.scm] through the
    fault-contained pipeline and asserts, for each one:

    - it produces at least one diagnostic (these programs are all broken
      on purpose — succeeding silently would be a bug in the corpus);
    - no diagnostic is [Internal] (an [Internal] diagnostic means an
      exception escaped a phase uncontained);
    - it terminates within the wall-clock cap (divergence must be cut off
      by fuel, not by the operator's patience).

    Usage: [crashcheck [CORPUS-DIR]] (default: test/corpus, resolved
    relative to the current directory or the repository root).  Exit code
    0 when every file is contained, 1 otherwise. *)

module Pipeline = Liblang_core.Pipeline
module Diagnostic = Pipeline.Diagnostic
module Core = Liblang_core.Core

exception Timeout

(* Wall-clock backstop: with fuel at 200k steps nothing here should take
   more than a fraction of a second; 10s means something escaped the
   fuel accounting entirely. *)
let time_cap_seconds = 10

let with_time_cap f =
  let previous =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timeout))
  in
  ignore (Unix.alarm time_cap_seconds);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm previous)
    f

let check_file path : (string, string) result =
  (* isolate module registries between corpus files *)
  Core.Modsys.reset_user_modules_for_tests ();
  match
    with_time_cap (fun () ->
        (* capture the object program's output so the report stays readable *)
        Core.Prims.with_captured_output (fun () -> Pipeline.run_file ~fuel:200_000 path))
  with
  | exception Timeout -> Error "timed out (divergence escaped the fuel budget)"
  | exception e -> Error ("uncaught exception escaped the pipeline: " ^ Printexc.to_string e)
  | _, Ok _ -> Error "ran to completion, but every corpus program is broken on purpose"
  | _, Error [] -> Error "failed with an empty diagnostic list"
  | _, Error ds -> (
      match List.filter Diagnostic.is_internal ds with
      | [] ->
          Ok
            (Printf.sprintf "%d diagnostic%s (first: %s)" (List.length ds)
               (if List.length ds = 1 then "" else "s")
               (Diagnostic.to_string (List.hd ds)))
      | internal ->
          Error
            ("internal diagnostic (exception escaped containment): "
            ^ Diagnostic.to_string (List.hd internal)))

(* -- adversarial cache dirs ----------------------------------------------------

   The artifact store must never break a run: "any unusable artifact (or
   store) degrades to a recompile, never an error" (docs/compilation.md).
   Each case runs a tiny valid program through [run_file ?cache_dir]
   against a hostile cache location and asserts the program still prints
   its answer.  (Unwritable-permission cases are deliberately absent: CI
   and containers often run as root, where chmod 0 is not a barrier.) *)

let check_cache_dir_case ~(label : string) (prepare : string -> string) :
    (string, string) result =
  Core.Modsys.reset_user_modules_for_tests ();
  Core.Compiled.reset_session ();
  let work =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "crashcheck-cache-%d-%s" (Unix.getpid ()) label)
  in
  (try Unix.mkdir work 0o755 with Unix.Unix_error _ -> ());
  let src = Filename.concat work "prog.scm" in
  let oc = open_out_bin src in
  output_string oc "#lang racket\n(define (tri n) (if (= n 0) 0 (+ n (tri (- n 1)))))\n(display (tri 7))\n";
  close_out oc;
  let cache_dir = prepare work in
  match
    with_time_cap (fun () ->
        Core.Prims.with_captured_output (fun () ->
            Pipeline.run_file ~fuel:200_000 ~cache_dir src))
  with
  | exception Timeout -> Error "timed out against a hostile cache dir"
  | exception e -> Error ("uncaught exception escaped the pipeline: " ^ Printexc.to_string e)
  | out, Ok _ ->
      if String.equal out "28" then Ok "ran correctly despite the hostile cache dir"
      else Error (Printf.sprintf "printed %S, expected \"28\"" out)
  | _, Error ds ->
      Error
        ("cache trouble broke the run: "
        ^ (match ds with d :: _ -> Diagnostic.to_string d | [] -> "(no diagnostics)"))

let cache_dir_cases =
  [
    ( "cache-dir-is-a-file",
      fun work ->
        (* the would-be cache directory already exists as a regular file:
           mkdir fails, every write fails, reads find nothing *)
        let path = Filename.concat work "cache-as-file" in
        let oc = open_out_bin path in
        output_string oc "not a directory\n";
        close_out oc;
        path );
    ( "artifact-path-is-a-dir",
      fun work ->
        (* the module's artifact path inside the cache is occupied by a
           directory: reads are unreadable, the write's rename fails *)
        let cache = Filename.concat work "cache-art-dir" in
        Unix.mkdir cache 0o755;
        let key = Core.Compiled.Resolver.module_key (Filename.concat work "prog.scm") in
        let art =
          Filename.concat cache (Core.Compiled.Digest_util.key_file key ^ ".lart")
        in
        Unix.mkdir art 0o755;
        cache );
    ( "nested-missing-cache-dir",
      fun work ->
        (* a/b/c where even [a] does not exist: Store.create's single
           mkdir cannot create it, so every access misses *)
        Filename.concat (Filename.concat (Filename.concat work "a") "b") "c" );
  ]

(* -- analyzer containment ------------------------------------------------------

   [liblang analyze] over the same corpus plus the working examples: the
   0CFA pass must terminate (its monotone join lattice is finite and the
   pipeline's fuel caps expansion) and must never crash — broken
   programs get contained diagnostics, working programs get a facts
   report.  A hang or an escaped exception here is an analyzer bug, not
   a corpus property. *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_analyze path : (string, string) result =
  Core.Modsys.reset_user_modules_for_tests ();
  match
    with_time_cap (fun () ->
        Core.Prims.with_captured_output (fun () ->
            Pipeline.analyze ~fuel:200_000 ~name:(Filename.basename path) (slurp path)))
  with
  | exception Timeout -> Error "analysis timed out (widening failed to converge)"
  | exception e -> Error ("uncaught exception escaped the analyzer: " ^ Printexc.to_string e)
  | _, Ok lines -> Ok (Printf.sprintf "analyzed (%d report lines)" (List.length lines))
  | _, Error [] -> Error "failed with an empty diagnostic list"
  | _, Error ds -> (
      match List.filter Diagnostic.is_internal ds with
      | [] ->
          Ok
            (Printf.sprintf "contained (%d diagnostic%s)" (List.length ds)
               (if List.length ds = 1 then "" else "s"))
      | internal ->
          Error
            ("internal diagnostic (exception escaped containment): "
            ^ Diagnostic.to_string (List.hd internal)))

(* -- engine differential gate --------------------------------------------------

   The bytecode VM must be observably identical to the closure-tree
   interpreter (docs/backend.md): for every corpus program (broken on
   purpose — the interesting case is identical *diagnostics*, including
   where the fuel ran out) and every example program (working on purpose
   — identical output), a run under each engine must agree byte for
   byte on both captured output and the rendered diagnostic list. *)

let run_under (engine : Pipeline.engine) path : (string * string, string) result =
  Core.Modsys.reset_user_modules_for_tests ();
  match
    with_time_cap (fun () ->
        Core.Prims.with_captured_output (fun () ->
            Pipeline.run_file ~fuel:200_000 ~engine path))
  with
  | exception Timeout -> Error "timed out (divergence escaped the fuel budget)"
  | exception e -> Error ("uncaught exception escaped the pipeline: " ^ Printexc.to_string e)
  | out, Ok _ -> Ok (out, "")
  | out, Error ds -> Ok (out, String.concat "\n" (List.map Diagnostic.to_string ds))

let check_differential path : (string, string) result =
  match (run_under Pipeline.Interp path, run_under Pipeline.Vm path) with
  | Error why, _ -> Error ("interp: " ^ why)
  | _, Error why -> Error ("vm: " ^ why)
  | Ok (o1, d1), Ok (o2, d2) ->
      if not (String.equal o1 o2) then
        Error
          (Printf.sprintf "output diverges: interp %s vs vm %s"
             (Diagnostic.truncated o1) (Diagnostic.truncated o2))
      else if not (String.equal d1 d2) then
        Error
          (Printf.sprintf "diagnostics diverge: interp %s vs vm %s"
             (Diagnostic.truncated d1) (Diagnostic.truncated d2))
      else
        Ok
          (Printf.sprintf "engines agree (%d output bytes, %d diagnostic bytes)"
             (String.length o1) (String.length d1))

let find_corpus_dir () =
  match Sys.argv with
  | [| _; dir |] -> dir
  | _ ->
      if Sys.file_exists "test/corpus" then "test/corpus"
      else if Sys.file_exists "../../../test/corpus" then "../../../test/corpus"
      else "test/corpus"

let find_examples_dir () =
  if Sys.file_exists "examples/scm" then Some "examples/scm"
  else if Sys.file_exists "../../../examples/scm" then Some "../../../examples/scm"
  else None

let () =
  Core.init ();
  let dir = find_corpus_dir () in
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "crashcheck: corpus directory not found: %s\n" dir;
    exit 1
  end;
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scm")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then begin
    Printf.eprintf "crashcheck: no .scm files in %s\n" dir;
    exit 1
  end;
  let failures = ref 0 in
  List.iter
    (fun path ->
      let label = Filename.basename path in
      match check_file path with
      | Ok detail -> Printf.printf "  ok   %-28s %s\n%!" label detail
      | Error why ->
          incr failures;
          Printf.printf "  FAIL %-28s %s\n%!" label why)
    files;
  List.iter
    (fun (label, prepare) ->
      match check_cache_dir_case ~label prepare with
      | Ok detail -> Printf.printf "  ok   %-28s %s\n%!" label detail
      | Error why ->
          incr failures;
          Printf.printf "  FAIL %-28s %s\n%!" label why)
    cache_dir_cases;
  (* the engine differential: corpus programs plus the working examples *)
  let examples =
    match find_examples_dir () with
    | None -> []
    | Some dir ->
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".scm")
        |> List.sort compare
        |> List.map (Filename.concat dir)
  in
  let diff_files = files @ examples in
  Printf.printf "engine differential (interp vs vm):\n%!";
  List.iter
    (fun path ->
      let label = Filename.basename path in
      match check_differential path with
      | Ok detail -> Printf.printf "  ok   %-28s %s\n%!" label detail
      | Error why ->
          incr failures;
          Printf.printf "  FAIL %-28s %s\n%!" label why)
    diff_files;
  (* the analyzer leg: 0CFA over every corpus file and every example *)
  Printf.printf "analyzer containment (liblang analyze):\n%!";
  List.iter
    (fun path ->
      let label = Filename.basename path in
      match check_analyze path with
      | Ok detail -> Printf.printf "  ok   %-28s %s\n%!" label detail
      | Error why ->
          incr failures;
          Printf.printf "  FAIL %-28s %s\n%!" label why)
    diff_files;
  Printf.printf
    "crashcheck: %d/%d corpus + cache-dir + differential + analyzer cases contained\n"
    (List.length files + List.length cache_dir_cases + (2 * List.length diff_files)
    - !failures)
    (List.length files + List.length cache_dir_cases + (2 * List.length diff_files));
  exit (if !failures = 0 then 0 else 1)
